// Decisioning: the online risk decision flow end to end. The paper's
// Model Server stops at a fraud probability; production risk control
// maps that probability to an *action* — pass the transfer, step up
// verification, or block it — under scenario-specific policies, watches
// a challenger model in shadow before promoting it, and monitors the
// score distribution for drift. This example runs the whole loop: train
// a champion (GBDT) and a challenger (LR), deploy the champion behind a
// versioned decision policy with threshold bands and velocity rules,
// replay the test day through POST /v1/decide/batch under mixed
// scenarios, hot-swap a stricter policy over POST /v1/policy, then read
// the shadow agreement and drift sections off /v1/stats and the
// readiness body off /healthz.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"titant"
	"titant/internal/ms"
)

func main() {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 2500
	world := titant.Generate(cfg)
	ds, err := world.Dataset(1)
	if err != nil {
		log.Fatal(err)
	}
	opts := titant.DefaultOptions()
	opts.GBDT.Trees = 150

	fmt.Println("offline phase: training the champion (Basic+DW+GBDT)...")
	clf, emb, threshold, err := titant.TrainForServing(world.Users, ds, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("offline phase: training the challenger (Basic+DW+LR) for shadow...")
	chMembers, chEmb, chThr, err := titant.TrainEnsembleForServing(world.Users, ds, []titant.Detector{titant.DetLR}, titant.CombineMean, opts)
	if err != nil {
		log.Fatal(err)
	}
	challenger, err := titant.BuildEnsembleBundle(ds, chEmb, chMembers, titant.CombineMean, chThr, opts, "challenger-lr")
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "titant-decisioning-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tab, err := titant.OpenFeatureTable(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer tab.Close()
	fmt.Printf("uploading %d users' features + embeddings to the store...\n", len(world.Users))
	bundle, err := titant.Deploy(world.Users, ds, emb, clf, threshold, opts, tab, "2017-04-10")
	if err != nil {
		log.Fatal(err)
	}

	// The policy document: bands derived from the trained threshold plus
	// two rules — an amount ceiling and a velocity cap over the live
	// streaming window. This is exactly the JSON POST /v1/policy accepts.
	hi := threshold + (1-threshold)/2
	policyDoc := fmt.Sprintf(`{
	  "version": "pol-2017-04-10",
	  "scenarios": {
	    "default": {
	      "bands": [
	        {"min": 0, "max": %g, "action": "approve"},
	        {"min": %g, "max": %g, "action": "challenge"},
	        {"min": %g, "max": 1, "action": "deny"}
	      ],
	      "rules": [
	        {"name": "amount-ceiling", "when": [{"field": "amount", "op": ">", "value": 50000}], "action": "challenge"},
	        {"name": "velocity-cap", "when": [{"field": "snd_out_count", "op": ">", "value": 200}], "action": "challenge"}
	      ]
	    },
	    "withdrawal": {
	      "bands": [
	        {"min": 0, "max": %g, "action": "approve"},
	        {"min": %g, "max": 1, "action": "deny"}
	      ]
	    }
	  }
	}`, threshold, threshold, hi, hi, threshold, threshold)
	policy, err := titant.ParsePolicy([]byte(policyDoc))
	if err != nil {
		log.Fatal(err)
	}

	st := titant.NewStreamStore(titant.WithStreamCities(opts.Cities))
	st.IngestBatch(ds.Network) // warm the velocity window from the reference days
	eng, err := titant.NewEngine(tab, bundle,
		titant.WithStreamAggregates(st),
		titant.WithPolicy(policy),
		titant.WithShadow(challenger),
		titant.WithDriftMonitor(titant.DriftConfig{}))
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	web := httptest.NewServer(eng.Handler())
	defer web.Close()
	fmt.Printf("model server at %s: champion %s (threshold %.3f), challenger %s in shadow, policy %s\n\n",
		web.URL, bundle.Version, threshold, challenger.Version, policy.Version)

	// Replay the test day through POST /v1/decide/batch under mixed
	// scenarios, as the payment products' gateways would.
	scenarios := []string{"payment", "transfer", "withdrawal"}
	fmt.Printf("deciding %d transactions of %s over the wire...\n", len(ds.Test), ds.TestDay)
	actions := map[string]int{}
	fraudStopped, fraudPassed := 0, 0
	start := time.Now()
	const chunk = 1000
	for lo := 0; lo < len(ds.Test); lo += chunk {
		hi := min(lo+chunk, len(ds.Test))
		var req ms.DecideBatchRequest
		for i := lo; i < hi; i++ {
			req.Transactions = append(req.Transactions, ms.DecideRequest{
				TxnRequest: wireTxn(&ds.Test[i]),
				Scenario:   scenarios[i%len(scenarios)],
			})
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(web.URL+"/v1/decide/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			log.Fatalf("decide chunk failed: %d %s", resp.StatusCode, msg)
		}
		var br ms.DecideBatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		for i, d := range br.Decisions {
			actions[d.Action.String()]++
			if ds.Test[lo+i].Fraud {
				if d.Action == titant.ActionApprove {
					fraudPassed++
				} else {
					fraudStopped++
				}
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("  %0.f decisions/s: approve=%d challenge=%d deny=%d\n",
		float64(len(ds.Test))/elapsed.Seconds(), actions["approve"], actions["challenge"], actions["deny"])
	fmt.Printf("  frauds stopped (challenged or denied): %d; frauds passed: %d\n\n", fraudStopped, fraudPassed)

	// Risk appetite changes without redeploying a model: hot-swap a
	// stricter policy that denies everything the model flags.
	stricter := fmt.Sprintf(`{
	  "version": "pol-lockdown",
	  "scenarios": {
	    "default": {
	      "bands": [
	        {"min": 0, "max": %g, "action": "approve"},
	        {"min": %g, "max": 1, "action": "deny"}
	      ]
	    }
	  }
	}`, threshold, threshold)
	resp, err := http.Post(web.URL+"/v1/policy", "application/json", bytes.NewReader([]byte(stricter)))
	if err != nil {
		log.Fatal(err)
	}
	var info ms.PolicyInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("hot-swapped policy %s over POST /v1/policy (scenarios: %v)\n", info.Version, info.Scenarios)
	one, _ := json.Marshal(ms.DecideRequest{TxnRequest: wireTxn(&ds.Test[0])})
	resp, err = http.Post(web.URL+"/v1/decide", "application/json", bytes.NewReader(one))
	if err != nil {
		log.Fatal(err)
	}
	var d ms.Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("  decision under %s: score=%.3f action=%s (%s)\n\n", d.PolicyVersion, d.Score, d.Action, d.Reason)

	// Shadow and drift: wait for the challenger to drain its queue, then
	// read both sections the way a dashboard would — off /v1/stats.
	deadline := time.Now().Add(30 * time.Second)
	for {
		sh := eng.ShadowStats()
		if sh.Scored+sh.Errors+sh.Dropped >= int64(len(ds.Test)) || time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	sh := eng.ShadowStats()
	fmt.Printf("shadow challenger %s after the replay:\n", challenger.Version)
	fmt.Printf("  compared=%d dropped=%d errors=%d\n", sh.Scored, sh.Dropped, sh.Errors)
	fmt.Printf("  verdict agreement=%.4f would-have-flipped=%d mean |score gap|=%.4f\n\n",
		sh.Agreement, sh.Flipped, sh.MeanAbsDiff)

	fmt.Println("drift monitor (baseline frozen at deploy, PSI/KS on live traffic):")
	for _, s := range eng.DriftStats() {
		fmt.Printf("  %-10s baseline=%d live=%d PSI=%.4f KS=%.4f alert=%v\n",
			s.Name, s.BaselineCount, s.LiveCount, s.PSI, s.KS, s.Alert)
	}

	resp, err = http.Get(web.URL + "/healthz")
	if err != nil {
		log.Fatal(err)
	}
	var h ms.HealthInfo
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("\nreadiness (/healthz): bundle=%s policy=%s stream=%v shadow=%v drift=%v drift_alert=%v\n",
		h.BundleVersion, h.PolicyVersion, h.Stream, h.Shadow, h.Drift, h.DriftAlert)
}

func wireTxn(t *titant.Transaction) ms.TxnRequest {
	return ms.TxnRequest{
		ID: int64(t.ID), Day: int(t.Day), Sec: t.Sec,
		From: int32(t.From), To: int32(t.To), Amount: t.Amount,
		TransCity: t.TransCity, DeviceRisk: t.DeviceRisk,
		IPRisk: t.IPRisk, Channel: uint8(t.Channel),
	}
}
