// Fraudring: the paper's Figure 2 in code, run on the composed scenario
// world. Builds the transaction network from the world's 90-day window,
// shows that victims of the same fraudster are 2-hop neighbours
// ("gathering behaviour"), learns DeepWalk embeddings, and demonstrates
// that ring accounts cluster in embedding space — the topological signal
// TitAnt feeds its classifiers. Ring membership and fraud ground truth
// come from the scenario manifest, the same machine-readable truth the
// load harness grades detection against.
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"titant"
	"titant/internal/graph"
	"titant/internal/nrl"
	"titant/internal/nrl/deepwalk"
	"titant/internal/txn"
)

// centre subtracts the mean vector from every embedding.
func centre(e *nrl.Embeddings) *nrl.Embeddings {
	users := e.Users()
	dim := e.Dim()
	mean := make([]float64, dim)
	for _, u := range users {
		for i, v := range e.Lookup(u) {
			mean[i] += float64(v)
		}
	}
	for i := range mean {
		mean[i] /= float64(len(users))
	}
	out := nrl.NewEmbeddings(dim)
	buf := make([]float32, dim)
	for _, u := range users {
		for i, v := range e.Lookup(u) {
			buf[i] = v - float32(mean[i])
		}
		out.Set(u, buf)
	}
	return out
}

// stats holds the numbers the example prints, so the test can pin them.
type stats struct {
	ScenarioKinds map[string]int // manifest entries per kind
	Gathered      int            // fraudsters whose victims are 2-hop linked
	LinkedFrac    float64        // linked victim pairs / victim pairs checked
	IntraCosine   float64        // mean cosine within the shown ring
	CrossCosine   float64        // mean cosine ring-to-public
	NearestSame   int            // of the 5 nearest neighbours, same ring
}

// run executes the example against a composed world, writing the
// narrative to out and returning the measured numbers.
func run(world *titant.World, man *titant.WorldManifest, out io.Writer) (*stats, error) {
	ds, err := world.Dataset(1)
	if err != nil {
		return nil, err
	}
	st := &stats{ScenarioKinds: map[string]int{}}
	for i := range man.Scenarios {
		st.ScenarioKinds[man.Scenarios[i].Kind]++
	}
	fmt.Fprintf(out, "composed world (seed %d): %d labeled scenarios — %d rings, %d takeovers, %d bust-outs, %d mule chains, %d card-testing bursts\n",
		man.Seed, len(man.Scenarios), st.ScenarioKinds["ring"], st.ScenarioKinds["account_takeover"],
		st.ScenarioKinds["bust_out"], st.ScenarioKinds["mule_chain"], st.ScenarioKinds["card_testing"])

	g := graph.FromTransactions(ds.Network)
	fmt.Fprintf(out, "transaction network: %s\n\n", g.Summarize())

	// --- Gathering behaviour (Figure 2) ---
	victimsOf := map[txn.UserID][]txn.UserID{}
	for _, t := range ds.Network {
		if t.Fraud {
			victimsOf[t.To] = append(victimsOf[t.To], t.From)
		}
	}
	var linked, checked, shown int
	for fraudster, victims := range victimsOf {
		if len(victims) < 3 {
			continue
		}
		v0, ok := g.Node(victims[0])
		if !ok {
			continue
		}
		two := g.TwoHopNeighbors(v0)
		l := 0
		for _, v := range victims[1:] {
			if n, ok := g.Node(v); ok {
				if _, yes := two[n]; yes {
					l++
				}
			}
		}
		linked += l
		checked += len(victims) - 1
		if l > 0 {
			st.Gathered++
		}
		if shown < 3 {
			fmt.Fprintf(out, "fraudster %d: %d victims; %d/%d other victims are 2-hop neighbours of victim %d\n",
				fraudster, len(victims), l, len(victims)-1, victims[0])
			shown++
		}
	}
	if checked > 0 {
		st.LinkedFrac = float64(linked) / float64(checked)
	}
	fmt.Fprintf(out, "gathering: %.0f%% of checked victim pairs are 2-hop linked\n", 100*st.LinkedFrac)

	// --- Ring clustering in embedding space ---
	dwCfg := deepwalk.BenchConfig()
	raw := deepwalk.Train(g, dwCfg)
	// Briefly-trained skip-gram vectors share a large common component, so
	// raw cosines crowd toward 1; centre them (subtract the population
	// mean) before comparing, the standard trick for similarity analysis.
	emb := centre(raw)
	fmt.Fprintf(out, "\nDeepWalk: embedded %d nodes at dimension %d (mean-centred)\n", emb.Len(), emb.Dim())

	// The manifest's ring entries mirror world.Rings index-for-index; pick
	// a long-lived ring, whose accounts the 90-day network window has seen.
	for i := range man.Scenarios {
		s := &man.Scenarios[i]
		if s.Kind != "ring" || len(s.Users) < 2 || !world.Rings[s.ID].LongLived {
			continue
		}
		ring := &world.Rings[s.ID]
		var intra, cross float64
		var ni, nc int
		for j, a := range ring.Members {
			for _, b := range ring.Members[j+1:] {
				if c := emb.Cosine(a, b); c != 0 {
					intra += c
					ni++
				}
			}
			for probe := txn.UserID(0); probe < 40; probe++ {
				if world.Users[probe].RingID == -1 {
					if c := emb.Cosine(a, probe); c != 0 {
						cross += c
						nc++
					}
				}
			}
		}
		if ni == 0 || nc == 0 {
			continue
		}
		st.IntraCosine = intra / float64(ni)
		st.CrossCosine = cross / float64(nc)
		fmt.Fprintf(out, "ring %d (%d accounts, %d fraud txns in manifest): intra-ring cosine %.3f vs ring-to-public %.3f\n",
			s.ID, len(s.Users), len(s.FraudTxns), st.IntraCosine, st.CrossCosine)
		// Nearest neighbours of a ring account are mostly its own ring.
		m := ring.Members[0]
		fmt.Fprintf(out, "  nearest neighbours of ring account %d:", m)
		for _, n := range emb.Nearest(m, 5) {
			tag := ""
			if world.Users[n.User].RingID == ring.ID {
				tag = "*"
				st.NearestSame++
			}
			fmt.Fprintf(out, " %d%s(%.2f)", n.User, tag, n.Sim)
		}
		fmt.Fprintln(out, "   (* = same ring)")
		break
	}
	return st, nil
}

func main() {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 3000
	world, man := titant.ComposeWorld(cfg, titant.DefaultScenarioMix())
	if _, err := run(world, man, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
