// Fraudring: the paper's Figure 2 in code. Builds the transaction network
// from a world's 90-day window, shows that victims of the same fraudster
// are 2-hop neighbours ("gathering behaviour"), learns DeepWalk
// embeddings, and demonstrates that ring accounts cluster in embedding
// space - the topological signal TitAnt feeds its classifiers.
package main

import (
	"fmt"
	"log"

	"titant"
	"titant/internal/graph"
	"titant/internal/nrl"
	"titant/internal/nrl/deepwalk"
	"titant/internal/txn"
)

// centre subtracts the mean vector from every embedding.
func centre(e *nrl.Embeddings) *nrl.Embeddings {
	users := e.Users()
	dim := e.Dim()
	mean := make([]float64, dim)
	for _, u := range users {
		for i, v := range e.Lookup(u) {
			mean[i] += float64(v)
		}
	}
	for i := range mean {
		mean[i] /= float64(len(users))
	}
	out := nrl.NewEmbeddings(dim)
	buf := make([]float32, dim)
	for _, u := range users {
		for i, v := range e.Lookup(u) {
			buf[i] = v - float32(mean[i])
		}
		out.Set(u, buf)
	}
	return out
}

func main() {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 3000
	world := titant.Generate(cfg)
	ds, err := world.Dataset(1)
	if err != nil {
		log.Fatal(err)
	}

	g := graph.FromTransactions(ds.Network)
	fmt.Printf("transaction network: %s\n\n", g.Summarize())

	// --- Gathering behaviour (Figure 2) ---
	victimsOf := map[txn.UserID][]txn.UserID{}
	for _, t := range ds.Network {
		if t.Fraud {
			victimsOf[t.To] = append(victimsOf[t.To], t.From)
		}
	}
	shown := 0
	for fraudster, victims := range victimsOf {
		if len(victims) < 3 {
			continue
		}
		v0, ok := g.Node(victims[0])
		if !ok {
			continue
		}
		two := g.TwoHopNeighbors(v0)
		linked := 0
		for _, v := range victims[1:] {
			if n, ok := g.Node(v); ok {
				if _, yes := two[n]; yes {
					linked++
				}
			}
		}
		fmt.Printf("fraudster %d: %d victims; %d/%d other victims are 2-hop neighbours of victim %d\n",
			fraudster, len(victims), linked, len(victims)-1, victims[0])
		shown++
		if shown >= 3 {
			break
		}
	}

	// --- Ring clustering in embedding space ---
	dwCfg := deepwalk.BenchConfig()
	raw := deepwalk.Train(g, dwCfg)
	// Briefly-trained skip-gram vectors share a large common component, so
	// raw cosines crowd toward 1; centre them (subtract the population
	// mean) before comparing, the standard trick for similarity analysis.
	emb := centre(raw)
	fmt.Printf("\nDeepWalk: embedded %d nodes at dimension %d (mean-centred)\n", emb.Len(), emb.Dim())

	for _, ring := range world.Rings {
		if !ring.LongLived || len(ring.Members) < 2 {
			continue
		}
		var intra, cross float64
		var ni, nc int
		for i, a := range ring.Members {
			for _, b := range ring.Members[i+1:] {
				if s := emb.Cosine(a, b); s != 0 {
					intra += s
					ni++
				}
			}
			for probe := txn.UserID(0); probe < 40; probe++ {
				if world.Users[probe].RingID == -1 {
					if s := emb.Cosine(a, probe); s != 0 {
						cross += s
						nc++
					}
				}
			}
		}
		if ni == 0 || nc == 0 {
			continue
		}
		fmt.Printf("ring %d (%d accounts + %d mules): intra-ring cosine %.3f vs ring-to-public %.3f\n",
			ring.ID, len(ring.Members), len(ring.Mules), intra/float64(ni), cross/float64(nc))
		// Nearest neighbours of a ring account are mostly its own ring.
		m := ring.Members[0]
		fmt.Printf("  nearest neighbours of ring account %d:", m)
		for _, n := range emb.Nearest(m, 5) {
			tag := ""
			if world.Users[n.User].RingID == ring.ID {
				tag = "*"
			}
			fmt.Printf(" %d%s(%.2f)", n.User, tag, n.Sim)
		}
		fmt.Println("   (* = same ring)")
		break
	}
}
