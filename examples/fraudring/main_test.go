package main

import (
	"io"
	"testing"

	"titant"
)

// TestExampleNumbers runs the example at its README configuration and
// pins the numbers the README quotes: the scenario inventory of the
// composed world, near-total 2-hop linkage between victims of the same
// fraudster (gathering behaviour), and intra-ring cosine similarity
// well above the ring-to-public baseline.
func TestExampleNumbers(t *testing.T) {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 3000
	world, man := titant.ComposeWorld(cfg, titant.DefaultScenarioMix())
	st, err := run(world, man, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	mix := titant.DefaultScenarioMix()
	for kind, want := range map[string]int{
		"account_takeover": mix.ATO,
		"bust_out":         mix.BustOut,
		"mule_chain":       mix.MuleChains,
		"card_testing":     mix.CardTesting,
	} {
		if got := st.ScenarioKinds[kind]; got != want {
			t.Errorf("manifest has %d %s scenarios, want %d", got, kind, want)
		}
	}
	if st.ScenarioKinds["ring"] == 0 {
		t.Error("manifest has no ring scenarios")
	}
	if st.Gathered < 3 {
		t.Errorf("gathering shown for %d fraudsters, want >= 3", st.Gathered)
	}
	if st.LinkedFrac < 0.8 {
		t.Errorf("2-hop linked victim-pair fraction %.3f, README quotes ~0.99 (floor 0.8)", st.LinkedFrac)
	}
	if st.IntraCosine <= st.CrossCosine {
		t.Errorf("intra-ring cosine %.3f not above ring-to-public %.3f", st.IntraCosine, st.CrossCosine)
	}
	if st.IntraCosine < 0.05 {
		t.Errorf("intra-ring cosine %.3f, README quotes ~0.14 (floor 0.05)", st.IntraCosine)
	}
}
