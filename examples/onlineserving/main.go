// Onlineserving: the paper's Figure 5 end to end. Trains the production
// model, uploads profiles + embeddings to the column-family feature store,
// starts the Model Server over HTTP, replays the test day as a live stream
// of scoring requests, and reports fraud interruptions plus the
// millisecond-scale latency distribution the paper headlines.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"titant"
	"titant/internal/ms"
)

func main() {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 3000
	world := titant.Generate(cfg)
	ds, err := world.Dataset(1)
	if err != nil {
		log.Fatal(err)
	}
	opts := titant.DefaultOptions()
	opts.GBDT.Trees = 150

	fmt.Println("offline phase: training Basic+DW+GBDT...")
	clf, emb, threshold, err := titant.TrainForServing(world.Users, ds, opts)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "titant-serving-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tab, err := titant.OpenFeatureTable(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer tab.Close()

	fmt.Printf("uploading %d users' features + embeddings to the store...\n", len(world.Users))
	bundle, err := titant.Deploy(world.Users, ds, emb, clf, threshold, opts, tab, "2017-04-10")
	if err != nil {
		log.Fatal(err)
	}

	interrupted := 0
	srv, err := titant.NewModelServer(tab, bundle, func(t *titant.Transaction, score float64) {
		interrupted++
	})
	if err != nil {
		log.Fatal(err)
	}
	web := httptest.NewServer(srv.Handler())
	defer web.Close()
	fmt.Printf("model server (version %s, threshold %.3f) at %s\n\n",
		bundle.Version, bundle.Threshold, web.URL)

	// Replay the test day through HTTP, as the Alipay server would.
	fmt.Printf("replaying %d transactions of %s...\n", len(ds.Test), ds.TestDay)
	var caught, missed, falseAlarms int
	start := time.Now()
	for i := range ds.Test {
		t := &ds.Test[i]
		body, _ := json.Marshal(ms.TxnRequest{
			ID: int64(t.ID), Day: int(t.Day), Sec: t.Sec,
			From: int32(t.From), To: int32(t.To), Amount: t.Amount,
			TransCity: t.TransCity, DeviceRisk: t.DeviceRisk,
			IPRisk: t.IPRisk, Channel: uint8(t.Channel),
		})
		resp, err := http.Post(web.URL+"/score", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var v ms.Verdict
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		switch {
		case v.Fraud && t.Fraud:
			caught++
		case !v.Fraud && t.Fraud:
			missed++
		case v.Fraud && !t.Fraud:
			falseAlarms++
		}
	}
	elapsed := time.Since(start)

	st := srv.Latency()
	fmt.Printf("\nresults over %v (%0.f req/s through HTTP):\n",
		elapsed.Round(time.Millisecond), float64(len(ds.Test))/elapsed.Seconds())
	fmt.Printf("  frauds caught      : %d\n", caught)
	fmt.Printf("  frauds missed      : %d\n", missed)
	fmt.Printf("  false interruptions: %d\n", falseAlarms)
	fmt.Printf("  transfers stopped  : %d\n", interrupted)
	fmt.Printf("serving latency (model path, excluding HTTP): p50=%v p99=%v max=%v\n",
		st.P50, st.P99, st.Max)
	if st.P99 < 10*time.Millisecond {
		fmt.Println("-> within the paper's \"mere milliseconds\" envelope")
	}
}
