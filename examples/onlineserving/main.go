// Onlineserving: the paper's Figure 5 end to end. Trains the production
// model, uploads profiles + embeddings to the column-family feature store,
// starts the Model Server's v1 HTTP API with a streaming aggregate store,
// back-fills the live window from the labelled reference days through
// POST /v1/ingest/batch, replays the test day as a live stream of scoring
// requests, records the observed day back into the window through the
// ingest API (outside the timed section, so the printed rates measure
// scoring work only), then replays the day again through the batch
// endpoint to show the fan-out + fetch-dedup speedup, and reports fraud
// interruptions plus the millisecond-scale latency distribution the
// paper headlines.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"time"

	"titant"
	"titant/internal/ms"
)

func main() {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 3000
	world := titant.Generate(cfg)
	ds, err := world.Dataset(1)
	if err != nil {
		log.Fatal(err)
	}
	opts := titant.DefaultOptions()
	opts.GBDT.Trees = 150

	fmt.Println("offline phase: training Basic+DW+GBDT...")
	clf, emb, threshold, err := titant.TrainForServing(world.Users, ds, opts)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "titant-serving-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tab, err := titant.OpenFeatureTable(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer tab.Close()

	fmt.Printf("uploading %d users' features + embeddings to the store...\n", len(world.Users))
	bundle, err := titant.Deploy(world.Users, ds, emb, clf, threshold, opts, tab, "2017-04-10")
	if err != nil {
		log.Fatal(err)
	}

	interrupted := 0
	st := titant.NewStreamStore(titant.WithStreamCities(opts.Cities))
	eng, err := titant.NewEngine(tab, bundle,
		titant.WithAlert(func(t *titant.Transaction, score float64) { interrupted++ }),
		titant.WithStreamAggregates(st))
	if err != nil {
		log.Fatal(err)
	}
	web := httptest.NewServer(eng.Handler())
	defer web.Close()
	fmt.Printf("model server (version %s, threshold %.3f) at %s\n\n",
		bundle.Version, bundle.Threshold, web.URL)

	// Back-fill the live window over the wire: the reference window's
	// labelled history arrives through POST /v1/ingest/batch, exactly as a
	// label pipeline would replay delayed fraud reports into a fresh
	// daemon.
	fmt.Printf("warming the live window with %d reference transactions over HTTP...\n", len(ds.Network))
	ingestOverWire(web.URL, ds.Network, true)
	fmt.Printf("live window holds %d transactions across %d buckets\n\n", st.Ingested(), st.Buckets())

	// Replay the test day one request at a time through POST /v1/score,
	// as the Alipay server would for live transfers.
	fmt.Printf("replaying %d transactions of %s one by one...\n", len(ds.Test), ds.TestDay)
	var caught, missed, falseAlarms int
	start := time.Now()
	for i := range ds.Test {
		t := &ds.Test[i]
		body, _ := json.Marshal(wireTxn(t))
		resp, err := http.Post(web.URL+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		var v ms.Verdict
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		switch {
		case v.Fraud && t.Fraud:
			caught++
		case !v.Fraud && t.Fraud:
			missed++
		case v.Fraud && !t.Fraud:
			falseAlarms++
		}
	}
	seqElapsed := time.Since(start)
	stopped := interrupted // alerts from the sequential pass only; the
	// batch replay below re-scores the same day and would double-count

	// The scored transfers happened (labels come days later): record the
	// observed day into the live window, unlabelled, so it keeps sliding
	// with the traffic. Outside the timed section — the replay rates
	// above and below compare scoring work only.
	fmt.Printf("recording the observed day into the live window...\n")
	ingestOverWire(web.URL, ds.Test, false)

	// Replay again through POST /v1/score/batch: one request per chunk,
	// each scored across the worker pool with per-batch user-fetch dedup.
	fmt.Printf("replaying the same day through /v1/score/batch...\n")
	const chunk = 1000
	start = time.Now()
	batched := 0
	for lo := 0; lo < len(ds.Test); lo += chunk {
		hi := lo + chunk
		if hi > len(ds.Test) {
			hi = len(ds.Test)
		}
		var req ms.BatchRequest
		for i := lo; i < hi; i++ {
			req.Transactions = append(req.Transactions, wireTxn(&ds.Test[i]))
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(web.URL+"/v1/score/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			log.Fatalf("batch chunk failed: %d %s", resp.StatusCode, msg)
		}
		var br ms.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		batched += len(br.Verdicts)
	}
	batchElapsed := time.Since(start)

	lat := eng.Latency()
	fmt.Printf("\nresults:\n")
	fmt.Printf("  sequential replay  : %v (%0.f req/s through HTTP)\n",
		seqElapsed.Round(time.Millisecond), float64(len(ds.Test))/seqElapsed.Seconds())
	fmt.Printf("  batch replay       : %v (%0.f txn/s, %d verdicts)\n",
		batchElapsed.Round(time.Millisecond), float64(batched)/batchElapsed.Seconds(), batched)
	fmt.Printf("  frauds caught      : %d\n", caught)
	fmt.Printf("  frauds missed      : %d\n", missed)
	fmt.Printf("  false interruptions: %d\n", falseAlarms)
	fmt.Printf("  transfers stopped  : %d\n", stopped)
	fmt.Printf("  live window        : %d transactions ingested\n", st.Ingested())
	fmt.Printf("serving latency (model path, excluding HTTP): p50=%v p99=%v max=%v\n",
		lat.P50, lat.P99, lat.Max)
	if lat.P99 < 10*time.Millisecond {
		fmt.Println("-> within the paper's \"mere milliseconds\" envelope")
	}
}

// ingestOverWire replays transactions into the live window through
// POST /v1/ingest/batch in chunks; labelled carries the ground-truth
// fraud flags (back-filling history), unlabelled models observed
// transfers whose labels have not arrived yet.
func ingestOverWire(base string, txns []titant.Transaction, labelled bool) {
	const chunk = 2000
	for lo := 0; lo < len(txns); lo += chunk {
		hi := lo + chunk
		if hi > len(txns) {
			hi = len(txns)
		}
		var req ms.IngestBatchRequest
		for i := lo; i < hi; i++ {
			t := &txns[i]
			req.Transactions = append(req.Transactions,
				ms.IngestRequest{TxnRequest: wireTxn(t), Fraud: labelled && t.Fraud})
		}
		body, _ := json.Marshal(req)
		resp, err := http.Post(base+"/v1/ingest/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(resp.Body)
			log.Fatalf("ingest chunk failed: %d %s", resp.StatusCode, msg)
		}
		resp.Body.Close()
	}
}

func wireTxn(t *titant.Transaction) ms.TxnRequest {
	return ms.TxnRequest{
		ID: int64(t.ID), Day: int(t.Day), Sec: t.Sec,
		From: int32(t.From), To: int32(t.To), Amount: t.Amount,
		TransCity: t.TransCity, DeviceRisk: t.DeviceRisk,
		IPRisk: t.IPRisk, Channel: uint8(t.Channel),
	}
}
