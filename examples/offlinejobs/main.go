// Offlinejobs: the paper's Figure 4 pipeline. Loads a day's transactions
// into the MaxCompute analogue as a columnar table, then runs the offline
// jobs TitAnt needs - SQL feature/label extraction and a MapReduce
// transaction-network edge count - through the full job lifecycle (client
// authentication, worker, scheduler, OTS instance tracking, executors,
// Fuxi resource slots, Pangu-persisted results).
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"titant"
	"titant/internal/maxcompute"
	"titant/internal/sqlmini"
)

func main() {
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 3000
	world := titant.Generate(cfg)
	ds, err := world.Dataset(1)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "titant-maxcompute-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	platform, err := maxcompute.New(maxcompute.Config{Dir: dir, ComputeSlots: 2, Executors: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer platform.Close()

	creds := maxcompute.Credentials{Account: "risk-team", Secret: "hunter2"}
	platform.CreateAccount(creds.Account, creds.Secret)

	// Load the training window as a columnar table.
	n := len(ds.Train)
	ids := make([]int64, n)
	froms := make([]int64, n)
	tos := make([]int64, n)
	amounts := make([]float64, n)
	cities := make([]int64, n)
	frauds := make([]bool, n)
	for i, t := range ds.Train {
		ids[i] = int64(t.ID)
		froms[i] = int64(t.From)
		tos[i] = int64(t.To)
		amounts[i] = float64(t.Amount)
		cities[i] = int64(t.TransCity)
		frauds[i] = t.Fraud
	}
	tab, err := sqlmini.NewTable("txns",
		&sqlmini.Column{Name: "id", Kind: sqlmini.KindInt, Ints: ids},
		&sqlmini.Column{Name: "from_user", Kind: sqlmini.KindInt, Ints: froms},
		&sqlmini.Column{Name: "to_user", Kind: sqlmini.KindInt, Ints: tos},
		&sqlmini.Column{Name: "amount", Kind: sqlmini.KindFloat, Floats: amounts},
		&sqlmini.Column{Name: "city", Kind: sqlmini.KindInt, Ints: cities},
		&sqlmini.Column{Name: "fraud", Kind: sqlmini.KindBool, Bools: frauds},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := platform.RegisterTable(tab); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("registered table txns with %d rows\n\n", tab.NumRows())

	// Job 1 (SQL): label statistics - the label-extraction job.
	runSQL(platform, creds, "SELECT COUNT(*) AS n, SUM(amount) AS volume FROM txns WHERE fraud = TRUE")

	// Job 2 (SQL): per-city fraud concentration - the city feature job.
	runSQL(platform, creds, "SELECT city, COUNT(*) AS n FROM txns WHERE fraud = TRUE GROUP BY city ORDER BY n DESC LIMIT 5")

	// Job 3 (MapReduce): distinct-edge count per receiver - the
	// transaction-network construction job.
	spec := maxcompute.MapReduceSpec{
		Table: "txns",
		Map: func(row []sqlmini.Value) []maxcompute.KV {
			// column 2 = to_user
			return []maxcompute.KV{{Key: row[2].String(), Value: 1}}
		},
		Reduce: func(key string, values []float64) float64 {
			var s float64
			for _, v := range values {
				s += v
			}
			return s
		},
	}
	id, err := platform.SubmitMapReduce(creds, spec)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := platform.Wait(id, 30*time.Second); err != nil {
		log.Fatal(err)
	}
	res, err := platform.MRResult(id)
	if err != nil {
		log.Fatal(err)
	}
	maxIn, maxUser := 0.0, ""
	for u, c := range res {
		if c > maxIn {
			maxIn, maxUser = c, u
		}
	}
	fmt.Printf("MapReduce %s: %d receivers; busiest receiver %s with %.0f inbound transfers\n",
		id, len(res), maxUser, maxIn)

	total, inUse, peak, grants := platform.FuxiStats()
	fmt.Printf("\nFuxi: %d slots, %d in use, peak concurrency %d, %d grants total\n",
		total, inUse, peak, grants)
}

func runSQL(p *maxcompute.Platform, creds maxcompute.Credentials, query string) {
	id, err := p.SubmitSQL(creds, query)
	if err != nil {
		log.Fatal(err)
	}
	inst, err := p.Wait(id, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	res, err := p.SQLResult(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SQL %s (%s, attempts=%d): %s\n", id, inst.Status, inst.Attempts, query)
	fmt.Printf("  columns %v\n", res.Names)
	for _, row := range res.Rows {
		fmt.Printf("  ")
		for _, v := range row {
			fmt.Printf("%-12s", v.String())
		}
		fmt.Println()
	}
	fmt.Println()
}
