// Quickstart: generate a small world, train the paper's production
// configuration (Basic features + DeepWalk embeddings + GBDT) in T+1 mode,
// evaluate it on the next day, and batch-score the test day through the
// v1 serving engine - the minimal end-to-end use of the public API.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"titant"
)

func main() {
	// A small world keeps the quickstart under a minute; drop Users for
	// the full default scale.
	cfg := titant.DefaultWorldConfig()
	cfg.Users = 3000
	world := titant.Generate(cfg)
	fmt.Printf("generated %d users, %d transactions, %d fraud rings\n",
		len(world.Users), len(world.Log), len(world.Rings))

	// Dataset 1 = the paper's April 10 test day: 90 days of records build
	// the transaction network, 14 days train the classifier, 1 day tests.
	ds, err := world.Dataset(1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset 1: network=%d train=%d test=%d transactions\n",
		len(ds.Network), len(ds.Train), len(ds.Test))

	opts := titant.DefaultOptions()
	opts.GBDT.Trees = 150 // lighter than the paper's 400 for a quickstart

	// Learn user node embeddings from the transaction network.
	emb := titant.LearnEmbeddings(ds, opts)

	// Train and evaluate the Table 1 winner.
	res := titant.TrainEval(world.Users, ds, titant.FeatBasicDW, titant.DetGBDT, emb, opts)
	fmt.Printf("\nBasic+DW+GBDT on %s:\n", ds.TestDay)
	fmt.Printf("  F1        = %.2f%%\n", 100*res.F1)
	fmt.Printf("  rec@top1%% = %.2f%%\n", 100*res.RecTop1)
	fmt.Printf("  AUC       = %.4f\n", res.AUC)
	fmt.Printf("  threshold = %.4f (frozen on the last %d training days)\n",
		res.Threshold, 2)

	// Compare against basic features alone: the embedding lift is the
	// paper's headline Table 1 observation.
	base := titant.TrainEval(world.Users, ds, titant.FeatBasic, titant.DetGBDT, emb, opts)
	fmt.Printf("\nBasic+GBDT (no embeddings): F1 = %.2f%% -> embeddings add %+.2f points\n",
		100*base.F1, 100*(res.F1-base.F1))

	// Deploy the production model and score the test day's first
	// transactions through the v1 engine — the online half of Figure 5.
	clf, emb2, threshold, err := titant.TrainForServing(world.Users, ds, opts)
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "titant-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	tab, err := titant.OpenFeatureTable(dir)
	if err != nil {
		log.Fatal(err)
	}
	defer tab.Close()
	bundle, err := titant.Deploy(world.Users, ds, emb2, clf, threshold, opts, tab, "quickstart")
	if err != nil {
		log.Fatal(err)
	}
	eng, err := titant.NewEngine(tab, bundle)
	if err != nil {
		log.Fatal(err)
	}
	n := 200
	if n > len(ds.Test) {
		n = len(ds.Test)
	}
	verdicts, err := eng.ScoreBatch(context.Background(), ds.Test[:n])
	if err != nil {
		log.Fatal(err)
	}
	flagged := 0
	for _, v := range verdicts {
		if v.Fraud {
			flagged++
		}
	}
	st := eng.Latency()
	fmt.Printf("\nonline serving: batch-scored %d transactions, flagged %d (p99=%v)\n",
		len(verdicts), flagged, st.P99)

	// The paper deploys several detectors, not one: train a GBDT+LR+C5.0
	// ensemble bundle (mean-combined) and serve it through the same
	// engine. Every verdict now carries the per-member breakdown.
	fmt.Println("\ntraining a GBDT+LR+C5.0 ensemble for serving...")
	members, emb3, ensThreshold, err := titant.TrainEnsembleForServing(
		world.Users, ds, []titant.Detector{titant.DetGBDT, titant.DetLR, titant.DetC50},
		titant.CombineMean, opts)
	if err != nil {
		log.Fatal(err)
	}
	ensBundle, err := titant.DeployEnsemble(world.Users, ds, emb3, members,
		titant.CombineMean, ensThreshold, opts, tab, "quickstart-ensemble")
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.SetBundle(ensBundle); err != nil { // hot-swap, no restart
		log.Fatal(err)
	}
	verdicts, err = eng.ScoreBatch(context.Background(), ds.Test[:n])
	if err != nil {
		log.Fatal(err)
	}
	flagged = 0
	sample := &verdicts[0] // most suspicious transaction in the slice
	for i := range verdicts {
		if verdicts[i].Fraud {
			flagged++
		}
		if verdicts[i].Score > sample.Score {
			sample = &verdicts[i]
		}
	}
	fmt.Printf("ensemble (threshold %.3f) flagged %d of %d transactions\n", ensThreshold, flagged, len(verdicts))
	fmt.Printf("explainability: txn %d scored %.3f =", sample.TxnID, sample.Score)
	for _, m := range sample.Members {
		fmt.Printf(" %s:%.3f", m.Name, m.Score)
	}
	fmt.Println(" (mean)")

	fmt.Println("\n(note: at this toy scale single-day F1 swings by many points;")
	fmt.Println(" run cmd/titant-exp for the default-scale seven-day reproduction)")
}
