package synth

import (
	"reflect"
	"testing"

	"titant/internal/txn"
)

// TestComposeEmptyMixIsBaseWorld: composition is purely additive — the
// zero mix returns the base world's log bit-for-bit, with ring manifests
// only.
func TestComposeEmptyMixIsBaseWorld(t *testing.T) {
	cfg := TestConfig()
	base := Generate(cfg)
	w, man := Compose(cfg, ScenarioMix{})
	if !reflect.DeepEqual(base.Log, w.Log) {
		t.Fatalf("empty-mix composed log differs from base log (%d vs %d txns)", len(w.Log), len(base.Log))
	}
	if !reflect.DeepEqual(base.Users, w.Users) {
		t.Fatal("empty-mix composed users differ from base users")
	}
	for i := range man.Scenarios {
		if man.Scenarios[i].Kind != KindRing {
			t.Fatalf("empty mix produced scenario kind %q", man.Scenarios[i].Kind)
		}
	}
	if len(man.Scenarios) != len(base.Rings) {
		t.Fatalf("ring manifests = %d, want %d", len(man.Scenarios), len(base.Rings))
	}
}

// TestComposeDeterministic: the same (seed, mix) always yields the same
// log and manifest.
func TestComposeDeterministic(t *testing.T) {
	cfg := TestConfig()
	mix := DefaultScenarioMix()
	w1, m1 := Compose(cfg, mix)
	w2, m2 := Compose(cfg, mix)
	if !reflect.DeepEqual(w1.Log, w2.Log) {
		t.Fatal("composed logs differ across identical runs")
	}
	if !reflect.DeepEqual(m1, m2) {
		t.Fatal("manifests differ across identical runs")
	}
	// A different seed yields a different world.
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	w3, _ := Compose(cfg2, mix)
	if len(w3.Log) == len(w1.Log) && reflect.DeepEqual(w3.Log, w1.Log) {
		t.Fatal("different seeds produced identical logs")
	}
}

// TestComposePreservesBaseTraffic: every base-world transaction survives
// composition unchanged (scenario traffic only appends, never rewrites).
func TestComposePreservesBaseTraffic(t *testing.T) {
	cfg := TestConfig()
	base := Generate(cfg)
	w, _ := Compose(cfg, DefaultScenarioMix())
	if len(w.Log) <= len(base.Log) {
		t.Fatalf("composed log has %d txns, base has %d — nothing was added", len(w.Log), len(base.Log))
	}
	byID := make(map[txn.TxnID]txn.Transaction, len(w.Log))
	for _, tr := range w.Log {
		if _, dup := byID[tr.ID]; dup {
			t.Fatalf("duplicate transaction ID %d in composed log", tr.ID)
		}
		byID[tr.ID] = tr
	}
	for _, bt := range base.Log {
		got, ok := byID[bt.ID]
		if !ok {
			t.Fatalf("base transaction %d missing from composed log", bt.ID)
		}
		if got != bt {
			t.Fatalf("base transaction %d rewritten by composition:\n base %+v\n composed %+v", bt.ID, bt, got)
		}
	}
}

// TestComposeManifestIntegrity: the manifest is a faithful index of the
// composed log — every kind requested appears, every manifest fraud txn
// exists in the log with Fraud=true inside its incident's window, every
// log fraud txn belongs to exactly one manifest, and incidents never
// share attacker accounts.
func TestComposeManifestIntegrity(t *testing.T) {
	cfg := TestConfig()
	mix := DefaultScenarioMix()
	w, man := Compose(cfg, mix)

	byID := make(map[txn.TxnID]*txn.Transaction, len(w.Log))
	for i := range w.Log {
		byID[w.Log[i].ID] = &w.Log[i]
	}

	counts := map[string]int{}
	seenUser := map[txn.UserID]string{}
	manifestFraud := map[txn.TxnID]bool{}
	for i := range man.Scenarios {
		s := &man.Scenarios[i]
		counts[s.Kind]++
		if s.StartDay < 0 || s.EndDay <= s.StartDay || int(s.EndDay) > w.Config.Days {
			t.Fatalf("%s/%d: bad window [%d, %d)", s.Kind, s.ID, s.StartDay, s.EndDay)
		}
		if len(s.Users) == 0 {
			t.Fatalf("%s/%d: no involved users", s.Kind, s.ID)
		}
		if s.DecisionScenario == "" {
			t.Fatalf("%s/%d: no decision scenario tag", s.Kind, s.ID)
		}
		if s.Kind != KindRing {
			if len(s.FraudTxns) == 0 {
				t.Fatalf("%s/%d: no labeled fraud", s.Kind, s.ID)
			}
			for _, u := range s.Users {
				if prev, dup := seenUser[u]; dup {
					t.Fatalf("user %d claimed by both %s and %s/%d", u, prev, s.Kind, s.ID)
				}
				seenUser[u] = s.Kind
			}
		}
		for _, id := range s.FraudTxns {
			tr, ok := byID[id]
			if !ok {
				t.Fatalf("%s/%d: manifest fraud txn %d not in log", s.Kind, s.ID, id)
			}
			if !tr.Fraud {
				t.Fatalf("%s/%d: manifest txn %d not labeled fraud in log", s.Kind, s.ID, id)
			}
			if s.Kind != KindRing && (tr.Day < s.StartDay || tr.Day >= s.EndDay) {
				t.Fatalf("%s/%d: fraud txn %d on day %d outside window [%d, %d)",
					s.Kind, s.ID, id, tr.Day, s.StartDay, s.EndDay)
			}
			if manifestFraud[id] {
				t.Fatalf("fraud txn %d claimed by two manifests", id)
			}
			manifestFraud[id] = true
		}
	}
	want := map[string]int{
		KindATO: mix.ATO, KindBustOut: mix.BustOut,
		KindMuleChain: mix.MuleChains, KindCardTesting: mix.CardTesting,
	}
	for kind, n := range want {
		if counts[kind] != n {
			t.Fatalf("manifest has %d %s incidents, want %d", counts[kind], kind, n)
		}
	}
	// Every labeled fraud transaction in the log belongs to some manifest:
	// one generator, one truth source.
	for i := range w.Log {
		if w.Log[i].Fraud && !manifestFraud[w.Log[i].ID] {
			t.Fatalf("fraud txn %d (day %d) not claimed by any manifest", w.Log[i].ID, w.Log[i].Day)
		}
	}
}

// TestComposeCoversTrainAndTestWindows: the striped placement guarantees
// every composed kind has labeled fraud both in the training window (the
// model can learn the pattern) and in the final test week (a gate can
// measure recall on it).
func TestComposeCoversTrainAndTestWindows(t *testing.T) {
	cfg := TestConfig()
	w, man := Compose(cfg, DefaultScenarioMix())
	byID := make(map[txn.TxnID]txn.Day, len(w.Log))
	for _, tr := range w.Log {
		byID[tr.ID] = tr.Day
	}
	testStart := txn.Day(txn.NetworkDays + txn.TrainDays) // first test day (dataset 1)
	inTrain := map[string]int{}
	inTest := map[string]int{}
	for i := range man.Scenarios {
		s := &man.Scenarios[i]
		for _, id := range s.FraudTxns {
			switch d := byID[id]; {
			case d >= testStart:
				inTest[s.Kind]++
			case d >= txn.NetworkDays:
				inTrain[s.Kind]++
			}
		}
	}
	for _, kind := range []string{KindATO, KindBustOut, KindMuleChain, KindCardTesting} {
		if inTrain[kind] == 0 {
			t.Errorf("%s: no labeled fraud in the training window", kind)
		}
		if inTest[kind] == 0 {
			t.Errorf("%s: no labeled fraud in the test week", kind)
		}
	}
}

// TestManifestRoundTrip: Encode/DecodeManifest is lossless.
func TestManifestRoundTrip(t *testing.T) {
	_, man := Compose(TestConfig(), ScenarioMix{ATO: 2, CardTesting: 1})
	raw, err := man.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(man, got) {
		t.Fatal("manifest round trip not lossless")
	}
	idx := got.FraudByTxn()
	if len(idx) == 0 {
		t.Fatal("FraudByTxn returned an empty index")
	}
	for _, kind := range idx {
		if kind != KindRing && kind != KindATO && kind != KindCardTesting {
			t.Fatalf("unexpected kind %q in fraud index", kind)
		}
	}
}
