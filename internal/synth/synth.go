// Package synth generates the synthetic transaction workload that stands in
// for Ant Financial's proprietary data (see DESIGN.md §1).
//
// The generator reproduces the three statistical properties the paper's
// analysis rests on:
//
//  1. Labels are heavily unbalanced (~1-2% fraud).
//  2. Fraudsters are repeat offenders organised in rings: ~70% of fraudsters
//     defraud more than once, victims of the same fraudster become 2-hop
//     neighbours (the paper's Figure 2 "gathering behaviour"), and ring
//     members plus mule accounts form dense subgraphs that network
//     representation learning can pick out.
//  3. The fraud signal in the 52 basic features is partly non-linear
//     (conjunctions of individually weak conditions), so tree ensembles
//     beat linear models, and partly topological (ring membership), so
//     node embeddings add information on top of the basic features.
//
// Everything is driven by a single seed through rng.RNG, so a generated
// world is perfectly reproducible.
package synth

import (
	"fmt"
	"math"
	"sort"

	"titant/internal/rng"
	"titant/internal/txn"
)

// Config controls the generated world. Zero values are replaced by the
// defaults of DefaultConfig.
type Config struct {
	Seed  uint64
	Users int // population size
	Days  int // timeline length in days

	Communities    int     // latent social communities
	Cities         int     // number of cities
	TxnsPerUserDay float64 // mean normal transfers per user per day
	ContactsMean   int     // mean contact-list size

	FraudsterFrac      float64 // fraction of users who are fraudsters
	RingSizeMin        int     // fraudsters per ring, lower bound
	RingSizeMax        int     // fraudsters per ring, upper bound
	MulesPerRing       int     // mule accounts per ring
	RepeatOffenderFrac float64 // rings with long active periods (paper: ~70% of fraudsters repeat)
	ScamsPerDay        float64 // mean scams per active fraudster per day
	VictimRepeatProb   float64 // probability a defrauded victim is hit again
	ColdStartFrac      float64 // rings that first activate in the final week
	RingShufflesPerDay float64 // mean intra-ring transfers per active ring per day
	OneShotFrac        float64 // fraudsters who scam exactly once (paper: ~30%)
}

// DefaultConfig returns the laptop-scale default world: large enough for
// stable F1 estimates over a day, small enough that the full Table 1 run
// finishes in minutes on one core.
func DefaultConfig() Config {
	return Config{
		Seed:               1,
		Users:              6000,
		Days:               txn.TimelineDays,
		Communities:        24,
		Cities:             80,
		TxnsPerUserDay:     0.30,
		ContactsMean:       9,
		FraudsterFrac:      0.022,
		RingSizeMin:        3,
		RingSizeMax:        6,
		MulesPerRing:       3,
		RepeatOffenderFrac: 0.70,
		ScamsPerDay:        2.2,
		VictimRepeatProb:   0.20,
		ColdStartFrac:      0.25,
		RingShufflesPerDay: 4.0,
		OneShotFrac:        0.30,
	}
}

// TestConfig returns a tiny world for unit tests. The fraudster share is
// boosted so that even an 800-user world has fraud on every test day.
func TestConfig() Config {
	c := DefaultConfig()
	c.Users = 800
	c.Communities = 8
	c.Cities = 20
	c.FraudsterFrac = 0.025
	return c
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.Users == 0 {
		c.Users = d.Users
	}
	if c.Days == 0 {
		c.Days = d.Days
	}
	if c.Communities == 0 {
		c.Communities = d.Communities
	}
	if c.Cities == 0 {
		c.Cities = d.Cities
	}
	if c.TxnsPerUserDay == 0 {
		c.TxnsPerUserDay = d.TxnsPerUserDay
	}
	if c.ContactsMean == 0 {
		c.ContactsMean = d.ContactsMean
	}
	if c.FraudsterFrac == 0 {
		c.FraudsterFrac = d.FraudsterFrac
	}
	if c.RingSizeMin == 0 {
		c.RingSizeMin = d.RingSizeMin
	}
	if c.RingSizeMax == 0 {
		c.RingSizeMax = d.RingSizeMax
	}
	if c.MulesPerRing == 0 {
		c.MulesPerRing = d.MulesPerRing
	}
	if c.RepeatOffenderFrac == 0 {
		c.RepeatOffenderFrac = d.RepeatOffenderFrac
	}
	if c.ScamsPerDay == 0 {
		c.ScamsPerDay = d.ScamsPerDay
	}
	if c.VictimRepeatProb == 0 {
		c.VictimRepeatProb = d.VictimRepeatProb
	}
	if c.ColdStartFrac == 0 {
		c.ColdStartFrac = d.ColdStartFrac
	}
	if c.RingShufflesPerDay == 0 {
		c.RingShufflesPerDay = d.RingShufflesPerDay
	}
	if c.OneShotFrac == 0 {
		c.OneShotFrac = d.OneShotFrac
	}
}

// Ring is one fraud ring: a roster of fraudster accounts (rotated over the
// ring's lifetime as accounts are reported and locked), persistent mule
// accounts, an activity window, and a base city whose IP pool the ring
// operates from.
//
// Account churn is the load-bearing design choice here: the *ring* is
// long-lived (the human fraudsters repeat, per the paper's 70% statistic),
// but individual scam accounts live only until victim reports get them
// locked. This bounds how much a classifier can gain by memorising
// receiver profiles, exactly as in production.
type Ring struct {
	ID        int32
	Members   []txn.UserID // all fraudster accounts ever used by the ring
	Mules     []txn.UserID // money-mule accounts (persistent, not labeled)
	StartDay  txn.Day
	EndDay    txn.Day // exclusive
	BaseCity  uint16
	LongLived bool
}

// World is a fully generated environment: the population, the fraud rings,
// the per-city latent risk, and the day-ordered transaction log.
type World struct {
	Config Config
	Users  []txn.User
	Rings  []Ring
	// CityRisk is the latent fraud propensity of each city in [0,1]. It is
	// generator state; models must estimate city risk from data.
	CityRisk []float64
	Log      []txn.Transaction

	contacts [][]txn.UserID
	oneShot  map[txn.UserID]bool       // fraudsters limited to a single scam
	stints   map[txn.UserID][2]txn.Day // scam period of each fraud account
	warmFrom map[txn.UserID]txn.Day    // first day of ring warm-up activity
}

// Stint returns the scam period of a fraudster account.
func (w *World) Stint(u txn.UserID) (start, end txn.Day, ok bool) {
	s, ok := w.stints[u]
	return s[0], s[1], ok
}

// WarmFrom returns the day a fraud account began its unlabeled ring
// warm-up (shuffle) activity.
func (w *World) WarmFrom(u txn.UserID) (txn.Day, bool) {
	d, ok := w.warmFrom[u]
	return d, ok
}

// Generate builds a World from the configuration.
func Generate(cfg Config) *World {
	cfg.fillDefaults()
	if cfg.Users < 100 {
		panic(fmt.Sprintf("synth: need at least 100 users, got %d", cfg.Users))
	}
	w := &World{Config: cfg}
	root := rng.New(cfg.Seed)
	w.genCities(root.Split(1))
	w.genUsers(root.Split(2))
	w.genRings(root.Split(3))
	w.genContacts(root.Split(4))
	w.genLog(root.Split(5))
	return w
}

func (w *World) genCities(r *rng.RNG) {
	w.CityRisk = make([]float64, w.Config.Cities)
	for i := range w.CityRisk {
		// Cubing a uniform concentrates mass near zero: most cities are
		// safe, a handful are risky, matching the paper's observation that
		// "fraudulent rates in some specific locations are always higher".
		u := r.Float64()
		w.CityRisk[i] = u * u * u
	}
}

func (w *World) genUsers(r *rng.RNG) {
	n := w.Config.Users
	w.Users = make([]txn.User, n)
	cityZipf := rng.NewZipf(w.Config.Cities, 1.1)
	for i := range w.Users {
		u := &w.Users[i]
		u.ID = txn.UserID(i)
		u.Age = uint8(18 + r.Intn(60))
		u.Gender = txn.Gender(1 + r.Intn(2))
		u.HomeCity = uint16(cityZipf.Sample(r))
		// Account ages follow a mixture: most accounts are mature, a steady
		// stream of sign-ups keeps a fat young tail so "new account" alone
		// cannot identify fraudsters.
		if r.Bool(0.25) {
			u.AccountAge = txn.AccountAgeDays(r.Intn(6) * 30)
		} else {
			u.AccountAge = txn.AccountAgeDays((6 + r.Intn(94)) * 30)
		}
		u.DeviceCount = uint8(1 + r.Intn(3))
		u.KYCLevel = uint8(r.Intn(4))
		// Profile floats are quantised to coarse grids: real systems store
		// them as bucketed statistics, and at laptop scale fine-grained
		// values would act as user fingerprints that classifiers could
		// memorise.
		u.AvgDailyTxns = quantizeLog(math.Exp(r.NormFloat64()*0.8-1.4), 12)
		u.AvgAmount = quantizeLog(math.Exp(r.NormFloat64()*0.9+4.5), 24)
		u.MerchantFlag = r.Bool(0.05)
		u.RingID = -1
		u.ActivityScore = float32(0.2 + r.ExpFloat64())
	}
}

// quantizeLog snaps v onto a geometric grid with the given number of
// levels per decade-ish span, bounding profile cardinality.
func quantizeLog(v float64, levels float64) float32 {
	if v <= 0 {
		return 0
	}
	l := math.Log(v)
	return float32(math.Exp(math.Round(l*levels/4) * 4 / levels))
}

// susceptibility is the latent probability-weight that a user falls for a
// scam. It is deliberately a conjunction of weak conditions - low KYC AND a
// young or very old age band AND a young account - so that the inverse
// problem (detecting fraud from features) rewards models that capture
// feature interactions (GBDT) over additive ones (LR).
func susceptibility(u *txn.User) float64 {
	s := 0.15
	lowKYC := u.KYCLevel <= 1
	ageBand := u.Age < 24 || u.Age > 62
	youngAcct := u.AccountAge < 365
	fewDevices := u.DeviceCount <= 1
	if lowKYC && ageBand {
		s += 0.5
	}
	if lowKYC && youngAcct {
		s += 0.35
	}
	if ageBand && fewDevices {
		s += 0.2
	}
	if lowKYC {
		s += 0.1
	}
	return s
}

func (w *World) genRings(r *rng.RNG) {
	cfg := &w.Config
	w.oneShot = make(map[txn.UserID]bool)
	w.stints = make(map[txn.UserID][2]txn.Day)
	w.warmFrom = make(map[txn.UserID]txn.Day)
	nFraudsters := int(float64(cfg.Users) * cfg.FraudsterFrac)
	if nFraudsters < cfg.RingSizeMin {
		nFraudsters = cfg.RingSizeMin
	}
	// Fraudster and mule accounts are drawn from the population; rings
	// never share accounts. Choose from a shuffled pool.
	pool := r.Perm(cfg.Users)
	pi := 0
	take := func() txn.UserID {
		id := txn.UserID(pool[pi])
		pi++
		return id
	}
	// City alias weighted by risk: rings operate out of risky cities.
	weights := make([]float64, len(w.CityRisk))
	for i, c := range w.CityRisk {
		weights[i] = 0.02 + c
	}
	cityAlias := rng.NewAlias(weights)

	placed := 0
	coldPlaced := 0
	ringID := int32(0)
	for placed < nFraudsters {
		slots := cfg.RingSizeMin + r.Intn(cfg.RingSizeMax-cfg.RingSizeMin+1)
		ring := Ring{ID: ringID, BaseCity: uint16(cityAlias.Sample(r))}
		// Activity window. Long-lived rings span the whole timeline
		// (repeat offenders visible in the network window); short-lived
		// ones burn out quickly; cold-start rings appear only in the final
		// week, invisible to embeddings. The cold-start share is held at
		// ColdStartFrac deterministically so every generated world has
		// embedding-blind fraud.
		days := txn.Day(cfg.Days)
		cold := float64(coldPlaced) < cfg.ColdStartFrac*float64(placed+slots)
		switch {
		case cold:
			// Cold-start rings appear inside the final test week, so no
			// dataset's network window has seen them.
			ring.StartDay = days - txn.Day(1+r.Intn(7))
			ring.EndDay = days
			ring.LongLived = false
		case r.Bool(cfg.RepeatOffenderFrac):
			ring.StartDay = txn.Day(r.Intn(30))
			ring.EndDay = days
			ring.LongLived = true
		default:
			ring.StartDay = txn.Day(r.Intn(cfg.Days - 10))
			dur := txn.Day(3 + int(r.ExpFloat64()*8))
			ring.EndDay = ring.StartDay + dur
			if ring.EndDay > days {
				ring.EndDay = days
			}
		}
		placedBefore := placed
		// Each slot is a chain of account stints. An account is *warmed
		// up* first - it participates in unlabeled intra-ring shuffles for
		// weeks, building transaction-network topology - then runs a short
		// scam burst until victim reports get it locked, and the ring
		// replaces it with the next aged account. Consequently the
		// accounts caught scamming in the training window are mostly NOT
		// the accounts scamming on the test day (bounding identity
		// memorisation), yet test-day scammers already sit inside the
		// ring's subgraph in the 90-day network window (embeddings can see
		// them). A small share is never reported and scams to the end.
		for s := 0; s < slots && placed < nFraudsters; s++ {
			start := ring.StartDay + txn.Day(r.Intn(3))
			for start < ring.EndDay && placed < nFraudsters {
				m := take()
				w.markFraudster(m, ringID, r)
				if r.Bool(cfg.OneShotFrac) {
					w.oneShot[m] = false // limited, not yet used
				}
				end := ring.EndDay
				if !r.Bool(0.1) { // most accounts are reported and locked
					end = start + txn.Day(4+int(r.ExpFloat64()*6))
					if end > ring.EndDay {
						end = ring.EndDay
					}
				}
				warm := start - txn.Day(20+int(r.ExpFloat64()*30))
				if cold && warm < ring.StartDay {
					// Cold-start rings must stay invisible to every
					// network window: no warm-up before the final week.
					warm = ring.StartDay
				}
				if warm < 0 {
					warm = 0
				}
				w.stints[m] = [2]txn.Day{start, end}
				w.warmFrom[m] = warm
				ring.Members = append(ring.Members, m)
				placed++
				start = end
			}
		}
		for i := 0; i < cfg.MulesPerRing; i++ {
			m := take()
			w.Users[m].RingID = ringID // mules belong to the ring but are not fraudsters
			ring.Mules = append(ring.Mules, m)
		}
		if cold {
			coldPlaced += placed - placedBefore
		}
		w.Rings = append(w.Rings, ring)
		ringID++
	}
}

// activeMembers returns the ring's fraudster accounts whose scam stint
// covers day. dst is reused across calls.
func (w *World) activeMembers(ring *Ring, day txn.Day, dst []txn.UserID) []txn.UserID {
	dst = dst[:0]
	for _, m := range ring.Members {
		st := w.stints[m]
		if day >= st[0] && day < st[1] {
			dst = append(dst, m)
		}
	}
	return dst
}

// warmMembers returns the ring's accounts inside their warm-up or scam
// period on day (these participate in shuffles). dst is reused.
func (w *World) warmMembers(ring *Ring, day txn.Day, dst []txn.UserID) []txn.UserID {
	dst = dst[:0]
	for _, m := range ring.Members {
		if day >= w.warmFrom[m] && day < w.stints[m][1] {
			dst = append(dst, m)
		}
	}
	return dst
}

// markFraudster rewrites a chosen user's profile to a fraudster profile:
// a tendency (not a rule) toward young throwaway accounts, several devices
// and minimal KYC. Each shift is applied with moderate probability so that
// profile features overlap heavily with the honest population - no single
// attribute identifies a fraudster.
func (w *World) markFraudster(id txn.UserID, ring int32, r *rng.RNG) {
	u := &w.Users[id]
	u.IsFraudster = true
	u.RingID = ring
	if r.Bool(0.5) {
		u.AccountAge = txn.AccountAgeDays(r.Intn(14) * 30)
	}
	if r.Bool(0.4) {
		u.DeviceCount = uint8(2 + r.Intn(5))
	}
	if r.Bool(0.55) {
		u.KYCLevel = uint8(r.Intn(2))
	}
	u.MerchantFlag = false
}

func (w *World) genContacts(r *rng.RNG) {
	cfg := &w.Config
	n := cfg.Users
	w.contacts = make([][]txn.UserID, n)
	// Community assignment: zipf-ish sizes via squared-uniform index.
	comm := make([]int, n)
	members := make([][]txn.UserID, cfg.Communities)
	for i := 0; i < n; i++ {
		c := r.Intn(cfg.Communities)
		comm[i] = c
		members[c] = append(members[c], txn.UserID(i))
	}
	merchants := make([]txn.UserID, 0, n/16)
	for i := range w.Users {
		if w.Users[i].MerchantFlag {
			merchants = append(merchants, txn.UserID(i))
		}
	}
	for i := 0; i < n; i++ {
		k := 1 + int(r.ExpFloat64()*float64(cfg.ContactsMean))
		if k > 40 {
			k = 40
		}
		seen := map[txn.UserID]struct{}{txn.UserID(i): {}}
		for len(w.contacts[i]) < k {
			var cand txn.UserID
			switch {
			case r.Bool(0.78) && len(members[comm[i]]) > 1:
				cand = members[comm[i]][r.Intn(len(members[comm[i]]))]
			case r.Bool(0.3) && len(merchants) > 0:
				cand = merchants[r.Intn(len(merchants))]
			default:
				cand = txn.UserID(r.Intn(n))
			}
			if _, dup := seen[cand]; dup {
				// Bail out quickly for tiny communities.
				if len(seen) > k+4 {
					break
				}
				continue
			}
			seen[cand] = struct{}{}
			w.contacts[i] = append(w.contacts[i], cand)
		}
		if len(w.contacts[i]) == 0 {
			w.contacts[i] = append(w.contacts[i], txn.UserID((i+1)%n))
		}
	}
}

// genLog produces the day-ordered transaction log: normal transfers, ring
// shuffles, and scams.
func (w *World) genLog(r *rng.RNG) {
	cfg := &w.Config
	n := cfg.Users
	// Sender alias weighted by activity.
	weights := make([]float64, n)
	for i := range w.Users {
		weights[i] = float64(w.Users[i].ActivityScore)
	}
	senderAlias := rng.NewAlias(weights)

	// Susceptibility-weighted victim sampling via tournament selection.
	susc := make([]float64, n)
	for i := range w.Users {
		susc[i] = susceptibility(&w.Users[i])
	}
	pickVictim := func(rr *rng.RNG, exclude int32) txn.UserID {
		best, bestS := -1, -1.0
		for t := 0; t < 3; t++ {
			c := rr.Intn(n)
			if w.Users[c].IsFraudster || w.Users[c].RingID == exclude {
				continue
			}
			if susc[c] > bestS {
				best, bestS = c, susc[c]
			}
		}
		if best < 0 {
			return txn.UserID(rr.Intn(n))
		}
		return txn.UserID(best)
	}

	id := txn.TxnID(0)
	next := func() txn.TxnID { id++; return id - 1 }
	// Remember past victims per ring for repeat scams.
	ringVictims := make([][]txn.UserID, len(w.Rings))

	expected := int(float64(n)*cfg.TxnsPerUserDay*float64(cfg.Days)) + cfg.Days*len(w.Rings)*4
	w.Log = make([]txn.Transaction, 0, expected)

	for day := txn.Day(0); int(day) < cfg.Days; day++ {
		dayRNG := r.Split(uint64(day) + 1000)

		// --- normal traffic ---
		nNormal := poisson(dayRNG, float64(n)*cfg.TxnsPerUserDay)
		for i := 0; i < nNormal; i++ {
			from := txn.UserID(senderAlias.Sample(dayRNG))
			cl := w.contacts[from]
			var to txn.UserID
			if dayRNG.Bool(0.85) {
				to = cl[dayRNG.Intn(len(cl))]
			} else {
				to = txn.UserID(dayRNG.Intn(n))
			}
			if to == from {
				to = txn.UserID((int(to) + 1) % n)
			}
			w.Log = append(w.Log, w.normalTxn(dayRNG, next(), day, from, to))
		}

		// --- fraud rings ---
		var active, warm []txn.UserID
		for ri := range w.Rings {
			ring := &w.Rings[ri]
			if day >= ring.EndDay {
				continue
			}
			warm = w.warmMembers(ring, day, warm)
			active = w.activeMembers(ring, day, active)
			if len(warm) == 0 && len(active) == 0 {
				continue
			}
			// Intra-ring shuffles: warming-up account -> mule, mule ->
			// mule. These are unlabeled but create the dense subgraph
			// embeddings learn; an aging scam account gets linked into the
			// ring's persistent mule cluster weeks before its first scam.
			nShuffle := 0
			if len(warm) > 0 {
				nShuffle = poisson(dayRNG, cfg.RingShufflesPerDay)
			}
			for s := 0; s < nShuffle; s++ {
				var from, to txn.UserID
				if dayRNG.Bool(0.6) && len(ring.Mules) > 0 {
					from = warm[dayRNG.Intn(len(warm))]
					to = ring.Mules[dayRNG.Intn(len(ring.Mules))]
				} else if len(ring.Mules) >= 2 {
					from = ring.Mules[dayRNG.Intn(len(ring.Mules))]
					to = ring.Mules[dayRNG.Intn(len(ring.Mules))]
				} else {
					from = warm[dayRNG.Intn(len(warm))]
					to = warm[dayRNG.Intn(len(warm))]
				}
				if from == to {
					continue
				}
				t := w.normalTxn(dayRNG, next(), day, from, to)
				t.TransCity = ring.BaseCity
				t.Amount = float32(math.Exp(dayRNG.NormFloat64()*0.6 + 6.2)) // larger shuffles
				w.Log = append(w.Log, t)
			}
			// Scams: victim -> fraudster, labeled fraud. One-shot
			// fraudsters (OneShotFrac of ring members) stop after their
			// first scam, which keeps the repeat-offender share near the
			// paper's ~70%.
			for _, f := range active {
				nScams := poisson(dayRNG, cfg.ScamsPerDay)
				if used, limited := w.oneShot[f]; limited {
					if used {
						continue
					}
					if nScams > 1 {
						nScams = 1
					}
					if nScams == 1 {
						w.oneShot[f] = true
					}
				}
				for s := 0; s < nScams; s++ {
					var victim txn.UserID
					if len(ringVictims[ri]) > 0 && dayRNG.Bool(cfg.VictimRepeatProb) {
						victim = ringVictims[ri][dayRNG.Intn(len(ringVictims[ri]))]
					} else {
						victim = pickVictim(dayRNG, ring.ID)
						ringVictims[ri] = append(ringVictims[ri], victim)
					}
					w.Log = append(w.Log, w.scamTxn(dayRNG, next(), day, victim, f, ring))
				}
			}
		}
	}
	// The log is generated day-ordered already; sort within days by second
	// for a realistic stream and deterministic order.
	sort.SliceStable(w.Log, func(i, j int) bool {
		if w.Log[i].Day != w.Log[j].Day {
			return w.Log[i].Day < w.Log[j].Day
		}
		return w.Log[i].Sec < w.Log[j].Sec
	})
}

// normalTxn synthesizes an honest transfer. A small fraction gets
// risky-looking attributes (late hour, proxy IP, travel) so that fraud is
// not trivially separable.
func (w *World) normalTxn(r *rng.RNG, id txn.TxnID, day txn.Day, from, to txn.UserID) txn.Transaction {
	fu := &w.Users[from]
	t := txn.Transaction{
		ID: id, Day: day, From: from, To: to,
		Amount:  float32(math.Exp(r.NormFloat64()*0.7)) * fu.AvgAmount,
		Channel: txn.Channel(r.Intn(txn.NumChannels)),
	}
	// Daytime-weighted hour.
	if r.Bool(0.9) {
		t.Sec = int32((8*3600 + r.Intn(15*3600)))
	} else {
		t.Sec = int32(r.Intn(8 * 3600))
	}
	if r.Bool(0.9) {
		t.TransCity = fu.HomeCity
	} else {
		t.TransCity = uint16(r.Intn(w.Config.Cities))
	}
	u := r.Float64()
	t.DeviceRisk = float32(u * u * u * u)
	v := r.Float64()
	t.IPRisk = float32(v * v * v)
	if r.Bool(0.05) { // occasional VPN / shared IP
		t.IPRisk = float32(0.4 + 0.6*r.Float64())
	}
	// Benign anomalies: travellers making unusually large transfers from a
	// foreign city, often at odd hours. These honest outliers are what
	// break pure anomaly detection (the paper's observation that IF's
	// outliers "are probably not caused by fraud cases but for other
	// reasons").
	if r.Bool(0.03) {
		t.Amount *= float32(3 + 5*r.Float64())
		t.TransCity = uint16(r.Intn(w.Config.Cities))
		if r.Bool(0.5) {
			t.Sec = int32(r.Intn(8 * 3600))
		}
		if r.Bool(0.4) {
			t.IPRisk = float32(0.3 + 0.7*r.Float64())
		}
	}
	return t
}

// scamTxn synthesizes a fraudulent transfer from victim to fraudster.
// Individual attributes overlap with honest traffic; the joint distribution
// (amount band x hour x IP risk x city risk x fresh transferee account) is
// what separates it.
func (w *World) scamTxn(r *rng.RNG, id txn.TxnID, day txn.Day, victim, fraudster txn.UserID, ring *Ring) txn.Transaction {
	vu := &w.Users[victim]
	t := txn.Transaction{
		ID: id, Day: day, From: victim, To: fraudster, Fraud: true,
	}
	// Scam amounts sit in a band that overlaps the honest distribution's
	// upper half; individually the amount is a weak cue.
	t.Amount = float32(math.Exp(r.NormFloat64()*0.9 + 6.0)) // median ~400 yuan
	if r.Bool(0.3) {
		t.Amount = float32(math.Round(float64(t.Amount)/100) * 100)
		if t.Amount < 100 {
			t.Amount = 100
		}
	}
	// Mild evening/night skew.
	if r.Bool(0.25) {
		t.Sec = int32(20*3600 + r.Intn(8*3600))
		if t.Sec >= 24*3600 {
			t.Sec -= 24 * 3600
		}
	} else {
		t.Sec = int32(8*3600 + r.Intn(15*3600))
	}
	// Some scams route through the ring's city IP pool.
	if r.Bool(0.3) {
		t.TransCity = ring.BaseCity
	} else {
		t.TransCity = vu.HomeCity
	}
	// A minority of victims are phished onto proxied sessions.
	if r.Bool(0.3) {
		t.IPRisk = float32(0.3 + 0.7*r.Float64())
	} else {
		v := r.Float64()
		t.IPRisk = float32(v * v * v)
	}
	u := r.Float64()
	t.DeviceRisk = float32(u * u * u)
	if r.Bool(0.15) {
		t.DeviceRisk = float32(0.3 + 0.7*r.Float64())
	}
	// Mild skew to instant channels.
	if r.Bool(0.45) {
		t.Channel = txn.ChannelBankCard
	} else {
		t.Channel = txn.Channel(r.Intn(txn.NumChannels))
	}
	return t
}

// poisson draws a Poisson variate with the given mean (Knuth for small
// means, normal approximation above 30).
func poisson(r *rng.RNG, mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		v := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if v < 0 {
			return 0
		}
		return v
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Dataset slices the paper's dataset i (1-based; i=1 tests on April 10,
// day 104) out of the world's log.
func (w *World) Dataset(i int) (*txn.Dataset, error) {
	if i < 1 || i > 7 {
		return nil, fmt.Errorf("synth: dataset index %d outside [1,7]", i)
	}
	testDay := txn.Day(txn.NetworkDays + txn.TrainDays + i - 1)
	return txn.Slice(w.Log, i, testDay)
}

// UserTable exposes profiles indexed by UserID for feature extraction.
func (w *World) UserTable() []txn.User { return w.Users }

// FraudsterStats reports how many fraudsters committed at least one and at
// least two scams - the paper's "approximately 70% of the fraudsters have
// fraudulent behaviors more than once".
func (w *World) FraudsterStats() (once, repeat int) {
	counts := make(map[txn.UserID]int)
	for _, t := range w.Log {
		if t.Fraud {
			counts[t.To]++
		}
	}
	for _, c := range counts {
		if c >= 1 {
			once++
		}
		if c >= 2 {
			repeat++
		}
	}
	return once, repeat
}
