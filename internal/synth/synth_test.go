package synth

import (
	"testing"

	"titant/internal/graph"
	"titant/internal/txn"
)

func testWorld(t *testing.T) *World {
	t.Helper()
	return Generate(TestConfig())
}

func TestDeterminism(t *testing.T) {
	w1 := Generate(TestConfig())
	w2 := Generate(TestConfig())
	if len(w1.Log) != len(w2.Log) {
		t.Fatalf("log lengths differ: %d vs %d", len(w1.Log), len(w2.Log))
	}
	for i := range w1.Log {
		if w1.Log[i] != w2.Log[i] {
			t.Fatalf("log diverges at %d: %+v vs %+v", i, w1.Log[i], w2.Log[i])
		}
	}
}

func TestSeedChangesWorld(t *testing.T) {
	c1, c2 := TestConfig(), TestConfig()
	c2.Seed = 999
	w1, w2 := Generate(c1), Generate(c2)
	if len(w1.Log) == len(w2.Log) {
		same := true
		for i := range w1.Log {
			if w1.Log[i] != w2.Log[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical logs")
		}
	}
}

func TestFraudRateInBand(t *testing.T) {
	w := testWorld(t)
	rate := txn.FraudRate(w.Log)
	if rate < 0.003 || rate > 0.05 {
		t.Errorf("fraud rate %.4f outside [0.003, 0.05]", rate)
	}
}

func TestLabelsOnlyOnScams(t *testing.T) {
	w := testWorld(t)
	for _, tx := range w.Log {
		if tx.Fraud && !w.Users[tx.To].IsFraudster {
			t.Fatalf("fraud txn %d paid a non-fraudster %d", tx.ID, tx.To)
		}
		if tx.Fraud && w.Users[tx.From].IsFraudster {
			t.Fatalf("fraud txn %d sent by a fraudster %d", tx.ID, tx.From)
		}
	}
}

func TestRepeatOffenderShare(t *testing.T) {
	// The paper observes ~70% of fraudsters defraud more than once. Allow a
	// wide band; the property we must preserve is "most repeat".
	w := Generate(DefaultConfig())
	once, repeat := w.FraudsterStats()
	if once == 0 {
		t.Fatal("no fraudsters committed any scam")
	}
	share := float64(repeat) / float64(once)
	if share < 0.5 || share > 0.98 {
		t.Errorf("repeat-offender share %.2f outside [0.5, 0.98] (once=%d repeat=%d)", share, once, repeat)
	}
}

func TestLogOrdered(t *testing.T) {
	w := testWorld(t)
	for i := 1; i < len(w.Log); i++ {
		a, b := w.Log[i-1], w.Log[i]
		if b.Day < a.Day || (b.Day == a.Day && b.Sec < a.Sec) {
			t.Fatalf("log out of order at %d", i)
		}
	}
}

func TestTxnFieldsSane(t *testing.T) {
	w := testWorld(t)
	n := txn.UserID(len(w.Users))
	for _, tx := range w.Log {
		if tx.From == tx.To {
			t.Fatalf("self transfer %d", tx.ID)
		}
		if tx.From < 0 || tx.From >= n || tx.To < 0 || tx.To >= n {
			t.Fatalf("txn %d references unknown user", tx.ID)
		}
		if tx.Amount <= 0 {
			t.Fatalf("txn %d non-positive amount %v", tx.ID, tx.Amount)
		}
		if tx.Sec < 0 || tx.Sec >= 86400 {
			t.Fatalf("txn %d second-of-day %d out of range", tx.ID, tx.Sec)
		}
		if tx.DeviceRisk < 0 || tx.DeviceRisk > 1 || tx.IPRisk < 0 || tx.IPRisk > 1 {
			t.Fatalf("txn %d risk out of [0,1]", tx.ID)
		}
		if int(tx.TransCity) >= w.Config.Cities {
			t.Fatalf("txn %d city %d out of range", tx.ID, tx.TransCity)
		}
	}
}

func TestDatasetSlicing(t *testing.T) {
	w := testWorld(t)
	for i := 1; i <= 7; i++ {
		d, err := w.Dataset(i)
		if err != nil {
			t.Fatalf("dataset %d: %v", i, err)
		}
		if d.TestDay != txn.Day(txn.NetworkDays+txn.TrainDays+i-1) {
			t.Errorf("dataset %d test day = %d", i, d.TestDay)
		}
		if txn.FraudRate(d.Test) == 0 {
			t.Errorf("dataset %d has no fraud on test day", i)
		}
	}
	if _, err := w.Dataset(0); err == nil {
		t.Error("Dataset(0) did not error")
	}
	if _, err := w.Dataset(8); err == nil {
		t.Error("Dataset(8) did not error")
	}
}

func TestGatheringBehaviour(t *testing.T) {
	// Victims of the same fraudster must be 2-hop neighbours in the
	// network-window graph (the paper's Figure 2). Needs the full-size
	// world so multi-victim fraudsters exist in the window.
	w := Generate(DefaultConfig())
	d, err := w.Dataset(1)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.FromTransactions(d.Network)
	// Find a fraudster with >= 2 distinct victims inside the window.
	victimsOf := make(map[txn.UserID][]txn.UserID)
	for _, tx := range d.Network {
		if tx.Fraud {
			victimsOf[tx.To] = append(victimsOf[tx.To], tx.From)
		}
	}
	checked := 0
	for f, vs := range victimsOf {
		if len(vs) < 2 || vs[0] == vs[1] {
			continue
		}
		fn, ok := g.Node(f)
		if !ok {
			t.Fatalf("fraudster %d missing from graph", f)
		}
		v0, ok0 := g.Node(vs[0])
		v1, ok1 := g.Node(vs[1])
		if !ok0 || !ok1 {
			continue
		}
		_ = fn
		two := g.TwoHopNeighbors(v0)
		if _, isTwoHop := two[v1]; !isTwoHop {
			// v1 may also be a direct neighbour through other traffic;
			// only fail when neither relation holds.
			if !g.HasEdge(v0, v1) && !g.HasEdge(v1, v0) {
				t.Errorf("victims %d and %d of fraudster %d are not 2-hop neighbours", vs[0], vs[1], f)
			}
		}
		checked++
		if checked > 20 {
			break
		}
	}
	if checked == 0 {
		t.Error("no multi-victim fraudster found in the network window; gathering behaviour untestable")
	}
}

func TestRingTopologyDense(t *testing.T) {
	// Ring members and mules must be connected in the network window for
	// long-lived rings (the subgraph embeddings pick out).
	w := testWorld(t)
	d, _ := w.Dataset(1)
	g := graph.FromTransactions(d.Network)
	tested := 0
	for _, ring := range w.Rings {
		if !ring.LongLived || ring.StartDay > 30 {
			continue
		}
		linked := 0
		total := 0
		for _, m := range ring.Members {
			n, ok := g.Node(m)
			if !ok {
				continue
			}
			total++
			for _, mule := range ring.Mules {
				mn, ok := g.Node(mule)
				if ok && (g.HasEdge(n, mn) || g.HasEdge(mn, n)) {
					linked++
					break
				}
			}
		}
		if total > 0 {
			tested++
			if linked == 0 {
				t.Errorf("ring %d: no member linked to any mule", ring.ID)
			}
		}
	}
	if tested == 0 {
		t.Skip("no long-lived early ring in tiny test world")
	}
}

func TestColdStartRingsExist(t *testing.T) {
	w := Generate(DefaultConfig())
	cold := 0
	for _, r := range w.Rings {
		if r.StartDay >= txn.Day(txn.NetworkDays+txn.TrainDays) {
			cold++
		}
	}
	if cold == 0 {
		t.Error("no cold-start rings; embedding lift would be unrealistically easy")
	}
}

func TestFraudsterProfilesShifted(t *testing.T) {
	w := Generate(DefaultConfig())
	var fAge, nAge, fCount, nCount float64
	for i := range w.Users {
		u := &w.Users[i]
		if u.IsFraudster {
			fAge += float64(u.AccountAge)
			fCount++
		} else {
			nAge += float64(u.AccountAge)
			nCount++
		}
	}
	if fCount == 0 {
		t.Fatal("no fraudsters generated")
	}
	if fAge/fCount >= nAge/nCount {
		t.Errorf("fraudster mean account age %.0f >= honest %.0f; profile shift missing",
			fAge/fCount, nAge/nCount)
	}
}

func TestPoisson(t *testing.T) {
	w := testWorld(t)
	_ = w
	// poisson is internal; exercise through the generator plus direct edge
	// cases here.
	if got := poisson(nil, 0); got != 0 {
		t.Errorf("poisson(0) = %d", got)
	}
}

func TestGeneratePanicsOnTinyPopulation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Generate with 10 users did not panic")
		}
	}()
	Generate(Config{Users: 10, Days: 5})
}

func BenchmarkGenerateDefault(b *testing.B) {
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Generate(cfg)
	}
}
