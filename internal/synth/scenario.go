// Scenario library: named attack patterns composed onto the base
// ring-fraud world.
//
// The base generator (synth.go) produces one workload shape — organised
// fraud rings scamming susceptible victims. Real fraud platforms are
// validated against a wider library of named attacks replayed at volume:
// account takeover (credential theft, device/IP churn, then a drain),
// merchant bust-out (a good history cashed in with a burst of inflated
// charges), mule chains (stolen funds hopped through fresh accounts), and
// card-testing bursts (many tiny probes validating stolen credentials).
//
// Compose layers any mix of these onto a generated world under the same
// seed: scenario traffic is derived from rng streams split off the world
// seed after the base generator's streams, so a composed world is exactly
// the base world plus deterministic scenario traffic — an empty mix
// returns the base world bit-for-bit, and the same (seed, mix) always
// yields the same log. Every incident emits labeled ground truth (its
// fraudulent transactions carry Fraud=true) and a machine-readable
// manifest entry: the scenario kind, the accounts involved, the
// activation window, and the exact transaction IDs of its fraud — which
// is what turns "catches fraud" into per-scenario recall/precision
// numbers a load harness or CI gate can assert.
package synth

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"titant/internal/rng"
	"titant/internal/txn"
)

// Scenario kind names used in manifests and reports.
const (
	KindRing        = "ring"
	KindATO         = "account_takeover"
	KindBustOut     = "bust_out"
	KindMuleChain   = "mule_chain"
	KindCardTesting = "card_testing"
)

// ScenarioKinds lists every kind a composed world can contain, in
// manifest order.
var ScenarioKinds = []string{KindRing, KindATO, KindBustOut, KindMuleChain, KindCardTesting}

// ScenarioMix selects how many incidents of each attack pattern Compose
// layers onto the base world. The zero mix composes nothing (the returned
// world is the base world unchanged, with ring manifests only).
type ScenarioMix struct {
	ATO         int // account-takeover incidents
	BustOut     int // merchant bust-out incidents
	MuleChains  int // mule-chain incidents
	CardTesting int // card-testing bursts
}

// DefaultScenarioMix is the composed world used by the detection-quality
// gate and the load harness: enough incidents of every kind that both the
// training window and the final test week see each pattern.
func DefaultScenarioMix() ScenarioMix {
	return ScenarioMix{ATO: 8, BustOut: 4, MuleChains: 6, CardTesting: 5}
}

func (m ScenarioMix) total() int { return m.ATO + m.BustOut + m.MuleChains + m.CardTesting }

// ScenarioManifest is the machine-readable ground truth of one incident:
// which attack pattern ran, which accounts were attacker-side, when it
// was active, and exactly which transactions were fraudulent. Load
// harnesses score replayed traffic and join verdicts against FraudTxns to
// compute per-scenario recall; anything flagged outside every manifest's
// FraudTxns is a false positive.
type ScenarioManifest struct {
	Kind     string  `json:"kind"`
	ID       int     `json:"id"`
	StartDay txn.Day `json:"start_day"`
	EndDay   txn.Day `json:"end_day"` // exclusive

	// Users are the attacker-side accounts: ring members and mules,
	// the ATO victim and its drain mules, the bust-out merchant, the
	// mule-chain hop accounts, the card-testing receiver.
	Users []txn.UserID `json:"users"`

	// FraudTxns are the transaction IDs of this incident's labeled fraud.
	FraudTxns []txn.TxnID `json:"fraud_txns"`

	// DecisionScenario is the decision-plane scenario this attack arrives
	// under (see internal/decision): drains and chain hops are transfers,
	// bust-out charges and card tests are payments. Load generators tag
	// /v1/decide traffic with it.
	DecisionScenario string `json:"decision_scenario"`
}

// Manifest describes a composed world: the generating seed and the
// per-incident ground truth. It is emitted next to load reports so a run
// is reproducible from the manifest alone.
type Manifest struct {
	Seed      uint64             `json:"seed"`
	Users     int                `json:"users"`
	Days      int                `json:"days"`
	Scenarios []ScenarioManifest `json:"scenarios"`
}

// Encode renders the manifest as indented JSON.
func (m *Manifest) Encode() ([]byte, error) {
	return json.MarshalIndent(m, "", "  ")
}

// DecodeManifest parses an encoded manifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("synth: decode manifest: %w", err)
	}
	return &m, nil
}

// FraudByTxn inverts the manifest: transaction ID → scenario kind, the
// lookup a harness joins verdicts against.
func (m *Manifest) FraudByTxn() map[txn.TxnID]string {
	idx := make(map[txn.TxnID]string)
	for i := range m.Scenarios {
		s := &m.Scenarios[i]
		for _, id := range s.FraudTxns {
			idx[id] = s.Kind
		}
	}
	return idx
}

// Compose generates the base world for cfg and layers mix's attack
// scenarios onto it. The scenario generators draw from rng streams split
// off the same seed after the base generator's streams, so composition is
// deterministic and purely additive: Compose(cfg, ScenarioMix{}) returns
// a world whose log is bit-for-bit the base Generate(cfg) log. The
// returned manifest always carries the base world's fraud rings (kind
// "ring") plus one entry per composed incident.
func Compose(cfg Config, mix ScenarioMix) (*World, *Manifest) {
	w := Generate(cfg)
	man := &Manifest{Seed: w.Config.Seed, Users: w.Config.Users, Days: w.Config.Days}
	man.Scenarios = append(man.Scenarios, ringManifests(w)...)
	if mix.total() == 0 {
		return w, man
	}
	// Split ids 1..5 are taken by the base generator; scenarios get 6.
	// Split does not advance the parent stream, so this is the stream the
	// base generator would have derived next.
	root := rng.New(w.Config.Seed).Split(6)
	c := &composer{
		w:      w,
		nextID: txn.TxnID(len(w.Log)),
		used:   make(map[txn.UserID]bool),
	}
	// Accounts already owned by the base world's rings stay off-limits so
	// scenario ground truth never overlaps ring ground truth.
	for i := range w.Users {
		if w.Users[i].RingID >= 0 {
			c.used[w.Users[i].ID] = true
		}
	}
	id := len(man.Scenarios)
	for i := 0; i < mix.ATO; i++ {
		man.Scenarios = append(man.Scenarios, c.ato(root.Split(uint64(100+i)), id, i, mix.ATO))
		id++
	}
	for i := 0; i < mix.BustOut; i++ {
		man.Scenarios = append(man.Scenarios, c.bustOut(root.Split(uint64(200+i)), id, i, mix.BustOut))
		id++
	}
	for i := 0; i < mix.MuleChains; i++ {
		man.Scenarios = append(man.Scenarios, c.muleChain(root.Split(uint64(300+i)), id, i, mix.MuleChains))
		id++
	}
	for i := 0; i < mix.CardTesting; i++ {
		man.Scenarios = append(man.Scenarios, c.cardTesting(root.Split(uint64(400+i)), id, i, mix.CardTesting))
		id++
	}
	// Re-establish the stream order invariant the slicer depends on.
	sort.SliceStable(w.Log, func(i, j int) bool {
		if w.Log[i].Day != w.Log[j].Day {
			return w.Log[i].Day < w.Log[j].Day
		}
		return w.Log[i].Sec < w.Log[j].Sec
	})
	return w, man
}

// ringManifests derives manifest entries for the base world's fraud
// rings, so ring ground truth flows through the same machine-readable
// format as the composed scenarios (one generator, one truth source).
func ringManifests(w *World) []ScenarioManifest {
	memberRing := make(map[txn.UserID]int, 64)
	out := make([]ScenarioManifest, len(w.Rings))
	for i := range w.Rings {
		r := &w.Rings[i]
		out[i] = ScenarioManifest{
			Kind: KindRing, ID: i,
			StartDay: r.StartDay, EndDay: r.EndDay,
			Users:            append(append([]txn.UserID{}, r.Members...), r.Mules...),
			DecisionScenario: "transfer",
		}
		for _, m := range r.Members {
			memberRing[m] = i
		}
	}
	for _, t := range w.Log {
		if t.Fraud {
			if ri, ok := memberRing[t.To]; ok {
				out[ri].FraudTxns = append(out[ri].FraudTxns, t.ID)
			}
		}
	}
	return out
}

// composer holds the state shared by the incident generators.
type composer struct {
	w      *World
	nextID txn.TxnID
	used   map[txn.UserID]bool
}

func (c *composer) next() txn.TxnID { id := c.nextID; c.nextID++; return id }

// window stripes incident i of n across the labeled span — training days
// through the final test week — with small jitter, so any mix with a few
// incidents per kind covers both the training window (the model learns
// the pattern) and the test week (the gate can measure recall on it).
func (c *composer) window(r *rng.RNG, i, n, span int) (txn.Day, txn.Day) {
	days := txn.Day(c.w.Config.Days)
	lo := txn.Day(txn.NetworkDays) // first training day
	width := int(days) - span - int(lo)
	if width < 1 {
		width = 1
	}
	start := lo + txn.Day(i*width/n) + txn.Day(r.Intn(3))
	if start >= days-txn.Day(span) {
		start = days - txn.Day(span)
	}
	end := start + txn.Day(span)
	if end > days {
		end = days
	}
	return start, end
}

// freshAccount claims an unused honest account and rewrites it as a
// young attacker-controlled profile: a throwaway with minimal KYC, the
// receiver-profile signal every drain and burst carries.
func (c *composer) freshAccount(r *rng.RNG) txn.UserID {
	id := c.claim(r, func(u *txn.User) bool { return !u.IsFraudster })
	u := &c.w.Users[id]
	u.IsFraudster = true
	u.AccountAge = txn.AccountAgeDays(r.Intn(90))
	u.KYCLevel = uint8(r.Intn(2))
	u.DeviceCount = uint8(1 + r.Intn(2))
	u.MerchantFlag = false
	return id
}

// claim finds an unused account satisfying ok and marks it used.
func (c *composer) claim(r *rng.RNG, ok func(*txn.User) bool) txn.UserID {
	n := c.w.Config.Users
	for {
		id := txn.UserID(r.Intn(n))
		if c.used[id] {
			continue
		}
		if ok != nil && !ok(&c.w.Users[id]) {
			continue
		}
		c.used[id] = true
		return id
	}
}

// victim draws an honest account for the "From" side of an attack
// transaction without claiming it (victims stay in the honest pool).
func (c *composer) victim(r *rng.RNG) txn.UserID {
	n := c.w.Config.Users
	for {
		id := txn.UserID(r.Intn(n))
		if !c.w.Users[id].IsFraudster && !c.used[id] {
			return id
		}
	}
}

// emit appends one scenario transaction, labels it, and records it in
// the manifest when fraudulent.
func (c *composer) emit(m *ScenarioManifest, t txn.Transaction) {
	t.ID = c.next()
	c.w.Log = append(c.w.Log, t)
	if t.Fraud {
		m.FraudTxns = append(m.FraudTxns, t.ID)
	}
}

// nightSec draws a night-skewed (p) or daytime second of day.
func nightSec(r *rng.RNG, p float64) int32 {
	if r.Bool(p) {
		return int32(r.Intn(6 * 3600))
	}
	return int32(8*3600 + r.Intn(15*3600))
}

// ato is an account takeover: a mature honest account is compromised,
// probed from a new device and proxied IPs in foreign cities, then
// drained into fresh mule accounts with transfers far above the victim's
// historical amounts. Probes and drains are both reported fraud — the
// victim reports the whole episode.
func (c *composer) ato(r *rng.RNG, id, i, n int) ScenarioManifest {
	w := c.w
	victim := c.claim(r, func(u *txn.User) bool {
		return !u.IsFraudster && u.AccountAge > 365 && !u.MerchantFlag
	})
	mules := []txn.UserID{c.freshAccount(r), c.freshAccount(r)}
	start, end := c.window(r, i, n, 3)
	m := ScenarioManifest{
		Kind: KindATO, ID: id, StartDay: start, EndDay: end,
		Users:            append([]txn.UserID{victim}, mules...),
		DecisionScenario: "transfer",
	}
	vu := &w.Users[victim]
	farCity := uint16(r.Intn(w.Config.Cities))
	for farCity == vu.HomeCity {
		farCity = uint16(r.Intn(w.Config.Cities))
	}
	// Churn phase: small probe transfers validating the stolen session.
	nProbes := 2 + r.Intn(3)
	for p := 0; p < nProbes; p++ {
		c.emit(&m, txn.Transaction{
			Day: start, Sec: nightSec(r, 0.6),
			From: victim, To: mules[r.Intn(len(mules))],
			Amount:     float32(1 + r.Intn(20)),
			TransCity:  farCity,
			DeviceRisk: float32(0.5 + 0.45*r.Float64()),
			IPRisk:     float32(0.5 + 0.5*r.Float64()),
			Channel:    txn.ChannelBalance,
			Fraud:      true,
		})
	}
	// Drain phase: a handful of large transfers over the next days.
	nDrains := 3 + r.Intn(4)
	for d := 0; d < nDrains; d++ {
		day := start + txn.Day(1+r.Intn(int(end-start-1)+1))
		if day >= end {
			day = end - 1
		}
		amt := float64(vu.AvgAmount) * (8 + 30*r.Float64())
		if r.Bool(0.4) {
			amt = math.Round(amt/100) * 100
		}
		ch := txn.ChannelBalance
		if r.Bool(0.4) {
			ch = txn.ChannelBankCard
		}
		c.emit(&m, txn.Transaction{
			Day: day, Sec: nightSec(r, 0.6),
			From: victim, To: mules[r.Intn(len(mules))],
			Amount:     float32(amt),
			TransCity:  farCity,
			DeviceRisk: float32(0.4 + 0.55*r.Float64()),
			IPRisk:     float32(0.4 + 0.6*r.Float64()),
			Channel:    ch,
			Fraud:      true,
		})
	}
	return m
}

// bustOut is a merchant bust-out: a merchant account accumulates a few
// days of clean-looking build-up payments, then cashes out with a burst
// of inflated charges and disappears. Only the burst is reported fraud.
func (c *composer) bustOut(r *rng.RNG, id, i, n int) ScenarioManifest {
	w := c.w
	merchant := c.freshAccount(r)
	w.Users[merchant].MerchantFlag = true
	buildDays := 3 + r.Intn(3)
	start, end := c.window(r, i, n, buildDays+2)
	burst := end - 2
	m := ScenarioManifest{
		Kind: KindBustOut, ID: id, StartDay: start, EndDay: end,
		Users:            []txn.UserID{merchant},
		DecisionScenario: "payment",
	}
	// Build-up: unlabeled ordinary-looking payments into the merchant.
	for day := start; day < burst; day++ {
		for k := 0; k < 2+r.Intn(3); k++ {
			payer := c.victim(r)
			c.emit(&m, txn.Transaction{
				Day: day, Sec: nightSec(r, 0.1),
				From: payer, To: merchant,
				Amount:     float32(math.Exp(r.NormFloat64()*0.6 + 4.2)),
				TransCity:  w.Users[payer].HomeCity,
				DeviceRisk: float32(0.1 * r.Float64()),
				IPRisk:     float32(0.1 * r.Float64()),
				Channel:    txn.ChannelCredit,
				Fraud:      false,
			})
		}
	}
	// Burst: inflated charges, many per day, credit-channel skew.
	nCharges := 15 + r.Intn(26)
	for k := 0; k < nCharges; k++ {
		day := burst + txn.Day(r.Intn(2))
		payer := c.victim(r)
		pu := &w.Users[payer]
		amt := float64(pu.AvgAmount) * (4 + 8*r.Float64())
		if r.Bool(0.5) {
			amt = math.Round(amt/100) * 100
			if amt < 100 {
				amt = 100
			}
		}
		ch := txn.ChannelCredit
		if r.Bool(0.3) {
			ch = txn.ChannelBankCard
		}
		c.emit(&m, txn.Transaction{
			Day: day, Sec: nightSec(r, 0.3),
			From: payer, To: merchant,
			Amount:     float32(amt),
			TransCity:  pu.HomeCity,
			DeviceRisk: float32(0.2 + 0.5*r.Float64()),
			IPRisk:     float32(0.3 + 0.6*r.Float64()),
			Channel:    ch,
			Fraud:      true,
		})
	}
	return m
}

// muleChain hops stolen funds through a chain of fresh accounts: an
// origin scam lands on the first hop, then the money forwards hop to hop
// within hours, each hop slightly smaller (the mule's cut). Every link
// is reported fraud once the origin is.
func (c *composer) muleChain(r *rng.RNG, id, i, n int) ScenarioManifest {
	w := c.w
	hops := 3 + r.Intn(2)
	chain := make([]txn.UserID, hops)
	for h := range chain {
		chain[h] = c.freshAccount(r)
	}
	start, end := c.window(r, i, n, 4)
	m := ScenarioManifest{
		Kind: KindMuleChain, ID: id, StartDay: start, EndDay: end,
		Users:            append([]txn.UserID{}, chain...),
		DecisionScenario: "transfer",
	}
	opCity := uint16(r.Intn(w.Config.Cities))
	rounds := 2 + r.Intn(3)
	for k := 0; k < rounds; k++ {
		day := start + txn.Day(r.Intn(int(end-start)))
		victim := c.victim(r)
		amt := math.Exp(r.NormFloat64()*0.6 + 6.8)
		sec := int32(10*3600 + r.Intn(10*3600))
		// Origin scam into the head of the chain.
		c.emit(&m, txn.Transaction{
			Day: day, Sec: sec,
			From: victim, To: chain[0],
			Amount:     float32(amt),
			TransCity:  opCity,
			DeviceRisk: float32(0.2 + 0.5*r.Float64()),
			IPRisk:     float32(0.3 + 0.7*r.Float64()),
			Channel:    txn.ChannelBankCard,
			Fraud:      true,
		})
		// Rapid forwarding hops, minutes to an hour apart.
		for h := 1; h < hops; h++ {
			sec += int32(300 + r.Intn(3300))
			if sec >= 24*3600 {
				sec = 24*3600 - 1
			}
			amt *= 0.9 + 0.05*r.Float64()
			c.emit(&m, txn.Transaction{
				Day: day, Sec: sec,
				From: chain[h-1], To: chain[h],
				Amount:     float32(amt),
				TransCity:  opCity,
				DeviceRisk: float32(0.3 + 0.5*r.Float64()),
				IPRisk:     float32(0.3 + 0.6*r.Float64()),
				Channel:    txn.ChannelBalance,
				Fraud:      true,
			})
		}
	}
	return m
}

// cardTesting is a card-testing burst: one fresh receiver account
// absorbs dozens of tiny probes charged to stolen cards within minutes,
// all through proxied sessions on one device. Every probe is fraud.
func (c *composer) cardTesting(r *rng.RNG, id, i, n int) ScenarioManifest {
	w := c.w
	attacker := c.freshAccount(r)
	start, end := c.window(r, i, n, 1)
	m := ScenarioManifest{
		Kind: KindCardTesting, ID: id, StartDay: start, EndDay: end,
		Users:            []txn.UserID{attacker},
		DecisionScenario: "payment",
	}
	city := uint16(r.Intn(w.Config.Cities))
	deviceRisk := float32(0.4 + 0.4*r.Float64()) // one device, one session
	sec := int32(r.Intn(20 * 3600))
	nProbes := 25 + r.Intn(36)
	for k := 0; k < nProbes; k++ {
		sec += int32(5 + r.Intn(36))
		if sec >= 24*3600 {
			sec = 24*3600 - 1
		}
		c.emit(&m, txn.Transaction{
			Day: start, Sec: sec,
			From: c.victim(r), To: attacker,
			Amount:     float32(1 + r.Intn(9)),
			TransCity:  city,
			DeviceRisk: deviceRisk,
			IPRisk:     float32(0.5 + 0.5*r.Float64()),
			Channel:    txn.ChannelBankCard,
			Fraud:      true,
		})
	}
	return m
}
