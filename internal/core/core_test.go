package core

import (
	"context"
	"testing"

	"titant/internal/hbase"
	"titant/internal/ms"
	"titant/internal/synth"
	"titant/internal/txn"
)

func quickOpts() Options {
	o := DefaultOptions()
	o.GBDT.Trees = 60
	o.LR.Iterations = 6
	o.DW.WalksPerNode = 4
	o.S2V.Epochs = 3
	return o
}

func world(t testing.TB) (*synth.World, *txn.Dataset) {
	t.Helper()
	w := synth.Generate(synth.TestConfig())
	ds, err := w.Dataset(1)
	if err != nil {
		t.Fatal(err)
	}
	return w, ds
}

func TestTrainEvalAllDetectors(t *testing.T) {
	w, ds := world(t)
	opts := quickOpts()
	emb := LearnEmbeddings(ds, opts)
	for _, det := range []Detector{DetIF, DetID3, DetC50, DetLR, DetGBDT} {
		r := TrainEval(w.Users, ds, FeatBasic, det, emb, opts)
		if r.F1 < 0 || r.F1 > 1 || r.RecTop1 < 0 || r.RecTop1 > 1 {
			t.Errorf("%v: out-of-range metrics %+v", det, r)
		}
		if r.TestRows != len(ds.Test) {
			t.Errorf("%v: test rows %d != %d", det, r.TestRows, len(ds.Test))
		}
		if r.TestFrauds == 0 {
			t.Errorf("%v: no fraud on test day", det)
		}
	}
}

func TestTrainEvalFeatureSets(t *testing.T) {
	w, ds := world(t)
	opts := quickOpts()
	emb := LearnEmbeddings(ds, opts)
	for _, fs := range []FeatureSet{FeatBasic, FeatBasicS2V, FeatBasicDW, FeatBasicDWS2V} {
		r := TrainEval(w.Users, ds, fs, DetGBDT, emb, opts)
		if r.Features != fs {
			t.Errorf("feature set mismatch: %v", r.Features)
		}
	}
}

func TestTrainMatrixWidths(t *testing.T) {
	w, ds := world(t)
	opts := quickOpts()
	emb := LearnEmbeddings(ds, opts)
	m, labels := TrainMatrix(w.Users, ds, FeatBasic, emb, opts)
	if m.Cols != 52 || len(labels) != m.Rows {
		t.Fatalf("basic matrix %dx%d labels=%d", m.Rows, m.Cols, len(labels))
	}
	m2, _ := TrainMatrix(w.Users, ds, FeatBasicDW, emb, opts)
	if m2.Cols != 52+2*opts.Dim {
		t.Fatalf("DW matrix cols=%d", m2.Cols)
	}
	m3, _ := TrainMatrix(w.Users, ds, FeatBasicDWS2V, emb, opts)
	if m3.Cols != 52+4*opts.Dim {
		t.Fatalf("DW+S2V matrix cols=%d", m3.Cols)
	}
}

func TestStringers(t *testing.T) {
	if FeatBasic.String() != "Basic" || FeatBasicDWS2V.String() != "Basic+DW+S2V" {
		t.Error("feature set names wrong")
	}
	if DetGBDT.String() != "GBDT" || DetC50.String() != "C5.0" {
		t.Error("detector names wrong")
	}
	if FeatureSet(99).String() == "" || Detector(99).String() == "" {
		t.Error("unknown enum names empty")
	}
}

func TestEmbeddingsCoverNetworkUsers(t *testing.T) {
	_, ds := world(t)
	opts := quickOpts()
	emb := LearnEmbeddings(ds, opts)
	if emb.DW.Len() == 0 || emb.S2V.Len() == 0 {
		t.Fatal("empty embeddings")
	}
	if emb.DW.Dim() != opts.Dim || emb.S2V.Dim() != opts.Dim {
		t.Fatal("dimension mismatch")
	}
}

func TestEndToEndServing(t *testing.T) {
	// Full pipeline: train for serving, deploy to HBase, score the test
	// day through the Model Server, and verify the orderings broadly agree
	// with offline evaluation.
	w, ds := world(t)
	opts := quickOpts()
	clf, emb, threshold, err := TrainForServing(w.Users, ds, opts)
	if err != nil {
		t.Fatal(err)
	}
	tab, err := hbase.Open(hbase.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	bundle, err := Deploy(w.Users, ds, emb, clf, threshold, opts, tab, "test-version")
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ms.New(tab, bundle)
	if err != nil {
		t.Fatal(err)
	}
	verdicts, err := srv.ScoreBatch(context.Background(), ds.Test)
	if err != nil {
		t.Fatal(err)
	}
	var fraudScores, honestScores float64
	var nf, nh int
	for i, v := range verdicts {
		if ds.Test[i].Fraud {
			fraudScores += v.Score
			nf++
		} else {
			honestScores += v.Score
			nh++
		}
	}
	if nf == 0 {
		t.Skip("no fraud on tiny test day")
	}
	if fraudScores/float64(nf) <= honestScores/float64(nh) {
		t.Errorf("served fraud mean score %.4f <= honest %.4f",
			fraudScores/float64(nf), honestScores/float64(nh))
	}
	if st := srv.Latency(); st.Count != int64(len(ds.Test)) {
		t.Errorf("latency count %d != %d", st.Count, len(ds.Test))
	}
}
