// Package core implements the TitAnt pipeline of Figure 3: offline
// periodical training (build the transaction network from 90 days of
// records, learn user node embeddings, extract basic features, train a
// detector, freeze a decision threshold) and the artefacts the online side
// consumes (model bundles and HBase feature uploads).
//
// The paper's "T+1" protocol is encoded in TrainEval: models train on the
// 14-day labeled window and are evaluated on the following test day, with
// the decision threshold selected on the last two training days (labels
// are delayed, so no online tuning is possible).
package core

import (
	"fmt"
	"strings"

	"titant/internal/feature"
	"titant/internal/graph"
	"titant/internal/hbase"
	"titant/internal/metrics"
	"titant/internal/model"
	"titant/internal/model/gbdt"
	"titant/internal/model/iforest"
	"titant/internal/model/lr"
	"titant/internal/model/ruletree"
	"titant/internal/ms"
	"titant/internal/nrl"
	"titant/internal/nrl/deepwalk"
	"titant/internal/nrl/struc2vec"
	"titant/internal/txn"
)

// FeatureSet selects which features feed the detector (Table 1 rows).
type FeatureSet int

// Feature sets of Table 1.
const (
	FeatBasic FeatureSet = iota
	FeatBasicS2V
	FeatBasicDW
	FeatBasicDWS2V
)

func (f FeatureSet) String() string {
	switch f {
	case FeatBasic:
		return "Basic"
	case FeatBasicS2V:
		return "Basic+S2V"
	case FeatBasicDW:
		return "Basic+DW"
	case FeatBasicDWS2V:
		return "Basic+DW+S2V"
	}
	return fmt.Sprintf("FeatureSet(%d)", int(f))
}

// Detector selects the detection method (Table 1 columns / Figure 9 bars).
type Detector int

// Detectors evaluated in the paper.
const (
	DetIF Detector = iota
	DetID3
	DetC50
	DetLR
	DetGBDT
)

func (d Detector) String() string {
	switch d {
	case DetIF:
		return "IF"
	case DetID3:
		return "ID3"
	case DetC50:
		return "C5.0"
	case DetLR:
		return "LR"
	case DetGBDT:
		return "GBDT"
	}
	return fmt.Sprintf("Detector(%d)", int(d))
}

// Key returns the detector's lowercase CLI/bundle-member name.
func (d Detector) Key() string {
	switch d {
	case DetIF:
		return "if"
	case DetID3:
		return "id3"
	case DetC50:
		return "c50"
	case DetLR:
		return "lr"
	case DetGBDT:
		return "gbdt"
	}
	return fmt.Sprintf("detector%d", int(d))
}

// ParseDetector maps a CLI name back to a Detector.
func ParseDetector(s string) (Detector, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "if", "iforest":
		return DetIF, nil
	case "id3":
		return DetID3, nil
	case "c50", "c5.0":
		return DetC50, nil
	case "lr":
		return DetLR, nil
	case "gbdt":
		return DetGBDT, nil
	}
	return 0, fmt.Errorf("core: unknown detector %q (want if, id3, c50, lr or gbdt)", s)
}

// Options bundles every component's hyperparameters. DefaultOptions
// matches the paper's Section 5.1 settings (GBDT 400x3 with 0.4
// subsampling, LR with 200 bins and L1 0.1, IF with 100 trees, embedding
// dimension 32) with laptop-scale NRL sampling effort.
type Options struct {
	Cities  int // city-table size for aggregates
	ValDays int // training days reserved for threshold selection
	Dim     int // embedding dimension
	DW      deepwalk.Config
	S2V     struc2vec.Config
	LR      lr.Config
	GBDT    gbdt.Config
	ID3     ruletree.Config
	C50     ruletree.Config
	IF      iforest.Config
	Seed    uint64
}

// DefaultOptions returns the paper-aligned configuration.
func DefaultOptions() Options {
	o := Options{
		Cities:  128,
		ValDays: 2,
		Dim:     32,
		DW:      deepwalk.BenchConfig(),
		S2V:     struc2vec.DefaultConfig(),
		LR:      lr.DefaultConfig(),
		GBDT:    gbdt.DefaultConfig(),
		ID3:     ruletree.DefaultID3(),
		C50:     ruletree.DefaultC50(),
		IF:      iforest.DefaultConfig(),
		Seed:    1,
	}
	o.DW.Dim = o.Dim
	o.S2V.Dim = o.Dim
	return o
}

// Embeddings caches the two NRL methods' outputs for one dataset, shared
// across detector configurations (the paper trains embeddings once per
// day, not once per configuration).
type Embeddings struct {
	DW  *nrl.Embeddings
	S2V *nrl.Embeddings
}

// LearnEmbeddings builds the transaction network from the dataset's
// 90-day window and trains both NRL methods.
func LearnEmbeddings(ds *txn.Dataset, opts Options) *Embeddings {
	g := graph.FromTransactions(ds.Network)
	dwCfg := opts.DW
	dwCfg.Dim = opts.Dim
	dwCfg.Seed = opts.Seed
	s2vCfg := opts.S2V
	s2vCfg.Dim = opts.Dim
	s2vCfg.Seed = opts.Seed
	return &Embeddings{
		DW:  deepwalk.Train(g, dwCfg),
		S2V: struc2vec.Train(g, s2vCfg),
	}
}

// LearnDW trains only DeepWalk (for sweeps that do not need S2V).
func LearnDW(ds *txn.Dataset, opts Options) *Embeddings {
	g := graph.FromTransactions(ds.Network)
	dwCfg := opts.DW
	dwCfg.Dim = opts.Dim
	dwCfg.Seed = opts.Seed
	return &Embeddings{DW: deepwalk.Train(g, dwCfg)}
}

// buildMatrix assembles the feature matrix for a transaction slice under a
// feature set.
func buildMatrix(ex *feature.Extractor, ts []txn.Transaction, fs FeatureSet, emb *Embeddings, dim int) *feature.Matrix {
	m := ex.BasicMatrix(ts)
	switch fs {
	case FeatBasic:
		return m
	case FeatBasicS2V:
		return feature.WithEmbeddings(m, ts, dim, emb.S2V.Lookup)
	case FeatBasicDW:
		return feature.WithEmbeddings(m, ts, dim, emb.DW.Lookup)
	case FeatBasicDWS2V:
		m = feature.WithEmbeddings(m, ts, dim, emb.DW.Lookup)
		return feature.WithEmbeddings(m, ts, dim, emb.S2V.Lookup)
	}
	panic(fmt.Sprintf("core: unknown feature set %d", int(fs)))
}

// Result is one configuration's evaluation on one test day.
type Result struct {
	Dataset    int
	Features   FeatureSet
	Detector   Detector
	F1         float64
	RecTop1    float64
	AUC        float64
	Threshold  float64
	TrainRows  int
	TestRows   int
	TestFrauds int
}

// TrainEval runs the full T+1 pipeline for one (dataset, feature set,
// detector) cell: extract features, train on the early training days,
// select the F1-maximising threshold on the validation days, evaluate on
// the test day. emb may be nil for FeatBasic.
func TrainEval(users []txn.User, ds *txn.Dataset, fs FeatureSet, det Detector, emb *Embeddings, opts Options) Result {
	agg := feature.BuildAggregates(ds.Network, opts.Cities)
	ex := feature.NewExtractor(users, agg)

	trainM := buildMatrix(ex, ds.Train, fs, emb, opts.Dim)
	testM := buildMatrix(ex, ds.Test, fs, emb, opts.Dim)
	labels := feature.LabelsOf(ds.Train)

	// Split the 14 training days into fit + validation by day.
	valStart := ds.TrainEnd - txn.Day(opts.ValDays)
	fitRows, valRows := splitByDay(ds.Train, valStart)
	fitM, fitL := subset(trainM, labels, fitRows)
	valM, valL := subset(trainM, labels, valRows)

	clf := trainDetector(det, fitM, fitL, opts)

	valScores := mustScores(clf, valM)
	_, threshold := metrics.BestF1(valScores, valL)

	testScores := mustScores(clf, testM)
	testLabels := feature.LabelsOf(ds.Test)
	return Result{
		Dataset:    ds.Index,
		Features:   fs,
		Detector:   det,
		F1:         metrics.F1At(testScores, testLabels, threshold),
		RecTop1:    metrics.RecallAtTop(testScores, testLabels, 0.01),
		AUC:        metrics.AUC(testScores, testLabels),
		Threshold:  threshold,
		TrainRows:  fitM.Rows,
		TestRows:   testM.Rows,
		TestFrauds: countTrue(testLabels),
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// trainDetector dispatches to the concrete trainer.
func trainDetector(det Detector, m *feature.Matrix, labels []bool, opts Options) model.Classifier {
	switch det {
	case DetIF:
		cfg := opts.IF
		cfg.Seed = opts.Seed
		return iforest.Train(m, cfg)
	case DetID3:
		return ruletree.Train(m, labels, opts.ID3)
	case DetC50:
		return ruletree.Train(m, labels, opts.C50)
	case DetLR:
		cfg := opts.LR
		cfg.Seed = opts.Seed
		return lr.Train(m, labels, cfg)
	case DetGBDT:
		cfg := opts.GBDT
		cfg.Seed = opts.Seed
		return gbdt.Train(m, labels, cfg)
	}
	panic(fmt.Sprintf("core: unknown detector %d", int(det)))
}

// mustScores scores m through model.ScoreMatrix, which dispatches to the
// detector's batch path when it implements model.BatchScorer. Training-time
// matrices are built by the same extractor that shaped the model, so a
// width mismatch here is a pipeline bug, not recoverable input.
func mustScores(clf model.Classifier, m *feature.Matrix) []float64 {
	s, err := model.ScoreMatrix(clf, m)
	if err != nil {
		panic(err)
	}
	return s
}

// splitByDay partitions row indices of ts by whether their day is before
// valStart.
func splitByDay(ts []txn.Transaction, valStart txn.Day) (fit, val []int) {
	for i := range ts {
		if ts[i].Day < valStart {
			fit = append(fit, i)
		} else {
			val = append(val, i)
		}
	}
	return fit, val
}

// subset materialises the given rows of m (and labels).
func subset(m *feature.Matrix, labels []bool, rows []int) (*feature.Matrix, []bool) {
	out := feature.NewMatrix(len(rows), m.Cols)
	ls := make([]bool, len(rows))
	for i, r := range rows {
		copy(out.Row(i), m.Row(r))
		ls[i] = labels[r]
	}
	return out, ls
}

// TrainMatrix builds the full 14-day training matrix and labels for a
// feature set - exposed for the experiment harness (e.g. the distributed
// GBDT of Figure 10 trains on the same matrix the single-machine path
// uses).
func TrainMatrix(users []txn.User, ds *txn.Dataset, fs FeatureSet, emb *Embeddings, opts Options) (*feature.Matrix, []bool) {
	agg := feature.BuildAggregates(ds.Network, opts.Cities)
	ex := feature.NewExtractor(users, agg)
	return buildMatrix(ex, ds.Train, fs, emb, opts.Dim), feature.LabelsOf(ds.Train)
}

// UserSink receives deployed user rows. The plain feature-table
// Uploader satisfies it, as does the sharded uploader that routes each
// row to its owner table by consistent hash — so one deployment path
// feeds a single store and a ring of shard stores alike.
type UserSink interface {
	PutUser(u *txn.User, stats feature.UserStats, vec []float32) error
}

// uploadUsersTo materialises every user's profile, aggregate fragment
// and DW embedding into the sink.
func uploadUsersTo(users []txn.User, agg *feature.Aggregates, emb *Embeddings, sink UserSink) error {
	for i := range users {
		u := &users[i]
		var vec []float32
		if emb != nil && emb.DW != nil {
			vec = emb.DW.Lookup(u.ID)
		}
		if err := sink.PutUser(u, agg.Stats(u.ID), vec); err != nil {
			return fmt.Errorf("core: upload user %d: %w", u.ID, err)
		}
	}
	return nil
}

func embDim(emb *Embeddings) int {
	if emb != nil && emb.DW != nil {
		return emb.DW.Dim()
	}
	return 0
}

// Deploy materialises a trained day into the online stores: uploads every
// user's profile, aggregate fragment and DW embedding to HBase and returns
// the model bundle for the Model Server. version follows the paper's
// date-time convention.
func Deploy(users []txn.User, ds *txn.Dataset, emb *Embeddings, clf model.Classifier, threshold float64, opts Options, tab *hbase.Table, version string) (*ms.Bundle, error) {
	return DeployTo(users, ds, emb, clf, threshold, opts, &ms.Uploader{Table: tab}, version)
}

// DeployTo is Deploy against any UserSink: pass a sharded uploader to
// partition the upload wave across a ring of shard tables in one pass.
func DeployTo(users []txn.User, ds *txn.Dataset, emb *Embeddings, clf model.Classifier, threshold float64, opts Options, sink UserSink, version string) (*ms.Bundle, error) {
	agg := feature.BuildAggregates(ds.Network, opts.Cities)
	if err := uploadUsersTo(users, agg, emb, sink); err != nil {
		return nil, err
	}
	return ms.NewBundle(version, clf, threshold, agg.CityTable(), embDim(emb))
}

// BuildEnsembleBundle assembles a v2 ensemble bundle from trained members
// without touching the online stores — the bundle-file half of an
// ensemble deployment (see DeployEnsemble for the uploading variant).
func BuildEnsembleBundle(ds *txn.Dataset, emb *Embeddings, members []ms.EnsembleMember, combine ms.Combiner, threshold float64, opts Options, version string) (*ms.Bundle, error) {
	agg := feature.BuildAggregates(ds.Network, opts.Cities)
	return ms.NewEnsembleBundle(version, members, combine, threshold, agg.CityTable(), embDim(emb))
}

// DeployEnsemble is Deploy for ensemble bundles: uploads every user's
// fragments and returns a v2 bundle combining the trained members.
func DeployEnsemble(users []txn.User, ds *txn.Dataset, emb *Embeddings, members []ms.EnsembleMember, combine ms.Combiner, threshold float64, opts Options, tab *hbase.Table, version string) (*ms.Bundle, error) {
	return DeployEnsembleTo(users, ds, emb, members, combine, threshold, opts, &ms.Uploader{Table: tab}, version)
}

// DeployEnsembleTo is DeployEnsemble against any UserSink (see DeployTo).
func DeployEnsembleTo(users []txn.User, ds *txn.Dataset, emb *Embeddings, members []ms.EnsembleMember, combine ms.Combiner, threshold float64, opts Options, sink UserSink, version string) (*ms.Bundle, error) {
	agg := feature.BuildAggregates(ds.Network, opts.Cities)
	if err := uploadUsersTo(users, agg, emb, sink); err != nil {
		return nil, err
	}
	return ms.NewEnsembleBundle(version, members, combine, threshold, agg.CityTable(), embDim(emb))
}

// TrainEnsembleForServing trains one detector per entry of dets on the
// production feature set (Basic+DW), freezing each member's own threshold
// and the combined decision threshold on the validation days — the same
// T+1 protocol TrainForServing applies to the single GBDT. The returned
// members are ordered as requested, weighted equally, and named by
// Detector.Key.
func TrainEnsembleForServing(users []txn.User, ds *txn.Dataset, dets []Detector, combine ms.Combiner, opts Options) ([]ms.EnsembleMember, *Embeddings, float64, error) {
	if len(dets) == 0 {
		return nil, nil, 0, fmt.Errorf("core: ensemble needs at least one detector")
	}
	emb := LearnDW(ds, opts)
	agg := feature.BuildAggregates(ds.Network, opts.Cities)
	ex := feature.NewExtractor(users, agg)
	trainM := buildMatrix(ex, ds.Train, FeatBasicDW, emb, opts.Dim)
	labels := feature.LabelsOf(ds.Train)
	valStart := ds.TrainEnd - txn.Day(opts.ValDays)
	fitRows, valRows := splitByDay(ds.Train, valStart)
	fitM, fitL := subset(trainM, labels, fitRows)
	valM, valL := subset(trainM, labels, valRows)

	members := make([]ms.EnsembleMember, 0, len(dets))
	for _, det := range dets {
		clf := trainDetector(det, fitM, fitL, opts)
		_, thr := metrics.BestF1(mustScores(clf, valM), valL)
		members = append(members, ms.EnsembleMember{Name: det.Key(), Clf: clf, Weight: 1, Threshold: thr})
	}

	// Freeze the ensemble threshold on the combined validation scores,
	// through the same combiner the bundle will serve with.
	probe, err := ms.NewEnsembleBundle("val", members, combine, 0, agg.CityTable(), opts.Dim)
	if err != nil {
		return nil, nil, 0, err
	}
	combined := make([]float64, valM.Rows)
	if err := probe.ScoreMatrix(combined, nil, valM); err != nil {
		return nil, nil, 0, err
	}
	_, threshold := metrics.BestF1(combined, valL)
	return members, emb, threshold, nil
}

// TrainForServing runs the paper's production configuration (Basic+DW+
// GBDT, the Table 1 winner) on a dataset and returns everything the
// online side needs.
func TrainForServing(users []txn.User, ds *txn.Dataset, opts Options) (model.Classifier, *Embeddings, float64, error) {
	emb := LearnDW(ds, opts)
	agg := feature.BuildAggregates(ds.Network, opts.Cities)
	ex := feature.NewExtractor(users, agg)
	trainM := buildMatrix(ex, ds.Train, FeatBasicDW, emb, opts.Dim)
	labels := feature.LabelsOf(ds.Train)
	valStart := ds.TrainEnd - txn.Day(opts.ValDays)
	fitRows, valRows := splitByDay(ds.Train, valStart)
	fitM, fitL := subset(trainM, labels, fitRows)
	valM, valL := subset(trainM, labels, valRows)
	cfg := opts.GBDT
	cfg.Seed = opts.Seed
	clf := gbdt.Train(fitM, fitL, cfg)
	_, threshold := metrics.BestF1(mustScores(clf, valM), valL)
	return clf, emb, threshold, nil
}
