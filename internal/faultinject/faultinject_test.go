package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func testServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		io.WriteString(w, "ok")
	}))
	t.Cleanup(hs.Close)
	return hs
}

func get(t *testing.T, c *http.Client, url string) (*http.Response, error) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c.Do(req)
}

func TestParseScenarioRejectsBadScripts(t *testing.T) {
	cases := []string{
		`{"rules":[{"shard":0,"kind":"nope"}]}`,                           // unknown kind
		`{"rules":[{"shard":0,"kind":"latency"}]}`,                        // latency without delay
		`{"rules":[{"shard":0,"kind":"reset","prob":1.5}]}`,               // probability out of range
		`{"rules":[{"shard":0,"kind":"reset","start_ms":10,"end_ms":5}]}`, // inverted window
		`{"rules":[{"shard":0,"kind":"reset","typo":true}]}`,              // unknown field
	}
	for _, raw := range cases {
		if _, err := ParseScenario([]byte(raw)); err == nil {
			t.Errorf("accepted bad scenario %s", raw)
		}
	}
	sc, err := ParseScenario([]byte(`{"seed":7,"rules":[{"shard":-1,"kind":"latency","latency_ms":5}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if sc.Seed != 7 || len(sc.Rules) != 1 {
		t.Fatalf("parsed scenario = %+v", sc)
	}
	if enc, err := sc.Encode(); err != nil || !strings.Contains(string(enc), `"latency"`) {
		t.Fatalf("round trip: %s (%v)", enc, err)
	}
}

func TestTransportFaults(t *testing.T) {
	var hits atomic.Int64
	hs := testServer(t, &hits)
	shardOf := ShardByHost([]string{hs.URL})

	t.Run("reset never reaches the server", func(t *testing.T) {
		hits.Store(0)
		sc := &Scenario{Rules: []Rule{{Shard: 0, Kind: KindReset}}}
		tr := NewTransport(nil, sc, shardOf)
		c := &http.Client{Transport: tr}
		if _, err := get(t, c, hs.URL); err == nil || !errors.Is(err, ErrReset) && !strings.Contains(err.Error(), ErrReset.Error()) {
			t.Fatalf("err = %v, want reset", err)
		}
		if hits.Load() != 0 || tr.Forwarded() != 0 {
			t.Fatalf("reset forwarded: hits=%d fwd=%d", hits.Load(), tr.Forwarded())
		}
	})

	t.Run("http_error synthesizes without forwarding", func(t *testing.T) {
		hits.Store(0)
		sc := &Scenario{Rules: []Rule{{Shard: 0, Kind: KindHTTPError, Status: 502}}}
		c := &http.Client{Transport: NewTransport(nil, sc, shardOf)}
		resp, err := get(t, c, hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 502 || hits.Load() != 0 {
			t.Fatalf("status=%d hits=%d", resp.StatusCode, hits.Load())
		}
	})

	t.Run("drop_response delivers then loses the reply", func(t *testing.T) {
		hits.Store(0)
		sc := &Scenario{Rules: []Rule{{Shard: 0, Kind: KindDropResponse}}}
		tr := NewTransport(nil, sc, shardOf)
		c := &http.Client{Transport: tr}
		if _, err := get(t, c, hs.URL); err == nil {
			t.Fatal("dropped response returned no error")
		}
		if hits.Load() != 1 || tr.Forwarded() != 1 {
			t.Fatalf("side effect accounting: hits=%d fwd=%d, want 1/1", hits.Load(), tr.Forwarded())
		}
	})

	t.Run("blackhole blocks until the context dies", func(t *testing.T) {
		hits.Store(0)
		sc := &Scenario{Rules: []Rule{{Shard: 0, Kind: KindBlackhole}}}
		c := &http.Client{Transport: NewTransport(nil, sc, shardOf)}
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		defer cancel()
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, hs.URL, nil)
		start := time.Now()
		_, err := c.Do(req)
		if err == nil || !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("blackhole err = %v", err)
		}
		if d := time.Since(start); d < 25*time.Millisecond {
			t.Fatalf("blackhole returned after %v, before the context expired", d)
		}
		if hits.Load() != 0 {
			t.Fatal("blackholed request reached the server")
		}
	})

	t.Run("latency delays then forwards", func(t *testing.T) {
		hits.Store(0)
		sc := &Scenario{Rules: []Rule{{Shard: 0, Kind: KindLatency, LatencyMs: 40}}}
		tr := NewTransport(nil, sc, shardOf)
		c := &http.Client{Transport: tr}
		start := time.Now()
		resp, err := get(t, c, hs.URL)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if d := time.Since(start); d < 40*time.Millisecond {
			t.Fatalf("latency fault added only %v", d)
		}
		if hits.Load() != 1 {
			t.Fatal("latency fault swallowed the request")
		}
		st := tr.Stats()
		if len(st) != 1 || st[0].Hits != 1 || st[0].Applied != 1 {
			t.Fatalf("rule stats = %+v", st)
		}
	})
}

// TestTransportWindowing: rules only fire inside their time window, so
// a scripted outage starts and ends on schedule — the revival half of
// every chaos scenario.
func TestTransportWindowing(t *testing.T) {
	var hits atomic.Int64
	hs := testServer(t, &hits)
	sc := &Scenario{Rules: []Rule{{Shard: 0, Kind: KindReset, StartMs: 50, EndMs: 100}}}
	tr := NewTransport(nil, sc, ShardByHost([]string{hs.URL}))
	base := time.Now()
	tr.Start(base.Add(-70 * time.Millisecond)) // we are now 70ms "into" the scenario
	c := &http.Client{Transport: tr}
	if _, err := get(t, c, hs.URL); err == nil {
		t.Fatal("inside the window the reset must fire")
	}
	// Wait until past EndMs; the same request now flows.
	time.Sleep(40 * time.Millisecond)
	resp, err := get(t, c, hs.URL)
	if err != nil {
		t.Fatalf("after the window: %v", err)
	}
	resp.Body.Close()
	if hits.Load() != 1 {
		t.Fatalf("hits = %d, want 1", hits.Load())
	}
}

// TestTransportShardScoping: a rule scoped to shard 1 leaves shard 0
// traffic untouched, and unmapped hosts bypass all rules.
func TestTransportShardScoping(t *testing.T) {
	var hits0, hits1 atomic.Int64
	hs0, hs1 := testServer(t, &hits0), testServer(t, &hits1)
	sc := &Scenario{Rules: []Rule{{Shard: 1, Kind: KindReset}}}
	tr := NewTransport(nil, sc, ShardByHost([]string{hs0.URL, hs1.URL}))
	c := &http.Client{Transport: tr}
	resp, err := get(t, c, hs0.URL)
	if err != nil {
		t.Fatalf("shard 0 caught shard 1's fault: %v", err)
	}
	resp.Body.Close()
	if _, err := get(t, c, hs1.URL); err == nil {
		t.Fatal("shard 1's fault did not fire")
	}
	if hits0.Load() != 1 || hits1.Load() != 0 {
		t.Fatalf("hits = %d/%d", hits0.Load(), hits1.Load())
	}
}

// TestTransportSeededProbability: probabilistic rules draw from the
// scenario seed — two transports with the same seed fault the same
// requests in the same order.
func TestTransportSeededProbability(t *testing.T) {
	var hits atomic.Int64
	hs := testServer(t, &hits)
	run := func() []bool {
		sc := &Scenario{Seed: 42, Rules: []Rule{{Shard: 0, Kind: KindReset, Prob: 0.5}}}
		c := &http.Client{Transport: NewTransport(nil, sc, ShardByHost([]string{hs.URL}))}
		out := make([]bool, 40)
		for i := range out {
			resp, err := get(t, c, hs.URL)
			out[i] = err != nil
			if err == nil {
				resp.Body.Close()
			}
		}
		return out
	}
	a, b := run(), run()
	faulted := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: seeded runs diverged", i)
		}
		if a[i] {
			faulted++
		}
	}
	if faulted == 0 || faulted == len(a) {
		t.Fatalf("prob 0.5 faulted %d of %d", faulted, len(a))
	}
}
