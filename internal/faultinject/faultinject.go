// Package faultinject is the chaos layer that makes the wire tier's
// resilience claims falsifiable. It wraps an http.RoundTripper with a
// seeded, scripted fault scenario: per-shard latency injection,
// blackholes (the request hangs until the caller's deadline fires),
// connection resets, 5xx bursts and dropped responses (the request is
// delivered but the reply is lost — the fault class that turns naive
// retries into duplicate side effects).
//
// A Scenario is a list of Rules, each scoped to a shard, a time window
// relative to Start, an optional path prefix and an optional probability
// drawn from the scenario seed. The same scenario against the same
// traffic produces the same fault schedule, so a chaos run is a
// regression test, not a dice roll: the tier-1 chaos test and the
// `titant loadgen -chaos` harness both run scripts from this package and
// assert on the outcome.
package faultinject

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"titant/internal/rng"
)

// Fault kinds a Rule can inject.
const (
	// KindLatency delays the request by LatencyMs before forwarding it.
	KindLatency = "latency"
	// KindBlackhole swallows the request: it is never forwarded and the
	// call blocks until the caller's context expires (a dead host behind
	// a silently dropping network).
	KindBlackhole = "blackhole"
	// KindReset fails the request immediately with a connection-reset
	// error; the request is never forwarded.
	KindReset = "reset"
	// KindHTTPError answers with a synthesized Status (default 500)
	// without forwarding the request (an overloaded or crashing server
	// whose frontend still answers).
	KindHTTPError = "http_error"
	// KindDropResponse forwards the request to the real server, then
	// discards the response and reports a reset. The side effect
	// happened; the caller cannot know. This is the fault that proves
	// at-most-once semantics: a layer that retries through it duplicates
	// work.
	KindDropResponse = "drop_response"
)

var validKinds = map[string]bool{
	KindLatency: true, KindBlackhole: true, KindReset: true,
	KindHTTPError: true, KindDropResponse: true,
}

// ErrReset is the transport error surfaced by KindReset and
// KindDropResponse faults.
var ErrReset = errors.New("faultinject: connection reset by peer")

// Rule is one scripted fault: on requests to Shard whose URL path starts
// with Path (empty: any), between StartMs and EndMs after the scenario
// starts, inject Kind with probability Prob.
type Rule struct {
	// Shard is the target shard index; -1 matches every shard.
	Shard int `json:"shard"`
	// StartMs/EndMs bound the fault window in milliseconds since
	// Transport.Start. EndMs 0 leaves the window open-ended.
	StartMs int64 `json:"start_ms"`
	EndMs   int64 `json:"end_ms,omitempty"`
	// Kind is one of the Kind* constants.
	Kind string `json:"kind"`
	// LatencyMs is the added delay for KindLatency rules.
	LatencyMs int64 `json:"latency_ms,omitempty"`
	// Status is the synthesized response code for KindHTTPError (0: 500).
	Status int `json:"status,omitempty"`
	// Prob is the fraction of matched requests the fault hits, drawn
	// from the scenario seed (0 or 1: every matched request).
	Prob float64 `json:"prob,omitempty"`
	// Path restricts the rule to request paths with this prefix.
	Path string `json:"path,omitempty"`
}

// Scenario is a seeded fault script.
type Scenario struct {
	// Seed drives the probabilistic rules; the same seed replays the
	// same coin flips in dispatch order.
	Seed  uint64 `json:"seed"`
	Rules []Rule `json:"rules"`
}

// Validate rejects rules with unknown kinds, negative windows or
// out-of-range probabilities.
func (s *Scenario) Validate() error {
	for i, r := range s.Rules {
		if !validKinds[r.Kind] {
			return fmt.Errorf("faultinject: rule %d: unknown kind %q", i, r.Kind)
		}
		if r.StartMs < 0 || (r.EndMs != 0 && r.EndMs < r.StartMs) {
			return fmt.Errorf("faultinject: rule %d: window [%d,%d) is invalid", i, r.StartMs, r.EndMs)
		}
		if r.Prob < 0 || r.Prob > 1 {
			return fmt.Errorf("faultinject: rule %d: probability %g out of [0,1]", i, r.Prob)
		}
		if r.Kind == KindLatency && r.LatencyMs <= 0 {
			return fmt.Errorf("faultinject: rule %d: latency rule needs latency_ms > 0", i)
		}
	}
	return nil
}

// ParseScenario decodes a scenario script, rejecting unknown fields so a
// typo in a rule cannot silently disable a fault.
func ParseScenario(raw []byte) (*Scenario, error) {
	var s Scenario
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("faultinject: parse scenario: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Encode renders the scenario as indented JSON.
func (s *Scenario) Encode() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// RuleStats counts one rule's activity.
type RuleStats struct {
	Kind    string `json:"kind"`
	Shard   int    `json:"shard"`
	Hits    int64  `json:"hits"`      // requests the rule fired on
	Applied int64  `json:"delivered"` // of those, requests still delivered upstream
}

// Transport injects a scenario's faults into requests passing through a
// base RoundTripper. Safe for concurrent use.
type Transport struct {
	base    http.RoundTripper
	sc      *Scenario
	shardOf func(*http.Request) int

	mu      sync.Mutex
	r       *rng.RNG
	started time.Time

	hits    []atomic.Int64 // per rule
	applied []atomic.Int64

	forwarded atomic.Int64 // requests delivered upstream (fault or not)
}

// NewTransport wraps base with the scenario's faults. shardOf maps a
// request to its shard index (see ShardByHost); requests mapping to -1
// bypass every rule. The fault clock starts at the first request unless
// Start is called explicitly.
func NewTransport(base http.RoundTripper, sc *Scenario, shardOf func(*http.Request) int) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{
		base:    base,
		sc:      sc,
		shardOf: shardOf,
		r:       rng.New(sc.Seed),
		hits:    make([]atomic.Int64, len(sc.Rules)),
		applied: make([]atomic.Int64, len(sc.Rules)),
	}
}

// ShardByHost maps request hosts back to shard indices given the ring's
// base URLs, for transports interposed below a router.
func ShardByHost(urls []string) func(*http.Request) int {
	byHost := make(map[string]int, len(urls))
	for i, u := range urls {
		h := u
		if j := strings.Index(h, "://"); j >= 0 {
			h = h[j+3:]
		}
		h = strings.TrimRight(h, "/")
		byHost[h] = i
	}
	return func(r *http.Request) int {
		if si, ok := byHost[r.URL.Host]; ok {
			return si
		}
		return -1
	}
}

// Start pins the scenario clock; rules' windows are relative to it.
// Idempotent: the first of Start or the first request wins.
func (t *Transport) Start(now time.Time) {
	t.mu.Lock()
	if t.started.IsZero() {
		t.started = now
	}
	t.mu.Unlock()
}

// elapsed returns milliseconds since the scenario clock started,
// starting it lazily.
func (t *Transport) elapsed(now time.Time) int64 {
	t.mu.Lock()
	if t.started.IsZero() {
		t.started = now
	}
	d := now.Sub(t.started)
	t.mu.Unlock()
	return d.Milliseconds()
}

// flip draws one seeded coin.
func (t *Transport) flip(p float64) bool {
	t.mu.Lock()
	ok := t.r.Float64() < p
	t.mu.Unlock()
	return ok
}

// match returns the first rule active for this request, or -1.
func (t *Transport) match(req *http.Request, shard int, nowMs int64) int {
	for i := range t.sc.Rules {
		r := &t.sc.Rules[i]
		if r.Shard != -1 && r.Shard != shard {
			continue
		}
		if nowMs < r.StartMs || (r.EndMs != 0 && nowMs >= r.EndMs) {
			continue
		}
		if r.Path != "" && !strings.HasPrefix(req.URL.Path, r.Path) {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && !t.flip(r.Prob) {
			continue
		}
		return i
	}
	return -1
}

// RoundTrip applies the first active rule, if any, then (depending on
// the fault) forwards to the base transport.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	now := time.Now()
	shard := -1
	if t.shardOf != nil {
		shard = t.shardOf(req)
	}
	ri := -1
	if shard >= 0 {
		ri = t.match(req, shard, t.elapsed(now))
	}
	if ri < 0 {
		t.forwarded.Add(1)
		return t.base.RoundTrip(req)
	}
	rule := &t.sc.Rules[ri]
	t.hits[ri].Add(1)
	switch rule.Kind {
	case KindLatency:
		timer := time.NewTimer(time.Duration(rule.LatencyMs) * time.Millisecond)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
		t.applied[ri].Add(1)
		t.forwarded.Add(1)
		return t.base.RoundTrip(req)
	case KindBlackhole:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case KindReset:
		return nil, ErrReset
	case KindHTTPError:
		status := rule.Status
		if status == 0 {
			status = http.StatusInternalServerError
		}
		body := fmt.Sprintf(`{"error":{"code":"injected","message":"faultinject: synthesized %d"}}`, status)
		return &http.Response{
			StatusCode: status,
			Status:     http.StatusText(status),
			Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case KindDropResponse:
		t.applied[ri].Add(1)
		t.forwarded.Add(1)
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		// The server did the work; the reply is lost on the wire.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, ErrReset
	}
	// Unreachable after Validate; fail loudly rather than pass silently.
	return nil, fmt.Errorf("faultinject: unhandled kind %q", rule.Kind)
}

// Forwarded counts the requests actually delivered to the base
// transport (including ones whose responses were then dropped).
func (t *Transport) Forwarded() int64 { return t.forwarded.Load() }

// Stats snapshots per-rule activity in rule order.
func (t *Transport) Stats() []RuleStats {
	out := make([]RuleStats, len(t.sc.Rules))
	for i := range t.sc.Rules {
		out[i] = RuleStats{
			Kind:    t.sc.Rules[i].Kind,
			Shard:   t.sc.Rules[i].Shard,
			Hits:    t.hits[i].Load(),
			Applied: t.applied[i].Load(),
		}
	}
	return out
}
