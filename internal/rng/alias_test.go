package rng

import (
	"math"
	"testing"
)

func TestAliasMatchesWeights(t *testing.T) {
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(weights)
	r := New(77)
	const draws = 400000
	counts := make([]float64, len(weights))
	for i := 0; i < draws; i++ {
		counts[a.Sample(r)]++
	}
	for i, w := range weights {
		want := w / 10 * draws
		if math.Abs(counts[i]-want) > 4*math.Sqrt(want) {
			t.Errorf("outcome %d: got %v draws, want ~%v", i, counts[i], want)
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	a := NewAlias([]float64{0, 1, 0, 1})
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := a.Sample(r)
		if v == 0 || v == 2 {
			t.Fatalf("sampled zero-weight outcome %d", v)
		}
	}
}

func TestAliasSingle(t *testing.T) {
	a := NewAlias([]float64{5})
	r := New(1)
	for i := 0; i < 100; i++ {
		if a.Sample(r) != 0 {
			t.Fatal("single-outcome alias sampled wrong index")
		}
	}
	if a.Len() != 1 {
		t.Fatal("Len != 1")
	}
}

func TestAliasPanics(t *testing.T) {
	for name, weights := range map[string][]float64{
		"empty":    {},
		"zero":     {0, 0},
		"negative": {1, -1},
	} {
		func() {
			defer func() { _ = recover() }()
			NewAlias(weights)
			t.Errorf("NewAlias(%s) did not panic", name)
		}()
	}
}

func BenchmarkAliasSample(b *testing.B) {
	weights := make([]float64, 10000)
	r := New(1)
	for i := range weights {
		weights[i] = r.Float64() + 0.01
	}
	a := NewAlias(weights)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Sample(r)
	}
}
