package rng

// Alias is a Walker alias table for O(1) sampling from a fixed discrete
// distribution. The workload generator uses it to draw transaction senders
// proportionally to per-user activity.
type Alias struct {
	prob  []float64
	alias []int
}

// NewAlias builds an alias table over the given non-negative weights.
// It panics on empty input or an all-zero weight vector.
func NewAlias(weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("rng: NewAlias with no weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("rng: NewAlias with negative weight")
		}
		total += w
	}
	if total == 0 {
		panic("rng: NewAlias with zero total weight")
	}
	a := &Alias{prob: make([]float64, n), alias: make([]int, n)}
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, s := range scaled {
		if s < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Sample draws an index with probability proportional to its weight.
func (a *Alias) Sample(r *RNG) int {
	i := r.Intn(len(a.prob))
	if r.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}

// Len returns the number of outcomes.
func (a *Alias) Len() int { return len(a.prob) }
