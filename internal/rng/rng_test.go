package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 produced %d/64 identical outputs", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(7)
	c1 := r.Split(1)
	c2 := r.Split(2)
	c1b := New(7).Split(1)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c1b.Uint64() {
			t.Fatalf("Split(1) not reproducible at %d", i)
		}
	}
	// c1 and c2 should not be identical streams.
	c1 = New(7).Split(1)
	identical := true
	for i := 0; i < 16; i++ {
		if c1.Uint64() != c2.Uint64() {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("Split(1) and Split(2) produced identical streams")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(nRaw uint16) bool {
		n := int(nRaw%1000) + 1
		v := r.Intn(n)
		return v >= 0 && v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(9)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("negative exponential variate %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(21)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(23)
	s := []int{1, 2, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range s {
		sum += v
	}
	r.ShuffleInts(s)
	got := 0
	for _, v := range s {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset: sum %d != %d", got, sum)
	}
}

func TestZipfRangeAndSkew(t *testing.T) {
	r := New(31)
	z := NewZipf(1000, 1.2)
	const draws = 50000
	counts := make([]int, 1000)
	for i := 0; i < draws; i++ {
		v := z.Sample(r)
		if v < 0 || v >= 1000 {
			t.Fatalf("zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must dominate rank 100 heavily for a Zipf law.
	if counts[0] < 10*counts[100]+1 {
		t.Errorf("zipf not skewed: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
	// Monotone-ish decay over decades.
	if counts[0] < counts[10] || counts[10] < counts[500] {
		t.Errorf("zipf decay violated: c0=%d c10=%d c500=%d", counts[0], counts[10], counts[500])
	}
}

func TestZipfPanics(t *testing.T) {
	for _, tc := range []struct {
		n int
		s float64
	}{{0, 1.1}, {10, 0}} {
		func() {
			defer func() { _ = recover() }()
			NewZipf(tc.n, tc.s)
			t.Errorf("NewZipf(%d,%v) did not panic", tc.n, tc.s)
		}()
	}
}

func TestMul64(t *testing.T) {
	cases := []struct{ a, b, hi, lo uint64 }{
		{0, 0, 0, 0},
		{1, 1, 0, 1},
		{math.MaxUint64, 2, 1, math.MaxUint64 - 1},
		{1 << 32, 1 << 32, 1, 0},
	}
	for _, c := range cases {
		hi, lo := mul64(c.a, c.b)
		if hi != c.hi || lo != c.lo {
			t.Errorf("mul64(%d,%d) = (%d,%d), want (%d,%d)", c.a, c.b, hi, lo, c.hi, c.lo)
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkIntn(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Intn(1000)
	}
}
