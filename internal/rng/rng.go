// Package rng provides a small, fast, deterministic random number generator
// with splittable streams.
//
// The paper's evaluation (Section 5) reports results over seven fixed
// datasets; reproducing its tables and figures bit-for-bit requires that
// every stochastic component be replayable. To that end, everything random
// in this repository draws from an rng.RNG derived from a single
// experiment seed: the synthetic workload (internal/synth, standing in
// for Section 5.1's proprietary data), DeepWalk's random walks and
// negative sampling (Section 3.3), GBDT/IF subsampling (Section 5.1's
// hyperparameters), and the streaming-store benchmarks. The Alias sampler
// in this package is what gives DeepWalk and the workload generator O(1)
// draws from skewed discrete distributions.
//
// The generator is splitmix64 for stream derivation combined with
// xoshiro256** for the main sequence; both are public-domain algorithms
// by Blackman and Vigna. It is NOT safe for concurrent use — derive one
// stream per goroutine with Split, which is also what keeps parallel runs
// deterministic regardless of scheduling.
package rng

import "math"

// RNG is a deterministic pseudo-random generator. It is NOT safe for
// concurrent use; derive one stream per goroutine with Split.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns the next output. It is used
// to seed and to derive independent streams.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	return Mix64(*x)
}

// Mix64 is splitmix64's 64-bit finalizer: a stateless avalanche mixer
// that spreads sequential integers (user IDs, shard keys) uniformly.
// The sharded stores use it to pick lock stripes and cache shards.
func Mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator seeded from seed. Distinct seeds yield
// uncorrelated sequences; the zero seed is valid.
func New(seed uint64) *RNG {
	r := &RNG{}
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	return r
}

// Split derives an independent child stream keyed by id. Calling Split with
// the same id on generators in the same state yields identical children,
// which keeps multi-component experiments reproducible even when components
// are reordered.
func (r *RNG) Split(id uint64) *RNG {
	x := r.s[0] ^ (r.s[1] * 0x9e3779b97f4a7c15) ^ id
	c := &RNG{}
	for i := range c.s {
		c.s[i] = splitmix64(&x)
	}
	return c
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 uniformly random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Int63 returns a non-negative random int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method: unbiased and division-free
	// in the common case.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := mul64(v, un)
	if lo < un {
		thresh := (-un) % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = mul64(v, un)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask + a0*b1
	return a1*b1 + t>>32 + w1>>32, a * b
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place (Fisher-Yates).
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Zipf samples from a bounded Zipf distribution over [0, n) with exponent s
// using rejection-inversion. It is used to model heavy-tailed transfer
// activity (a few hub accounts send/receive most transfers).
type Zipf struct {
	n        int
	s        float64
	hxm      float64 // h(n + 1/2)
	hx0      float64 // h(1/2)
	inverseS float64
}

// NewZipf builds a Zipf sampler over [0, n) with exponent s > 0, s != 1.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with non-positive n")
	}
	if s <= 0 {
		panic("rng: NewZipf with non-positive exponent")
	}
	z := &Zipf{n: n, s: s, inverseS: 1 - s}
	z.hxm = z.h(float64(n) + 0.5)
	z.hx0 = z.h(0.5)
	return z
}

// h is the integral of x^-s (antiderivative used by rejection-inversion).
func (z *Zipf) h(x float64) float64 {
	if z.s == 1 {
		return math.Log(x)
	}
	return math.Pow(x, z.inverseS) / z.inverseS
}

func (z *Zipf) hInv(x float64) float64 {
	if z.s == 1 {
		return math.Exp(x)
	}
	return math.Pow(x*z.inverseS, 1/z.inverseS)
}

// Sample draws a Zipf-distributed rank in [0, n); rank 0 is the most likely.
func (z *Zipf) Sample(r *RNG) int {
	for {
		u := z.hxm + r.Float64()*(z.hx0-z.hxm)
		x := z.hInv(u)
		k := math.Round(x)
		if k < 1 {
			k = 1
		}
		if k > float64(z.n) {
			k = float64(z.n)
		}
		// Accept with ratio of true pmf to envelope; the simple bound below
		// accepts exactly for the dominating piecewise envelope.
		if u >= z.h(k+0.5)-math.Pow(k, -z.s) {
			return int(k) - 1
		}
	}
}
