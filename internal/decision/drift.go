package decision

import (
	"math"
	"sync/atomic"
)

// DriftConfig tunes the score drift monitor.
type DriftConfig struct {
	// Bins is the fixed bin count of every score histogram over [0, 1].
	Bins int
	// BaselineSamples is how many scores each series absorbs into its
	// baseline before the baseline freezes — the reference distribution
	// captured at bundle deploy, against which all later traffic is
	// compared.
	BaselineSamples int64
	// MinLiveSamples gates alerting: PSI and KS are reported as soon as
	// live traffic exists, but Alert only fires once the live histogram
	// has at least this many samples (tiny samples make both statistics
	// noisy).
	MinLiveSamples int64
	// PSIAlert and KSAlert are the alert thresholds. The conventional PSI
	// reading: < 0.1 stable, 0.1-0.25 moderate shift, > 0.25 retrain.
	PSIAlert float64
	KSAlert  float64
}

// DefaultDriftConfig returns the monitor defaults: 20 bins, a
// 2000-sample baseline, alerts at PSI 0.2 / KS 0.15 once 500 live
// samples exist.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{Bins: 20, BaselineSamples: 2000, MinLiveSamples: 500, PSIAlert: 0.2, KSAlert: 0.15}
}

// sanitise fills zero-valued fields with the defaults.
func (c DriftConfig) sanitise() DriftConfig {
	d := DefaultDriftConfig()
	if c.Bins <= 0 {
		c.Bins = d.Bins
	}
	if c.BaselineSamples <= 0 {
		c.BaselineSamples = d.BaselineSamples
	}
	if c.MinLiveSamples <= 0 {
		c.MinLiveSamples = d.MinLiveSamples
	}
	if c.PSIAlert <= 0 {
		c.PSIAlert = d.PSIAlert
	}
	if c.KSAlert <= 0 {
		c.KSAlert = d.KSAlert
	}
	return c
}

// Monitor tracks the live score distribution of each ensemble member
// (plus the combined score) against a baseline frozen at bundle deploy.
// The first BaselineSamples scores of every series build its baseline
// histogram; everything after lands in the live histogram, and Snapshot
// reports PSI and KS between the two. All methods are safe for
// concurrent use; ObserveSeries is a bin search plus two atomic adds, so
// the scoring hot path pays nanoseconds.
//
// The monitor is rebuilt (fresh baseline) on every bundle swap: a new
// model's scores are a new distribution by construction, so comparing
// them against the old baseline would alert on every deploy.
type Monitor struct {
	cfg   DriftConfig
	names []string
	ser   []driftSeries
}

// driftSeries is one score stream's pair of histograms. total counts all
// observations; the first cfg.BaselineSamples of them went to the
// baseline bins, the rest to the live bins, so the split needs no
// separate synchronisation.
type driftSeries struct {
	total    atomic.Int64
	baseline []atomic.Int64
	live     []atomic.Int64
}

// NewMonitor builds a drift monitor over the named score series. By
// convention the serving engine passes "combined" first and then the
// bundle's member names in order.
func NewMonitor(cfg DriftConfig, names []string) *Monitor {
	cfg = cfg.sanitise()
	m := &Monitor{cfg: cfg, names: append([]string(nil), names...), ser: make([]driftSeries, len(names))}
	for i := range m.ser {
		m.ser[i].baseline = make([]atomic.Int64, cfg.Bins)
		m.ser[i].live = make([]atomic.Int64, cfg.Bins)
	}
	return m
}

// NumSeries returns the number of tracked score series.
func (m *Monitor) NumSeries() int { return len(m.ser) }

// ObserveSeries records one score into series k ("combined" is
// conventionally series 0). Scores outside [0, 1] clamp into the edge
// bins. Allocation-free.
func (m *Monitor) ObserveSeries(k int, score float64) {
	s := &m.ser[k]
	bin := int(clamp01(score) * float64(m.cfg.Bins))
	if bin >= m.cfg.Bins {
		bin = m.cfg.Bins - 1
	}
	// NaN comparisons are all false, so clamp01 passes NaN through and
	// the float→int conversion above is implementation-defined (a huge
	// negative value on amd64). This guard is what makes a NaN score
	// land in the lowest bin instead of corrupting the index — it is
	// load-bearing, not dead code.
	if bin < 0 {
		bin = 0
	}
	n := s.total.Add(1)
	if n <= m.cfg.BaselineSamples {
		s.baseline[bin].Add(1)
	} else {
		s.live[bin].Add(1)
	}
}

// DriftStats is one series' snapshot: sample counts, the two divergence
// statistics, and whether they cross the alert thresholds.
type DriftStats struct {
	Name          string  `json:"name"`
	BaselineCount int64   `json:"baseline"`
	LiveCount     int64   `json:"live"`
	PSI           float64 `json:"psi"`
	KS            float64 `json:"ks"`
	Alert         bool    `json:"alert"`
}

// Snapshot computes every series' drift statistics. O(series × bins).
func (m *Monitor) Snapshot() []DriftStats {
	out := make([]DriftStats, len(m.ser))
	for k := range m.ser {
		out[k] = m.snapshotSeries(k)
	}
	return out
}

func (m *Monitor) snapshotSeries(k int) DriftStats {
	s := &m.ser[k]
	st := DriftStats{Name: m.names[k]}
	bins := m.cfg.Bins
	base := make([]float64, bins)
	live := make([]float64, bins)
	for i := 0; i < bins; i++ {
		b := float64(s.baseline[i].Load())
		l := float64(s.live[i].Load())
		base[i], live[i] = b, l
		st.BaselineCount += int64(b)
		st.LiveCount += int64(l)
	}
	if st.BaselineCount == 0 || st.LiveCount == 0 {
		return st
	}
	st.PSI, st.KS = divergence(base, float64(st.BaselineCount), live, float64(st.LiveCount))
	st.Alert = st.BaselineCount >= m.cfg.BaselineSamples &&
		st.LiveCount >= m.cfg.MinLiveSamples &&
		(st.PSI >= m.cfg.PSIAlert || st.KS >= m.cfg.KSAlert)
	return st
}

// psiEpsilon floors bin proportions so empty bins cannot produce
// infinite PSI terms; the conventional small-constant treatment.
const psiEpsilon = 1e-6

// divergence computes PSI and the KS statistic between two histograms
// given their bin counts and totals.
func divergence(base []float64, baseN float64, live []float64, liveN float64) (psi, ks float64) {
	var cumB, cumL float64
	for i := range base {
		p := base[i] / baseN
		q := live[i] / liveN
		cumB += p
		cumL += q
		if d := math.Abs(cumB - cumL); d > ks {
			ks = d
		}
		if p < psiEpsilon {
			p = psiEpsilon
		}
		if q < psiEpsilon {
			q = psiEpsilon
		}
		psi += (q - p) * math.Log(q/p)
	}
	return psi, ks
}

// Alerted reports whether any series currently crosses its alert
// thresholds — the single boolean /v1/stats and readiness probes expose.
func (m *Monitor) Alerted() bool {
	for k := range m.ser {
		if m.snapshotSeries(k).Alert {
			return true
		}
	}
	return false
}
