package decision

import (
	"math"
	"sync"
	"testing"
)

func TestShadowMeter(t *testing.T) {
	var m ShadowMeter
	m.Record(0.9, 0.8, true, true)  // agree, diverge 0.1
	m.Record(0.6, 0.2, true, false) // flip, diverge 0.4
	m.Record(0.1, 0.1, false, false)
	m.Drop()
	m.Error()
	st := m.Snapshot()
	if st.Scored != 3 || st.Dropped != 1 || st.Errors != 1 || st.Agreed != 2 || st.Flipped != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.Agreement-2.0/3.0) > 1e-9 {
		t.Fatalf("agreement = %v", st.Agreement)
	}
	if math.Abs(st.MeanAbsDiff-0.5/3.0) > 1e-6 {
		t.Fatalf("mean divergence = %v", st.MeanAbsDiff)
	}
}

func TestShadowMeterEmpty(t *testing.T) {
	var m ShadowMeter
	st := m.Snapshot()
	if st.Agreement != 1 || st.MeanAbsDiff != 0 {
		t.Fatalf("empty meter = %+v", st)
	}
}

// TestShadowMeterConcurrent checks counter exactness under parallel
// recording (and gives the race detector a surface).
func TestShadowMeterConcurrent(t *testing.T) {
	var m ShadowMeter
	const (
		workers = 8
		per     = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m.Record(0.75, 0.25, true, i%2 == 0)
			}
		}()
	}
	wg.Wait()
	st := m.Snapshot()
	if st.Scored != workers*per || st.Agreed != workers*per/2 || st.Flipped != workers*per/2 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.MeanAbsDiff-0.5) > 1e-6 {
		t.Fatalf("mean divergence = %v", st.MeanAbsDiff)
	}
}

// TestShadowMeterNaNCountsAsError: a non-finite score on either side
// must not poison the divergence sum or the agreement rate.
func TestShadowMeterNaNCountsAsError(t *testing.T) {
	var m ShadowMeter
	m.Record(math.NaN(), 0.5, false, false)
	m.Record(0.5, math.NaN(), true, true)
	m.Record(math.Inf(1), 0.5, true, false)
	m.Record(0.9, 0.8, true, true)
	st := m.Snapshot()
	if st.Errors != 3 || st.Scored != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.MeanAbsDiff-0.1) > 1e-6 || st.Agreement != 1 {
		t.Fatalf("divergence polluted: %+v", st)
	}
}
