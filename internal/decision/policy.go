package decision

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"sync/atomic"
)

// ErrPolicyInvalid reports a policy document that cannot be parsed or
// validated. Every rejection wraps it, so callers classify with
// errors.Is and the HTTP layer maps it to one status.
var ErrPolicyInvalid = errors.New("decision: invalid policy")

// Band maps a half-open score interval [Min, Max) to an action. Combined
// bands must partition [0, 1] exactly (the top band also owns a score of
// exactly Max, so 1.0 is covered); member bands may cover any
// non-overlapping sub-intervals.
type Band struct {
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
	Action Action  `json:"action"`
}

// Op is a rule predicate comparison operator.
type Op uint8

// Operators of rule conditions.
const (
	OpLT Op = iota
	OpLE
	OpGT
	OpGE
	OpEQ
	OpNE
	numOps
)

var opNames = [numOps]string{"<", "<=", ">", ">=", "==", "!="}

func (o Op) String() string {
	if o < numOps {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// ParseOp maps a wire operator back to an Op.
func ParseOp(s string) (Op, error) {
	for i, n := range opNames {
		if s == n {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("%w: unknown operator %q", ErrPolicyInvalid, s)
}

// MarshalText renders the operator as its wire form.
func (o Op) MarshalText() ([]byte, error) {
	if o >= numOps {
		return nil, fmt.Errorf("%w: operator %d", ErrPolicyInvalid, int(o))
	}
	return []byte(o.String()), nil
}

// UnmarshalText parses the wire form.
func (o *Op) UnmarshalText(b []byte) error {
	v, err := ParseOp(string(b))
	if err != nil {
		return err
	}
	*o = v
	return nil
}

// Field names a transaction attribute or streaming velocity aggregate a
// rule condition reads.
type Field uint8

// Rule condition fields. The txn-prefixed group reads the transaction
// record directly; the snd_/rcv_/pair_ group reads the live streaming
// window through the decision Input's VelocitySource (absent source: the
// condition is false, so such rules cannot fire).
const (
	FieldAmount Field = iota
	FieldHour
	FieldDay
	FieldSec
	FieldDeviceRisk
	FieldIPRisk
	FieldChannel
	FieldTransCity
	FieldSndOutCount
	FieldSndOutAmount
	FieldSndInCount
	FieldSndInAmount
	FieldRcvOutCount
	FieldRcvOutAmount
	FieldRcvInCount
	FieldRcvInAmount
	FieldPairCount
	numFields
)

var fieldNames = [numFields]string{
	"amount", "hour", "day", "sec", "device_risk", "ip_risk", "channel", "trans_city",
	"snd_out_count", "snd_out_amount", "snd_in_count", "snd_in_amount",
	"rcv_out_count", "rcv_out_amount", "rcv_in_count", "rcv_in_amount",
	"pair_count",
}

func (f Field) String() string {
	if f < numFields {
		return fieldNames[f]
	}
	return fmt.Sprintf("Field(%d)", int(f))
}

// ParseField maps a wire field name back to a Field.
func ParseField(s string) (Field, error) {
	for i, n := range fieldNames {
		if s == n {
			return Field(i), nil
		}
	}
	return 0, fmt.Errorf("%w: unknown field %q", ErrPolicyInvalid, s)
}

// MarshalText renders the field as its wire name.
func (f Field) MarshalText() ([]byte, error) {
	if f >= numFields {
		return nil, fmt.Errorf("%w: field %d", ErrPolicyInvalid, int(f))
	}
	return []byte(f.String()), nil
}

// UnmarshalText parses the wire name.
func (f *Field) UnmarshalText(b []byte) error {
	v, err := ParseField(string(b))
	if err != nil {
		return err
	}
	*f = v
	return nil
}

// Cond is one rule condition: field op value.
type Cond struct {
	Field Field   `json:"field"`
	Op    Op      `json:"op"`
	Value float64 `json:"value"`
}

// Rule is a named predicate that overrides the model's bands when every
// condition holds. Rules express the hard risk constraints a probability
// cannot: velocity caps, amount ceilings, channel restrictions.
type Rule struct {
	Name   string `json:"name,omitempty"`
	When   []Cond `json:"when"`
	Action Action `json:"action"`
}

// ScenarioPolicy is one scenario's decision configuration.
type ScenarioPolicy struct {
	// Bands partition [0, 1] over the combined ensemble score.
	Bands []Band `json:"bands"`
	// MemberBands maps an ensemble member's name to bands over that
	// member's own score. A matching member band escalates (never
	// relaxes) the combined band's action: the final verdict is the most
	// severe of all matches. Names a bundle doesn't carry simply never
	// match, so one policy can serve several bundle generations.
	MemberBands map[string][]Band `json:"member_bands,omitempty"`
	// Rules are evaluated before any band, in document order; the first
	// match decides the action outright (overriding the model).
	Rules []Rule `json:"rules,omitempty"`
}

// Policy is a versioned decision-policy document. The JSON form is the
// wire format of POST /v1/policy and the on-disk format of policy files;
// Parse validates and compiles it once so Decide runs allocation-free.
type Policy struct {
	Version string `json:"version"`
	// Scenarios keys are scenario names ("default", "payment",
	// "transfer", "withdrawal"); "default" is required and serves any
	// scenario without its own entry.
	Scenarios map[string]*ScenarioPolicy `json:"scenarios"`

	// compiled is the hot-path view built by Validate. Atomic because
	// Validate may be re-run on a live policy (Encode validates before
	// serialising, e.g. GET /v1/policy) while Decide reads it; each
	// rebuild publishes a complete, equivalent view.
	compiled atomic.Pointer[compiledPolicy]
}

// compiledPolicy is the hot-path view: one plan per scenario slot, with
// every reason string preformatted.
type compiledPolicy struct {
	plans [NumScenarios]*plan
}

// plan is one scenario's compiled form.
type plan struct {
	bands       []Band
	bandReasons []string
	members     []memberPlan
	rules       []Rule
	ruleReasons []string
}

// memberPlan is one member's compiled band set.
type memberPlan struct {
	name    string
	bands   []Band
	reasons []string
}

// Parse decodes, validates and compiles a JSON policy document. Unknown
// top-level or scenario fields are rejected so a typoed key cannot
// silently weaken a risk policy.
func Parse(data []byte) (*Policy, error) {
	var p Policy
	if err := strictUnmarshal(data, &p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPolicyInvalid, err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// strictUnmarshal decodes JSON rejecting unknown fields and trailing
// content: a body of two concatenated documents must fail whole, not
// silently apply the first.
func strictUnmarshal(data []byte, v interface{}) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return errors.New("trailing content after the policy document")
	}
	return nil
}

// Encode serialises the policy document as indented JSON. The output is
// deterministic (map keys sort), so encode→parse→encode is a fixed point
// — the round-trip property the parser tests enforce. An already
// validated policy (the only kind the serving engine holds) marshals
// directly; an unvalidated one is validated first so a bad document
// cannot serialise.
func (p *Policy) Encode() ([]byte, error) {
	if p.compiled.Load() == nil {
		if err := p.Validate(); err != nil {
			return nil, err
		}
	}
	return json.MarshalIndent(p, "", "  ")
}

// Validate checks the document and builds the compiled hot-path view.
// Rejections: missing version or default scenario, unknown scenario
// names, non-finite or NaN thresholds, empty / unsorted / overlapping /
// non-partitioning band sets, unknown actions (caught at decode),
// ruleless conditions and empty member names.
func (p *Policy) Validate() error {
	if p.Version == "" {
		return fmt.Errorf("%w: missing version", ErrPolicyInvalid)
	}
	if len(p.Scenarios) == 0 {
		return fmt.Errorf("%w: no scenarios", ErrPolicyInvalid)
	}
	c := &compiledPolicy{}
	for name, sp := range p.Scenarios {
		sc, err := ParseScenario(name)
		if err != nil {
			return err
		}
		if name != sc.String() {
			// "" parses as default; a policy document must say it.
			return fmt.Errorf("%w: scenario key %q (want %q)", ErrPolicyInvalid, name, sc.String())
		}
		if sp == nil {
			return fmt.Errorf("%w: scenario %q is null", ErrPolicyInvalid, name)
		}
		pl, err := compileScenario(name, sp)
		if err != nil {
			return err
		}
		c.plans[sc] = pl
	}
	if c.plans[ScenarioDefault] == nil {
		return fmt.Errorf("%w: missing required scenario %q", ErrPolicyInvalid, ScenarioDefault)
	}
	p.compiled.Store(c)
	return nil
}

// compileScenario validates one scenario and precomputes its reasons.
func compileScenario(scenario string, sp *ScenarioPolicy) (*plan, error) {
	if err := checkBands(scenario, "score", sp.Bands, true); err != nil {
		return nil, err
	}
	pl := &plan{bands: sp.Bands, rules: sp.Rules}
	pl.bandReasons = bandReasons(scenario, "score", sp.Bands)
	for name, bs := range sp.MemberBands {
		if name == "" {
			return nil, fmt.Errorf("%w: scenario %q: empty member name", ErrPolicyInvalid, scenario)
		}
		if err := checkBands(scenario, "member "+name, bs, false); err != nil {
			return nil, err
		}
		pl.members = append(pl.members, memberPlan{
			name:    name,
			bands:   bs,
			reasons: bandReasons(scenario, "member "+name, bs),
		})
	}
	// Map iteration order is random; sort for deterministic evaluation
	// (ties between member bands resolve by severity, but reasons of
	// equal-severity matches follow this order).
	sortMemberPlans(pl.members)
	for i := range sp.Rules {
		r := &sp.Rules[i]
		if len(r.When) == 0 {
			return nil, fmt.Errorf("%w: scenario %q: rule %d has no conditions", ErrPolicyInvalid, scenario, i)
		}
		if r.Action >= numActions {
			return nil, fmt.Errorf("%w: scenario %q: rule %d: unknown action", ErrPolicyInvalid, scenario, i)
		}
		for j := range r.When {
			cd := &r.When[j]
			if cd.Field >= numFields || cd.Op >= numOps {
				return nil, fmt.Errorf("%w: scenario %q: rule %d: bad condition %d", ErrPolicyInvalid, scenario, i, j)
			}
			if math.IsNaN(cd.Value) || math.IsInf(cd.Value, 0) {
				return nil, fmt.Errorf("%w: scenario %q: rule %d: non-finite value", ErrPolicyInvalid, scenario, i)
			}
		}
		name := r.Name
		if name == "" {
			name = fmt.Sprintf("rule-%d", i)
		}
		pl.ruleReasons = append(pl.ruleReasons, fmt.Sprintf("%s: rule %s", scenario, name))
	}
	return pl, nil
}

func sortMemberPlans(ms []memberPlan) {
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
}

// checkBands validates a band set: finite thresholds, Min < Max,
// ascending and non-overlapping; when partition is set the bands must
// additionally tile [0, 1] exactly with no gaps.
func checkBands(scenario, what string, bs []Band, partition bool) error {
	if len(bs) == 0 {
		return fmt.Errorf("%w: scenario %q: %s has no bands", ErrPolicyInvalid, scenario, what)
	}
	for i := range bs {
		b := &bs[i]
		if math.IsNaN(b.Min) || math.IsNaN(b.Max) || math.IsInf(b.Min, 0) || math.IsInf(b.Max, 0) {
			return fmt.Errorf("%w: scenario %q: %s band %d has a non-finite threshold", ErrPolicyInvalid, scenario, what, i)
		}
		if b.Min < 0 || b.Max > 1 {
			return fmt.Errorf("%w: scenario %q: %s band %d outside [0,1]", ErrPolicyInvalid, scenario, what, i)
		}
		if b.Min >= b.Max {
			return fmt.Errorf("%w: scenario %q: %s band %d empty (min %g >= max %g)", ErrPolicyInvalid, scenario, what, i, b.Min, b.Max)
		}
		if b.Action >= numActions {
			return fmt.Errorf("%w: scenario %q: %s band %d: unknown action", ErrPolicyInvalid, scenario, what, i)
		}
		if i > 0 {
			switch prev := bs[i-1].Max; {
			case b.Min < prev:
				return fmt.Errorf("%w: scenario %q: %s bands %d and %d overlap", ErrPolicyInvalid, scenario, what, i-1, i)
			case partition && b.Min != prev:
				return fmt.Errorf("%w: scenario %q: %s bands %d and %d leave a gap (%g, %g)", ErrPolicyInvalid, scenario, what, i-1, i, prev, b.Min)
			}
		}
	}
	if partition {
		if bs[0].Min != 0 || bs[len(bs)-1].Max != 1 {
			return fmt.Errorf("%w: scenario %q: %s bands must cover [0,1], cover [%g,%g]",
				ErrPolicyInvalid, scenario, what, bs[0].Min, bs[len(bs)-1].Max)
		}
	}
	return nil
}

// bandReasons preformats one attribution string per band (%.4g keeps
// validation-frozen thresholds readable in responses).
func bandReasons(scenario, what string, bs []Band) []string {
	rs := make([]string, len(bs))
	for i, b := range bs {
		rs[i] = fmt.Sprintf("%s: %s band [%.4g,%.4g) %s", scenario, what, b.Min, b.Max, b.Action)
	}
	return rs
}

// planFor resolves a scenario to its plan, falling back to default.
func (c *compiledPolicy) planFor(sc Scenario) *plan {
	if int(sc) < len(c.plans) {
		if pl := c.plans[sc]; pl != nil {
			return pl
		}
	}
	return c.plans[ScenarioDefault]
}

// bandIndex finds the band owning score s: the last band whose Min <= s.
// Bands are half-open [Min, Max); the single exception is a top band
// whose Max is exactly 1, which also owns s == 1.0 so the combined
// partition covers its full domain. A member band ending below 1 stays
// strictly half-open — a score of exactly its Max is outside it. For
// partial member band sets a score between bands returns -1.
func bandIndex(bs []Band, s float64) int {
	for i := len(bs) - 1; i >= 0; i-- {
		if s >= bs[i].Min {
			if s < bs[i].Max || (i == len(bs)-1 && s == 1 && bs[i].Max == 1) {
				return i
			}
			return -1
		}
	}
	return -1
}

// velScratch caches the velocity reads of one Decide call so a policy
// with several velocity conditions pays at most one windowed read per
// side plus one pair read, all on the stack.
type velScratch struct {
	sndLoaded, rcvLoaded, pairLoaded bool
	sndOutC, sndOutA, sndInC, sndInA float64
	rcvOutC, rcvOutA, rcvInC, rcvInA float64
	pair                             float64
}

// fieldValue reads one condition field. ok is false when the field needs
// a velocity source the input doesn't carry.
func fieldValue(f Field, in *Input, v *velScratch) (float64, bool) {
	t := in.Txn
	switch f {
	case FieldAmount:
		return float64(t.Amount), true
	case FieldHour:
		return float64(t.Sec / 3600), true
	case FieldDay:
		return float64(t.Day), true
	case FieldSec:
		return float64(t.Sec), true
	case FieldDeviceRisk:
		return float64(t.DeviceRisk), true
	case FieldIPRisk:
		return float64(t.IPRisk), true
	case FieldChannel:
		return float64(t.Channel), true
	case FieldTransCity:
		return float64(t.TransCity), true
	}
	if in.Velocity == nil {
		return 0, false
	}
	switch f {
	case FieldSndOutCount, FieldSndOutAmount, FieldSndInCount, FieldSndInAmount:
		if !v.sndLoaded {
			v.sndOutC, v.sndOutA, v.sndInC, v.sndInA = in.Velocity.Velocity(t.From)
			v.sndLoaded = true
		}
		switch f {
		case FieldSndOutCount:
			return v.sndOutC, true
		case FieldSndOutAmount:
			return v.sndOutA, true
		case FieldSndInCount:
			return v.sndInC, true
		default:
			return v.sndInA, true
		}
	case FieldRcvOutCount, FieldRcvOutAmount, FieldRcvInCount, FieldRcvInAmount:
		if !v.rcvLoaded {
			v.rcvOutC, v.rcvOutA, v.rcvInC, v.rcvInA = in.Velocity.Velocity(t.To)
			v.rcvLoaded = true
		}
		switch f {
		case FieldRcvOutCount:
			return v.rcvOutC, true
		case FieldRcvOutAmount:
			return v.rcvOutA, true
		case FieldRcvInCount:
			return v.rcvInC, true
		default:
			return v.rcvInA, true
		}
	case FieldPairCount:
		if !v.pairLoaded {
			v.pair = in.Velocity.PairPrior(t.From, t.To)
			v.pairLoaded = true
		}
		return v.pair, true
	}
	return 0, false
}

func (o Op) eval(a, b float64) bool {
	switch o {
	case OpLT:
		return a < b
	case OpLE:
		return a <= b
	case OpGT:
		return a > b
	case OpGE:
		return a >= b
	case OpEQ:
		return a == b
	default:
		return a != b
	}
}

// Decide evaluates the policy against one scored transaction. Evaluation
// order: rules first, in document order — the first rule whose every
// condition holds decides the action outright, overriding the model.
// Otherwise the combined-score band decides, escalated by any matching
// member band to the most severe action. Allocation-free; safe for
// concurrent use (the compiled policy is immutable).
//
// Decide panics on a policy that never passed Validate — Parse and the
// serving engine's SetPolicy both guarantee it has.
func (p *Policy) Decide(in *Input) Outcome {
	pl := p.compiled.Load().planFor(in.Scenario)
	if len(pl.rules) > 0 {
		if out, hit := pl.evalRules(in); hit {
			return out
		}
	}
	bi := bandIndex(pl.bands, clamp01(in.Score))
	if bi < 0 {
		// Only a NaN combined score escapes the partition (clamp01 pins
		// every other value into it): the model failed, so fail closed —
		// a risk decision must not wave a broken score through.
		return Outcome{Action: ActionDeny, Reason: reasonNonFinite}
	}
	out := Outcome{Action: pl.bands[bi].Action, Reason: pl.bandReasons[bi]}
	for mi := range pl.members {
		mp := &pl.members[mi]
		k := memberIndex(in.MemberNames, mp.name)
		if k < 0 {
			continue
		}
		if i := bandIndex(mp.bands, clamp01(in.MemberScores[k][in.Row])); i >= 0 && mp.bands[i].Action > out.Action {
			out.Action = mp.bands[i].Action
			out.Reason = mp.reasons[i]
		}
	}
	return out
}

// evalRules runs the plan's rules in document order, reporting the first
// match. Kept out of Decide so a ruleless scenario (the common serving
// shape) never pays for the velocity scratch.
func (pl *plan) evalRules(in *Input) (Outcome, bool) {
	var vel velScratch
	for i := range pl.rules {
		r := &pl.rules[i]
		hold := true
		for j := range r.When {
			cd := &r.When[j]
			v, ok := fieldValue(cd.Field, in, &vel)
			if !ok || !cd.Op.eval(v, cd.Value) {
				hold = false
				break
			}
		}
		if hold {
			return Outcome{Action: r.Action, Reason: pl.ruleReasons[i], Rule: true}, true
		}
	}
	return Outcome{}, false
}

// memberIndex resolves a member name to its score column. Ensembles are
// a handful of detectors, so a linear scan beats any map on the hot path.
func memberIndex(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// reasonNonFinite attributes the fail-closed deny served for a NaN
// combined score.
const reasonNonFinite = "non-finite score: deny"

// clamp01 pins a score into the band domain (NaN passes through; Decide
// fails closed on it). Detector scores are probabilities already; this
// guards against tiny numeric excursions.
func clamp01(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// Default builds the built-in policy derived from a bundle's frozen
// decision threshold thr: approve below it, challenge the band between
// thr and halfway to certainty, deny above — and for the withdrawal
// scenario (irreversible once the money leaves) deny everything the
// model flags. A degenerate threshold (outside (0,1), e.g. frozen to
// +Inf on pathological training data) falls back to 0.5.
func Default(version string, thr float64) *Policy {
	if !(thr > 0 && thr < 1) {
		thr = 0.5
	}
	// A threshold within one ulp of 1 rounds hi to exactly 1, which
	// would make the deny band empty; serve a two-band approve/deny
	// policy instead of rejecting our own construction.
	bands := []Band{
		{Min: 0, Max: thr, Action: ActionApprove},
		{Min: thr, Max: 1, Action: ActionDeny},
	}
	if hi := thr + (1-thr)/2; hi > thr && hi < 1 {
		bands = []Band{
			{Min: 0, Max: thr, Action: ActionApprove},
			{Min: thr, Max: hi, Action: ActionChallenge},
			{Min: hi, Max: 1, Action: ActionDeny},
		}
	}
	std := &ScenarioPolicy{Bands: bands}
	p := &Policy{
		Version: version,
		Scenarios: map[string]*ScenarioPolicy{
			"default": std,
			"withdrawal": {Bands: []Band{
				{Min: 0, Max: thr, Action: ActionApprove},
				{Min: thr, Max: 1, Action: ActionDeny},
			}},
		},
	}
	if err := p.Validate(); err != nil {
		// The construction above is correct by inspection; a failure here
		// is a programming error, not an input error.
		panic(err)
	}
	return p
}
