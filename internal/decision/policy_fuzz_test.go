package decision

import (
	"bytes"
	"errors"
	"testing"

	"titant/internal/txn"
)

// FuzzParsePolicy drives arbitrary bytes through the policy parser. The
// invariants: Parse never panics; an accepted document encodes to a
// fixed point (encode→parse→encode byte-identical); and the accepted
// policy's Decide is total over a score sweep. Rejections must wrap
// ErrPolicyInvalid so the HTTP layer's error mapping stays exact.
func FuzzParsePolicy(f *testing.F) {
	f.Add([]byte(docJSON))
	f.Add([]byte(`{"version":"v","scenarios":{"default":{"bands":[{"min":0,"max":1,"action":"approve"}]}}}`))
	f.Add([]byte(`{"version":"v","scenarios":{"default":{"bands":[{"min":0,"max":0.5,"action":"approve"},{"min":0.5,"max":1,"action":"deny"}],"rules":[{"when":[{"field":"pair_count","op":"==","value":0}],"action":"challenge"}]}}}`))
	f.Add([]byte(`{"version":"v","scenarios":{"default":{"bands":[{"min":0,"max":1,"action":"escalate"}]}}}`))
	f.Add([]byte(`{"scenarios":{}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Parse(data)
		if err != nil {
			if !errors.Is(err, ErrPolicyInvalid) {
				t.Fatalf("rejection does not wrap ErrPolicyInvalid: %v", err)
			}
			return
		}
		e1, err := p.Encode()
		if err != nil {
			t.Fatalf("accepted policy fails to encode: %v", err)
		}
		p2, err := Parse(e1)
		if err != nil {
			t.Fatalf("accepted policy fails to re-parse: %v\n%s", err, e1)
		}
		e2, err := p2.Encode()
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("encode not a fixed point:\n%s\n---\n%s", e1, e2)
		}
		tx := txn.Transaction{Amount: 100, From: 1, To: 2}
		for _, sc := range []Scenario{ScenarioDefault, ScenarioPayment, ScenarioTransfer, ScenarioWithdrawal} {
			for i := 0; i <= 10; i++ {
				out := p.Decide(&Input{Txn: &tx, Scenario: sc, Score: float64(i) / 10})
				if out.Action >= numActions || out.Reason == "" {
					t.Fatalf("Decide not total: %+v", out)
				}
			}
		}
	})
}
