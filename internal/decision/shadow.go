package decision

import (
	"math"
	"sync/atomic"
)

// ShadowMeter accumulates champion/challenger comparison statistics for
// shadow deployment: the challenger bundle scores the same traffic as
// the live champion (asynchronously, off the hot path — the queue and
// worker live in the serving engine), and every completed comparison
// lands here. All methods are lock-free; Record is four atomic adds.
//
// Counters reset when the engine swaps either bundle: agreement between
// a new champion and the old challenger's history is meaningless.
type ShadowMeter struct {
	scored  atomic.Int64
	dropped atomic.Int64
	errors  atomic.Int64
	agreed  atomic.Int64
	flipped atomic.Int64
	// sumAbsDiff accumulates |champion − challenger| in fixed-point
	// nano-units: scores live in [0,1], so one comparison adds at most
	// 1e9 and the counter holds ~9 billion comparisons before overflow.
	sumAbsDiff atomic.Int64
}

// divergenceScale is the fixed-point scale of sumAbsDiff.
const divergenceScale = 1e9

// Record registers one completed comparison: the champion's and
// challenger's combined scores and their fraud verdicts. A non-finite
// score on either side counts as an error, not a comparison — the
// fixed-point conversion of a NaN gap is implementation-defined and a
// single one would corrupt the divergence sum for the whole epoch, and
// "agreement" with a broken model is not information.
func (m *ShadowMeter) Record(champ, chall float64, champFraud, challFraud bool) {
	if math.IsNaN(champ-chall) || math.IsInf(champ-chall, 0) {
		m.errors.Add(1)
		return
	}
	m.scored.Add(1)
	d := champ - chall
	if d < 0 {
		d = -d
	}
	if d > 1 {
		// Scores live in [0,1]; clamp pathological finite values so the
		// fixed-point accumulator cannot overflow early.
		d = 1
	}
	m.sumAbsDiff.Add(int64(d * divergenceScale))
	if champFraud == challFraud {
		m.agreed.Add(1)
	} else {
		// The challenger would have flipped the champion's verdict —
		// the cases a promotion decision hinges on.
		m.flipped.Add(1)
	}
}

// Drop counts one transaction shed because the shadow queue was full.
// Shadow scoring is strictly best-effort: the hot path never blocks on
// the challenger, it sheds.
func (m *ShadowMeter) Drop() { m.dropped.Add(1) }

// Error counts one challenger scoring failure (fetch or model error).
func (m *ShadowMeter) Error() { m.errors.Add(1) }

// Reset zeroes every counter — the serving engine calls it when either
// bundle of the champion/challenger pair is swapped, since comparisons
// against a departed model no longer inform a promotion decision. A
// Record racing a Reset may leave one comparison split across the
// boundary; at metric granularity that is noise.
func (m *ShadowMeter) Reset() {
	m.scored.Store(0)
	m.dropped.Store(0)
	m.errors.Store(0)
	m.agreed.Store(0)
	m.flipped.Store(0)
	m.sumAbsDiff.Store(0)
}

// ShadowStats is a meter snapshot.
type ShadowStats struct {
	// Scored is the number of completed champion/challenger comparisons.
	Scored int64 `json:"scored"`
	// Dropped counts transactions shed on queue overflow.
	Dropped int64 `json:"dropped"`
	// Errors counts challenger-side scoring failures.
	Errors int64 `json:"errors"`
	// Agreed / Flipped split Scored by verdict agreement.
	Agreed  int64 `json:"agreed"`
	Flipped int64 `json:"flipped"`
	// Agreement is Agreed/Scored (1.0 when nothing scored yet).
	Agreement float64 `json:"agreement"`
	// MeanAbsDiff is the mean |champion − challenger| score divergence.
	MeanAbsDiff float64 `json:"mean_divergence"`
}

// Snapshot reads the counters. Individual counters are each exact;
// ratios are computed from one pass over them, so a snapshot racing
// Record may lag by a comparison — irrelevant at metric granularity.
func (m *ShadowMeter) Snapshot() ShadowStats {
	st := ShadowStats{
		Scored:    m.scored.Load(),
		Dropped:   m.dropped.Load(),
		Errors:    m.errors.Load(),
		Agreed:    m.agreed.Load(),
		Flipped:   m.flipped.Load(),
		Agreement: 1,
	}
	if st.Scored > 0 {
		st.Agreement = float64(st.Agreed) / float64(st.Scored)
		st.MeanAbsDiff = float64(m.sumAbsDiff.Load()) / divergenceScale / float64(st.Scored)
	}
	return st
}
