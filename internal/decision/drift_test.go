package decision

import (
	"sync"
	"testing"

	"titant/internal/rng"
)

// driftCfg is a small-sample config so tests converge fast.
func driftCfg() DriftConfig {
	return DriftConfig{Bins: 20, BaselineSamples: 2000, MinLiveSamples: 500, PSIAlert: 0.2, KSAlert: 0.15}
}

// TestDriftQuietOnIID feeds baseline and live phases from the same
// distribution: the monitor must stay silent.
func TestDriftQuietOnIID(t *testing.T) {
	m := NewMonitor(driftCfg(), []string{"combined"})
	r := rng.New(5)
	draw := func() float64 {
		// A bimodal "mostly legit, some fraud" score shape.
		if r.Bool(0.95) {
			return r.Float64() * 0.4
		}
		return 0.6 + r.Float64()*0.4
	}
	for i := 0; i < 10000; i++ {
		m.ObserveSeries(0, draw())
	}
	st := m.Snapshot()[0]
	if st.BaselineCount != 2000 || st.LiveCount != 8000 {
		t.Fatalf("counts = %+v", st)
	}
	if st.Alert {
		t.Fatalf("i.i.d. stream alerted: PSI=%.4f KS=%.4f", st.PSI, st.KS)
	}
	if st.PSI > 0.1 || st.KS > 0.1 {
		t.Fatalf("i.i.d. divergence too high: PSI=%.4f KS=%.4f", st.PSI, st.KS)
	}
	if m.Alerted() {
		t.Fatal("Alerted() true on quiet monitor")
	}
}

// TestDriftFlagsShift freezes the baseline on one distribution and then
// shifts the live stream: PSI must cross the alert threshold.
func TestDriftFlagsShift(t *testing.T) {
	m := NewMonitor(driftCfg(), []string{"combined", "gbdt"})
	r := rng.New(6)
	for i := 0; i < 2000; i++ {
		s := r.Float64() * 0.4
		m.ObserveSeries(0, s)
		m.ObserveSeries(1, s)
	}
	// The combined stream shifts upward (the synthetic drift); the gbdt
	// stream stays i.i.d. to prove per-series isolation.
	for i := 0; i < 4000; i++ {
		m.ObserveSeries(0, 0.3+r.Float64()*0.5)
		m.ObserveSeries(1, r.Float64()*0.4)
	}
	sts := m.Snapshot()
	if !sts[0].Alert {
		t.Fatalf("shifted stream not flagged: %+v", sts[0])
	}
	if sts[1].Alert {
		t.Fatalf("i.i.d. member flagged: %+v", sts[1])
	}
	if !m.Alerted() {
		t.Fatal("Alerted() false with a flagged series")
	}
}

// TestDriftNoAlertBeforeMinSamples: statistics are reported immediately
// but alerting waits for MinLiveSamples.
func TestDriftNoAlertBeforeMinSamples(t *testing.T) {
	m := NewMonitor(driftCfg(), []string{"combined"})
	r := rng.New(7)
	for i := 0; i < 2000; i++ {
		m.ObserveSeries(0, r.Float64()*0.4)
	}
	for i := 0; i < 100; i++ { // shifted hard, but only 100 live samples
		m.ObserveSeries(0, 0.9+r.Float64()*0.1)
	}
	if st := m.Snapshot()[0]; st.Alert {
		t.Fatalf("alerted on %d live samples: %+v", st.LiveCount, st)
	}
}

// TestDriftConcurrent exercises the lock-free observe path under the
// race detector and checks no samples are lost.
func TestDriftConcurrent(t *testing.T) {
	m := NewMonitor(driftCfg(), []string{"combined"})
	const (
		workers = 8
		per     = 5000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := rng.New(seed)
			for i := 0; i < per; i++ {
				m.ObserveSeries(0, r.Float64())
			}
		}(uint64(w + 1))
	}
	wg.Wait()
	st := m.Snapshot()[0]
	if got := st.BaselineCount + st.LiveCount; got != workers*per {
		t.Fatalf("lost samples: %d != %d", got, workers*per)
	}
	if st.BaselineCount != 2000 {
		t.Fatalf("baseline = %d, want exactly 2000", st.BaselineCount)
	}
}

// TestDriftObserveAllocationFree pins the hot-path contract.
func TestDriftObserveAllocationFree(t *testing.T) {
	m := NewMonitor(driftCfg(), []string{"combined", "gbdt"})
	if avg := testing.AllocsPerRun(200, func() {
		m.ObserveSeries(0, 0.37)
		m.ObserveSeries(1, 0.71)
	}); avg != 0 {
		t.Fatalf("ObserveSeries allocates %.1f per call", avg)
	}
}

// TestDriftConfigSanitise: zero-valued fields pick up defaults.
func TestDriftConfigSanitise(t *testing.T) {
	m := NewMonitor(DriftConfig{}, []string{"combined"})
	d := DefaultDriftConfig()
	if m.cfg != d {
		t.Fatalf("sanitised = %+v, want %+v", m.cfg, d)
	}
	m.ObserveSeries(0, 2.5)  // clamps into the top bin
	m.ObserveSeries(0, -1.0) // clamps into the bottom bin
	st := m.Snapshot()[0]
	if st.BaselineCount != 2 {
		t.Fatalf("clamped observations lost: %+v", st)
	}
}
