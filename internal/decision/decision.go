// Package decision turns TitAnt's fraud scores into online risk
// decisions. The paper's Model Server stops at a fraud probability and a
// single frozen threshold; production risk control layers three more
// pieces on top, and this package implements all of them:
//
//   - a policy engine: versioned policy documents with per-scenario
//     (payment / transfer / withdrawal / default) threshold bands mapping
//     the combined ensemble score — and optionally individual members'
//     scores — to approve / challenge / deny actions, plus small rule
//     predicates over transaction fields and streaming velocity
//     aggregates that can override the model outright. Policies are
//     parsed and validated once; Decide evaluates the compiled form
//     allocation-free on the hot path.
//
//   - a drift monitor (drift.go): fixed-bin score histograms per ensemble
//     member with PSI and KS statistics against a baseline frozen at
//     bundle deploy, so a stale model announces itself before precision
//     collapses.
//
//   - a shadow meter (shadow.go): rolling champion/challenger agreement,
//     divergence and would-have-flipped counters for a challenger bundle
//     scored asynchronously off the hot path (the queue and worker live
//     in the serving engine; the comparison arithmetic lives here).
//
// The package depends only on txn and the tiny VelocitySource read
// surface, so the serving engine, offline evaluation and tests all
// consume the same decision semantics.
package decision

import (
	"fmt"

	"titant/internal/txn"
)

// Action is a risk decision: let the transfer pass, step up verification
// (the paper's "interrupt and notify the transferor"), or block it.
type Action uint8

// Actions, in severity order: policy evaluation resolves conflicting
// verdicts (a combined-score band versus a member band) by taking the
// most severe.
const (
	ActionApprove Action = iota
	ActionChallenge
	ActionDeny
	numActions
)

// NumActions is the number of decision actions.
const NumActions = int(numActions)

func (a Action) String() string {
	switch a {
	case ActionApprove:
		return "approve"
	case ActionChallenge:
		return "challenge"
	case ActionDeny:
		return "deny"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// ParseAction maps the wire names back to Action values.
func ParseAction(s string) (Action, error) {
	switch s {
	case "approve":
		return ActionApprove, nil
	case "challenge":
		return ActionChallenge, nil
	case "deny":
		return ActionDeny, nil
	}
	return 0, fmt.Errorf("%w: unknown action %q (want approve, challenge or deny)", ErrPolicyInvalid, s)
}

// MarshalText renders the action as its wire name.
func (a Action) MarshalText() ([]byte, error) {
	if a >= numActions {
		return nil, fmt.Errorf("%w: action %d", ErrPolicyInvalid, int(a))
	}
	return []byte(a.String()), nil
}

// UnmarshalText parses the wire name.
func (a *Action) UnmarshalText(b []byte) error {
	v, err := ParseAction(string(b))
	if err != nil {
		return err
	}
	*a = v
	return nil
}

// Scenario selects which per-scenario policy applies to a transaction.
// The paper evaluates TitAnt on the transfer scenario but deploys it
// across Ant's payment products, each with its own risk appetite; the
// scenario travels with the decision request, and a policy that does not
// configure a scenario serves its default.
type Scenario uint8

// Scenarios of the v1 decision API.
const (
	ScenarioDefault Scenario = iota
	ScenarioPayment
	ScenarioTransfer
	ScenarioWithdrawal
	numScenarios
)

// NumScenarios is the number of decision scenarios.
const NumScenarios = int(numScenarios)

func (sc Scenario) String() string {
	switch sc {
	case ScenarioDefault:
		return "default"
	case ScenarioPayment:
		return "payment"
	case ScenarioTransfer:
		return "transfer"
	case ScenarioWithdrawal:
		return "withdrawal"
	}
	return fmt.Sprintf("Scenario(%d)", int(sc))
}

// ParseScenario maps a wire name to a Scenario; the empty string reads as
// the default scenario so callers that don't care don't have to say so.
func ParseScenario(s string) (Scenario, error) {
	switch s {
	case "", "default":
		return ScenarioDefault, nil
	case "payment":
		return ScenarioPayment, nil
	case "transfer":
		return ScenarioTransfer, nil
	case "withdrawal":
		return ScenarioWithdrawal, nil
	}
	return 0, fmt.Errorf("%w: unknown scenario %q (want default, payment, transfer or withdrawal)", ErrPolicyInvalid, s)
}

// MarshalText renders the scenario as its wire name.
func (sc Scenario) MarshalText() ([]byte, error) {
	if sc >= numScenarios {
		return nil, fmt.Errorf("%w: scenario %d", ErrPolicyInvalid, int(sc))
	}
	return []byte(sc.String()), nil
}

// UnmarshalText parses the wire name.
func (sc *Scenario) UnmarshalText(b []byte) error {
	v, err := ParseScenario(string(b))
	if err != nil {
		return err
	}
	*sc = v
	return nil
}

// VelocitySource is the streaming-aggregate read surface rule predicates
// consume: in-window transfer velocity per user and the pairwise prior,
// both allocation-free reads. internal/feature/stream.Store satisfies it.
// Decisions evaluated with a nil source simply cannot fire velocity
// rules; everything else is unaffected.
type VelocitySource interface {
	// Velocity sums user u's in-window transfer counts and amounts.
	Velocity(u txn.UserID) (outCount, outAmount, inCount, inAmount float64)
	// PairPrior returns how many times from transferred to to in-window.
	PairPrior(from, to txn.UserID) float64
}

// Input is one transaction's decision context: the scored transaction,
// the scenario, the ensemble's combined and per-member scores (the member
// columns are row-major score slices shared with the serving engine's
// batch scratch, indexed by Row), and the optional velocity surface.
type Input struct {
	Txn      *txn.Transaction
	Scenario Scenario
	Score    float64 // combined ensemble score

	// MemberNames and MemberScores expose the per-member breakdown of an
	// ensemble bundle: MemberScores[k][Row] is member MemberNames[k]'s
	// score for this transaction. Both are nil for single-model bundles.
	MemberNames  []string
	MemberScores [][]float64
	Row          int

	Velocity VelocitySource // nil: velocity rule predicates cannot fire
}

// Outcome is a policy evaluation result. Reason is a precomputed
// human-readable attribution (band or rule) — no formatting happens on
// the hot path. Rule reports whether a rule predicate overrode the model
// bands.
type Outcome struct {
	Action Action
	Reason string
	Rule   bool
}
