package decision

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// State snapshot codecs for the drift monitor and shadow meter. Both are
// pure counter state (histogram bins, comparison tallies), so a dump and
// restore is exact by construction; the event log persists them as
// snapshot sections so a recovered process resumes drift detection with
// the same baseline/live split and the same shadow tallies it crashed
// with.

const (
	driftStateMagic  = 0x44524654 // "DRFT"
	shadowStateMagic = 0x53484457 // "SHDW"
	stateVersion     = 1
)

// WriteState dumps the monitor's histograms. The series names and bin
// geometry are included so RestoreState can refuse a snapshot taken
// against a different bundle shape.
func (m *Monitor) WriteState(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<14)
	var buf [8]byte
	le := binary.LittleEndian
	put32 := func(v uint32) error {
		le.PutUint32(buf[:4], v)
		_, err := bw.Write(buf[:4])
		return err
	}
	put64 := func(v uint64) error {
		le.PutUint64(buf[:], v)
		_, err := bw.Write(buf[:8])
		return err
	}
	if err := put32(driftStateMagic); err != nil {
		return err
	}
	if err := put32(stateVersion); err != nil {
		return err
	}
	if err := put32(uint32(m.cfg.Bins)); err != nil {
		return err
	}
	if err := put32(uint32(len(m.ser))); err != nil {
		return err
	}
	for _, name := range m.names {
		if err := put32(uint32(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}
	for k := range m.ser {
		s := &m.ser[k]
		if err := put64(uint64(s.total.Load())); err != nil {
			return err
		}
		for i := 0; i < m.cfg.Bins; i++ {
			if err := put64(uint64(s.baseline[i].Load())); err != nil {
				return err
			}
		}
		for i := 0; i < m.cfg.Bins; i++ {
			if err := put64(uint64(s.live[i].Load())); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RestoreState loads a WriteState dump into m, which must have the same
// bin count and series names (i.e. be built from the same config and
// bundle shape).
func (m *Monitor) RestoreState(r io.Reader) error {
	br := bufio.NewReaderSize(r, 1<<14)
	var buf [8]byte
	le := binary.LittleEndian
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return 0, err
		}
		return le.Uint32(buf[:4]), nil
	}
	get64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, buf[:8]); err != nil {
			return 0, err
		}
		return le.Uint64(buf[:8]), nil
	}
	magic, err := get32()
	if err != nil {
		return fmt.Errorf("decision: restore drift state: %w", err)
	}
	if magic != driftStateMagic {
		return fmt.Errorf("decision: restore drift state: bad magic %#x", magic)
	}
	if v, err := get32(); err != nil || v != stateVersion {
		return fmt.Errorf("decision: restore drift state: unsupported version %d (%v)", v, err)
	}
	if bins, err := get32(); err != nil || int(bins) != m.cfg.Bins {
		return fmt.Errorf("decision: restore drift state: snapshot has %d bins, monitor has %d (%v)", bins, m.cfg.Bins, err)
	}
	nser, err := get32()
	if err != nil || int(nser) != len(m.ser) {
		return fmt.Errorf("decision: restore drift state: snapshot has %d series, monitor has %d (%v)", nser, len(m.ser), err)
	}
	for k := 0; k < int(nser); k++ {
		n, err := get32()
		if err != nil {
			return fmt.Errorf("decision: restore drift state: %w", err)
		}
		if n > 1<<10 {
			return fmt.Errorf("decision: restore drift state: series name of %d bytes", n)
		}
		name := make([]byte, n)
		if _, err := io.ReadFull(br, name); err != nil {
			return fmt.Errorf("decision: restore drift state: %w", err)
		}
		if string(name) != m.names[k] {
			return fmt.Errorf("decision: restore drift state: series %d is %q, monitor has %q", k, name, m.names[k])
		}
	}
	for k := range m.ser {
		s := &m.ser[k]
		total, err := get64()
		if err != nil {
			return fmt.Errorf("decision: restore drift state: %w", err)
		}
		s.total.Store(int64(total))
		for i := 0; i < m.cfg.Bins; i++ {
			v, err := get64()
			if err != nil {
				return fmt.Errorf("decision: restore drift state: %w", err)
			}
			s.baseline[i].Store(int64(v))
		}
		for i := 0; i < m.cfg.Bins; i++ {
			v, err := get64()
			if err != nil {
				return fmt.Errorf("decision: restore drift state: %w", err)
			}
			s.live[i].Store(int64(v))
		}
	}
	return nil
}

// WriteState dumps the meter's six counters.
func (m *ShadowMeter) WriteState(w io.Writer) error {
	var buf [8 + 6*8]byte
	le := binary.LittleEndian
	le.PutUint32(buf[0:], shadowStateMagic)
	le.PutUint32(buf[4:], stateVersion)
	vals := []int64{
		m.scored.Load(), m.dropped.Load(), m.errors.Load(),
		m.agreed.Load(), m.flipped.Load(), m.sumAbsDiff.Load(),
	}
	for i, v := range vals {
		le.PutUint64(buf[8+i*8:], uint64(v))
	}
	_, err := w.Write(buf[:])
	return err
}

// RestoreState loads a WriteState dump into m.
func (m *ShadowMeter) RestoreState(r io.Reader) error {
	var buf [8 + 6*8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return fmt.Errorf("decision: restore shadow state: %w", err)
	}
	le := binary.LittleEndian
	if magic := le.Uint32(buf[0:]); magic != shadowStateMagic {
		return fmt.Errorf("decision: restore shadow state: bad magic %#x", magic)
	}
	if v := le.Uint32(buf[4:]); v != stateVersion {
		return fmt.Errorf("decision: restore shadow state: unsupported version %d", v)
	}
	m.scored.Store(int64(le.Uint64(buf[8:])))
	m.dropped.Store(int64(le.Uint64(buf[16:])))
	m.errors.Store(int64(le.Uint64(buf[24:])))
	m.agreed.Store(int64(le.Uint64(buf[32:])))
	m.flipped.Store(int64(le.Uint64(buf[40:])))
	m.sumAbsDiff.Store(int64(le.Uint64(buf[48:])))
	return nil
}
