package decision

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"titant/internal/rng"
	"titant/internal/txn"
)

// docJSON is a representative hand-written policy document exercising
// every construct: scenario bands, member escalation bands, and rules
// over both transaction fields and streaming velocity aggregates.
const docJSON = `{
  "version": "2026-07-27",
  "scenarios": {
    "default": {
      "bands": [
        {"min": 0, "max": 0.5, "action": "approve"},
        {"min": 0.5, "max": 0.9, "action": "challenge"},
        {"min": 0.9, "max": 1, "action": "deny"}
      ],
      "member_bands": {
        "iforest": [{"min": 0.97, "max": 1, "action": "deny"}]
      },
      "rules": [
        {"name": "amount-ceiling", "when": [{"field": "amount", "op": ">", "value": 100000}], "action": "deny"},
        {"name": "velocity-cap", "when": [{"field": "snd_out_count", "op": ">", "value": 50}], "action": "challenge"}
      ]
    },
    "withdrawal": {
      "bands": [
        {"min": 0, "max": 0.5, "action": "approve"},
        {"min": 0.5, "max": 1, "action": "deny"}
      ]
    }
  }
}`

func mustParse(t testing.TB, doc string) *Policy {
	t.Helper()
	p, err := Parse([]byte(doc))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return p
}

func TestDecideBands(t *testing.T) {
	p := mustParse(t, docJSON)
	tx := txn.Transaction{Amount: 100}
	for _, tc := range []struct {
		score float64
		sc    Scenario
		want  Action
	}{
		{0, ScenarioDefault, ActionApprove},
		{0.499, ScenarioDefault, ActionApprove},
		{0.5, ScenarioDefault, ActionChallenge},
		{0.899, ScenarioDefault, ActionChallenge},
		{0.9, ScenarioDefault, ActionDeny},
		{1.0, ScenarioDefault, ActionDeny},
		// payment has no scenario entry: serves default.
		{0.6, ScenarioPayment, ActionChallenge},
		// withdrawal denies everything the model flags.
		{0.6, ScenarioWithdrawal, ActionDeny},
		{0.2, ScenarioWithdrawal, ActionApprove},
	} {
		out := p.Decide(&Input{Txn: &tx, Scenario: tc.sc, Score: tc.score})
		if out.Action != tc.want {
			t.Errorf("Decide(score=%g, %v) = %v (%s), want %v", tc.score, tc.sc, out.Action, out.Reason, tc.want)
		}
		if out.Rule {
			t.Errorf("Decide(score=%g) attributed to a rule: %s", tc.score, out.Reason)
		}
	}
}

func TestDecideMemberEscalation(t *testing.T) {
	p := mustParse(t, docJSON)
	tx := txn.Transaction{Amount: 100}
	names := []string{"gbdt", "iforest"}
	mk := func(gbdt, iforest float64) *Input {
		return &Input{
			Txn: &tx, Score: 0.3,
			MemberNames:  names,
			MemberScores: [][]float64{{gbdt}, {iforest}},
		}
	}
	// Combined approves; a confident iforest escalates to deny.
	if out := p.Decide(mk(0.3, 0.99)); out.Action != ActionDeny || !strings.Contains(out.Reason, "iforest") {
		t.Fatalf("escalation = %+v", out)
	}
	// Below the member band: combined band stands.
	if out := p.Decide(mk(0.3, 0.5)); out.Action != ActionApprove {
		t.Fatalf("no-escalation = %+v", out)
	}
	// Member bands never relax: combined deny + quiet iforest stays deny.
	in := mk(0.1, 0.1)
	in.Score = 0.95
	if out := p.Decide(in); out.Action != ActionDeny {
		t.Fatalf("relaxation = %+v", out)
	}
	// A policy referencing a member the bundle lacks is inert.
	in = mk(0.3, 0.99)
	in.MemberNames = []string{"gbdt", "lr"}
	if out := p.Decide(in); out.Action != ActionApprove {
		t.Fatalf("unknown member fired: %+v", out)
	}
}

// fakeVelocity is a canned VelocitySource.
type fakeVelocity struct {
	outCount float64
	pair     float64
}

func (f *fakeVelocity) Velocity(u txn.UserID) (float64, float64, float64, float64) {
	return f.outCount, 0, 0, 0
}
func (f *fakeVelocity) PairPrior(from, to txn.UserID) float64 { return f.pair }

func TestDecideRulesOverride(t *testing.T) {
	p := mustParse(t, docJSON)
	// The amount ceiling denies even a zero-score transaction.
	tx := txn.Transaction{Amount: 200000}
	out := p.Decide(&Input{Txn: &tx, Score: 0})
	if out.Action != ActionDeny || !out.Rule || !strings.Contains(out.Reason, "amount-ceiling") {
		t.Fatalf("amount rule = %+v", out)
	}
	// The velocity cap challenges when the live window says the sender
	// is spraying transfers...
	tx = txn.Transaction{Amount: 10}
	out = p.Decide(&Input{Txn: &tx, Score: 0, Velocity: &fakeVelocity{outCount: 80}})
	if out.Action != ActionChallenge || !strings.Contains(out.Reason, "velocity-cap") {
		t.Fatalf("velocity rule = %+v", out)
	}
	// ...and cannot fire without a velocity source.
	out = p.Decide(&Input{Txn: &tx, Score: 0})
	if out.Action != ActionApprove || out.Rule {
		t.Fatalf("velocity rule without source = %+v", out)
	}
	// Rules are ordered: the first match wins even when a later rule
	// would pick a different action.
	tx = txn.Transaction{Amount: 200000}
	out = p.Decide(&Input{Txn: &tx, Score: 0, Velocity: &fakeVelocity{outCount: 80}})
	if out.Action != ActionDeny || !strings.Contains(out.Reason, "amount-ceiling") {
		t.Fatalf("rule order = %+v", out)
	}
}

func TestPolicyRoundTrip(t *testing.T) {
	p := mustParse(t, docJSON)
	e1, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(e1)
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	e2, err := p2.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatalf("encode not a fixed point:\n%s\n---\n%s", e1, e2)
	}
}

func TestPolicyRejections(t *testing.T) {
	band := func(min, max float64, a string) string {
		return fmt.Sprintf(`{"min": %g, "max": %g, "action": %q}`, min, max, a)
	}
	doc := func(bands ...string) string {
		return fmt.Sprintf(`{"version": "v", "scenarios": {"default": {"bands": [%s]}}}`,
			strings.Join(bands, ","))
	}
	for name, body := range map[string]string{
		"empty":            ``,
		"no version":       `{"scenarios": {"default": {"bands": [{"min":0,"max":1,"action":"approve"}]}}}`,
		"no scenarios":     `{"version": "v"}`,
		"no default":       `{"version": "v", "scenarios": {"payment": {"bands": [{"min":0,"max":1,"action":"approve"}]}}}`,
		"unknown scenario": `{"version": "v", "scenarios": {"default": {"bands": [{"min":0,"max":1,"action":"approve"}]}, "lending": {"bands": [{"min":0,"max":1,"action":"approve"}]}}}`,
		"unknown field":    `{"version": "v", "scopes": {}, "scenarios": {"default": {"bands": [{"min":0,"max":1,"action":"approve"}]}}}`,
		"unknown action":   doc(band(0, 1, "escalate")),
		"nan threshold":    doc(`{"min": NaN, "max": 1, "action": "approve"}`),
		"overlap":          doc(band(0, 0.6, "approve"), band(0.4, 1, "deny")),
		"gap":              doc(band(0, 0.4, "approve"), band(0.6, 1, "deny")),
		"unsorted":         doc(band(0.5, 1, "deny"), band(0, 0.5, "approve")),
		"empty band":       doc(band(0.5, 0.5, "approve")),
		"out of range":     doc(band(0, 1.5, "deny")),
		"not covering":     doc(band(0.1, 1, "approve")),
		"no bands":         `{"version": "v", "scenarios": {"default": {"bands": []}}}`,
		"null scenario":    `{"version": "v", "scenarios": {"default": null}}`,
		"ruleless rule":    `{"version": "v", "scenarios": {"default": {"bands": [{"min":0,"max":1,"action":"approve"}], "rules": [{"name": "x", "when": [], "action": "deny"}]}}}`,
		"bad op":           `{"version": "v", "scenarios": {"default": {"bands": [{"min":0,"max":1,"action":"approve"}], "rules": [{"when": [{"field": "amount", "op": "~", "value": 1}], "action": "deny"}]}}}`,
		"bad field":        `{"version": "v", "scenarios": {"default": {"bands": [{"min":0,"max":1,"action":"approve"}], "rules": [{"when": [{"field": "karma", "op": ">", "value": 1}], "action": "deny"}]}}}`,
		"empty member":     `{"version": "v", "scenarios": {"default": {"bands": [{"min":0,"max":1,"action":"approve"}], "member_bands": {"": [{"min":0,"max":1,"action":"deny"}]}}}}`,
	} {
		if _, err := Parse([]byte(body)); err == nil {
			t.Errorf("%s: accepted", name)
		} else if !errors.Is(err, ErrPolicyInvalid) {
			t.Errorf("%s: error %v does not wrap ErrPolicyInvalid", name, err)
		}
	}
}

func TestDefaultPolicy(t *testing.T) {
	p := Default("v1", 0.62)
	tx := txn.Transaction{}
	if out := p.Decide(&Input{Txn: &tx, Score: 0.5}); out.Action != ActionApprove {
		t.Fatalf("below threshold = %v", out.Action)
	}
	if out := p.Decide(&Input{Txn: &tx, Score: 0.7}); out.Action != ActionChallenge {
		t.Fatalf("above threshold = %v", out.Action)
	}
	if out := p.Decide(&Input{Txn: &tx, Score: 0.99}); out.Action != ActionDeny {
		t.Fatalf("near certainty = %v", out.Action)
	}
	if out := p.Decide(&Input{Txn: &tx, Score: 0.7, Scenario: ScenarioWithdrawal}); out.Action != ActionDeny {
		t.Fatalf("withdrawal = %v", out.Action)
	}
	// Degenerate thresholds fall back rather than producing an empty band.
	for _, thr := range []float64{0, 1, -3, 17} {
		p := Default("v", thr)
		if out := p.Decide(&Input{Txn: &tx, Score: 0.4}); out.Action != ActionApprove {
			t.Fatalf("Default(%g) low score = %v", thr, out.Action)
		}
	}
}

// randomPolicy generates a structurally valid policy document: random
// partitioning bands per scenario, random member bands, random rules.
func randomPolicy(r *rng.RNG) *Policy {
	actions := []Action{ActionApprove, ActionChallenge, ActionDeny}
	randBands := func(partition bool) []Band {
		n := 1 + r.Intn(4)
		cuts := make([]float64, 0, n+1)
		cuts = append(cuts, 0)
		for i := 0; i < n-1; i++ {
			cuts = append(cuts, float64(1+r.Intn(99))/100)
		}
		cuts = append(cuts, 1)
		// Insertion-sort + dedup the cut points.
		for i := 1; i < len(cuts); i++ {
			for j := i; j > 0 && cuts[j] < cuts[j-1]; j-- {
				cuts[j], cuts[j-1] = cuts[j-1], cuts[j]
			}
		}
		bs := make([]Band, 0, n)
		for i := 0; i+1 < len(cuts); i++ {
			if cuts[i] == cuts[i+1] {
				continue
			}
			bs = append(bs, Band{Min: cuts[i], Max: cuts[i+1], Action: actions[r.Intn(3)]})
		}
		if !partition && len(bs) > 1 {
			// Punch a hole so member bands exercise partial coverage.
			i := r.Intn(len(bs))
			bs = append(bs[:i], bs[i+1:]...)
		}
		return bs
	}
	sp := func() *ScenarioPolicy {
		s := &ScenarioPolicy{Bands: randBands(true)}
		if r.Bool(0.5) {
			s.MemberBands = map[string][]Band{}
			for _, m := range []string{"gbdt", "lr", "iforest"} {
				if r.Bool(0.5) {
					s.MemberBands[m] = randBands(false)
				}
			}
			if len(s.MemberBands) == 0 {
				s.MemberBands = nil
			}
		}
		nr := r.Intn(3)
		for i := 0; i < nr; i++ {
			s.Rules = append(s.Rules, Rule{
				Name: fmt.Sprintf("r%d", i),
				When: []Cond{{
					Field: Field(r.Intn(int(numFields))),
					Op:    Op(r.Intn(int(numOps))),
					Value: r.Float64() * 1000,
				}},
				Action: actions[r.Intn(3)],
			})
		}
		return s
	}
	p := &Policy{Version: "prop", Scenarios: map[string]*ScenarioPolicy{"default": sp()}}
	for _, name := range []string{"payment", "transfer", "withdrawal"} {
		if r.Bool(0.5) {
			p.Scenarios[name] = sp()
		}
	}
	return p
}

// TestPolicyProperties drives randomly generated policies through the
// validator and evaluator: every generated document validates, its
// encoding round-trips to a fixed point, and Decide is total — every
// score in [0,1] under every scenario yields a known action with a
// non-empty reason.
func TestPolicyProperties(t *testing.T) {
	r := rng.New(11)
	vel := &fakeVelocity{outCount: 12, pair: 3}
	for trial := 0; trial < 200; trial++ {
		p := randomPolicy(r)
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: generated policy rejected: %v", trial, err)
		}
		e1, err := p.Encode()
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		p2, err := Parse(e1)
		if err != nil {
			t.Fatalf("trial %d: re-parse: %v\n%s", trial, err, e1)
		}
		e2, err := p2.Encode()
		if err != nil {
			t.Fatalf("trial %d: re-encode: %v", trial, err)
		}
		if !bytes.Equal(e1, e2) {
			t.Fatalf("trial %d: encode not a fixed point", trial)
		}
		tx := txn.Transaction{
			Amount: float32(r.Float64() * 2000), Sec: int32(r.Intn(86400)),
			From: 1, To: 2, DeviceRisk: float32(r.Float64()), IPRisk: float32(r.Float64()),
		}
		for _, sc := range []Scenario{ScenarioDefault, ScenarioPayment, ScenarioTransfer, ScenarioWithdrawal} {
			for i := 0; i <= 20; i++ {
				in := Input{
					Txn: &tx, Scenario: sc, Score: float64(i) / 20,
					MemberNames:  []string{"gbdt", "lr"},
					MemberScores: [][]float64{{r.Float64()}, {r.Float64()}},
					Velocity:     vel,
				}
				out := p.Decide(&in)
				if out.Action >= numActions {
					t.Fatalf("trial %d: Decide returned action %d", trial, out.Action)
				}
				if out.Reason == "" {
					t.Fatalf("trial %d: empty reason", trial)
				}
				// Decisions are deterministic: same input, same outcome —
				// and identical across the re-parsed policy, the oracle
				// the serving engine's hot-swap guarantee builds on.
				if again := p.Decide(&in); again != out {
					t.Fatalf("trial %d: non-deterministic decide", trial)
				}
				if other := p2.Decide(&in); other != out {
					t.Fatalf("trial %d: re-parsed policy diverges: %+v vs %+v", trial, other, out)
				}
			}
		}
	}
}

// TestPolicyMutationRejected flips one structural aspect of a valid
// random policy and checks the validator notices.
func TestPolicyMutationRejected(t *testing.T) {
	r := rng.New(23)
	for trial := 0; trial < 100; trial++ {
		p := randomPolicy(r)
		sp := p.Scenarios["default"]
		switch r.Intn(4) {
		case 0: // overlap two combined bands
			if len(sp.Bands) < 2 {
				continue
			}
			sp.Bands[1].Min -= 0.005
		case 1: // NaN threshold
			sp.Bands[0].Max = math.NaN()
		case 2: // gap at the bottom
			sp.Bands[0].Min = 0.005
		case 3: // unknown action value
			sp.Bands[len(sp.Bands)-1].Action = Action(9)
		}
		if err := p.Validate(); err == nil {
			t.Fatalf("trial %d: mutation accepted: %+v", trial, sp.Bands)
		} else if !errors.Is(err, ErrPolicyInvalid) {
			t.Fatalf("trial %d: wrong error %v", trial, err)
		}
	}
}

// TestDecideAllocationFree pins the hot-path contract: policy evaluation
// allocates nothing, including velocity-rule and member-band paths.
func TestDecideAllocationFree(t *testing.T) {
	p := mustParse(t, docJSON)
	tx := txn.Transaction{Amount: 500}
	vel := &fakeVelocity{outCount: 80}
	in := Input{
		Txn: &tx, Score: 0.93,
		MemberNames:  []string{"gbdt", "iforest"},
		MemberScores: [][]float64{{0.4}, {0.99}},
		Velocity:     vel,
	}
	if avg := testing.AllocsPerRun(200, func() { p.Decide(&in) }); avg != 0 {
		t.Fatalf("Decide allocates %.1f per call", avg)
	}
}

// TestMemberBandHalfOpen pins the band contract: a member band ending
// below 1 is strictly half-open, so a score of exactly its Max (common
// with quantised detector outputs) does not escalate; only a top band
// reaching exactly 1 also owns a score of 1.0.
func TestMemberBandHalfOpen(t *testing.T) {
	p := mustParse(t, `{"version": "v", "scenarios": {"default": {
	  "bands": [{"min": 0, "max": 1, "action": "approve"}],
	  "member_bands": {"lr": [{"min": 0.3, "max": 0.5, "action": "deny"}]}
	}}}`)
	tx := txn.Transaction{}
	mk := func(score float64) *Input {
		return &Input{Txn: &tx, Score: 0.1,
			MemberNames: []string{"lr"}, MemberScores: [][]float64{{score}}}
	}
	if out := p.Decide(mk(0.49)); out.Action != ActionDeny {
		t.Fatalf("in-band member score = %+v", out)
	}
	if out := p.Decide(mk(0.5)); out.Action != ActionApprove {
		t.Fatalf("score at the open Max escalated: %+v", out)
	}
	// A combined partition still owns exactly 1.0 via its top band.
	if out := p.Decide(&Input{Txn: &tx, Score: 1.0}); out.Action != ActionApprove {
		t.Fatalf("score 1.0 unowned: %+v", out)
	}
}

// TestEncodeDecideConcurrent pins the hot-swap surface's memory safety:
// GET /v1/policy re-encodes (and so re-validates) the live policy while
// decisions read its compiled view. Meaningful under -race.
func TestEncodeDecideConcurrent(t *testing.T) {
	p := mustParse(t, docJSON)
	tx := txn.Transaction{Amount: 100}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 500; i++ {
			if _, err := p.Encode(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for i := 0; i < 5000; i++ {
		if out := p.Decide(&Input{Txn: &tx, Score: 0.6}); out.Action != ActionChallenge {
			t.Fatalf("decide under concurrent encode = %+v", out)
		}
	}
	<-done
}

// TestDecideNaNFailsClosed: a NaN combined score (a broken model or
// corrupted feature) must deny, not panic or approve.
func TestDecideNaNFailsClosed(t *testing.T) {
	p := mustParse(t, docJSON)
	tx := txn.Transaction{Amount: 100}
	out := p.Decide(&Input{Txn: &tx, Score: math.NaN()})
	if out.Action != ActionDeny || out.Rule {
		t.Fatalf("NaN score = %+v", out)
	}
	// A NaN member score is simply skipped; the combined band stands.
	out = p.Decide(&Input{Txn: &tx, Score: 0.1,
		MemberNames: []string{"iforest"}, MemberScores: [][]float64{{math.NaN()}}})
	if out.Action != ActionApprove {
		t.Fatalf("NaN member score = %+v", out)
	}
}

// TestPolicyRejectsTrailingContent: a body of two concatenated
// documents (or a document plus junk) must fail whole, not silently
// apply the first.
func TestPolicyRejectsTrailingContent(t *testing.T) {
	valid := `{"version":"v","scenarios":{"default":{"bands":[{"min":0,"max":1,"action":"approve"}]}}}`
	for _, body := range []string{
		valid + `{"version":"evil"}`,
		valid + ` trailing junk`,
		valid + valid,
	} {
		if _, err := Parse([]byte(body)); err == nil {
			t.Fatalf("trailing content accepted: %s", body)
		} else if !errors.Is(err, ErrPolicyInvalid) {
			t.Fatalf("wrong error: %v", err)
		}
	}
	// Trailing whitespace alone stays fine.
	if _, err := Parse([]byte(valid + "\n\t ")); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	}
}

// TestDefaultPolicyNearOneThreshold: a threshold one ulp below 1 must
// not panic the built-in policy construction (the challenge band's
// upper bound rounds to exactly 1); it degrades to approve/deny.
func TestDefaultPolicyNearOneThreshold(t *testing.T) {
	thr := math.Nextafter(1, 0)
	p := Default("v", thr)
	tx := txn.Transaction{}
	if out := p.Decide(&Input{Txn: &tx, Score: 0.5}); out.Action != ActionApprove {
		t.Fatalf("below threshold = %v", out.Action)
	}
	if out := p.Decide(&Input{Txn: &tx, Score: 1.0}); out.Action != ActionDeny {
		t.Fatalf("at 1.0 = %v", out.Action)
	}
}
