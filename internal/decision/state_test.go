package decision

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

func TestMonitorStateRoundTrip(t *testing.T) {
	cfg := DriftConfig{Bins: 10, BaselineSamples: 100, MinLiveSamples: 50}
	names := []string{"combined", "lr", "gbdt"}
	m := NewMonitor(cfg, names)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 500; i++ {
		for k := range names {
			m.ObserveSeries(k, rng.Float64())
		}
	}

	var buf bytes.Buffer
	if err := m.WriteState(&buf); err != nil {
		t.Fatalf("WriteState: %v", err)
	}
	r := NewMonitor(cfg, names)
	if err := r.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if !reflect.DeepEqual(m.Snapshot(), r.Snapshot()) {
		t.Fatalf("snapshots diverge:\n a=%+v\n b=%+v", m.Snapshot(), r.Snapshot())
	}

	// Continued observation must stay identical — in particular the
	// baseline/live split point, which depends on the restored totals.
	for i := 0; i < 500; i++ {
		for k := range names {
			v := rng.Float64()
			m.ObserveSeries(k, v)
			r.ObserveSeries(k, v)
		}
	}
	if !reflect.DeepEqual(m.Snapshot(), r.Snapshot()) {
		t.Fatal("snapshots diverge after post-restore observations")
	}
}

func TestMonitorStateShapeMismatch(t *testing.T) {
	m := NewMonitor(DriftConfig{Bins: 10}, []string{"combined", "lr"})
	var buf bytes.Buffer
	if err := m.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	cases := []*Monitor{
		NewMonitor(DriftConfig{Bins: 20}, []string{"combined", "lr"}),
		NewMonitor(DriftConfig{Bins: 10}, []string{"combined"}),
		NewMonitor(DriftConfig{Bins: 10}, []string{"combined", "gbdt"}),
	}
	for i, r := range cases {
		if err := r.RestoreState(bytes.NewReader(buf.Bytes())); err == nil {
			t.Fatalf("case %d: mismatched monitor accepted the snapshot", i)
		}
	}
}

func TestMonitorStateTruncated(t *testing.T) {
	m := NewMonitor(DriftConfig{Bins: 10}, []string{"combined"})
	for i := 0; i < 50; i++ {
		m.ObserveSeries(0, float64(i)/50)
	}
	var buf bytes.Buffer
	if err := m.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 4, 11, len(data) / 2, len(data) - 1} {
		r := NewMonitor(DriftConfig{Bins: 10}, []string{"combined"})
		if err := r.RestoreState(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncated state (%d/%d bytes) accepted", cut, len(data))
		}
	}
}

func TestShadowMeterStateRoundTrip(t *testing.T) {
	var m ShadowMeter
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 200; i++ {
		a, b := rng.Float64(), rng.Float64()
		m.Record(a, b, a >= 0.5, b >= 0.5)
	}
	m.Drop()
	m.Error()

	var buf bytes.Buffer
	if err := m.WriteState(&buf); err != nil {
		t.Fatalf("WriteState: %v", err)
	}
	var r ShadowMeter
	if err := r.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if m.Snapshot() != r.Snapshot() {
		t.Fatalf("snapshots diverge:\n a=%+v\n b=%+v", m.Snapshot(), r.Snapshot())
	}

	var bad ShadowMeter
	if err := bad.RestoreState(bytes.NewReader(buf.Bytes()[:10])); err == nil {
		t.Fatal("truncated shadow state accepted")
	}
}
