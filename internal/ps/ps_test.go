package ps

import (
	"testing"

	"titant/internal/feature"
	"titant/internal/graph"
	"titant/internal/metrics"
	"titant/internal/model"
	"titant/internal/model/gbdt"
	"titant/internal/nrl"
	"titant/internal/rng"
	"titant/internal/txn"
)

// mustScores is a test shim over the error-returning model.ScoreMatrix.
func mustScores(c model.Classifier, m *feature.Matrix) []float64 {
	s, err := model.ScoreMatrix(c, m)
	if err != nil {
		panic(err)
	}
	return s
}

func ring(n int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < n; i++ {
		b.AddTransfer(txn.UserID(i), txn.UserID((i+1)%n), false)
	}
	return b.Build()
}

func TestClusterSplit(t *testing.T) {
	c := NewCluster(40, DefaultCostModel())
	if c.Servers != 20 || c.Workers != 20 {
		t.Fatalf("split = %d/%d", c.Servers, c.Workers)
	}
	c = NewCluster(5, DefaultCostModel())
	if c.Servers != 2 || c.Workers != 3 {
		t.Fatalf("split = %d/%d", c.Servers, c.Workers)
	}
}

func TestClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewCluster(1, DefaultCostModel())
}

func TestShardCoversAll(t *testing.T) {
	c := NewCluster(10, DefaultCostModel())
	shards := c.Shard(103)
	covered := 0
	last := 0
	for _, s := range shards {
		if s[0] != last {
			t.Fatalf("gap at %d", s[0])
		}
		covered += s[1] - s[0]
		last = s[1]
	}
	if covered != 103 || last != 103 {
		t.Fatalf("covered %d", covered)
	}
}

func TestAccountRound(t *testing.T) {
	c := NewCluster(4, CostModel{ComputeRate: 1e9, Bandwidth: 1e8, RPCLatency: 0.001, MsgOverhead: 0.0001})
	c.AccountRound(RoundCost{MaxWorkerOps: 1e9, TotalBytes: 2e8, ServerOps: 0, MsgsPerServer: 10, RPCRounds: 1})
	// 1s compute + 0.001 latency + (2e8/2)/1e8=1s + 10*0.0001 = 2.002s
	got := c.SimElapsed().Seconds()
	if got < 2.0 || got > 2.01 {
		t.Fatalf("sim = %v", got)
	}
	rounds, bytes, msgs := c.Stats()
	if rounds != 1 || bytes != 2e8 || msgs != 20 {
		t.Fatalf("stats = %d %v %v", rounds, bytes, msgs)
	}
	c.Reset()
	if c.SimElapsed() != 0 {
		t.Fatal("reset failed")
	}
}

func TestDistributedDWProducesEmbeddings(t *testing.T) {
	g := ring(60)
	c := NewCluster(8, DefaultCostModel())
	cfg := DefaultDWConfig()
	cfg.DW.Dim = 8
	cfg.DW.WalksPerNode = 5
	cfg.DW.WalkLength = 10
	res := TrainDeepWalk(c, g, cfg)
	if res.Embeddings.Len() != 60 {
		t.Fatalf("embedded %d nodes", res.Embeddings.Len())
	}
	if c.SimElapsed() <= 0 {
		t.Fatal("no simulated time accounted")
	}
	// Ring neighbours should be more similar than antipodal nodes.
	var nb, far float64
	for i := 0; i < 60; i++ {
		nb += res.Embeddings.Cosine(txn.UserID(i), txn.UserID((i+1)%60))
		far += res.Embeddings.Cosine(txn.UserID(i), txn.UserID((i+30)%60))
	}
	if nb <= far {
		t.Errorf("neighbour cosine sum %.2f <= antipodal %.2f", nb, far)
	}
}

func TestDWScalesWithMachines(t *testing.T) {
	// Figure 10 left shape: simulated DW time decreases as machines grow.
	g := ring(80)
	cfg := DefaultDWConfig()
	cfg.DW.WalksPerNode = 3
	cfg.DW.WalkLength = 10
	cfg.DW.Dim = 8
	var prev float64 = 1e18
	for _, m := range []int{4, 10, 20, 40} {
		c := NewCluster(m, DefaultCostModel())
		TrainDeepWalk(c, g, cfg)
		cur := c.SimElapsed().Seconds()
		if cur >= prev {
			t.Errorf("DW time did not decrease at %d machines: %v >= %v", m, cur, prev)
		}
		prev = cur
	}
}

func TestDWWorkerRecovery(t *testing.T) {
	g := ring(40)
	cfg := DefaultDWConfig()
	cfg.DW.Dim = 8
	cfg.DW.WalksPerNode = 4
	cfg.DW.WalkLength = 10
	cfg.FailWorker = 1
	cfg.FailAfterBatches = 2
	c := NewCluster(6, DefaultCostModel())
	res := TrainDeepWalk(c, g, cfg)
	if res.Recovered != 1 {
		t.Fatalf("recovered = %d, want 1", res.Recovered)
	}
	if res.Embeddings.Len() != 40 {
		t.Fatal("recovery lost embeddings")
	}
}

func mkData(n int) (*feature.Matrix, []bool) {
	r := rng.New(3)
	m := feature.NewMatrix(n, 6)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 6; j++ {
			m.Set(i, j, r.Float64())
		}
		labels[i] = m.At(i, 0) > 0.6 && m.At(i, 1) < 0.5
		if r.Bool(0.05) {
			labels[i] = !labels[i]
		}
	}
	return m, labels
}

func TestDistributedGBDTMatchesQuality(t *testing.T) {
	m, labels := mkData(3000)
	cfg := DefaultGBDTConfig()
	cfg.GBDT.Trees = 60
	c := NewCluster(8, DefaultCostModel())
	dist := TrainGBDT(c, m, labels, cfg)
	single := gbdt.Train(m, labels, cfg.GBDT)
	aucD := metrics.AUC(mustScores(dist, m), labels)
	aucS := metrics.AUC(mustScores(single, m), labels)
	if aucD < 0.9 {
		t.Errorf("distributed GBDT AUC %.3f < 0.9", aucD)
	}
	if aucD < aucS-0.05 {
		t.Errorf("distributed AUC %.3f far below single-machine %.3f", aucD, aucS)
	}
	if c.SimElapsed() <= 0 {
		t.Fatal("no simulated time")
	}
}

func TestGBDTFlattensAtScale(t *testing.T) {
	// Figure 10 right shape: GBDT improves 4 -> 20 machines but NOT
	// proportionally 20 -> 40 (communication bound).
	m, labels := mkData(2000)
	cfg := DefaultGBDTConfig()
	cfg.GBDT.Trees = 60
	cfg.WorkScale = 5e6 // represent a paper-scale workload in the clock
	times := map[int]float64{}
	for _, mach := range []int{4, 10, 20, 40} {
		c := NewCluster(mach, DefaultCostModel())
		TrainGBDT(c, m, labels, cfg)
		times[mach] = c.SimElapsed().Seconds()
	}
	if times[20] >= times[4]/2 {
		t.Errorf("GBDT did not improve substantially 4->20 machines: %v", times)
	}
	// The 20->40 gain must be far less than the 2x of perfect scaling.
	if times[40] < times[20]*0.6 {
		t.Errorf("GBDT scaled too well 20->40: %v", times)
	}
}

func TestGBDTDeterminism(t *testing.T) {
	m, labels := mkData(800)
	cfg := DefaultGBDTConfig()
	cfg.GBDT.Trees = 10
	a := TrainGBDT(NewCluster(4, DefaultCostModel()), m, labels, cfg)
	b := TrainGBDT(NewCluster(4, DefaultCostModel()), m, labels, cfg)
	for i := 0; i < m.Rows; i += 31 {
		if a.Score(m.Row(i)) != b.Score(m.Row(i)) {
			t.Fatal("distributed GBDT not deterministic")
		}
	}
}

func TestDWEmptyGraph(t *testing.T) {
	g := graph.NewBuilder().Build()
	c := NewCluster(4, DefaultCostModel())
	res := TrainDeepWalk(c, g, DefaultDWConfig())
	if res.Embeddings.Len() != 0 {
		t.Fatal("phantom embeddings")
	}
}

var _ = nrl.NewEmbeddings // keep import for doc reference
