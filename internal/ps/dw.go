package ps

import (
	"fmt"

	"titant/internal/graph"
	"titant/internal/nrl"
	"titant/internal/nrl/deepwalk"
	"titant/internal/rng"
)

// DWConfig configures the distributed DeepWalk job.
type DWConfig struct {
	DW deepwalk.Config
	// WorkScale multiplies the accounted (not executed) work, letting a
	// laptop-scale run represent the paper's 8M-record workload in the
	// simulated clock. 1 means account exactly what was executed.
	WorkScale float64
	// FailWorker >= 0 kills that worker once, after FailAfterBatches of its
	// batches, to exercise the paper's single-point-of-failure recovery
	// ("the failed instance can be restarted and recovered to the previous
	// status automatically while other instances remain not affected").
	FailWorker       int
	FailAfterBatches int
	BatchPairs       int // pairs per Push/Pull batch (default 512)
}

// DefaultDWConfig returns laptop-scale execution with paper-scale
// accounting.
func DefaultDWConfig() DWConfig {
	return DWConfig{
		DW:         deepwalk.BenchConfig(),
		WorkScale:  1,
		FailWorker: -1,
		BatchPairs: 512,
	}
}

// DWResult carries the trained embeddings plus accounting.
type DWResult struct {
	Embeddings *nrl.Embeddings
	Recovered  int // worker restarts performed
}

// TrainDeepWalk runs DeepWalk on the cluster: each worker walks its own
// node partition, pulls the touched embedding vectors from the server
// tier, applies skip-gram-with-negative-sampling updates locally, and
// pushes the vectors back (the paper's worker loop of Section 4.3). The
// server tier's model-average aggregation reduces to last-write in this
// bulk-sequential simulation; the cluster clock is charged as if all
// workers ran concurrently.
func TrainDeepWalk(c *Cluster, g *graph.Graph, cfg DWConfig) DWResult {
	if cfg.BatchPairs <= 0 {
		cfg.BatchPairs = 512
	}
	if cfg.WorkScale <= 0 {
		cfg.WorkScale = 1
	}
	n := g.NumNodes()
	out := DWResult{Embeddings: nrl.NewEmbeddings(cfg.DW.Dim)}
	if n == 0 {
		return out
	}
	r := rng.New(cfg.DW.Seed)
	// Server tier state: the embedding matrices, sharded by node id across
	// servers (shard = node % servers).
	params := deepwalk.NewSGNS(n, cfg.DW.Dim, r.Split(1))

	freq := make([]float64, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		freq[v] = float64(g.Degree(v))
	}
	neg := deepwalk.NewNegativeTable(freq, 1<<17)

	shards := c.Shard(n)
	dim := float64(cfg.DW.Dim)
	negs := float64(cfg.DW.Negatives + 1)
	opsPerPair := dim * negs * 8 // dot + sigmoid + two updates

	// Per-worker accounting accumulators for the current logical round.
	workerPairs := make([]float64, c.Workers)
	workerBatches := make([]float64, c.Workers)

	negBuf := make([]graph.NodeID, cfg.DW.Negatives)
	totalWalks := n * cfg.DW.WalksPerNode
	walkIdx := 0

	for w := 0; w < c.Workers; w++ {
		lo, hi := shards[w][0], shards[w][1]
		if lo >= hi {
			continue
		}
		wr := r.Split(uint64(w) + 100)
		batchPairs := 0
		failed := false
		for rep := 0; rep < cfg.DW.WalksPerNode; rep++ {
			for start := lo; start < hi; start++ {
				// Random walk from this worker's node.
				walk := walkFrom(g, graph.NodeID(start), cfg.DW.WalkLength, wr)
				progress := float64(walkIdx) / float64(totalWalks)
				walkIdx++
				lr := cfg.DW.LearningRate * (1 - progress)
				if lr < cfg.DW.MinLR {
					lr = cfg.DW.MinLR
				}
				for i, center := range walk {
					win := 1 + wr.Intn(cfg.DW.Window)
					loJ, hiJ := i-win, i+win
					if loJ < 0 {
						loJ = 0
					}
					if hiJ >= len(walk) {
						hiJ = len(walk) - 1
					}
					for j := loJ; j <= hiJ; j++ {
						if j == i || walk[j] == center {
							continue
						}
						for k := range negBuf {
							negBuf[k] = neg.Sample(wr)
						}
						// Pull/update/push: params live on servers; the
						// update happens on the pulled copies which are
						// the same backing arrays in-process. The cost of
						// the pull+push is charged per batch below.
						params.Update(center, walk[j], negBuf, float32(lr))
						workerPairs[w]++
						batchPairs++
						if batchPairs >= cfg.BatchPairs {
							workerBatches[w]++
							batchPairs = 0
							if !failed && w == cfg.FailWorker && int(workerBatches[w]) == cfg.FailAfterBatches {
								// Simulated crash: local state is lost, but
								// parameters live on the servers, so the
								// restarted worker re-pulls and continues.
								failed = true
								out.Recovered++
								workerBatches[w] += 2 // restart re-pull cost
							}
						}
					}
				}
			}
		}
		if batchPairs > 0 {
			workerBatches[w]++
		}
	}

	// Charge the clock: one logical round per batch wave; workers proceed
	// independently, so the wall time is set by the busiest worker's
	// compute plus its share of server traffic.
	maxPairs, maxBatches, totalPairs := 0.0, 0.0, 0.0
	for w := 0; w < c.Workers; w++ {
		if workerPairs[w] > maxPairs {
			maxPairs = workerPairs[w]
		}
		if workerBatches[w] > maxBatches {
			maxBatches = workerBatches[w]
		}
		totalPairs += workerPairs[w]
	}
	scale := cfg.WorkScale
	// Bytes: each pair pulls+pushes (1+neg) vectors of dim float32s.
	bytesPerPair := (negs + 1) * dim * 4 * 2
	totalBatches := totalPairs / float64(cfg.BatchPairs)
	c.AccountRound(RoundCost{
		MaxWorkerOps:  maxPairs * opsPerPair * scale,
		TotalBytes:    totalPairs * bytesPerPair * scale,
		ServerOps:     totalPairs * dim * scale / float64(c.Servers),
		MsgsPerServer: totalBatches * scale / float64(c.Servers),
		RPCRounds:     maxBatches * scale,
	})

	for v := graph.NodeID(0); int(v) < n; v++ {
		out.Embeddings.Set(g.User(v), params.Syn0[v])
	}
	return out
}

// walkFrom produces one random walk starting at v over the undirected view.
func walkFrom(g *graph.Graph, v graph.NodeID, length int, r *rng.RNG) []graph.NodeID {
	if length < 1 {
		panic(fmt.Sprintf("ps: bad walk length %d", length))
	}
	walk := make([]graph.NodeID, 0, length)
	cur := v
	walk = append(walk, cur)
	for len(walk) < length {
		out := g.OutNeighbors(cur)
		in := g.InNeighbors(cur)
		deg := len(out) + len(in)
		if deg == 0 {
			break
		}
		k := r.Intn(deg)
		if k < len(out) {
			cur = out[k]
		} else {
			cur = in[k-len(out)]
		}
		walk = append(walk, cur)
	}
	return walk
}
