package ps

import (
	"titant/internal/feature"
	"titant/internal/model/gbdt"
	"titant/internal/rng"
)

// GBDTConfig configures the distributed GBDT job.
type GBDTConfig struct {
	GBDT      gbdt.Config
	WorkScale float64 // accounting multiplier, as in DWConfig
}

// DefaultGBDTConfig returns the paper's GBDT settings with unit accounting.
func DefaultGBDTConfig() GBDTConfig {
	return GBDTConfig{GBDT: gbdt.DefaultConfig(), WorkScale: 1}
}

// TrainGBDT trains the paper's GBDT on the cluster with data parallelism:
// rows are sharded across workers; at every tree level each worker builds
// gradient histograms over its shard and pushes them to the server tier,
// which merges them (one message per worker per server - the all-reduce
// whose per-server message load grows with the worker count and produces
// Figure 10's flattening); the merged histograms determine the splits,
// which are broadcast back.
//
// The returned model is a genuine gbdt.Model: scoring it gives the same
// kind of output as the single-machine trainer.
func TrainGBDT(c *Cluster, m *feature.Matrix, labels []bool, cfg GBDTConfig) *gbdt.Model {
	g := cfg.GBDT
	if cfg.WorkScale <= 0 {
		cfg.WorkScale = 1
	}
	disc := feature.FitDiscretizer(m, g.Bins)
	binned := disc.Transform(m)

	y := make([]float64, m.Rows)
	var base float64
	for i, l := range labels {
		if l {
			y[i] = 1
			base++
		}
	}
	base /= float64(m.Rows)

	out := &gbdt.Model{
		Disc: disc, Base: base, Features: m.Cols, Depth: g.Depth,
		TreesArr: make([]gbdt.Tree, 0, g.Trees),
	}

	pred := make([]float64, m.Rows)
	for i := range pred {
		pred[i] = base
	}
	grad := make([]float64, m.Rows)
	nodeOf := make([]int32, m.Rows)

	r := rng.New(g.Seed)
	shards := c.Shard(m.Rows)
	nSample := int(g.Subsample * float64(m.Rows))
	if nSample < 1 {
		nSample = 1
	}
	nCols := int(g.ColSample * float64(m.Cols))
	if nCols < 1 {
		nCols = 1
	}
	rows := make([]int, m.Rows)
	for i := range rows {
		rows[i] = i
	}

	histBytes := float64(nCols*g.Bins) * 16 // sum+count float64 per bin
	maxShard := 0.0
	for _, s := range shards {
		if f := float64(s[1] - s[0]); f > maxShard {
			maxShard = f
		}
	}

	maxNodes := 1 << g.Depth
	histSum := make([][]float64, maxNodes)
	histCnt := make([][]float64, maxNodes)
	for i := range histSum {
		histSum[i] = make([]float64, m.Cols*g.Bins)
		histCnt[i] = make([]float64, m.Cols*g.Bins)
	}

	for t := 0; t < g.Trees; t++ {
		tr := r.Split(uint64(t) + 1)
		for i := range grad {
			grad[i] = y[i] - pred[i]
		}
		for i := 0; i < nSample; i++ {
			j := i + tr.Intn(m.Rows-i)
			rows[i], rows[j] = rows[j], rows[i]
		}
		sample := rows[:nSample]
		cols := tr.Perm(m.Cols)[:nCols]

		nNodes := 1<<(g.Depth+1) - 1
		tree := gbdt.Tree{Nodes: make([]gbdt.TreeNode, nNodes)}
		for i := range tree.Nodes {
			tree.Nodes[i].Col = -1
		}
		for _, i := range sample {
			nodeOf[i] = 0
		}

		for depth := 0; depth < g.Depth; depth++ {
			first := int32(1<<depth) - 1
			count := 1 << depth
			for n := 0; n < count; n++ {
				hs, hc := histSum[n], histCnt[n]
				for k := range hs {
					hs[k] = 0
					hc[k] = 0
				}
			}
			// Workers build local histograms over their shard of the
			// sampled rows; merging into the shared arrays stands in for
			// the server-side merge. The cluster clock is charged below.
			for _, i := range sample {
				nd := nodeOf[i]
				if nd < 0 {
					continue
				}
				local := nd - first
				rowBins := binned.Row(i)
				hs, hc := histSum[local], histCnt[local]
				gv := grad[i]
				for _, cIdx := range cols {
					k := cIdx*g.Bins + int(rowBins[cIdx])
					hs[k] += gv
					hc[k]++
				}
			}
			// Account one all-reduce barrier: every worker sends its full
			// histogram to the server tier and receives the merge back.
			// Only the worker compute scales with the data size
			// (WorkScale); histogram traffic, message counts and the
			// barrier penalty are data-independent, which is precisely why
			// GBDT becomes communication-bound at high machine counts.
			c.AccountRound(RoundCost{
				MaxWorkerOps:  maxShard * float64(nCols) * g.Subsample * cfg.WorkScale,
				TotalBytes:    2 * float64(c.Workers) * histBytes * float64(count),
				ServerOps:     float64(c.Workers) * histBytes / 8 * float64(count),
				MsgsPerServer: float64(c.Workers),
				RPCRounds:     2,
				Barriers:      1,
			})

			// Server tier picks the splits from the merged histograms.
			type split struct {
				col, thr int
				valid    bool
			}
			splits := make([]split, count)
			for n := 0; n < count; n++ {
				flat := first + int32(n)
				hs, hc := histSum[n], histCnt[n]
				var totSum, totCnt float64
				c0 := cols[0]
				for bin := 0; bin < g.Bins; bin++ {
					totSum += hs[c0*g.Bins+bin]
					totCnt += hc[c0*g.Bins+bin]
				}
				if totCnt < float64(2*g.MinLeaf) {
					finalizeLeaf(&tree, flat, totSum, totCnt, g.Lambda)
					continue
				}
				parentScore := totSum * totSum / (totCnt + g.Lambda)
				bestGain := 1e-12
				var best split
				for _, cIdx := range cols {
					var lSum, lCnt float64
					for bin := 0; bin < g.Bins-1; bin++ {
						k := cIdx*g.Bins + bin
						lSum += hs[k]
						lCnt += hc[k]
						rCnt := totCnt - lCnt
						if lCnt < float64(g.MinLeaf) || rCnt < float64(g.MinLeaf) {
							continue
						}
						rSum := totSum - lSum
						gain := lSum*lSum/(lCnt+g.Lambda) + rSum*rSum/(rCnt+g.Lambda) - parentScore
						if gain > bestGain {
							bestGain = gain
							best = split{col: cIdx, thr: bin, valid: true}
						}
					}
				}
				if !best.valid {
					finalizeLeaf(&tree, flat, totSum, totCnt, g.Lambda)
					continue
				}
				splits[n] = best
				tree.Nodes[flat].Col = int32(best.col)
				tree.Nodes[flat].Thr = uint8(best.thr)
			}
			for _, i := range sample {
				nd := nodeOf[i]
				if nd < 0 {
					continue
				}
				sp := splits[nd-first]
				if !sp.valid {
					nodeOf[i] = -1
					continue
				}
				if binned.At(i, sp.col) <= uint8(sp.thr) {
					nodeOf[i] = 2*nd + 1
				} else {
					nodeOf[i] = 2*nd + 2
				}
			}
		}
		// Leaves.
		first := int32(1<<g.Depth) - 1
		count := 1 << g.Depth
		sums := make([]float64, count)
		cnts := make([]float64, count)
		for _, i := range sample {
			nd := nodeOf[i]
			if nd < 0 {
				continue
			}
			sums[nd-first] += grad[i]
			cnts[nd-first]++
		}
		for n := 0; n < count; n++ {
			finalizeLeaf(&tree, first+int32(n), sums[n], cnts[n], g.Lambda)
		}
		for i := range tree.Nodes {
			if tree.Nodes[i].Col < 0 {
				tree.Nodes[i].Value *= g.LearningRate
			}
		}
		for i := 0; i < m.Rows; i++ {
			pred[i] += evalTree(&tree, binned.Row(i))
		}
		out.TreesArr = append(out.TreesArr, tree)
	}
	return out
}

func finalizeLeaf(tree *gbdt.Tree, flat int32, sum, cnt, lambda float64) {
	tree.Nodes[flat].Col = -1
	if cnt > 0 {
		tree.Nodes[flat].Value = sum / (cnt + lambda)
	}
}

func evalTree(t *gbdt.Tree, bins []uint8) float64 {
	i := int32(0)
	for {
		n := &t.Nodes[i]
		if n.Col < 0 {
			return n.Value
		}
		if bins[n.Col] <= n.Thr {
			i = 2*i + 1
		} else {
			i = 2*i + 2
		}
	}
}
