// Package ps implements the KunPeng analogue (Section 4.3, Figure 6): the
// parameter-server runtime the paper trains its production models on,
// with server nodes holding model state, worker nodes training on data
// shards, Push/Pull exchange, model-average aggregation, and the
// single-point-of-failure recovery the paper highlights ("the failed
// instance can be restarted and recovered to the previous status
// automatically"). The two distributed trainers are the ones the paper
// scales in Figure 10: DeepWalk (dw.go) and GBDT (gbdtdist.go).
//
// The algorithms execute for real (the distributed DeepWalk and GBDT
// produce genuine models, identical in kind to the single-machine
// versions); only *time* is simulated. Each bulk-synchronous round is
// charged to a cluster clock with an explicit cost model:
//
//	round = max_w(worker compute) + RPC latency
//	      + max_s(bytes through server)/bandwidth
//	      + max_s(server aggregation compute)
//	      + (messages per server) x per-message overhead
//
// The last term is what reproduces the paper's Figure 10 observation that
// GBDT stops scaling between 20 and 40 machines: its histogram all-reduce
// sends one message per worker per server per tree level, so per-server
// message handling grows linearly with the worker count, while DeepWalk's
// messaging is data-proportional (total constant in the machine count).
// The paper attributes this to "IO and network communication ... due to
// uneven machine traffic"; the cost model makes that mechanism explicit.
package ps

import (
	"fmt"
	"time"
)

// CostModel holds the simulated hardware constants. The defaults are
// calibrated so the simulated times land in the same ranges as the paper's
// Figure 10 axes (DW in minutes, GBDT in seconds); shape, not absolute
// values, is the reproduction target.
type CostModel struct {
	ComputeRate float64 // floating-point ops per second per machine
	Bandwidth   float64 // bytes per second per server link
	RPCLatency  float64 // seconds per synchronous round trip
	MsgOverhead float64 // seconds of server CPU per received message
	// BarrierOverhead is the straggler/sync penalty per worker per
	// bulk-synchronous barrier: with more machines a barrier waits on more
	// stragglers and more uneven traffic (the paper's stated reason GBDT
	// stops scaling). Asynchronous traffic (DeepWalk's pipelined
	// push/pull) does not pay it.
	BarrierOverhead float64
}

// DefaultCostModel returns constants representative of the paper's 2017-era
// production cluster (commodity machines, 10 threads each).
func DefaultCostModel() CostModel {
	return CostModel{
		ComputeRate:     2e9,
		Bandwidth:       1.25e8, // ~1 Gbps
		RPCLatency:      0.001,
		MsgOverhead:     0.0004,
		BarrierOverhead: 0.005,
	}
}

// Cluster is a simulated parameter-server deployment. Following the paper
// ("half of the machines are selected as server nodes, and the rest are
// used as worker nodes"), machines split evenly.
type Cluster struct {
	Machines int
	Servers  int
	Workers  int
	Cost     CostModel

	simSeconds float64
	rounds     int
	bytesMoved float64
	messages   float64
}

// NewCluster builds a cluster of the given total machine count.
func NewCluster(machines int, cost CostModel) *Cluster {
	if machines < 2 {
		panic(fmt.Sprintf("ps: need at least 2 machines, got %d", machines))
	}
	s := machines / 2
	return &Cluster{
		Machines: machines,
		Servers:  s,
		Workers:  machines - s,
		Cost:     cost,
	}
}

// RoundCost describes one bulk-synchronous round for accounting.
type RoundCost struct {
	MaxWorkerOps  float64 // compute ops on the busiest worker
	TotalBytes    float64 // bytes exchanged through the server tier
	ServerOps     float64 // aggregation compute on the busiest server
	MsgsPerServer float64 // messages each server handles this round
	RPCRounds     float64 // synchronous latency rounds
	Barriers      float64 // bulk-synchronous barriers in this round
}

// AccountRound charges one round to the cluster clock.
func (c *Cluster) AccountRound(rc RoundCost) {
	t := rc.MaxWorkerOps/c.Cost.ComputeRate +
		rc.RPCRounds*c.Cost.RPCLatency +
		(rc.TotalBytes/float64(c.Servers))/c.Cost.Bandwidth +
		rc.ServerOps/c.Cost.ComputeRate +
		rc.MsgsPerServer*c.Cost.MsgOverhead +
		rc.Barriers*float64(c.Workers)*c.Cost.BarrierOverhead
	c.simSeconds += t
	c.rounds++
	c.bytesMoved += rc.TotalBytes
	c.messages += rc.MsgsPerServer * float64(c.Servers)
}

// SimElapsed returns the simulated wall-clock time accumulated so far.
func (c *Cluster) SimElapsed() time.Duration {
	return time.Duration(c.simSeconds * float64(time.Second))
}

// Stats returns accounting totals: rounds, bytes through servers, messages.
func (c *Cluster) Stats() (rounds int, bytes, messages float64) {
	return c.rounds, c.bytesMoved, c.messages
}

// Reset clears the clock (for reusing a cluster across experiments).
func (c *Cluster) Reset() {
	c.simSeconds = 0
	c.rounds = 0
	c.bytesMoved = 0
	c.messages = 0
}

// Shard splits n items into the worker count, returning [lo, hi) bounds
// per worker.
func (c *Cluster) Shard(n int) [][2]int {
	out := make([][2]int, c.Workers)
	for w := 0; w < c.Workers; w++ {
		out[w] = [2]int{w * n / c.Workers, (w + 1) * n / c.Workers}
	}
	return out
}
