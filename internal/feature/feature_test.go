package feature

import (
	"math"
	"testing"
	"testing/quick"

	"titant/internal/rng"
	"titant/internal/synth"
	"titant/internal/txn"
)

func world(t testing.TB) (*synth.World, *txn.Dataset) {
	t.Helper()
	w := synth.Generate(synth.TestConfig())
	d, err := w.Dataset(1)
	if err != nil {
		t.Fatal(err)
	}
	return w, d
}

func TestBasicNamesComplete(t *testing.T) {
	seen := map[string]bool{}
	for i, n := range BasicNames {
		if n == "" {
			t.Fatalf("feature %d unnamed", i)
		}
		if seen[n] {
			t.Fatalf("duplicate feature name %q", n)
		}
		seen[n] = true
	}
}

func TestBasicVectorShape(t *testing.T) {
	w, d := world(t)
	agg := BuildAggregates(d.Network, w.Config.Cities)
	e := NewExtractor(w.Users, agg)
	v := e.Basic(&d.Train[0], nil)
	if len(v) != NumBasic {
		t.Fatalf("vector length %d, want %d", len(v), NumBasic)
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Errorf("feature %s = %v", BasicNames[i], x)
		}
	}
}

func TestBasicDeterministic(t *testing.T) {
	w, d := world(t)
	agg := BuildAggregates(d.Network, w.Config.Cities)
	e := NewExtractor(w.Users, agg)
	a := e.Basic(&d.Train[0], nil)
	b := e.Basic(&d.Train[0], nil)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("feature %d differs across calls", i)
		}
	}
}

func TestBasicMatrix(t *testing.T) {
	w, d := world(t)
	agg := BuildAggregates(d.Network, w.Config.Cities)
	e := NewExtractor(w.Users, agg)
	m := e.BasicMatrix(d.Test)
	if m.Rows != len(d.Test) || m.Cols != NumBasic {
		t.Fatalf("matrix %dx%d", m.Rows, m.Cols)
	}
	// Row view and At agree.
	if m.Row(0)[3] != m.At(0, 3) {
		t.Error("Row/At disagree")
	}
}

func TestAggregatesCounts(t *testing.T) {
	ts := []txn.Transaction{
		{From: 1, To: 2, Amount: 10, Day: 0, TransCity: 0},
		{From: 1, To: 2, Amount: 20, Day: 1, TransCity: 0},
		{From: 1, To: 3, Amount: 30, Day: 1, TransCity: 1, Fraud: true},
		{From: 2, To: 1, Amount: 5, Day: 2, TransCity: 0},
	}
	a := BuildAggregates(ts, 2)
	u1 := a.users[1]
	if u1.outCount != 3 || len(u1.distinctRcv) != 2 || u1.inCount != 1 {
		t.Errorf("user1 agg: %+v", u1)
	}
	if len(u1.outDays) != 2 {
		t.Errorf("user1 outDays = %d, want 2", len(u1.outDays))
	}
	if a.pairCount[pairKey{1, 2}] != 2 {
		t.Errorf("pair(1,2) = %v, want 2", a.pairCount[pairKey{1, 2}])
	}
	// City 1 has 1 txn, 1 fraud: smoothed rate must be well above city 0's.
	if a.cityFraud[1] <= a.cityFraud[0] {
		t.Errorf("city fraud rates: %v", a.cityFraud)
	}
	// Shares sum to 1.
	if s := a.cityShare[0] + a.cityShare[1]; math.Abs(s-1) > 1e-12 {
		t.Errorf("city shares sum to %v", s)
	}
}

func TestUnknownUserGetsEmptyAggregates(t *testing.T) {
	w, d := world(t)
	agg := BuildAggregates(d.Network[:10], w.Config.Cities)
	e := NewExtractor(w.Users, agg)
	// A user not in the tiny reference window must extract without panic
	// and with zero aggregate features.
	v := e.Basic(&d.Test[0], nil)
	if len(v) != NumBasic {
		t.Fatal("wrong length")
	}
}

func TestWithEmbeddings(t *testing.T) {
	w, d := world(t)
	agg := BuildAggregates(d.Network, w.Config.Cities)
	e := NewExtractor(w.Users, agg)
	ts := d.Test[:5]
	m := e.BasicMatrix(ts)
	dim := 4
	lookup := func(u txn.UserID) []float32 {
		if u%2 == 0 {
			return nil // cold start
		}
		return []float32{1, 2, 3, 4}
	}
	out := WithEmbeddings(m, ts, dim, lookup)
	if out.Cols != NumBasic+2*dim {
		t.Fatalf("cols = %d, want %d", out.Cols, NumBasic+2*dim)
	}
	for i, tx := range ts {
		fromEmb := out.Row(i)[NumBasic : NumBasic+dim]
		if tx.From%2 == 0 {
			for _, v := range fromEmb {
				if v != 0 {
					t.Fatalf("cold-start user got non-zero embedding")
				}
			}
		} else if fromEmb[0] != 1 || fromEmb[3] != 4 {
			t.Fatalf("embedding not copied: %v", fromEmb)
		}
	}
}

func TestConcat(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 3)
	a.Set(0, 0, 1)
	b.Set(0, 2, 9)
	out := Concat(a, b)
	if out.Cols != 5 || out.At(0, 0) != 1 || out.At(0, 4) != 9 {
		t.Fatalf("concat wrong: %+v", out)
	}
}

func TestConcatPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Concat(NewMatrix(2, 2), NewMatrix(3, 2))
}

func TestDiscretizerBasics(t *testing.T) {
	m := NewMatrix(100, 1)
	for i := 0; i < 100; i++ {
		m.Set(i, 0, float64(i))
	}
	d := FitDiscretizer(m, 4)
	if d.NumCols() != 1 {
		t.Fatal("cols wrong")
	}
	if n := d.NumBins(0); n != 4 {
		t.Fatalf("bins = %d, want 4", n)
	}
	// Equal-frequency: 0..24 -> bin 0, 25..49 -> 1, etc.
	if d.Bin(0, 0) != 0 || d.Bin(0, 30) != 1 || d.Bin(0, 60) != 2 || d.Bin(0, 99) != 3 {
		t.Errorf("bins: %d %d %d %d", d.Bin(0, 0), d.Bin(0, 30), d.Bin(0, 60), d.Bin(0, 99))
	}
	// Out-of-range values clamp to the extreme buckets.
	if d.Bin(0, -5) != 0 || d.Bin(0, 1e9) != 3 {
		t.Error("out-of-range values not clamped")
	}
}

func TestDiscretizerConstantColumn(t *testing.T) {
	m := NewMatrix(50, 1)
	for i := 0; i < 50; i++ {
		m.Set(i, 0, 7)
	}
	d := FitDiscretizer(m, 8)
	if n := d.NumBins(0); n != 1 {
		t.Fatalf("constant column has %d bins, want 1", n)
	}
	if d.Bin(0, 7) != 0 || d.Bin(0, 100) != 0 {
		t.Error("constant column binning broken")
	}
}

// Property: Bin is monotone non-decreasing in the value and always within
// [0, NumBins).
func TestDiscretizerMonotoneProperty(t *testing.T) {
	r := rng.New(8)
	m := NewMatrix(500, 3)
	for i := 0; i < 500; i++ {
		m.Set(i, 0, r.NormFloat64())
		m.Set(i, 1, r.Float64()*1000)
		m.Set(i, 2, float64(r.Intn(5))) // low-cardinality
	}
	d := FitDiscretizer(m, 16)
	f := func(a, b float64, colRaw uint8) bool {
		col := int(colRaw) % 3
		if a > b {
			a, b = b, a
		}
		ba, bb := d.Bin(col, a), d.Bin(col, b)
		if ba > bb {
			return false
		}
		n := d.NumBins(col)
		return ba >= 0 && bb < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformRoundTrip(t *testing.T) {
	r := rng.New(10)
	m := NewMatrix(200, 4)
	for i := 0; i < 200; i++ {
		for j := 0; j < 4; j++ {
			m.Set(i, j, r.NormFloat64()*float64(j+1))
		}
	}
	d := FitDiscretizer(m, 8)
	b := d.Transform(m)
	if b.Rows != 200 || b.Cols != 4 {
		t.Fatalf("binned %dx%d", b.Rows, b.Cols)
	}
	for i := 0; i < b.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			if got, want := int(b.At(i, j)), d.Bin(j, m.At(i, j)); got != want {
				t.Fatalf("(%d,%d): binned %d, Bin %d", i, j, got, want)
			}
			if int(b.At(i, j)) >= b.NumBins[j] {
				t.Fatalf("(%d,%d): bin out of range", i, j)
			}
		}
	}
	if b.Row(3)[2] != b.At(3, 2) {
		t.Error("Binned Row/At disagree")
	}
}

func TestFraudFeatureSignalExists(t *testing.T) {
	// Sanity: mean amount and IP risk of fraud rows must exceed honest rows
	// (the generator is built that way; extraction must preserve it).
	w, d := world(t)
	agg := BuildAggregates(d.Network, w.Config.Cities)
	e := NewExtractor(w.Users, agg)
	m := e.BasicMatrix(d.Train)
	labels := LabelsOf(d.Train)
	var fAmt, nAmt, fIP, nIP, nf, nn float64
	for i := 0; i < m.Rows; i++ {
		if labels[i] {
			fAmt += m.At(i, 0)
			fIP += m.At(i, 12)
			nf++
		} else {
			nAmt += m.At(i, 0)
			nIP += m.At(i, 12)
			nn++
		}
	}
	if nf == 0 {
		t.Skip("no fraud in tiny training window")
	}
	if fAmt/nf <= nAmt/nn {
		t.Errorf("fraud mean amount %.1f <= honest %.1f", fAmt/nf, nAmt/nn)
	}
	if fIP/nf <= nIP/nn {
		t.Errorf("fraud mean IP risk %.3f <= honest %.3f", fIP/nf, nIP/nn)
	}
}

func BenchmarkBasicMatrix(b *testing.B) {
	w := synth.Generate(synth.TestConfig())
	d, _ := w.Dataset(1)
	agg := BuildAggregates(d.Network, w.Config.Cities)
	e := NewExtractor(w.Users, agg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.BasicMatrix(d.Train)
	}
}

func TestBasicFromPartsMatchesExtractor(t *testing.T) {
	// The Model Server assembles features from independently fetched
	// fragments (BasicFromParts); the offline pipeline uses the Extractor.
	// They MUST agree, or online scores diverge from the trained model's
	// distribution.
	w, d := world(t)
	agg := BuildAggregates(d.Network, w.Config.Cities)
	e := NewExtractor(w.Users, agg)
	city := agg.CityTable()
	for i := range d.Test {
		tx := &d.Test[i]
		offline := e.Basic(tx, nil)
		online := BasicFromParts(tx, &w.Users[tx.From], &w.Users[tx.To], city, nil)
		for j := range offline {
			if offline[j] != online[j] {
				t.Fatalf("txn %d feature %s: offline %v != online %v",
					tx.ID, BasicNames[j], offline[j], online[j])
			}
		}
	}
}

func TestAggregateFragments(t *testing.T) {
	ts := []txn.Transaction{
		{From: 1, To: 2, Amount: 10, Day: 0},
		{From: 1, To: 2, Amount: 20, Day: 1},
		{From: 2, To: 1, Amount: 5, Day: 2},
	}
	a := BuildAggregates(ts, 4)
	s1 := a.Stats(1)
	if s1.OutCount != 2 || s1.OutAmount != 30 || s1.DistinctRcv != 1 || s1.InCount != 1 || s1.OutDays != 2 {
		t.Fatalf("stats(1) = %+v", s1)
	}
	if a.Stats(99) != (UserStats{}) {
		t.Fatal("unknown user stats not zero")
	}
	if a.PairPrior(1, 2) != 2 || a.PairPrior(2, 1) != 1 || a.PairPrior(3, 1) != 0 {
		t.Fatal("pair priors wrong")
	}
	ct := a.CityTable()
	if len(ct.Fraud) != 4 || len(ct.Share) != 4 {
		t.Fatalf("city table %+v", ct)
	}
	f0, s0 := ct.Lookup(0)
	if f0 <= 0 || s0 != 1 {
		t.Fatalf("city 0 lookup = %v, %v", f0, s0)
	}
	// Out-of-range city clamps.
	fHi, _ := ct.Lookup(9999)
	fLast, _ := ct.Lookup(3)
	if fHi != fLast {
		t.Fatal("city clamp broken")
	}
	// Empty table.
	var empty CityTable
	if f, s := empty.Lookup(0); f != 0 || s != 0 {
		t.Fatal("empty city table lookup non-zero")
	}
}
