// Package feature implements TitAnt's basic-feature extraction (Section 3.2,
// Figure 1(a)): 52 hand-engineered features per transaction covering the
// transfer itself, its context, both user profiles, and historical
// aggregates computed from a reference window, plus the machinery to append
// node embeddings and to discretise features for LR/ID3/C5.0.
//
// The paper reports "a total of 52 basic features carefully extracted"; the
// feature list below matches that count and the categories shown in
// Figure 1(a) (user profile, transfer environment, aggregates).
package feature

import (
	"fmt"
	"math"
	"sort"

	"titant/internal/txn"
)

// NumBasic is the number of basic features, matching the paper's 52.
const NumBasic = 52

// BasicNames names each basic feature column, index-aligned with the
// vectors produced by Extractor.Basic.
var BasicNames = [NumBasic]string{
	// Transaction (12)
	"amount", "log1p_amount", "amount_round100", "hour",
	"hour_sin", "hour_cos", "is_night", "day_of_week",
	"channel_balance", "channel_bankcard", "channel_credit", "device_risk",
	// Context (6)
	"ip_risk", "city_fraud_rate", "city_txn_share", "is_foreign_city",
	"amount_over_snd_avg", "log_amount_over_snd_avg",
	// Sender profile (10)
	"snd_age", "snd_gender_f", "snd_gender_m", "snd_account_age",
	"snd_device_count", "snd_kyc", "snd_avg_daily_txns", "snd_avg_amount",
	"snd_merchant", "snd_home_city_fraud_rate",
	// Receiver profile (10)
	"rcv_age", "rcv_gender_f", "rcv_gender_m", "rcv_account_age",
	"rcv_device_count", "rcv_kyc", "rcv_avg_daily_txns", "rcv_avg_amount",
	"rcv_merchant", "rcv_home_city_fraud_rate",
	// Pairwise & derived context (14). Note: per the paper, aggregated
	// *relational* information is carried by the node embeddings, not by
	// hand-built velocity counters; these remaining features are
	// profile/context derivatives.
	"amount_over_rcv_avg", "log_amount_over_rcv_avg",
	"band_morning", "band_afternoon", "band_evening", "band_night",
	"same_home_city", "trans_is_rcv_home", "age_gap",
	"log_snd_account_age", "log_rcv_account_age",
	"device_ip_product", "amount_round1000", "is_weekend",
}

// Matrix is a dense row-major feature matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns row i as a shared slice.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// CitySource provides O(1) reads of per-city statistics (smoothed fraud
// rate and traffic share). It is the only aggregate surface the 52 basic
// features consume at assembly time; CityTable satisfies it with a frozen
// snapshot, the streaming store (internal/feature/stream) with a live
// sliding window.
type CitySource interface {
	Lookup(c uint16) (fraud, share float64)
}

// Source is the full aggregate read surface: per-user velocity/diversity
// statistics, pairwise transfer priors, and per-city statistics. The batch
// *Aggregates (built once from a frozen reference window, the paper's T+1
// mode) and the streaming store (updated incrementally per transaction)
// both satisfy it, so the Extractor and the Model Server are indifferent
// to whether their statistics are a nightly snapshot or seconds old.
type Source interface {
	CitySource
	Stats(u txn.UserID) UserStats
	PairPrior(from, to txn.UserID) float64
	CityTable() CityTable
}

// City-table smoothing constants shared by the batch builder and the
// streaming store, so both produce bitwise-identical fraud rates from the
// same window contents: rate = (frauds + CitySmoothing*CityFraudPrior) /
// (total + CitySmoothing).
const (
	CitySmoothing  = 2.0  // Laplace pseudo-count
	CityFraudPrior = 0.01 // prior fraud rate pulled toward under no data
)

// userAgg is the per-user historical aggregate state.
type userAgg struct {
	outCount, inCount   float64
	outAmount, inAmount float64
	distinctRcv         map[txn.UserID]struct{}
	distinctSnd         map[txn.UserID]struct{}
	outDays, inDays     map[txn.Day]struct{}
}

// Aggregates holds reference-window statistics: per-user velocity/diversity
// counters, pairwise prior-transfer counts, and per-city empirical fraud
// rates. In production these are the values materialised into Ali-HBase by
// the nightly MaxCompute jobs; at test time they are one day stale, exactly
// as in the paper's T+1 mode.
type Aggregates struct {
	users     map[txn.UserID]*userAgg
	pairCount map[pairKey]float64
	cityFraud []float64 // smoothed fraud rate per city
	cityShare []float64 // share of total traffic per city
}

type pairKey struct{ from, to txn.UserID }

// BuildAggregates scans a reference window and materialises aggregates.
// numCities bounds the city tables; city codes >= numCities are clamped.
func BuildAggregates(ref []txn.Transaction, numCities int) *Aggregates {
	if numCities < 1 {
		numCities = 1
	}
	a := &Aggregates{
		users:     make(map[txn.UserID]*userAgg),
		pairCount: make(map[pairKey]float64),
		cityFraud: make([]float64, numCities),
		cityShare: make([]float64, numCities),
	}
	cityTotal := make([]float64, numCities)
	cityFraud := make([]float64, numCities)
	get := func(u txn.UserID) *userAgg {
		ua, ok := a.users[u]
		if !ok {
			ua = &userAgg{
				distinctRcv: make(map[txn.UserID]struct{}),
				distinctSnd: make(map[txn.UserID]struct{}),
				outDays:     make(map[txn.Day]struct{}),
				inDays:      make(map[txn.Day]struct{}),
			}
			a.users[u] = ua
		}
		return ua
	}
	for i := range ref {
		t := &ref[i]
		fu, tu := get(t.From), get(t.To)
		fu.outCount++
		fu.outAmount += float64(t.Amount)
		fu.distinctRcv[t.To] = struct{}{}
		fu.outDays[t.Day] = struct{}{}
		tu.inCount++
		tu.inAmount += float64(t.Amount)
		tu.distinctSnd[t.From] = struct{}{}
		tu.inDays[t.Day] = struct{}{}
		a.pairCount[pairKey{t.From, t.To}]++
		c := int(t.TransCity)
		if c >= numCities {
			c = numCities - 1
		}
		cityTotal[c]++
		if t.Fraud {
			cityFraud[c]++
		}
	}
	var total float64
	for _, n := range cityTotal {
		total += n
	}
	for c := range a.cityFraud {
		a.cityFraud[c] = (cityFraud[c] + CitySmoothing*CityFraudPrior) / (cityTotal[c] + CitySmoothing)
		if total > 0 {
			a.cityShare[c] = cityTotal[c] / total
		}
	}
	return a
}

// Extractor turns transactions into basic-feature vectors using user
// profiles and an aggregate source — batch-built for offline training,
// streaming for the online path.
type Extractor struct {
	users []txn.User
	src   Source
}

// NewExtractor builds an extractor over the profile table and an aggregate
// source (nil falls back to empty batch aggregates).
func NewExtractor(users []txn.User, src Source) *Extractor {
	if src == nil {
		src = BuildAggregates(nil, 1)
	}
	return &Extractor{users: users, src: src}
}

// UserStats is the per-user aggregate fragment materialised into Ali-HBase
// by the nightly jobs and fetched by the Model Server at serve time.
type UserStats struct {
	OutCount, InCount   float64
	OutAmount, InAmount float64
	DistinctRcv         float64
	DistinctSnd         float64
	OutDays, InDays     float64
}

// Stats returns the aggregate fragment of user u (zero for unseen users).
func (a *Aggregates) Stats(u txn.UserID) UserStats {
	ua, ok := a.users[u]
	if !ok {
		return UserStats{}
	}
	return UserStats{
		OutCount: ua.outCount, InCount: ua.inCount,
		OutAmount: ua.outAmount, InAmount: ua.inAmount,
		DistinctRcv: float64(len(ua.distinctRcv)),
		DistinctSnd: float64(len(ua.distinctSnd)),
		OutDays:     float64(len(ua.outDays)),
		InDays:      float64(len(ua.inDays)),
	}
}

// PairPrior returns how many times from already transferred to to in the
// reference window.
func (a *Aggregates) PairPrior(from, to txn.UserID) float64 {
	return a.pairCount[pairKey{from, to}]
}

// CityTable is the per-city feature table (smoothed fraud rate and traffic
// share). It is small enough to travel inside the model bundle.
type CityTable struct {
	Fraud []float64
	Share []float64
}

// CityTable exports the aggregates' city statistics.
func (a *Aggregates) CityTable() CityTable {
	return CityTable{
		Fraud: append([]float64(nil), a.cityFraud...),
		Share: append([]float64(nil), a.cityShare...),
	}
}

// Lookup returns the (fraud rate, traffic share) of city c, clamping
// out-of-range codes.
func (ct CityTable) Lookup(c uint16) (fraud, share float64) {
	i := int(c)
	if len(ct.Fraud) == 0 {
		return 0, 0
	}
	if i >= len(ct.Fraud) {
		i = len(ct.Fraud) - 1
	}
	return ct.Fraud[i], ct.Share[i]
}

// Lookup reads city c's statistics directly from the aggregates without
// snapshotting, satisfying CitySource.
func (a *Aggregates) Lookup(c uint16) (fraud, share float64) {
	return CityTable{Fraud: a.cityFraud, Share: a.cityShare}.Lookup(c)
}

// Aggregates is the batch implementation of the shared read surface.
var _ Source = (*Aggregates)(nil)

// Basic writes the 52 basic features of t into dst (which must have length
// NumBasic) and returns it. Callers may pass nil to allocate.
func (e *Extractor) Basic(t *txn.Transaction, dst []float64) []float64 {
	fu := &e.users[t.From]
	tu := &e.users[t.To]
	return BasicFromParts(t, fu, tu, e.src, dst)
}

// BasicFromParts assembles the 52 basic features from the transaction plus
// independently fetched profile fragments - the exact computation the
// Model Server performs after pulling both users' rows from Ali-HBase
// (Figure 5). city supplies the per-city statistics: a frozen CityTable
// on the T+1 path, the live streaming window on the online path.
func BasicFromParts(t *txn.Transaction, fu, tu *txn.User, city CitySource, dst []float64) []float64 {
	if dst == nil {
		dst = make([]float64, NumBasic)
	}
	if len(dst) != NumBasic {
		panic(fmt.Sprintf("feature: dst has %d slots, want %d", len(dst), NumBasic))
	}
	amount := float64(t.Amount)
	hour := float64(t.Sec) / 3600
	k := 0
	put := func(v float64) { dst[k] = v; k++ }
	b2f := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}

	// Transaction (12)
	put(amount)
	put(math.Log1p(amount))
	put(b2f(math.Mod(amount, 100) == 0 && amount >= 100))
	put(hour)
	put(math.Sin(2 * math.Pi * hour / 24))
	put(math.Cos(2 * math.Pi * hour / 24))
	put(b2f(hour < 6))
	put(float64(int(t.Day) % 7))
	put(b2f(t.Channel == txn.ChannelBalance))
	put(b2f(t.Channel == txn.ChannelBankCard))
	put(b2f(t.Channel == txn.ChannelCredit))
	put(float64(t.DeviceRisk))

	// Context (6)
	put(float64(t.IPRisk))
	cf, cs := city.Lookup(t.TransCity)
	put(cf)
	put(cs)
	put(b2f(t.TransCity != fu.HomeCity))
	avgAmt := math.Max(float64(fu.AvgAmount), 1)
	put(amount / avgAmt)
	put(math.Log1p(amount / avgAmt))

	// Sender profile (10)
	putProfile(put, b2f, fu, city)
	// Receiver profile (10)
	putProfile(put, b2f, tu, city)

	// Pairwise & derived context (14)
	rcvAvg := math.Max(float64(tu.AvgAmount), 1)
	put(amount / rcvAvg)
	put(math.Log1p(amount / rcvAvg))
	put(b2f(hour >= 6 && hour < 12))
	put(b2f(hour >= 12 && hour < 18))
	put(b2f(hour >= 18))
	put(b2f(hour < 6))
	put(b2f(fu.HomeCity == tu.HomeCity))
	put(b2f(t.TransCity == tu.HomeCity))
	put(math.Abs(float64(fu.Age) - float64(tu.Age)))
	put(math.Log1p(float64(fu.AccountAge)))
	put(math.Log1p(float64(tu.AccountAge)))
	put(float64(t.DeviceRisk) * float64(t.IPRisk))
	put(b2f(math.Mod(amount, 1000) == 0 && amount >= 1000))
	put(b2f(int(t.Day)%7 >= 5))

	if k != NumBasic {
		panic(fmt.Sprintf("feature: wrote %d features, want %d", k, NumBasic))
	}
	return dst
}

func putProfile(put func(float64), b2f func(bool) float64, u *txn.User, city CitySource) {
	put(float64(u.Age))
	put(b2f(u.Gender == txn.GenderFemale))
	put(b2f(u.Gender == txn.GenderMale))
	put(float64(u.AccountAge))
	put(float64(u.DeviceCount))
	put(float64(u.KYCLevel))
	put(float64(u.AvgDailyTxns))
	put(math.Log1p(float64(u.AvgAmount)))
	put(b2f(u.MerchantFlag))
	cf, _ := city.Lookup(u.HomeCity)
	put(cf)
}

// BasicMatrix extracts basic features for every transaction into a matrix.
func (e *Extractor) BasicMatrix(ts []txn.Transaction) *Matrix {
	m := NewMatrix(len(ts), NumBasic)
	for i := range ts {
		e.Basic(&ts[i], m.Row(i))
	}
	return m
}

// LabelsOf returns the fraud labels of a transaction slice.
func LabelsOf(ts []txn.Transaction) []bool {
	ls := make([]bool, len(ts))
	for i := range ts {
		ls[i] = ts[i].Fraud
	}
	return ls
}

// EmbeddingLookup maps a user to an embedding vector; it returns nil when
// the user was absent from the window the embedding was trained on
// (cold-start), in which case zeros are appended.
type EmbeddingLookup func(u txn.UserID) []float32

// WithEmbeddings widens basic matrix m by appending the sender's and
// receiver's embeddings (each of dimension dim) for every transaction; one
// lookup may be nil to skip that side. The paper concatenates user node
// embeddings with basic features (Section 3.3); the transaction-level
// instance gets both endpoints' vectors.
func WithEmbeddings(m *Matrix, ts []txn.Transaction, dim int, lookup EmbeddingLookup) *Matrix {
	if m.Rows != len(ts) {
		panic(fmt.Sprintf("feature: %d matrix rows vs %d transactions", m.Rows, len(ts)))
	}
	out := NewMatrix(m.Rows, m.Cols+2*dim)
	for i := 0; i < m.Rows; i++ {
		src := m.Row(i)
		dst := out.Row(i)
		copy(dst, src)
		if emb := lookup(ts[i].From); emb != nil {
			for j := 0; j < dim && j < len(emb); j++ {
				dst[m.Cols+j] = float64(emb[j])
			}
		}
		if emb := lookup(ts[i].To); emb != nil {
			for j := 0; j < dim && j < len(emb); j++ {
				dst[m.Cols+dim+j] = float64(emb[j])
			}
		}
	}
	return out
}

// Concat appends the columns of b to a row-wise. Both must have the same
// number of rows.
func Concat(a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("feature: concat %d rows vs %d rows", a.Rows, b.Rows))
	}
	out := NewMatrix(a.Rows, a.Cols+b.Cols)
	for i := 0; i < a.Rows; i++ {
		copy(out.Row(i), a.Row(i))
		copy(out.Row(i)[a.Cols:], b.Row(i))
	}
	return out
}

// Discretizer bins continuous features into equal-frequency buckets. LR,
// ID3 and C5.0 all consume discretised inputs in the paper (LR's best bin
// size is 200; the trees need categorical-ish splits).
type Discretizer struct {
	Cuts [][]float64 // ascending cut points per column, exported for gob
}

// FitDiscretizer learns per-column quantile cut points from m, producing at
// most `bins` buckets per column. Columns with few distinct values get
// fewer buckets.
func FitDiscretizer(m *Matrix, bins int) *Discretizer {
	if bins < 2 {
		panic("feature: need at least 2 bins")
	}
	d := &Discretizer{Cuts: make([][]float64, m.Cols)}
	col := make([]float64, m.Rows)
	for j := 0; j < m.Cols; j++ {
		for i := 0; i < m.Rows; i++ {
			col[i] = m.At(i, j)
		}
		sort.Float64s(col)
		var cuts []float64
		for b := 1; b < bins; b++ {
			q := col[(b*m.Rows)/bins]
			// A cut at the column minimum would create an empty lowest
			// bucket; skip it (and dedupe equal quantiles).
			if q > col[0] && (len(cuts) == 0 || q > cuts[len(cuts)-1]) {
				cuts = append(cuts, q)
			}
		}
		d.Cuts[j] = cuts
	}
	return d
}

// NumCols returns the number of columns the discretizer was fitted on.
func (d *Discretizer) NumCols() int { return len(d.Cuts) }

// BytePackable reports whether every column fits the byte-packed Binned
// representation (at most 256 buckets). Transform panics when it does
// not; batch scorers check this to fall back to unpacked binning.
func (d *Discretizer) BytePackable() bool {
	for j := range d.Cuts {
		if d.NumBins(j) > 256 {
			return false
		}
	}
	return true
}

// NumBins returns the bucket count of column j.
func (d *Discretizer) NumBins(j int) int { return len(d.Cuts[j]) + 1 }

// Bin maps value v in column j to its bucket in [0, NumBins(j)).
func (d *Discretizer) Bin(j int, v float64) int {
	cuts := d.Cuts[j]
	lo, hi := 0, len(cuts)
	for lo < hi {
		mid := (lo + hi) / 2
		if v >= cuts[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Transform bins every element of m, returning a row-major byte matrix
// (bins must be <= 256 for this representation).
func (d *Discretizer) Transform(m *Matrix) *Binned {
	if m.Cols != len(d.Cuts) {
		panic(fmt.Sprintf("feature: matrix has %d cols, discretizer %d", m.Cols, len(d.Cuts)))
	}
	b := &Binned{Rows: m.Rows, Cols: m.Cols, Data: make([]uint8, m.Rows*m.Cols), NumBins: make([]int, m.Cols)}
	for j := range d.Cuts {
		n := d.NumBins(j)
		if n > 256 {
			panic("feature: more than 256 bins cannot be byte-packed")
		}
		b.NumBins[j] = n
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		out := b.Row(i)
		for j, v := range row {
			out[j] = uint8(d.Bin(j, v))
		}
	}
	return b
}

// Binned is a byte-packed discretised matrix.
type Binned struct {
	Rows, Cols int
	Data       []uint8
	NumBins    []int // buckets per column
}

// Row returns row i as a shared slice.
func (b *Binned) Row(i int) []uint8 { return b.Data[i*b.Cols : (i+1)*b.Cols] }

// At returns element (i, j).
func (b *Binned) At(i, j int) uint8 { return b.Data[i*b.Cols+j] }
