// Package stream implements the online half of TitAnt's feature layer: a
// sharded, lock-striped streaming aggregate store that maintains the same
// per-user velocity/diversity counters, pairwise transfer priors, and
// per-city fraud statistics as feature.BuildAggregates — but incrementally,
// transaction by transaction, over a sliding window of time-bucketed ring
// buffers.
//
// The paper's serving path (Figure 5) reads aggregates that the nightly
// MaxCompute jobs materialised into Ali-HBase, so the statistics the Model
// Server scores against are up to a day stale ("T+1"). This store closes
// that gap for the aggregate fragment: Ingest is O(1) (two shard-striped
// ring-bucket updates plus one city-table update), reads are O(buckets),
// and memory per active user is bounded by the window geometry plus the
// user's in-window distinct counterparties — the minimum any exact
// distinct count requires.
//
// Window semantics: time is bucketed into fixed-width buckets of
// BucketSeconds; the window covers the most recent Buckets buckets ending
// at the newest ingested transaction's bucket (the store's clock advances
// only by ingestion, so an idle store does not silently expire its
// contents). Users whose whole ring has expired are evicted
// opportunistically — one probe per ingest — so memory tracks the active
// user set; and a clock jump further than one full window ahead needs a
// second corroborating transaction before it is believed, so a single
// corrupt far-future timestamp cannot slide the window past all real
// traffic (see advanceClock). A Store configured with
// Buckets×BucketSeconds equal to the
// paper's 90-day reference window and fed the same transactions produces
// exactly the statistics BuildAggregates computes from that window — the
// stream_test.go oracle test enforces this equivalence, including after
// old buckets expire.
//
// The Store satisfies feature.Source, so feature.Extractor and the Model
// Server consume it interchangeably with the batch Aggregates. Today's
// consumers split along the paper's feature design: the Model Server's
// hot path reads the city statistics live (the only aggregate terms in
// the 52 basic features — per Section 3.2, relational velocity signals
// travel via node embeddings, not hand-built counters), while the
// per-user Stats/PairPrior surface serves extraction over a live window
// (feature.NewExtractor over the Store), the T+1 oracle equivalence
// tests, and operational introspection; a future feature-layout revision
// can put those terms on the wire without touching this package.
package stream

import (
	"math"
	"sync"
	"sync/atomic"

	"titant/internal/feature"
	"titant/internal/rng"
	"titant/internal/txn"
)

// Defaults mirror the paper's reference-window geometry: 90 day-wide
// buckets (Section 3.2's aggregate window) over 64 lock stripes.
const (
	DefaultShards        = 64
	DefaultBuckets       = txn.NetworkDays
	DefaultBucketSeconds = int64(24 * 60 * 60)
	DefaultCities        = 128
)

// config collects the option-settable geometry.
type config struct {
	shards     int
	buckets    int
	bucketSecs int64
	cities     int
}

// Option configures a Store built by New, mirroring the functional-option
// style of ms.New.
type Option func(*config)

// WithShards sets the lock-stripe count (rounded up to a power of two;
// values below 1 keep the default). More shards reduce write contention
// under concurrent ingest.
func WithShards(n int) Option {
	return func(c *config) {
		if n >= 1 {
			c.shards = n
		}
	}
}

// WithWindow sets the sliding-window geometry: buckets ring slots of
// bucketSeconds each. Non-positive values keep the defaults. The window
// span is buckets×bucketSeconds; finer buckets slide more smoothly at the
// cost of proportionally more read work.
func WithWindow(buckets int, bucketSeconds int64) Option {
	return func(c *config) {
		if buckets >= 1 {
			c.buckets = buckets
		}
		if bucketSeconds >= 1 {
			c.bucketSecs = bucketSeconds
		}
	}
}

// WithCities bounds the city table; city codes >= n are clamped to the
// last slot, matching feature.BuildAggregates.
func WithCities(n int) Option {
	return func(c *config) {
		if n >= 1 {
			c.cities = n
		}
	}
}

// Store is the streaming aggregate store. All methods are safe for
// concurrent use: per-user state is striped across shards, each guarded
// by its own RWMutex, and the city table has a dedicated lock with O(1)
// rolling-sum reads.
type Store struct {
	mask       uint64
	buckets    int
	bucketSecs int64
	shards     []shard
	city       cityStats

	// maxSeq is the newest ingested bucket sequence — the store's clock.
	// The live window is (maxSeq-buckets, maxSeq].
	maxSeq   atomic.Int64
	ingested atomic.Int64
	dropped  atomic.Int64

	// Far-future clock jumps need corroboration (see advanceClock);
	// this is the rare-path state, so a mutex is fine.
	jumpMu      sync.Mutex
	pendingJump int64
	pendingKey  uint64 // identity of the txn that proposed the jump
}

// noSeq marks an empty clock: far enough below any real sequence that
// maxSeq-buckets cannot underflow.
const noSeq = math.MinInt64 / 2

// New builds a streaming store with the given geometry.
func New(opts ...Option) *Store {
	cfg := config{
		shards:     DefaultShards,
		buckets:    DefaultBuckets,
		bucketSecs: DefaultBucketSeconds,
		cities:     DefaultCities,
	}
	for _, o := range opts {
		o(&cfg)
	}
	nshards := 1
	for nshards < cfg.shards {
		nshards <<= 1
	}
	s := &Store{
		mask:       uint64(nshards - 1),
		buckets:    cfg.buckets,
		bucketSecs: cfg.bucketSecs,
		shards:     make([]shard, nshards),
	}
	for i := range s.shards {
		s.shards[i].users = make(map[txn.UserID]*userWindow)
	}
	s.city.init(cfg.cities, cfg.buckets)
	s.maxSeq.Store(noSeq)
	s.pendingJump = noSeq
	return s
}

// Geometry accessors, for daemon flags and the stats endpoint.

// Shards returns the lock-stripe count.
func (s *Store) Shards() int { return len(s.shards) }

// Buckets returns the ring length of every window.
func (s *Store) Buckets() int { return s.buckets }

// BucketSeconds returns the width of one ring bucket.
func (s *Store) BucketSeconds() int64 { return s.bucketSecs }

// WindowSeconds returns the total window span.
func (s *Store) WindowSeconds() int64 { return int64(s.buckets) * s.bucketSecs }

// Ingested returns the number of transactions accepted into the window.
func (s *Store) Ingested() int64 { return s.ingested.Load() }

// Dropped returns the number of transactions rejected as older than the
// whole window at ingest time.
func (s *Store) Dropped() int64 { return s.dropped.Load() }

// shard is one lock stripe. The trailing pad rounds the struct up to 64
// bytes so adjacent stripes sit on separate cache lines and uncorrelated
// ingests don't false-share their mutexes.
type shard struct {
	mu    sync.RWMutex // 24 bytes
	users map[txn.UserID]*userWindow
	_     [32]byte
}

// userWindow is one user's ring of time buckets.
type userWindow struct {
	buckets []bucket
}

// bucket aggregates one user's activity inside one time bucket. The maps
// are allocated lazily and cleared (not reallocated) on rotation. seq
// identifies which bucket sequence the slot currently holds; slots whose
// seq has fallen out of the window are skipped by readers and recycled by
// the next write.
type bucket struct {
	seq                 int64
	outCount, inCount   float64
	outAmount, inAmount float64
	outPeers            map[txn.UserID]float64  // receiver -> transfer count (distinct-rcv + pair prior)
	inPeers             map[txn.UserID]struct{} // distinct senders
	outDays, inDays     map[txn.Day]struct{}    // distinct active days
}

// reset recycles a slot for a new sequence, keeping map allocations.
func (b *bucket) reset(seq int64) {
	b.seq = seq
	b.outCount, b.inCount = 0, 0
	b.outAmount, b.inAmount = 0, 0
	clear(b.outPeers)
	clear(b.inPeers)
	clear(b.outDays)
	clear(b.inDays)
}

func (s *Store) shardIndex(u txn.UserID) uint64 {
	return rng.Mix64(uint64(uint32(u))) & s.mask
}

func (s *Store) shardOf(u txn.UserID) *shard {
	return &s.shards[s.shardIndex(u)]
}

// seqOf converts a transaction timestamp to its bucket sequence.
func (s *Store) seqOf(day txn.Day, sec int32) int64 {
	return (int64(day)*86400 + int64(sec)) / s.bucketSecs
}

// slot returns the ring slot for seq, recycling it if it still holds an
// older sequence. Callers hold the shard lock.
func (w *userWindow) slot(seq int64) *bucket {
	b := &w.buckets[seq%int64(len(w.buckets))]
	if b.seq != seq {
		b.reset(seq)
	}
	return b
}

// advanceClock moves the window clock forward to seq. A jump further
// than one full window ahead of a non-empty clock needs corroboration:
// the first such transaction is rejected and remembered; a *different*
// far-future transaction within one window of the pending jump confirms
// the new epoch and advances the clock. This way a single corrupt or
// hostile timestamp (which would otherwise slide the window past all
// real traffic and permanently brick the store, since the clock is
// monotonic) is shed as a drop — the identity check means even an HTTP
// retry duplicating the corrupt request byte-for-byte cannot corroborate
// itself — while a genuine gap (a daemon idle longer than its window)
// recovers on the second distinct transaction of the resumed stream.
func (s *Store) advanceClock(seq int64, key uint64) bool {
	corroborated := false
	for {
		cur := s.maxSeq.Load()
		if seq <= cur {
			return true
		}
		if corroborated || cur == noSeq || seq-cur <= int64(s.buckets) {
			if s.maxSeq.CompareAndSwap(cur, seq) {
				return true
			}
			continue
		}
		s.jumpMu.Lock()
		pend := s.pendingJump
		if pend != noSeq && seq >= pend-int64(s.buckets) && seq <= pend+int64(s.buckets) &&
			key != s.pendingKey {
			// A second, distinct transaction agrees on the new epoch.
			s.pendingJump = noSeq
			s.jumpMu.Unlock()
			corroborated = true
			continue
		}
		s.pendingJump = seq
		s.pendingKey = key
		s.jumpMu.Unlock()
		return false
	}
}

// txnKey fingerprints a transaction's identity for jump corroboration.
func txnKey(t *txn.Transaction) uint64 {
	return rng.Mix64(uint64(t.ID)) ^ rng.Mix64(uint64(uint32(t.From))<<32|uint64(uint32(t.To))) ^ uint64(t.Sec)
}

// Ingest feeds one transaction into the live window: the sender's
// out-side, the receiver's in-side, and the city table. O(1): two striped
// map upserts plus constant ring-bucket arithmetic. Transactions older
// than the whole window (or further ahead of it than advanceClock
// tolerates) are counted in Dropped and otherwise ignored; accepted newer
// transactions advance the window, expiring buckets that fall off the far
// edge.
func (s *Store) Ingest(t *txn.Transaction) {
	seq := s.seqOf(t.Day, t.Sec)
	// The timeline starts at day 0: a negative sequence (negative wire
	// day/sec) is malformed input, and letting it through would index the
	// rings with a negative modulo.
	if seq < 0 || !s.advanceClock(seq, txnKey(t)) {
		s.dropped.Add(1)
		return
	}

	// Both user-side writes happen under both shard locks, with a single
	// in-window decision: the window may slide between advanceClock and
	// lock acquisition, and deciding per-side could apply the sender's
	// half of a transaction but not the receiver's. Locks are ordered by
	// shard index so concurrent ingests cannot deadlock; per-user slots
	// only change under their shard lock, so the in-lock check is
	// authoritative and a stale write can never recycle a slot holding
	// newer data.
	fi, ti := s.shardIndex(t.From), s.shardIndex(t.To)
	shFrom, shTo := &s.shards[fi], &s.shards[ti]
	first, second := shFrom, shTo
	if fi > ti {
		first, second = shTo, shFrom
	}
	first.mu.Lock()
	if second != first {
		second.mu.Lock()
	}
	if seq <= s.maxSeq.Load()-int64(s.buckets) {
		if second != first {
			second.mu.Unlock()
		}
		first.mu.Unlock()
		s.dropped.Add(1)
		return
	}
	b := shFrom.window(t.From, s.buckets).slot(seq)
	b.outCount++
	b.outAmount += float64(t.Amount)
	if b.outPeers == nil {
		b.outPeers = make(map[txn.UserID]float64, 4)
	}
	b.outPeers[t.To]++
	if b.outDays == nil {
		b.outDays = make(map[txn.Day]struct{}, 2)
	}
	b.outDays[t.Day] = struct{}{}

	b = shTo.window(t.To, s.buckets).slot(seq)
	b.inCount++
	b.inAmount += float64(t.Amount)
	if b.inPeers == nil {
		b.inPeers = make(map[txn.UserID]struct{}, 4)
	}
	b.inPeers[t.From] = struct{}{}
	if b.inDays == nil {
		b.inDays = make(map[txn.Day]struct{}, 2)
	}
	b.inDays[t.Day] = struct{}{}

	// Piggyback one eviction probe on the write lock already held: check
	// a pseudo-random resident of the sender's shard and delete it if its
	// whole ring has expired, so memory tracks the active user set, not
	// the all-time one.
	shFrom.evictOne(t.From, s.maxSeq.Load()-int64(s.buckets)+1)

	if second != first {
		second.mu.Unlock()
	}
	first.mu.Unlock()

	s.city.add(seq, t.TransCity, t.Fraud)
	s.ingested.Add(1)
}

// evictOne probes one map entry (Go's randomised iteration order makes
// successive probes hit different users) and deletes it if every bucket
// fell out of the window. Amortised O(1) per ingest; a long-lived store
// therefore sheds departed users at roughly its ingest rate. Callers hold
// the shard write lock.
func (sh *shard) evictOne(skip txn.UserID, low int64) {
	for u, w := range sh.users {
		if u == skip {
			continue
		}
		for i := range w.buckets {
			if w.buckets[i].seq >= low {
				return
			}
		}
		delete(sh.users, u)
		return
	}
}

// IngestBatch ingests a slice in order.
func (s *Store) IngestBatch(ts []txn.Transaction) {
	for i := range ts {
		s.Ingest(&ts[i])
	}
}

// window returns (or creates) u's ring of n buckets. Callers hold the
// shard lock.
func (sh *shard) window(u txn.UserID, n int) *userWindow {
	w, ok := sh.users[u]
	if !ok {
		w = &userWindow{buckets: make([]bucket, n)}
		for i := range w.buckets {
			w.buckets[i].seq = noSeq
		}
		sh.users[u] = w
	}
	return w
}

// windowLow returns the lowest in-window sequence (inclusive).
func (s *Store) windowLow() int64 {
	return s.maxSeq.Load() - int64(s.buckets) + 1
}

// Stats sums user u's live window into the same UserStats fragment the
// batch aggregates produce. O(buckets + in-window distinct entries).
func (s *Store) Stats(u txn.UserID) feature.UserStats {
	low := s.windowLow()
	sh := s.shardOf(u)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	w := sh.users[u]
	if w == nil {
		return feature.UserStats{}
	}
	var st feature.UserStats
	rcv := make(map[txn.UserID]struct{})
	snd := make(map[txn.UserID]struct{})
	outD := make(map[txn.Day]struct{})
	inD := make(map[txn.Day]struct{})
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.seq < low {
			continue
		}
		st.OutCount += b.outCount
		st.InCount += b.inCount
		st.OutAmount += b.outAmount
		st.InAmount += b.inAmount
		for p := range b.outPeers {
			rcv[p] = struct{}{}
		}
		for p := range b.inPeers {
			snd[p] = struct{}{}
		}
		for d := range b.outDays {
			outD[d] = struct{}{}
		}
		for d := range b.inDays {
			inD[d] = struct{}{}
		}
	}
	st.DistinctRcv = float64(len(rcv))
	st.DistinctSnd = float64(len(snd))
	st.OutDays = float64(len(outD))
	st.InDays = float64(len(inD))
	return st
}

// Velocity sums user u's in-window transfer counts and amounts without
// touching the distinct-entity maps: the count/amount ring fields are
// plain accumulators, so the read is O(buckets) with zero allocation —
// cheap enough for the decision subsystem's velocity-cap rule predicates
// to call on the scoring hot path (Stats, by contrast, allocates four
// maps to reproduce the distinct counters exactly).
func (s *Store) Velocity(u txn.UserID) (outCount, outAmount, inCount, inAmount float64) {
	low := s.windowLow()
	sh := s.shardOf(u)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	w := sh.users[u]
	if w == nil {
		return 0, 0, 0, 0
	}
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.seq < low {
			continue
		}
		outCount += b.outCount
		outAmount += b.outAmount
		inCount += b.inCount
		inAmount += b.inAmount
	}
	return outCount, outAmount, inCount, inAmount
}

// PairPrior returns how many times from transferred to to inside the live
// window. O(buckets).
func (s *Store) PairPrior(from, to txn.UserID) float64 {
	low := s.windowLow()
	sh := s.shardOf(from)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	w := sh.users[from]
	if w == nil {
		return 0
	}
	var n float64
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.seq < low {
			continue
		}
		n += b.outPeers[to]
	}
	return n
}

// Lookup returns city c's smoothed fraud rate and traffic share over the
// live window, satisfying feature.CitySource. O(1): rolling sums, not a
// ring scan.
func (s *Store) Lookup(c uint16) (fraud, share float64) {
	fraud, share, _ = s.LookupCity(c)
	return fraud, share
}

// LookupCity additionally reports the city's in-window transaction count,
// letting callers distinguish "genuinely quiet city" from "no data yet"
// (the Model Server falls back to the bundle's frozen table on the
// latter).
func (s *Store) LookupCity(c uint16) (fraud, share, txns float64) {
	return s.city.lookup(c)
}

// CityTable snapshots the live window's city statistics in the same form
// the batch aggregates export (e.g. for building a model bundle from a
// streamed window).
func (s *Store) CityTable() feature.CityTable {
	return s.city.snapshot()
}

// Store implements the full aggregate read surface.
var _ feature.Source = (*Store)(nil)

// cityStats maintains per-city windowed counts with rolling sums: adds
// rotate the ring eagerly (amortised O(cities) per bucket advance) under
// a mutex, while the rolling sums the scorer reads are atomic integers —
// Lookup is three atomic loads with no lock at all, so saturated ingest
// writers cannot starve the scoring hot path's tail latency. A reader
// racing a rotation may observe sums that are momentarily off by one
// bucket's contents; for windowed risk statistics that transient skew is
// harmless, and single-threaded use (the oracle tests) is exact.
type cityStats struct {
	mu       sync.Mutex // guards the ring bookkeeping below
	nbuckets int
	cities   int
	started  bool
	head     int64     // newest sequence represented in the ring
	seqs     []int64   // per-slot sequence currently held
	count    []float64 // [slot*cities + city] transactions
	fraud    []float64 // [slot*cities + city] fraud-labelled transactions

	// Live rolling sums over in-window slots; written under mu, read
	// lock-free. Counts are integers, so atomic.Int64 is exact.
	countSum []atomic.Int64
	fraudSum []atomic.Int64
	totalSum atomic.Int64
}

func (cs *cityStats) init(cities, buckets int) {
	cs.nbuckets = buckets
	cs.cities = cities
	cs.seqs = make([]int64, buckets)
	cs.count = make([]float64, buckets*cities)
	cs.fraud = make([]float64, buckets*cities)
	cs.countSum = make([]atomic.Int64, cities)
	cs.fraudSum = make([]atomic.Int64, cities)
}

func (cs *cityStats) clampCity(c uint16) int {
	i := int(c)
	if i >= cs.cities {
		i = cs.cities - 1
	}
	return i
}

// expireSlot removes a slot's contents from the rolling sums and zeroes
// it. Callers hold mu.
func (cs *cityStats) expireSlot(slot int) {
	base := slot * cs.cities
	for c := 0; c < cs.cities; c++ {
		if n := cs.count[base+c]; n != 0 {
			cs.countSum[c].Add(-int64(n))
			cs.totalSum.Add(-int64(n))
			cs.fraudSum[c].Add(-int64(cs.fraud[base+c]))
			cs.count[base+c] = 0
			cs.fraud[base+c] = 0
		}
	}
}

func (cs *cityStats) add(seq int64, city uint16, isFraud bool) {
	c := cs.clampCity(city)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if !cs.started {
		cs.started = true
		cs.head = seq
		for i := range cs.seqs {
			cs.seqs[i] = noSeq
		}
	}
	if seq > cs.head {
		// Advancing the head expires exactly the slots the new sequences
		// will occupy — the buckets falling off the far edge of the window.
		steps := seq - cs.head
		if steps > int64(cs.nbuckets) {
			steps = int64(cs.nbuckets)
		}
		for k := seq - steps + 1; k <= seq; k++ {
			slot := int(k % int64(cs.nbuckets))
			cs.expireSlot(slot)
			cs.seqs[slot] = k
		}
		cs.head = seq
	}
	if seq <= cs.head-int64(cs.nbuckets) {
		// Shed: another writer slid the window between this transaction's
		// user-side commit and here, so the city table skips what the
		// user rings kept (both sides would have been dropped up front
		// had the slide happened earlier). The transaction still counts
		// as ingested; the skew is one boundary transaction per
		// concurrent slide and each table stays internally consistent.
		return
	}
	slot := int(seq % int64(cs.nbuckets))
	if cs.seqs[slot] != seq {
		cs.expireSlot(slot)
		cs.seqs[slot] = seq
	}
	cs.count[slot*cs.cities+c]++
	cs.countSum[c].Add(1)
	cs.totalSum.Add(1)
	if isFraud {
		cs.fraud[slot*cs.cities+c]++
		cs.fraudSum[c].Add(1)
	}
}

// lookup is lock-free: three atomic loads on the scoring hot path.
func (cs *cityStats) lookup(city uint16) (fraud, share, txns float64) {
	c := cs.clampCity(city)
	n := float64(cs.countSum[c].Load())
	fraud = (float64(cs.fraudSum[c].Load()) + feature.CitySmoothing*feature.CityFraudPrior) / (n + feature.CitySmoothing)
	if tot := float64(cs.totalSum.Load()); tot > 0 {
		share = n / tot
	}
	return fraud, share, n
}

// snapshot takes mu so the exported table is internally consistent (the
// sums only move under the lock).
func (cs *cityStats) snapshot() feature.CityTable {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ct := feature.CityTable{
		Fraud: make([]float64, cs.cities),
		Share: make([]float64, cs.cities),
	}
	total := float64(cs.totalSum.Load())
	for c := 0; c < cs.cities; c++ {
		n := float64(cs.countSum[c].Load())
		ct.Fraud[c] = (float64(cs.fraudSum[c].Load()) + feature.CitySmoothing*feature.CityFraudPrior) / (n + feature.CitySmoothing)
		if total > 0 {
			ct.Share[c] = n / total
		}
	}
	return ct
}
