package stream

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"titant/internal/txn"
)

// State snapshot codec. WriteState serialises every accumulator the Store
// owns — ring buckets, distinct-entity maps, city table, clock, jump
// corroboration state — with float64 sums stored as raw bits, so a
// RestoreState into a same-geometry Store reproduces reads (Stats,
// Velocity, PairPrior, LookupCity) bitwise-identically. The event log
// uses this as the "stream" section of its periodic snapshots: recovery
// loads the snapshot and replays only the log tail behind it.
//
// Ordering: WriteState takes every shard lock and the city lock one at a
// time, so it is a consistent cut only if the caller has quiesced writers
// (the Model Server serialises snapshots against ingest under its event
// log mutex). RestoreState assumes a freshly built, unshared Store.

const (
	snapMagic   = 0x50534e53 // "SNSP"
	snapVersion = 1
)

// WriteState writes the store's full state to w.
func (s *Store) WriteState(w io.Writer) error {
	bw := &binWriter{w: bufio.NewWriterSize(w, 1<<16)}
	bw.u32(snapMagic)
	bw.u32(snapVersion)
	// Geometry, so a restore into a differently-shaped store fails loudly
	// instead of silently mis-bucketing.
	bw.u32(uint32(len(s.shards)))
	bw.u32(uint32(s.buckets))
	bw.i64(s.bucketSecs)
	bw.u32(uint32(s.city.cities))

	bw.i64(s.maxSeq.Load())
	bw.i64(s.ingested.Load())
	bw.i64(s.dropped.Load())
	s.jumpMu.Lock()
	bw.i64(s.pendingJump)
	bw.u64(s.pendingKey)
	s.jumpMu.Unlock()

	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		bw.u32(uint32(len(sh.users)))
		// Deterministic user order keeps snapshots of identical state
		// byte-identical, which makes them diffable and testable.
		ids := make([]txn.UserID, 0, len(sh.users))
		for u := range sh.users {
			ids = append(ids, u)
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		for _, u := range ids {
			bw.u32(uint32(u))
			writeWindow(bw, sh.users[u])
		}
		sh.mu.RUnlock()
	}

	cs := &s.city
	cs.mu.Lock()
	bw.u8(b2u(cs.started))
	bw.i64(cs.head)
	for _, q := range cs.seqs {
		bw.i64(q)
	}
	for _, v := range cs.count {
		bw.f64(v)
	}
	for _, v := range cs.fraud {
		bw.f64(v)
	}
	cs.mu.Unlock()

	if bw.err != nil {
		return fmt.Errorf("stream: write state: %w", bw.err)
	}
	return bw.w.Flush()
}

func writeWindow(bw *binWriter, w *userWindow) {
	live := 0
	for i := range w.buckets {
		if w.buckets[i].seq != noSeq {
			live++
		}
	}
	bw.u32(uint32(live))
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.seq == noSeq {
			continue
		}
		bw.u32(uint32(i))
		bw.i64(b.seq)
		bw.f64(b.outCount)
		bw.f64(b.inCount)
		bw.f64(b.outAmount)
		bw.f64(b.inAmount)
		bw.u32(uint32(len(b.outPeers)))
		for _, p := range sortedUsersF(b.outPeers) {
			bw.u32(uint32(p))
			bw.f64(b.outPeers[p])
		}
		bw.u32(uint32(len(b.inPeers)))
		for _, p := range sortedUsers(b.inPeers) {
			bw.u32(uint32(p))
		}
		bw.u32(uint32(len(b.outDays)))
		for _, d := range sortedDays(b.outDays) {
			bw.u32(uint32(d))
		}
		bw.u32(uint32(len(b.inDays)))
		for _, d := range sortedDays(b.inDays) {
			bw.u32(uint32(d))
		}
	}
}

// RestoreState loads a snapshot written by WriteState into s, which must
// be freshly built with the same geometry and not yet shared.
func (s *Store) RestoreState(r io.Reader) error {
	br := &binReader{r: bufio.NewReaderSize(r, 1<<16)}
	if m := br.u32(); br.err == nil && m != snapMagic {
		return fmt.Errorf("stream: restore: bad magic %#x", m)
	}
	if v := br.u32(); br.err == nil && v != snapVersion {
		return fmt.Errorf("stream: restore: unsupported version %d", v)
	}
	if n := br.u32(); br.err == nil && int(n) != len(s.shards) {
		return fmt.Errorf("stream: restore: snapshot has %d shards, store has %d", n, len(s.shards))
	}
	if n := br.u32(); br.err == nil && int(n) != s.buckets {
		return fmt.Errorf("stream: restore: snapshot has %d buckets, store has %d", n, s.buckets)
	}
	if q := br.i64(); br.err == nil && q != s.bucketSecs {
		return fmt.Errorf("stream: restore: snapshot bucketSeconds %d, store %d", q, s.bucketSecs)
	}
	if n := br.u32(); br.err == nil && int(n) != s.city.cities {
		return fmt.Errorf("stream: restore: snapshot has %d cities, store has %d", n, s.city.cities)
	}

	s.maxSeq.Store(br.i64())
	s.ingested.Store(br.i64())
	s.dropped.Store(br.i64())
	s.pendingJump = br.i64()
	s.pendingKey = br.u64()

	for i := range s.shards {
		sh := &s.shards[i]
		nusers := int(br.u32())
		if br.err != nil {
			break
		}
		for j := 0; j < nusers; j++ {
			u := txn.UserID(br.u32())
			w := &userWindow{buckets: make([]bucket, s.buckets)}
			for k := range w.buckets {
				w.buckets[k].seq = noSeq
			}
			if err := readWindow(br, w, s.buckets); err != nil {
				return err
			}
			sh.users[u] = w
		}
	}

	cs := &s.city
	cs.started = br.u8() != 0
	cs.head = br.i64()
	for k := range cs.seqs {
		cs.seqs[k] = br.i64()
	}
	for k := range cs.count {
		cs.count[k] = br.f64()
	}
	for k := range cs.fraud {
		cs.fraud[k] = br.f64()
	}
	if br.err != nil {
		return fmt.Errorf("stream: restore state: %w", br.err)
	}
	// The rolling sums are derived: expireSlot maintains the invariant
	// that they equal the straight sum of the live ring contents (expired
	// slots are zeroed as they leave the sums), so recompute rather than
	// persist them.
	var total int64
	for c := 0; c < cs.cities; c++ {
		var cnt, frd int64
		for slot := 0; slot < cs.nbuckets; slot++ {
			cnt += int64(cs.count[slot*cs.cities+c])
			frd += int64(cs.fraud[slot*cs.cities+c])
		}
		cs.countSum[c].Store(cnt)
		cs.fraudSum[c].Store(frd)
		total += cnt
	}
	cs.totalSum.Store(total)
	return nil
}

func readWindow(br *binReader, w *userWindow, buckets int) error {
	live := int(br.u32())
	if br.err != nil {
		return fmt.Errorf("stream: restore window: %w", br.err)
	}
	if live > buckets {
		return fmt.Errorf("stream: restore: window claims %d live slots of %d", live, buckets)
	}
	for n := 0; n < live; n++ {
		slot := int(br.u32())
		if br.err != nil {
			return fmt.Errorf("stream: restore window: %w", br.err)
		}
		if slot >= buckets {
			return fmt.Errorf("stream: restore: slot %d out of %d", slot, buckets)
		}
		b := &w.buckets[slot]
		b.seq = br.i64()
		b.outCount = br.f64()
		b.inCount = br.f64()
		b.outAmount = br.f64()
		b.inAmount = br.f64()
		if n := int(br.u32()); n > 0 && br.err == nil {
			b.outPeers = make(map[txn.UserID]float64, n)
			for i := 0; i < n; i++ {
				p := txn.UserID(br.u32())
				b.outPeers[p] = br.f64()
			}
		}
		if n := int(br.u32()); n > 0 && br.err == nil {
			b.inPeers = make(map[txn.UserID]struct{}, n)
			for i := 0; i < n; i++ {
				b.inPeers[txn.UserID(br.u32())] = struct{}{}
			}
		}
		if n := int(br.u32()); n > 0 && br.err == nil {
			b.outDays = make(map[txn.Day]struct{}, n)
			for i := 0; i < n; i++ {
				b.outDays[txn.Day(int32(br.u32()))] = struct{}{}
			}
		}
		if n := int(br.u32()); n > 0 && br.err == nil {
			b.inDays = make(map[txn.Day]struct{}, n)
			for i := 0; i < n; i++ {
				b.inDays[txn.Day(int32(br.u32()))] = struct{}{}
			}
		}
		if br.err != nil {
			return fmt.Errorf("stream: restore window: %w", br.err)
		}
	}
	return nil
}

func sortedUsersF(m map[txn.UserID]float64) []txn.UserID {
	ids := make([]txn.UserID, 0, len(m))
	for u := range m {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func sortedUsers(m map[txn.UserID]struct{}) []txn.UserID {
	ids := make([]txn.UserID, 0, len(m))
	for u := range m {
		ids = append(ids, u)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
	return ids
}

func sortedDays(m map[txn.Day]struct{}) []txn.Day {
	ds := make([]txn.Day, 0, len(m))
	for d := range m {
		ds = append(ds, d)
	}
	sort.Slice(ds, func(a, b int) bool { return ds[a] < ds[b] })
	return ds
}

func b2u(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// binWriter/binReader are sticky-error little-endian codecs; float64s
// travel as raw bits so restored sums are bit-exact.

type binWriter struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

func (b *binWriter) write(n int) {
	if b.err != nil {
		return
	}
	_, b.err = b.w.Write(b.buf[:n])
}

func (b *binWriter) u8(v uint8)   { b.buf[0] = v; b.write(1) }
func (b *binWriter) u32(v uint32) { binary.LittleEndian.PutUint32(b.buf[:], v); b.write(4) }
func (b *binWriter) u64(v uint64) { binary.LittleEndian.PutUint64(b.buf[:], v); b.write(8) }
func (b *binWriter) i64(v int64)  { b.u64(uint64(v)) }
func (b *binWriter) f64(v float64) {
	b.u64(math.Float64bits(v))
}

type binReader struct {
	r   *bufio.Reader
	err error
	buf [8]byte
}

func (b *binReader) read(n int) bool {
	if b.err != nil {
		return false
	}
	_, b.err = io.ReadFull(b.r, b.buf[:n])
	return b.err == nil
}

func (b *binReader) u8() uint8 {
	if !b.read(1) {
		return 0
	}
	return b.buf[0]
}

func (b *binReader) u32() uint32 {
	if !b.read(4) {
		return 0
	}
	return binary.LittleEndian.Uint32(b.buf[:4])
}

func (b *binReader) u64() uint64 {
	if !b.read(8) {
		return 0
	}
	return binary.LittleEndian.Uint64(b.buf[:])
}

func (b *binReader) i64() int64   { return int64(b.u64()) }
func (b *binReader) f64() float64 { return math.Float64frombits(b.u64()) }
