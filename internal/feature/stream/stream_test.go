package stream

import (
	"math"
	"sync"
	"testing"

	"titant/internal/feature"
	"titant/internal/rng"
	"titant/internal/txn"
)

// genTxns produces days of synthetic traffic in day order: perDay
// transactions per day over the given user and city counts, with ~5%
// fraud labels.
func genTxns(seed uint64, days, perDay, users, cities int) []txn.Transaction {
	r := rng.New(seed)
	ts := make([]txn.Transaction, 0, days*perDay)
	for d := 0; d < days; d++ {
		for i := 0; i < perDay; i++ {
			from := txn.UserID(r.Intn(users))
			to := txn.UserID(r.Intn(users))
			ts = append(ts, txn.Transaction{
				ID:        txn.TxnID(len(ts) + 1),
				Day:       txn.Day(d),
				Sec:       int32(r.Intn(86400)),
				From:      from,
				To:        to,
				Amount:    float32(r.Float64() * 500),
				TransCity: uint16(r.Intn(cities)),
				Fraud:     r.Bool(0.05),
			})
		}
	}
	return ts
}

// windowSlice filters ts to days (endDay-window, endDay].
func windowSlice(ts []txn.Transaction, endDay txn.Day, window int) []txn.Transaction {
	var out []txn.Transaction
	for _, t := range ts {
		if t.Day > endDay-txn.Day(window) && t.Day <= endDay {
			out = append(out, t)
		}
	}
	return out
}

func approxEq(a, b float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// compareToOracle checks every streaming statistic against batch
// aggregates rebuilt from the same window contents. Counts must match
// exactly; amount sums may differ only by float addition order.
func compareToOracle(t *testing.T, st *Store, oracle *feature.Aggregates, users, cities int) {
	t.Helper()
	for u := 0; u < users; u++ {
		got := st.Stats(txn.UserID(u))
		want := oracle.Stats(txn.UserID(u))
		if got.OutCount != want.OutCount || got.InCount != want.InCount ||
			got.DistinctRcv != want.DistinctRcv || got.DistinctSnd != want.DistinctSnd ||
			got.OutDays != want.OutDays || got.InDays != want.InDays {
			t.Fatalf("user %d stats: stream %+v != batch %+v", u, got, want)
		}
		if !approxEq(got.OutAmount, want.OutAmount) || !approxEq(got.InAmount, want.InAmount) {
			t.Fatalf("user %d amounts: stream %+v != batch %+v", u, got, want)
		}
	}
	for from := 0; from < users; from += 7 {
		for to := 0; to < users; to += 11 {
			got := st.PairPrior(txn.UserID(from), txn.UserID(to))
			want := oracle.PairPrior(txn.UserID(from), txn.UserID(to))
			if got != want {
				t.Fatalf("pair (%d,%d): stream %v != batch %v", from, to, got, want)
			}
		}
	}
	gotCT, wantCT := st.CityTable(), oracle.CityTable()
	for c := 0; c < cities; c++ {
		if gotCT.Fraud[c] != wantCT.Fraud[c] || gotCT.Share[c] != wantCT.Share[c] {
			t.Fatalf("city %d: stream (%v,%v) != batch (%v,%v)",
				c, gotCT.Fraud[c], gotCT.Share[c], wantCT.Fraud[c], wantCT.Share[c])
		}
		f, s := st.Lookup(uint16(c))
		if f != gotCT.Fraud[c] || s != gotCT.Share[c] {
			t.Fatalf("city %d: Lookup (%v,%v) != CityTable (%v,%v)", c, f, s, gotCT.Fraud[c], gotCT.Share[c])
		}
	}
}

// TestOracleMatchesBatch is the window-expiry correctness test: a store
// with the paper's 90-day geometry, fed a 120-day log in order, must
// agree with feature.BuildAggregates recomputed over the trailing 90 days
// — both at the moment the window first fills and again after 30 days of
// expiries.
func TestOracleMatchesBatch(t *testing.T) {
	const (
		days, perDay = 120, 60
		users        = 80
		cities       = 6
		window       = 90
	)
	ts := genTxns(11, days, perDay, users, cities)
	st := New(WithShards(8), WithWindow(window, 86400), WithCities(cities))

	// Phase 1: fill the window exactly (days 0..89).
	next := 0
	for next < len(ts) && ts[next].Day <= 89 {
		st.Ingest(&ts[next])
		next++
	}
	oracle := feature.BuildAggregates(windowSlice(ts, 89, window), cities)
	compareToOracle(t, st, oracle, users, cities)

	// Phase 2: slide 30 days further; days 0..29 must have expired.
	for next < len(ts) {
		st.Ingest(&ts[next])
		next++
	}
	oracle = feature.BuildAggregates(windowSlice(ts, 119, window), cities)
	compareToOracle(t, st, oracle, users, cities)

	if st.Ingested() != int64(len(ts)) {
		t.Fatalf("ingested = %d, want %d", st.Ingested(), len(ts))
	}
	if st.Dropped() != 0 {
		t.Fatalf("dropped = %d, want 0", st.Dropped())
	}
}

// TestWindowExpiry pins the sliding semantics down on a hand-built case:
// a user active only on day 0 vanishes from every statistic once the
// window slides past, without any explicit eviction call.
func TestWindowExpiry(t *testing.T) {
	st := New(WithWindow(90, 86400), WithCities(2))
	early := txn.Transaction{ID: 1, Day: 0, From: 1, To: 2, Amount: 100, TransCity: 0, Fraud: true}
	st.Ingest(&early)
	if s := st.Stats(1); s.OutCount != 1 || s.DistinctRcv != 1 || s.OutDays != 1 {
		t.Fatalf("stats before expiry = %+v", s)
	}
	if p := st.PairPrior(1, 2); p != 1 {
		t.Fatalf("pair prior = %v", p)
	}

	// Other users' traffic advances the clock to day 95 (via day 50, so
	// each hop stays within one window span): day 0 is now outside the
	// (5, 95] window.
	mid := txn.Transaction{ID: 2, Day: 50, From: 5, To: 6, Amount: 1, TransCity: 1}
	st.Ingest(&mid)
	late := txn.Transaction{ID: 3, Day: 95, From: 3, To: 4, Amount: 5, TransCity: 1}
	st.Ingest(&late)
	if s := st.Stats(1); s != (feature.UserStats{}) {
		t.Fatalf("stats after expiry = %+v, want zero", s)
	}
	if s := st.Stats(2); s != (feature.UserStats{}) {
		t.Fatalf("receiver stats after expiry = %+v, want zero", s)
	}
	if p := st.PairPrior(1, 2); p != 0 {
		t.Fatalf("pair prior after expiry = %v", p)
	}
	// City 0's fraud must have left the table: only city 1's clean txn
	// remains, so city 0 reads the smoothed prior and zero share.
	f, share := st.Lookup(0)
	if want := feature.CitySmoothing * feature.CityFraudPrior / feature.CitySmoothing; f != want || share != 0 {
		t.Fatalf("city 0 after expiry = (%v, %v), want (%v, 0)", f, share, want)
	}
}

// TestTooOldDropped: a transaction older than the whole window must be
// rejected, counted, and must not corrupt newer buckets that share its
// ring slot.
func TestTooOldDropped(t *testing.T) {
	st := New(WithWindow(10, 86400), WithCities(2))
	now := txn.Transaction{ID: 1, Day: 200, From: 1, To: 2, Amount: 50}
	st.Ingest(&now)
	// Day 190 shares ring slot 190%10 == 0 with day 200.
	stale := txn.Transaction{ID: 2, Day: 190, From: 1, To: 3, Amount: 999}
	st.Ingest(&stale)
	if st.Dropped() != 1 || st.Ingested() != 1 {
		t.Fatalf("dropped=%d ingested=%d, want 1/1", st.Dropped(), st.Ingested())
	}
	if s := st.Stats(1); s.OutCount != 1 || s.OutAmount != 50 {
		t.Fatalf("stats corrupted by stale ingest: %+v", s)
	}
}

// TestConcurrentIngestRead hammers the store from writer and reader
// goroutines simultaneously; under -race this is the striping-correctness
// test the CI race job runs.
func TestConcurrentIngestRead(t *testing.T) {
	const (
		writers, readers = 4, 4
		opsPerWriter     = 3000
		users            = 200
		cities           = 8
	)
	st := New(WithShards(8), WithWindow(30, 3600), WithCities(cities))
	var writerWG, readerWG sync.WaitGroup
	done := make(chan struct{})
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(seed uint64) {
			defer writerWG.Done()
			r := rng.New(seed)
			for i := 0; i < opsPerWriter; i++ {
				tx := txn.Transaction{
					ID:        txn.TxnID(i),
					Day:       txn.Day(i / 200),
					Sec:       int32(r.Intn(86400)),
					From:      txn.UserID(r.Intn(users)),
					To:        txn.UserID(r.Intn(users)),
					Amount:    float32(r.Float64() * 100),
					TransCity: uint16(r.Intn(cities)),
					Fraud:     r.Bool(0.1),
				}
				st.Ingest(&tx)
			}
		}(uint64(w + 1))
	}
	for rd := 0; rd < readers; rd++ {
		readerWG.Add(1)
		go func(seed uint64) {
			defer readerWG.Done()
			r := rng.New(seed)
			for {
				select {
				case <-done:
					return
				default:
				}
				u := txn.UserID(r.Intn(users))
				_ = st.Stats(u)
				_ = st.PairPrior(u, txn.UserID(r.Intn(users)))
				_, _ = st.Lookup(uint16(r.Intn(cities)))
				_ = st.CityTable()
			}
		}(uint64(100 + rd))
	}
	writerWG.Wait()
	close(done)
	readerWG.Wait()
	if got := st.Ingested() + st.Dropped(); got != writers*opsPerWriter {
		t.Fatalf("ingested+dropped = %d, want %d", got, writers*opsPerWriter)
	}
}

// TestFutureTimestampCannotBrickStore: a single absurd future timestamp
// must not advance the window clock — otherwise all subsequent real
// traffic would be dropped forever, since the clock is monotonic.
func TestFutureTimestampCannotBrickStore(t *testing.T) {
	st := New(WithWindow(90, 86400), WithCities(2))
	for d := 0; d < 3; d++ {
		tx := txn.Transaction{ID: txn.TxnID(d), Day: txn.Day(d), From: 1, To: 2, Amount: 10}
		st.Ingest(&tx)
	}
	poison := txn.Transaction{ID: 99, Day: 1 << 30, From: 7, To: 8, Amount: 1}
	st.Ingest(&poison)
	if st.Dropped() != 1 {
		t.Fatalf("poison not dropped: dropped=%d", st.Dropped())
	}
	if s := st.Stats(7); s != (feature.UserStats{}) {
		t.Fatalf("poison reached the window: %+v", s)
	}
	// Real traffic keeps flowing and the early history is intact.
	tx := txn.Transaction{ID: 100, Day: 3, From: 1, To: 2, Amount: 10}
	st.Ingest(&tx)
	if s := st.Stats(1); s.OutCount != 4 {
		t.Fatalf("store bricked by poison timestamp: %+v", s)
	}
	// An unrelated second garbage value must not corroborate the first.
	poison2 := txn.Transaction{ID: 101, Day: 1 << 20, From: 7, To: 8, Amount: 1}
	st.Ingest(&poison2)
	if s := st.Stats(1); s.OutCount != 4 {
		t.Fatalf("mismatched garbage corroborated a jump: %+v", s)
	}
	// Nor must an exact duplicate (the classic HTTP retry): corroboration
	// requires a distinct transaction.
	for i := 0; i < 3; i++ {
		dup := poison2
		st.Ingest(&dup)
	}
	if s := st.Stats(7); s != (feature.UserStats{}) {
		t.Fatalf("retried duplicate corroborated its own jump: %+v", s)
	}
	later := txn.Transaction{ID: 102, Day: 4, From: 1, To: 2, Amount: 10}
	st.Ingest(&later)
	if s := st.Stats(1); s.OutCount != 5 {
		t.Fatalf("store bricked after duplicate poison: %+v", s)
	}
}

// TestNegativeTimestampDropped: malformed wire input (negative day/sec)
// must be shed as a drop, not index the rings with a negative modulo —
// the panic would fire while Ingest holds shard locks and brick the
// stripes.
func TestNegativeTimestampDropped(t *testing.T) {
	st := New(WithWindow(90, 86400), WithCities(2))
	bad := txn.Transaction{ID: 1, Day: 0, Sec: -100000, From: 1, To: 2, Amount: 5}
	st.Ingest(&bad)
	worse := txn.Transaction{ID: 2, Day: -1000, From: 1, To: 2, Amount: 5}
	st.Ingest(&worse)
	if st.Dropped() != 2 || st.Ingested() != 0 {
		t.Fatalf("dropped=%d ingested=%d, want 2/0", st.Dropped(), st.Ingested())
	}
	// The store remains fully functional.
	ok := txn.Transaction{ID: 3, Day: 0, Sec: 10, From: 1, To: 2, Amount: 5}
	st.Ingest(&ok)
	if s := st.Stats(1); s.OutCount != 1 {
		t.Fatalf("store unusable after malformed input: %+v", s)
	}
}

// TestIdleGapRecovers: a genuine gap longer than the window (daemon idle,
// traffic resumes) is accepted once a second transaction corroborates the
// new epoch.
func TestIdleGapRecovers(t *testing.T) {
	st := New(WithWindow(90, 86400), WithCities(2))
	early := txn.Transaction{ID: 1, Day: 0, From: 1, To: 2, Amount: 10}
	st.Ingest(&early)
	// First transaction after the gap is shed while the store waits for
	// corroboration...
	r1 := txn.Transaction{ID: 2, Day: 500, From: 3, To: 4, Amount: 5}
	st.Ingest(&r1)
	if st.Dropped() != 1 || st.Stats(3).OutCount != 0 {
		t.Fatalf("first post-gap txn should be shed: dropped=%d", st.Dropped())
	}
	// ...and the second one through confirms the new epoch.
	r2 := txn.Transaction{ID: 3, Day: 501, From: 3, To: 4, Amount: 7}
	st.Ingest(&r2)
	if s := st.Stats(3); s.OutCount != 1 || s.OutAmount != 7 {
		t.Fatalf("resumed stream not accepted: %+v", s)
	}
	if s := st.Stats(1); s != (feature.UserStats{}) {
		t.Fatalf("pre-gap history survived a 500-day slide: %+v", s)
	}
}

// TestExpiredUsersEvicted: users whose whole window has expired are
// dropped from the shard maps by the opportunistic per-ingest probe, so a
// long-running store's memory tracks the active set.
func TestExpiredUsersEvicted(t *testing.T) {
	st := New(WithShards(1), WithWindow(4, 86400), WithCities(2))
	// 50 users transact on day 0 only.
	for u := 0; u < 50; u++ {
		tx := txn.Transaction{ID: txn.TxnID(u), Day: 0, From: txn.UserID(u), To: txn.UserID(u), Amount: 1}
		st.Ingest(&tx)
	}
	// Slide far past their window (in-window hops), then keep two users
	// chatting long enough for the eviction probes to sweep the shard.
	for d := 1; d <= 8; d += 2 {
		tx := txn.Transaction{ID: txn.TxnID(1000 + d), Day: txn.Day(d), From: 100, To: 101, Amount: 1}
		st.Ingest(&tx)
	}
	for i := 0; i < 2000; i++ {
		tx := txn.Transaction{ID: txn.TxnID(2000 + i), Day: 8, Sec: int32(i), From: 100, To: 101, Amount: 1}
		st.Ingest(&tx)
	}
	st.shards[0].mu.RLock()
	n := len(st.shards[0].users)
	st.shards[0].mu.RUnlock()
	// Only the two active users (and possibly a straggler the random
	// probe hasn't hit yet) should remain of the 52 ever seen.
	if n > 5 {
		t.Fatalf("%d users resident after expiry, want ~2: eviction not working", n)
	}
	if s := st.Stats(100); s.OutCount == 0 {
		t.Fatal("active user evicted")
	}
}

// TestShardDistribution checks the user-to-stripe hash spreads sequential
// IDs (the common case: dense synthetic user IDs) evenly enough that no
// stripe becomes a hot spot.
func TestShardDistribution(t *testing.T) {
	const users = 10000
	st := New(WithShards(16), WithWindow(4, 86400))
	for u := 0; u < users; u++ {
		tx := txn.Transaction{ID: txn.TxnID(u), Day: 0, From: txn.UserID(u), To: txn.UserID(u), Amount: 1}
		st.Ingest(&tx)
	}
	mean := float64(users) / float64(st.Shards())
	for i := range st.shards {
		n := float64(len(st.shards[i].users))
		if n < mean/2 || n > mean*2 {
			t.Fatalf("shard %d holds %v users, mean %v: distribution skewed", i, n, mean)
		}
	}
}

// TestOptions pins the option clamping: invalid values keep defaults and
// shard counts round up to powers of two.
func TestOptions(t *testing.T) {
	st := New()
	if st.Shards() != DefaultShards || st.Buckets() != DefaultBuckets ||
		st.BucketSeconds() != DefaultBucketSeconds {
		t.Fatalf("defaults: shards=%d buckets=%d secs=%d", st.Shards(), st.Buckets(), st.BucketSeconds())
	}
	st = New(WithShards(3), WithWindow(7, 60), WithCities(0))
	if st.Shards() != 4 {
		t.Fatalf("shards = %d, want 4 (rounded up)", st.Shards())
	}
	if st.Buckets() != 7 || st.BucketSeconds() != 60 || st.WindowSeconds() != 420 {
		t.Fatalf("window: %d x %ds", st.Buckets(), st.BucketSeconds())
	}
	st = New(WithShards(0), WithWindow(0, 0))
	if st.Shards() != DefaultShards || st.Buckets() != DefaultBuckets {
		t.Fatal("invalid option values must keep defaults")
	}
}

// TestEmptyStoreReads: every read on a never-ingested store returns the
// same zero values the empty batch aggregates produce.
func TestEmptyStoreReads(t *testing.T) {
	st := New(WithCities(3))
	empty := feature.BuildAggregates(nil, 3)
	if st.Stats(1) != empty.Stats(1) {
		t.Fatal("empty stats differ")
	}
	if st.PairPrior(1, 2) != 0 {
		t.Fatal("empty pair prior")
	}
	got, want := st.CityTable(), empty.CityTable()
	for c := range want.Fraud {
		if got.Fraud[c] != want.Fraud[c] || got.Share[c] != want.Share[c] {
			t.Fatalf("empty city %d: (%v,%v) != (%v,%v)", c, got.Fraud[c], got.Share[c], want.Fraud[c], want.Share[c])
		}
	}
}

// TestVelocityMatchesStats pins the allocation-free velocity read to the
// exact Stats oracle: the count/amount terms must agree bitwise for
// every user, including after window expiry, and the read itself must
// not allocate.
func TestVelocityMatchesStats(t *testing.T) {
	s := New(WithWindow(5, 86400), WithCities(8))
	ts := genTxns(31, 9, 300, 40, 8) // 9 days through a 5-day window: expiry exercised
	s.IngestBatch(ts)
	for u := txn.UserID(0); u < 40; u++ {
		st := s.Stats(u)
		oc, oa, ic, ia := s.Velocity(u)
		if oc != st.OutCount || oa != st.OutAmount || ic != st.InCount || ia != st.InAmount {
			t.Fatalf("user %d: Velocity = (%g,%g,%g,%g), Stats = %+v", u, oc, oa, ic, ia, st)
		}
	}
	if avg := testing.AllocsPerRun(100, func() { s.Velocity(7) }); avg != 0 {
		t.Fatalf("Velocity allocates %.1f per call", avg)
	}
}
