package stream

import (
	"bytes"
	"math/rand"
	"testing"

	"titant/internal/txn"
)

func randTxn(rng *rand.Rand, users int) txn.Transaction {
	return txn.Transaction{
		ID:        txn.TxnID(rng.Int63()),
		Day:       txn.Day(rng.Intn(10)),
		Sec:       int32(rng.Intn(86400)),
		From:      txn.UserID(rng.Intn(users)),
		To:        txn.UserID(rng.Intn(users)),
		Amount:    rng.Float32() * 1000,
		TransCity: uint16(rng.Intn(40)),
		Fraud:     rng.Intn(20) == 0,
	}
}

func newTestStore() *Store {
	return New(WithShards(4), WithWindow(8, 3600), WithCities(32))
}

// TestSnapshotRoundTrip: restore(snapshot(S)) must reproduce every read
// surface of S bitwise, and stay bitwise-equal while both stores ingest
// the same subsequent traffic.
func TestSnapshotRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := newTestStore()
	const users = 50
	for i := 0; i < 2000; i++ {
		tx := randTxn(rng, users)
		s.Ingest(&tx)
	}

	var buf bytes.Buffer
	if err := s.WriteState(&buf); err != nil {
		t.Fatalf("WriteState: %v", err)
	}
	r := newTestStore()
	if err := r.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}

	assertStoresEqual(t, s, r, users, "after restore")

	// Both continue ingesting the same stream: the restored store must
	// track the original exactly, including window slides and evictions.
	for i := 0; i < 1000; i++ {
		tx := randTxn(rng, users)
		s.Ingest(&tx)
		r.Ingest(&tx)
	}
	assertStoresEqual(t, s, r, users, "after post-restore ingest")
}

func assertStoresEqual(t *testing.T, a, b *Store, users int, when string) {
	t.Helper()
	if a.Ingested() != b.Ingested() || a.Dropped() != b.Dropped() {
		t.Fatalf("%s: counters diverge: ingested %d/%d dropped %d/%d",
			when, a.Ingested(), b.Ingested(), a.Dropped(), b.Dropped())
	}
	for u := 0; u < users; u++ {
		id := txn.UserID(u)
		sa, sb := a.Stats(id), b.Stats(id)
		if sa != sb {
			t.Fatalf("%s: Stats(%d) diverge:\n a=%+v\n b=%+v", when, u, sa, sb)
		}
		ao, aoa, ai, aia := a.Velocity(id)
		bo, boa, bi, bia := b.Velocity(id)
		if ao != bo || aoa != boa || ai != bi || aia != bia {
			t.Fatalf("%s: Velocity(%d) diverge", when, u)
		}
		for v := 0; v < 5; v++ {
			if a.PairPrior(id, txn.UserID(v)) != b.PairPrior(id, txn.UserID(v)) {
				t.Fatalf("%s: PairPrior(%d,%d) diverge", when, u, v)
			}
		}
	}
	for c := uint16(0); c < 40; c++ {
		af, as, an := a.LookupCity(c)
		bf, bs, bn := b.LookupCity(c)
		if af != bf || as != bs || an != bn {
			t.Fatalf("%s: LookupCity(%d) diverge: (%v,%v,%v) vs (%v,%v,%v)",
				when, c, af, as, an, bf, bs, bn)
		}
	}
	ca, cb := a.CityTable(), b.CityTable()
	for i := range ca.Fraud {
		if ca.Fraud[i] != cb.Fraud[i] || ca.Share[i] != cb.Share[i] {
			t.Fatalf("%s: CityTable city %d diverges", when, i)
		}
	}
}

func TestSnapshotEmptyStore(t *testing.T) {
	s := newTestStore()
	var buf bytes.Buffer
	if err := s.WriteState(&buf); err != nil {
		t.Fatalf("WriteState: %v", err)
	}
	r := newTestStore()
	if err := r.RestoreState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	tx := txn.Transaction{ID: 1, Day: 1, From: 1, To: 2, Amount: 10}
	s.Ingest(&tx)
	r.Ingest(&tx)
	assertStoresEqual(t, s, r, 5, "empty round trip")
}

func TestSnapshotGeometryMismatch(t *testing.T) {
	s := newTestStore()
	var buf bytes.Buffer
	if err := s.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	bad := New(WithShards(4), WithWindow(16, 3600), WithCities(32))
	if err := bad.RestoreState(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := newTestStore()
	for i := 0; i < 500; i++ {
		tx := randTxn(rng, 20)
		s.Ingest(&tx)
	}
	var a, b bytes.Buffer
	if err := s.WriteState(&a); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteState(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two snapshots of identical state differ byte-wise")
	}
}

func TestSnapshotTruncated(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := newTestStore()
	for i := 0; i < 200; i++ {
		tx := randTxn(rng, 20)
		s.Ingest(&tx)
	}
	var buf bytes.Buffer
	if err := s.WriteState(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{0, 3, 10, len(data) / 2, len(data) - 1} {
		r := newTestStore()
		if err := r.RestoreState(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncated snapshot (%d/%d bytes) accepted", cut, len(data))
		}
	}
}
