package stream

import (
	"fmt"
	"testing"

	"titant/internal/rng"
	"titant/internal/txn"
)

// BenchmarkStreamIngest measures the O(1) ingest claim: ns/op and
// allocs/op must stay flat as the window grows from 16 to 360 buckets
// (the ring is touched at one slot per ingest regardless of length; only
// the per-user ring allocation, paid once per user, scales with it).
func BenchmarkStreamIngest(b *testing.B) {
	for _, buckets := range []int{16, 90, 360} {
		b.Run(fmt.Sprintf("buckets=%d", buckets), func(b *testing.B) {
			st := New(WithWindow(buckets, 3600), WithCities(64))
			r := rng.New(1)
			const users = 512
			fill := func(lo, n int) {
				tx := txn.Transaction{}
				for i := lo; i < lo+n; i++ {
					// One second of traffic per op: the window rotates
					// every 3600 ops, so bucket recycling is part of the
					// measured cost.
					tx.Day = txn.Day(i / 86400)
					tx.Sec = int32(i % 86400)
					tx.From = txn.UserID(r.Intn(users))
					tx.To = txn.UserID(r.Intn(users))
					tx.Amount = float32(r.Float64() * 100)
					tx.TransCity = uint16(r.Intn(64))
					st.Ingest(&tx)
				}
			}
			// Warm one full window cycle so every (user, slot) ring bucket
			// and its maps exist: the measured loop then sees the steady
			// state, where rotation recycles cleared maps instead of
			// allocating fresh ones.
			warm := buckets * 3600
			fill(0, warm)
			b.ReportAllocs()
			b.ResetTimer()
			fill(warm, b.N)
		})
	}
}

// BenchmarkStreamReads measures the serving-path read costs: the O(1)
// city lookup the scorer hits several times per transaction, and the
// O(buckets) user-stats scan.
func BenchmarkStreamReads(b *testing.B) {
	st := New(WithWindow(90, 86400), WithCities(64))
	r := rng.New(2)
	const users = 1024
	for i := 0; i < 200000; i++ {
		tx := txn.Transaction{
			Day:  txn.Day(i / 2500),
			From: txn.UserID(r.Intn(users)), To: txn.UserID(r.Intn(users)),
			Amount: float32(r.Float64() * 100), TransCity: uint16(r.Intn(64)),
		}
		st.Ingest(&tx)
	}
	b.Run("citylookup", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, _ = st.Lookup(uint16(i % 64))
		}
	})
	b.Run("userstats", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = st.Stats(txn.UserID(i % users))
		}
	})
	b.Run("pairprior", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = st.PairPrior(txn.UserID(i%users), txn.UserID((i+1)%users))
		}
	})
}
