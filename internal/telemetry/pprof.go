package telemetry

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// StartPprof mounts the net/http/pprof handlers on their own listener,
// apart from the serving address, so profiling never shares a port (or
// an exposure story) with the v1 API. An explicit mux keeps the rest of
// the process off http.DefaultServeMux — importing net/http/pprof for
// its side effect would silently publish /debug/pprof on every default
// mux in the binary. Returns the bound address (useful with ":0") and
// serves until the process exits.
func StartPprof(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
