package telemetry

import (
	"sync"
	"time"
)

// Stage names one segment of a request's hot path. Engine stages map
// the phases of runOne/runBatch (admission gate, user fetch through the
// cache, feature assembly including the streaming aggregates, the
// member-model score + combine pass, the policy decision, the shadow
// enqueue); router stages map the wire tier (routing an attempt, retry
// backoff, the hedge leg, scatter/gather assembly).
type Stage uint8

const (
	StageAdmit Stage = iota
	StageFetch
	StageAssemble
	StageScore
	StageDecide
	StageShadow
	StageRoute
	StageRetry
	StageHedge
	StageGather
	// NumStages sizes the fixed per-request span buffer; it is small on
	// purpose — spans live in stack arrays, never on the heap.
	NumStages
)

var stageNames = [NumStages]string{
	"admit", "fetch", "assemble", "score", "decide", "shadow",
	"route", "retry", "hedge", "gather",
}

// String returns the stage's label value in metrics and trace dumps.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Spans is a request's fixed-size span buffer: one duration per stage,
// zero for stages the request did not pass through. It lives on the
// caller's stack — recording a traced batch allocates nothing.
type Spans [NumStages]time.Duration

// Exemplar is one slow-request sample kept in an endpoint's ring: the
// trace ID to grep for, the total latency, and the per-stage split that
// says where the budget went.
type Exemplar struct {
	Trace TraceID
	Total time.Duration
	Spans Spans
}

// slowRing keeps the K slowest exemplars seen on one endpoint. The fast
// path is a single atomic-free threshold check under a mutex only when
// the sample might displace an entry; entries are preallocated and
// overwritten in place, so steady-state recording allocates nothing.
type slowRing struct {
	mu      sync.Mutex
	entries []Exemplar // preallocated, len == cap == k
	n       int        // occupied prefix of entries
	minIdx  int        // index of the smallest Total among entries[:n]
}

func newSlowRing(k int) *slowRing {
	if k < 1 {
		k = 1
	}
	return &slowRing{entries: make([]Exemplar, k)}
}

// offer records the sample if it ranks among the K slowest so far.
func (r *slowRing) offer(id TraceID, total time.Duration, spans *Spans) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var slot int
	switch {
	case r.n < len(r.entries):
		slot = r.n
		r.n++
	case total > r.entries[r.minIdx].Total:
		slot = r.minIdx
	default:
		return
	}
	e := &r.entries[slot]
	e.Trace, e.Total, e.Spans = id, total, *spans
	r.minIdx = 0
	for i := 1; i < r.n; i++ {
		if r.entries[i].Total < r.entries[r.minIdx].Total {
			r.minIdx = i
		}
	}
}

// snapshot copies the ring's occupied entries.
func (r *slowRing) snapshot() []Exemplar {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Exemplar, r.n)
	copy(out, r.entries[:r.n])
	return out
}

// EndpointTrack aggregates one endpoint's spans: a per-stage histogram
// plus the slow-exemplar ring. Observe is the only hot-path entry and
// does not allocate.
type EndpointTrack struct {
	name   string
	stages [NumStages]*Histogram
	slow   *slowRing
}

// Observe folds one request's spans into the endpoint's stage
// histograms and offers it to the exemplar ring. spans is read, not
// retained. A zero-duration stage means "not traversed" and is skipped,
// so e.g. ingest requests don't pollute the score stage histograms.
func (e *EndpointTrack) Observe(id TraceID, total time.Duration, spans *Spans) {
	for i := range spans {
		if spans[i] > 0 {
			e.stages[i].Record(spans[i])
		}
	}
	e.slow.offer(id, total, spans)
}

// StageHistogram exposes one stage's histogram (for /metrics).
func (e *EndpointTrack) StageHistogram(s Stage) *Histogram { return e.stages[s] }

// Tracker is one process tier's span aggregation: a fixed set of
// endpoint tracks created up front, so the hot path takes a pointer,
// not a map lookup under a lock.
type Tracker struct {
	byName map[string]*EndpointTrack
	order  []string
}

// DefaultExemplars is how many slow exemplars each endpoint retains.
const DefaultExemplars = 8

// NewTracker builds a tracker over the named endpoints, each keeping
// the k slowest exemplars (k <= 0 means DefaultExemplars).
func NewTracker(endpoints []string, k int) *Tracker {
	if k <= 0 {
		k = DefaultExemplars
	}
	t := &Tracker{byName: make(map[string]*EndpointTrack, len(endpoints))}
	for _, name := range endpoints {
		if _, dup := t.byName[name]; dup {
			continue
		}
		e := &EndpointTrack{name: name, slow: newSlowRing(k)}
		for i := range e.stages {
			e.stages[i] = NewHistogram(nil)
		}
		t.byName[name] = e
		t.order = append(t.order, name)
	}
	return t
}

// Endpoint returns the named track (nil if the tracker was not built
// with it — callers must treat nil as "tracing off" and skip).
func (t *Tracker) Endpoint(name string) *EndpointTrack { return t.byName[name] }

// Endpoints returns the tracked endpoint names in construction order.
func (t *Tracker) Endpoints() []string { return t.order }

// TraceBody renders one or more trackers as the GET /v1/debug/trace
// JSON body: per endpoint, each traversed stage's count/quantiles and
// the slowest exemplar traces (merged and re-ranked across trackers, so
// a sharded engine reports one fleet-wide top-K per endpoint).
func TraceBody(trackers ...*Tracker) map[string]interface{} {
	endpoints := map[string]interface{}{}
	var order []string
	for _, tr := range trackers {
		if tr == nil {
			continue
		}
		for _, name := range tr.order {
			if _, seen := endpoints[name]; !seen {
				order = append(order, name)
				endpoints[name] = nil
			}
		}
	}
	for _, name := range order {
		var tracks []*EndpointTrack
		for _, tr := range trackers {
			if tr == nil {
				continue
			}
			if e := tr.byName[name]; e != nil {
				tracks = append(tracks, e)
			}
		}
		endpoints[name] = endpointTraceBody(tracks)
	}
	return map[string]interface{}{"endpoints": endpoints}
}

func endpointTraceBody(tracks []*EndpointTrack) map[string]interface{} {
	stages := map[string]interface{}{}
	for s := Stage(0); s < NumStages; s++ {
		hs := make([]*Histogram, 0, len(tracks))
		for _, e := range tracks {
			hs = append(hs, e.stages[s])
		}
		bounds, counts, total, max := Merge(hs)
		if total == 0 {
			continue
		}
		stages[s.String()] = map[string]interface{}{
			"count":  total,
			"p50_us": Quantile(bounds, counts, total, max, 0.50).Microseconds(),
			"p99_us": Quantile(bounds, counts, total, max, 0.99).Microseconds(),
			"max_us": max.Microseconds(),
		}
	}
	var all []Exemplar
	k := 0
	for _, e := range tracks {
		all = append(all, e.slow.snapshot()...)
		if len(e.slow.entries) > k {
			k = len(e.slow.entries)
		}
	}
	// Selection sort of the top k: k is small and this path is cold.
	if len(all) > 1 {
		for i := 0; i < len(all)-1 && i < k; i++ {
			best := i
			for j := i + 1; j < len(all); j++ {
				if all[j].Total > all[best].Total {
					best = j
				}
			}
			all[i], all[best] = all[best], all[i]
		}
	}
	if len(all) > k {
		all = all[:k]
	}
	slowest := make([]map[string]interface{}, 0, len(all))
	for i := range all {
		e := &all[i]
		spans := map[string]int64{}
		for s := Stage(0); s < NumStages; s++ {
			if e.Spans[s] > 0 {
				spans[s.String()] = e.Spans[s].Microseconds()
			}
		}
		slowest = append(slowest, map[string]interface{}{
			"trace_id": e.Trace.String(),
			"total_us": e.Total.Microseconds(),
			"spans_us": spans,
		})
	}
	return map[string]interface{}{"stages": stages, "slowest": slowest}
}
