package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the exposition plane: a small parser
// for the text format the Expo writer emits, used three ways — as the
// CI linter behind `make metrics-smoke`, as the router's self-scrape
// machinery (parse each shard's /metrics, stamp a shard label on every
// series, merge into the router's own exposition), and in tests that
// assert the /metrics surfaces agree with /v1/stats.

// PromSample is one parsed sample line: the full sample name (with any
// _bucket/_sum/_count suffix), its labels, and the value.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one metric family: name, TYPE, HELP and samples in
// input order.
type PromFamily struct {
	Name    string
	Type    string
	Help    string
	Samples []PromSample
}

// Scrape is one parsed exposition page.
type Scrape struct {
	Families map[string]*PromFamily
	order    []string
}

// FamilyNames returns the family names in input order.
func (s *Scrape) FamilyNames() []string { return s.order }

// sampleFamily strips a histogram sample suffix down to its family
// name, if that family is declared as a histogram.
func (s *Scrape) sampleFamily(name string) (*PromFamily, bool) {
	if f, ok := s.Families[name]; ok {
		return f, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base, found := strings.CutSuffix(name, suf)
		if !found {
			continue
		}
		if f, ok := s.Families[base]; ok && f.Type == "histogram" {
			return f, true
		}
	}
	return nil, false
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	return validMetricName(s) && !strings.Contains(s, ":")
}

// ParseExpo parses a text exposition page, validating syntax as it
// goes: metric and label name grammar, declared TYPEs, samples only
// under a declared family, label-block quoting. Structural histogram
// invariants (cumulative buckets, +Inf, _count agreement) are Lint's
// job — parsing keeps a page readable even when it is inconsistent, so
// the linter can report the real defect.
func ParseExpo(b []byte) (*Scrape, error) {
	s := &Scrape{Families: map[string]*PromFamily{}}
	for ln, line := range strings.Split(string(b), "\n") {
		line = strings.TrimRight(line, "\r")
		if strings.TrimSpace(line) == "" {
			continue
		}
		fail := func(format string, args ...interface{}) error {
			return fmt.Errorf("line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}
		if strings.HasPrefix(line, "#") {
			kind, rest, ok := strings.Cut(strings.TrimPrefix(line, "# "), " ")
			if !ok || (kind != "HELP" && kind != "TYPE") {
				continue // free-form comment
			}
			name, text, _ := strings.Cut(rest, " ")
			if !validMetricName(name) {
				return nil, fail("bad metric name %q in %s", name, kind)
			}
			f, ok := s.Families[name]
			if !ok {
				f = &PromFamily{Name: name}
				s.Families[name] = f
				s.order = append(s.order, name)
			}
			if kind == "HELP" {
				f.Help = text
				continue
			}
			switch text {
			case "counter", "gauge", "histogram", "summary", "untyped":
				if f.Type != "" && f.Type != text {
					return nil, fail("metric %q re-declared as %s (was %s)", name, text, f.Type)
				}
				f.Type = text
			default:
				return nil, fail("unknown TYPE %q for %q", text, name)
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fail("%v", err)
		}
		if !validMetricName(name) {
			return nil, fail("bad sample name %q", name)
		}
		for k := range labels {
			if !validLabelName(k) {
				return nil, fail("bad label name %q on %q", k, name)
			}
		}
		f, ok := s.sampleFamily(name)
		if !ok {
			return nil, fail("sample %q has no TYPE declaration", name)
		}
		f.Samples = append(f.Samples, PromSample{Name: name, Labels: labels, Value: value})
	}
	return s, nil
}

// parseSampleLine splits `name{k="v",...} value [timestamp]`.
func parseSampleLine(line string) (name string, labels map[string]string, value float64, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		for {
			rest = strings.TrimLeft(rest, " ,")
			if rest == "" {
				return "", nil, 0, fmt.Errorf("unterminated label block")
			}
			if rest[0] == '}' {
				rest = rest[1:]
				break
			}
			eq := strings.IndexByte(rest, '=')
			if eq < 0 {
				return "", nil, 0, fmt.Errorf("label without '='")
			}
			k := strings.TrimSpace(rest[:eq])
			rest = rest[eq+1:]
			if rest == "" || rest[0] != '"' {
				return "", nil, 0, fmt.Errorf("unquoted value for label %q", k)
			}
			rest = rest[1:]
			var v strings.Builder
			closed := false
			for i := 0; i < len(rest); i++ {
				c := rest[i]
				if c == '\\' && i+1 < len(rest) {
					i++
					switch rest[i] {
					case 'n':
						v.WriteByte('\n')
					default:
						v.WriteByte(rest[i])
					}
					continue
				}
				if c == '"' {
					rest = rest[i+1:]
					closed = true
					break
				}
				v.WriteByte(c)
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated value for label %q", k)
			}
			if _, dup := labels[k]; dup {
				return "", nil, 0, fmt.Errorf("duplicate label %q", k)
			}
			labels[k] = v.String()
		}
	} else if i := strings.IndexAny(rest, " \t"); i >= 0 {
		name = rest[:i]
		rest = rest[i:]
	} else {
		return "", nil, 0, fmt.Errorf("sample line without a value")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("want `value [timestamp]`, got %q", strings.TrimSpace(rest))
	}
	value, err = parsePromValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q: %v", fields[0], err)
	}
	return name, labels, value, nil
}

func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// seriesKey is a sample's identity: name plus sorted labels.
func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	for _, k := range keys {
		b.WriteByte('{')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
		b.WriteByte('}')
	}
	return b.String()
}

// SeriesSet returns the identity (name + labels) of every sample on the
// page — the metrics-smoke diff between the router's re-labeled view
// and the shard union operates on these sets.
func (s *Scrape) SeriesSet() map[string]bool {
	set := map[string]bool{}
	for _, name := range s.order {
		for _, sm := range s.Families[name].Samples {
			set[seriesKey(sm.Name, sm.Labels)] = true
		}
	}
	return set
}

// AddLabel stamps one label onto every sample (the router's re-label
// step: shard="3" onto a scraped shard page). Stamping a label the
// sample already carries is an error-free overwrite — the inner value
// loses, the outer topology wins.
func (s *Scrape) AddLabel(k, v string) {
	for _, name := range s.order {
		for i := range s.Families[name].Samples {
			sm := &s.Families[name].Samples[i]
			if sm.Labels == nil {
				sm.Labels = map[string]string{}
			}
			sm.Labels[k] = v
		}
	}
}

// Merge appends src's samples into s, declaring unseen families as they
// arrive (first declaration's TYPE and HELP win; a TYPE conflict is an
// error — two tiers disagreeing on a metric's kind is a bug, not a
// merge policy).
func (s *Scrape) Merge(src *Scrape) error {
	for _, name := range src.order {
		sf := src.Families[name]
		f, ok := s.Families[name]
		if !ok {
			f = &PromFamily{Name: name, Type: sf.Type, Help: sf.Help}
			s.Families[name] = f
			s.order = append(s.order, name)
		} else if f.Type != sf.Type {
			return fmt.Errorf("telemetry: metric %q is %s here but %s in merged scrape", name, f.Type, sf.Type)
		}
		f.Samples = append(f.Samples, sf.Samples...)
	}
	return nil
}

// Render re-emits the page in exposition format, families in order,
// HELP/TYPE once each.
func (s *Scrape) Render() []byte {
	e := NewExpo()
	for _, name := range s.order {
		f := s.Families[name]
		ef := e.family(f.Name, f.Help, f.Type)
		for _, sm := range f.Samples {
			suffix := strings.TrimPrefix(sm.Name, f.Name)
			labels := make([]string, 0, 2*len(sm.Labels))
			var le string
			for k, v := range sm.Labels {
				if k == "le" && suffix == "_bucket" {
					le = v
					continue
				}
				labels = append(labels, k, v)
			}
			extraK := ""
			if suffix == "_bucket" {
				extraK = "le"
			}
			ef.lines = append(ef.lines, expoLine{
				suffix: suffix,
				labels: renderLabels(labels, extraK, le),
				value:  sm.Value,
			})
		}
	}
	return e.Bytes()
}

// Lint parses the page and then enforces the structural invariants the
// exposition format promises scrapers: no duplicate series, histograms
// with a +Inf bucket per series, cumulative non-decreasing buckets, and
// _count equal to the +Inf bucket. Returns nil for a clean page.
func Lint(b []byte) error {
	s, err := ParseExpo(b)
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	for _, name := range s.order {
		f := s.Families[name]
		if f.Type == "" {
			return fmt.Errorf("metric %q has HELP but no TYPE", name)
		}
		for _, sm := range f.Samples {
			key := seriesKey(sm.Name, sm.Labels)
			if seen[key] {
				return fmt.Errorf("duplicate series %s", key)
			}
			seen[key] = true
		}
		if f.Type == "histogram" {
			if err := lintHistogram(f); err != nil {
				return err
			}
		}
	}
	return nil
}

// lintHistogram checks one histogram family's per-series invariants.
func lintHistogram(f *PromFamily) error {
	type series struct {
		lastLE    float64
		lastCum   float64
		infBucket float64
		hasInf    bool
		count     float64
		hasCount  bool
	}
	byKey := map[string]*series{}
	key := func(labels map[string]string) string {
		rest := map[string]string{}
		for k, v := range labels {
			if k != "le" {
				rest[k] = v
			}
		}
		return seriesKey(f.Name, rest)
	}
	get := func(labels map[string]string) *series {
		k := key(labels)
		sr, ok := byKey[k]
		if !ok {
			sr = &series{lastLE: math.Inf(-1)}
			byKey[k] = sr
		}
		return sr
	}
	for _, sm := range f.Samples {
		switch strings.TrimPrefix(sm.Name, f.Name) {
		case "_bucket":
			le, ok := sm.Labels["le"]
			if !ok {
				return fmt.Errorf("%s_bucket without le label", f.Name)
			}
			bound, err := parsePromValue(le)
			if err != nil {
				return fmt.Errorf("%s_bucket: bad le %q", f.Name, le)
			}
			sr := get(sm.Labels)
			if bound <= sr.lastLE {
				return fmt.Errorf("%s: le %q out of order", f.Name, le)
			}
			if sm.Value < sr.lastCum {
				return fmt.Errorf("%s: bucket counts not cumulative at le %q", f.Name, le)
			}
			sr.lastLE, sr.lastCum = bound, sm.Value
			if math.IsInf(bound, 1) {
				sr.hasInf, sr.infBucket = true, sm.Value
			}
		case "_count":
			sr := get(sm.Labels)
			sr.hasCount, sr.count = true, sm.Value
		case "_sum":
		case "":
			return fmt.Errorf("%s: bare sample on a histogram family", f.Name)
		}
	}
	for k, sr := range byKey {
		if !sr.hasInf {
			return fmt.Errorf("%s: series %s has no +Inf bucket", f.Name, k)
		}
		if sr.hasCount && sr.count != sr.infBucket {
			return fmt.Errorf("%s: series %s _count %v != +Inf bucket %v", f.Name, k, sr.count, sr.infBucket)
		}
	}
	return nil
}
