package telemetry

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"titant/internal/rng"
)

func TestHistogramRecordAndQuantiles(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond})
	for i := 0; i < 98; i++ {
		h.Record(500 * time.Microsecond)
	}
	h.Record(5 * time.Millisecond)
	h.Record(250 * time.Millisecond) // overflow bucket
	counts, total := h.Snapshot()
	if total != 100 || h.Total() != 100 {
		t.Fatalf("total = %d / %d", total, h.Total())
	}
	if counts[0] != 98 || counts[1] != 1 || counts[3] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	if h.Max() != 250*time.Millisecond {
		t.Fatalf("max = %v", h.Max())
	}
	wantSum := 98*500*time.Microsecond + 5*time.Millisecond + 250*time.Millisecond
	if h.Sum() != wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	if p50 := h.Quantile(0.50); p50 != time.Millisecond {
		t.Fatalf("p50 = %v", p50)
	}
	if p99 := h.Quantile(0.99); p99 != 10*time.Millisecond {
		t.Fatalf("p99 = %v", p99)
	}
	if p100 := h.Quantile(1); p100 != h.Max() {
		t.Fatalf("p100 = %v", p100)
	}
	if empty := Quantile(h.bounds, make([]int64, 4), 0, 0, 0.99); empty != 0 {
		t.Fatalf("empty quantile = %v", empty)
	}
}

func TestHistogramSanitisesBounds(t *testing.T) {
	h := NewHistogram([]time.Duration{time.Second, -1, time.Millisecond, time.Second, 0})
	if len(h.bounds) != 2 || h.bounds[0] != time.Millisecond || h.bounds[1] != time.Second {
		t.Fatalf("bounds = %v", h.bounds)
	}
	if h := NewHistogram(nil); len(h.bounds) != len(DefaultBounds()) {
		t.Fatalf("default bounds = %v", h.bounds)
	}
}

// TestMergedQuantileEqualsPopulation is the histogram-merge drift
// property test: a random population scattered across a random number
// of shard histograms, summed bucket-wise by Merge, must yield exactly
// the quantiles of the same population recorded into one histogram.
// This is what licenses the router and the sharded engine to recompute
// fleet percentiles from summed raw buckets.
func TestMergedQuantileEqualsPopulation(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 50; trial++ {
		nShards := 1 + r.Intn(8)
		shards := make([]*Histogram, nShards)
		for i := range shards {
			shards[i] = NewHistogram(nil)
		}
		whole := NewHistogram(nil)
		n := 1 + r.Intn(5000)
		for i := 0; i < n; i++ {
			// Log-uniform latencies spanning 1µs..10s, plus occasional
			// overflow beyond the last bound.
			d := time.Duration(float64(time.Microsecond) * math.Pow(10, 7*r.Float64()))
			if r.Bool(0.01) {
				d = 200 * time.Second
			}
			shards[r.Intn(nShards)].Record(d)
			whole.Record(d)
		}
		bounds, counts, total, max := Merge(shards)
		if total != int64(n) {
			t.Fatalf("trial %d: merged total %d, want %d", trial, total, n)
		}
		for _, p := range []float64{0.5, 0.9, 0.99, 0.999, 1} {
			merged := Quantile(bounds, counts, total, max, p)
			wc, wt := whole.Snapshot()
			pop := Quantile(whole.Bounds(), wc, wt, whole.Max(), p)
			if merged != pop {
				t.Fatalf("trial %d (shards=%d n=%d): p%v merged %v != population %v",
					trial, nShards, n, p, merged, pop)
			}
		}
	}
}

func TestTraceIDRoundTrip(t *testing.T) {
	m := NewMinter(7)
	id := m.Mint()
	if id.IsZero() {
		t.Fatal("minted zero trace id")
	}
	s := id.String()
	if len(s) != 32 {
		t.Fatalf("String() = %q", s)
	}
	back, ok := ParseTraceID(s)
	if !ok || back != id {
		t.Fatalf("ParseTraceID(%q) = %v, %v", s, back, ok)
	}
	if string(id.AppendHex(nil)) != s {
		t.Fatalf("AppendHex mismatch: %q vs %q", id.AppendHex(nil), s)
	}
	for _, bad := range []string{"", "xyz", strings.Repeat("0", 32), strings.Repeat("g", 32), "abc"} {
		if _, ok := ParseTraceID(bad); ok {
			t.Fatalf("ParseTraceID accepted %q", bad)
		}
	}
	// Deterministic: same seed, same stream.
	if a, b := NewMinter(3).Mint(), NewMinter(3).Mint(); a != b {
		t.Fatalf("minter not deterministic: %s vs %s", a, b)
	}
	ctx := WithTrace(context.Background(), id)
	got, ok := TraceFrom(ctx)
	if !ok || got != id {
		t.Fatalf("TraceFrom = %v, %v", got, ok)
	}
	if _, ok := TraceFrom(context.Background()); ok {
		t.Fatal("TraceFrom on empty ctx")
	}
}

func TestTrackerObserveAndTraceBody(t *testing.T) {
	tr := NewTracker([]string{"score", "decide"}, 2)
	et := tr.Endpoint("score")
	if et == nil || tr.Endpoint("nope") != nil {
		t.Fatal("endpoint lookup")
	}
	m := NewMinter(1)
	var slowest TraceID
	for i := 1; i <= 5; i++ {
		id := m.Mint()
		var spans Spans
		spans[StageFetch] = time.Duration(i) * time.Millisecond
		spans[StageScore] = time.Duration(i) * 2 * time.Millisecond
		total := time.Duration(i) * 3 * time.Millisecond
		if i == 5 {
			slowest = id
		}
		et.Observe(id, total, &spans)
	}
	if n := et.StageHistogram(StageFetch).Total(); n != 5 {
		t.Fatalf("fetch stage count = %d", n)
	}
	if n := et.StageHistogram(StageDecide).Total(); n != 0 {
		t.Fatalf("untraversed stage count = %d", n)
	}
	body := TraceBody(tr)
	eps := body["endpoints"].(map[string]interface{})
	score := eps["score"].(map[string]interface{})
	stages := score["stages"].(map[string]interface{})
	if _, ok := stages["fetch"]; !ok {
		t.Fatalf("stages = %v", stages)
	}
	if _, ok := stages["decide"]; ok {
		t.Fatal("untraversed stage reported")
	}
	slow := score["slowest"].([]map[string]interface{})
	if len(slow) != 2 {
		t.Fatalf("ring kept %d exemplars, want 2", len(slow))
	}
	if slow[0]["trace_id"] != slowest.String() {
		t.Fatalf("slowest exemplar = %v, want %s", slow[0]["trace_id"], slowest)
	}
}

func TestExpoRoundTripAndLint(t *testing.T) {
	e := NewExpo()
	e.Counter("titant_scoring_scored_total", "transactions scored", 12, "shard", "0")
	e.Counter("titant_scoring_scored_total", "transactions scored", 30, "shard", "1")
	e.Gauge("titant_admission_inflight", "in-flight admitted requests", 3)
	h := NewHistogram([]time.Duration{time.Millisecond, time.Second})
	h.Record(500 * time.Microsecond)
	h.Record(2 * time.Second)
	counts, _ := h.Snapshot()
	e.Histogram("titant_scoring_latency_seconds", "scoring latency", h.Bounds(), counts, int64(h.Sum()), "endpoint", "score")
	page := e.Bytes()
	if err := Lint(page); err != nil {
		t.Fatalf("lint: %v\n%s", err, page)
	}
	s, err := ParseExpo(page)
	if err != nil {
		t.Fatal(err)
	}
	f := s.Families["titant_scoring_scored_total"]
	if f == nil || f.Type != "counter" || len(f.Samples) != 2 {
		t.Fatalf("family = %+v", f)
	}
	if f.Samples[1].Labels["shard"] != "1" || f.Samples[1].Value != 30 {
		t.Fatalf("sample = %+v", f.Samples[1])
	}
	hf := s.Families["titant_scoring_latency_seconds"]
	if hf == nil || hf.Type != "histogram" {
		t.Fatalf("hist family = %+v", hf)
	}
	// _bucket(+Inf) == _count == 2, _sum in seconds.
	var inf, count, sum float64
	for _, sm := range hf.Samples {
		switch {
		case strings.HasSuffix(sm.Name, "_bucket") && sm.Labels["le"] == "+Inf":
			inf = sm.Value
		case strings.HasSuffix(sm.Name, "_count"):
			count = sm.Value
		case strings.HasSuffix(sm.Name, "_sum"):
			sum = sm.Value
		}
	}
	if inf != 2 || count != 2 {
		t.Fatalf("+Inf %v count %v", inf, count)
	}
	if sum < 2.0 || sum > 2.001 {
		t.Fatalf("sum = %v", sum)
	}

	// Re-label and re-render: still lints, every series carries the label.
	s.AddLabel("tier", "edge")
	page2 := s.Render()
	if err := Lint(page2); err != nil {
		t.Fatalf("relabeled lint: %v\n%s", err, page2)
	}
	s2, err := ParseExpo(page2)
	if err != nil {
		t.Fatal(err)
	}
	for key := range s2.SeriesSet() {
		if !strings.Contains(key, "tier=edge") {
			t.Fatalf("series %s lost the tier label", key)
		}
	}
}

func TestLintCatchesDefects(t *testing.T) {
	cases := map[string]string{
		"duplicate series": `# HELP a_total x
# TYPE a_total counter
a_total 1
a_total 2
`,
		"missing +Inf": `# HELP h x
# TYPE h histogram
h_bucket{le="1"} 1
h_sum 1
h_count 1
`,
		"non-cumulative": `# HELP h x
# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"count mismatch": `# HELP h x
# TYPE h histogram
h_bucket{le="+Inf"} 5
h_sum 1
h_count 4
`,
		"undeclared sample": `b_total 1
`,
		"bad type": `# TYPE a_total bogus
a_total 1
`,
	}
	for name, page := range cases {
		if err := Lint([]byte(page)); err == nil {
			t.Errorf("%s: lint passed", name)
		}
	}
}

func TestScrapeMergeConflict(t *testing.T) {
	a, err := ParseExpo([]byte("# TYPE m counter\nm 1\n"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseExpo([]byte("# TYPE m gauge\nm 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(b); err == nil {
		t.Fatal("type conflict merged silently")
	}
	c, err := ParseExpo([]byte("# TYPE m counter\nm{shard=\"1\"} 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Merge(c); err != nil {
		t.Fatal(err)
	}
	if got := len(a.Families["m"].Samples); got != 2 {
		t.Fatalf("merged samples = %d", got)
	}
}
