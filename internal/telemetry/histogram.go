// Package telemetry is the repo's observability plane: the shared
// lock-free latency histogram behind /v1/stats, /metrics and the load
// harness; request trace IDs minted at the wire tier and propagated in
// context; per-stage hot-path span aggregation with slowest-exemplar
// rings; and the hand-rolled Prometheus text exposition writer, parser
// and linter. Everything here is stdlib-only and allocation-free on the
// recording paths, so the serving tiers can run it unconditionally.
package telemetry

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-size latency histogram with log-spaced buckets:
// recording is a lock-free O(log buckets) search plus two atomic adds,
// and a percentile read walks the bucket array once. It is the one
// histogram shared by the engine (/v1/stats latency sections), the wire
// router (per-shard latency trackers, hedge delay), the load harness
// (report quantiles) and /metrics — identical bounds everywhere, so no
// two surfaces can disagree on a quantile.
//
// Bucket i counts samples d with bounds[i-1] < d <= bounds[i]; the
// final bucket counts everything above the last bound. Percentiles are
// the upper bound of the bucket holding the target rank (clamped to the
// observed maximum): conservative estimates whose resolution is the
// bucket spacing.
type Histogram struct {
	bounds []time.Duration // ascending bucket upper bounds
	counts []atomic.Int64  // len(bounds)+1; the last is the overflow bucket
	sum    atomic.Int64    // total observed nanoseconds (Prometheus _sum)
	max    atomic.Int64
}

// DefaultBounds covers 1µs to 100s on a geometric ×1.25 ladder (~84
// buckets): ~12% worst-case quantile error everywhere on the range, in
// particular fine enough around the SLO gate's 100ms p99 ceiling that a
// 60ms tail is not reported as 100ms (the old 1-2-5 decade ladder did
// exactly that).
func DefaultBounds() []time.Duration {
	var bs []time.Duration
	for b := float64(time.Microsecond); b < float64(100*time.Second); b *= 1.25 {
		bs = append(bs, time.Duration(b))
	}
	return bs
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. Bounds are sanitised (sorted, deduplicated, non-positive
// dropped); an empty set falls back to DefaultBounds.
func NewHistogram(bounds []time.Duration) *Histogram {
	bs := make([]time.Duration, 0, len(bounds))
	for _, b := range bounds {
		if b > 0 {
			bs = append(bs, b)
		}
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	dst := bs[:0]
	for i, b := range bs {
		if i == 0 || b != dst[len(dst)-1] {
			dst = append(dst, b)
		}
	}
	bs = dst
	if len(bs) == 0 {
		bs = DefaultBounds()
	}
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Record adds one sample. Safe for concurrent use; does not allocate.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// Bounds returns the bucket upper bounds (shared, not copied — callers
// must not mutate).
func (h *Histogram) Bounds() []time.Duration { return h.bounds }

// Max returns the largest sample observed so far.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Total returns the number of recorded samples.
func (h *Histogram) Total() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Snapshot copies the bucket counts and returns them with their sum.
func (h *Histogram) Snapshot() ([]int64, int64) {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Quantile reads the p-quantile (0 < p <= 1) from the live histogram.
func (h *Histogram) Quantile(p float64) time.Duration {
	counts, total := h.Snapshot()
	return Quantile(h.bounds, counts, total, h.Max(), p)
}

// Quantile reads the p-quantile (0 < p <= 1) out of a snapshot: the
// upper bound of the bucket containing rank ceil(p·total), clamped to
// the observed maximum. This is the single quantile definition every
// surface uses — the engine's /v1/stats, the router's merged fleet
// view, the load report — so a merged quantile computed from summed
// buckets is bitwise-identical to the whole-population quantile over
// the same samples.
func Quantile(bounds []time.Duration, counts []int64, total int64, max time.Duration, p float64) time.Duration {
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i < len(bounds) && bounds[i] < max {
				return bounds[i]
			}
			return max
		}
	}
	return max
}

// Merge sums same-shaped histograms bucket-wise and returns the merged
// snapshot (bounds, counts, total, max). All inputs must share bounds —
// true for the engine's histograms, which are all built from one option
// set; the wire router only merges stats bodies whose bounds_ns arrays
// match.
func Merge(hs []*Histogram) (bounds []time.Duration, counts []int64, total int64, max time.Duration) {
	if len(hs) == 0 {
		return nil, nil, 0, 0
	}
	bounds = hs[0].bounds
	counts = make([]int64, len(hs[0].counts))
	for _, h := range hs {
		cs, t := h.Snapshot()
		for i := range counts {
			counts[i] += cs[i]
		}
		total += t
		if m := h.Max(); m > max {
			max = m
		}
	}
	return bounds, counts, total, max
}

// HistBody renders a histogram snapshot as its raw wire form:
// nanosecond bucket bounds, counts (last entry is the overflow bucket),
// the observed maximum and the sample sum. Raw buckets are what make
// the fleet view lossless — the router sums counts across shards and
// recomputes quantiles, instead of averaging per-shard percentiles
// (meaningless).
func HistBody(bounds []time.Duration, counts []int64, total int64, max time.Duration) map[string]interface{} {
	boundsNS := make([]int64, len(bounds))
	for i, b := range bounds {
		boundsNS[i] = int64(b)
	}
	return map[string]interface{}{
		"bounds_ns": boundsNS,
		"counts":    counts,
		"max_ns":    int64(max),
	}
}
