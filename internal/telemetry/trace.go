package telemetry

import (
	"context"
	"encoding/hex"
	"sync"

	"titant/internal/rng"
)

// TraceHeader is the wire header carrying a request's trace ID: adopted
// by the router (or a shard hit directly) when the caller supplies one,
// minted otherwise, echoed on every /v1/* response, and forwarded on
// every proxied sub-request — so one grep for the ID finds a verdict's
// whole path across tiers.
const TraceHeader = "X-Trace-Id"

// TraceID is a 16-byte request identifier, rendered as 32 lowercase hex
// characters on the wire.
type TraceID [16]byte

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex characters.
func (id TraceID) String() string {
	var buf [32]byte
	hex.Encode(buf[:], id[:])
	return string(buf[:])
}

// AppendHex appends the ID's 32 hex characters to dst — the
// allocation-free form of String for pooled hot paths.
func (id TraceID) AppendHex(dst []byte) []byte {
	var buf [32]byte
	hex.Encode(buf[:], id[:])
	return append(dst, buf[:]...)
}

// ParseTraceID decodes a 32-hex-character trace ID. Anything else —
// wrong length, non-hex, all zeros — reports false, which callers treat
// as "mint a fresh one" rather than an error: a malformed inbound
// header must never fail a scoring request.
func ParseTraceID(s string) (TraceID, bool) {
	var id TraceID
	if len(s) != 32 {
		return TraceID{}, false
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return id, !id.IsZero()
}

// Minter mints trace IDs from a seeded deterministic stream. The
// underlying rng.RNG is not concurrency-safe, so the minter wraps it in
// a mutex — contention is negligible against the cost of the request
// the ID names. Seeded minting keeps replayed load runs and tests
// reproducible end to end, trace IDs included.
type Minter struct {
	mu sync.Mutex
	r  *rng.RNG
}

// NewMinter returns a minter over a stream derived from seed.
func NewMinter(seed uint64) *Minter {
	return &Minter{r: rng.New(seed).Split(0x7e1e)}
}

// Mint returns a fresh non-zero trace ID.
func (m *Minter) Mint() TraceID {
	m.mu.Lock()
	defer m.mu.Unlock()
	var id TraceID
	for id.IsZero() {
		a, b := m.r.Uint64(), m.r.Uint64()
		for i := 0; i < 8; i++ {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

// traceKey is the context key carrying the request's TraceID.
type traceKey struct{}

// WithTrace returns ctx carrying the trace ID.
func WithTrace(ctx context.Context, id TraceID) context.Context {
	return context.WithValue(ctx, traceKey{}, id)
}

// TraceFrom extracts the trace ID from ctx (zero ID, false if absent).
func TraceFrom(ctx context.Context) (TraceID, bool) {
	id, ok := ctx.Value(traceKey{}).(TraceID)
	return id, ok && !id.IsZero()
}
