package telemetry

import (
	"bytes"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Expo builds a Prometheus text exposition (format 0.0.4) by hand —
// the serving tiers depend on nothing outside the standard library.
// Samples may be added in any order; families are buffered and rendered
// grouped, HELP and TYPE once per metric name, at Bytes time. Label
// arguments are flat key/value pairs ("shard", "3", "stage", "fetch").
type Expo struct {
	families map[string]*expoFamily
	order    []string
}

type expoFamily struct {
	name, help, typ string
	lines           []expoLine
}

type expoLine struct {
	suffix string // "", "_bucket", "_sum", "_count"
	labels string // rendered {k="v",...} or ""
	value  float64
}

// NewExpo returns an empty exposition builder.
func NewExpo() *Expo {
	return &Expo{families: map[string]*expoFamily{}}
}

func (e *Expo) family(name, help, typ string) *expoFamily {
	f, ok := e.families[name]
	if !ok {
		f = &expoFamily{name: name, help: help, typ: typ}
		e.families[name] = f
		e.order = append(e.order, name)
	}
	return f
}

// Counter adds one cumulative counter sample.
func (e *Expo) Counter(name, help string, value float64, labels ...string) {
	f := e.family(name, help, "counter")
	f.lines = append(f.lines, expoLine{labels: renderLabels(labels, "", ""), value: value})
}

// Gauge adds one gauge sample.
func (e *Expo) Gauge(name, help string, value float64, labels ...string) {
	f := e.family(name, help, "gauge")
	f.lines = append(f.lines, expoLine{labels: renderLabels(labels, "", ""), value: value})
}

// Histogram adds one histogram series from a snapshot in this package's
// native shape: duration bucket upper bounds, per-bucket (non-
// cumulative) counts with a final overflow entry, and the observed
// nanosecond sum. Bounds are exposed in seconds, buckets cumulatively,
// per the exposition format.
func (e *Expo) Histogram(name, help string, bounds []time.Duration, counts []int64, sumNS int64, labels ...string) {
	f := e.family(name, help, "histogram")
	var cum int64
	for i, b := range bounds {
		if i < len(counts) {
			cum += counts[i]
		}
		le := strconv.FormatFloat(b.Seconds(), 'g', -1, 64)
		f.lines = append(f.lines, expoLine{suffix: "_bucket", labels: renderLabels(labels, "le", le), value: float64(cum)})
	}
	if len(counts) > len(bounds) {
		cum += counts[len(bounds)]
	}
	f.lines = append(f.lines,
		expoLine{suffix: "_bucket", labels: renderLabels(labels, "le", "+Inf"), value: float64(cum)},
		expoLine{suffix: "_sum", labels: renderLabels(labels, "", ""), value: float64(sumNS) / 1e9},
		expoLine{suffix: "_count", labels: renderLabels(labels, "", ""), value: float64(cum)},
	)
}

// renderLabels renders flat key/value pairs (plus one optional extra
// pair, used for le) as a label block, sorted by key for a stable
// series identity.
func renderLabels(kv []string, extraK, extraV string) string {
	n := len(kv) / 2
	if extraK != "" {
		n++
	}
	if n == 0 {
		return ""
	}
	type pair struct{ k, v string }
	pairs := make([]pair, 0, n)
	for i := 0; i+1 < len(kv); i += 2 {
		pairs = append(pairs, pair{kv[i], kv[i+1]})
	}
	if extraK != "" {
		pairs = append(pairs, pair{extraK, extraV})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p.k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(p.v))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(v)
}

// Bytes renders the exposition. Families appear in first-added order,
// each preceded by its HELP and TYPE lines exactly once.
func (e *Expo) Bytes() []byte {
	var buf bytes.Buffer
	for _, name := range e.order {
		f := e.families[name]
		fmt.Fprintf(&buf, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.name, f.typ)
		for _, ln := range f.lines {
			fmt.Fprintf(&buf, "%s%s%s %s\n", f.name, ln.suffix, ln.labels,
				strconv.FormatFloat(ln.value, 'g', -1, 64))
		}
	}
	return buf.Bytes()
}
