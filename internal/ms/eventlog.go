// Durability plane of the scoring engine: an engine built WithEventLog
// appends every state-changing event — ingested transactions, drift
// score observations, shadow comparisons, bundle swaps — to an
// internal/eventlog log *before* applying it to in-memory state
// (log-then-apply), and rebuilds that state on startup by loading the
// newest snapshot and replaying the log tail. Because the log order is
// the apply order (both happen under elogMu) and every replayed event
// carries the exact values the live process applied (score bits, not
// re-scored inputs), the rebuilt streaming window, drift monitor and
// shadow meter are bitwise-identical to the pre-crash process.
package ms

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"time"

	"titant/internal/decision"
	"titant/internal/eventlog"
	"titant/internal/txn"
)

var le = binary.LittleEndian

func f64bits(v float64) uint64     { return math.Float64bits(v) }
func f64frombits(b uint64) float64 { return math.Float64frombits(b) }

// engineConsumer is the log consumer name under which the engine commits
// its own apply position (always the snapshot end: applies are
// synchronous, so everything below a snapshot is consumed).
const engineConsumer = "engine"

// DefaultSnapshotEvery is how many log events accumulate between derived-
// state snapshots on an engine built WithEventLog but no override.
const DefaultSnapshotEvery = 1 << 16

// StreamSnapshotter is the optional snapshot surface of a
// StreamAggregates implementation (satisfied by stream.Store). When the
// configured window implements it, engine snapshots include the window
// state and recovery fast-forwards past compacted log prefixes; when it
// does not, snapshotting is disabled and recovery replays the full log.
type StreamSnapshotter interface {
	WriteState(w io.Writer) error
	RestoreState(r io.Reader) error
}

// WithEventLog attaches the durable event log rooted at dir: Ingest and
// IngestBatch become log-then-apply, scoring logs its drift observations
// and shadow comparisons, SetBundle logs the swap, and New recovers the
// engine's derived state from the directory before serving. opts tune
// the log (fsync batching, segment rotation, retention).
func WithEventLog(dir string, opts ...eventlog.Option) Option {
	return func(s *Server) {
		s.elogDir = dir
		s.elogOpts = opts
		s.elogSnapEvery = DefaultSnapshotEvery
	}
}

// WithSnapshotEvery sets how many log events accumulate between derived-
// state snapshots (default DefaultSnapshotEvery). n <= 0 disables
// snapshotting: recovery replays the full log and segments are never
// compacted away.
func WithSnapshotEvery(n int64) Option {
	return func(s *Server) {
		if n <= 0 {
			s.elogSnapEvery = 0
		} else {
			s.elogSnapEvery = uint64(n)
		}
	}
}

// EventLogEnabled reports whether the engine was built WithEventLog.
func (s *Server) EventLogEnabled() bool { return s.elog != nil }

// EventLogStats snapshots the log counters (zero value without a log).
func (s *Server) EventLogStats() eventlog.Stats {
	if s.elog == nil {
		return eventlog.Stats{}
	}
	return s.elog.Stats()
}

// EventLogReplayed reports how many records startup recovery replayed.
func (s *Server) EventLogReplayed() int64 { return s.elogReplayed.Load() }

// Snapshot forces a derived-state snapshot at the current log position,
// regardless of the periodic cadence. No-op without an event log.
func (s *Server) Snapshot() error {
	if s.elog == nil {
		return nil
	}
	s.elogMu.Lock()
	defer s.elogMu.Unlock()
	return s.snapshotLocked()
}

// openEventLog opens the log directory and rebuilds derived state:
// newest intact snapshot first (stream window, drift monitor, shadow
// meter, negative-cache keys), then a replay of every record at or past
// the snapshot end. Called from New, before the engine is shared, so
// replay applies state directly without elogMu.
func (s *Server) openEventLog() error {
	l, err := eventlog.Open(s.elogDir, s.elogOpts...)
	if err != nil {
		return err
	}
	// A window that cannot snapshot forces full-log replay: a snapshot
	// missing the stream section would silently lose every ingest below
	// its end offset once compaction trusts it.
	if s.stream != nil {
		if _, ok := s.stream.(StreamSnapshotter); !ok {
			s.elogSnapEvery = 0
		}
	}
	end, sections, err := eventlog.LoadSnapshot(s.elogDir)
	if err != nil {
		l.Close()
		return fmt.Errorf("ms: load snapshot: %w", err)
	}
	if sections != nil {
		if err := s.restoreSnapshot(sections); err != nil {
			l.Close()
			return err
		}
	}
	var replayed int64
	next, err := l.ReadFrom(end, func(r eventlog.Record) error {
		replayed++
		return s.applyRecord(r)
	})
	if err != nil {
		l.Close()
		return fmt.Errorf("ms: replay: %w", err)
	}
	s.elog = l
	s.elogSnapBase = end
	s.elogReplayed.Store(replayed)
	_ = next
	return nil
}

// applyRecord replays one log record into derived state. It must apply
// exactly what the live process applied — decoded values, never
// re-derived ones — or recovery stops being bitwise.
func (s *Server) applyRecord(r eventlog.Record) error {
	switch r.Kind {
	case eventlog.KindTxn:
		t, err := txn.DecodeRecord(r.Payload)
		if err != nil {
			return fmt.Errorf("ms: replay offset %d: %w", r.Offset, err)
		}
		if s.stream != nil {
			s.stream.Ingest(&t)
		}
		s.dropNegative(&t)
	case eventlog.KindScore:
		mon := s.drift.Load()
		if mon == nil {
			return nil // drift disabled this run; observations have no home
		}
		return replayScores(mon, r.Payload, r.Offset)
	case eventlog.KindShadow:
		if s.shadow == nil {
			return nil
		}
		champ, chall, champFraud, challFraud, err := decodeShadowEvent(r.Payload)
		if err != nil {
			return fmt.Errorf("ms: replay offset %d: %w", r.Offset, err)
		}
		s.shadow.meter.Record(champ, chall, champFraud, challFraud)
	case eventlog.KindReset:
		// Mirror SetBundle's state effects. The bundle itself is the
		// operator's to supply at startup; recovery is exact when the
		// process restarts with the bundle it crashed with (the normal
		// case — swaps are rare and bundles persist independently).
		if s.driftCfg != nil {
			s.drift.Store(decision.NewMonitor(*s.driftCfg, driftSeriesNames(s.bundle)))
		}
		if s.shadow != nil {
			s.shadow.championSwapped()
		}
		if s.cache != nil {
			s.cache.Purge()
		}
	default:
		// Unknown kinds from a newer writer are skipped, not fatal: the
		// envelope exists so old readers can keep their exactness for the
		// kinds they do understand.
	}
	return nil
}

// restoreSnapshot loads each snapshot section into its configured
// subsystem. Sections for subsystems this run does not configure are
// ignored (the subsystem starts empty); a section that is present but
// does not match the configured shape fails closed.
func (s *Server) restoreSnapshot(sections map[string][]byte) error {
	if sec, ok := sections["stream"]; ok && s.stream != nil {
		ss, can := s.stream.(StreamSnapshotter)
		if !can {
			return fmt.Errorf("ms: snapshot has a stream section but the configured window cannot restore it")
		}
		if err := ss.RestoreState(bytes.NewReader(sec)); err != nil {
			return fmt.Errorf("ms: restore stream state: %w", err)
		}
	}
	if sec, ok := sections["drift"]; ok {
		if mon := s.drift.Load(); mon != nil {
			if err := mon.RestoreState(bytes.NewReader(sec)); err != nil {
				return fmt.Errorf("ms: restore drift state: %w", err)
			}
		}
	}
	if sec, ok := sections["shadow"]; ok && s.shadow != nil {
		if err := s.shadow.meter.RestoreState(bytes.NewReader(sec)); err != nil {
			return fmt.Errorf("ms: restore shadow state: %w", err)
		}
	}
	if sec, ok := sections["negcache"]; ok && s.cache != nil {
		keys, err := decodeNegKeys(sec)
		if err != nil {
			return fmt.Errorf("ms: restore negative-cache keys: %w", err)
		}
		for _, u := range keys {
			s.cache.InsertNegative(u)
		}
	}
	return nil
}

// ingestLocked is the logged ingest path: append the transaction record,
// then apply it to the window and cache, all under elogMu so the log
// order is the apply order. An append failure applies nothing — a
// record the log cannot replay must not exist in memory.
func (s *Server) ingestLocked(t *txn.Transaction) error {
	payload := s.elogScratch(txn.RecordSize)
	txn.EncodeRecord(payload, t)
	var flags uint8
	if t.Fraud {
		flags = eventlog.FlagFraud
	}
	if _, err := s.elog.Append(eventlog.KindTxn, flags, time.Now().UnixNano(), payload); err != nil {
		return fmt.Errorf("ms: ingest append: %w", err)
	}
	s.stream.Ingest(t)
	s.dropNegative(t)
	return nil
}

// recordScores feeds one scoring pass's scores into the drift monitor,
// logging them first when the engine has an event log. mon is the
// monitor captured by scoringView; if a bundle swap replaced it in the
// meantime the pass is skipped entirely — the old monitor is already
// unreachable, and logging its observations would make replay feed them
// to the new monitor, a divergence the live process never had.
func (s *Server) recordScores(mon *decision.Monitor, combined []float64, memberScores [][]float64) {
	if mon == nil {
		return
	}
	if s.elog == nil {
		observeDrift(mon, combined, memberScores)
		return
	}
	s.elogMu.Lock()
	defer s.elogMu.Unlock()
	if mon != s.drift.Load() {
		return
	}
	payload := encodeScoreEvent(s.elogScratch(0), mon, combined, memberScores)
	s.elogBuf = payload // keep a grown buffer for the next pass
	if _, err := s.elog.Append(eventlog.KindScore, 0, time.Now().UnixNano(), payload); err != nil {
		s.elogErrs.Add(1)
		return
	}
	observeDrift(mon, combined, memberScores)
}

// recordShadow records one champion/challenger comparison, logging it
// first when the engine has an event log. The epoch re-check under
// elogMu makes the comparison and SetBundle's KindReset strictly
// ordered: a comparison is logged (and counted) only if no reset has
// been logged since it was scored.
func (s *Server) recordShadow(r *shadowRunner, j *shadowJob, challScore float64, challFraud bool) {
	if s.elog == nil {
		r.meter.Record(j.champScore, challScore, j.champFraud, challFraud)
		return
	}
	s.elogMu.Lock()
	defer s.elogMu.Unlock()
	if j.epoch != r.epoch.Load() {
		return // swap landed mid-score; the meter this belonged to is gone
	}
	payload := encodeShadowEvent(s.elogScratch(17), j.champScore, challScore, j.champFraud, challFraud)
	if _, err := s.elog.Append(eventlog.KindShadow, 0, time.Now().UnixNano(), payload); err != nil {
		s.elogErrs.Add(1)
		return
	}
	r.meter.Record(j.champScore, challScore, j.champFraud, challFraud)
}

// logResetLocked appends the bundle-swap marker. Caller holds elogMu
// (SetBundle, which performs the monitor/meter reset in the same
// critical section so no score or shadow event can interleave).
func (s *Server) logResetLocked(version string) {
	if _, err := s.elog.Append(eventlog.KindReset, 0, time.Now().UnixNano(), []byte(version)); err != nil {
		s.elogErrs.Add(1)
	}
}

// maybeSnapshotLocked writes a derived-state snapshot once enough events
// have accumulated since the last one. Caller holds elogMu.
func (s *Server) maybeSnapshotLocked() error {
	if s.elogSnapEvery == 0 {
		return nil
	}
	if s.elog.NextOffset()-s.elogSnapBase < s.elogSnapEvery {
		return nil
	}
	return s.snapshotLocked()
}

// snapshotLocked captures every stateful subsystem as of the current log
// position and persists it. The log is fsynced first so the snapshot
// never claims coverage of records a crash could still lose, and the
// engine's consumer offset advances with it so compaction can reclaim
// the covered segments.
func (s *Server) snapshotLocked() error {
	if err := s.elog.Sync(); err != nil {
		return fmt.Errorf("ms: snapshot sync: %w", err)
	}
	end := s.elog.NextOffset()
	var sections []eventlog.Section
	if ss, ok := s.stream.(StreamSnapshotter); ok && s.stream != nil {
		var buf bytes.Buffer
		if err := ss.WriteState(&buf); err != nil {
			return fmt.Errorf("ms: snapshot stream state: %w", err)
		}
		sections = append(sections, eventlog.Section{Name: "stream", Data: buf.Bytes()})
	}
	if mon := s.drift.Load(); mon != nil {
		var buf bytes.Buffer
		if err := mon.WriteState(&buf); err != nil {
			return fmt.Errorf("ms: snapshot drift state: %w", err)
		}
		sections = append(sections, eventlog.Section{Name: "drift", Data: buf.Bytes()})
	}
	if s.shadow != nil {
		var buf bytes.Buffer
		if err := s.shadow.meter.WriteState(&buf); err != nil {
			return fmt.Errorf("ms: snapshot shadow state: %w", err)
		}
		sections = append(sections, eventlog.Section{Name: "shadow", Data: buf.Bytes()})
	}
	if s.cache != nil {
		sections = append(sections, eventlog.Section{Name: "negcache", Data: encodeNegKeys(s.cache.NegativeKeys())})
	}
	if err := s.elog.CommitOffset(engineConsumer, end); err != nil {
		return err
	}
	if err := s.elog.WriteSnapshot(end, sections); err != nil {
		return err
	}
	s.elogSnapBase = end
	return nil
}

// elogScratch returns the reusable payload-encode buffer, sized to at
// least n. Caller holds elogMu; the buffer's contents are consumed by
// Append before the lock is released.
func (s *Server) elogScratch(n int) []byte {
	if cap(s.elogBuf) < n {
		s.elogBuf = make([]byte, 0, n+256)
	}
	return s.elogBuf[:n]
}

// Score-event payload: [rows u32][series u16] then rows*series float64
// bit patterns in exactly the order observeDrift feeds them (combined
// first, then each member), so replay is a flat walk.
func encodeScoreEvent(dst []byte, mon *decision.Monitor, combined []float64, memberScores [][]float64) []byte {
	withMembers := memberScores != nil && mon.NumSeries() == 1+len(memberScores)
	series := 1
	if withMembers {
		series += len(memberScores)
	}
	need := 6 + 8*len(combined)*series
	if cap(dst) < need {
		dst = make([]byte, 0, need)
	}
	dst = dst[:need]
	le.PutUint32(dst[0:], uint32(len(combined)))
	le.PutUint16(dst[4:], uint16(series))
	p := 6
	for i := range combined {
		le.PutUint64(dst[p:], f64bits(combined[i]))
		p += 8
		if withMembers {
			for k := range memberScores {
				le.PutUint64(dst[p:], f64bits(memberScores[k][i]))
				p += 8
			}
		}
	}
	return dst
}

// replayScores feeds a logged score event into mon. A series-count
// mismatch (the process restarted under a different bundle shape)
// degrades exactly like the live path's defence: only the combined
// series is fed.
func replayScores(mon *decision.Monitor, payload []byte, off uint64) error {
	if len(payload) < 6 {
		return fmt.Errorf("ms: replay offset %d: short score event", off)
	}
	rows := int(le.Uint32(payload[0:]))
	series := int(le.Uint16(payload[4:]))
	if series == 0 || len(payload) != 6+8*rows*series {
		return fmt.Errorf("ms: replay offset %d: score event geometry %dx%d does not match %d bytes",
			off, rows, series, len(payload))
	}
	withAll := series <= mon.NumSeries()
	p := 6
	for i := 0; i < rows; i++ {
		for k := 0; k < series; k++ {
			v := f64frombits(le.Uint64(payload[p:]))
			p += 8
			if k == 0 || withAll {
				mon.ObserveSeries(k, v)
			}
		}
	}
	return nil
}

// Shadow-event payload: champion score bits, challenger score bits, one
// flags byte (bit 0 champion fraud, bit 1 challenger fraud).
func encodeShadowEvent(dst []byte, champ, chall float64, champFraud, challFraud bool) []byte {
	le.PutUint64(dst[0:], f64bits(champ))
	le.PutUint64(dst[8:], f64bits(chall))
	dst[16] = 0
	if champFraud {
		dst[16] |= 1
	}
	if challFraud {
		dst[16] |= 2
	}
	return dst
}

func decodeShadowEvent(payload []byte) (champ, chall float64, champFraud, challFraud bool, err error) {
	if len(payload) != 17 {
		return 0, 0, false, false, fmt.Errorf("short shadow event: %d bytes", len(payload))
	}
	return f64frombits(le.Uint64(payload[0:])), f64frombits(le.Uint64(payload[8:])),
		payload[16]&1 != 0, payload[16]&2 != 0, nil
}

// Negative-cache section: [count u32] then count int32 user IDs.
func encodeNegKeys(keys []txn.UserID) []byte {
	buf := make([]byte, 4+4*len(keys))
	le.PutUint32(buf[0:], uint32(len(keys)))
	for i, u := range keys {
		le.PutUint32(buf[4+4*i:], uint32(u))
	}
	return buf
}

func decodeNegKeys(b []byte) ([]txn.UserID, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("short negcache section")
	}
	n := int(le.Uint32(b[0:]))
	if len(b) != 4+4*n {
		return nil, fmt.Errorf("negcache section: %d keys do not fit %d bytes", n, len(b))
	}
	keys := make([]txn.UserID, n)
	for i := range keys {
		keys[i] = txn.UserID(int32(le.Uint32(b[4+4*i:])))
	}
	return keys, nil
}
