package ms

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"titant/internal/txn"
)

// TestTokenBucketDeterministic drives one bucket with synthetic clocks:
// the burst drains exactly, refill is proportional to elapsed time,
// idle refill caps at burst, and a clock that goes backwards never
// mints tokens.
func TestTokenBucketDeterministic(t *testing.T) {
	now := time.Unix(1000, 0)
	b := newTokenBucket(10, 5, now) // 10 tok/s, burst 5

	for i := 0; i < 5; i++ {
		if !b.take(1, now) {
			t.Fatalf("burst token %d refused", i)
		}
	}
	if b.take(1, now) {
		t.Fatal("admitted beyond the burst with no elapsed time")
	}

	// 100ms at 10 tok/s refills exactly one token.
	now = now.Add(100 * time.Millisecond)
	if !b.take(1, now) {
		t.Fatal("refilled token refused")
	}
	if b.take(1, now) {
		t.Fatal("admitted more than the refill")
	}

	// A long idle period refills to the burst cap, not beyond.
	now = now.Add(time.Hour)
	for i := 0; i < 5; i++ {
		if !b.take(1, now) {
			t.Fatalf("post-idle token %d refused", i)
		}
	}
	if b.take(1, now) {
		t.Fatal("idle refill exceeded the burst cap")
	}

	// Clock regression mints nothing.
	if b.take(1, now.Add(-time.Minute)) {
		t.Fatal("backwards clock minted tokens")
	}

	// Multi-token takes are all-or-nothing.
	now = now.Add(time.Hour)
	if b.take(6, now) {
		t.Fatal("admitted a take larger than the burst")
	}
	if !b.take(5, now) {
		t.Fatal("refused a full-burst take after the oversized one")
	}
}

// TestTokenBucketInvariantConcurrent is the quota property test: many
// goroutines hammering one bucket never admit more than
// burst + rate*elapsed transactions. Run under -race this also proves
// the bucket's internals are data-race free.
func TestTokenBucketInvariantConcurrent(t *testing.T) {
	const (
		rate  = 500.0
		burst = 25.0
	)
	start := time.Now()
	b := newTokenBucket(rate, burst, start)
	var accepted atomic.Int64
	var wg sync.WaitGroup
	deadline := start.Add(100 * time.Millisecond)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if b.take(1, time.Now()) {
					accepted.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	wg.Wait()
	// elapsed is measured after the last take, so the bound is an upper
	// bound on what any correct bucket could have admitted.
	elapsed := time.Since(start).Seconds()
	limit := int64(burst + rate*elapsed + 1)
	if got := accepted.Load(); got > limit {
		t.Fatalf("bucket admitted %d transactions in %.3fs; invariant allows at most %d", got, elapsed, limit)
	}
	if accepted.Load() < int64(burst) {
		t.Fatalf("bucket admitted %d, less than the burst %v — the test exercised nothing", accepted.Load(), burst)
	}
}

// TestAdmissionInflightInvariant is the load-shed property test: under
// saturation the observed concurrency never exceeds maxInflight, every
// admitted request runs to completion (admitted == completed: shedding
// never drops accepted work), every refusal is the typed ErrOverloaded,
// and the gauge returns to zero — a shed or completed request leaves no
// residue.
func TestAdmissionInflightInvariant(t *testing.T) {
	const (
		maxInflight = 4
		workers     = 8
		iters       = 2000
	)
	a := &admission{maxInflight: maxInflight}
	var (
		cur, peak           atomic.Int64
		admitted, completed atomic.Int64
		shed                atomic.Int64
		wg                  sync.WaitGroup
		wrongErr            atomic.Int64
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := 1 + (w+i)%2 // mix single and batch-of-two admissions
				rel, err := a.admit("caller", n)
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						wrongErr.Add(1)
					}
					shed.Add(int64(n))
					continue
				}
				c := cur.Add(int64(n))
				for {
					p := peak.Load()
					if c <= p || peak.CompareAndSwap(p, c) {
						break
					}
				}
				admitted.Add(int64(n))
				runtime.Gosched()
				cur.Add(int64(-n))
				completed.Add(int64(n))
				rel()
			}
		}(w)
	}
	wg.Wait()
	if p := peak.Load(); p > maxInflight {
		t.Fatalf("observed %d concurrent transactions, bound is %d", p, maxInflight)
	}
	if admitted.Load() != completed.Load() {
		t.Fatalf("admitted %d but completed %d — an accepted request was dropped", admitted.Load(), completed.Load())
	}
	if wrongErr.Load() != 0 {
		t.Fatalf("%d refusals were not ErrOverloaded", wrongErr.Load())
	}
	if g := a.inflight.Load(); g != 0 {
		t.Fatalf("inflight gauge = %d after all work released", g)
	}
	if a.shedInflight.Load() != shed.Load() {
		t.Fatalf("engine counted %d shed, test observed %d", a.shedInflight.Load(), shed.Load())
	}
	if shed.Load() == 0 {
		t.Fatal("no request was ever shed — the test never saturated the bound")
	}
}

// TestAdmitPerCallerIsolation: exhausting one caller's quota refuses
// that caller with ErrRateLimited while other callers (and the untagged
// "default" caller) keep being admitted — the noisy-neighbour property.
func TestAdmitPerCallerIsolation(t *testing.T) {
	srv, err := New(table(t), trainToy(t, 0), WithCallerQuota(0.0001, 2))
	if err != nil {
		t.Fatal(err)
	}
	ctxA := WithCallerContext(context.Background(), "noisy")
	tr := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 100}
	for i := 0; i < 2; i++ {
		if _, err := srv.Score(ctxA, &tr); err != nil {
			t.Fatalf("burst score %d: %v", i, err)
		}
	}
	if _, err := srv.Score(ctxA, &tr); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-quota score err = %v, want ErrRateLimited", err)
	}
	// A different caller has its own untouched bucket.
	ctxB := WithCallerContext(context.Background(), "quiet")
	if _, err := srv.Score(ctxB, &tr); err != nil {
		t.Fatalf("independent caller refused: %v", err)
	}
	// The untagged context is its own caller too.
	if _, err := srv.Score(context.Background(), &tr); err != nil {
		t.Fatalf("default caller refused: %v", err)
	}
	st := srv.AdmissionStats()
	if st.ShedQuota != 1 || st.Admitted != 4 {
		t.Fatalf("stats = %+v, want 4 admitted / 1 shed_quota", st)
	}
	if st.Callers != 3 {
		t.Fatalf("stats track %d callers, want 3", st.Callers)
	}
}

// TestAdmitBatchAndDecidePaths: batch scoring admits len(txns) tokens in
// one take, and the decide path runs through the same gate.
func TestAdmitBatchAndDecidePaths(t *testing.T) {
	srv, err := New(table(t), trainToy(t, 0), WithCallerQuota(0.0001, 3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithCallerContext(context.Background(), "batcher")
	txns := []txn.Transaction{
		{ID: 1, From: 1, To: 2, Amount: 10},
		{ID: 2, From: 3, To: 4, Amount: 20},
	}
	if _, err := srv.ScoreBatch(ctx, txns); err != nil {
		t.Fatalf("first batch: %v", err)
	}
	// One token left; a batch of two must be refused whole.
	if _, err := srv.ScoreBatch(ctx, txns); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("over-quota batch err = %v, want ErrRateLimited", err)
	}
	// The remaining token still serves a single.
	if _, err := srv.Score(ctx, &txns[0]); err != nil {
		t.Fatalf("final single score: %v", err)
	}
}

// TestHTTPShedTyped429: over HTTP both gates surface as status 429 with
// the distinguishing error code and a Retry-After header — overload
// degrades to a typed, retryable response, never a hung or dropped
// connection.
func TestHTTPShedTyped429(t *testing.T) {
	srv, err := New(table(t), trainToy(t, 0),
		WithCallerQuota(0.0001, 1), WithMaxInflight(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	score := func(caller string) *http.Response {
		body, _ := json.Marshal(TxnRequest{ID: 9, From: 1, To: 2, Amount: 100})
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/score", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		if caller != "" {
			req.Header.Set("X-Caller", caller)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Saturate the inflight bound from the library side (each holder is a
	// distinct caller so the 1-token quotas admit them), then hit HTTP.
	rel1, err := srv.Admit(WithCallerContext(context.Background(), "holder1"), 1)
	if err != nil {
		t.Fatal(err)
	}
	rel2, err := srv.Admit(WithCallerContext(context.Background(), "holder2"), 1)
	if err != nil {
		t.Fatal(err)
	}
	resp := score("hog")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 carries no Retry-After header")
	}
	if e := decodeEnvelope(t, resp); e.Code != "overloaded" {
		t.Fatalf("saturated code = %q, want overloaded", e.Code)
	}
	rel1()
	rel2()

	// With capacity back, the caller's single burst token admits once…
	resp = score("hog")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()
	// …and the next request trips the quota, typed rate_limited.
	resp = score("hog")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("quota 429 carries no Retry-After header")
	}
	if e := decodeEnvelope(t, resp); e.Code != "rate_limited" {
		t.Fatalf("over-quota code = %q, want rate_limited", e.Code)
	}
	// A different X-Caller is unaffected.
	resp = score("bystander")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bystander status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// The stats body carries the admission section.
	statsResp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var stats map[string]interface{}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	adm, ok := stats["admission"].(map[string]interface{})
	if !ok {
		t.Fatal("/v1/stats has no admission section")
	}
	if adm["shed_quota"].(float64) < 1 || adm["shed_inflight"].(float64) < 1 {
		t.Fatalf("admission stats = %v, want at least one shed on each gate", adm)
	}
	if !srv.Health().Admission {
		t.Fatal("healthz does not report admission enabled")
	}
}

// TestAdmitDisabledIsFree: an engine built without admission options
// admits everything and reports zero stats.
func TestAdmitDisabledIsFree(t *testing.T) {
	srv, err := New(table(t), trainToy(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if srv.AdmissionEnabled() {
		t.Fatal("admission reported enabled on a default engine")
	}
	rel, err := srv.Admit(context.Background(), 1_000_000)
	if err != nil {
		t.Fatalf("unlimited engine refused: %v", err)
	}
	rel()
	if st := srv.AdmissionStats(); st != (AdmissionStats{}) {
		t.Fatalf("stats = %+v, want zero value", st)
	}
}
