package ms

import (
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"titant/internal/decision"
	"titant/internal/ms/usercache"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// Request-body bounds: oversized payloads are rejected before they are
// buffered or parsed.
const (
	maxBundleBytes = 64 << 20 // POST /v1/models
	maxScoreBytes  = 1 << 20  // POST /v1/score
	maxBatchBytes  = 64 << 20 // POST /v1/score/batch hard ceiling
	maxPolicyBytes = 1 << 20  // POST /v1/policy
	// maxTxnJSONBytes generously bounds one transaction's wire size; the
	// batch body cap derives from it (clamped to maxBatchBytes) to keep
	// the parse cost proportional to the configured batch limit.
	maxTxnJSONBytes = 512
)

// TxnRequest is the JSON wire format of a scoring request.
type TxnRequest struct {
	ID         int64   `json:"id"`
	Day        int     `json:"day"`
	Sec        int32   `json:"sec"`
	From       int32   `json:"from"`
	To         int32   `json:"to"`
	Amount     float32 `json:"amount"`
	TransCity  uint16  `json:"trans_city"`
	DeviceRisk float32 `json:"device_risk"`
	IPRisk     float32 `json:"ip_risk"`
	Channel    uint8   `json:"channel"`
}

// Txn converts the wire format to the internal record.
func (r *TxnRequest) Txn() txn.Transaction {
	return txn.Transaction{
		ID: txn.TxnID(r.ID), Day: txn.Day(r.Day), Sec: r.Sec,
		From: txn.UserID(r.From), To: txn.UserID(r.To),
		Amount: r.Amount, TransCity: r.TransCity,
		DeviceRisk: r.DeviceRisk, IPRisk: r.IPRisk,
		Channel: txn.Channel(r.Channel),
	}
}

// BatchRequest is the wire format of POST /v1/score/batch.
type BatchRequest struct {
	Transactions []TxnRequest `json:"transactions"`
}

// IngestRequest is the wire format of POST /v1/ingest: a transaction plus
// its fraud label, if known. Completed transfers are ingested unlabelled
// as they happen; when a delayed fraud report arrives (days later, per
// the paper), the transaction is re-sent with fraud=true so the window's
// city fraud rates incorporate it.
type IngestRequest struct {
	TxnRequest
	Fraud bool `json:"fraud"`
}

// Txn converts the wire format to the internal record, label included.
func (r *IngestRequest) Txn() txn.Transaction {
	t := r.TxnRequest.Txn()
	t.Fraud = r.Fraud
	return t
}

// IngestBatchRequest is the wire format of POST /v1/ingest/batch.
type IngestBatchRequest struct {
	Transactions []IngestRequest `json:"transactions"`
}

// IngestResponse reports how many transactions an ingest call submitted
// to the live window. The window itself may still shed a submission as
// out-of-window (too old, or an uncorroborated far-future timestamp);
// those show up in the store's Dropped counter, not as request errors.
type IngestResponse struct {
	Ingested int `json:"ingested"`
}

// BatchResponse carries the batch verdicts in request order.
type BatchResponse struct {
	Verdicts []Verdict `json:"verdicts"`
}

// APIError is the JSON error envelope body of every non-2xx v1 response:
// {"error": {"code": "...", "message": "...", "trace_id": "..."}}. The
// trace ID ties the error to its request trace; it is present whenever
// the request passed through the trace middleware (all HTTP serving).
type APIError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	TraceID string `json:"trace_id,omitempty"`
}

type errorEnvelope struct {
	Error APIError `json:"error"`
}

// writeJSON marshals before touching the response so an unencodable value
// (e.g. a bundle whose threshold froze to +Inf on degenerate training
// data) yields a 500 envelope rather than a silent empty 200.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	data, err := json.Marshal(v)
	if err != nil {
		status = http.StatusInternalServerError
		data, _ = json.Marshal(errorEnvelope{APIError{
			Code: "internal", Message: "encode response: " + err.Error(),
		}})
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}

// writeError writes the error envelope, folding in the request's trace
// ID from the response header the trace middleware stamped — so the
// body of every error names the trace to grep for, without threading
// the ID through each handler.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorEnvelope{APIError{
		Code: code, Message: msg,
		TraceID: w.Header().Get(telemetry.TraceHeader),
	}})
}

// CheckBearer reports whether the request carries the given bearer token,
// comparing in constant time. Daemons adding their own model-management
// routes (e.g. cmd/msd's /reload) should guard them with the same check.
func CheckBearer(r *http.Request, token string) bool {
	return subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+token)) == 1
}

// writeScoreError maps the engine's typed errors onto HTTP statuses.
func writeScoreError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrRateLimited):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "rate_limited", err.Error())
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "overloaded", err.Error())
	case errors.Is(err, ErrUserNotFound):
		writeError(w, http.StatusNotFound, "user_not_found", err.Error())
	case errors.Is(err, ErrBatchTooLarge):
		writeError(w, http.StatusRequestEntityTooLarge, "batch_too_large", err.Error())
	case errors.Is(err, ErrStreamDisabled):
		writeError(w, http.StatusConflict, "stream_disabled", err.Error())
	case errors.Is(err, ErrPolicyDisabled):
		writeError(w, http.StatusConflict, "policy_disabled", err.Error())
	case errors.Is(err, ErrBundleInvalid):
		writeError(w, http.StatusInternalServerError, "bundle_invalid", err.Error())
	case errors.Is(err, ErrDimensionMismatch):
		writeError(w, http.StatusInternalServerError, "dimension_mismatch", err.Error())
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusServiceUnavailable, "canceled", err.Error())
	default:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
	}
}

// callerContext tags the request context with the admission caller
// identity carried by the X-Caller header, so per-caller quotas key on
// the client's declared identity (untagged requests share "default").
func callerContext(r *http.Request) context.Context {
	if c := r.Header.Get("X-Caller"); c != "" {
		return WithCallerContext(r.Context(), c)
	}
	return r.Context()
}

// decodeBody decodes a JSON request body capped at limit bytes, writing
// the appropriate envelope (413 for oversize, 400 for malformed) on
// failure.
func decodeBody(w http.ResponseWriter, r *http.Request, limit int64, v interface{}) bool {
	err := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit)).Decode(v)
	if err == nil {
		return true
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		writeError(w, http.StatusRequestEntityTooLarge, "body_too_large", err.Error())
	} else {
		writeError(w, http.StatusBadRequest, "bad_request", "malformed JSON: "+err.Error())
	}
	return false
}

// engineAPI is the serving surface the HTTP layer drives. Both the
// single-shard *Server and the horizontally sharded *ShardedEngine
// satisfy it, so the v1 wire protocol is engine-shape-agnostic: the same
// mux, auth, limits and error mapping serve one shard or N.
type engineAPI interface {
	Score(ctx context.Context, t *txn.Transaction) (Verdict, error)
	ScoreBatch(ctx context.Context, txns []txn.Transaction) ([]Verdict, error)
	Decide(ctx context.Context, t *txn.Transaction, sc decision.Scenario) (Decision, error)
	DecideBatch(ctx context.Context, txns []txn.Transaction, scenarios []decision.Scenario) ([]Decision, error)
	Ingest(t *txn.Transaction) error
	IngestBatch(txns []txn.Transaction) error
	Admit(ctx context.Context, n int) (func(), error)
	ModelInfo() ModelInfo
	SetBundle(b *Bundle) error
	currentPolicy() *decision.Policy
	SetPolicy(p *decision.Policy) error
	PolicyInfo() PolicyInfo
	StatsBody() map[string]interface{}
	MetricsBody() []byte
	TraceBody() map[string]interface{}
	Health() HealthInfo
}

// api binds one engine to the v1 mux along with the request-shaping
// configuration (batch limit, tokens, per-endpoint histograms) the
// handlers need outside the engine interface.
type api struct {
	e           engineAPI
	maxBatch    int
	modelToken  string
	ingestToken string
	ingestHist  *telemetry.Histogram
	decideHist  *telemetry.Histogram
	minter      *telemetry.Minter
}

// Handler returns the v1 HTTP mux:
//
//	POST /v1/score         score one transaction
//	POST /v1/score/batch   score a batch in order
//	POST /v1/decide        score + policy decision for one transaction
//	POST /v1/decide/batch  decide a batch in order
//	POST /v1/ingest        feed one observed transaction into the live window
//	POST /v1/ingest/batch  feed a batch into the live window
//	GET  /v1/models        active bundle metadata
//	POST /v1/models        hot-swap an encoded bundle
//	GET  /v1/policy        active decision-policy document
//	POST /v1/policy        hot-swap a JSON policy document
//	GET  /v1/stats         latency, decision, shadow and drift stats
//	GET  /healthz          readiness: versions + subsystem enablement
//
// The ingest routes answer 409 stream_disabled on an engine built without
// WithStreamAggregates and can be guarded with WithIngestToken; the
// decide routes answer 409 policy_disabled without WithPolicy, and
// POST /v1/policy shares WithModelToken's guard with POST /v1/models (a
// policy swap changes live risk decisions exactly as a model swap does).
// The pre-v1 routes POST /score and GET /stats remain as deprecated
// aliases.
func (s *Server) Handler() http.Handler {
	return (&api{
		e: s, maxBatch: s.maxBatch,
		modelToken: s.modelToken, ingestToken: s.ingestToken,
		ingestHist: s.ingestHist, decideHist: s.decideHist,
		minter: s.minter,
	}).handler()
}

// Handler returns the v1 HTTP mux over the sharded engine — the same
// routes, auth and error contract as Server.Handler, with batch bodies
// scattered across shards and stats/health merged fleet-wide.
func (se *ShardedEngine) Handler() http.Handler {
	return (&api{
		e: se, maxBatch: se.maxBatch,
		modelToken: se.modelToken, ingestToken: se.ingestToken,
		ingestHist: se.ingestHist, decideHist: se.decideHist,
		minter: se.minter,
	}).handler()
}

func (a *api) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/score", a.handleScore)
	mux.HandleFunc("/v1/score/batch", a.handleScoreBatch)
	mux.HandleFunc("/v1/decide", a.handleDecide)
	mux.HandleFunc("/v1/decide/batch", a.handleDecideBatch)
	mux.HandleFunc("/v1/ingest", a.handleIngest)
	mux.HandleFunc("/v1/ingest/batch", a.handleIngestBatch)
	mux.HandleFunc("/v1/models", a.handleModels)
	mux.HandleFunc("/v1/policy", a.handlePolicy)
	mux.HandleFunc("/v1/stats", a.handleStats)
	mux.HandleFunc("/v1/debug/trace", a.handleDebugTrace)
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	// Deprecated pre-v1 aliases.
	mux.HandleFunc("/score", a.handleScore)
	mux.HandleFunc("/stats", a.handleStats)
	return a.traceMiddleware(mux)
}

// traceMiddleware assigns every request its trace identity: a
// well-formed X-Trace-Id header is adopted (so a trace spans router →
// shard → response), anything else gets a freshly minted ID. The ID is
// stamped on the response header before the handler runs — success,
// error and degraded responses all carry it — and injected into the
// request context so the engine's span tracker can attribute stage
// timings to it.
func (a *api) traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id, ok := telemetry.ParseTraceID(r.Header.Get(telemetry.TraceHeader))
		if !ok {
			id = a.minter.Mint()
		}
		w.Header().Set(telemetry.TraceHeader, id.String())
		next.ServeHTTP(w, r.WithContext(telemetry.WithTrace(r.Context(), id)))
	})
}

// handleMetrics serves the Prometheus text exposition (format 0.0.4).
func (a *api) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(a.e.MetricsBody())
}

// handleDebugTrace serves the stage-timing and slow-exemplar dump.
func (a *api) handleDebugTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	writeJSON(w, http.StatusOK, a.e.TraceBody())
}

func (a *api) handleScore(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	var req TxnRequest
	if !decodeBody(w, r, maxScoreBytes, &req) {
		return
	}
	t := req.Txn()
	v, err := a.e.Score(callerContext(r), &t)
	if err != nil {
		writeScoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// batchBodyLimit derives a batch route's body cap from the engine's batch
// limit (clamped to the hard ceiling), keeping parse cost proportional to
// the configured batch size.
func (a *api) batchBodyLimit() int64 {
	limit := int64(maxBatchBytes)
	if a.maxBatch > 0 {
		if l := int64(a.maxBatch)*maxTxnJSONBytes + 1024; l < limit {
			limit = l
		}
	}
	return limit
}

func (a *api) handleScoreBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	var req BatchRequest
	if !decodeBody(w, r, a.batchBodyLimit(), &req) {
		return
	}
	// Reject oversize batches before converting, so a body of minimal
	// JSON objects can't cost a second large allocation.
	if a.maxBatch > 0 && len(req.Transactions) > a.maxBatch {
		writeScoreError(w, batchTooLarge(len(req.Transactions), a.maxBatch))
		return
	}
	txns := make([]txn.Transaction, len(req.Transactions))
	for i := range req.Transactions {
		txns[i] = req.Transactions[i].Txn()
	}
	verdicts, err := a.e.ScoreBatch(callerContext(r), txns)
	if err != nil {
		writeScoreError(w, err)
		return
	}
	if verdicts == nil {
		verdicts = []Verdict{}
	}
	writeJSON(w, http.StatusOK, BatchResponse{Verdicts: verdicts})
}

// DecideRequest is the wire format of POST /v1/decide: a transaction
// plus the scenario it arrived under (omitted or empty = default).
type DecideRequest struct {
	TxnRequest
	Scenario string `json:"scenario,omitempty"`
}

// DecideBatchRequest is the wire format of POST /v1/decide/batch.
type DecideBatchRequest struct {
	Transactions []DecideRequest `json:"transactions"`
}

// DecideBatchResponse carries the batch decisions in request order.
type DecideBatchResponse struct {
	Decisions []Decision `json:"decisions"`
}

func (a *api) handleDecide(w http.ResponseWriter, r *http.Request) {
	defer a.recordEndpoint(a.decideHist, time.Now())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	var req DecideRequest
	if !decodeBody(w, r, maxScoreBytes, &req) {
		return
	}
	sc, err := decision.ParseScenario(req.Scenario)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		return
	}
	t := req.TxnRequest.Txn()
	d, err := a.e.Decide(callerContext(r), &t, sc)
	if err != nil {
		writeScoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, d)
}

func (a *api) handleDecideBatch(w http.ResponseWriter, r *http.Request) {
	defer a.recordEndpoint(a.decideHist, time.Now())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	var req DecideBatchRequest
	if !decodeBody(w, r, a.batchBodyLimit(), &req) {
		return
	}
	if a.maxBatch > 0 && len(req.Transactions) > a.maxBatch {
		writeScoreError(w, batchTooLarge(len(req.Transactions), a.maxBatch))
		return
	}
	txns := make([]txn.Transaction, len(req.Transactions))
	scenarios := make([]decision.Scenario, len(req.Transactions))
	for i := range req.Transactions {
		sc, err := decision.ParseScenario(req.Transactions[i].Scenario)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", fmt.Sprintf("transaction %d: %v", i, err))
			return
		}
		txns[i] = req.Transactions[i].TxnRequest.Txn()
		scenarios[i] = sc
	}
	decisions, err := a.e.DecideBatch(callerContext(r), txns, scenarios)
	if err != nil {
		writeScoreError(w, err)
		return
	}
	if decisions == nil {
		decisions = []Decision{}
	}
	writeJSON(w, http.StatusOK, DecideBatchResponse{Decisions: decisions})
}

func (a *api) handlePolicy(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		pol := a.e.currentPolicy()
		if pol == nil {
			writeError(w, http.StatusNotFound, "policy_disabled", ErrPolicyDisabled.Error())
			return
		}
		raw, err := pol.Encode()
		if err != nil {
			writeError(w, http.StatusInternalServerError, "internal", err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(append(raw, '\n'))
	case http.MethodPost:
		// Same guard as POST /v1/models: a policy swap changes live risk
		// decisions exactly as a model swap does.
		if a.modelToken != "" && !CheckBearer(r, a.modelToken) {
			writeError(w, http.StatusUnauthorized, "unauthorized", "policy swap requires a valid bearer token")
			return
		}
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxPolicyBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, "policy_too_large", err.Error())
				return
			}
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		pol, err := decision.Parse(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "policy_invalid", err.Error())
			return
		}
		if err := a.e.SetPolicy(pol); err != nil {
			// Replace-only: decisioning cannot be switched on over the
			// wire when the operator left it off.
			if errors.Is(err, ErrPolicyDisabled) {
				writeError(w, http.StatusConflict, "policy_disabled", err.Error())
				return
			}
			writeError(w, http.StatusBadRequest, "policy_invalid", err.Error())
			return
		}
		writeJSON(w, http.StatusOK, a.e.PolicyInfo())
	default:
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET or POST only")
	}
}

// recordEndpoint lands one request's wall time in a per-endpoint
// histogram (deferred at handler entry, so errors are measured too).
func (a *api) recordEndpoint(h *telemetry.Histogram, start time.Time) {
	h.Record(time.Since(start))
}

// checkIngestAuth enforces the optional ingest bearer token, writing the
// 401 envelope on failure.
func (a *api) checkIngestAuth(w http.ResponseWriter, r *http.Request) bool {
	if a.ingestToken != "" && !CheckBearer(r, a.ingestToken) {
		writeError(w, http.StatusUnauthorized, "unauthorized", "ingest requires a valid bearer token")
		return false
	}
	return true
}

func (a *api) handleIngest(w http.ResponseWriter, r *http.Request) {
	defer a.recordEndpoint(a.ingestHist, time.Now())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	if !a.checkIngestAuth(w, r) {
		return
	}
	var req IngestRequest
	if !decodeBody(w, r, maxScoreBytes, &req) {
		return
	}
	// Ingest takes no context, so admission runs here: the one request
	// path that bypasses Score/Decide still honors quotas and the
	// inflight bound.
	release, err := a.e.Admit(callerContext(r), 1)
	if err != nil {
		writeScoreError(w, err)
		return
	}
	defer release()
	t := req.Txn()
	if err := a.e.Ingest(&t); err != nil {
		writeScoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Ingested: 1})
}

func (a *api) handleIngestBatch(w http.ResponseWriter, r *http.Request) {
	defer a.recordEndpoint(a.ingestHist, time.Now())
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "POST only")
		return
	}
	if !a.checkIngestAuth(w, r) {
		return
	}
	var req IngestBatchRequest
	if !decodeBody(w, r, a.batchBodyLimit(), &req) {
		return
	}
	if a.maxBatch > 0 && len(req.Transactions) > a.maxBatch {
		writeScoreError(w, batchTooLarge(len(req.Transactions), a.maxBatch))
		return
	}
	release, err := a.e.Admit(callerContext(r), len(req.Transactions))
	if err != nil {
		writeScoreError(w, err)
		return
	}
	defer release()
	txns := make([]txn.Transaction, len(req.Transactions))
	for i := range req.Transactions {
		txns[i] = req.Transactions[i].Txn()
	}
	if err := a.e.IngestBatch(txns); err != nil {
		writeScoreError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, IngestResponse{Ingested: len(txns)})
}

func (a *api) handleModels(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, a.e.ModelInfo())
	case http.MethodPost:
		if a.modelToken != "" && !CheckBearer(r, a.modelToken) {
			writeError(w, http.StatusUnauthorized, "unauthorized", "model swap requires a valid bearer token")
			return
		}
		raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBundleBytes))
		if err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge, "bundle_too_large", err.Error())
				return
			}
			writeError(w, http.StatusBadRequest, "bad_request", err.Error())
			return
		}
		b, err := DecodeBundle(raw)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bundle_invalid", err.Error())
			return
		}
		if err := a.e.SetBundle(b); err != nil {
			writeError(w, http.StatusBadRequest, "bundle_invalid", err.Error())
			return
		}
		writeJSON(w, http.StatusOK, a.e.ModelInfo())
	default:
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET or POST only")
	}
}

func (a *api) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	writeJSON(w, http.StatusOK, a.e.StatsBody())
}

// Stats-section builders shared by Server.StatsBody and
// ShardedEngine.StatsBody, so the two bodies cannot drift apart in shape.

func cacheStatsBody(cs usercache.Stats) map[string]interface{} {
	return map[string]interface{}{
		"hits": cs.Hits, "misses": cs.Misses, "collapsed": cs.Collapsed,
		"evictions": cs.Evictions, "invalidations": cs.Invalidations,
		"negatives": cs.Negatives, "size": cs.Size, "capacity": cs.Capacity,
	}
}

func policyStatsBody(version string, ds DecisionStats) map[string]interface{} {
	return map[string]interface{}{
		"version": version, "decided": ds.Decided,
		"approved": ds.Approved, "challenged": ds.Challenged,
		"denied": ds.Denied, "rule_overrides": ds.RuleOverrides,
	}
}

func admissionStatsBody(as AdmissionStats) map[string]interface{} {
	return map[string]interface{}{
		"admitted": as.Admitted, "shed_quota": as.ShedQuota,
		"shed_inflight": as.ShedInflight, "inflight": as.Inflight,
		"max_inflight": as.MaxInflight, "rate": as.Rate,
		"burst": as.Burst, "callers": as.Callers,
	}
}

func shadowStatsBody(version string, sh decision.ShadowStats, queueDepth int) map[string]interface{} {
	return map[string]interface{}{
		"challenger_version": version,
		"scored":             sh.Scored, "dropped": sh.Dropped,
		"errors": sh.Errors, "agreed": sh.Agreed, "flipped": sh.Flipped,
		"agreement": sh.Agreement, "mean_divergence": sh.MeanAbsDiff,
		"queue_depth": queueDepth,
	}
}

func driftStatsBody(series []decision.DriftStats) map[string]interface{} {
	// One snapshot pass: the top-level alert derives from the same
	// series the body reports, so the two cannot contradict.
	alert := false
	for i := range series {
		alert = alert || series[i].Alert
	}
	return map[string]interface{}{
		"alert":  alert,
		"series": series,
	}
}

// StatsBody builds the GET /v1/stats body. Every latency section carries
// both human-readable microsecond percentiles and the raw nanosecond
// histogram ("latency_hist" top-level, "hist" per endpoint): the raw
// buckets let the wire router merge shard bodies losslessly — counts sum
// and quantiles recompute, where merging pre-computed percentiles would
// be meaningless. "shards" reports the engine's width (1 here).
func (s *Server) StatsBody() map[string]interface{} {
	st := s.Latency()
	counts, total := s.hist.Snapshot()
	max := s.hist.Max()
	body := map[string]interface{}{
		"scored": st.Count, "alerted": st.Alerted,
		"p50_us": st.P50.Microseconds(), "p99_us": st.P99.Microseconds(),
		"max_us": st.Max.Microseconds(), "version": s.BundleVersion(),
		"shards":       1,
		"latency_hist": telemetry.HistBody(s.hist.Bounds(), counts, total, max),
	}
	endpoints := map[string]interface{}{}
	if s.StreamEnabled() {
		body["ingested"] = s.Ingested()
		endpoints["ingest"] = endpointStats(s.ingestHist)
	}
	if s.UserCacheEnabled() {
		body["user_cache"] = cacheStatsBody(s.UserCacheStats())
	}
	if s.PolicyEnabled() {
		body["policy"] = policyStatsBody(s.PolicyVersion(), s.DecisionStats())
		endpoints["decide"] = endpointStats(s.decideHist)
	}
	if len(endpoints) > 0 {
		body["endpoints"] = endpoints
	}
	if s.AdmissionEnabled() {
		body["admission"] = admissionStatsBody(s.AdmissionStats())
	}
	if s.ShadowEnabled() {
		body["shadow"] = shadowStatsBody(s.ShadowVersion(), s.ShadowStats(), s.ShadowQueueDepth())
	}
	if s.EventLogEnabled() {
		es := s.EventLogStats()
		body["eventlog"] = map[string]interface{}{
			"appended": es.Appended, "fsyncs": es.Fsyncs, "bytes": es.Bytes,
			"segments": es.Segments, "first_offset": es.FirstOffset,
			"next_offset": es.NextOffset, "unsynced_bytes": es.UnsyncedBytes,
			"last_fsync_age_seconds": es.LastFsyncAge,
			"snapshot_end":           es.SnapshotEnd,
			"max_consumer_lag":       es.MaxLag,
			"replayed":               s.EventLogReplayed(),
			"append_errors":          s.elogErrs.Load(),
		}
	}
	if series := s.DriftStats(); series != nil {
		body["drift"] = driftStatsBody(series)
	}
	return body
}

// endpointStats snapshots one per-endpoint latency histogram for the
// stats body, percentiles plus the raw buckets the router merges by.
func endpointStats(h *telemetry.Histogram) map[string]interface{} {
	counts, total := h.Snapshot()
	max := h.Max()
	return map[string]interface{}{
		"count":  total,
		"p50_us": telemetry.Quantile(h.Bounds(), counts, total, max, 0.50).Microseconds(),
		"p99_us": telemetry.Quantile(h.Bounds(), counts, total, max, 0.99).Microseconds(),
		"max_us": max.Microseconds(),
		"hist":   telemetry.HistBody(h.Bounds(), counts, total, max),
	}
}

// HealthInfo is the GET /healthz readiness body: which bundle and policy
// versions are live and which serving subsystems are enabled, so a
// deployment controller can verify a daemon actually carries the
// configuration it was rolled out with instead of trusting a bare 200.
type HealthInfo struct {
	Status        string `json:"status"`
	BundleVersion string `json:"bundle_version"`
	PolicyVersion string `json:"policy_version,omitempty"`
	Stream        bool   `json:"stream"`
	Admission     bool   `json:"admission"`
	UserCache     bool   `json:"user_cache"`
	Policy        bool   `json:"policy"`
	Shadow        bool   `json:"shadow"`
	Drift         bool   `json:"drift"`
	DriftAlert    bool   `json:"drift_alert,omitempty"`
	EventLog      bool   `json:"event_log"`
	Replayed      int64  `json:"replayed,omitempty"`
	Shards        int    `json:"shards,omitempty"` // >1 on a sharded engine
}

// Health snapshots the readiness view served by GET /healthz.
func (s *Server) Health() HealthInfo {
	return HealthInfo{
		Status:        "ok",
		BundleVersion: s.BundleVersion(),
		PolicyVersion: s.PolicyVersion(),
		Stream:        s.StreamEnabled(),
		Admission:     s.AdmissionEnabled(),
		UserCache:     s.UserCacheEnabled(),
		Policy:        s.PolicyEnabled(),
		Shadow:        s.ShadowEnabled(),
		Drift:         s.DriftEnabled(),
		DriftAlert:    s.DriftAlerted(),
		EventLog:      s.EventLogEnabled(),
		Replayed:      s.EventLogReplayed(),
	}
}

func (a *api) handleHealthz(w http.ResponseWriter, r *http.Request) {
	// HEAD stays allowed: load balancers commonly probe liveness with it
	// (net/http suppresses the body automatically).
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "GET only")
		return
	}
	writeJSON(w, http.StatusOK, a.e.Health())
}

// ListenAndServe serves the v1 API on addr until ctx is cancelled, then
// shuts down gracefully, draining in-flight requests for up to five
// seconds. It returns nil after a clean shutdown.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	return ListenAndServe(ctx, addr, s.Handler())
}

// ListenAndServe serves the sharded v1 API on addr with the same
// graceful-shutdown contract as Server.ListenAndServe.
func (se *ShardedEngine) ListenAndServe(ctx context.Context, addr string) error {
	return ListenAndServe(ctx, addr, se.Handler())
}

// ListenAndServe serves handler on addr with the same graceful-shutdown
// contract as Server.ListenAndServe, for daemons that wrap the v1 mux
// with extra routes.
func ListenAndServe(ctx context.Context, addr string, handler http.Handler) error {
	hs := &http.Server{Addr: addr, Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		serr := hs.Shutdown(sctx)
		// Surface a startup failure (e.g. address already in use) that
		// raced the cancellation instead of reporting a clean shutdown.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return serr
	}
}
