package ms

import (
	"fmt"
	"sync"
	"sync/atomic"

	"titant/internal/decision"
	"titant/internal/feature"
	"titant/internal/txn"
)

// DefaultShadowQueue is the bounded shadow-queue capacity of an engine
// built with WithShadow but no WithShadowQueue.
const DefaultShadowQueue = 1024

// shadowRunner scores a challenger bundle against the champion's live
// traffic, asynchronously: every scored transaction is offered to a
// bounded queue with a non-blocking send (overflow is shed and counted,
// so a slow challenger can never back-pressure the scoring hot path),
// and a single worker drains the queue, re-running the full serve path —
// user fetch, assembly, ensemble — against the challenger and recording
// the champion/challenger comparison in the meter.
//
// The challenger reads users through the same store (and cache) as the
// champion but always scores against its own bundle's frozen city
// table: shadow evaluation answers "what would this bundle have said",
// and that bundle froze its own statistics at training time.
type shadowRunner struct {
	s      *Server
	bundle *Bundle
	meter  decision.ShadowMeter
	jobs   chan shadowJob
	quit   chan struct{}
	wg     sync.WaitGroup
	once   sync.Once

	// epoch counts champion swaps. Jobs are stamped at enqueue and the
	// worker discards any whose epoch is stale, so a queue backlog of
	// old-champion comparisons cannot pollute the new champion's
	// agreement statistics after SetBundle resets the meter.
	epoch atomic.Int64
}

// shadowJob carries one champion-scored transaction to the worker. The
// transaction is copied by value: the caller's slice may be reused the
// moment its request completes.
type shadowJob struct {
	t          txn.Transaction
	champScore float64
	champFraud bool
	epoch      int64
}

// newShadowRunner validates the challenger and starts the worker.
func newShadowRunner(s *Server, challenger *Bundle, queue int) (*shadowRunner, error) {
	if err := challenger.validate(); err != nil {
		return nil, fmt.Errorf("shadow challenger: %w", err)
	}
	if queue <= 0 {
		queue = DefaultShadowQueue
	}
	r := &shadowRunner{
		s:      s,
		bundle: challenger,
		jobs:   make(chan shadowJob, queue),
		quit:   make(chan struct{}),
	}
	r.wg.Add(1)
	go r.run()
	return r, nil
}

// enqueue offers one scored transaction to the shadow queue. Never
// blocks: a full queue sheds the job and counts the drop. epoch is the
// epoch the champion score was computed under, not the current one — a
// swap between scoring and enqueue must mark the job stale.
func (r *shadowRunner) enqueue(t *txn.Transaction, v *Verdict, epoch int64) {
	select {
	case r.jobs <- shadowJob{t: *t, champScore: v.Score, champFraud: v.Fraud, epoch: epoch}:
	default:
		r.meter.Drop()
	}
}

// championSwapped starts a new comparison epoch: queued jobs from the
// departed champion will be discarded by the worker, and the meter
// starts over.
func (r *shadowRunner) championSwapped() {
	r.epoch.Add(1)
	r.meter.Reset()
}

// run is the worker loop. Quitting wins over draining: a Close during a
// burst abandons queued jobs, which is the right trade for a metrics
// path.
func (r *shadowRunner) run() {
	defer r.wg.Done()
	for {
		select {
		case <-r.quit:
			return
		case j := <-r.jobs:
			if j.epoch != r.epoch.Load() {
				continue // stale champion's job; its comparison is meaningless
			}
			r.scoreOne(&j)
		}
	}
}

// scoreOne runs the challenger over one job and records the comparison.
// Failures (unknown user under a strict engine, embedding-width mismatch
// against the challenger's declared dimension) count as errors rather
// than comparisons.
func (r *shadowRunner) scoreOne(j *shadowJob) {
	b := r.bundle
	ens, err := b.runtime()
	if err != nil {
		r.meter.Error()
		return
	}
	from, to, err := r.s.fetchPair(j.t.From, j.t.To)
	if err != nil {
		r.meter.Error()
		return
	}
	m := getMatrix(1, feature.NumBasic+2*b.EmbeddingDim)
	defer putMatrix(m)
	if err := assembleRow(&j.t, &from, &to, b, &b.City, m.Row(0)); err != nil {
		r.meter.Error()
		return
	}
	var combined [1]float64
	if err := ens.score(combined[:], nil, m); err != nil {
		r.meter.Error()
		return
	}
	// recordShadow logs the comparison before counting it when the
	// engine has an event log, so a replayed meter matches this one.
	r.s.recordShadow(r, j, combined[0], combined[0] >= b.Threshold)
}

// close stops the worker and waits for it. Idempotent.
func (r *shadowRunner) close() {
	r.once.Do(func() {
		close(r.quit)
		r.wg.Wait()
	})
}
