package ms

import (
	"encoding/gob"
	"errors"
	"testing"

	"titant/internal/feature"
	"titant/internal/model"
	"titant/internal/model/gbdt"
	"titant/internal/model/iforest"
	"titant/internal/model/lr"
	"titant/internal/model/ruletree"
	"titant/internal/rng"
)

// trainWidth builds a small labelled training matrix of the serving width
// (52 basic features, no embeddings) with a learnable amount rule.
func trainWidth(rows int) (*feature.Matrix, []bool) {
	r := rng.New(5)
	m := feature.NewMatrix(rows, feature.NumBasic)
	labels := make([]bool, rows)
	for i := 0; i < rows; i++ {
		for j := 0; j < feature.NumBasic; j++ {
			m.Set(i, j, r.Float64())
		}
		amt := r.Float64() * 2000
		m.Set(i, 0, amt)
		labels[i] = amt > 1200
	}
	return m, labels
}

// trainedDetectors returns one small trained model per paper detector,
// all on the same 52-feature matrix.
func trainedDetectors(t testing.TB) map[string]model.Classifier {
	t.Helper()
	m, labels := trainWidth(400)
	return map[string]model.Classifier{
		"gbdt": gbdt.Train(m, labels, gbdt.Config{
			Trees: 20, Depth: 3, LearningRate: 0.2, Subsample: 0.8,
			ColSample: 0.8, Bins: 16, MinLeaf: 5, Lambda: 1, Seed: 1,
		}),
		"lr": lr.Train(m, labels, lr.Config{
			Bins: 16, L1: 0.01, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 4, Seed: 1,
		}),
		"c50":     ruletree.Train(m, labels, ruletree.DefaultC50()),
		"iforest": iforest.Train(m, iforest.Config{Trees: 10, SampleSize: 64, Seed: 1}),
	}
}

// Every concrete detector must survive the bundle encode/decode cycle —
// this guards the gob registrations the blank imports above pull in.
func TestBundleRoundTripEachDetector(t *testing.T) {
	city := feature.CityTable{Fraud: []float64{0.01}, Share: []float64{1}}
	probe, _ := trainWidth(5)
	for name, clf := range trainedDetectors(t) {
		b, err := NewBundle("v-"+name, clf, 0.5, city, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		raw, err := b.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		got, err := DecodeBundle(raw)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		dec, err := got.Classifier()
		if err != nil {
			t.Fatalf("%s: classifier: %v", name, err)
		}
		for i := 0; i < probe.Rows; i++ {
			if dec.Score(probe.Row(i)) != clf.Score(probe.Row(i)) {
				t.Fatalf("%s: decoded classifier scores differ", name)
			}
		}
		if got.NumMembers() != 1 {
			t.Fatalf("%s: NumMembers = %d", name, got.NumMembers())
		}
	}
}

// A v2 ensemble of all four detectors round-trips with member order,
// weights, thresholds and scores intact.
func TestEnsembleBundleRoundTrip(t *testing.T) {
	city := feature.CityTable{Fraud: []float64{0.01}, Share: []float64{1}}
	dets := trainedDetectors(t)
	members := []EnsembleMember{
		{Name: "gbdt", Clf: dets["gbdt"], Weight: 2, Threshold: 0.5},
		{Name: "lr", Clf: dets["lr"], Threshold: 0.5},
		{Name: "c50", Clf: dets["c50"], Threshold: 0.5},
		{Name: "iforest", Clf: dets["iforest"], Threshold: 0.6},
	}
	b, err := NewEnsembleBundle("ens-1", members, CombineMean, 0.5, city, 0)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumMembers() != 4 || got.Combine != CombineMean {
		t.Fatalf("decoded bundle: members=%d combine=%v", got.NumMembers(), got.Combine)
	}
	for i, want := range members {
		m := &got.Members[i]
		if m.Name != want.Name || m.Threshold != want.Threshold {
			t.Fatalf("member %d = %+v, want %+v", i, m, want)
		}
	}
	// Combined and per-member scores survive the cycle bit-for-bit.
	probe, _ := trainWidth(16)
	score := func(b *Bundle) ([]float64, [][]float64) {
		dst := make([]float64, probe.Rows)
		member := make([][]float64, 4)
		for k := range member {
			member[k] = make([]float64, probe.Rows)
		}
		if err := b.ScoreMatrix(dst, member, probe); err != nil {
			t.Fatal(err)
		}
		return dst, member
	}
	wantDst, wantMember := score(b)
	gotDst, gotMember := score(got)
	for i := range wantDst {
		if gotDst[i] != wantDst[i] {
			t.Fatalf("combined score %d differs", i)
		}
		for k := range wantMember {
			if gotMember[k][i] != wantMember[k][i] {
				t.Fatalf("member %d score %d differs", k, i)
			}
		}
	}
}

// fixedModel scores every vector with a constant, making combiner math
// checkable by hand.
type fixedModel struct {
	V float64
	N int
}

func (f *fixedModel) Score(x []float64) float64 { return f.V }
func (f *fixedModel) NumFeatures() int          { return f.N }

func init() { gob.Register(&fixedModel{}) }

func fixedEnsemble(t *testing.T, combine Combiner, members ...EnsembleMember) *Bundle {
	t.Helper()
	city := feature.CityTable{Fraud: []float64{0.01}, Share: []float64{1}}
	b, err := NewEnsembleBundle("fixed", members, combine, 0.5, city, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCombinerMath(t *testing.T) {
	lo := EnsembleMember{Name: "lo", Clf: &fixedModel{V: 0.2, N: feature.NumBasic}, Threshold: 0.5}
	hi := EnsembleMember{Name: "hi", Clf: &fixedModel{V: 0.8, N: feature.NumBasic}, Threshold: 0.5}
	m := feature.NewMatrix(3, feature.NumBasic)
	// Expected values must use runtime float arithmetic (matching the
	// combiner's rounding), not constant-folded exact expressions.
	w1, w2, s1, s2 := 3.0, 1.0, 0.2, 0.8
	wantWeightedMean := (w1*s1 + w2*s2) / (w1 + w2)
	cases := []struct {
		name string
		b    *Bundle
		want float64
	}{
		{"mean", fixedEnsemble(t, CombineMean, lo, hi), 0.5},
		{"weighted-mean", fixedEnsemble(t, CombineMean,
			EnsembleMember{Name: "lo", Clf: lo.Clf, Weight: 3},
			EnsembleMember{Name: "hi", Clf: hi.Clf, Weight: 1}), wantWeightedMean},
		{"max", fixedEnsemble(t, CombineMax, lo, hi), 0.8},
		{"vote-half", fixedEnsemble(t, CombineVote, lo, hi), 0.5},
		{"vote-weighted", fixedEnsemble(t, CombineVote,
			EnsembleMember{Name: "lo", Clf: lo.Clf, Weight: 1, Threshold: 0.5},
			EnsembleMember{Name: "hi", Clf: hi.Clf, Weight: 3, Threshold: 0.5}), 0.75},
		{"vote-single", fixedEnsemble(t, CombineVote, hi), 1},
	}
	for _, tc := range cases {
		dst := make([]float64, m.Rows)
		if err := tc.b.ScoreMatrix(dst, nil, m); err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		for i, got := range dst {
			if got != tc.want {
				t.Fatalf("%s row %d: %v, want %v", tc.name, i, got, tc.want)
			}
		}
	}
}

func TestEnsembleBundleValidation(t *testing.T) {
	city := feature.CityTable{Fraud: []float64{0.01}, Share: []float64{1}}
	ok := &fixedModel{V: 0.5, N: feature.NumBasic}
	if _, err := NewEnsembleBundle("e", nil, CombineMean, 0.5, city, 0); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("empty ensemble: %v", err)
	}
	if _, err := NewEnsembleBundle("e", []EnsembleMember{
		{Name: "a", Clf: ok}, {Name: "a", Clf: ok},
	}, CombineMean, 0.5, city, 0); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("duplicate names: %v", err)
	}
	if _, err := NewEnsembleBundle("e", []EnsembleMember{
		{Name: "", Clf: ok},
	}, CombineMean, 0.5, city, 0); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("unnamed member: %v", err)
	}
	if _, err := NewEnsembleBundle("e", []EnsembleMember{
		{Name: "narrow", Clf: &fixedModel{V: 0.5, N: 3}},
	}, CombineMean, 0.5, city, 0); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("width mismatch: %v", err)
	}
	if _, err := NewEnsembleBundle("e", []EnsembleMember{
		{Name: "a", Clf: ok},
	}, Combiner(9), 0.5, city, 0); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("unknown combiner: %v", err)
	}
	// A bundle carrying both formats at once is corrupt.
	b := fixedEnsemble(t, CombineMean, EnsembleMember{Name: "a", Clf: ok})
	mb, err := model.Encode(ok)
	if err != nil {
		t.Fatal(err)
	}
	b.ModelBytes = mb
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBundle(raw); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("dual-format bundle: %v", err)
	}
}

func TestParseCombiner(t *testing.T) {
	for s, want := range map[string]Combiner{"mean": CombineMean, "max": CombineMax, "vote": CombineVote} {
		got, err := ParseCombiner(s)
		if err != nil || got != want {
			t.Fatalf("ParseCombiner(%q) = %v, %v", s, got, err)
		}
		if got.String() != s {
			t.Fatalf("String() = %q, want %q", got.String(), s)
		}
	}
	if _, err := ParseCombiner("median"); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("unknown combiner name: %v", err)
	}
}
