package ms

import (
	"sync"

	"titant/internal/feature"
)

// Pooled scratch for the batch-native scoring path: the per-batch feature
// matrix, the combined-score slice and the per-member score slices are
// recycled across requests. (Members that discretise still allocate their
// own per-batch Binned buffer inside ScoreBatch; the engine-level scratch
// here is what stays allocation-free.)

var matrixPool = sync.Pool{New: func() any { return &feature.Matrix{} }}

// getMatrix returns a zeroed rows×cols matrix from the pool. Zeroing is
// required, not cosmetic: absent embeddings rely on zero-filled slots.
func getMatrix(rows, cols int) *feature.Matrix {
	m := matrixPool.Get().(*feature.Matrix)
	need := rows * cols
	if cap(m.Data) < need {
		m.Data = make([]float64, need)
	} else {
		m.Data = m.Data[:need]
		clear(m.Data)
	}
	m.Rows, m.Cols = rows, cols
	return m
}

func putMatrix(m *feature.Matrix) { matrixPool.Put(m) }

var scoresPool = sync.Pool{New: func() any { return &[][]float64{} }}

// getMemberScores returns members slices of rows float64 each, reusing
// pooled backing storage. Contents are unspecified; every slot is written
// by the member's batch scorer before it is read.
func getMemberScores(members, rows int) [][]float64 {
	s := *scoresPool.Get().(*[][]float64)
	if cap(s) < members {
		s = make([][]float64, members)
	} else {
		s = s[:members]
	}
	for k := range s {
		if cap(s[k]) < rows {
			s[k] = make([]float64, rows)
		} else {
			s[k] = s[k][:rows]
		}
	}
	return s
}

func putMemberScores(s [][]float64) { scoresPool.Put(&s) }

var vecPool = sync.Pool{New: func() any { return &[]float64{} }}

// getVec returns an n-slot float64 slice with unspecified contents; every
// slot is written by the combiner before it is read.
func getVec(n int) []float64 {
	v := *vecPool.Get().(*[]float64)
	if cap(v) < n {
		v = make([]float64, n)
	}
	return v[:n]
}

func putVec(v []float64) { vecPool.Put(&v) }
