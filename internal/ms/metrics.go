package ms

import (
	"strconv"

	"titant/internal/telemetry"
)

// Prometheus exposition for the serving tiers. Every counter on
// GET /v1/stats has a series here, named titant_<subsystem>_<name> with
// labels drawn from {shard, endpoint, stage, member, caller}; latency
// surfaces as native histogram families so dashboards can recompute any
// quantile. Server.MetricsBody renders one engine; the sharded engine
// renders each shard with a shard label plus its fleet-level gates; the
// wire router (internal/router) self-scrapes these pages and re-labels.

// bool01 renders an enablement/alert flag as a 0/1 gauge value.
func bool01(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// MetricsBody renders the engine's Prometheus text exposition.
func (s *Server) MetricsBody() []byte {
	e := telemetry.NewExpo()
	s.fillMetrics(e, true)
	e.Gauge("titant_engine_shards", "engine shard count", 1)
	return e.Bytes()
}

// MetricsBody renders the fleet exposition: every shard's series with a
// shard label, plus the series owned by the sharded front door itself
// (admission, the HTTP endpoint histograms, and the shared stream
// window's ingest counter, which would multiply-count if summed per
// shard).
func (se *ShardedEngine) MetricsBody() []byte {
	e := telemetry.NewExpo()
	for i, s := range se.shards {
		s.fillMetrics(e, false, "shard", strconv.Itoa(i))
	}
	if se.StreamEnabled() {
		e.Counter("titant_ingest_ingested_total", "transactions accepted into the live window", float64(se.Ingested()))
		endpointMetrics(e, "ingest", se.ingestHist)
	}
	if se.PolicyEnabled() {
		endpointMetrics(e, "decide", se.decideHist)
	}
	admissionMetrics(e, se.adm)
	e.Gauge("titant_engine_shards", "engine shard count", float64(len(se.shards)))
	return e.Bytes()
}

// fillMetrics emits one engine's series into e under the given extra
// labels. topLevel marks an engine fronting its own HTTP surface: only
// then does it own the endpoint request histograms, the admission gate
// and the shared stream window's ingest counter — inside a sharded
// fleet those live at the front door, not on the shards.
func (s *Server) fillMetrics(e *telemetry.Expo, topLevel bool, labels ...string) {
	lbl := func(extra ...string) []string {
		return append(append(make([]string, 0, len(labels)+len(extra)), labels...), extra...)
	}

	e.Counter("titant_scoring_scored_total", "transactions scored", float64(s.scored.Load()), labels...)
	e.Counter("titant_scoring_alerted_total", "transactions scored at or above the alert threshold", float64(s.alerted.Load()), labels...)
	counts, _ := s.hist.Snapshot()
	e.Histogram("titant_scoring_latency_seconds", "per-transaction scoring latency", s.hist.Bounds(), counts, int64(s.hist.Sum()), labels...)
	e.Gauge("titant_bundle_info", "active bundle metadata (value is always 1)", 1, lbl("version", s.BundleVersion())...)

	// Per-stage hot-path histograms from the span tracker.
	for _, name := range s.tel.Endpoints() {
		et := s.tel.Endpoint(name)
		for st := telemetry.Stage(0); st < telemetry.NumStages; st++ {
			h := et.StageHistogram(st)
			if h.Total() == 0 {
				continue
			}
			sc, _ := h.Snapshot()
			e.Histogram("titant_stage_latency_seconds", "hot-path stage latency by endpoint",
				h.Bounds(), sc, int64(h.Sum()), lbl("endpoint", name, "stage", st.String())...)
		}
	}

	if topLevel {
		if s.StreamEnabled() {
			e.Counter("titant_ingest_ingested_total", "transactions accepted into the live window", float64(s.Ingested()), labels...)
			endpointMetrics(e, "ingest", s.ingestHist, labels...)
		}
		if s.PolicyEnabled() {
			endpointMetrics(e, "decide", s.decideHist, labels...)
		}
		admissionMetrics(e, s.adm, labels...)
	}

	if s.UserCacheEnabled() {
		cs := s.UserCacheStats()
		e.Counter("titant_user_cache_hits_total", "user cache hits", float64(cs.Hits), labels...)
		e.Counter("titant_user_cache_misses_total", "user cache misses", float64(cs.Misses), labels...)
		e.Counter("titant_user_cache_collapsed_total", "concurrent misses collapsed to one load", float64(cs.Collapsed), labels...)
		e.Counter("titant_user_cache_evictions_total", "user cache evictions", float64(cs.Evictions), labels...)
		e.Counter("titant_user_cache_invalidations_total", "user cache invalidations", float64(cs.Invalidations), labels...)
		e.Gauge("titant_user_cache_negatives", "negative (user-not-found) entries held", float64(cs.Negatives), labels...)
		e.Gauge("titant_user_cache_size", "user cache entries held", float64(cs.Size), labels...)
		e.Gauge("titant_user_cache_capacity", "user cache entry capacity", float64(cs.Capacity), labels...)
	}

	if s.PolicyEnabled() {
		ds := s.DecisionStats()
		e.Gauge("titant_policy_info", "active policy metadata (value is always 1)", 1, lbl("version", s.PolicyVersion())...)
		e.Counter("titant_decisions_total", "policy decisions by action", float64(ds.Approved), lbl("action", "approve")...)
		e.Counter("titant_decisions_total", "policy decisions by action", float64(ds.Challenged), lbl("action", "challenge")...)
		e.Counter("titant_decisions_total", "policy decisions by action", float64(ds.Denied), lbl("action", "deny")...)
		e.Counter("titant_decision_rule_overrides_total", "decisions where a rule overrode the model bands", float64(ds.RuleOverrides), labels...)
	}

	if s.ShadowEnabled() {
		sh := s.ShadowStats()
		e.Gauge("titant_shadow_info", "challenger bundle metadata (value is always 1)", 1, lbl("version", s.ShadowVersion())...)
		e.Counter("titant_shadow_scored_total", "champion/challenger comparisons completed", float64(sh.Scored), labels...)
		e.Counter("titant_shadow_dropped_total", "shadow jobs shed on queue overflow", float64(sh.Dropped), labels...)
		e.Counter("titant_shadow_errors_total", "challenger-side scoring failures", float64(sh.Errors), labels...)
		e.Counter("titant_shadow_agreed_total", "comparisons where champion and challenger agreed", float64(sh.Agreed), labels...)
		e.Counter("titant_shadow_flipped_total", "comparisons where the challenger would flip the verdict", float64(sh.Flipped), labels...)
		e.Gauge("titant_shadow_agreement", "champion/challenger verdict agreement ratio", sh.Agreement, labels...)
		e.Gauge("titant_shadow_mean_divergence", "mean absolute champion-challenger score divergence", sh.MeanAbsDiff, labels...)
		e.Gauge("titant_shadow_queue_depth", "transactions waiting for the shadow worker", float64(s.ShadowQueueDepth()), labels...)
	}

	if s.EventLogEnabled() {
		es := s.EventLogStats()
		e.Counter("titant_eventlog_appended_total", "events appended to the durable log", float64(es.Appended), labels...)
		e.Counter("titant_eventlog_fsyncs_total", "event log fsync calls", float64(es.Fsyncs), labels...)
		e.Counter("titant_eventlog_bytes_total", "bytes appended to the event log", float64(es.Bytes), labels...)
		e.Counter("titant_eventlog_replayed_total", "events replayed at startup recovery", float64(s.EventLogReplayed()), labels...)
		e.Counter("titant_eventlog_append_errors_total", "event log append failures", float64(s.elogErrs.Load()), labels...)
		e.Gauge("titant_eventlog_segments", "event log segment files on disk", float64(es.Segments), labels...)
		e.Gauge("titant_eventlog_first_offset", "oldest retained event offset", float64(es.FirstOffset), labels...)
		e.Gauge("titant_eventlog_next_offset", "next event offset to be assigned", float64(es.NextOffset), labels...)
		e.Gauge("titant_eventlog_unsynced_bytes", "appended bytes not yet fsynced", float64(es.UnsyncedBytes), labels...)
		e.Gauge("titant_eventlog_last_fsync_age_seconds", "seconds since the last fsync", es.LastFsyncAge, labels...)
		e.Gauge("titant_eventlog_snapshot_end", "offset the newest snapshot covers through", float64(es.SnapshotEnd), labels...)
		e.Gauge("titant_eventlog_max_consumer_lag", "largest consumer offset lag", float64(es.MaxLag), labels...)
	}

	if series := s.DriftStats(); series != nil {
		e.Gauge("titant_drift_alert", "1 when any score series crosses its drift thresholds", bool01(s.DriftAlerted()), labels...)
		for i := range series {
			dl := lbl("member", series[i].Name)
			e.Counter("titant_drift_baseline_total", "scores frozen into the drift baseline", float64(series[i].BaselineCount), dl...)
			e.Counter("titant_drift_live_total", "scores observed into the live drift window", float64(series[i].LiveCount), dl...)
			e.Gauge("titant_drift_psi", "population stability index vs the baseline", series[i].PSI, dl...)
			e.Gauge("titant_drift_ks", "Kolmogorov-Smirnov distance vs the baseline", series[i].KS, dl...)
		}
	}
}

// endpointMetrics emits one HTTP endpoint's request-latency histogram.
func endpointMetrics(e *telemetry.Expo, endpoint string, h *telemetry.Histogram, labels ...string) {
	counts, _ := h.Snapshot()
	el := append(append(make([]string, 0, len(labels)+2), labels...), "endpoint", endpoint)
	e.Histogram("titant_endpoint_latency_seconds", "HTTP request latency by endpoint", h.Bounds(), counts, int64(h.Sum()), el...)
}

// admissionMetrics emits the admission gate's series, per-caller
// counters included (nil gate: admission is off, nothing to report).
func admissionMetrics(e *telemetry.Expo, a *admission, labels ...string) {
	if a == nil {
		return
	}
	lbl := func(extra ...string) []string {
		return append(append(make([]string, 0, len(labels)+len(extra)), labels...), extra...)
	}
	st := a.stats()
	for _, ca := range a.callerSnapshot() {
		cl := lbl("caller", ca.name)
		e.Counter("titant_admission_admitted_total", "transactions admitted by caller", float64(ca.admitted), cl...)
		e.Counter("titant_admission_shed_quota_total", "transactions refused by caller quotas", float64(ca.shedQuota), cl...)
		e.Counter("titant_admission_shed_inflight_total", "transactions refused by the inflight bound", float64(ca.shedInflight), cl...)
	}
	e.Gauge("titant_admission_inflight", "transactions currently inside the engine", float64(st.Inflight), labels...)
	e.Gauge("titant_admission_max_inflight", "inflight bound (0: unbounded)", float64(st.MaxInflight), labels...)
	e.Gauge("titant_admission_rate", "per-caller sustained quota in tx/s (0: no quota)", st.Rate, labels...)
	e.Gauge("titant_admission_burst", "per-caller burst allowance", st.Burst, labels...)
	e.Gauge("titant_admission_callers", "distinct callers holding exact quota buckets", float64(st.Callers), labels...)
}

// TraceBody renders the engine's GET /v1/debug/trace dump.
func (s *Server) TraceBody() map[string]interface{} {
	return telemetry.TraceBody(s.tel)
}

// TraceBody merges every shard's span tracker into one fleet dump: stage
// histograms sum bucket-wise and the slow-exemplar rings re-rank into a
// fleet-wide top K per endpoint.
func (se *ShardedEngine) TraceBody() map[string]interface{} {
	trackers := make([]*telemetry.Tracker, len(se.shards))
	for i, s := range se.shards {
		trackers[i] = s.tel
	}
	return telemetry.TraceBody(trackers...)
}
