package ms

import (
	"math"
	"testing"

	"titant/internal/feature"
	"titant/internal/hbase"
	"titant/internal/rng"
	"titant/internal/txn"
)

// benchStore uploads users (8-dim embeddings) and flushes, so fetches
// read a realistic MemStore-plus-segment layout.
func benchStore(b *testing.B, users int) *hbase.Table {
	b.Helper()
	tab, err := hbase.Open(hbase.Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { tab.Close() })
	r := rng.New(7)
	up := &Uploader{Table: tab}
	for i := 0; i < users; i++ {
		u := txn.User{ID: txn.UserID(i), Age: uint8(20 + i%50), AvgAmount: float32(50 + i%200)}
		emb := make([]float32, 8)
		for j := range emb {
			emb[j] = float32(r.Float64() - 0.5)
		}
		if err := up.PutUser(&u, feature.UserStats{OutCount: float64(i % 10)}, emb); err != nil {
			b.Fatal(err)
		}
	}
	if err := tab.Flush(); err != nil {
		b.Fatal(err)
	}
	return tab
}

// benchCache builds the engine-shaped cache used by the fetch benchmarks.
func benchCache(size int) *userCache {
	var s Server
	WithUserCache(size)(&s)
	return s.cache
}

// zipfIDs draws n ids over [0, users) with a Zipf-ish 80/20 skew: most
// draws hit a hot head, the tail keeps the cache honest.
func zipfIDs(n, users int, seed uint64) []txn.UserID {
	r := rng.New(seed)
	ids := make([]txn.UserID, n)
	for i := range ids {
		u := math.Pow(r.Float64(), 3) // cubic skew toward 0
		ids[i] = txn.UserID(float64(users) * u)
	}
	return ids
}

// BenchmarkFetchUserCold measures the uncached store fetch — the
// point-read engine with no cache in front — cycling users so every read
// resolves through MemStore index, bloom filters and segment row index.
func BenchmarkFetchUserCold(b *testing.B) {
	tab := benchStore(b, 10000)
	var parts userParts
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		found, err := fetchUserInto(tab, txn.UserID(i%10000), &parts)
		if err != nil || !found {
			b.Fatal(err)
		}
	}
}

// BenchmarkFetchUserWarm measures the read-through cache's hit path —
// the acceptance benchmark: ops/sec and allocs/op versus the pre-PR
// GetRow-based fetchUser.
func BenchmarkFetchUserWarm(b *testing.B) {
	tab := benchStore(b, 10000)
	cache := benchCache(1 << 14)
	load := func(u txn.UserID) func() (userParts, bool, error) {
		return func() (userParts, bool, error) {
			var p userParts
			ok, err := fetchUserInto(tab, u, &p)
			return p, ok, err
		}
	}
	if _, ok, err := cache.GetOrLoad(42, load(42)); err != nil || !ok {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, ok, err := cache.GetOrLoad(42, load(42))
		if err != nil || !ok || p.user.ID != 42 {
			b.Fatal("bad hit")
		}
	}
}

// BenchmarkFetchUserZipf measures the cache under a skewed key
// distribution with an undersized capacity, so hits, misses and CLOCK
// evictions all run — the realistic warm-serving mix.
func BenchmarkFetchUserZipf(b *testing.B) {
	tab := benchStore(b, 10000)
	cache := benchCache(1 << 12) // ~40% of the keyspace: evictions happen
	ids := zipfIDs(1<<16, 10000, 11)
	fetch := func(u txn.UserID) {
		p, ok, err := cache.GetOrLoad(u, func() (userParts, bool, error) {
			var p userParts
			ok, err := fetchUserInto(tab, u, &p)
			return p, ok, err
		})
		if err != nil || !ok || p.user.ID != u {
			b.Fatal("bad fetch")
		}
	}
	for _, u := range ids[:1<<12] {
		fetch(u) // pre-warm the head
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fetch(ids[i%len(ids)])
	}
	b.StopTimer()
	st := cache.Stats()
	if total := st.Hits + st.Misses; total > 0 {
		b.ReportMetric(float64(st.Hits)/float64(total), "hit-rate")
	}
}

// BenchmarkFetchUserMiss measures the cold-start path for a user the
// store has never seen: the sentinel-error satellite makes the store
// side allocation-free, and the negative cache absorbs repeats.
func BenchmarkFetchUserMiss(b *testing.B) {
	b.Run("store", func(b *testing.B) {
		tab := benchStore(b, 1000)
		var parts userParts
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			found, err := fetchUserInto(tab, 999999, &parts)
			if err != nil || found {
				b.Fatal("unexpected")
			}
		}
	})
	b.Run("negcached", func(b *testing.B) {
		tab := benchStore(b, 1000)
		cache := benchCache(1 << 10)
		load := func() (userParts, bool, error) {
			var p userParts
			ok, err := fetchUserInto(tab, 999999, &p)
			return p, ok, err
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := cache.GetOrLoad(999999, load); ok || err != nil {
				b.Fatal("unexpected")
			}
		}
	})
}
