package ms

import (
	"context"
	"fmt"
	"sort"
	"time"

	"titant/internal/decision"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// Decision is one transaction's decisioning outcome: the scoring verdict
// the model produced, and the action the policy mapped it to. Reason
// attributes the action to the band or rule that decided it;
// RuleOverride marks decisions where a rule predicate overrode the
// model's bands outright.
type Decision struct {
	Verdict
	Scenario      decision.Scenario `json:"scenario"`
	Action        decision.Action   `json:"action"`
	Reason        string            `json:"reason"`
	RuleOverride  bool              `json:"rule_override,omitempty"`
	PolicyVersion string            `json:"policy_version"`
}

// currentPolicy reads the active policy (nil when decisioning is off).
func (s *Server) currentPolicy() *decision.Policy {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.policy
}

// PolicyEnabled reports whether the engine carries a decision policy.
func (s *Server) PolicyEnabled() bool { return s.currentPolicy() != nil }

// PolicyVersion returns the active policy's version ("" when disabled).
func (s *Server) PolicyVersion() string {
	if p := s.currentPolicy(); p != nil {
		return p.Version
	}
	return ""
}

// SetPolicy hot-swaps the decision policy, mirroring SetBundle: the new
// document is validated (and compiled) before publication, so a bad
// policy is rejected whole and the previous one keeps serving. Swapping
// a policy does not disturb scores, drift baselines or shadow state —
// only the score→action mapping changes.
//
// SetPolicy replaces, it does not enable: an engine deliberately built
// without WithPolicy refuses with ErrPolicyDisabled, so a client that
// can reach POST /v1/policy cannot turn decisioning on behind the
// operator's back.
func (s *Server) SetPolicy(p *decision.Policy) error {
	if !s.policyConfigured {
		return ErrPolicyDisabled
	}
	if p == nil {
		return ErrPolicyDisabled
	}
	if err := p.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	s.policy = p
	s.mu.Unlock()
	return nil
}

// PolicyInfo summarises the active policy (GET /v1/policy responses and
// POST acknowledgements).
type PolicyInfo struct {
	Version   string   `json:"version"`
	Scenarios []string `json:"scenarios"`
	Rules     int      `json:"rules"`
}

// PolicyInfo returns the active policy's summary (zero value when
// decisioning is disabled).
func (s *Server) PolicyInfo() PolicyInfo {
	p := s.currentPolicy()
	if p == nil {
		return PolicyInfo{}
	}
	info := PolicyInfo{Version: p.Version}
	for name, sp := range p.Scenarios {
		info.Scenarios = append(info.Scenarios, name)
		info.Rules += len(sp.Rules)
	}
	sort.Strings(info.Scenarios)
	return info
}

// Decide scores one transaction and maps the result through the active
// policy: rules first (velocity caps and other hard constraints can
// override the model), then the scenario's combined-score band,
// escalated by member bands. It shares Score's single-row core, so a
// Decide and a Score of the same transaction see bitwise-identical
// scores. Returns ErrPolicyDisabled on an engine built without
// WithPolicy.
func (s *Server) Decide(ctx context.Context, t *txn.Transaction, sc decision.Scenario) (Decision, error) {
	pol := s.currentPolicy()
	if pol == nil {
		return Decision{}, ErrPolicyDisabled
	}
	start := time.Now()
	var spans telemetry.Spans
	release, err := s.Admit(ctx, 1)
	if err != nil {
		return Decision{}, err
	}
	defer release()
	spans[telemetry.StageAdmit] = time.Since(start)
	var d Decision
	var epoch int64
	if err := s.runOne(ctx, t, &spans, func(sb *scoredBatch) error {
		decideStart := time.Now()
		s.fillDecision(&d, pol, t, sc, sb, 0)
		spans[telemetry.StageDecide] = time.Since(decideStart)
		d.Latency = sb.perItem
		epoch = sb.shadowEpoch
		return nil
	}); err != nil {
		return Decision{}, err
	}
	shadowStart := time.Now()
	s.observeDecision(t, &d, epoch)
	spans[telemetry.StageShadow] = time.Since(shadowStart)
	s.traceObserve(ctx, s.telDecide, time.Since(start), &spans)
	return d, nil
}

// DecideBatch decides a batch in input order over the same pooled
// batch-native core as ScoreBatch — dedup fetch, one matrix assembly,
// one vectorised ensemble pass — followed by an allocation-free policy
// evaluation per row, so decisioning adds model-free work only.
// scenarios selects each transaction's scenario, index-aligned with
// txns; nil decides the whole batch under the default scenario.
func (s *Server) DecideBatch(ctx context.Context, txns []txn.Transaction, scenarios []decision.Scenario) ([]Decision, error) {
	pol := s.currentPolicy()
	if pol == nil {
		return nil, ErrPolicyDisabled
	}
	if scenarios != nil && len(scenarios) != len(txns) {
		return nil, fmt.Errorf("ms: %d scenarios for %d transactions", len(scenarios), len(txns))
	}
	if len(txns) == 0 {
		return nil, nil
	}
	start := time.Now()
	var spans telemetry.Spans
	release, err := s.Admit(ctx, len(txns))
	if err != nil {
		return nil, err
	}
	defer release()
	spans[telemetry.StageAdmit] = time.Since(start)
	var decisions []Decision
	var epoch int64
	if err := s.runBatch(ctx, txns, &spans, func(sb *scoredBatch) error {
		decideStart := time.Now()
		decisions = make([]Decision, len(txns))
		epoch = sb.shadowEpoch
		in := s.inputTemplate(sb)
		for i := range txns {
			if scenarios != nil {
				in.Scenario = scenarios[i]
			}
			in.Txn = &txns[i]
			in.Score = sb.combined[i]
			in.Row = i
			d := &decisions[i]
			d.Verdict = verdictOf(&txns[i], sb.combined[i], sb.memberScores, i, sb.bundle, sb.ens)
			d.Latency = sb.perItem
			applyOutcome(d, pol, in.Scenario, pol.Decide(&in))
		}
		spans[telemetry.StageDecide] = time.Since(decideStart)
		return nil
	}); err != nil {
		return nil, err
	}
	shadowStart := time.Now()
	for i := range decisions {
		s.observeDecision(&txns[i], &decisions[i], epoch)
	}
	spans[telemetry.StageShadow] = time.Since(shadowStart)
	s.traceObserve(ctx, s.telDecideBatch, time.Since(start), &spans)
	return decisions, nil
}

// inputTemplate seeds the per-batch decision input with the fields that
// don't vary across rows. A v1 single-model bundle has no per-member
// breakdown — its only score is the combined one — so member bands stay
// inert (nil names).
func (s *Server) inputTemplate(sb *scoredBatch) decision.Input {
	names := sb.ens.names
	if sb.memberScores == nil {
		names = nil
	}
	return decision.Input{
		MemberNames:  names,
		MemberScores: sb.memberScores,
		Velocity:     s.velocity,
	}
}

// fillDecision evaluates the policy for row i of a scored batch into d.
func (s *Server) fillDecision(d *Decision, pol *decision.Policy, t *txn.Transaction, sc decision.Scenario, sb *scoredBatch, i int) {
	in := s.inputTemplate(sb)
	in.Txn, in.Scenario, in.Score, in.Row = t, sc, sb.combined[i], i
	d.Verdict = verdictOf(t, sb.combined[i], sb.memberScores, i, sb.bundle, sb.ens)
	applyOutcome(d, pol, sc, pol.Decide(&in))
}

// applyOutcome copies one policy outcome into a decision.
func applyOutcome(d *Decision, pol *decision.Policy, sc decision.Scenario, out decision.Outcome) {
	d.Scenario = sc
	d.Action = out.Action
	d.Reason = out.Reason
	d.RuleOverride = out.Rule
	d.PolicyVersion = pol.Version
}

// observeDecision records the verdict through the shared scoring
// counters (latency histogram, alert, shadow enqueue) plus the
// decision-specific action counters. The decided total is the sum of
// the per-action counters, so it costs no counter of its own.
func (s *Server) observeDecision(t *txn.Transaction, d *Decision, epoch int64) {
	s.observe(t, &d.Verdict, epoch)
	s.actions[d.Action].Add(1)
	if d.RuleOverride {
		s.ruleHits.Add(1)
	}
}

// DecisionStats snapshots the decision counters.
type DecisionStats struct {
	Decided       int64 `json:"decided"`
	Approved      int64 `json:"approved"`
	Challenged    int64 `json:"challenged"`
	Denied        int64 `json:"denied"`
	RuleOverrides int64 `json:"rule_overrides"`
}

// DecisionStats returns the cumulative action counters.
func (s *Server) DecisionStats() DecisionStats {
	st := DecisionStats{
		Approved:      s.actions[decision.ActionApprove].Load(),
		Challenged:    s.actions[decision.ActionChallenge].Load(),
		Denied:        s.actions[decision.ActionDeny].Load(),
		RuleOverrides: s.ruleHits.Load(),
	}
	st.Decided = st.Approved + st.Challenged + st.Denied
	return st
}

// DriftEnabled reports whether the engine monitors score drift.
func (s *Server) DriftEnabled() bool { return s.drift.Load() != nil }

// DriftStats snapshots every monitored score series (nil when drift
// monitoring is disabled).
func (s *Server) DriftStats() []decision.DriftStats {
	if mon := s.drift.Load(); mon != nil {
		return mon.Snapshot()
	}
	return nil
}

// DriftAlerted reports whether any score series currently crosses its
// drift alert thresholds.
func (s *Server) DriftAlerted() bool {
	if mon := s.drift.Load(); mon != nil {
		return mon.Alerted()
	}
	return false
}

// ShadowEnabled reports whether a challenger bundle shadows the engine.
func (s *Server) ShadowEnabled() bool { return s.shadow != nil }

// ShadowVersion returns the challenger bundle's version ("" without one).
func (s *Server) ShadowVersion() string {
	if s.shadow == nil {
		return ""
	}
	return s.shadow.bundle.Version
}

// ShadowStats snapshots the champion/challenger comparison counters
// (zero without a challenger).
func (s *Server) ShadowStats() decision.ShadowStats {
	if s.shadow == nil {
		return decision.ShadowStats{}
	}
	return s.shadow.meter.Snapshot()
}

// ShadowQueueDepth reports how many transactions currently wait for the
// shadow worker.
func (s *Server) ShadowQueueDepth() int {
	if s.shadow == nil {
		return 0
	}
	return len(s.shadow.jobs)
}
