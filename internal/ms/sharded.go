package ms

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"titant/internal/decision"
	"titant/internal/feature"
	"titant/internal/hbase"
	"titant/internal/ms/usercache"
	"titant/internal/rng"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// ShardOf maps a user onto one of n shards with Lamping–Veach jump
// consistent hashing over the same Mix64 the user cache and the stream
// store stripe by. Jump hashing is what makes resharding cheap *and*
// verdict-stable: going from n to m shards moves only ~|n-m|/max(n,m) of
// the keyspace, and because every user's state lives wholly on its owner
// shard (see Server.ownerOf), a moved user scores from the same rows,
// cache semantics and shared stream window on its new owner — bitwise
// the same verdict.
func ShardOf(u txn.UserID, n int) int {
	if n <= 1 {
		return 0
	}
	key := rng.Mix64(uint64(uint32(u)))
	var b, j int64 = -1, 0
	for j < int64(n) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// ShardedEngine is N in-process engine shards behind one serving
// surface. Users partition by ShardOf across per-shard feature tables
// and user caches; every shard shares one stream-aggregate store (its
// internals are already lock-striped by the same user hash, and city
// statistics are global by nature — sharing it is what keeps verdicts
// independent of the shard count). Score/Ingest route to the owner
// shard; ScoreBatch/DecideBatch scatter sub-batches across shards
// concurrently and gather verdicts back in input order; bundle and
// policy hot-swaps apply to all shards atomically with respect to
// scoring (swapMu). Admission control runs once at this level — the
// per-shard gates are disarmed so quotas don't multiply by N.
type ShardedEngine struct {
	shards []*Server

	// swapMu orders hot-swaps against scatter/gather: batches hold the
	// read side, SetBundle/SetPolicy the write side, so no batch ever
	// spans a swap with some sub-batches on the old bundle and some on
	// the new. Single-row calls delegate to one shard and need no fence —
	// they cannot straddle shards.
	swapMu sync.RWMutex

	adm      *admission // stolen from shard 0; shard gates are nil'd
	maxBatch int

	modelToken  string
	ingestToken string

	ingestHist *telemetry.Histogram // POST /v1/ingest[/batch] request latency
	decideHist *telemetry.Histogram // POST /v1/decide[/batch] request latency
	minter     *telemetry.Minter    // fleet-level trace minting (HTTP middleware)
}

// NewSharded builds a horizontally sharded engine: one Server per table,
// all from the same bundle and options, ring-linked so user-keyed reads
// route to their owner shard. len(tables) fixes the shard count; every
// table should carry (at least) the users ShardOf assigns to its index —
// NewShardedUploader writes a deploy wave that way.
//
// WithEventLog is rejected: each shard's snapshot would capture — and a
// restart would restore — the *shared* stream store, clobbering sibling
// shards' replay. Durability composes per shard *server* instead: run N
// `titant serve -eventlog` processes behind `titant route`, each logging
// exactly the traffic it owns.
func NewSharded(tables []*hbase.Table, bundle *Bundle, opts ...Option) (*ShardedEngine, error) {
	if len(tables) == 0 {
		return nil, errors.New("ms: NewSharded needs at least one table")
	}
	for i, tab := range tables {
		if tab == nil {
			return nil, fmt.Errorf("ms: nil table for shard %d", i)
		}
	}
	// Pre-flight the options on a probe so misconfigurations fail before
	// any shard (and its background workers) exists.
	var probe Server
	for _, o := range opts {
		o(&probe)
	}
	if probe.elogDir != "" {
		return nil, errors.New("ms: WithEventLog does not compose with in-process shards (each shard snapshot would capture the shared stream store); run one event log per shard server behind `titant route` instead")
	}
	n := len(tables)
	perShardCache := 0
	if probe.cache != nil && n > 1 {
		// Split the configured cache budget across shards instead of
		// multiplying it by N; each shard only ever caches its own users.
		perShardCache = (probe.cache.Stats().Capacity + n - 1) / n
	}
	se := &ShardedEngine{
		ingestHist: telemetry.NewHistogram(nil),
		decideHist: telemetry.NewHistogram(nil),
		minter:     telemetry.NewMinter(probe.traceSeed),
	}
	shards := make([]*Server, n)
	for i, tab := range tables {
		// Diversify each shard's trace seed so co-resident shards never
		// mint colliding IDs from identical streams.
		shardOpts := append(append([]Option{}, opts...), WithTraceSeed(probe.traceSeed+uint64(i)+1))
		srv, err := New(tab, bundle, shardOpts...)
		if err != nil {
			for _, built := range shards[:i] {
				built.Close()
			}
			return nil, fmt.Errorf("ms: shard %d: %w", i, err)
		}
		if i == 0 {
			se.adm = srv.adm
			se.maxBatch = srv.maxBatch
			se.modelToken = srv.modelToken
			se.ingestToken = srv.ingestToken
		}
		// Admission gates once at the sharded front door; a shard with
		// nil adm admits everything (Server.Admit short-circuits).
		srv.adm = nil
		if perShardCache > 0 {
			srv.cache = usercache.New[txn.UserID, userParts](perShardCache, 0, userHash)
		}
		shards[i] = srv
	}
	for _, srv := range shards {
		srv.peers = shards
	}
	se.shards = shards
	return se, nil
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Shard exposes shard i for tests and shard-local wiring (e.g. an
// uploader invalidating the owner's cache). The ring is immutable after
// NewSharded.
func (se *ShardedEngine) Shard(i int) *Server { return se.shards[i] }

// Close closes every shard's background resources.
func (se *ShardedEngine) Close() {
	for _, s := range se.shards {
		s.Close()
	}
}

// owner returns the shard owning a user.
func (se *ShardedEngine) owner(u txn.UserID) *Server {
	return se.shards[ShardOf(u, len(se.shards))]
}

// Admit runs the engine-level admission gate (see Server.Admit).
func (se *ShardedEngine) Admit(ctx context.Context, n int) (func(), error) {
	if se.adm == nil {
		return noRelease, nil
	}
	rel, err := se.adm.admit(CallerFromContext(ctx), n)
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// AdmissionEnabled reports whether the engine was built with quotas or
// an inflight bound.
func (se *ShardedEngine) AdmissionEnabled() bool { return se.adm != nil }

// AdmissionStats snapshots the engine-level admission counters.
func (se *ShardedEngine) AdmissionStats() AdmissionStats { return se.adm.stats() }

// Score scores one transaction on the sender's owner shard. The shard
// fetches the receiver's fragments from *their* owner through the ring,
// so a cross-shard transfer scores identically to a local one.
func (se *ShardedEngine) Score(ctx context.Context, t *txn.Transaction) (Verdict, error) {
	release, err := se.Admit(ctx, 1)
	if err != nil {
		return Verdict{}, err
	}
	defer release()
	return se.owner(t.From).Score(ctx, t)
}

// Decide runs score + policy on the sender's owner shard.
func (se *ShardedEngine) Decide(ctx context.Context, t *txn.Transaction, sc decision.Scenario) (Decision, error) {
	release, err := se.Admit(ctx, 1)
	if err != nil {
		return Decision{}, err
	}
	defer release()
	return se.owner(t.From).Decide(ctx, t, sc)
}

// Ingest feeds one observed transaction into the live window via the
// sender's owner shard (the store is shared; routing keeps the
// per-shard ingest counters and negative-cache invalidations owner-local).
func (se *ShardedEngine) Ingest(t *txn.Transaction) error {
	return se.owner(t.From).Ingest(t)
}

// scatter groups txns by the sender's owner shard, runs run(shard,
// sub-indices) concurrently for every non-empty group, and returns the
// lowest-shard-index error (deterministic under concurrent failures).
// Callers hold swapMu.RLock so a hot-swap cannot land mid-batch.
func (se *ShardedEngine) scatter(txns []txn.Transaction, run func(si int, idxs []int) error) error {
	n := len(se.shards)
	groups := make([][]int, n)
	for i := range txns {
		si := ShardOf(txns[i].From, n)
		groups[si] = append(groups[si], i)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(si int, idxs []int) {
			defer wg.Done()
			errs[si] = run(si, idxs)
		}(si, idxs)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// subTxns materialises one shard's sub-batch.
func subTxns(txns []txn.Transaction, idxs []int) []txn.Transaction {
	sub := make([]txn.Transaction, len(idxs))
	for k, i := range idxs {
		sub[k] = txns[i]
	}
	return sub
}

// ScoreBatch scores a batch in input order: rows group by the sender's
// owner shard, the sub-batches score concurrently (each through its
// shard's dedup-fetch + pooled batch core), and the verdicts gather back
// into the callers' positions. Admission admits the whole batch once at
// this level. The first error (lowest shard index) aborts the batch,
// matching the unsharded all-or-nothing contract.
func (se *ShardedEngine) ScoreBatch(ctx context.Context, txns []txn.Transaction) ([]Verdict, error) {
	if len(txns) == 0 {
		return nil, nil
	}
	if se.maxBatch > 0 && len(txns) > se.maxBatch {
		return nil, batchTooLarge(len(txns), se.maxBatch)
	}
	release, err := se.Admit(ctx, len(txns))
	if err != nil {
		return nil, err
	}
	defer release()
	se.swapMu.RLock()
	defer se.swapMu.RUnlock()
	if len(se.shards) == 1 {
		return se.shards[0].ScoreBatch(ctx, txns)
	}
	verdicts := make([]Verdict, len(txns))
	err = se.scatter(txns, func(si int, idxs []int) error {
		vs, err := se.shards[si].ScoreBatch(ctx, subTxns(txns, idxs))
		if err != nil {
			return err
		}
		for k, i := range idxs {
			verdicts[i] = vs[k]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return verdicts, nil
}

// DecideBatch is ScoreBatch through the decision path: scenarios (nil,
// or len(txns)) slice apart with their transactions and the decisions
// gather back in input order.
func (se *ShardedEngine) DecideBatch(ctx context.Context, txns []txn.Transaction, scenarios []decision.Scenario) ([]Decision, error) {
	if len(txns) == 0 {
		return nil, nil
	}
	if scenarios != nil && len(scenarios) != len(txns) {
		return nil, fmt.Errorf("ms: %d scenarios for %d transactions", len(scenarios), len(txns))
	}
	if se.maxBatch > 0 && len(txns) > se.maxBatch {
		return nil, batchTooLarge(len(txns), se.maxBatch)
	}
	release, err := se.Admit(ctx, len(txns))
	if err != nil {
		return nil, err
	}
	defer release()
	se.swapMu.RLock()
	defer se.swapMu.RUnlock()
	if len(se.shards) == 1 {
		return se.shards[0].DecideBatch(ctx, txns, scenarios)
	}
	decisions := make([]Decision, len(txns))
	err = se.scatter(txns, func(si int, idxs []int) error {
		var subSc []decision.Scenario
		if scenarios != nil {
			subSc = make([]decision.Scenario, len(idxs))
			for k, i := range idxs {
				subSc[k] = scenarios[i]
			}
		}
		ds, err := se.shards[si].DecideBatch(ctx, subTxns(txns, idxs), subSc)
		if err != nil {
			return err
		}
		for k, i := range idxs {
			decisions[i] = ds[k]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return decisions, nil
}

// IngestBatch routes a batch to the owner shards, sub-batches ingesting
// concurrently. All shards share one stream store whose buckets and
// counters are order-independent, so concurrent sub-batches land the
// same window state as a sequential pass over in-window traffic.
func (se *ShardedEngine) IngestBatch(txns []txn.Transaction) error {
	if se.maxBatch > 0 && len(txns) > se.maxBatch {
		return batchTooLarge(len(txns), se.maxBatch)
	}
	if len(txns) == 0 {
		return se.shards[0].IngestBatch(nil)
	}
	return se.scatter(txns, func(si int, idxs []int) error {
		return se.shards[si].IngestBatch(subTxns(txns, idxs))
	})
}

// SetBundle hot-swaps the model on every shard atomically with respect
// to batch scoring: the swap holds swapMu exclusively, so a scatter
// either sees the old bundle on all shards or the new one on all shards,
// never a mix. The bundle validates once up front; per-shard application
// cannot fail after that, which is what makes the loop all-or-nothing.
func (se *ShardedEngine) SetBundle(b *Bundle) error {
	if b == nil {
		return fmt.Errorf("%w: nil bundle", ErrBundleInvalid)
	}
	if err := b.validate(); err != nil {
		return err
	}
	se.swapMu.Lock()
	defer se.swapMu.Unlock()
	for _, s := range se.shards {
		if err := s.SetBundle(b); err != nil {
			return err
		}
	}
	return nil
}

// SetPolicy hot-swaps the decision policy on every shard atomically
// (same fence as SetBundle). Policy state is uniform across shards —
// they were built from one option set — so the first shard's
// ErrPolicyDisabled refusal aborts before anything changed.
func (se *ShardedEngine) SetPolicy(p *decision.Policy) error {
	if p == nil {
		return fmt.Errorf("ms: nil policy")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	se.swapMu.Lock()
	defer se.swapMu.Unlock()
	for _, s := range se.shards {
		if err := s.SetPolicy(p); err != nil {
			return err
		}
	}
	return nil
}

// InvalidateUser drops one user's cached fragments on their owner shard.
func (se *ShardedEngine) InvalidateUser(u txn.UserID) { se.owner(u).InvalidateUser(u) }

// Configuration accessors delegate to shard 0: shards are built from one
// bundle and option set and swapped in lockstep, so any shard answers.

// BundleVersion returns the active bundle's version string.
func (se *ShardedEngine) BundleVersion() string { return se.shards[0].BundleVersion() }

// ModelInfo returns the active bundle's metadata.
func (se *ShardedEngine) ModelInfo() ModelInfo { return se.shards[0].ModelInfo() }

// currentPolicy satisfies the HTTP layer's engine surface (GET /v1/policy).
func (se *ShardedEngine) currentPolicy() *decision.Policy { return se.shards[0].currentPolicy() }

// PolicyEnabled reports whether the shards decide as well as score.
func (se *ShardedEngine) PolicyEnabled() bool { return se.shards[0].PolicyEnabled() }

// PolicyVersion returns the active policy's version ("" when disabled).
func (se *ShardedEngine) PolicyVersion() string { return se.shards[0].PolicyVersion() }

// PolicyInfo summarises the active policy.
func (se *ShardedEngine) PolicyInfo() PolicyInfo { return se.shards[0].PolicyInfo() }

// StreamEnabled reports whether the engine maintains a live window.
func (se *ShardedEngine) StreamEnabled() bool { return se.shards[0].StreamEnabled() }

// Ingested returns the shared live window's accepted-transaction count.
// The store is one object shared by every shard, so shard 0's view is
// the fleet's — summing per-shard reads would count each ingest N times.
func (se *ShardedEngine) Ingested() int64 { return se.shards[0].Ingested() }

// UserCacheEnabled reports whether the shards carry read-through caches.
func (se *ShardedEngine) UserCacheEnabled() bool { return se.shards[0].UserCacheEnabled() }

// UserCacheStats sums the per-shard cache counters; Size and Capacity
// add up to the fleet totals.
func (se *ShardedEngine) UserCacheStats() usercache.Stats {
	var out usercache.Stats
	for _, s := range se.shards {
		cs := s.UserCacheStats()
		out.Hits += cs.Hits
		out.Misses += cs.Misses
		out.Collapsed += cs.Collapsed
		out.Evictions += cs.Evictions
		out.Invalidations += cs.Invalidations
		out.Negatives += cs.Negatives
		out.Size += cs.Size
		out.Capacity += cs.Capacity
	}
	return out
}

// DecisionStats sums the per-shard action counters.
func (se *ShardedEngine) DecisionStats() DecisionStats {
	var out DecisionStats
	for _, s := range se.shards {
		ds := s.DecisionStats()
		out.Decided += ds.Decided
		out.Approved += ds.Approved
		out.Challenged += ds.Challenged
		out.Denied += ds.Denied
		out.RuleOverrides += ds.RuleOverrides
	}
	return out
}

// DriftEnabled reports whether drift monitoring is configured.
func (se *ShardedEngine) DriftEnabled() bool { return se.shards[0].DriftEnabled() }

// DriftAlerted reports whether any shard's monitor alerts.
func (se *ShardedEngine) DriftAlerted() bool {
	for _, s := range se.shards {
		if s.DriftAlerted() {
			return true
		}
	}
	return false
}

// DriftStats merges the per-shard monitors series-by-series: counts sum,
// the divergence statistics take the worst (max) shard — PSI and KS are
// distribution distances, not additive counters — and a series alerts if
// it alerts anywhere. Each shard monitors the score distribution of its
// own user partition, so the merged view is "the most drifted shard",
// which is the one an operator acts on.
func (se *ShardedEngine) DriftStats() []decision.DriftStats {
	out := se.shards[0].DriftStats()
	if out == nil {
		return nil
	}
	for _, s := range se.shards[1:] {
		series := s.DriftStats()
		for i := range out {
			if i >= len(series) {
				break
			}
			out[i].BaselineCount += series[i].BaselineCount
			out[i].LiveCount += series[i].LiveCount
			if series[i].PSI > out[i].PSI {
				out[i].PSI = series[i].PSI
			}
			if series[i].KS > out[i].KS {
				out[i].KS = series[i].KS
			}
			out[i].Alert = out[i].Alert || series[i].Alert
		}
	}
	return out
}

// ShadowEnabled reports whether a challenger runs in shadow.
func (se *ShardedEngine) ShadowEnabled() bool { return se.shards[0].ShadowEnabled() }

// ShadowVersion returns the challenger bundle's version.
func (se *ShardedEngine) ShadowVersion() string { return se.shards[0].ShadowVersion() }

// ShadowStats sums the per-shard comparison counters and recomputes the
// derived ratios over the sums (agreement, and scored-weighted mean
// divergence).
func (se *ShardedEngine) ShadowStats() decision.ShadowStats {
	var out decision.ShadowStats
	var diffSum float64
	for _, s := range se.shards {
		sh := s.ShadowStats()
		out.Scored += sh.Scored
		out.Dropped += sh.Dropped
		out.Errors += sh.Errors
		out.Agreed += sh.Agreed
		out.Flipped += sh.Flipped
		diffSum += sh.MeanAbsDiff * float64(sh.Scored)
	}
	if out.Scored > 0 {
		out.Agreement = float64(out.Agreed) / float64(out.Scored)
		out.MeanAbsDiff = diffSum / float64(out.Scored)
	} else {
		out.Agreement = 1
	}
	return out
}

// ShadowQueueDepth sums the per-shard shadow queue depths.
func (se *ShardedEngine) ShadowQueueDepth() int {
	depth := 0
	for _, s := range se.shards {
		depth += s.ShadowQueueDepth()
	}
	return depth
}

// Latency merges the per-shard scoring histograms (bucket-wise sums —
// the shards share bounds by construction) and reports fleet-wide
// percentiles with summed counters.
func (se *ShardedEngine) Latency() LatencyStats {
	hs := make([]*telemetry.Histogram, len(se.shards))
	var count, alerted int64
	for i, s := range se.shards {
		hs[i] = s.hist
		count += s.scored.Load()
		alerted += s.alerted.Load()
	}
	bounds, counts, total, max := telemetry.Merge(hs)
	return LatencyStats{
		Count:   count,
		Alerted: alerted,
		P50:     telemetry.Quantile(bounds, counts, total, max, 0.50),
		P99:     telemetry.Quantile(bounds, counts, total, max, 0.99),
		Max:     max,
	}
}

// Health snapshots readiness: shard 0's configuration view (uniform by
// construction) with the fleet's shard count and an OR over the shard
// drift alerts.
func (se *ShardedEngine) Health() HealthInfo {
	h := se.shards[0].Health()
	h.Shards = len(se.shards)
	h.DriftAlert = se.DriftAlerted()
	return h
}

// StatsBody builds the merged GET /v1/stats body: counters summed across
// shards, histograms merged bucket-wise before quantiles are recomputed,
// versions from shard 0 (uniform by construction). The section layout
// matches Server.StatsBody exactly, so clients and the wire router
// cannot tell one engine from a sharded one except by the shard count.
func (se *ShardedEngine) StatsBody() map[string]interface{} {
	lat := se.Latency()
	hs := make([]*telemetry.Histogram, len(se.shards))
	for i, s := range se.shards {
		hs[i] = s.hist
	}
	bounds, counts, total, max := telemetry.Merge(hs)
	body := map[string]interface{}{
		"scored": lat.Count, "alerted": lat.Alerted,
		"p50_us": lat.P50.Microseconds(), "p99_us": lat.P99.Microseconds(),
		"max_us": lat.Max.Microseconds(), "version": se.BundleVersion(),
		"shards":       len(se.shards),
		"latency_hist": telemetry.HistBody(bounds, counts, total, max),
	}
	endpoints := map[string]interface{}{}
	if se.StreamEnabled() {
		body["ingested"] = se.Ingested()
		endpoints["ingest"] = endpointStats(se.ingestHist)
	}
	if se.UserCacheEnabled() {
		body["user_cache"] = cacheStatsBody(se.UserCacheStats())
	}
	if se.PolicyEnabled() {
		body["policy"] = policyStatsBody(se.PolicyVersion(), se.DecisionStats())
		endpoints["decide"] = endpointStats(se.decideHist)
	}
	if len(endpoints) > 0 {
		body["endpoints"] = endpoints
	}
	if se.AdmissionEnabled() {
		body["admission"] = admissionStatsBody(se.AdmissionStats())
	}
	if se.ShadowEnabled() {
		body["shadow"] = shadowStatsBody(se.ShadowVersion(), se.ShadowStats(), se.ShadowQueueDepth())
	}
	if series := se.DriftStats(); series != nil {
		body["drift"] = driftStatsBody(series)
	}
	return body
}

// ShardedUploader routes user uploads across a shard ring: each user's
// fragments land on the feature table their owner shard reads, the
// sharded counterpart of ms.Uploader.
type ShardedUploader struct {
	ups []Uploader
}

// NewShardedUploader builds an uploader over the ring's feature tables
// (index i serves shard i, as in NewSharded). Invalidation is unwired —
// use ShardedEngine.Uploader to re-publish against a live engine.
func NewShardedUploader(tables []*hbase.Table, version int64) *ShardedUploader {
	ups := make([]Uploader, len(tables))
	for i, tab := range tables {
		ups[i] = Uploader{Table: tab, Version: version}
	}
	return &ShardedUploader{ups: ups}
}

// Uploader builds a ShardedUploader over the engine's own tables with
// invalidation wired to each owner shard's cache, so a live
// re-publication is visible to the very next score.
func (se *ShardedEngine) Uploader(version int64) *ShardedUploader {
	ups := make([]Uploader, len(se.shards))
	for i, s := range se.shards {
		ups[i] = Uploader{Table: s.table, Version: version, Invalidate: s.InvalidateUser}
	}
	return &ShardedUploader{ups: ups}
}

// PutUser writes one user's fragments to their owner shard's table.
func (su *ShardedUploader) PutUser(u *txn.User, stats feature.UserStats, emb []float32) error {
	return su.ups[ShardOf(u.ID, len(su.ups))].PutUser(u, stats, emb)
}

// compile-time: both engines satisfy the HTTP layer's serving surface.
var (
	_ engineAPI = (*Server)(nil)
	_ engineAPI = (*ShardedEngine)(nil)
)
