package ms

import (
	"errors"
	"fmt"
)

// Typed error model of the v1 serving API. Callers (and the HTTP layer)
// classify failures with errors.Is. Errors the engine can anticipate
// wrap one of these sentinels with detail in the wrapping message;
// anything else (storage corruption, context cancellation) carries no
// sentinel and should be routed as an internal failure.
var (
	// ErrUserNotFound reports that a transaction names a user with no row
	// in the feature store. Only returned when the engine was built with
	// WithStrictUsers; the default engine serves cold-start users with
	// all-zero fragments, as the paper's Model Server does.
	ErrUserNotFound = errors.New("ms: user not found")

	// ErrBundleInvalid reports a model bundle that cannot be decoded or
	// validated (corrupt bytes, undecodable classifier, nil bundle).
	ErrBundleInvalid = errors.New("ms: invalid bundle")

	// ErrDimensionMismatch reports a stored user embedding whose length
	// disagrees with the bundle's EmbeddingDim. Scoring refuses to run on
	// a half-zero vector; the upload pipeline must re-publish the user.
	ErrDimensionMismatch = errors.New("ms: embedding dimension mismatch")

	// ErrBatchTooLarge reports a ScoreBatch call exceeding the engine's
	// configured batch limit (see WithMaxBatch).
	ErrBatchTooLarge = errors.New("ms: batch too large")

	// ErrStreamDisabled reports an Ingest call on an engine built without
	// WithStreamAggregates: there is no live window to update.
	ErrStreamDisabled = errors.New("ms: streaming aggregates not configured")

	// ErrPolicyDisabled reports a Decide call on an engine built without
	// WithPolicy: there is no policy to map scores to actions.
	ErrPolicyDisabled = errors.New("ms: decision policy not configured")

	// ErrRateLimited reports a request refused by its caller's token-bucket
	// quota (see WithCallerQuota). The request was not partially served;
	// the caller should back off and retry. HTTP maps it to 429
	// "rate_limited" with a Retry-After header.
	ErrRateLimited = errors.New("ms: rate limited")

	// ErrOverloaded reports a request shed because the engine is at its
	// concurrent-transaction bound (see WithMaxInflight). Unlike
	// ErrRateLimited this is a global condition, not a per-caller one.
	// HTTP maps it to 429 "overloaded" with a Retry-After header.
	ErrOverloaded = errors.New("ms: overloaded")
)

// batchTooLarge builds the single canonical ErrBatchTooLarge error used
// by both the engine and the HTTP layer's early rejection.
func batchTooLarge(n, limit int) error {
	return fmt.Errorf("%w: %d transactions, limit %d", ErrBatchTooLarge, n, limit)
}
