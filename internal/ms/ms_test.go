package ms

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"titant/internal/feature"
	"titant/internal/hbase"
	"titant/internal/model"
	"titant/internal/model/lr"
	"titant/internal/rng"
	"titant/internal/txn"
)

// trainToy returns a tiny trained LR bundle: fraud iff amount feature high.
func trainToy(t testing.TB, embDim int) *Bundle {
	t.Helper()
	r := rng.New(1)
	n := 2000
	width := feature.NumBasic + 2*embDim
	m := feature.NewMatrix(n, width)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		// Mirror BasicFromParts: feature 0 is the amount, feature 1 its
		// log1p, so serve-time vectors match the training distribution.
		amt := r.Float64() * 2000
		m.Set(i, 0, amt)
		m.Set(i, 1, math.Log1p(amt))
		labels[i] = amt > 1200 && r.Bool(0.9)
	}
	clf := lr.Train(m, labels, lr.Config{Bins: 32, L1: 0.01, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 10, Seed: 1})
	city := feature.CityTable{Fraud: []float64{0.01, 0.2}, Share: []float64{0.9, 0.1}}
	b, err := NewBundle("2017-04-10", clf, 0.5, city, embDim)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func table(t testing.TB) *hbase.Table {
	t.Helper()
	tab, err := hbase.Open(hbase.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tab.Close() })
	return tab
}

func TestBundleRoundTrip(t *testing.T) {
	b := trainToy(t, 0)
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != b.Version || got.Threshold != b.Threshold {
		t.Fatalf("bundle = %+v", got)
	}
	c1, _ := b.Classifier()
	c2, _ := got.Classifier()
	x := make([]float64, feature.NumBasic)
	x[0] = 1500
	if c1.Score(x) != c2.Score(x) {
		t.Fatal("decoded classifier scores differ")
	}
}

func TestDecodeBundleGarbage(t *testing.T) {
	if _, err := DecodeBundle([]byte("junk")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestProfileCodec(t *testing.T) {
	u := txn.User{
		ID: 42, Age: 31, Gender: txn.GenderFemale, HomeCity: 7,
		AccountAge: 900, DeviceCount: 2, KYCLevel: 3,
		AvgDailyTxns: 0.4, AvgAmount: 123.5, MerchantFlag: true,
	}
	got, err := decodeProfile(encodeProfile(&u))
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Fatalf("round trip: %+v != %+v", got, u)
	}
	if _, err := decodeProfile([]byte{1, 2}); err == nil {
		t.Fatal("short profile accepted")
	}
}

func TestStatsCodec(t *testing.T) {
	s := feature.UserStats{OutCount: 1, InCount: 2, OutAmount: 3.5, InAmount: 4.5,
		DistinctRcv: 5, DistinctSnd: 6, OutDays: 7, InDays: 8}
	got, err := decodeStats(encodeStats(s))
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
	if _, err := decodeStats(nil); err == nil {
		t.Fatal("short stats accepted")
	}
}

func TestVecCodec(t *testing.T) {
	v := []float32{0.5, -1.25, 3}
	got := decodeVec(encodeVec(v))
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("vec round trip: %v != %v", got, v)
		}
	}
}

func TestUploadFetch(t *testing.T) {
	tab := table(t)
	u := txn.User{ID: 9, Age: 40, HomeCity: 1, AvgAmount: 50}
	stats := feature.UserStats{OutCount: 12, InCount: 3}
	emb := []float32{1, 2, 3, 4}
	up := &Uploader{Table: tab}
	if err := up.PutUser(&u, stats, emb); err != nil {
		t.Fatal(err)
	}
	parts, err := fetchUser(tab, 9)
	if err != nil {
		t.Fatal(err)
	}
	if parts.user.Age != 40 || parts.stats.OutCount != 12 || len(parts.emb) != 4 {
		t.Fatalf("parts = %+v", parts)
	}
	// Unknown user: zero fragments, no error.
	parts, err = fetchUser(tab, 999)
	if err != nil {
		t.Fatal(err)
	}
	if parts.user.Age != 0 || parts.emb != nil {
		t.Fatalf("cold user parts = %+v", parts)
	}
}

func TestVersionedUploadNewestWins(t *testing.T) {
	tab := table(t)
	u := txn.User{ID: 5, Age: 30}
	up1 := &Uploader{Table: tab, Version: 100}
	up2 := &Uploader{Table: tab, Version: 200}
	_ = up1.PutUser(&u, feature.UserStats{OutCount: 1}, nil)
	u.Age = 31
	_ = up2.PutUser(&u, feature.UserStats{OutCount: 2}, nil)
	parts, err := fetchUser(tab, 5)
	if err != nil {
		t.Fatal(err)
	}
	if parts.user.Age != 31 || parts.stats.OutCount != 2 {
		t.Fatalf("stale version served: %+v", parts)
	}
}

func TestScoreAndAlert(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i, Age: 30, AvgAmount: 100}
		if err := up.PutUser(&u, feature.UserStats{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	var alerts []txn.TxnID
	var mu sync.Mutex
	srv, err := NewServer(tab, trainToy(t, 0), func(t *txn.Transaction, score float64) {
		mu.Lock()
		alerts = append(alerts, t.ID)
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	// High amount -> fraud alert.
	hot := txn.Transaction{ID: 2, From: 1, To: 2, Amount: 1900}
	v, err := srv.Score(&hot)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Fraud || v.Score < 0.5 {
		t.Fatalf("verdict = %+v", v)
	}
	// Low amount -> pass.
	cold := txn.Transaction{ID: 3, From: 1, To: 2, Amount: 5}
	v, err = srv.Score(&cold)
	if err != nil {
		t.Fatal(err)
	}
	if v.Fraud {
		t.Fatalf("verdict = %+v", v)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(alerts) != 1 || alerts[0] != 2 {
		t.Fatalf("alerts = %v", alerts)
	}
	st := srv.Latency()
	if st.Count != 2 || st.Alerted != 1 || st.Max <= 0 {
		t.Fatalf("latency stats = %+v", st)
	}
}

func TestScoreWithEmbeddings(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	emb := make([]float32, 8)
	emb[0] = 1
	u1 := txn.User{ID: 1}
	u2 := txn.User{ID: 2}
	_ = up.PutUser(&u1, feature.UserStats{}, emb)
	_ = up.PutUser(&u2, feature.UserStats{}, nil) // cold: no embedding
	srv, err := NewServer(tab, trainToy(t, 8), nil)
	if err != nil {
		t.Fatal(err)
	}
	tx := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 100}
	if _, err := srv.Score(&tx); err != nil {
		t.Fatal(err)
	}
}

func TestHotSwapBundle(t *testing.T) {
	tab := table(t)
	srv, err := NewServer(tab, trainToy(t, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if srv.BundleVersion() != "2017-04-10" {
		t.Fatal("version wrong")
	}
	nb := trainToy(t, 0)
	nb.Version = "2017-04-11"
	if err := srv.SetBundle(nb); err != nil {
		t.Fatal(err)
	}
	if srv.BundleVersion() != "2017-04-11" {
		t.Fatal("hot swap failed")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i}
		_ = up.PutUser(&u, feature.UserStats{}, nil)
	}
	srv, err := NewServer(tab, trainToy(t, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// /score
	body, _ := json.Marshal(TxnRequest{ID: 7, From: 1, To: 2, Amount: 1800})
	resp, err := http.Post(ts.URL+"/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v Verdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.TxnID != 7 || !v.Fraud {
		t.Fatalf("verdict = %+v", v)
	}

	// /score rejects GET and bad JSON.
	if resp, _ := http.Get(ts.URL + "/score"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /score = %d", resp.StatusCode)
	}
	if resp, _ := http.Post(ts.URL+"/score", "application/json", bytes.NewReader([]byte("{"))); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON = %d", resp.StatusCode)
	}

	// /healthz
	if resp, _ := http.Get(ts.URL + "/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}
	// /stats
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["scored"].(float64) < 1 {
		t.Errorf("stats = %v", stats)
	}
}

func TestMillisecondLatency(t *testing.T) {
	// The paper's headline: prediction in mere milliseconds. With an
	// in-process HBase the p99 must be far below 10ms.
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(0); i < 200; i++ {
		u := txn.User{ID: i, Age: uint8(20 + i%50)}
		_ = up.PutUser(&u, feature.UserStats{OutCount: float64(i)}, nil)
	}
	srv, err := NewServer(tab, trainToy(t, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(2)
	for i := 0; i < 500; i++ {
		tx := txn.Transaction{
			ID:   txn.TxnID(i),
			From: txn.UserID(r.Intn(200)), To: txn.UserID(r.Intn(200)),
			Amount: float32(r.Float64() * 2000),
		}
		if _, err := srv.Score(&tx); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Latency()
	if st.P99 > 10*time.Millisecond {
		t.Errorf("p99 latency %v exceeds 10ms", st.P99)
	}
}

func TestNewServerValidation(t *testing.T) {
	tab := table(t)
	if _, err := NewServer(nil, trainToy(t, 0), nil); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := NewServer(tab, nil, nil); err == nil {
		t.Error("nil bundle accepted")
	}
}

var _ = model.Sigmoid // referenced for doc purposes
