package ms

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"titant/internal/feature"
	"titant/internal/hbase"
	"titant/internal/model"
	"titant/internal/model/lr"
	"titant/internal/rng"
	"titant/internal/txn"
)

// trainToy returns a tiny trained LR bundle: fraud iff amount feature high.
func trainToy(t testing.TB, embDim int) *Bundle {
	t.Helper()
	r := rng.New(1)
	n := 2000
	width := feature.NumBasic + 2*embDim
	m := feature.NewMatrix(n, width)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		// Mirror BasicFromParts: feature 0 is the amount, feature 1 its
		// log1p, so serve-time vectors match the training distribution.
		amt := r.Float64() * 2000
		m.Set(i, 0, amt)
		m.Set(i, 1, math.Log1p(amt))
		labels[i] = amt > 1200 && r.Bool(0.9)
	}
	clf := lr.Train(m, labels, lr.Config{Bins: 32, L1: 0.01, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 10, Seed: 1})
	city := feature.CityTable{Fraud: []float64{0.01, 0.2}, Share: []float64{0.9, 0.1}}
	b, err := NewBundle("2017-04-10", clf, 0.5, city, embDim)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func table(t testing.TB) *hbase.Table {
	t.Helper()
	tab, err := hbase.Open(hbase.Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tab.Close() })
	return tab
}

func TestBundleRoundTrip(t *testing.T) {
	b := trainToy(t, 0)
	data, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBundle(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != b.Version || got.Threshold != b.Threshold {
		t.Fatalf("bundle = %+v", got)
	}
	c1, _ := b.Classifier()
	c2, _ := got.Classifier()
	x := make([]float64, feature.NumBasic)
	x[0] = 1500
	if c1.Score(x) != c2.Score(x) {
		t.Fatal("decoded classifier scores differ")
	}
}

func TestDecodeBundleGarbage(t *testing.T) {
	_, err := DecodeBundle([]byte("junk"))
	if err == nil {
		t.Fatal("garbage accepted")
	}
	if !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("err = %v, want ErrBundleInvalid", err)
	}
}

func TestProfileCodec(t *testing.T) {
	u := txn.User{
		ID: 42, Age: 31, Gender: txn.GenderFemale, HomeCity: 7,
		AccountAge: 900, DeviceCount: 2, KYCLevel: 3,
		AvgDailyTxns: 0.4, AvgAmount: 123.5, MerchantFlag: true,
	}
	got, err := decodeProfile(encodeProfile(&u))
	if err != nil {
		t.Fatal(err)
	}
	if got != u {
		t.Fatalf("round trip: %+v != %+v", got, u)
	}
	if _, err := decodeProfile([]byte{1, 2}); err == nil {
		t.Fatal("short profile accepted")
	}
}

func TestStatsCodec(t *testing.T) {
	s := feature.UserStats{OutCount: 1, InCount: 2, OutAmount: 3.5, InAmount: 4.5,
		DistinctRcv: 5, DistinctSnd: 6, OutDays: 7, InDays: 8}
	got, err := decodeStats(encodeStats(s))
	if err != nil {
		t.Fatal(err)
	}
	if got != s {
		t.Fatalf("round trip: %+v != %+v", got, s)
	}
	if _, err := decodeStats(nil); err == nil {
		t.Fatal("short stats accepted")
	}
}

func TestVecCodec(t *testing.T) {
	v := []float32{0.5, -1.25, 3}
	got := decodeVec(encodeVec(v))
	for i := range v {
		if got[i] != v[i] {
			t.Fatalf("vec round trip: %v != %v", got, v)
		}
	}
}

func TestUploadFetch(t *testing.T) {
	tab := table(t)
	u := txn.User{ID: 9, Age: 40, HomeCity: 1, AvgAmount: 50}
	stats := feature.UserStats{OutCount: 12, InCount: 3}
	emb := []float32{1, 2, 3, 4}
	up := &Uploader{Table: tab}
	if err := up.PutUser(&u, stats, emb); err != nil {
		t.Fatal(err)
	}
	parts, found, err := fetchUser(tab, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !found || parts.user.Age != 40 || parts.stats.OutCount != 12 || len(parts.emb) != 4 {
		t.Fatalf("found=%v parts = %+v", found, parts)
	}
	// Unknown user: zero fragments, found=false, no error.
	parts, found, err = fetchUser(tab, 999)
	if err != nil {
		t.Fatal(err)
	}
	if found || parts.user.Age != 0 || parts.emb != nil {
		t.Fatalf("cold user found=%v parts = %+v", found, parts)
	}
}

func TestVersionedUploadNewestWins(t *testing.T) {
	tab := table(t)
	u := txn.User{ID: 5, Age: 30}
	up1 := &Uploader{Table: tab, Version: 100}
	up2 := &Uploader{Table: tab, Version: 200}
	_ = up1.PutUser(&u, feature.UserStats{OutCount: 1}, nil)
	u.Age = 31
	_ = up2.PutUser(&u, feature.UserStats{OutCount: 2}, nil)
	parts, _, err := fetchUser(tab, 5)
	if err != nil {
		t.Fatal(err)
	}
	if parts.user.Age != 31 || parts.stats.OutCount != 2 {
		t.Fatalf("stale version served: %+v", parts)
	}
}

func TestScoreAndAlert(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i, Age: 30, AvgAmount: 100}
		if err := up.PutUser(&u, feature.UserStats{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	var alerts []txn.TxnID
	var mu sync.Mutex
	srv, err := New(tab, trainToy(t, 0), WithAlert(func(t *txn.Transaction, score float64) {
		mu.Lock()
		alerts = append(alerts, t.ID)
		mu.Unlock()
	}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// High amount -> fraud alert.
	hot := txn.Transaction{ID: 2, From: 1, To: 2, Amount: 1900}
	v, err := srv.Score(ctx, &hot)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Fraud || v.Score < 0.5 {
		t.Fatalf("verdict = %+v", v)
	}
	// Low amount -> pass.
	cold := txn.Transaction{ID: 3, From: 1, To: 2, Amount: 5}
	v, err = srv.Score(ctx, &cold)
	if err != nil {
		t.Fatal(err)
	}
	if v.Fraud {
		t.Fatalf("verdict = %+v", v)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(alerts) != 1 || alerts[0] != 2 {
		t.Fatalf("alerts = %v", alerts)
	}
	st := srv.Latency()
	if st.Count != 2 || st.Alerted != 1 || st.Max <= 0 {
		t.Fatalf("latency stats = %+v", st)
	}
}

func TestScoreWithEmbeddings(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	emb := make([]float32, 8)
	emb[0] = 1
	u1 := txn.User{ID: 1}
	u2 := txn.User{ID: 2}
	_ = up.PutUser(&u1, feature.UserStats{}, emb)
	_ = up.PutUser(&u2, feature.UserStats{}, nil) // cold: no embedding
	srv, err := New(tab, trainToy(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	tx := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 100}
	if _, err := srv.Score(context.Background(), &tx); err != nil {
		t.Fatal(err)
	}
}

// A stored embedding whose length disagrees with the model's dimension is
// a typed error, never a silently truncated half-zero vector.
func TestScoreDimensionMismatch(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	u1 := txn.User{ID: 1}
	u2 := txn.User{ID: 2}
	_ = up.PutUser(&u1, feature.UserStats{}, []float32{1, 2, 3}) // model wants 8
	_ = up.PutUser(&u2, feature.UserStats{}, nil)
	srv, err := New(tab, trainToy(t, 8))
	if err != nil {
		t.Fatal(err)
	}
	tx := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 100}
	if _, err := srv.Score(context.Background(), &tx); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v, want ErrDimensionMismatch", err)
	}
	if _, err := srv.ScoreBatch(context.Background(), []txn.Transaction{tx}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("batch err = %v, want ErrDimensionMismatch", err)
	}
}

// Score must respect an already-cancelled context: return promptly with
// ctx.Err() and never fire the alert callback.
func TestScoreCancelledContext(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i}
		_ = up.PutUser(&u, feature.UserStats{}, nil)
	}
	alerted := false
	srv, err := New(tab, trainToy(t, 0), WithAlert(func(*txn.Transaction, float64) { alerted = true }))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hot := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 1900} // would alert
	start := time.Now()
	if _, err := srv.Score(ctx, &hot); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := srv.ScoreBatch(ctx, []txn.Transaction{hot}); !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("cancelled calls took %v, want prompt return", d)
	}
	if alerted {
		t.Fatal("alert fired under a cancelled context")
	}
	if st := srv.Latency(); st.Count != 0 {
		t.Fatalf("cancelled scores recorded: %+v", st)
	}
}

func TestStrictUsers(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	u := txn.User{ID: 1}
	_ = up.PutUser(&u, feature.UserStats{}, nil)
	srv, err := New(tab, trainToy(t, 0), WithStrictUsers())
	if err != nil {
		t.Fatal(err)
	}
	tx := txn.Transaction{ID: 1, From: 1, To: 404, Amount: 10}
	if _, err := srv.Score(context.Background(), &tx); !errors.Is(err, ErrUserNotFound) {
		t.Fatalf("err = %v, want ErrUserNotFound", err)
	}
	if _, err := srv.ScoreBatch(context.Background(), []txn.Transaction{tx}); !errors.Is(err, ErrUserNotFound) {
		t.Fatalf("batch err = %v, want ErrUserNotFound", err)
	}
}

// ScoreBatch preserves input order and agrees verdict-for-verdict with
// the sequential path.
func TestScoreBatchMatchesSequential(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(0); i < 50; i++ {
		u := txn.User{ID: i, Age: uint8(20 + i%40)}
		_ = up.PutUser(&u, feature.UserStats{OutCount: float64(i)}, nil)
	}
	srv, err := New(tab, trainToy(t, 0), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	txns := make([]txn.Transaction, 300)
	for i := range txns {
		txns[i] = txn.Transaction{
			ID:   txn.TxnID(i + 1),
			From: txn.UserID(r.Intn(50)), To: txn.UserID(r.Intn(50)),
			Amount: float32(r.Float64() * 2000),
		}
	}
	ctx := context.Background()
	verdicts, err := srv.ScoreBatch(ctx, txns)
	if err != nil {
		t.Fatal(err)
	}
	if len(verdicts) != len(txns) {
		t.Fatalf("got %d verdicts, want %d", len(verdicts), len(txns))
	}
	for i := range txns {
		want, err := srv.Score(ctx, &txns[i])
		if err != nil {
			t.Fatal(err)
		}
		got := verdicts[i]
		if got.TxnID != txns[i].ID {
			t.Fatalf("verdict %d out of order: txn %d", i, got.TxnID)
		}
		if got.Score != want.Score || got.Fraud != want.Fraud {
			t.Fatalf("verdict %d: batch %+v != sequential %+v", i, got, want)
		}
	}
	if st := srv.Latency(); st.Count != int64(2*len(txns)) {
		t.Fatalf("stats count = %d, want %d", st.Count, 2*len(txns))
	}
}

func TestScoreBatchLimits(t *testing.T) {
	tab := table(t)
	srv, err := New(tab, trainToy(t, 0), WithMaxBatch(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if v, err := srv.ScoreBatch(ctx, nil); err != nil || v != nil {
		t.Fatalf("empty batch: %v, %v", v, err)
	}
	txns := make([]txn.Transaction, 3)
	if _, err := srv.ScoreBatch(ctx, txns); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
}

func TestHotSwapBundle(t *testing.T) {
	tab := table(t)
	srv, err := New(tab, trainToy(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	if srv.BundleVersion() != "2017-04-10" {
		t.Fatal("version wrong")
	}
	nb := trainToy(t, 0)
	nb.Version = "2017-04-11"
	if err := srv.SetBundle(nb); err != nil {
		t.Fatal(err)
	}
	if srv.BundleVersion() != "2017-04-11" {
		t.Fatal("hot swap failed")
	}
	info := srv.ModelInfo()
	if info.Version != "2017-04-11" || info.Threshold != 0.5 || info.EmbeddingDim != 0 {
		t.Fatalf("model info = %+v", info)
	}
	if err := srv.SetBundle(nil); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("nil bundle: %v, want ErrBundleInvalid", err)
	}
}

// A bundle whose declared EmbeddingDim disagrees with the classifier's
// trained input width must be rejected at every publication point —
// otherwise it would hot-swap cleanly and panic inside Score.
func TestBundleWidthMismatchRejected(t *testing.T) {
	tab := table(t)
	good := trainToy(t, 0) // classifier trained on NumBasic features
	clf, err := good.Classifier()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewBundle("bad", clf, 0.5, good.City, 8); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("NewBundle: %v, want ErrBundleInvalid", err)
	}
	// Forge the inconsistency past the constructor, as a corrupt or
	// hand-rolled upload would.
	bad := trainToy(t, 0)
	bad.EmbeddingDim = 8
	if _, err := New(tab, bad); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("New: %v, want ErrBundleInvalid", err)
	}
	srv, err := New(tab, good)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetBundle(bad); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("SetBundle: %v, want ErrBundleInvalid", err)
	}
	raw, err := bad.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeBundle(raw); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("DecodeBundle: %v, want ErrBundleInvalid", err)
	}
}

func TestMillisecondLatency(t *testing.T) {
	// The paper's headline: prediction in mere milliseconds. With an
	// in-process HBase the p99 must be far below 10ms.
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(0); i < 200; i++ {
		u := txn.User{ID: i, Age: uint8(20 + i%50)}
		_ = up.PutUser(&u, feature.UserStats{OutCount: float64(i)}, nil)
	}
	srv, err := New(tab, trainToy(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	r := rng.New(2)
	for i := 0; i < 500; i++ {
		tx := txn.Transaction{
			ID:   txn.TxnID(i),
			From: txn.UserID(r.Intn(200)), To: txn.UserID(r.Intn(200)),
			Amount: float32(r.Float64() * 2000),
		}
		if _, err := srv.Score(ctx, &tx); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Latency()
	if st.P99 > 10*time.Millisecond {
		t.Errorf("p99 latency %v exceeds 10ms", st.P99)
	}
}

func TestNewServerValidation(t *testing.T) {
	tab := table(t)
	if _, err := New(nil, trainToy(t, 0)); err == nil {
		t.Error("nil table accepted")
	}
	if _, err := New(tab, nil); !errors.Is(err, ErrBundleInvalid) {
		t.Error("nil bundle accepted")
	}
	// The deprecated constructor still works.
	if _, err := NewServer(tab, trainToy(t, 0), nil); err != nil {
		t.Errorf("NewServer: %v", err)
	}
}

var _ = model.Sigmoid // referenced for doc purposes

// ensembleEngine builds an engine over a two-member fixed-score ensemble
// (0.2 and 0.8, mean-combined) with two uploaded users.
func ensembleEngine(t *testing.T, combine Combiner) *Server {
	t.Helper()
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i, Age: 30}
		if err := up.PutUser(&u, feature.UserStats{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	city := feature.CityTable{Fraud: []float64{0.01}, Share: []float64{1}}
	b, err := NewEnsembleBundle("ens-2017-04-10", []EnsembleMember{
		{Name: "lo", Clf: &fixedModel{V: 0.2, N: feature.NumBasic}, Threshold: 0.5},
		{Name: "hi", Clf: &fixedModel{V: 0.8, N: feature.NumBasic}, Threshold: 0.5},
	}, combine, 0.5, city, 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(tab, b)
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// An ensemble engine combines member scores and exposes the per-member
// breakdown on both the single and the batch path.
func TestEnsembleScoreExposesMembers(t *testing.T) {
	srv := ensembleEngine(t, CombineMean)
	ctx := context.Background()
	tx := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 100}
	v, err := srv.Score(ctx, &tx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Score != 0.5 || !v.Fraud {
		t.Fatalf("verdict = %+v", v)
	}
	if len(v.Members) != 2 ||
		v.Members[0] != (MemberScore{Name: "lo", Score: 0.2}) ||
		v.Members[1] != (MemberScore{Name: "hi", Score: 0.8}) {
		t.Fatalf("members = %+v", v.Members)
	}
	vs, err := srv.ScoreBatch(ctx, []txn.Transaction{tx, {ID: 2, From: 2, To: 1, Amount: 7}})
	if err != nil {
		t.Fatal(err)
	}
	for i, bv := range vs {
		if bv.Score != v.Score || len(bv.Members) != 2 || bv.Members[1].Score != 0.8 {
			t.Fatalf("batch verdict %d = %+v", i, bv)
		}
	}
	info := srv.ModelInfo()
	if info.Combiner != "mean" || len(info.Members) != 2 ||
		info.Members[0].Name != "lo" || info.Members[0].Weight != 1 {
		t.Fatalf("model info = %+v", info)
	}
}

// A max-combined ensemble flags when its most suspicious member does.
func TestEnsembleMaxCombiner(t *testing.T) {
	srv := ensembleEngine(t, CombineMax)
	tx := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 100}
	v, err := srv.Score(context.Background(), &tx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Score != 0.8 || !v.Fraud {
		t.Fatalf("verdict = %+v", v)
	}
}

// A v1 single-model bundle keeps its wire shape: no members on verdicts
// or model info, and hot-swapping between formats works both ways.
func TestV1BundleOmitsMembersAndSwapsToEnsemble(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i}
		_ = up.PutUser(&u, feature.UserStats{}, nil)
	}
	srv, err := New(tab, trainToy(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	tx := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 1500}
	v, err := srv.Score(context.Background(), &tx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Members != nil {
		t.Fatalf("v1 verdict has members: %+v", v.Members)
	}
	if info := srv.ModelInfo(); info.Combiner != "" || info.Members != nil {
		t.Fatalf("v1 model info = %+v", info)
	}
	city := feature.CityTable{Fraud: []float64{0.01}, Share: []float64{1}}
	ens, err := NewEnsembleBundle("ens", []EnsembleMember{
		{Name: "only", Clf: &fixedModel{V: 0.9, N: feature.NumBasic}, Threshold: 0.5},
	}, CombineMean, 0.5, city, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetBundle(ens); err != nil {
		t.Fatal(err)
	}
	v, err = srv.Score(context.Background(), &tx)
	if err != nil {
		t.Fatal(err)
	}
	if v.Score != 0.9 || len(v.Members) != 1 || v.Members[0].Name != "only" {
		t.Fatalf("post-swap verdict = %+v", v)
	}
}

// A v1 bundle encoded by the previous (single-model) format decodes and
// serves unchanged through today's DecodeBundle.
func TestV1WireBundleStillServes(t *testing.T) {
	b := trainToy(t, 0)
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumMembers() != 1 || len(got.Members) != 0 {
		t.Fatalf("v1 bundle decoded as %d members (%d explicit)", got.NumMembers(), len(got.Members))
	}
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i}
		_ = up.PutUser(&u, feature.UserStats{}, nil)
	}
	srv, err := New(tab, got)
	if err != nil {
		t.Fatal(err)
	}
	tx := txn.Transaction{ID: 9, From: 1, To: 2, Amount: 1900}
	v, err := srv.Score(context.Background(), &tx)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Fraud || v.Members != nil {
		t.Fatalf("verdict = %+v", v)
	}
}
