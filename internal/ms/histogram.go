package ms

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// histogram is a fixed-size latency histogram with log-spaced buckets:
// recording is a lock-free O(log buckets) search plus one atomic add, and
// a percentile read walks the bucket array once. It replaces the pre-v1
// unbounded sample slice that was fully re-sorted on every /stats call.
//
// bucket i counts samples d with bounds[i-1] < d <= bounds[i]; the final
// bucket counts everything above the last bound. Percentiles are reported
// as the upper bound of the bucket containing the target rank (clamped to
// the observed maximum), so they are conservative estimates whose
// resolution is the bucket spacing.
type histogram struct {
	bounds []time.Duration // ascending bucket upper bounds
	counts []atomic.Int64  // len(bounds)+1; the last is the overflow bucket
	max    atomic.Int64
}

// defaultHistBounds covers 1µs..1s in a 1-2-5 progression — 19 buckets,
// plenty of resolution around the paper's millisecond-scale envelope.
func defaultHistBounds() []time.Duration {
	var b []time.Duration
	for _, decade := range []time.Duration{
		time.Microsecond, 10 * time.Microsecond, 100 * time.Microsecond,
		time.Millisecond, 10 * time.Millisecond, 100 * time.Millisecond,
	} {
		b = append(b, decade, 2*decade, 5*decade)
	}
	return append(b, time.Second)
}

// newHistogram builds a histogram over the given ascending upper bounds.
// Bounds are sanitised (sorted, deduplicated, non-positive dropped); an
// empty set falls back to the defaults.
func newHistogram(bounds []time.Duration) *histogram {
	bs := make([]time.Duration, 0, len(bounds))
	for _, b := range bounds {
		if b > 0 {
			bs = append(bs, b)
		}
	}
	sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
	dst := bs[:0]
	for i, b := range bs {
		if i == 0 || b != dst[len(dst)-1] {
			dst = append(dst, b)
		}
	}
	bs = dst
	if len(bs) == 0 {
		bs = defaultHistBounds()
	}
	return &histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// record adds one sample. Safe for concurrent use.
func (h *histogram) record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return d <= h.bounds[i] })
	h.counts[i].Add(1)
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			return
		}
	}
}

// snapshot copies the bucket counts and returns them with their sum.
func (h *histogram) snapshot() ([]int64, int64) {
	counts := make([]int64, len(h.counts))
	var total int64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	return counts, total
}

// mergeHistograms sums same-shaped histograms bucket-wise and returns
// the merged snapshot (bounds, counts, total, max). All inputs must
// share bounds — true for the engine's histograms, which are all built
// from one option set (the sharded engine constructs every shard with
// identical options, and the wire router only merges stats bodies whose
// bounds_ns arrays match).
func mergeHistograms(hs []*histogram) (bounds []time.Duration, counts []int64, total int64, max time.Duration) {
	if len(hs) == 0 {
		return nil, nil, 0, 0
	}
	bounds = hs[0].bounds
	counts = make([]int64, len(hs[0].counts))
	for _, h := range hs {
		cs, t := h.snapshot()
		for i := range counts {
			counts[i] += cs[i]
		}
		total += t
		if m := time.Duration(h.max.Load()); m > max {
			max = m
		}
	}
	return bounds, counts, total, max
}

// histBodyFrom renders a histogram snapshot as its raw wire form:
// nanosecond bucket bounds, counts (last entry is the overflow bucket)
// and the observed maximum. Raw buckets are what make the fleet view
// lossless — the router sums counts across shards and recomputes
// quantiles, instead of averaging per-shard percentiles (meaningless).
func histBodyFrom(bounds []time.Duration, counts []int64, total int64, max time.Duration) map[string]interface{} {
	boundsNS := make([]int64, len(bounds))
	for i, b := range bounds {
		boundsNS[i] = int64(b)
	}
	return map[string]interface{}{
		"bounds_ns": boundsNS,
		"counts":    counts,
		"max_ns":    int64(max),
	}
}

// quantileFrom reads the p-quantile (0 < p <= 1) out of a snapshot.
func quantileFrom(bounds []time.Duration, counts []int64, total int64, max time.Duration, p float64) time.Duration {
	if total == 0 {
		return 0
	}
	target := int64(math.Ceil(p * float64(total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range counts {
		cum += c
		if cum >= target {
			if i < len(bounds) && bounds[i] < max {
				return bounds[i]
			}
			return max
		}
	}
	return max
}
