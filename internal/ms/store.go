package ms

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"

	"titant/internal/feature"
	"titant/internal/hbase"
	"titant/internal/txn"
)

// HBase layout (the paper's Figure 7): one row per user keyed "u:<id>",
// column family "bf" for the profile and aggregate fragments, column
// family "emb" for the user node embedding. Values are versioned by the
// upload timestamp, so the Model Server always reads "the latest version
// of user node embeddings and basic features".
const (
	FamilyBasic = "bf"
	FamilyEmb   = "emb"

	QualProfile = "profile"
	QualStats   = "stats"
	QualVector  = "vec"
)

// RowKey returns the HBase row key of a user.
func RowKey(u txn.UserID) string { return "u:" + strconv.FormatInt(int64(u), 10) }

// encodeProfile packs a user profile into a fixed 24-byte value.
func encodeProfile(u *txn.User) []byte {
	b := make([]byte, 24)
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(u.ID))
	b[4] = u.Age
	b[5] = byte(u.Gender)
	le.PutUint16(b[6:], u.HomeCity)
	le.PutUint16(b[8:], uint16(u.AccountAge))
	b[10] = u.DeviceCount
	b[11] = u.KYCLevel
	le.PutUint32(b[12:], math.Float32bits(u.AvgDailyTxns))
	le.PutUint32(b[16:], math.Float32bits(u.AvgAmount))
	if u.MerchantFlag {
		b[20] = 1
	}
	return b
}

func decodeProfile(b []byte) (txn.User, error) {
	if len(b) < 24 {
		return txn.User{}, fmt.Errorf("ms: profile value has %d bytes, want 24", len(b))
	}
	le := binary.LittleEndian
	return txn.User{
		ID:           txn.UserID(le.Uint32(b[0:])),
		Age:          b[4],
		Gender:       txn.Gender(b[5]),
		HomeCity:     le.Uint16(b[6:]),
		AccountAge:   txn.AccountAgeDays(le.Uint16(b[8:])),
		DeviceCount:  b[10],
		KYCLevel:     b[11],
		AvgDailyTxns: math.Float32frombits(le.Uint32(b[12:])),
		AvgAmount:    math.Float32frombits(le.Uint32(b[16:])),
		MerchantFlag: b[20] == 1,
	}, nil
}

// encodeStats packs the aggregate fragment (8 float64s).
func encodeStats(s feature.UserStats) []byte {
	b := make([]byte, 64)
	le := binary.LittleEndian
	vals := [8]float64{s.OutCount, s.InCount, s.OutAmount, s.InAmount,
		s.DistinctRcv, s.DistinctSnd, s.OutDays, s.InDays}
	for i, v := range vals {
		le.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func decodeStats(b []byte) (feature.UserStats, error) {
	if len(b) < 64 {
		return feature.UserStats{}, fmt.Errorf("ms: stats value has %d bytes, want 64", len(b))
	}
	le := binary.LittleEndian
	f := func(i int) float64 { return math.Float64frombits(le.Uint64(b[i*8:])) }
	return feature.UserStats{
		OutCount: f(0), InCount: f(1), OutAmount: f(2), InAmount: f(3),
		DistinctRcv: f(4), DistinctSnd: f(5), OutDays: f(6), InDays: f(7),
	}, nil
}

// encodeVec packs an embedding as float32s.
func encodeVec(v []float32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(x))
	}
	return b
}

func decodeVec(b []byte) []float32 {
	return decodeVecInto(nil, b)
}

// decodeVecInto decodes an embedding into dst's backing array, allocating
// only when its capacity is insufficient — the hot fetch path hands the
// same buffer back on every call, so steady-state decoding is
// allocation-free.
func decodeVecInto(dst []float32, b []byte) []float32 {
	n := len(b) / 4
	if cap(dst) < n {
		dst = make([]float32, n)
	} else {
		dst = dst[:n]
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return dst
}

// Uploader writes users' serving fragments into HBase; the offline
// pipeline runs it after every training day ("every time offline training
// is completed, the data is uploaded to Ali-HBase by the version of date
// time").
type Uploader struct {
	Table   *hbase.Table
	Version int64 // timestamp for this upload wave; 0 = auto

	// Invalidate, when set, is called with each uploaded user's ID after
	// that user's fragments have all been written. Wire it to a serving
	// engine's InvalidateUser so a read-through user cache drops the
	// user's stale fragments the moment the store has accepted new ones.
	Invalidate func(txn.UserID)
}

// PutUser uploads one user's profile, aggregate fragment and (optional)
// embedding.
func (up *Uploader) PutUser(u *txn.User, stats feature.UserStats, emb []float32) error {
	row := RowKey(u.ID)
	if _, err := up.Table.Put(row, FamilyBasic, QualProfile, encodeProfile(u), up.Version); err != nil {
		return err
	}
	if _, err := up.Table.Put(row, FamilyBasic, QualStats, encodeStats(stats), up.Version); err != nil {
		return err
	}
	if emb != nil {
		if _, err := up.Table.Put(row, FamilyEmb, QualVector, encodeVec(emb), up.Version); err != nil {
			return err
		}
	}
	if up.Invalidate != nil {
		up.Invalidate(u.ID)
	}
	return nil
}

// userParts is what the Model Server fetches per endpoint.
type userParts struct {
	user  txn.User
	stats feature.UserStats
	emb   []float32
}

// fetchUser reads one user's row. Missing rows yield zero fragments with
// found=false; the engine's strict-users policy decides whether that is
// an error (the default serves cold-start users with empty history).
func fetchUser(tab *hbase.Table, u txn.UserID) (userParts, bool, error) {
	var out userParts
	found, err := fetchUserInto(tab, u, &out)
	return out, found, err
}

// fetchUserInto reads one user's row through the store's zero-copy
// point-read visitor, decoding each fragment straight into *out. The
// embedding decodes into out's existing buffer when capacity allows, so a
// caller that recycles its userParts pays no steady-state allocation.
// out is fully overwritten (absent fragments come back zero).
func fetchUserInto(tab *hbase.Table, u txn.UserID, out *userParts) (bool, error) {
	emb := out.emb[:0]
	*out = userParts{}
	out.user.ID = u
	// Keep the recycled buffer attached even if this row carries no
	// embedding cell, so the next fetch that does still reuses it.
	out.emb = emb
	var derr error
	found, err := tab.VisitRow(RowKey(u), func(c *hbase.Cell) bool {
		switch {
		case c.Family == FamilyBasic && c.Qualifier == QualProfile:
			p, e := decodeProfile(c.Value)
			if e != nil {
				derr = e
				return false
			}
			out.user = p
		case c.Family == FamilyBasic && c.Qualifier == QualStats:
			s, e := decodeStats(c.Value)
			if e != nil {
				derr = e
				return false
			}
			out.stats = s
		case c.Family == FamilyEmb && c.Qualifier == QualVector:
			// Copy out of the cell: the value aliases store memory that a
			// later flush/compaction round may retire.
			emb = decodeVecInto(emb, c.Value)
			out.emb = emb
		}
		return true
	})
	if err != nil {
		return false, err
	}
	if derr != nil {
		return true, derr
	}
	return found, nil
}

// fetchUsersInto is the batched fetch under ScoreBatch: one multi-get
// lock round resolves every id in the chunk, with per-row decoding as the
// visitor streams cells. parts[i] and found[i] correspond to ids[i];
// rows[i] must be RowKey(ids[i]) (the caller builds the key slice once
// per batch so retries and cache fills reuse it).
func fetchUsersInto(tab *hbase.Table, ids []txn.UserID, rows []string, parts []userParts, found []bool) error {
	for i := range parts {
		emb := parts[i].emb[:0]
		parts[i] = userParts{}
		parts[i].user.ID = ids[i]
		parts[i].emb = emb
		found[i] = false
	}
	var derr error
	err := tab.VisitRows(rows, func(i int, c *hbase.Cell) bool {
		out := &parts[i]
		found[i] = true
		switch {
		case c.Family == FamilyBasic && c.Qualifier == QualProfile:
			p, e := decodeProfile(c.Value)
			if e != nil {
				derr = fmt.Errorf("ms: fetch user %d: %w", ids[i], e)
				return false
			}
			out.user = p
		case c.Family == FamilyBasic && c.Qualifier == QualStats:
			s, e := decodeStats(c.Value)
			if e != nil {
				derr = fmt.Errorf("ms: fetch user %d: %w", ids[i], e)
				return false
			}
			out.stats = s
		case c.Family == FamilyEmb && c.Qualifier == QualVector:
			out.emb = decodeVecInto(out.emb[:0], c.Value)
		}
		return true
	})
	if err != nil {
		return err
	}
	if derr != nil {
		return derr
	}
	return nil
}
