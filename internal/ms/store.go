package ms

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strconv"

	"titant/internal/feature"
	"titant/internal/hbase"
	"titant/internal/txn"
)

// HBase layout (the paper's Figure 7): one row per user keyed "u:<id>",
// column family "bf" for the profile and aggregate fragments, column
// family "emb" for the user node embedding. Values are versioned by the
// upload timestamp, so the Model Server always reads "the latest version
// of user node embeddings and basic features".
const (
	FamilyBasic = "bf"
	FamilyEmb   = "emb"

	QualProfile = "profile"
	QualStats   = "stats"
	QualVector  = "vec"
)

// RowKey returns the HBase row key of a user.
func RowKey(u txn.UserID) string { return "u:" + strconv.FormatInt(int64(u), 10) }

// encodeProfile packs a user profile into a fixed 24-byte value.
func encodeProfile(u *txn.User) []byte {
	b := make([]byte, 24)
	le := binary.LittleEndian
	le.PutUint32(b[0:], uint32(u.ID))
	b[4] = u.Age
	b[5] = byte(u.Gender)
	le.PutUint16(b[6:], u.HomeCity)
	le.PutUint16(b[8:], uint16(u.AccountAge))
	b[10] = u.DeviceCount
	b[11] = u.KYCLevel
	le.PutUint32(b[12:], math.Float32bits(u.AvgDailyTxns))
	le.PutUint32(b[16:], math.Float32bits(u.AvgAmount))
	if u.MerchantFlag {
		b[20] = 1
	}
	return b
}

func decodeProfile(b []byte) (txn.User, error) {
	if len(b) < 24 {
		return txn.User{}, fmt.Errorf("ms: profile value has %d bytes, want 24", len(b))
	}
	le := binary.LittleEndian
	return txn.User{
		ID:           txn.UserID(le.Uint32(b[0:])),
		Age:          b[4],
		Gender:       txn.Gender(b[5]),
		HomeCity:     le.Uint16(b[6:]),
		AccountAge:   txn.AccountAgeDays(le.Uint16(b[8:])),
		DeviceCount:  b[10],
		KYCLevel:     b[11],
		AvgDailyTxns: math.Float32frombits(le.Uint32(b[12:])),
		AvgAmount:    math.Float32frombits(le.Uint32(b[16:])),
		MerchantFlag: b[20] == 1,
	}, nil
}

// encodeStats packs the aggregate fragment (8 float64s).
func encodeStats(s feature.UserStats) []byte {
	b := make([]byte, 64)
	le := binary.LittleEndian
	vals := [8]float64{s.OutCount, s.InCount, s.OutAmount, s.InAmount,
		s.DistinctRcv, s.DistinctSnd, s.OutDays, s.InDays}
	for i, v := range vals {
		le.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func decodeStats(b []byte) (feature.UserStats, error) {
	if len(b) < 64 {
		return feature.UserStats{}, fmt.Errorf("ms: stats value has %d bytes, want 64", len(b))
	}
	le := binary.LittleEndian
	f := func(i int) float64 { return math.Float64frombits(le.Uint64(b[i*8:])) }
	return feature.UserStats{
		OutCount: f(0), InCount: f(1), OutAmount: f(2), InAmount: f(3),
		DistinctRcv: f(4), DistinctSnd: f(5), OutDays: f(6), InDays: f(7),
	}, nil
}

// encodeVec packs an embedding as float32s.
func encodeVec(v []float32) []byte {
	b := make([]byte, 4*len(v))
	for i, x := range v {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(x))
	}
	return b
}

func decodeVec(b []byte) []float32 {
	v := make([]float32, len(b)/4)
	for i := range v {
		v[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return v
}

// Uploader writes users' serving fragments into HBase; the offline
// pipeline runs it after every training day ("every time offline training
// is completed, the data is uploaded to Ali-HBase by the version of date
// time").
type Uploader struct {
	Table   *hbase.Table
	Version int64 // timestamp for this upload wave; 0 = auto
}

// PutUser uploads one user's profile, aggregate fragment and (optional)
// embedding.
func (up *Uploader) PutUser(u *txn.User, stats feature.UserStats, emb []float32) error {
	row := RowKey(u.ID)
	if _, err := up.Table.Put(row, FamilyBasic, QualProfile, encodeProfile(u), up.Version); err != nil {
		return err
	}
	if _, err := up.Table.Put(row, FamilyBasic, QualStats, encodeStats(stats), up.Version); err != nil {
		return err
	}
	if emb != nil {
		if _, err := up.Table.Put(row, FamilyEmb, QualVector, encodeVec(emb), up.Version); err != nil {
			return err
		}
	}
	return nil
}

// userParts is what the Model Server fetches per endpoint.
type userParts struct {
	user  txn.User
	stats feature.UserStats
	emb   []float32
}

// fetchUser reads one user's row. Missing rows yield zero fragments with
// found=false; the engine's strict-users policy decides whether that is
// an error (the default serves cold-start users with empty history).
func fetchUser(tab *hbase.Table, u txn.UserID) (userParts, bool, error) {
	var out userParts
	out.user.ID = u
	row, err := tab.GetRow(RowKey(u))
	if err != nil {
		if errors.Is(err, hbase.ErrNotFound) {
			return out, false, nil // unknown user: all-zero fragments
		}
		return out, false, err
	}
	if bf, ok := row[FamilyBasic]; ok {
		if pb, ok := bf[QualProfile]; ok {
			p, err := decodeProfile(pb)
			if err != nil {
				return out, true, err
			}
			out.user = p
		}
		if sb, ok := bf[QualStats]; ok {
			s, err := decodeStats(sb)
			if err != nil {
				return out, true, err
			}
			out.stats = s
		}
	}
	if ef, ok := row[FamilyEmb]; ok {
		if vb, ok := ef[QualVector]; ok {
			out.emb = decodeVec(vb)
		}
	}
	return out, true, nil
}
