package ms

import (
	"runtime"
	"time"

	"titant/internal/decision"
	"titant/internal/ms/usercache"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// DefaultMaxBatch is the ScoreBatch size limit of an engine built without
// WithMaxBatch.
const DefaultMaxBatch = 4096

// DefaultStreamWarmup is the number of transactions a live window must
// absorb before scoring trusts it over the bundle's frozen city table
// (see WithStreamWarmup).
const DefaultStreamWarmup = 1000

// Option configures the scoring engine built by New.
type Option func(*Server)

// WithAlert sets the fraud-interruption callback invoked for every
// transaction scored at or above the bundle threshold.
func WithAlert(a Alert) Option {
	return func(s *Server) { s.alert = a }
}

// WithWorkers sets the fan-out width of ScoreBatch's fetch and score
// phases. Values below 1 keep the default (GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n >= 1 {
			s.workers = n
		}
	}
}

// WithHistogram replaces the default latency buckets with custom upper
// bounds (ascending; sanitised by the engine). Percentile resolution is
// the bucket spacing, so tune the bounds to the deployment's latency
// envelope.
func WithHistogram(bounds []time.Duration) Option {
	return func(s *Server) { s.hist = telemetry.NewHistogram(bounds) }
}

// WithTraceSeed seeds the engine's trace-ID minter. Requests that
// arrive without an X-Trace-Id header are assigned IDs from this
// deterministic stream, so a replayed workload produces the same trace
// IDs — exemplars in a trace dump can be cross-referenced across runs.
// The default seed is 0; a sharded engine diversifies the seed per
// shard so co-resident shards never mint colliding IDs.
func WithTraceSeed(seed uint64) Option {
	return func(s *Server) { s.traceSeed = seed }
}

// WithoutTracing turns off per-stage span aggregation on this engine:
// Score/Decide and the batch paths skip the stage histograms and the
// slow-exemplar ring, so /v1/debug/trace and the stage series on
// /metrics stay empty. The stage clocks are still read either way —
// spans live in stack buffers — so this option exists to A/B-measure
// the aggregation cost (see BenchmarkScoreBatchTraced), not to save
// meaningful work in production.
func WithoutTracing() Option {
	return func(s *Server) { s.noTrace = true }
}

// WithStrictUsers makes scoring fail with ErrUserNotFound when the sender
// or receiver has no row in the feature store. The default is the paper's
// lenient cold-start behaviour: unknown users score with all-zero
// fragments.
func WithStrictUsers() Option {
	return func(s *Server) { s.strict = true }
}

// WithMaxBatch overrides the ScoreBatch size limit. n <= 0 removes the
// limit entirely.
func WithMaxBatch(n int) Option {
	return func(s *Server) { s.maxBatch = n }
}

// DefaultUserCacheSize is the entry capacity daemons use when the user
// cache is enabled without an explicit size.
const DefaultUserCacheSize = 1 << 16

// WithUserCache layers a sharded read-through cache of decoded user
// fragments over the feature store: warm fetches cost a shard probe
// instead of a store read plus three codec passes, concurrent misses for
// one user collapse to a single load, and unknown users are held as
// negative entries so cold-start traffic is allocation-free. size is the
// entry capacity (CLOCK-evicted; n <= 0 disables the cache). Coherence:
// Uploader.Invalidate / InvalidateUser drop a republished user exactly,
// SetBundle purges (a swap usually follows a full upload wave), and
// Ingest clears negative entries for its endpoints. Counters surface on
// /v1/stats.
func WithUserCache(size int) Option {
	return func(s *Server) {
		if size > 0 {
			s.cache = usercache.New[txn.UserID, userParts](size, 0, userHash)
		}
	}
}

// StreamAggregates is the live-aggregate surface the engine consumes when
// built with WithStreamAggregates. It is satisfied by
// internal/feature/stream.Store; the engine depends only on this interface
// so alternative window implementations can be swapped in.
type StreamAggregates interface {
	// Ingest feeds one observed transaction into the live window.
	Ingest(t *txn.Transaction)
	// LookupCity returns city c's smoothed fraud rate, traffic share and
	// in-window transaction count.
	LookupCity(c uint16) (fraud, share, txns float64)
	// Ingested reports how many transactions the window has accepted.
	Ingested() int64
}

// WithStreamAggregates attaches a streaming aggregate store: scoring reads
// per-city statistics from the live window (falling back to the bundle's
// frozen table for cities with no in-window traffic), and the engine
// accepts transactions through Ingest / POST /v1/ingest to keep the
// window current. Without this option the engine serves the paper's pure
// T+1 mode: every statistic is frozen at bundle-build time.
func WithStreamAggregates(st StreamAggregates) Option {
	return func(s *Server) { s.stream = st }
}

// WithStreamWarmup sets how many transactions the live window must have
// absorbed before scoring reads it instead of the bundle's frozen city
// table (default DefaultStreamWarmup). Below the threshold a near-empty
// window would compute distorted statistics — a single transaction reads
// a traffic share of 1.0. n <= 0 trusts the window immediately; a
// deployment that warms the window from a reference backfill before
// serving can set it low.
func WithStreamWarmup(n int64) Option {
	return func(s *Server) { s.streamWarmup = n }
}

// WithPolicy attaches a decision policy: the engine gains Decide /
// DecideBatch (and the POST /v1/decide[/batch] routes), mapping every
// score through the policy's per-scenario threshold bands and rule
// predicates to an approve / challenge / deny action. The policy must
// validate (see decision.Parse) or New fails; it hot-swaps through
// SetPolicy / POST /v1/policy. Without this option the decision routes
// answer 409 policy_disabled.
func WithPolicy(p *decision.Policy) Option {
	return func(s *Server) { s.policy = p }
}

// WithShadow deploys a challenger bundle in shadow: every scored
// transaction is also offered to a bounded queue (see WithShadowQueue)
// whose worker scores it against the challenger off the hot path,
// accumulating champion/challenger agreement, divergence and
// would-have-flipped counters on /v1/stats. The hot path never blocks on
// the challenger — a full queue sheds and counts the drop. Call Close to
// stop the worker when the engine is discarded.
func WithShadow(challenger *Bundle) Option {
	return func(s *Server) { s.shadowBundle = challenger }
}

// WithShadowQueue bounds the shadow queue (default DefaultShadowQueue).
// Size it for bursts: the queue absorbs score-path spikes the single
// shadow worker drains between them; anything beyond the bound is shed.
func WithShadowQueue(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.shadowQueue = n
		}
	}
}

// WithDriftMonitor enables score drift monitoring: fixed-bin histograms
// of the combined and per-member score distributions, with PSI and KS
// computed against a baseline frozen shortly after each bundle deploy
// (the first cfg.BaselineSamples scores). Zero-valued config fields take
// the defaults of decision.DefaultDriftConfig. Statistics and alert
// flags surface on /v1/stats and /healthz; the monitor resets on every
// bundle swap.
func WithDriftMonitor(cfg decision.DriftConfig) Option {
	return func(s *Server) { s.driftCfg = &cfg }
}

// WithModelToken guards POST /v1/models behind a bearer token: requests
// must carry "Authorization: Bearer <token>" or are rejected with 401.
// Without this option the route is open — acceptable on a private
// network, but any client that can reach the scoring port can then
// replace the live model.
func WithModelToken(token string) Option {
	return func(s *Server) { s.modelToken = token }
}

// WithIngestToken guards POST /v1/ingest and /v1/ingest/batch behind a
// bearer token, for the same reason WithModelToken guards model swaps:
// an open ingest route lets any client that can reach the scoring port
// poison the live city statistics scoring reads (flooding a city with
// fraud labels interrupts its legitimate transfers; flooding it with
// clean traffic dilutes real fraud), and grow the store's memory by
// inventing fresh user IDs (each costs a ring of window buckets that
// cannot be evicted until it expires). Set the token anywhere the
// scoring port is not a private network. Library callers of Ingest are
// not affected.
func WithIngestToken(token string) Option {
	return func(s *Server) { s.ingestToken = token }
}

// WithCallerQuota enforces a per-caller token-bucket quota on every
// request path (score, decide, ingest): each caller (the X-Caller header
// over HTTP, WithCallerContext in-process, "default" otherwise) may
// sustain rate transactions per second with bursts up to burst tokens.
// Beyond the quota requests fail with ErrRateLimited (HTTP 429
// "rate_limited"). burst < 1 is raised to 1; rate <= 0 leaves quotas
// off. The registry holds exact buckets for the first 4096 distinct
// callers; later callers share one overflow bucket so unbounded caller
// names cannot grow engine memory.
func WithCallerQuota(rate float64, burst int) Option {
	return func(s *Server) {
		if rate <= 0 {
			return
		}
		a := s.admissionConfig()
		a.rate = rate
		a.burst = float64(burst)
		if a.burst < 1 {
			a.burst = 1
		}
	}
}

// WithMaxInflight bounds the transactions concurrently inside the engine
// across all callers and paths. At the bound new work is refused with
// ErrOverloaded (HTTP 429 "overloaded") instead of queueing, so overload
// sheds fast and the admitted traffic keeps its latency envelope.
// n <= 0 leaves the engine unbounded.
func WithMaxInflight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.admissionConfig().maxInflight = int64(n)
		}
	}
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
