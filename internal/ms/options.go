package ms

import (
	"runtime"
	"time"
)

// DefaultMaxBatch is the ScoreBatch size limit of an engine built without
// WithMaxBatch.
const DefaultMaxBatch = 4096

// Option configures the scoring engine built by New.
type Option func(*Server)

// WithAlert sets the fraud-interruption callback invoked for every
// transaction scored at or above the bundle threshold.
func WithAlert(a Alert) Option {
	return func(s *Server) { s.alert = a }
}

// WithWorkers sets the fan-out width of ScoreBatch's fetch and score
// phases. Values below 1 keep the default (GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(s *Server) {
		if n >= 1 {
			s.workers = n
		}
	}
}

// WithHistogram replaces the default latency buckets with custom upper
// bounds (ascending; sanitised by the engine). Percentile resolution is
// the bucket spacing, so tune the bounds to the deployment's latency
// envelope.
func WithHistogram(bounds []time.Duration) Option {
	return func(s *Server) { s.hist = newHistogram(bounds) }
}

// WithStrictUsers makes scoring fail with ErrUserNotFound when the sender
// or receiver has no row in the feature store. The default is the paper's
// lenient cold-start behaviour: unknown users score with all-zero
// fragments.
func WithStrictUsers() Option {
	return func(s *Server) { s.strict = true }
}

// WithMaxBatch overrides the ScoreBatch size limit. n <= 0 removes the
// limit entirely.
func WithMaxBatch(n int) Option {
	return func(s *Server) { s.maxBatch = n }
}

// WithModelToken guards POST /v1/models behind a bearer token: requests
// must carry "Authorization: Bearer <token>" or are rejected with 401.
// Without this option the route is open — acceptable on a private
// network, but any client that can reach the scoring port can then
// replace the live model.
func WithModelToken(token string) Option {
	return func(s *Server) { s.modelToken = token }
}

func defaultWorkers() int { return runtime.GOMAXPROCS(0) }
