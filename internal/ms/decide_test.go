package ms

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"titant/internal/decision"
	"titant/internal/feature"
	"titant/internal/feature/stream"
	"titant/internal/rng"
	"titant/internal/txn"
)

// decidePolicy is the test policy: the Default bands for a 0.5-threshold
// bundle plus one transaction-field rule and one velocity rule.
func decidePolicy(t testing.TB) *decision.Policy {
	t.Helper()
	p, err := decision.Parse([]byte(`{
	  "version": "pol-1",
	  "scenarios": {
	    "default": {
	      "bands": [
	        {"min": 0, "max": 0.5, "action": "approve"},
	        {"min": 0.5, "max": 0.75, "action": "challenge"},
	        {"min": 0.75, "max": 1, "action": "deny"}
	      ],
	      "rules": [
	        {"name": "amount-ceiling", "when": [{"field": "amount", "op": ">", "value": 100000}], "action": "deny"},
	        {"name": "velocity-cap", "when": [{"field": "snd_out_count", "op": ">", "value": 5}], "action": "challenge"}
	      ]
	    },
	    "withdrawal": {
	      "bands": [
	        {"min": 0, "max": 0.5, "action": "approve"},
	        {"min": 0.5, "max": 1, "action": "deny"}
	      ]
	    }
	  }
	}`))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// decideServer builds an engine with users 1..4 uploaded and the test
// policy attached, plus any extra options.
func decideServer(t *testing.T, opts ...Option) (*Server, *httptest.Server) {
	t.Helper()
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 4; i++ {
		u := txn.User{ID: i, Age: uint8(20 + i)}
		if err := up.PutUser(&u, feature.UserStats{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(tab, trainToy(t, 0), append([]Option{WithPolicy(decidePolicy(t))}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func TestDecideActions(t *testing.T) {
	srv, _ := decideServer(t)
	ctx := context.Background()
	// Low amount scores low: approve.
	lo := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 5}
	d, err := srv.Decide(ctx, &lo, decision.ScenarioDefault)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != decision.ActionApprove || d.Fraud {
		t.Fatalf("low-amount decision = %+v", d)
	}
	if d.PolicyVersion != "pol-1" || d.Reason == "" {
		t.Fatalf("attribution = %+v", d)
	}
	// High amount scores high: challenge or deny, and the verdict agrees
	// with the plain scoring path bitwise.
	hi := txn.Transaction{ID: 2, From: 1, To: 2, Amount: 1900}
	d, err = srv.Decide(ctx, &hi, decision.ScenarioDefault)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action == decision.ActionApprove {
		t.Fatalf("high-amount decision = %+v", d)
	}
	v, err := srv.Score(ctx, &hi)
	if err != nil {
		t.Fatal(err)
	}
	if v.Score != d.Score || v.Fraud != d.Fraud {
		t.Fatalf("Decide score %v vs Score %v", d.Score, v.Score)
	}
	// The rule overrides the model regardless of score.
	huge := txn.Transaction{ID: 3, From: 1, To: 2, Amount: 200000}
	d, err = srv.Decide(ctx, &huge, decision.ScenarioDefault)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != decision.ActionDeny || !d.RuleOverride || !strings.Contains(d.Reason, "amount-ceiling") {
		t.Fatalf("rule decision = %+v", d)
	}
	// Scenario routing: withdrawal denies what default challenges.
	mid := txn.Transaction{ID: 4, From: 1, To: 2, Amount: 1400}
	dd, err := srv.Decide(ctx, &mid, decision.ScenarioDefault)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := srv.Decide(ctx, &mid, decision.ScenarioWithdrawal)
	if err != nil {
		t.Fatal(err)
	}
	if dd.Score != dw.Score {
		t.Fatalf("scenario changed the score: %v vs %v", dd.Score, dw.Score)
	}
	if dd.Action == decision.ActionChallenge && dw.Action != decision.ActionDeny {
		t.Fatalf("withdrawal should escalate: default=%v withdrawal=%v", dd.Action, dw.Action)
	}
	st := srv.DecisionStats()
	if st.Decided != 5 || st.RuleOverrides != 1 {
		t.Fatalf("decision stats = %+v", st)
	}
}

// TestDecideOracle is the decision oracle of the acceptance criteria:
// the same bundle + policy + inputs produce bitwise-identical actions
// whether decided one at a time or as a batch, and across a policy
// hot-swap boundary (swapping in a freshly re-parsed copy of the same
// document changes nothing).
func TestDecideOracle(t *testing.T) {
	srv, _ := decideServer(t)
	ctx := context.Background()
	r := rng.New(17)
	txns := make([]txn.Transaction, 64)
	scenarios := make([]decision.Scenario, len(txns))
	all := []decision.Scenario{
		decision.ScenarioDefault, decision.ScenarioPayment,
		decision.ScenarioTransfer, decision.ScenarioWithdrawal,
	}
	for i := range txns {
		txns[i] = txn.Transaction{
			ID:   txn.TxnID(i + 1),
			From: txn.UserID(1 + r.Intn(4)), To: txn.UserID(1 + r.Intn(4)),
			Amount: float32(r.Float64() * 2500),
		}
		scenarios[i] = all[r.Intn(len(all))]
	}
	batch, err := srv.DecideBatch(ctx, txns, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for i := range txns {
		one, err := srv.Decide(ctx, &txns[i], scenarios[i])
		if err != nil {
			t.Fatal(err)
		}
		if one.Score != batch[i].Score || one.Action != batch[i].Action ||
			one.Reason != batch[i].Reason || one.RuleOverride != batch[i].RuleOverride {
			t.Fatalf("item %d: Decide %+v != DecideBatch %+v", i, one, batch[i])
		}
	}
	// Hot-swap to a byte-identical re-parsed policy: every action must
	// be unchanged.
	doc, err := srv.currentPolicy().Encode()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := decision.Parse(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.SetPolicy(fresh); err != nil {
		t.Fatal(err)
	}
	again, err := srv.DecideBatch(ctx, txns, scenarios)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if again[i].Action != batch[i].Action || again[i].Score != batch[i].Score ||
			again[i].Reason != batch[i].Reason {
			t.Fatalf("item %d diverged across policy swap: %+v vs %+v", i, again[i], batch[i])
		}
	}
}

func TestDecideDisabled(t *testing.T) {
	_, ts := v1Server(t) // built without WithPolicy
	body, _ := json.Marshal(DecideRequest{TxnRequest: TxnRequest{ID: 1, From: 1, To: 2, Amount: 5}})
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != "policy_disabled" {
		t.Fatalf("envelope = %+v", e)
	}
	resp, err = http.Get(ts.URL + "/v1/policy")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/policy = %d", resp.StatusCode)
	}
	resp.Body.Close()
	// Decisioning cannot be enabled over the wire on an engine the
	// operator left it off: POST /v1/policy is replace-only.
	doc := `{"version":"sneaky","scenarios":{"default":{"bands":[{"min":0,"max":1,"action":"deny"}]}}}`
	resp, err = http.Post(ts.URL+"/v1/policy", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /v1/policy on disabled engine = %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != "policy_disabled" {
		t.Fatalf("envelope = %+v", e)
	}
}

func TestDecideOverWire(t *testing.T) {
	_, ts := decideServer(t)
	// Single decide, explicit scenario.
	body, _ := json.Marshal(DecideRequest{
		TxnRequest: TxnRequest{ID: 7, From: 1, To: 2, Amount: 1400},
		Scenario:   "withdrawal",
	})
	resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var d Decision
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if d.TxnID != 7 || d.Scenario != decision.ScenarioWithdrawal || d.PolicyVersion != "pol-1" {
		t.Fatalf("decision = %+v", d)
	}
	// Batch with mixed scenarios, order preserved.
	batchBody, _ := json.Marshal(DecideBatchRequest{Transactions: []DecideRequest{
		{TxnRequest: TxnRequest{ID: 1, From: 1, To: 2, Amount: 5}},
		{TxnRequest: TxnRequest{ID: 2, From: 2, To: 3, Amount: 1900}, Scenario: "payment"},
		{TxnRequest: TxnRequest{ID: 3, From: 3, To: 4, Amount: 200000}, Scenario: "transfer"},
	}})
	resp, err = http.Post(ts.URL+"/v1/decide/batch", "application/json", bytes.NewReader(batchBody))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	var br DecideBatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(br.Decisions) != 3 {
		t.Fatalf("got %d decisions", len(br.Decisions))
	}
	for i, want := range []txn.TxnID{1, 2, 3} {
		if br.Decisions[i].TxnID != want {
			t.Fatalf("order: %+v", br.Decisions)
		}
	}
	if br.Decisions[0].Action != decision.ActionApprove {
		t.Fatalf("decision 0 = %+v", br.Decisions[0])
	}
	if br.Decisions[2].Action != decision.ActionDeny || !br.Decisions[2].RuleOverride {
		t.Fatalf("decision 2 = %+v", br.Decisions[2])
	}
	// Unknown scenario: 400, not a silent default.
	bad, _ := json.Marshal(map[string]interface{}{"id": 9, "from": 1, "to": 2, "scenario": "lending"})
	resp, err = http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown scenario status = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestPolicyHotSwapOverWire(t *testing.T) {
	srv, ts := decideServer(t)
	// GET serves the active document.
	resp, err := http.Get(ts.URL + "/v1/policy")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status = %d", resp.StatusCode)
	}
	var doc map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc["version"] != "pol-1" {
		t.Fatalf("GET body = %v", doc)
	}
	// POST swaps in a stricter policy; decisions change accordingly.
	stricter := `{"version": "pol-2", "scenarios": {"default": {"bands": [
	  {"min": 0, "max": 0.1, "action": "approve"},
	  {"min": 0.1, "max": 1, "action": "deny"}]}}}`
	resp, err = http.Post(ts.URL+"/v1/policy", "application/json", strings.NewReader(stricter))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
	var info PolicyInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Version != "pol-2" || len(info.Scenarios) != 1 {
		t.Fatalf("info = %+v", info)
	}
	if got := srv.PolicyVersion(); got != "pol-2" {
		t.Fatalf("engine policy = %q", got)
	}
	// An invalid policy is rejected whole; the live one keeps serving.
	resp, err = http.Post(ts.URL+"/v1/policy", "application/json",
		strings.NewReader(`{"version": "bad", "scenarios": {"default": {"bands": [{"min": 0.2, "max": 1, "action": "deny"}]}}}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid POST status = %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != "policy_invalid" {
		t.Fatalf("envelope = %+v", e)
	}
	if got := srv.PolicyVersion(); got != "pol-2" {
		t.Fatalf("invalid swap disturbed the live policy: %q", got)
	}
}

func TestPolicyTokenGuard(t *testing.T) {
	_, ts := decideServer(t, WithModelToken("sekrit"))
	doc := `{"version": "pol-3", "scenarios": {"default": {"bands": [{"min": 0, "max": 1, "action": "approve"}]}}}`
	resp, err := http.Post(ts.URL+"/v1/policy", "application/json", strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated POST = %d", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/policy", strings.NewReader(doc))
	req.Header.Set("Authorization", "Bearer sekrit")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated POST = %d", resp.StatusCode)
	}
	resp.Body.Close()
}

// TestVelocityRuleThroughEngine wires the full stack: a streaming store
// fed through Ingest supplies the velocity a policy rule caps.
func TestVelocityRuleThroughEngine(t *testing.T) {
	st := stream.New(stream.WithCities(8))
	srv, _ := decideServer(t, WithStreamAggregates(st))
	ctx := context.Background()
	tx := txn.Transaction{ID: 100, From: 1, To: 2, Amount: 5}
	d, err := srv.Decide(ctx, &tx, decision.ScenarioDefault)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != decision.ActionApprove {
		t.Fatalf("pre-velocity decision = %+v", d)
	}
	// Sender 1 sprays transfers; the live window now reports an
	// out-count above the cap.
	for i := 0; i < 10; i++ {
		if err := srv.Ingest(&txn.Transaction{ID: txn.TxnID(200 + i), From: 1, To: 3, Amount: 10, Sec: int32(i)}); err != nil {
			t.Fatal(err)
		}
	}
	d, err = srv.Decide(ctx, &tx, decision.ScenarioDefault)
	if err != nil {
		t.Fatal(err)
	}
	if d.Action != decision.ActionChallenge || !strings.Contains(d.Reason, "velocity-cap") {
		t.Fatalf("post-velocity decision = %+v", d)
	}
}

// identicalChallenger returns the champion bundle re-decoded, so shadow
// comparisons must agree perfectly.
func identicalChallenger(t *testing.T, b *Bundle) *Bundle {
	t.Helper()
	raw, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	nb, err := DecodeBundle(raw)
	if err != nil {
		t.Fatal(err)
	}
	return nb
}

func waitShadow(t *testing.T, srv *Server, want int64) decision.ShadowStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.ShadowStats()
		if st.Scored+st.Errors >= want || time.Now().After(deadline) {
			return st
		}
		time.Sleep(time.Millisecond)
	}
}

func TestShadowAgreesWithIdenticalChallenger(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 4; i++ {
		u := txn.User{ID: i, Age: uint8(20 + i)}
		if err := up.PutUser(&u, feature.UserStats{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	champion := trainToy(t, 0)
	srv, err := New(tab, champion, WithShadow(identicalChallenger(t, champion)))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ctx := context.Background()
	txns := make([]txn.Transaction, 32)
	r := rng.New(3)
	for i := range txns {
		txns[i] = txn.Transaction{
			ID:   txn.TxnID(i + 1),
			From: txn.UserID(1 + r.Intn(4)), To: txn.UserID(1 + r.Intn(4)),
			Amount: float32(r.Float64() * 2500),
		}
	}
	if _, err := srv.ScoreBatch(ctx, txns); err != nil {
		t.Fatal(err)
	}
	st := waitShadow(t, srv, int64(len(txns)))
	if st.Scored != int64(len(txns)) || st.Errors != 0 {
		t.Fatalf("shadow stats = %+v", st)
	}
	if st.Agreement != 1 || st.Flipped != 0 || st.MeanAbsDiff != 0 {
		t.Fatalf("identical challenger disagreed: %+v", st)
	}
}

// TestShadowNeverBlocks pins the drop-on-overflow contract: with the
// worker stopped and a one-slot queue, a burst of enqueues must return
// immediately and count drops instead of blocking the scoring path.
func TestShadowNeverBlocks(t *testing.T) {
	tab := table(t)
	champion := trainToy(t, 0)
	srv, err := New(tab, champion, WithShadow(identicalChallenger(t, champion)), WithShadowQueue(1))
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // stop the worker; the queue can only absorb one job
	v := Verdict{Score: 0.4}
	tx := txn.Transaction{ID: 1, From: 1, To: 2}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			srv.shadow.enqueue(&tx, &v, 0)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("enqueue blocked on a full queue")
	}
	st := srv.ShadowStats()
	if st.Dropped != 99 {
		t.Fatalf("dropped = %d, want 99", st.Dropped)
	}
	if depth := srv.ShadowQueueDepth(); depth != 1 {
		t.Fatalf("queue depth = %d", depth)
	}
}

func TestShadowChallengerValidated(t *testing.T) {
	tab := table(t)
	if _, err := New(tab, trainToy(t, 0), WithShadow(&Bundle{Version: "empty"})); !errors.Is(err, ErrBundleInvalid) {
		t.Fatalf("invalid challenger accepted: %v", err)
	}
}

// TestStatsAndHealthSections checks the new /v1/stats sections and the
// readiness body of /healthz with the full subsystem stack enabled.
func TestStatsAndHealthSections(t *testing.T) {
	st := stream.New(stream.WithCities(8))
	srv, ts := decideServer(t,
		WithStreamAggregates(st),
		WithDriftMonitor(decision.DriftConfig{}),
	)
	// One decide over the wire so the decide endpoint histogram and the
	// action counters are non-empty.
	body, _ := json.Marshal(DecideRequest{TxnRequest: TxnRequest{ID: 1, From: 1, To: 2, Amount: 5}})
	if resp, err := http.Post(ts.URL+"/v1/decide", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	// And one ingest for the ingest endpoint histogram.
	ing, _ := json.Marshal(IngestRequest{TxnRequest: TxnRequest{ID: 2, From: 1, To: 2, Amount: 5}})
	if resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(ing)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	pol, ok := stats["policy"].(map[string]interface{})
	if !ok || pol["version"] != "pol-1" || pol["decided"].(float64) < 1 {
		t.Fatalf("policy section = %v", stats["policy"])
	}
	eps, ok := stats["endpoints"].(map[string]interface{})
	if !ok {
		t.Fatalf("endpoints section missing: %v", stats)
	}
	dec, ok := eps["decide"].(map[string]interface{})
	if !ok || dec["count"].(float64) < 1 {
		t.Fatalf("decide endpoint histogram = %v", eps["decide"])
	}
	ingStats, ok := eps["ingest"].(map[string]interface{})
	if !ok || ingStats["count"].(float64) < 1 {
		t.Fatalf("ingest endpoint histogram = %v", eps["ingest"])
	}
	drift, ok := stats["drift"].(map[string]interface{})
	if !ok {
		t.Fatalf("drift section missing: %v", stats)
	}
	series, ok := drift["series"].([]interface{})
	if !ok || len(series) == 0 {
		t.Fatalf("drift series = %v", drift)
	}
	// Readiness body.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthInfo
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := HealthInfo{
		Status: "ok", BundleVersion: srv.BundleVersion(), PolicyVersion: "pol-1",
		Stream: true, Policy: true, Drift: true,
	}
	if h != want {
		t.Fatalf("healthz = %+v, want %+v", h, want)
	}
}

// TestDriftMonitorResetOnSwap: a bundle swap re-freezes the baseline.
func TestDriftMonitorResetOnSwap(t *testing.T) {
	srv, _ := decideServer(t, WithDriftMonitor(decision.DriftConfig{BaselineSamples: 4, MinLiveSamples: 2}))
	ctx := context.Background()
	tx := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 700}
	for i := 0; i < 6; i++ {
		if _, err := srv.Score(ctx, &tx); err != nil {
			t.Fatal(err)
		}
	}
	if ds := srv.DriftStats(); ds[0].BaselineCount != 4 || ds[0].LiveCount != 2 {
		t.Fatalf("pre-swap drift = %+v", ds[0])
	}
	if err := srv.SetBundle(trainToy(t, 0)); err != nil {
		t.Fatal(err)
	}
	if ds := srv.DriftStats(); ds[0].BaselineCount != 0 || ds[0].LiveCount != 0 {
		t.Fatalf("post-swap drift not reset: %+v", ds[0])
	}
}

func TestNewRejectsInvalidPolicy(t *testing.T) {
	tab := table(t)
	bad := &decision.Policy{Version: ""} // fails Validate
	if _, err := New(tab, trainToy(t, 0), WithPolicy(bad)); !errors.Is(err, decision.ErrPolicyInvalid) {
		t.Fatalf("invalid policy accepted: %v", err)
	}
}

// TestShadowSwapDiscardsQueuedJobs: a bundle swap starts a new shadow
// epoch — jobs enqueued under the old champion are discarded by the
// worker, not recorded into the new champion's statistics.
func TestShadowSwapDiscardsQueuedJobs(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		if err := up.PutUser(&txn.User{ID: i}, feature.UserStats{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	champion := trainToy(t, 0)
	srv, err := New(tab, champion, WithShadow(identicalChallenger(t, champion)), WithShadowQueue(16))
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // park the worker so enqueued jobs sit in the queue
	v := Verdict{Score: 0.4}
	tx := txn.Transaction{ID: 1, From: 1, To: 2}
	old := srv.shadow.epoch.Load()
	for i := 0; i < 8; i++ {
		srv.shadow.enqueue(&tx, &v, old)
	}
	if err := srv.SetBundle(trainToy(t, 0)); err != nil { // new epoch
		t.Fatal(err)
	}
	// Drain manually (the worker is stopped): every queued job must be
	// recognised as stale and skipped.
	cur := srv.shadow.epoch.Load()
	for i := 0; i < 8; i++ {
		j := <-srv.shadow.jobs
		if j.epoch == cur {
			t.Fatalf("job %d survived the epoch bump", i)
		}
	}
	if st := srv.ShadowStats(); st.Scored != 0 {
		t.Fatalf("stale comparisons recorded: %+v", st)
	}
}
