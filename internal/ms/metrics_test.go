package ms

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"titant/internal/telemetry"
)

// TestMetricsEndpointLintsAndCovers: after traffic, GET /metrics serves
// a lint-clean exposition page in the 0.0.4 content type whose families
// cover the serving counters and the per-stage histograms.
func TestMetricsEndpointLintsAndCovers(t *testing.T) {
	_, ts := v1Server(t)
	body, _ := json.Marshal(TxnRequest{ID: 7, From: 1, To: 2, Amount: 1800})
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("Content-Type %q, want the 0.0.4 exposition type", ct)
	}
	page, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := telemetry.Lint(page); err != nil {
		t.Fatalf("page fails lint: %v", err)
	}
	sc, err := telemetry.ParseExpo(page)
	if err != nil {
		t.Fatal(err)
	}
	families := map[string]bool{}
	for _, name := range sc.FamilyNames() {
		families[name] = true
	}
	for _, want := range []string{
		"titant_scoring_scored_total",
		"titant_scoring_alerted_total",
		"titant_scoring_latency_seconds",
		"titant_stage_latency_seconds",
		"titant_bundle_info",
		"titant_engine_shards",
	} {
		if !families[want] {
			t.Errorf("family %s missing from /metrics", want)
		}
	}
	// The stage histograms carry endpoint and stage labels.
	set := sc.SeriesSet()
	found := false
	for s := range set {
		if strings.HasPrefix(s, "titant_stage_latency_seconds_count") &&
			strings.Contains(s, "{endpoint=score}") && strings.Contains(s, "{stage=score}") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no titant_stage_latency_seconds series for endpoint=score stage=score")
	}

	if resp, err := http.Post(ts.URL+"/metrics", "text/plain", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST /metrics: %d, want 405", resp.StatusCode)
		}
	}
}

// TestDebugTraceEndpoint: GET /v1/debug/trace dumps per-endpoint stage
// aggregation with the slowest exemplars, and the exemplar trace IDs
// are the ones the responses carried.
func TestDebugTraceEndpoint(t *testing.T) {
	_, ts := v1Server(t)
	body, _ := json.Marshal(TxnRequest{ID: 7, From: 1, To: 2, Amount: 1800})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/score", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	const want = "00112233445566778899aabbccddeeff"
	req.Header.Set(telemetry.TraceHeader, want)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(telemetry.TraceHeader); got != want {
		t.Fatalf("score response trace = %q, want adopted %q", got, want)
	}

	resp, err = http.Get(ts.URL + "/v1/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var dump struct {
		Endpoints map[string]struct {
			Stages map[string]struct {
				Count int64 `json:"count"`
			} `json:"stages"`
			Slowest []struct {
				TraceID string `json:"trace_id"`
			} `json:"slowest"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	ep, ok := dump.Endpoints["score"]
	if !ok {
		t.Fatalf("trace dump has no score endpoint: %+v", dump.Endpoints)
	}
	if st, ok := ep.Stages["score"]; !ok || st.Count < 1 {
		t.Fatalf("score endpoint has no score-stage samples: %+v", ep.Stages)
	}
	found := false
	for _, ex := range ep.Slowest {
		if ex.TraceID == want {
			found = true
		}
	}
	if !found {
		t.Fatalf("adopted trace %s not among score exemplars", want)
	}
}
