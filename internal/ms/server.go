// Package ms implements the Model Server of the paper's Figure 5: the
// online component that receives a transfer request from the Alipay
// server, fetches the latest basic features and user node embeddings from
// Ali-HBase, scores the transaction in milliseconds, and alerts the Alipay
// server to interrupt the transfer when the predicted fraud probability
// crosses the threshold.
package ms

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"titant/internal/feature"
	"titant/internal/hbase"
	"titant/internal/txn"
)

// Alert is the callback invoked for transactions predicted fraudulent; in
// production it tells the Alipay server to interrupt the transfer and
// notify the transferor.
type Alert func(t *txn.Transaction, score float64)

// Server scores transactions against the current model bundle. Safe for
// concurrent use; the bundle can be hot-swapped between requests.
type Server struct {
	table *hbase.Table

	mu     sync.RWMutex
	bundle *Bundle

	alert Alert

	latMu     sync.Mutex
	latencies []time.Duration
	scored    int64
	alerted   int64
}

// NewServer builds a Model Server over a feature table. alert may be nil.
func NewServer(table *hbase.Table, bundle *Bundle, alert Alert) (*Server, error) {
	if table == nil {
		return nil, errors.New("ms: nil feature table")
	}
	if bundle == nil {
		return nil, errors.New("ms: nil bundle")
	}
	if _, err := bundle.Classifier(); err != nil {
		return nil, err
	}
	return &Server{table: table, bundle: bundle, alert: alert}, nil
}

// SetBundle hot-swaps the model (the paper's periodic model-file update).
func (s *Server) SetBundle(b *Bundle) error {
	if _, err := b.Classifier(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bundle = b
	return nil
}

// BundleVersion returns the active bundle's version string.
func (s *Server) BundleVersion() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bundle.Version
}

// Verdict is a scoring outcome.
type Verdict struct {
	TxnID   txn.TxnID     `json:"txn_id"`
	Score   float64       `json:"score"`
	Fraud   bool          `json:"fraud"`
	Version string        `json:"model_version"`
	Latency time.Duration `json:"latency_ns"`
}

// Score runs the full online path for one transaction: fetch both users'
// fragments from HBase, assemble the feature vector, run the model, fire
// the alert if the score crosses the threshold.
func (s *Server) Score(t *txn.Transaction) (Verdict, error) {
	start := time.Now()
	s.mu.RLock()
	bundle := s.bundle
	s.mu.RUnlock()
	clf, err := bundle.Classifier()
	if err != nil {
		return Verdict{}, err
	}

	from, err := fetchUser(s.table, t.From)
	if err != nil {
		return Verdict{}, fmt.Errorf("ms: fetch sender: %w", err)
	}
	to, err := fetchUser(s.table, t.To)
	if err != nil {
		return Verdict{}, fmt.Errorf("ms: fetch receiver: %w", err)
	}

	dim := bundle.EmbeddingDim
	width := feature.NumBasic + 2*dim
	x := make([]float64, width)
	feature.BasicFromParts(t, &from.user, &to.user, bundle.City, x[:feature.NumBasic])
	if dim > 0 {
		copyEmb(x[feature.NumBasic:feature.NumBasic+dim], from.emb)
		copyEmb(x[feature.NumBasic+dim:], to.emb)
	}

	score := clf.Score(x)
	v := Verdict{
		TxnID:   t.ID,
		Score:   score,
		Fraud:   score >= bundle.Threshold,
		Version: bundle.Version,
		Latency: time.Since(start),
	}
	s.latMu.Lock()
	s.scored++
	if v.Fraud {
		s.alerted++
	}
	s.latencies = append(s.latencies, v.Latency)
	s.latMu.Unlock()
	if v.Fraud && s.alert != nil {
		s.alert(t, score)
	}
	return v, nil
}

func copyEmb(dst []float64, src []float32) {
	for i := 0; i < len(dst) && i < len(src); i++ {
		dst[i] = float64(src[i])
	}
}

// LatencyStats summarises serving latency.
type LatencyStats struct {
	Count   int64
	Alerted int64
	P50     time.Duration
	P99     time.Duration
	Max     time.Duration
}

// Latency returns percentile statistics over all scored requests.
func (s *Server) Latency() LatencyStats {
	s.latMu.Lock()
	defer s.latMu.Unlock()
	st := LatencyStats{Count: s.scored, Alerted: s.alerted}
	if len(s.latencies) == 0 {
		return st
	}
	ls := append([]time.Duration(nil), s.latencies...)
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	st.P50 = ls[len(ls)/2]
	st.P99 = ls[(len(ls)*99)/100]
	st.Max = ls[len(ls)-1]
	return st
}

// --- HTTP front end ---

// TxnRequest is the JSON wire format of a scoring request.
type TxnRequest struct {
	ID         int64   `json:"id"`
	Day        int     `json:"day"`
	Sec        int32   `json:"sec"`
	From       int32   `json:"from"`
	To         int32   `json:"to"`
	Amount     float32 `json:"amount"`
	TransCity  uint16  `json:"trans_city"`
	DeviceRisk float32 `json:"device_risk"`
	IPRisk     float32 `json:"ip_risk"`
	Channel    uint8   `json:"channel"`
}

// Txn converts the wire format to the internal record.
func (r *TxnRequest) Txn() txn.Transaction {
	return txn.Transaction{
		ID: txn.TxnID(r.ID), Day: txn.Day(r.Day), Sec: r.Sec,
		From: txn.UserID(r.From), To: txn.UserID(r.To),
		Amount: r.Amount, TransCity: r.TransCity,
		DeviceRisk: r.DeviceRisk, IPRisk: r.IPRisk,
		Channel: txn.Channel(r.Channel),
	}
}

// Handler returns the HTTP mux: POST /score, GET /healthz, GET /stats.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/score", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req TxnRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		t := req.Txn()
		v, err := s.Score(&t)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(v)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok version=%s\n", s.BundleVersion())
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		st := s.Latency()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]interface{}{
			"scored": st.Count, "alerted": st.Alerted,
			"p50_us": st.P50.Microseconds(), "p99_us": st.P99.Microseconds(),
			"max_us": st.Max.Microseconds(), "version": s.BundleVersion(),
		})
	})
	return mux
}
