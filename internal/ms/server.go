// Package ms implements the Model Server of the paper's Figure 5: the
// online component that receives a transfer request from the Alipay
// server, fetches the latest basic features and user node embeddings from
// Ali-HBase, scores the transaction in milliseconds, and alerts the Alipay
// server to interrupt the transfer when the predicted fraud probability
// crosses the threshold.
//
// The serving surface is the v1 engine: a functional-options constructor
// (New), context-aware single scoring (Score), batch scoring with
// per-batch user-fetch deduplication over a worker pool (ScoreBatch), a
// bounded log-bucketed latency histogram, a typed error model (errors.go),
// and a versioned HTTP API (http.go).
package ms

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"titant/internal/decision"
	"titant/internal/eventlog"
	"titant/internal/feature"
	"titant/internal/hbase"
	"titant/internal/ms/usercache"
	"titant/internal/rng"
	"titant/internal/telemetry"
	"titant/internal/txn"
)

// Alert is the callback invoked for transactions predicted fraudulent; in
// production it tells the Alipay server to interrupt the transfer and
// notify the transferor.
type Alert func(t *txn.Transaction, score float64)

// userCache is the engine's read-through cache instantiation: decoded
// user fragments keyed by user ID, so a hit skips the store and every
// codec entirely.
type userCache = usercache.Cache[txn.UserID, userParts]

// userHash mixes a user ID onto cache shards.
func userHash(u txn.UserID) uint64 {
	return rng.Mix64(uint64(uint32(u)))
}

// Server scores transactions against the current model bundle. Safe for
// concurrent use; the bundle can be hot-swapped between requests.
type Server struct {
	table *hbase.Table
	cache *userCache // nil: every fetch reads the store

	// peers is the shard ring this server belongs to when it runs inside
	// a ShardedEngine (nil: unsharded, every user is local). User-keyed
	// reads and negative-cache invalidations route to the owner shard
	// ShardOf picks, so each user's table rows, cache entries and
	// known-absent markers live on exactly one shard regardless of which
	// shard processes the transaction — the invariant the rebalance
	// bitwise-stability guarantee rests on. Set once by NewSharded before
	// the engine is shared; never mutated afterwards.
	peers []*Server

	mu      sync.RWMutex
	bundle  *Bundle
	citySrc feature.CitySource // city view scoring reads through; rebuilt on swap
	policy  *decision.Policy   // nil: decision endpoints disabled; hot-swapped like the bundle

	// policyConfigured records whether the engine was built WithPolicy:
	// SetPolicy only replaces a configured policy, it cannot enable
	// decisioning on an engine the operator left it off.
	policyConfigured bool

	// Admission gate (see admission.go): per-caller quotas and the
	// inflight bound. nil: every request is admitted.
	adm *admission

	alert        Alert
	workers      int
	strict       bool
	maxBatch     int
	modelToken   string
	ingestToken  string
	stream       StreamAggregates
	streamWarmup int64

	// Decision subsystem (see internal/decision and decide.go).
	velocity     decision.VelocitySource // stream store's rule-predicate surface, when it has one
	driftCfg     *decision.DriftConfig   // nil: drift monitoring disabled
	drift        atomic.Pointer[decision.Monitor]
	shadowBundle *Bundle // challenger configured by WithShadow
	shadowQueue  int
	shadow       *shadowRunner

	// Durability plane (see eventlog.go). elogMu serializes every
	// (append, apply) pair so the log order is the apply order — the
	// invariant bitwise replay recovery rests on.
	elogDir       string
	elogOpts      []eventlog.Option
	elog          *eventlog.Log
	elogMu        sync.Mutex
	elogBuf       []byte // payload scratch, under elogMu
	elogSnapEvery uint64
	elogSnapBase  uint64 // log offset of the newest snapshot, under elogMu
	elogReplayed  atomic.Int64
	elogErrs      atomic.Int64 // append failures on paths with no caller to return to

	hist       *telemetry.Histogram
	ingestHist *telemetry.Histogram // per-endpoint: POST /v1/ingest[/batch] request latency
	decideHist *telemetry.Histogram // per-endpoint: POST /v1/decide[/batch] request latency
	scored     atomic.Int64
	alerted    atomic.Int64
	actions    [decision.NumActions]atomic.Int64
	ruleHits   atomic.Int64

	// Observability plane (see internal/telemetry): per-stage span
	// aggregation with slow-exemplar rings, one track per scoring
	// endpoint (held as direct pointers so the hot path pays no map
	// lookup), and the trace-ID minter the HTTP layer adopts-or-mints
	// with. traceSeed keeps minted IDs deterministic per engine;
	// NewSharded diversifies it per shard.
	traceSeed      uint64
	noTrace        bool
	minter         *telemetry.Minter
	tel            *telemetry.Tracker
	telScore       *telemetry.EndpointTrack
	telScoreBatch  *telemetry.EndpointTrack
	telDecide      *telemetry.EndpointTrack
	telDecideBatch *telemetry.EndpointTrack
}

// New builds the v1 scoring engine over a feature table.
func New(table *hbase.Table, bundle *Bundle, opts ...Option) (*Server, error) {
	if table == nil {
		return nil, errors.New("ms: nil feature table")
	}
	if bundle == nil {
		return nil, fmt.Errorf("%w: nil bundle", ErrBundleInvalid)
	}
	if err := bundle.validate(); err != nil {
		return nil, err
	}
	s := &Server{
		table:        table,
		bundle:       bundle,
		workers:      defaultWorkers(),
		maxBatch:     DefaultMaxBatch,
		streamWarmup: DefaultStreamWarmup,
	}
	for _, o := range opts {
		o(s)
	}
	if s.hist == nil {
		s.hist = telemetry.NewHistogram(nil)
	}
	s.ingestHist = telemetry.NewHistogram(nil)
	s.decideHist = telemetry.NewHistogram(nil)
	s.minter = telemetry.NewMinter(s.traceSeed)
	endpoints := []string{"score", "score_batch", "decide", "decide_batch"}
	if s.noTrace {
		// An empty tracker keeps /metrics and /v1/debug/trace functional
		// while every Endpoint lookup below comes back nil — the seam
		// traceObserve treats as "tracing off".
		endpoints = nil
	}
	s.tel = telemetry.NewTracker(endpoints, 0)
	s.telScore = s.tel.Endpoint("score")
	s.telScoreBatch = s.tel.Endpoint("score_batch")
	s.telDecide = s.tel.Endpoint("decide")
	s.telDecideBatch = s.tel.Endpoint("decide_batch")
	s.citySrc = s.cityView(bundle)
	if s.policy != nil {
		if err := s.policy.Validate(); err != nil {
			return nil, err
		}
		s.policyConfigured = true
	}
	// Rule predicates read in-window velocity when the configured stream
	// store can serve it allocation-free; other StreamAggregates
	// implementations simply leave velocity rules inert.
	if v, ok := s.stream.(decision.VelocitySource); ok {
		s.velocity = v
	}
	if s.driftCfg != nil {
		s.drift.Store(decision.NewMonitor(*s.driftCfg, driftSeriesNames(bundle)))
	}
	if s.shadowBundle != nil {
		sr, err := newShadowRunner(s, s.shadowBundle, s.shadowQueue)
		if err != nil {
			return nil, err
		}
		s.shadow = sr
	}
	if s.elogDir != "" {
		// Recovery runs last so every subsystem the snapshot and replay
		// rebuild already exists. The engine is not shared yet, so replay
		// applies state without elogMu.
		if err := s.openEventLog(); err != nil {
			s.Close()
			return nil, err
		}
	}
	return s, nil
}

// driftSeriesNames lists the score series the drift monitor tracks for a
// bundle: the combined score first, then every ensemble member in order
// (a v1 single-model bundle's only score is the combined one).
func driftSeriesNames(b *Bundle) []string {
	names := []string{"combined"}
	if ens, err := b.runtime(); err == nil && !ens.single {
		names = append(names, ens.names...)
	}
	return names
}

// Close releases the engine's background resources: the shadow scoring
// worker, and the event log (flushed and fsynced, so a clean shutdown
// loses nothing). Safe to call on an engine without either, and more
// than once. Scoring after Close still works; shadow comparisons stop
// and logged ingest fails.
func (s *Server) Close() {
	if s.shadow != nil {
		s.shadow.close()
	}
	if s.elog != nil {
		_ = s.elog.Close()
	}
}

// cityView builds the per-city statistics source scoring reads through:
// the live streaming window (gated by the warm-up threshold, with
// frozen-table fallback for unseen cities) when streaming is configured,
// the bundle's frozen table otherwise. Built once per bundle so the hot
// path pays no allocation.
func (s *Server) cityView(b *Bundle) feature.CitySource {
	if s.stream == nil {
		return &b.City
	}
	return &liveCity{live: s.stream, frozen: &b.City, warmup: s.streamWarmup}
}

// liveCity reads per-city statistics from the streaming window, guarded
// two ways against thin data. First, a global warm-up gate: until the
// window has absorbed `warmup` transactions, every city serves the
// bundle's frozen table — a cold daemon scores exactly like the T+1 path,
// and no city computes a traffic share over a near-empty denominator
// (one lone transaction would otherwise read share=1.0 against a frozen
// ~1/cities). Second, past warm-up, a per-city fallback: a city with no
// in-window traffic serves its frozen value rather than the bare
// smoothing prior.
type liveCity struct {
	live   StreamAggregates
	frozen *feature.CityTable
	warmup int64
}

// Lookup satisfies feature.CitySource.
func (lc *liveCity) Lookup(c uint16) (fraud, share float64) {
	if lc.live.Ingested() < lc.warmup {
		return lc.frozen.Lookup(c)
	}
	f, sh, n := lc.live.LookupCity(c)
	if n == 0 {
		return lc.frozen.Lookup(c)
	}
	return f, sh
}

// NewServer builds a Model Server over a feature table. alert may be nil.
//
// Deprecated: use New with WithAlert.
func NewServer(table *hbase.Table, bundle *Bundle, alert Alert) (*Server, error) {
	return New(table, bundle, WithAlert(alert))
}

// SetBundle hot-swaps the model (the paper's periodic model-file update).
// The user cache, when present, is purged: a bundle swap typically lands
// right after an upload wave has re-published every user at the new
// version, so anything cached may be a T-1 fragment.
func (s *Server) SetBundle(b *Bundle) error {
	if b == nil {
		return fmt.Errorf("%w: nil bundle", ErrBundleInvalid)
	}
	if err := b.validate(); err != nil {
		return err
	}
	// A swap starts a new score distribution: rebuild the drift monitor
	// so the baseline re-freezes on the new bundle's first traffic, and
	// start a new shadow comparison epoch — agreement with a departed
	// champion says nothing about the new one. All replaced under the
	// same lock scoringView reads, so an in-flight pass observes a
	// consistent (bundle, monitor, epoch) triple.
	s.mu.Lock()
	s.bundle = b
	s.citySrc = s.cityView(b)
	// The reset marker and the resets themselves share one elogMu
	// critical section: no score or shadow event can be logged between
	// the marker and the state it resets, so replay resets at exactly
	// the point the live process did. (Lock order is s.mu then elogMu;
	// the logged hot paths take elogMu alone.)
	s.elogMu.Lock()
	if s.elog != nil {
		s.logResetLocked(b.Version)
	}
	if s.driftCfg != nil {
		s.drift.Store(decision.NewMonitor(*s.driftCfg, driftSeriesNames(b)))
	}
	if s.shadow != nil {
		s.shadow.championSwapped()
	}
	s.elogMu.Unlock()
	s.mu.Unlock()
	if s.cache != nil {
		s.cache.Purge()
	}
	return nil
}

// InvalidateUser drops one user's cached fragments (a no-op without a
// cache). Uploaders wire this into Uploader.Invalidate so live feature
// re-publication is visible to the very next score.
func (s *Server) InvalidateUser(u txn.UserID) {
	if s.cache != nil {
		s.cache.Invalidate(u)
	}
}

// UserCacheEnabled reports whether the engine was built WithUserCache.
func (s *Server) UserCacheEnabled() bool { return s.cache != nil }

// UserCacheStats snapshots the cache counters (zero without a cache).
func (s *Server) UserCacheStats() usercache.Stats {
	if s.cache == nil {
		return usercache.Stats{}
	}
	return s.cache.Stats()
}

func (s *Server) currentBundle() *Bundle {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.bundle
}

// scoringView reads the bundle, its city source, the drift monitor and
// the shadow epoch in one lock round: SetBundle replaces all of them
// under the same lock, so a scoring pass that began under the old
// bundle cannot feed the old model's scores into the new monitor's
// baseline or stamp old-champion comparisons into the new shadow epoch.
func (s *Server) scoringView() (*Bundle, feature.CitySource, *decision.Monitor, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var epoch int64
	if s.shadow != nil {
		epoch = s.shadow.epoch.Load()
	}
	return s.bundle, s.citySrc, s.drift.Load(), epoch
}

// BundleVersion returns the active bundle's version string.
func (s *Server) BundleVersion() string {
	return s.currentBundle().Version
}

// MemberInfo describes one ensemble member (GET /v1/models).
type MemberInfo struct {
	Name      string  `json:"name"`
	Weight    float64 `json:"weight"`
	Threshold float64 `json:"threshold"`
}

// ModelInfo describes the active bundle (GET /v1/models). Combiner and
// Members are present only for v2 ensemble bundles, so v1 responses are
// byte-compatible with older clients.
type ModelInfo struct {
	Version      string       `json:"version"`
	Threshold    float64      `json:"threshold"`
	EmbeddingDim int          `json:"embedding_dim"`
	Combiner     string       `json:"combiner,omitempty"`
	Members      []MemberInfo `json:"members,omitempty"`
}

// ModelInfo returns the active bundle's metadata.
func (s *Server) ModelInfo() ModelInfo {
	b := s.currentBundle()
	info := ModelInfo{Version: b.Version, Threshold: b.Threshold, EmbeddingDim: b.EmbeddingDim}
	if len(b.Members) > 0 {
		info.Combiner = b.Combine.String()
		info.Members = make([]MemberInfo, len(b.Members))
		for i := range b.Members {
			m := &b.Members[i]
			info.Members[i] = MemberInfo{Name: m.Name, Weight: m.weight(), Threshold: m.Threshold}
		}
	}
	return info
}

// MemberScore is one ensemble member's contribution to a verdict, exposed
// for explainability: which detector fired, and how strongly.
type MemberScore struct {
	Name  string  `json:"name"`
	Score float64 `json:"score"`
}

// Verdict is a scoring outcome. Members carries the per-member scores of
// a v2 ensemble bundle; it is omitted for v1 single-model bundles, whose
// wire format is unchanged.
type Verdict struct {
	TxnID   txn.TxnID     `json:"txn_id"`
	Score   float64       `json:"score"`
	Fraud   bool          `json:"fraud"`
	Version string        `json:"model_version"`
	Latency time.Duration `json:"latency_ns"`
	Members []MemberScore `json:"members,omitempty"`
}

// scoredBatch exposes one scoring pass's scratch to a visit callback
// while it is still alive: the pooled combined and per-member score
// buffers are reclaimed when the callback returns, so callers must copy
// anything they keep. It is how the decision path reads the ensemble
// breakdown without a second scoring pass — Score, ScoreBatch, Decide
// and DecideBatch all run through the same core, which is what makes
// their scores (and therefore their actions) bitwise identical.
type scoredBatch struct {
	bundle       *Bundle
	ens          *ensemble
	combined     []float64     // one combined score per transaction
	memberScores [][]float64   // [member][row]; nil for v1 single-model bundles
	perItem      time.Duration // each item's amortised share of the pass
	shadowEpoch  int64         // shadow epoch these scores belong to
}

// runOne is the single-transaction scoring core: fetch both users'
// fragments, assemble the feature vector into a pooled one-row matrix,
// run the ensemble, observe drift, then hand the scratch to visit.
// Cancellation and deadlines on ctx are honoured; a cancelled context
// returns promptly with ctx.Err() and visit never runs (so alerts and
// decisions are never derived from an abandoned request).
//
// spans receives the fetch/assemble/score stage timings — a stack
// buffer owned by the caller, so stage tracing costs a few monotonic
// clock reads and no allocation.
func (s *Server) runOne(ctx context.Context, t *txn.Transaction, spans *telemetry.Spans, visit func(*scoredBatch) error) error {
	start := time.Now()
	if err := ctx.Err(); err != nil {
		return err
	}
	bundle, city, mon, epoch := s.scoringView()
	ens, err := bundle.runtime()
	if err != nil {
		return err
	}
	from, to, err := s.fetchPair(t.From, t.To)
	if err != nil {
		return err
	}
	asmStart := time.Now()
	spans[telemetry.StageFetch] = asmStart.Sub(start)
	m := getMatrix(1, feature.NumBasic+2*bundle.EmbeddingDim)
	defer putMatrix(m)
	if err := assembleRow(t, &from, &to, bundle, city, m.Row(0)); err != nil {
		return err
	}
	scoreStart := time.Now()
	spans[telemetry.StageAssemble] = scoreStart.Sub(asmStart)
	var combined [1]float64
	var memberScores [][]float64
	if !ens.single {
		memberScores = getMemberScores(len(ens.clfs), 1)
		defer putMemberScores(memberScores)
	}
	if err := ens.score(combined[:], memberScores, m); err != nil {
		return err
	}
	// Re-check after all the work so a deadline that expired mid-fetch or
	// mid-score upholds the no-alert guarantee.
	if err := ctx.Err(); err != nil {
		return err
	}
	s.recordScores(mon, combined[:], memberScores)
	spans[telemetry.StageScore] = time.Since(scoreStart)
	return visit(&scoredBatch{
		bundle: bundle, ens: ens,
		combined: combined[:], memberScores: memberScores,
		perItem: time.Since(start), shadowEpoch: epoch,
	})
}

// Score runs the full online path for one transaction: fetch both users'
// fragments from HBase, assemble the feature vector, run the ensemble,
// fire the alert if the combined score crosses the threshold. It is the
// batch path at batch size one — a pooled one-row matrix through the
// same ensemble core — so single and batch scoring cannot drift.
func (s *Server) Score(ctx context.Context, t *txn.Transaction) (Verdict, error) {
	start := time.Now()
	var spans telemetry.Spans
	release, err := s.Admit(ctx, 1)
	if err != nil {
		return Verdict{}, err
	}
	defer release()
	spans[telemetry.StageAdmit] = time.Since(start)
	var v Verdict
	var epoch int64
	if err := s.runOne(ctx, t, &spans, func(sb *scoredBatch) error {
		v = verdictOf(t, sb.combined[0], sb.memberScores, 0, sb.bundle, sb.ens)
		v.Latency = sb.perItem
		epoch = sb.shadowEpoch
		return nil
	}); err != nil {
		return Verdict{}, err
	}
	shadowStart := time.Now()
	s.observe(t, &v, epoch)
	spans[telemetry.StageShadow] = time.Since(shadowStart)
	s.traceObserve(ctx, s.telScore, time.Since(start), &spans)
	return v, nil
}

// ScoreBatch scores a batch in input order through the batch-native
// runtime: it deduplicates the batch's user set and fetches each distinct
// user once across the worker pool, assembles the whole batch into one
// pooled feature matrix over the same pool, then runs every ensemble
// member's vectorised batch path (compiled GBDT, fused LR, …) over the
// matrix in a single pass before combining. The first per-item error
// aborts the batch. Verdict latencies are each item's amortised share of
// the batch's fetch, assembly and model phases, so they remain comparable
// with Score's latencies in the shared histogram; the batch's end-to-end
// time is the caller's to observe.
func (s *Server) ScoreBatch(ctx context.Context, txns []txn.Transaction) ([]Verdict, error) {
	if len(txns) == 0 {
		return nil, nil
	}
	start := time.Now()
	var spans telemetry.Spans
	release, err := s.Admit(ctx, len(txns))
	if err != nil {
		return nil, err
	}
	defer release()
	spans[telemetry.StageAdmit] = time.Since(start)
	var verdicts []Verdict
	var epoch int64
	if err := s.runBatch(ctx, txns, &spans, func(sb *scoredBatch) error {
		verdicts = make([]Verdict, len(txns))
		for i := range txns {
			verdicts[i] = verdictOf(&txns[i], sb.combined[i], sb.memberScores, i, sb.bundle, sb.ens)
			verdicts[i].Latency = sb.perItem
		}
		epoch = sb.shadowEpoch
		return nil
	}); err != nil {
		return nil, err
	}
	shadowStart := time.Now()
	for i := range verdicts {
		s.observe(&txns[i], &verdicts[i], epoch)
	}
	spans[telemetry.StageShadow] = time.Since(shadowStart)
	s.traceObserve(ctx, s.telScoreBatch, time.Since(start), &spans)
	return verdicts, nil
}

// runBatch is the batch scoring core shared by ScoreBatch and
// DecideBatch: dedup-fetch, pooled assembly, one vectorised ensemble
// pass, drift observation, then the visit callback over the live
// scratch (see scoredBatch). spans receives the fetch/assemble/score
// stage timings — a caller-owned stack buffer, so tracing adds clock
// reads, not allocations.
func (s *Server) runBatch(ctx context.Context, txns []txn.Transaction, spans *telemetry.Spans, visit func(*scoredBatch) error) error {
	if s.maxBatch > 0 && len(txns) > s.maxBatch {
		return batchTooLarge(len(txns), s.maxBatch)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	bundle, city, mon, epoch := s.scoringView()
	ens, err := bundle.runtime()
	if err != nil {
		return err
	}

	// Phase 1: fetch each distinct user in the batch exactly once — cache
	// hits resolved by a shard probe, misses chunked into multi-get rounds
	// that amortise one store lock acquisition over a whole chunk.
	fetchStart := time.Now()
	index := make(map[txn.UserID]int, 2*len(txns))
	ids := make([]txn.UserID, 0, 2*len(txns))
	add := func(u txn.UserID) {
		if _, ok := index[u]; !ok {
			index[u] = len(ids)
			ids = append(ids, u)
		}
	}
	for i := range txns {
		add(txns[i].From)
		add(txns[i].To)
	}
	parts := make([]userParts, len(ids))
	found := make([]bool, len(ids))
	if err := s.fetchUsers(ctx, ids, parts, found); err != nil {
		return err
	}
	if s.strict {
		for i, ok := range found {
			if !ok {
				return fmt.Errorf("%w: user %d", ErrUserNotFound, ids[i])
			}
		}
	}
	asmStart := time.Now()
	spans[telemetry.StageFetch] = asmStart.Sub(fetchStart)

	// Phase 2: assemble the batch's feature matrix over the pool.
	m := getMatrix(len(txns), feature.NumBasic+2*bundle.EmbeddingDim)
	defer putMatrix(m)
	if err := s.runPool(ctx, len(txns), func(i int) error {
		t := &txns[i]
		if err := assembleRow(t, &parts[index[t.From]], &parts[index[t.To]], bundle, city, m.Row(i)); err != nil {
			return fmt.Errorf("ms: txn %d: %w", t.ID, err)
		}
		return nil
	}); err != nil {
		return err
	}

	scoreStart := time.Now()
	spans[telemetry.StageAssemble] = scoreStart.Sub(asmStart)

	// Phase 3: one vectorised ensemble pass over the whole matrix.
	combined := getVec(len(txns))
	defer putVec(combined)
	var memberScores [][]float64
	if !ens.single {
		memberScores = getMemberScores(len(ens.clfs), len(txns))
		defer putMemberScores(memberScores)
	}
	if err := ens.score(combined, memberScores, m); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	s.recordScores(mon, combined, memberScores)
	spans[telemetry.StageScore] = time.Since(scoreStart)
	return visit(&scoredBatch{
		bundle: bundle, ens: ens,
		combined: combined, memberScores: memberScores,
		perItem: time.Since(fetchStart) / time.Duration(len(txns)), shadowEpoch: epoch,
	})
}

// traceObserve folds one request's spans into the endpoint's stage
// histograms and exemplar ring. A nil track means tracing is off for
// this endpoint; a request without a context trace ID is still
// aggregated, just with a zero exemplar ID.
func (s *Server) traceObserve(ctx context.Context, et *telemetry.EndpointTrack, total time.Duration, spans *telemetry.Spans) {
	if et == nil {
		return
	}
	id, _ := telemetry.TraceFrom(ctx)
	et.Observe(id, total, spans)
}

// observeDrift feeds one scoring pass's scores into mon (a no-op when
// nil). mon is the monitor captured with the bundle in the same
// scoringView lock round, so the scores always land in the monitor
// built for the bundle that produced them; the NumSeries check is a
// second line of defence for hand-assembled states.
func observeDrift(mon *decision.Monitor, combined []float64, memberScores [][]float64) {
	if mon == nil {
		return
	}
	withMembers := memberScores != nil && mon.NumSeries() == 1+len(memberScores)
	for i := range combined {
		mon.ObserveSeries(0, combined[i])
		if withMembers {
			for k := range memberScores {
				mon.ObserveSeries(k+1, memberScores[k][i])
			}
		}
	}
}

// assembleRow writes one transaction's full feature vector (52 basic
// features plus both endpoints' embeddings) into row, a matrix row of
// width NumBasic+2*EmbeddingDim. city supplies the per-city statistics —
// frozen or live depending on the engine's configuration.
func assembleRow(t *txn.Transaction, from, to *userParts, bundle *Bundle, city feature.CitySource, row []float64) error {
	dim := bundle.EmbeddingDim
	feature.BasicFromParts(t, &from.user, &to.user, city, row[:feature.NumBasic])
	if dim > 0 {
		if err := copyEmb(row[feature.NumBasic:feature.NumBasic+dim], from.emb, t.From); err != nil {
			return err
		}
		if err := copyEmb(row[feature.NumBasic+dim:], to.emb, t.To); err != nil {
			return err
		}
	}
	return nil
}

// verdictOf builds the verdict for row i: combined score against the
// bundle threshold, plus the per-member breakdown for ensemble bundles
// (memberScores is nil for v1 single-model bundles).
func verdictOf(t *txn.Transaction, score float64, memberScores [][]float64, i int, bundle *Bundle, ens *ensemble) Verdict {
	v := Verdict{
		TxnID:   t.ID,
		Score:   score,
		Fraud:   score >= bundle.Threshold,
		Version: bundle.Version,
	}
	if memberScores != nil {
		members := make([]MemberScore, len(ens.names))
		for k := range ens.names {
			members[k] = MemberScore{Name: ens.names[k], Score: memberScores[k][i]}
		}
		v.Members = members
	}
	return v
}

// copyEmb widens a stored float32 embedding into the feature vector. An
// absent embedding (cold-start user) leaves the zero vector; any other
// length disagreement is data corruption and refuses to score.
func copyEmb(dst []float64, src []float32, u txn.UserID) error {
	if len(src) == 0 {
		return nil
	}
	if len(src) != len(dst) {
		return fmt.Errorf("%w: user %d has %d dims, model wants %d",
			ErrDimensionMismatch, u, len(src), len(dst))
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
	return nil
}

// ownerOf resolves the shard that owns a user's state: the peer the
// ring's consistent hash picks when sharded, the server itself otherwise.
func (s *Server) ownerOf(u txn.UserID) *Server {
	if s.peers == nil {
		return s
	}
	return s.peers[ShardOf(u, len(s.peers))]
}

// fetchOne reads one user's fragments, applying the strict-users policy.
// With a cache the read goes through GetOrLoad: hits return the decoded
// fragments with no store access, concurrent misses for the same user
// collapse to a single store read, and unknown users are remembered as
// negative entries so cold-start traffic stops costing point reads.
// Sharded, the read goes to the owner shard's table and cache — a
// transaction's receiver may be another shard's user.
func (s *Server) fetchOne(u txn.UserID) (userParts, error) {
	o := s.ownerOf(u)
	var (
		parts userParts
		found bool
		err   error
	)
	if o.cache != nil {
		parts, found, err = o.cache.GetOrLoad(u, func() (userParts, bool, error) {
			var p userParts
			ok, lerr := fetchUserInto(o.table, u, &p)
			return p, ok, lerr
		})
	} else {
		found, err = fetchUserInto(o.table, u, &parts)
	}
	if err != nil {
		return parts, fmt.Errorf("ms: fetch user %d: %w", u, err)
	}
	if !found && s.strict {
		return parts, fmt.Errorf("%w: user %d", ErrUserNotFound, u)
	}
	return parts, nil
}

// fetchPair reads the sender's then the receiver's fragments inline.
// Before the point-read engine this parallelised the two reads with a
// goroutine; a point read now costs well under a spawn-and-channel round
// trip (and with a cache, a warm read is a single shard probe), so the
// sequential pair is the faster path in every configuration.
func (s *Server) fetchPair(from, to txn.UserID) (userParts, userParts, error) {
	fp, err := s.fetchOne(from)
	if err != nil {
		return fp, userParts{}, err
	}
	tp, err := s.fetchOne(to)
	return fp, tp, err
}

// fetchChunk bounds one multi-get round: large enough to amortise the
// store's lock acquisition to noise, small enough that a round never
// holds the read lock long and chunks spread across the worker pool.
const fetchChunk = 256

// fetchUsers resolves a deduped user set into parts/found (both indexed
// like ids), routing each user to its owner shard. Unsharded (or when
// every id is local) it is one local pass; sharded, ids group by owner
// and each group resolves against that shard's cache and table. Groups
// run sequentially — each group's miss rounds already fan out over the
// owner's worker pool, and a scoring sub-batch rarely spans more than a
// handful of owners.
func (s *Server) fetchUsers(ctx context.Context, ids []txn.UserID, parts []userParts, found []bool) error {
	if s.peers == nil {
		return s.fetchUsersLocal(ctx, ids, parts, found)
	}
	n := len(s.peers)
	groups := make([][]int, n)
	for i, u := range ids {
		si := ShardOf(u, n)
		groups[si] = append(groups[si], i)
	}
	for si, idxs := range groups {
		if len(idxs) == 0 {
			continue
		}
		peer := s.peers[si]
		if len(idxs) == len(ids) {
			return peer.fetchUsersLocal(ctx, ids, parts, found)
		}
		gids := make([]txn.UserID, len(idxs))
		for k, i := range idxs {
			gids[k] = ids[i]
		}
		gparts := make([]userParts, len(idxs))
		gfound := make([]bool, len(idxs))
		if err := peer.fetchUsersLocal(ctx, gids, gparts, gfound); err != nil {
			return err
		}
		for k, i := range idxs {
			parts[i] = gparts[k]
			found[i] = gfound[k]
		}
	}
	return nil
}

// fetchUsersLocal resolves a user set against this server's own cache
// and table (the pre-sharding fetchUsers). Cached entries are peeked
// first; the misses batch into chunked multi-get rounds fanned out over
// the worker pool, and — with a cache — the loaded entries are inserted
// for subsequent batches, each guarded by its shard generation captured
// before the store read so a concurrent upload's invalidation wins over
// the stale read.
func (s *Server) fetchUsersLocal(ctx context.Context, ids []txn.UserID, parts []userParts, found []bool) error {
	if s.cache == nil {
		rows := make([]string, len(ids))
		for i, u := range ids {
			rows[i] = RowKey(u)
		}
		chunks := (len(ids) + fetchChunk - 1) / fetchChunk
		return s.runPool(ctx, chunks, func(ci int) error {
			lo := ci * fetchChunk
			hi := min(lo+fetchChunk, len(ids))
			return fetchUsersInto(s.table, ids[lo:hi], rows[lo:hi], parts[lo:hi], found[lo:hi])
		})
	}
	missIdx := make([]int, 0, len(ids))
	missGens := make([]uint64, 0, len(ids))
	for i, u := range ids {
		// One lock round per key: the hit, or the miss plus the shard
		// generation guarding the upcoming store read.
		v, ok, present, gen := s.cache.PeekGen(u)
		if present {
			parts[i] = v
			found[i] = ok
		} else {
			missIdx = append(missIdx, i)
			missGens = append(missGens, gen)
		}
	}
	if len(missIdx) == 0 {
		return nil
	}
	missIDs := make([]txn.UserID, len(missIdx))
	rows := make([]string, len(missIdx))
	missParts := make([]userParts, len(missIdx))
	missFound := make([]bool, len(missIdx))
	for k, i := range missIdx {
		missIDs[k] = ids[i]
		rows[k] = RowKey(ids[i])
	}
	chunks := (len(missIdx) + fetchChunk - 1) / fetchChunk
	if err := s.runPool(ctx, chunks, func(ci int) error {
		lo := ci * fetchChunk
		hi := min(lo+fetchChunk, len(missIdx))
		return fetchUsersInto(s.table, missIDs[lo:hi], rows[lo:hi], missParts[lo:hi], missFound[lo:hi])
	}); err != nil {
		return err
	}
	for k, i := range missIdx {
		parts[i] = missParts[k]
		found[i] = missFound[k]
		s.cache.Add(missIDs[k], missGens[k], missParts[k], missFound[k])
	}
	return nil
}

// runPool runs fn(0..n-1) across the engine's worker pool, stopping at
// the first error or context cancellation.
func (s *Server) runPool(ctx context.Context, n int, fn func(int) error) error {
	workers := s.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var (
		next     atomic.Int64
		stop     atomic.Bool
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		stop.Store(true)
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	done := ctx.Done()
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || stop.Load() {
					return
				}
				select {
				case <-done:
					fail(ctx.Err())
					return
				default:
				}
				if err := fn(i); err != nil {
					fail(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// observe records one verdict's counters and latency, firing the alert
// for fraudulent transactions and handing the transaction to the shadow
// challenger (a non-blocking enqueue that sheds on overflow). epoch is
// the shadow epoch the verdict was scored under (scoringView), so a
// champion swap mid-batch marks the batch's comparisons stale instead
// of polluting the new champion's meter.
func (s *Server) observe(t *txn.Transaction, v *Verdict, epoch int64) {
	s.scored.Add(1)
	s.hist.Record(v.Latency)
	if v.Fraud {
		s.alerted.Add(1)
		if s.alert != nil {
			s.alert(t, v.Score)
		}
	}
	if s.shadow != nil {
		s.shadow.enqueue(t, v, epoch)
	}
}

// Ingest feeds one observed transaction into the live aggregate window
// (POST /v1/ingest). Callers send both scored transfers that completed
// and delayed fraud reports (re-sent with the Fraud flag set), so the
// window's city fraud rates track reality as labels arrive. Returns
// ErrStreamDisabled on an engine built without WithStreamAggregates.
//
// Ingest also clears any *negative* user-cache entries for the two
// endpoints: live traffic cannot stale stored fragments (those only
// change through uploads, which invalidate exactly), but a transaction
// naming a user the store has never seen is a signal that user may be
// published shortly, so the known-absent marker must not pin them as
// unknown until eviction.
func (s *Server) Ingest(t *txn.Transaction) error {
	if s.stream == nil {
		return ErrStreamDisabled
	}
	if s.elog != nil {
		s.elogMu.Lock()
		defer s.elogMu.Unlock()
		if err := s.ingestLocked(t); err != nil {
			return err
		}
		return s.maybeSnapshotLocked()
	}
	s.stream.Ingest(t)
	s.dropNegative(t)
	return nil
}

// dropNegative clears cold-start cache markers for a transaction's
// endpoints, each on its owner shard's cache (no-op without caches): the
// receiver's marker may live on another shard than the one ingesting.
func (s *Server) dropNegative(t *txn.Transaction) {
	s.ownerOf(t.From).dropNegativeLocal(t.From)
	s.ownerOf(t.To).dropNegativeLocal(t.To)
}

func (s *Server) dropNegativeLocal(u txn.UserID) {
	if s.cache != nil {
		s.cache.InvalidateNegative(u)
	}
}

// IngestBatch ingests a slice in order, subject to the engine's batch
// limit. It is all-or-nothing only on the pre-checks; ingestion itself
// cannot fail.
func (s *Server) IngestBatch(txns []txn.Transaction) error {
	if s.stream == nil {
		return ErrStreamDisabled
	}
	if s.maxBatch > 0 && len(txns) > s.maxBatch {
		return batchTooLarge(len(txns), s.maxBatch)
	}
	if s.elog != nil {
		s.elogMu.Lock()
		defer s.elogMu.Unlock()
		for i := range txns {
			if err := s.ingestLocked(&txns[i]); err != nil {
				return err
			}
		}
		return s.maybeSnapshotLocked()
	}
	for i := range txns {
		s.stream.Ingest(&txns[i])
		s.dropNegative(&txns[i])
	}
	return nil
}

// StreamEnabled reports whether the engine maintains a live aggregate
// window.
func (s *Server) StreamEnabled() bool { return s.stream != nil }

// Ingested returns the live window's accepted-transaction count (0 when
// streaming is disabled).
func (s *Server) Ingested() int64 {
	if s.stream == nil {
		return 0
	}
	return s.stream.Ingested()
}

// LatencyStats summarises serving latency.
type LatencyStats struct {
	Count   int64
	Alerted int64
	P50     time.Duration
	P99     time.Duration
	Max     time.Duration
}

// Latency returns percentile statistics over all scored requests. The
// read is O(buckets): percentiles come from the bounded histogram, not a
// sample log.
func (s *Server) Latency() LatencyStats {
	counts, total := s.hist.Snapshot()
	max := s.hist.Max()
	return LatencyStats{
		Count:   s.scored.Load(),
		Alerted: s.alerted.Load(),
		P50:     telemetry.Quantile(s.hist.Bounds(), counts, total, max, 0.50),
		P99:     telemetry.Quantile(s.hist.Bounds(), counts, total, max, 0.99),
		Max:     max,
	}
}
