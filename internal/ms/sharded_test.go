package ms

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"

	"titant/internal/feature"
	"titant/internal/feature/stream"
	"titant/internal/hbase"
	"titant/internal/rng"
	"titant/internal/txn"
)

const shardTestUsers = 60

// userSink is the upload surface shared by Uploader and ShardedUploader.
type userSink interface {
	PutUser(u *txn.User, stats feature.UserStats, emb []float32) error
}

// seedShardUsers uploads a deterministic population through any sink, so
// a single table and a shard ring can be populated identically.
func seedShardUsers(t testing.TB, sink userSink) {
	t.Helper()
	for i := txn.UserID(0); i < shardTestUsers; i++ {
		u := txn.User{
			ID: i, Age: uint8(20 + int(i)%40), HomeCity: uint16(i % 4),
			AccountAge: txn.AccountAgeDays(30 * int(i)), AvgAmount: float32(10 + i),
		}
		st := feature.UserStats{OutCount: float64(i % 10), InCount: float64(i % 7)}
		if err := sink.PutUser(&u, st, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func shardTables(t testing.TB, n int) []*hbase.Table {
	t.Helper()
	tabs := make([]*hbase.Table, n)
	for i := range tabs {
		tabs[i] = table(t)
	}
	return tabs
}

// shardTxns draws a deterministic traffic sample over the test users.
func shardTxns(n int, seed uint64) []txn.Transaction {
	r := rng.New(seed)
	txns := make([]txn.Transaction, n)
	for i := range txns {
		txns[i] = txn.Transaction{
			ID: txn.TxnID(i + 1), Day: 1, Sec: int32(i % 86400),
			From: txn.UserID(r.Intn(shardTestUsers)), To: txn.UserID(r.Intn(shardTestUsers)),
			Amount: float32(r.Float64() * 2000), TransCity: uint16(r.Intn(4)),
		}
	}
	return txns
}

// buildSharded populates a fresh n-table ring and builds the engine over
// it with a private stream store, mirroring newReference below.
func buildSharded(t *testing.T, n int, b *Bundle, extra ...Option) *ShardedEngine {
	t.Helper()
	tabs := shardTables(t, n)
	seedShardUsers(t, NewShardedUploader(tabs, 0))
	st := stream.New(stream.WithCities(4), stream.WithWindow(8, 86400))
	opts := append([]Option{WithStreamAggregates(st), WithUserCache(256)}, extra...)
	se, err := NewSharded(tabs, b, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(se.Close)
	return se
}

func newReference(t *testing.T, b *Bundle) *Server {
	t.Helper()
	tab := table(t)
	seedShardUsers(t, &Uploader{Table: tab})
	st := stream.New(stream.WithCities(4), stream.WithWindow(8, 86400))
	srv, err := New(tab, b, WithStreamAggregates(st), WithUserCache(256))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func TestShardOf(t *testing.T) {
	if got := ShardOf(42, 1); got != 0 {
		t.Fatalf("ShardOf(42, 1) = %d", got)
	}
	// Stable, in range, and non-degenerate.
	hit := make(map[int]int)
	for u := txn.UserID(0); u < 10000; u++ {
		s := ShardOf(u, 8)
		if s < 0 || s >= 8 {
			t.Fatalf("ShardOf(%d, 8) = %d out of range", u, s)
		}
		if s != ShardOf(u, 8) {
			t.Fatalf("ShardOf(%d, 8) unstable", u)
		}
		hit[s]++
	}
	for s := 0; s < 8; s++ {
		if hit[s] < 10000/8/2 {
			t.Fatalf("shard %d owns only %d of 10000 users", s, hit[s])
		}
	}
	// Jump hashing: growing the ring only moves users onto new shards —
	// a user never relocates between two surviving shards.
	for u := txn.UserID(0); u < 10000; u++ {
		s4, s5 := ShardOf(u, 4), ShardOf(u, 5)
		if s4 != s5 && s5 != 4 {
			t.Fatalf("user %d moved %d -> %d when shard 4 was added", u, s4, s5)
		}
	}
}

// TestShardedRebalanceBitwise is the resharding correctness proof: the
// same world partitioned 1, 3 and 5 ways must produce bit-identical
// scores for identical traffic. Shard-local state (tables, caches) moves
// with its owner and the stream window is shared, so the verdict function
// is independent of the partition count by construction.
func TestShardedRebalanceBitwise(t *testing.T) {
	b := trainToy(t, 0)
	ref := newReference(t, b)
	se3 := buildSharded(t, 3, b)
	se5 := buildSharded(t, 5, b)

	// A deterministic in-window ingest warms every engine identically
	// (sequential: concurrent sub-batch ingest is order-independent for
	// the window state, but sequencing keeps the test's intent obvious).
	warm := shardTxns(300, 11)
	for i := range warm {
		if err := ref.Ingest(&warm[i]); err != nil {
			t.Fatal(err)
		}
		if err := se3.Ingest(&warm[i]); err != nil {
			t.Fatal(err)
		}
		if err := se5.Ingest(&warm[i]); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	txns := shardTxns(400, 7)
	want, err := ref.ScoreBatch(ctx, txns)
	if err != nil {
		t.Fatal(err)
	}
	for name, se := range map[string]*ShardedEngine{"3-shard": se3, "5-shard": se5} {
		got, err := se.ScoreBatch(ctx, txns)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d verdicts, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i].TxnID != want[i].TxnID {
				t.Fatalf("%s: verdict %d out of order: txn %d", name, i, got[i].TxnID)
			}
			if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) || got[i].Fraud != want[i].Fraud {
				t.Fatalf("%s: verdict %d (txn %d): score %v (%x) != reference %v (%x)",
					name, i, txns[i].ID, got[i].Score, math.Float64bits(got[i].Score),
					want[i].Score, math.Float64bits(want[i].Score))
			}
		}
	}
}

// TestShardedSingleShardIdentical: N=1 over the very same table is the
// unsharded engine, bit for bit.
func TestShardedSingleShardIdentical(t *testing.T) {
	b := trainToy(t, 0)
	tab := table(t)
	seedShardUsers(t, &Uploader{Table: tab})
	ref, err := New(tab, b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ref.Close)
	se, err := NewSharded([]*hbase.Table{tab}, b)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(se.Close)
	if se.Shards() != 1 {
		t.Fatalf("Shards() = %d", se.Shards())
	}

	ctx := context.Background()
	txns := shardTxns(200, 3)
	want, err := ref.ScoreBatch(ctx, txns)
	if err != nil {
		t.Fatal(err)
	}
	got, err := se.ScoreBatch(ctx, txns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) ||
			got[i].Fraud != want[i].Fraud || got[i].Version != want[i].Version {
			t.Fatalf("verdict %d: sharded %+v != unsharded %+v", i, got[i], want[i])
		}
	}
}

// TestShardedBatchMatchesSingles: scatter/gather preserves input order
// and agrees with the single-transaction path on the same engine.
func TestShardedBatchMatchesSingles(t *testing.T) {
	se := buildSharded(t, 4, trainToy(t, 0))
	ctx := context.Background()
	txns := shardTxns(250, 5)
	verdicts, err := se.ScoreBatch(ctx, txns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range txns {
		if verdicts[i].TxnID != txns[i].ID {
			t.Fatalf("verdict %d out of order: txn %d", i, verdicts[i].TxnID)
		}
		want, err := se.Score(ctx, &txns[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(verdicts[i].Score) != math.Float64bits(want.Score) {
			t.Fatalf("verdict %d: batch %v != single %v", i, verdicts[i].Score, want.Score)
		}
	}
	if st := se.Latency(); st.Count != int64(2*len(txns)) {
		t.Fatalf("merged latency count = %d, want %d", st.Count, 2*len(txns))
	}
}

func TestShardedBatchLimit(t *testing.T) {
	se := buildSharded(t, 2, trainToy(t, 0), WithMaxBatch(4))
	ctx := context.Background()
	if v, err := se.ScoreBatch(ctx, nil); err != nil || v != nil {
		t.Fatalf("empty batch: %v, %v", v, err)
	}
	if _, err := se.ScoreBatch(ctx, make([]txn.Transaction, 5)); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}
}

// TestShardedSwapAllShards: one SetBundle/SetPolicy lands on every shard,
// and concurrent batches never observe a torn swap (all verdicts in one
// batch carry one version).
func TestShardedSwapAllShards(t *testing.T) {
	b1 := trainToy(t, 0)
	se := buildSharded(t, 3, b1, WithPolicy(decidePolicy(t)))
	b2 := *b1
	b2.Version = "2017-04-17"

	ctx := context.Background()
	txns := shardTxns(64, 9)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			vs, err := se.ScoreBatch(ctx, txns)
			if err != nil {
				t.Errorf("ScoreBatch during swap: %v", err)
				return
			}
			for i := range vs {
				if vs[i].Version != vs[0].Version {
					t.Errorf("torn swap: verdict 0 version %q, verdict %d version %q", vs[0].Version, i, vs[i].Version)
					return
				}
			}
		}
	}()
	for i := 0; i < 20; i++ {
		nb := b1
		if i%2 == 0 {
			nb = &b2
		}
		if err := se.SetBundle(nb); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if err := se.SetBundle(&b2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < se.Shards(); i++ {
		if v := se.Shard(i).BundleVersion(); v != "2017-04-17" {
			t.Fatalf("shard %d still serves %q after swap", i, v)
		}
	}
	if err := se.SetPolicy(decidePolicy(t)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < se.Shards(); i++ {
		if v := se.Shard(i).PolicyVersion(); v != "pol-1" {
			t.Fatalf("shard %d policy %q after swap", i, v)
		}
	}
	if _, err := se.DecideBatch(ctx, txns, nil); err != nil {
		t.Fatal(err)
	}
	if ds := se.DecisionStats(); ds.Decided != int64(len(txns)) {
		t.Fatalf("merged decided = %d, want %d", ds.Decided, len(txns))
	}
}

// TestShardedAdmissionTopLevel: quotas gate once at the engine level, not
// once per shard — N shards must not multiply a caller's budget by N.
func TestShardedAdmissionTopLevel(t *testing.T) {
	se := buildSharded(t, 4, trainToy(t, 0), WithCallerQuota(1, 2))
	for i := 0; i < se.Shards(); i++ {
		if se.Shard(i).AdmissionEnabled() {
			t.Fatalf("shard %d kept its own admission gate", i)
		}
	}
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		release, err := se.Admit(ctx, 1)
		if err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
		release()
	}
	if _, err := se.Admit(ctx, 1); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("err = %v, want ErrRateLimited", err)
	}
	as := se.AdmissionStats()
	if as.Admitted != 2 || as.ShedQuota != 1 {
		t.Fatalf("admission stats = %+v", as)
	}
}

func TestNewShardedRejectsEventLog(t *testing.T) {
	tabs := shardTables(t, 2)
	_, err := NewSharded(tabs, trainToy(t, 0), WithEventLog(t.TempDir()))
	if err == nil || !strings.Contains(err.Error(), "WithEventLog") {
		t.Fatalf("err = %v, want WithEventLog rejection", err)
	}
}

// TestShardedStatsMerge: the merged stats body sums counters and
// histograms across shards instead of reporting shard 0 only.
func TestShardedStatsMerge(t *testing.T) {
	se := buildSharded(t, 3, trainToy(t, 0), WithCallerQuota(1000, 1000))
	ctx := context.Background()
	txns := shardTxns(90, 13)
	if _, err := se.ScoreBatch(ctx, txns); err != nil {
		t.Fatal(err)
	}

	// Every shard did real work (the hash spreads 60 users over 3
	// shards), so a shard-0-only stats view cannot equal the merge.
	var perShard int64
	for i := 0; i < se.Shards(); i++ {
		c := se.Shard(i).Latency().Count
		if c == 0 {
			t.Fatalf("shard %d scored nothing", i)
		}
		if c == int64(len(txns)) {
			t.Fatalf("shard %d scored the whole batch", i)
		}
		perShard += c
	}
	if perShard != int64(len(txns)) {
		t.Fatalf("per-shard counts sum to %d, want %d", perShard, len(txns))
	}

	body := se.StatsBody()
	if got := body["scored"].(int64); got != int64(len(txns)) {
		t.Fatalf("merged scored = %d, want %d", got, len(txns))
	}
	if got := body["shards"].(int); got != 3 {
		t.Fatalf("shards = %d, want 3", got)
	}
	hist := body["latency_hist"].(map[string]interface{})
	var histTotal int64
	for _, c := range hist["counts"].([]int64) {
		histTotal += c
	}
	if histTotal != int64(len(txns)) {
		t.Fatalf("merged histogram holds %d samples, want %d", histTotal, len(txns))
	}
	cache := body["user_cache"].(map[string]interface{})
	cs := se.UserCacheStats()
	if cache["capacity"].(int) != cs.Capacity || cs.Capacity < 256 {
		t.Fatalf("merged cache capacity = %v (stats %d), want >= 256", cache["capacity"], cs.Capacity)
	}
	if cs.Hits+cs.Misses == 0 {
		t.Fatal("merged cache saw no traffic")
	}
	if adm := body["admission"].(map[string]interface{}); adm["admitted"].(int64) != int64(len(txns)) {
		t.Fatalf("merged admitted = %v, want %d", adm["admitted"], len(txns))
	}
	if h := se.Health(); h.Shards != 3 || h.Status != "ok" {
		t.Fatalf("health = %+v", h)
	}
}

// TestShardedIngestRouting: ingest fans out by owner yet lands in the one
// shared window, and the live signal reaches scoring exactly as it does
// unsharded.
func TestShardedIngestRouting(t *testing.T) {
	b := trainToy(t, 0)
	se := buildSharded(t, 3, b)
	ref := newReference(t, b)

	warm := shardTxns(120, 17)
	if err := se.IngestBatch(warm); err != nil {
		t.Fatal(err)
	}
	for i := range warm {
		if err := ref.Ingest(&warm[i]); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := se.Ingested(), ref.Ingested(); got != want {
		t.Fatalf("sharded ingested %d, unsharded %d", got, want)
	}

	ctx := context.Background()
	txns := shardTxns(100, 19)
	want, err := ref.ScoreBatch(ctx, txns)
	if err != nil {
		t.Fatal(err)
	}
	got, err := se.ScoreBatch(ctx, txns)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
			t.Fatalf("verdict %d: sharded %v != unsharded %v after ingest", i, got[i].Score, want[i].Score)
		}
	}
}

// TestShardedUploaderInvalidation: a live re-publication through the
// engine's uploader is visible to the next score on the owner shard.
func TestShardedUploaderInvalidation(t *testing.T) {
	se := buildSharded(t, 3, trainToy(t, 0))
	ctx := context.Background()
	tr := txn.Transaction{ID: 1, From: 7, To: 8, Amount: 500}
	if _, err := se.Score(ctx, &tr); err != nil { // warm the owner's cache
		t.Fatal(err)
	}
	// Re-publish user 7 with a different profile (version 0 = auto: a
	// fresh wall-clock version that supersedes the seed wave's).
	up := se.Uploader(0)
	u := txn.User{ID: 7, Age: 75, HomeCity: 1, AvgAmount: 9000}
	if err := up.PutUser(&u, feature.UserStats{OutCount: 40, InCount: 1}, nil); err != nil {
		t.Fatal(err)
	}
	// Read through a NON-owner shard: the ring must route to the owner,
	// whose cache the uploader just invalidated, so the fresh profile —
	// not the warm pre-publication entry — comes back.
	other := se.Shard((ShardOf(7, se.Shards()) + 1) % se.Shards())
	parts, err := other.fetchOne(7)
	if err != nil {
		t.Fatal(err)
	}
	if parts.user.Age != 75 || parts.stats.OutCount != 40 {
		t.Fatalf("stale fragments after re-publication: %+v", parts.user)
	}
}
