package ms

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"titant/internal/feature"
	"titant/internal/model"
)

// Bundle is the model file the offline pipeline uploads to the Model
// Server after each T+1 training run: the classifier, the decision
// threshold frozen on the validation day, the city feature table, and the
// embedding dimensionality the model was trained with (0 when the model
// uses basic features only).
type Bundle struct {
	Version      string // e.g. the training date, per the paper's versioning
	ModelBytes   []byte // gob-encoded model.Classifier
	Threshold    float64
	City         feature.CityTable
	EmbeddingDim int

	clf model.Classifier // decoded lazily
}

// NewBundle builds a bundle around a trained classifier.
func NewBundle(version string, clf model.Classifier, threshold float64, city feature.CityTable, embDim int) (*Bundle, error) {
	mb, err := model.Encode(clf)
	if err != nil {
		return nil, err
	}
	return &Bundle{
		Version: version, ModelBytes: mb, Threshold: threshold,
		City: city, EmbeddingDim: embDim, clf: clf,
	}, nil
}

// Classifier returns the decoded model.
func (b *Bundle) Classifier() (model.Classifier, error) {
	if b.clf != nil {
		return b.clf, nil
	}
	clf, err := model.Decode(b.ModelBytes)
	if err != nil {
		return nil, err
	}
	b.clf = clf
	return clf, nil
}

// Encode serialises the bundle for upload.
func (b *Bundle) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, fmt.Errorf("ms: encode bundle: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeBundle deserialises a bundle.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return nil, fmt.Errorf("ms: decode bundle: %w", err)
	}
	if _, err := b.Classifier(); err != nil {
		return nil, err
	}
	return &b, nil
}
