package ms

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"titant/internal/feature"
	"titant/internal/model"

	// Every concrete detector registers its gob type in init; linking
	// them here makes DecodeBundle self-sufficient, so standalone
	// consumers (cmd/msd, POST /v1/models) can decode bundles produced
	// by any training pipeline.
	_ "titant/internal/model/gbdt"
	_ "titant/internal/model/iforest"
	_ "titant/internal/model/lr"
	_ "titant/internal/model/ruletree"
)

// Bundle is the model file the offline pipeline uploads to the Model
// Server after each T+1 training run: the classifier, the decision
// threshold frozen on the validation day, the city feature table, and the
// embedding dimensionality the model was trained with (0 when the model
// uses basic features only).
type Bundle struct {
	Version      string // e.g. the training date, per the paper's versioning
	ModelBytes   []byte // gob-encoded model.Classifier
	Threshold    float64
	City         feature.CityTable
	EmbeddingDim int

	clf model.Classifier // decoded lazily
}

// NewBundle builds a bundle around a trained classifier.
func NewBundle(version string, clf model.Classifier, threshold float64, city feature.CityTable, embDim int) (*Bundle, error) {
	mb, err := model.Encode(clf)
	if err != nil {
		return nil, err
	}
	b := &Bundle{
		Version: version, ModelBytes: mb, Threshold: threshold,
		City: city, EmbeddingDim: embDim, clf: clf,
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// validate checks the bundle's internal consistency: the classifier must
// decode and its input width must match the declared embedding
// dimensionality, so an inconsistent bundle is rejected at publication
// instead of panicking inside Score.
func (b *Bundle) validate() error {
	clf, err := b.Classifier()
	if err != nil {
		return err
	}
	want := feature.NumBasic + 2*b.EmbeddingDim
	if got := clf.NumFeatures(); got != want {
		return fmt.Errorf("%w: classifier wants %d features, bundle declares %d (%d basic + 2×%d embedding)",
			ErrBundleInvalid, got, want, feature.NumBasic, b.EmbeddingDim)
	}
	return nil
}

// Classifier returns the decoded model. Decode failures wrap
// ErrBundleInvalid.
func (b *Bundle) Classifier() (model.Classifier, error) {
	if b.clf != nil {
		return b.clf, nil
	}
	clf, err := model.Decode(b.ModelBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBundleInvalid, err)
	}
	b.clf = clf
	return clf, nil
}

// Encode serialises the bundle for upload.
func (b *Bundle) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, fmt.Errorf("ms: encode bundle: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeBundle deserialises a bundle. Failures wrap ErrBundleInvalid.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrBundleInvalid, err)
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return &b, nil
}
