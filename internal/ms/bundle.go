package ms

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"titant/internal/feature"
	"titant/internal/model"

	// Every concrete detector registers its gob type in init; linking
	// them here makes DecodeBundle self-sufficient, so standalone
	// consumers (cmd/msd, POST /v1/models) can decode bundles produced
	// by any training pipeline.
	_ "titant/internal/model/gbdt"
	_ "titant/internal/model/iforest"
	_ "titant/internal/model/lr"
	_ "titant/internal/model/ruletree"
)

// Combiner selects how an ensemble bundle folds its members' scores into
// the one score the threshold is applied to.
type Combiner uint8

// Combiners of the v2 bundle format.
const (
	// CombineMean is the weight-averaged member score:
	// sum(w_i * s_i) / sum(w_i).
	CombineMean Combiner = iota
	// CombineMax is the most suspicious member's score (weights ignored):
	// one confident detector is enough to flag.
	CombineMax
	// CombineVote is the weighted fraction of members whose score crosses
	// their own threshold: sum(w_i * [s_i >= thr_i]) / sum(w_i). The
	// bundle threshold then acts on the vote share (0.5 = majority).
	CombineVote
)

func (c Combiner) String() string {
	switch c {
	case CombineMean:
		return "mean"
	case CombineMax:
		return "max"
	case CombineVote:
		return "vote"
	}
	return fmt.Sprintf("Combiner(%d)", int(c))
}

// ParseCombiner maps the wire/CLI names back to Combiner values.
func ParseCombiner(s string) (Combiner, error) {
	switch s {
	case "mean":
		return CombineMean, nil
	case "max":
		return CombineMax, nil
	case "vote":
		return CombineVote, nil
	}
	return 0, fmt.Errorf("%w: unknown combiner %q (want mean, max or vote)", ErrBundleInvalid, s)
}

// Member is one detector of a v2 ensemble bundle. Exported for gob.
type Member struct {
	Name       string
	ModelBytes []byte  // gob-encoded model.Classifier
	Weight     float64 // combiner weight; <= 0 reads as 1
	Threshold  float64 // member-local firing threshold (vote combiner)
}

// weight returns the member's effective combiner weight.
func (m *Member) weight() float64 {
	if m.Weight <= 0 {
		return 1
	}
	return m.Weight
}

// EnsembleMember describes one trained detector when building an ensemble
// bundle (the pre-encoding form of Member).
type EnsembleMember struct {
	Name      string
	Clf       model.Classifier
	Weight    float64 // <= 0 reads as 1
	Threshold float64 // member-local firing threshold (vote combiner)
}

// Bundle is the model file the offline pipeline uploads to the Model
// Server after each training run. Two formats share the struct:
//
//   - v1 (single model): ModelBytes carries the one classifier, Threshold
//     is its frozen decision threshold. Members is empty.
//   - v2 (ensemble): Members carries an ordered set of named classifiers,
//     Combine folds their scores, Threshold acts on the combined score.
//     ModelBytes is empty.
//
// Both travel through the same gob encoding, so a v1 bundle written by an
// older pipeline decodes transparently here (gob leaves the absent v2
// fields zero) and serves as a one-member mean ensemble. City and
// EmbeddingDim mean the same thing in both formats.
type Bundle struct {
	Version      string // e.g. the training date, per the paper's versioning
	ModelBytes   []byte // v1: gob-encoded model.Classifier
	Threshold    float64
	City         feature.CityTable
	EmbeddingDim int
	Members      []Member // v2: ordered ensemble
	Combine      Combiner

	ens *ensemble // decoded runtime view, built by validate
}

// NewBundle builds a v1 single-model bundle around a trained classifier.
func NewBundle(version string, clf model.Classifier, threshold float64, city feature.CityTable, embDim int) (*Bundle, error) {
	mb, err := model.Encode(clf)
	if err != nil {
		return nil, err
	}
	b := &Bundle{
		Version: version, ModelBytes: mb, Threshold: threshold,
		City: city, EmbeddingDim: embDim,
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// NewEnsembleBundle builds a v2 bundle from an ordered set of trained
// detectors. threshold acts on the combined score.
func NewEnsembleBundle(version string, members []EnsembleMember, combine Combiner, threshold float64, city feature.CityTable, embDim int) (*Bundle, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("%w: ensemble needs at least one member", ErrBundleInvalid)
	}
	b := &Bundle{
		Version: version, Threshold: threshold,
		City: city, EmbeddingDim: embDim,
		Members: make([]Member, len(members)),
		Combine: combine,
	}
	for i := range members {
		m := &members[i]
		mb, err := model.Encode(m.Clf)
		if err != nil {
			return nil, fmt.Errorf("%w: member %q: %v", ErrBundleInvalid, m.Name, err)
		}
		b.Members[i] = Member{Name: m.Name, ModelBytes: mb, Weight: m.Weight, Threshold: m.Threshold}
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return b, nil
}

// ensemble is the decoded runtime view of a bundle: every member's
// classifier plus the combiner inputs, in member order. single marks a v1
// bundle, whose responses omit per-member scores for wire compatibility.
type ensemble struct {
	names   []string
	clfs    []model.Classifier
	weights []float64
	thrs    []float64
	combine Combiner
	single  bool
}

// validate checks the bundle's internal consistency and builds the decoded
// ensemble view: every member must decode and agree with the declared
// feature width, so an inconsistent bundle is rejected at publication
// instead of failing inside the scoring hot path.
func (b *Bundle) validate() error {
	want := feature.NumBasic + 2*b.EmbeddingDim
	switch {
	case len(b.Members) > 0 && len(b.ModelBytes) > 0:
		return fmt.Errorf("%w: bundle carries both a v1 model and v2 members", ErrBundleInvalid)
	case len(b.Members) == 0 && len(b.ModelBytes) == 0:
		return fmt.Errorf("%w: bundle carries no model", ErrBundleInvalid)
	}
	switch b.Combine {
	case CombineMean, CombineMax, CombineVote:
	default:
		return fmt.Errorf("%w: unknown combiner %d", ErrBundleInvalid, int(b.Combine))
	}
	ens := &ensemble{combine: b.Combine}
	check := func(name string, raw []byte, weight, thr float64) error {
		clf, err := model.Decode(raw)
		if err != nil {
			return fmt.Errorf("%w: member %q: %v", ErrBundleInvalid, name, err)
		}
		if got := clf.NumFeatures(); got != want {
			return fmt.Errorf("%w: member %q wants %d features, bundle declares %d (%d basic + 2×%d embedding)",
				ErrBundleInvalid, name, got, want, feature.NumBasic, b.EmbeddingDim)
		}
		ens.names = append(ens.names, name)
		ens.clfs = append(ens.clfs, clf)
		ens.weights = append(ens.weights, weight)
		ens.thrs = append(ens.thrs, thr)
		return nil
	}
	if len(b.Members) > 0 {
		seen := make(map[string]bool, len(b.Members))
		for i := range b.Members {
			m := &b.Members[i]
			if m.Name == "" {
				return fmt.Errorf("%w: member %d has no name", ErrBundleInvalid, i)
			}
			if seen[m.Name] {
				return fmt.Errorf("%w: duplicate member name %q", ErrBundleInvalid, m.Name)
			}
			seen[m.Name] = true
			if err := check(m.Name, m.ModelBytes, m.weight(), m.Threshold); err != nil {
				return err
			}
		}
	} else {
		// v1: the single classifier serves as a one-member ensemble whose
		// member threshold is the bundle threshold.
		ens.single = true
		if err := check("model", b.ModelBytes, 1, b.Threshold); err != nil {
			return err
		}
	}
	b.ens = ens
	return nil
}

// runtime returns the decoded ensemble view, building it on first use for
// bundles that skipped validation (e.g. hand-assembled in tests).
func (b *Bundle) runtime() (*ensemble, error) {
	if b.ens != nil {
		return b.ens, nil
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return b.ens, nil
}

// Classifier returns the decoded model of a v1 bundle, or the first
// member of a v2 ensemble. Decode failures wrap ErrBundleInvalid.
func (b *Bundle) Classifier() (model.Classifier, error) {
	ens, err := b.runtime()
	if err != nil {
		return nil, err
	}
	return ens.clfs[0], nil
}

// NumMembers returns how many classifiers the bundle carries (1 for v1).
func (b *Bundle) NumMembers() int {
	if len(b.Members) > 0 {
		return len(b.Members)
	}
	return 1
}

// ScoreMatrix scores every row of m through the ensemble: dst receives the
// combined scores, and when memberDst is non-nil it must hold one slice of
// m.Rows per member, receiving the per-member scores. Each member takes
// its detector's batch path (model.BatchScorer) when it has one. A feature
// width mismatch surfaces as ErrDimensionMismatch.
func (b *Bundle) ScoreMatrix(dst []float64, memberDst [][]float64, m *feature.Matrix) error {
	ens, err := b.runtime()
	if err != nil {
		return err
	}
	return ens.score(dst, memberDst, m)
}

func (e *ensemble) score(dst []float64, memberDst [][]float64, m *feature.Matrix) error {
	if len(dst) != m.Rows {
		return fmt.Errorf("%w: dst has %d slots, matrix %d rows", ErrDimensionMismatch, len(dst), m.Rows)
	}
	if memberDst != nil && len(memberDst) != len(e.clfs) {
		return fmt.Errorf("%w: memberDst has %d slices, ensemble %d members", ErrDimensionMismatch, len(memberDst), len(e.clfs))
	}
	// One member combines to itself under mean and max; vote still needs
	// the threshold step, and explainability still needs the raw scores.
	if len(e.clfs) == 1 && e.combine != CombineVote {
		if err := scoreMember(dst, e.clfs[0], m); err != nil {
			return err
		}
		if memberDst != nil {
			copy(memberDst[0], dst)
		}
		return nil
	}
	var totalW float64
	for _, w := range e.weights {
		totalW += w
	}
	scratch := memberDst
	if scratch == nil {
		scratch = getMemberScores(len(e.clfs), m.Rows)
		defer putMemberScores(scratch)
	}
	for k, clf := range e.clfs {
		if err := scoreMember(scratch[k], clf, m); err != nil {
			return fmt.Errorf("member %q: %w", e.names[k], err)
		}
	}
	for i := 0; i < m.Rows; i++ {
		switch e.combine {
		case CombineMax:
			s := scratch[0][i]
			for k := 1; k < len(scratch); k++ {
				if scratch[k][i] > s {
					s = scratch[k][i]
				}
			}
			dst[i] = s
		case CombineVote:
			var fired float64
			for k := range scratch {
				if scratch[k][i] >= e.thrs[k] {
					fired += e.weights[k]
				}
			}
			dst[i] = fired / totalW
		default: // CombineMean
			var s float64
			for k := range scratch {
				s += e.weights[k] * scratch[k][i]
			}
			dst[i] = s / totalW
		}
	}
	return nil
}

// scoreMember runs one classifier's batch path, translating the model
// layer's width error into the serving layer's typed error.
func scoreMember(dst []float64, clf model.Classifier, m *feature.Matrix) error {
	if err := model.ScoreMatrixInto(dst, clf, m); err != nil {
		return fmt.Errorf("%w: %v", ErrDimensionMismatch, err)
	}
	return nil
}

// Encode serialises the bundle for upload.
func (b *Bundle) Encode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(b); err != nil {
		return nil, fmt.Errorf("ms: encode bundle: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeBundle deserialises a bundle (either format). Failures wrap
// ErrBundleInvalid.
func DecodeBundle(data []byte) (*Bundle, error) {
	var b Bundle
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&b); err != nil {
		return nil, fmt.Errorf("%w: decode: %v", ErrBundleInvalid, err)
	}
	if err := b.validate(); err != nil {
		return nil, err
	}
	return &b, nil
}
