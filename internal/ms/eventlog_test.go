package ms

import (
	"context"
	"reflect"
	"testing"
	"time"

	"titant/internal/decision"
	"titant/internal/eventlog"
	"titant/internal/feature"
	"titant/internal/feature/stream"
	"titant/internal/hbase"
	"titant/internal/rng"
	"titant/internal/txn"
)

// recoveryUsers is how many users the recovery fixtures upload; every
// generated transaction names two of them (plus the occasional unknown
// user, to exercise negative-cache interplay).
const recoveryUsers = 6

func recoveryTable(t *testing.T) *hbase.Table {
	t.Helper()
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= recoveryUsers; i++ {
		u := txn.User{ID: i, Age: uint8(20 + i), HomeCity: uint16(i % 4)}
		if err := up.PutUser(&u, feature.UserStats{OutCount: float64(i)}, nil); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

func recoveryStream() *stream.Store {
	return stream.New(stream.WithShards(4), stream.WithWindow(8, 86400), stream.WithCities(8))
}

// recoveryOp is one step of the deterministic schedule: a transaction
// either ingested (with its label) or scored.
type recoveryOp struct {
	t     txn.Transaction
	score bool
}

// recoverySchedule builds a reproducible mixed workload.
func recoverySchedule(n int) []recoveryOp {
	r := rng.New(7)
	ops := make([]recoveryOp, n)
	for i := range ops {
		from := txn.UserID(1 + r.Intn(recoveryUsers))
		to := txn.UserID(1 + r.Intn(recoveryUsers))
		if r.Bool(0.05) {
			to = txn.UserID(1000 + r.Intn(4)) // unknown user: negative-cache traffic
		}
		ops[i] = recoveryOp{
			t: txn.Transaction{
				ID:        txn.TxnID(i + 1),
				Day:       txn.Day(100),
				Sec:       int32(i % 86400),
				From:      from,
				To:        to,
				Amount:    float32(r.Float64() * 2000),
				TransCity: uint16(r.Intn(8)),
				Fraud:     r.Bool(0.1),
			},
			score: i%3 == 0,
		}
	}
	return ops
}

// runOps drives a schedule through the engine's public API.
func runOps(t *testing.T, srv *Server, ops []recoveryOp) {
	t.Helper()
	ctx := context.Background()
	for i := range ops {
		if ops[i].score {
			if _, err := srv.Score(ctx, &ops[i].t); err != nil {
				t.Fatalf("score op %d: %v", i, err)
			}
		} else {
			if err := srv.Ingest(&ops[i].t); err != nil {
				t.Fatalf("ingest op %d: %v", i, err)
			}
		}
	}
}

// assertEngineEqual compares every piece of state the event log promises
// to rebuild bitwise: the streaming window (aggregates, velocity, pair
// priors, city statistics), the drift monitor, and — the end-to-end
// check — the verdicts both engines produce for identical fresh traffic.
func assertEngineEqual(t *testing.T, got, want *Server, gotSt, wantSt *stream.Store) {
	t.Helper()
	if g, w := gotSt.Ingested(), wantSt.Ingested(); g != w {
		t.Fatalf("ingested: got %d, want %d", g, w)
	}
	for u := txn.UserID(1); u <= recoveryUsers; u++ {
		if g, w := gotSt.Stats(u), wantSt.Stats(u); g != w {
			t.Fatalf("user %d stats: got %+v, want %+v", u, g, w)
		}
		oc, oa, ic, ia := gotSt.Velocity(u)
		wc, wa, wic, wia := wantSt.Velocity(u)
		if oc != wc || oa != wa || ic != wic || ia != wia {
			t.Fatalf("user %d velocity: got (%v %v %v %v), want (%v %v %v %v)",
				u, oc, oa, ic, ia, wc, wa, wic, wia)
		}
		for v := txn.UserID(1); v <= recoveryUsers; v++ {
			if g, w := gotSt.PairPrior(u, v), wantSt.PairPrior(u, v); g != w {
				t.Fatalf("pair (%d,%d) prior: got %v, want %v", u, v, g, w)
			}
		}
	}
	for c := uint16(0); c < 8; c++ {
		gf, gs, gn := gotSt.LookupCity(c)
		wf, ws, wn := wantSt.LookupCity(c)
		if gf != wf || gs != ws || gn != wn {
			t.Fatalf("city %d: got (%v %v %v), want (%v %v %v)", c, gf, gs, gn, wf, ws, wn)
		}
	}
	if g, w := got.DriftStats(), want.DriftStats(); !reflect.DeepEqual(g, w) {
		t.Fatalf("drift stats:\n got %+v\nwant %+v", g, w)
	}

	// Fresh traffic must produce identical verdicts — scores are read
	// through the recovered window, so this is the paper-level check:
	// the recovered engine decides exactly like one that never crashed.
	fresh := recoverySchedule(420)[400:]
	ctx := context.Background()
	for i := range fresh {
		fresh[i].t.ID += 100000
		gv, gerr := got.Score(ctx, &fresh[i].t)
		wv, werr := want.Score(ctx, &fresh[i].t)
		if (gerr == nil) != (werr == nil) {
			t.Fatalf("fresh txn %d: errors diverge: %v vs %v", i, gerr, werr)
		}
		if gv.Score != wv.Score || gv.Fraud != wv.Fraud {
			t.Fatalf("fresh txn %d: verdict (%v %v) vs (%v %v)", i, gv.Score, gv.Fraud, wv.Score, wv.Fraud)
		}
	}
}

// TestKillRestartBitwiseRecovery is the crash-recovery harness of the
// durability plane: drive a mixed ingest/score workload, fsync at an
// arbitrary cut, keep going, then kill the process image (buffered
// appends dropped, no graceful close). A restart from the log directory
// must rebuild the window and drift state bitwise-identical to a
// reference engine that processed exactly the durable prefix and never
// crashed — and must score fresh traffic identically to it.
func TestKillRestartBitwiseRecovery(t *testing.T) {
	dir := t.TempDir()
	tab := recoveryTable(t)
	drift := decision.DriftConfig{Bins: 16, BaselineSamples: 40, MinLiveSamples: 1}
	ops := recoverySchedule(400)
	cut := 263 // arbitrary mid-schedule point; everything after is lost

	stA := recoveryStream()
	a, err := New(tab, trainToy(t, 0), WithStreamAggregates(stA),
		WithDriftMonitor(drift), WithUserCache(256),
		// An hour-long group-commit timer and a huge byte threshold pin
		// durability to the explicit Sync below: the kill drops exactly
		// the post-cut suffix, nothing more, nothing less.
		WithEventLog(dir, eventlog.WithFsyncInterval(time.Hour), eventlog.WithFsyncBytes(1<<30)))
	if err != nil {
		t.Fatal(err)
	}
	runOps(t, a, ops[:cut])
	if err := a.elog.Sync(); err != nil {
		t.Fatal(err)
	}
	durable := a.elog.NextOffset()
	runOps(t, a, ops[cut:])
	a.elog.Kill() // hard stop: no flush, no close, unsynced tail gone

	// The restarted engine: same configuration, fresh in-memory state,
	// recovered from the log directory alone.
	stB := recoveryStream()
	b, err := New(tab, trainToy(t, 0), WithStreamAggregates(stB),
		WithDriftMonitor(drift), WithUserCache(256), WithEventLog(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.EventLogReplayed(); got != int64(durable) {
		t.Fatalf("replayed %d records, want the durable prefix %d", got, durable)
	}

	// The reference engine: no event log, no crash, fed exactly the
	// durable prefix of the schedule through the same public API.
	stC := recoveryStream()
	c, err := New(tab, trainToy(t, 0), WithStreamAggregates(stC),
		WithDriftMonitor(drift), WithUserCache(256))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runOps(t, c, ops[:cut])

	assertEngineEqual(t, b, c, stB, stC)
}

// TestSnapshotFastForwardRecovery exercises the snapshot path: tight
// snapshot cadence and tiny segments force several snapshot+compact
// rounds mid-workload, so recovery must load derived state from the
// snapshot and replay only the tail — and still match the uninterrupted
// reference bitwise.
func TestSnapshotFastForwardRecovery(t *testing.T) {
	dir := t.TempDir()
	tab := recoveryTable(t)
	drift := decision.DriftConfig{Bins: 16, BaselineSamples: 40, MinLiveSamples: 1}
	ops := recoverySchedule(400)

	stA := recoveryStream()
	a, err := New(tab, trainToy(t, 0), WithStreamAggregates(stA),
		WithDriftMonitor(drift), WithUserCache(256),
		WithEventLog(dir, eventlog.WithSegmentBytes(4096), eventlog.WithFsyncInterval(time.Hour)),
		WithSnapshotEvery(64))
	if err != nil {
		t.Fatal(err)
	}
	runOps(t, a, ops)
	st := a.EventLogStats()
	if st.SnapshotEnd == 0 {
		t.Fatal("no snapshot was written under a 64-event cadence")
	}
	if off, ok := a.elog.ConsumerOffset(engineConsumer); !ok || off != st.SnapshotEnd {
		t.Fatalf("engine consumer offset = (%d,%v), want snapshot end %d", off, ok, st.SnapshotEnd)
	}
	if err := a.elog.Sync(); err != nil {
		t.Fatal(err)
	}
	total := a.elog.NextOffset()
	a.elog.Kill()

	stB := recoveryStream()
	b, err := New(tab, trainToy(t, 0), WithStreamAggregates(stB),
		WithDriftMonitor(drift), WithUserCache(256), WithEventLog(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if got := b.EventLogReplayed(); got >= int64(total) {
		t.Fatalf("replayed %d of %d records; snapshot did not fast-forward", got, total)
	}

	stC := recoveryStream()
	c, err := New(tab, trainToy(t, 0), WithStreamAggregates(stC),
		WithDriftMonitor(drift), WithUserCache(256))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runOps(t, c, ops)

	assertEngineEqual(t, b, c, stB, stC)
}

// TestShadowAndResetReplay covers the two remaining event kinds: shadow
// comparisons rebuild the meter counters exactly, and a logged bundle
// swap (KindReset) resets the replayed drift monitor at the same point
// the live engine reset it.
func TestShadowAndResetReplay(t *testing.T) {
	dir := t.TempDir()
	tab := recoveryTable(t)
	drift := decision.DriftConfig{Bins: 16, BaselineSamples: 10, MinLiveSamples: 1}
	ops := recoverySchedule(120)

	stA := recoveryStream()
	a, err := New(tab, trainToy(t, 0), WithStreamAggregates(stA),
		WithDriftMonitor(drift), WithShadow(trainToy(t, 0)),
		WithEventLog(dir, eventlog.WithFsyncInterval(time.Hour), eventlog.WithFsyncBytes(1<<30)))
	if err != nil {
		t.Fatal(err)
	}
	runOps(t, a, ops[:60])

	// Wait for the shadow worker to drain so the comparison count is
	// deterministic before the swap and the sync.
	scoresBefore := int64(0)
	for i := range ops[:60] {
		if ops[i].score {
			scoresBefore++
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.ShadowStats().Scored < scoresBefore && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := a.ShadowStats().Scored; got != scoresBefore {
		t.Fatalf("shadow scored %d of %d before swap", got, scoresBefore)
	}

	// Swap the champion: logs KindReset, resets monitor and meter.
	if err := a.SetBundle(trainToy(t, 0)); err != nil {
		t.Fatal(err)
	}
	runOps(t, a, ops[60:])
	scoresAfter := int64(0)
	for i := range ops[60:] {
		if ops[60+i].score {
			scoresAfter++
		}
	}
	deadline = time.Now().Add(5 * time.Second)
	for a.ShadowStats().Scored < scoresAfter && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	wantShadow := a.ShadowStats()
	wantDrift := a.DriftStats()
	if err := a.elog.Sync(); err != nil {
		t.Fatal(err)
	}
	a.elog.Kill()

	stB := recoveryStream()
	b, err := New(tab, trainToy(t, 0), WithStreamAggregates(stB),
		WithDriftMonitor(drift), WithShadow(trainToy(t, 0)), WithEventLog(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if got := b.ShadowStats(); got != wantShadow {
		t.Fatalf("replayed shadow stats %+v, want %+v", got, wantShadow)
	}
	if got := b.DriftStats(); !reflect.DeepEqual(got, wantDrift) {
		t.Fatalf("replayed drift stats:\n got %+v\nwant %+v", got, wantDrift)
	}
}

// TestEventLogIngestDurable checks the plain contract under graceful
// shutdown: Close flushes, and a reopened engine carries every ingested
// transaction without any explicit Sync from the caller.
func TestEventLogIngestDurable(t *testing.T) {
	dir := t.TempDir()
	tab := recoveryTable(t)
	ops := recoverySchedule(50)

	stA := recoveryStream()
	a, err := New(tab, trainToy(t, 0), WithStreamAggregates(stA), WithEventLog(dir))
	if err != nil {
		t.Fatal(err)
	}
	runOps(t, a, ops)
	a.Close()

	stB := recoveryStream()
	b, err := New(tab, trainToy(t, 0), WithStreamAggregates(stB), WithEventLog(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if stB.Ingested() != stA.Ingested() {
		t.Fatalf("reopened window ingested %d, want %d", stB.Ingested(), stA.Ingested())
	}
}
