package ms

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"titant/internal/feature"
	"titant/internal/feature/stream"
	"titant/internal/rng"
	"titant/internal/txn"
)

// sameVerdict compares everything observable about two verdicts except
// latency (which is wall-clock). Scores must be bitwise equal: the cache
// stores decoded fragments, so a cached read feeds the model the exact
// float bits an uncached read would.
func sameVerdict(t *testing.T, ctxLabel string, a, b Verdict) {
	t.Helper()
	if a.TxnID != b.TxnID || a.Score != b.Score || a.Fraud != b.Fraud || a.Version != b.Version {
		t.Fatalf("%s: cached %+v != uncached %+v", ctxLabel, a, b)
	}
	if len(a.Members) != len(b.Members) {
		t.Fatalf("%s: member breakdown differs", ctxLabel)
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			t.Fatalf("%s: member %d differs: %+v vs %+v", ctxLabel, i, a.Members[i], b.Members[i])
		}
	}
}

// TestCachedScoreOracle is the acceptance oracle: a cached engine and an
// uncached engine over the same store must produce bitwise-identical
// verdicts through Score and ScoreBatch — including immediately after a
// PutUser republication (exact invalidation) and live ingest (negative
// invalidation), with repeated rounds so hits, misses, negative entries
// and re-loads all get exercised.
func TestCachedScoreOracle(t *testing.T) {
	tab := table(t)
	bundle := trainToy(t, 4)
	// Each engine ingests into its own window so the live city statistics
	// evolve identically on both sides.
	stA := stream.New(stream.WithCities(2))
	stB := stream.New(stream.WithCities(2))
	cached, err := New(tab, bundle, WithUserCache(1024),
		WithStreamAggregates(stA), WithStreamWarmup(5))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(tab, bundle, WithStreamAggregates(stB), WithStreamWarmup(5))
	if err != nil {
		t.Fatal(err)
	}
	up := &Uploader{Table: tab, Invalidate: cached.InvalidateUser}
	r := rng.New(13)
	emb := func(seed int) []float32 {
		e := make([]float32, 4)
		for j := range e {
			e[j] = float32(seed%7) - float32(j)
		}
		return e
	}
	for i := txn.UserID(0); i < 40; i++ {
		u := txn.User{ID: i, Age: uint8(20 + i%40), HomeCity: uint16(i % 2), AvgAmount: float32(10 * i)}
		if err := up.PutUser(&u, feature.UserStats{OutCount: float64(i)}, emb(int(i))); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	randTxn := func(id int) txn.Transaction {
		// Half the traffic names user 50+: absent from the store, so the
		// negative-cache path serves them.
		return txn.Transaction{
			ID:   txn.TxnID(id),
			From: txn.UserID(r.Intn(60)), To: txn.UserID(r.Intn(60)),
			Amount: float32(r.Float64() * 2000), TransCity: uint16(r.Intn(2)),
		}
	}
	compare := func(label string, txs []txn.Transaction) {
		t.Helper()
		for i := range txs {
			va, ea := cached.Score(ctx, &txs[i])
			vb, eb := plain.Score(ctx, &txs[i])
			if ea != nil || eb != nil {
				t.Fatalf("%s: score errors %v / %v", label, ea, eb)
			}
			sameVerdict(t, label, va, vb)
		}
		ba, ea := cached.ScoreBatch(ctx, txs)
		bb, eb := plain.ScoreBatch(ctx, txs)
		if ea != nil || eb != nil {
			t.Fatalf("%s: batch errors %v / %v", label, ea, eb)
		}
		for i := range ba {
			sameVerdict(t, label+"/batch", ba[i], bb[i])
		}
	}

	round := func(id int) []txn.Transaction {
		txs := make([]txn.Transaction, 30)
		for i := range txs {
			txs[i] = randTxn(id + i)
		}
		return txs
	}
	compare("cold", round(0))
	compare("warm", round(100)) // second round: cache hits dominate

	// Republication: change users the cache has already served. The
	// Uploader's Invalidate hook must make the very next score see it.
	for i := txn.UserID(0); i < 40; i += 3 {
		u := txn.User{ID: i, Age: uint8(60 + i%20), HomeCity: uint16((i + 1) % 2), AvgAmount: 999}
		if err := up.PutUser(&u, feature.UserStats{OutCount: 1000, InCount: 5}, emb(int(i)+1)); err != nil {
			t.Fatal(err)
		}
	}
	compare("after-putuser", round(200))

	// Live ingest: both engines absorb the same traffic; verdicts must
	// track the identical live city statistics, and negative entries for
	// the ingested endpoints are dropped on the cached side.
	for i := 0; i < 50; i++ {
		tx := randTxn(300 + i)
		tx.Fraud = i%9 == 0
		if err := cached.Ingest(&tx); err != nil {
			t.Fatal(err)
		}
		if err := plain.Ingest(&tx); err != nil {
			t.Fatal(err)
		}
	}
	compare("after-ingest", round(400))

	// An uploaded user that was previously a negative entry must appear.
	u := txn.User{ID: 55, Age: 33, HomeCity: 1, AvgAmount: 70}
	if err := up.PutUser(&u, feature.UserStats{OutCount: 3}, emb(55)); err != nil {
		t.Fatal(err)
	}
	compare("after-coldstart-upload", round(500))

	st := cached.UserCacheStats()
	if st.Hits == 0 || st.Misses == 0 || st.Invalidations == 0 {
		t.Fatalf("oracle exercised no cache machinery: %+v", st)
	}
}

// TestCacheStrictNegative pins the strict-users policy across the
// negative cache: the second miss is served from the cache and must
// still fail with ErrUserNotFound.
func TestCacheStrictNegative(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	u := txn.User{ID: 1}
	_ = up.PutUser(&u, feature.UserStats{}, nil)
	srv, err := New(tab, trainToy(t, 0), WithStrictUsers(), WithUserCache(64))
	if err != nil {
		t.Fatal(err)
	}
	tx := txn.Transaction{ID: 1, From: 1, To: 404, Amount: 10}
	for i := 0; i < 2; i++ {
		if _, err := srv.Score(context.Background(), &tx); !errors.Is(err, ErrUserNotFound) {
			t.Fatalf("round %d: err = %v, want ErrUserNotFound", i, err)
		}
		if _, err := srv.ScoreBatch(context.Background(), []txn.Transaction{tx}); !errors.Is(err, ErrUserNotFound) {
			t.Fatalf("round %d: batch err = %v, want ErrUserNotFound", i, err)
		}
	}
	if st := srv.UserCacheStats(); st.Negatives == 0 {
		t.Fatalf("strict misses never hit the negative cache: %+v", st)
	}
}

// TestCacheHotSwapPurges pins the bundle-swap invalidation rule: after
// SetBundle the cache restarts empty.
func TestCacheHotSwapPurges(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i}
		_ = up.PutUser(&u, feature.UserStats{}, nil)
	}
	srv, err := New(tab, trainToy(t, 0), WithUserCache(64))
	if err != nil {
		t.Fatal(err)
	}
	tx := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 10}
	if _, err := srv.Score(context.Background(), &tx); err != nil {
		t.Fatal(err)
	}
	if st := srv.UserCacheStats(); st.Size == 0 {
		t.Fatalf("nothing cached: %+v", st)
	}
	if err := srv.SetBundle(trainToy(t, 0)); err != nil {
		t.Fatal(err)
	}
	if st := srv.UserCacheStats(); st.Size != 0 {
		t.Fatalf("cache survived hot swap: %+v", st)
	}
}

// TestStatsEndpointUserCache pins the /v1/stats surface: the user_cache
// object appears exactly when the engine has a cache, with live counters.
func TestStatsEndpointUserCache(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i}
		_ = up.PutUser(&u, feature.UserStats{}, nil)
	}
	srv, err := New(tab, trainToy(t, 0), WithUserCache(64))
	if err != nil {
		t.Fatal(err)
	}
	tx := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 10}
	if _, err := srv.Score(context.Background(), &tx); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Score(context.Background(), &tx); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	var body struct {
		UserCache *struct {
			Hits     int64 `json:"hits"`
			Misses   int64 `json:"misses"`
			Size     int   `json:"size"`
			Capacity int   `json:"capacity"`
		} `json:"user_cache"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.UserCache == nil {
		t.Fatalf("no user_cache in %s", rec.Body)
	}
	if body.UserCache.Hits == 0 || body.UserCache.Misses == 0 || body.UserCache.Size != 2 || body.UserCache.Capacity < 64 {
		t.Fatalf("user_cache = %+v", body.UserCache)
	}

	// Without a cache the key is absent.
	plain, err := New(tab, trainToy(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	rec = httptest.NewRecorder()
	plain.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats", nil))
	if strings.Contains(rec.Body.String(), "user_cache") {
		t.Fatalf("cacheless engine reports user_cache: %s", rec.Body)
	}
}
