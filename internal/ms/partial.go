package ms

import (
	"fmt"

	"titant/internal/txn"
)

// Typed partial-failure surface of the wire tier. When the router cannot
// reach a shard (circuit open, retries exhausted, deadline spent) it
// degrades the affected items instead of failing the whole batch: each
// unservable item carries an ItemError naming the failure and the shard,
// and decide items additionally carry a policy-driven fallback action so
// a risk verdict still *arrives* — fail-closed, never silently wrong.
// The shapes live here, next to the healthy-path wire types, so shard
// servers, the router and clients agree on one contract.

// Partial-failure error codes carried by ItemError.Code.
const (
	// CodeShardUnavailable marks items owned by a shard the router could
	// not get an answer from: circuit open, connection failed, retries
	// exhausted, or only 5xx responses.
	CodeShardUnavailable = "shard_unavailable"
	// CodeDeadlineExceeded marks items abandoned because the caller's
	// deadline budget (X-Deadline-Ms) ran out before the shard answered.
	CodeDeadlineExceeded = "deadline_exceeded"
)

// ItemError is the typed per-item error inside a partially-degraded
// batch response.
type ItemError struct {
	Code    string `json:"code"`
	Shard   int    `json:"shard"`
	Message string `json:"message,omitempty"`
}

// DegradedVerdict is the wire shape of one unservable score item: the
// transaction id it answers for, the degraded marker, and the typed
// error. It carries no score and no fraud flag — a missing verdict is
// reported, never guessed.
type DegradedVerdict struct {
	TxnID    txn.TxnID  `json:"txn_id"`
	Degraded bool       `json:"degraded"`
	Error    *ItemError `json:"error"`
	// TraceID carries the request's trace ID into the degraded envelope,
	// so a degraded item can be correlated with the trace dump and the
	// router's logs even when the caller dropped the response header.
	TraceID string `json:"trace_id,omitempty"`
}

// DegradedDecision is the wire shape of one unservable decide item. The
// action is the fallback policy's — by default "review", the fail-closed
// stance: when the system cannot score a transaction it routes it to
// manual review rather than approving blind or dropping the verdict.
type DegradedDecision struct {
	DegradedVerdict
	Action string `json:"action"`
	Reason string `json:"reason"`
}

// FallbackActionReview is the fail-closed fallback: unservable
// transactions go to manual review. It extends the decision plane's
// approve/challenge/deny vocabulary with an action only the degradation
// path may emit — a policy document cannot map a *score* to "review",
// so a review action in a response always means "this item was not
// scored".
const FallbackActionReview = "review"

// ParseFallbackAction validates a configured fallback action for
// degraded decide items: "review" (default, fail-closed), or one of the
// decision plane's actions for operators who prefer e.g. fail-closed
// "deny" or (discouraged) fail-open "approve".
func ParseFallbackAction(s string) (string, error) {
	switch s {
	case "", FallbackActionReview:
		return FallbackActionReview, nil
	case "approve", "challenge", "deny":
		return s, nil
	}
	return "", fmt.Errorf("ms: unknown fallback action %q (want review, approve, challenge or deny)", s)
}
