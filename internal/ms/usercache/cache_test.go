package usercache

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func ident(k uint64) uint64 { return k }

func newT(capacity, shards int) *Cache[uint64, string] {
	return New[uint64, string](capacity, shards, ident)
}

func TestReadThrough(t *testing.T) {
	c := newT(128, 4)
	loads := 0
	load := func() (string, bool, error) { loads++; return "v1", true, nil }
	v, ok, err := c.GetOrLoad(7, load)
	if v != "v1" || !ok || err != nil || loads != 1 {
		t.Fatalf("first load: %q %v %v loads=%d", v, ok, err, loads)
	}
	v, ok, err = c.GetOrLoad(7, load)
	if v != "v1" || !ok || err != nil || loads != 1 {
		t.Fatalf("hit reloaded: %q %v %v loads=%d", v, ok, err, loads)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Size != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNegativeCaching(t *testing.T) {
	c := newT(128, 4)
	loads := 0
	load := func() (string, bool, error) { loads++; return "", false, nil }
	for i := 0; i < 5; i++ {
		if _, ok, err := c.GetOrLoad(9, load); ok || err != nil {
			t.Fatal("negative entry went positive")
		}
	}
	if loads != 1 {
		t.Fatalf("absent key loaded %d times", loads)
	}
	if st := c.Stats(); st.Negatives != 4 {
		t.Fatalf("stats = %+v", st)
	}
	// InvalidateNegative drops it; a positive entry survives the same call.
	c.InvalidateNegative(9)
	if _, _, present := c.Peek(9); present {
		t.Fatal("negative entry survived InvalidateNegative")
	}
	_, _, _ = c.GetOrLoad(10, func() (string, bool, error) { return "pos", true, nil })
	c.InvalidateNegative(10)
	if v, ok, present := c.Peek(10); !present || !ok || v != "pos" {
		t.Fatal("positive entry dropped by InvalidateNegative")
	}
}

func TestLoadErrorNotCached(t *testing.T) {
	c := newT(128, 4)
	boom := errors.New("boom")
	if _, _, err := c.GetOrLoad(1, func() (string, bool, error) { return "", false, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	loads := 0
	if v, _, err := c.GetOrLoad(1, func() (string, bool, error) { loads++; return "ok", true, nil }); v != "ok" || err != nil || loads != 1 {
		t.Fatal("error was cached")
	}
}

func TestSingleflightCollapse(t *testing.T) {
	c := newT(128, 4)
	var loads atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	results := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.GetOrLoad(5, func() (string, bool, error) {
				loads.Add(1)
				<-gate
				return "shared", true, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	// Let every goroutine reach the flight, then release the one loader.
	for c.Stats().Collapsed+c.Stats().Misses < callers {
	}
	close(gate)
	wg.Wait()
	if n := loads.Load(); n != 1 {
		t.Fatalf("%d loads for one concurrent wave", n)
	}
	for i, v := range results {
		if v != "shared" {
			t.Fatalf("caller %d got %q", i, v)
		}
	}
	if st := c.Stats(); st.Collapsed != callers-1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestInvalidationBeatsInflightLoad pins the generation guard: a load
// that started before an invalidation must not install its (potentially
// stale) result afterwards.
func TestInvalidationBeatsInflightLoad(t *testing.T) {
	c := newT(128, 4)
	inLoad := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, _ = c.GetOrLoad(3, func() (string, bool, error) {
			close(inLoad)
			<-release
			return "stale", true, nil
		})
	}()
	<-inLoad
	c.Invalidate(3) // the "upload" lands while the load is mid-read
	close(release)
	<-done
	if _, _, present := c.Peek(3); present {
		t.Fatal("stale in-flight load was cached past an invalidation")
	}
}

func TestEvictionBound(t *testing.T) {
	c := newT(64, 1)
	for i := uint64(0); i < 1000; i++ {
		k := i
		_, _, _ = c.GetOrLoad(k, func() (string, bool, error) { return fmt.Sprint(k), true, nil })
	}
	st := c.Stats()
	if st.Size > 64 {
		t.Fatalf("size %d exceeds capacity", st.Size)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions recorded")
	}
	// Values that survive must be correct.
	n := 0
	for i := uint64(0); i < 1000; i++ {
		if v, ok, present := c.Peek(i); present {
			if !ok || v != fmt.Sprint(i) {
				t.Fatalf("entry %d corrupt: %q %v", i, v, ok)
			}
			n++
		}
	}
	if n == 0 || n > 64 {
		t.Fatalf("%d live entries", n)
	}
}

func TestPurge(t *testing.T) {
	c := newT(128, 4)
	for i := uint64(0); i < 50; i++ {
		k := i
		_, _, _ = c.GetOrLoad(k, func() (string, bool, error) { return "x", true, nil })
	}
	c.Purge()
	if st := c.Stats(); st.Size != 0 {
		t.Fatalf("size %d after purge", st.Size)
	}
	if _, _, present := c.Peek(7); present {
		t.Fatal("entry survived purge")
	}
}

func TestPeekGenAddBatchPath(t *testing.T) {
	c := newT(128, 4)
	// The quiet path: peek a miss, load, Add with the captured gen.
	_, _, present, gen := c.PeekGen(11)
	if present {
		t.Fatal("phantom entry")
	}
	c.Add(11, gen, "fresh", true)
	if v, ok, present := c.Peek(11); !present || !ok || v != "fresh" {
		t.Fatal("Add with current gen did not insert")
	}
	// An invalidation between PeekGen and Add must drop the insert.
	_, _, _, gen = c.PeekGen(12)
	c.Invalidate(12)
	c.Add(12, gen, "stale", true)
	if _, _, present := c.Peek(12); present {
		t.Fatal("Add with stale gen inserted")
	}
	// PeekGen on a hit refreshes the CLOCK bit and reports the value.
	if v, ok, present, _ := c.PeekGen(11); !present || !ok || v != "fresh" {
		t.Fatal("PeekGen hit path broken")
	}
}

// TestConcurrentMixed hammers every operation from many goroutines; its
// value is under -race (the CI race job covers internal/ms/...).
func TestConcurrentMixed(t *testing.T) {
	c := newT(256, 8)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				k := uint64((g*31 + i) % 500)
				switch i % 5 {
				case 0, 1, 2:
					v, ok, err := c.GetOrLoad(k, func() (string, bool, error) {
						return fmt.Sprint(k), k%7 != 0, nil
					})
					if err != nil {
						t.Error(err)
						return
					}
					if ok && v != fmt.Sprint(k) {
						t.Errorf("key %d got %q", k, v)
						return
					}
				case 3:
					c.Invalidate(k)
				default:
					if v, ok, present := c.Peek(k); present && ok && v != fmt.Sprint(k) {
						t.Errorf("peek %d got %q", k, v)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	_ = c.Len()
	_ = c.Stats()
}
