// Package usercache implements the sharded read-through cache the Model
// Server layers over the feature store: lock-striped CLOCK eviction,
// singleflight collapse of concurrent misses, negative caching for
// cold-start keys, and generation-guarded invalidation so an in-flight
// load can never re-insert fragments an upload has already superseded.
//
// The cache is generic over key and value so it carries the serving
// layer's decoded user fragments (not raw bytes): a hit returns a value
// that is ready to score, with zero decoding and zero allocation.
package usercache

import "sync"

// Stats is a point-in-time snapshot of the cache's counters.
type Stats struct {
	Hits          int64 // entry present (positive or negative)
	Misses        int64 // entry absent; a load was (or will be) taken
	Collapsed     int64 // misses that waited on another caller's in-flight load
	Evictions     int64 // entries displaced by CLOCK to admit a new key
	Invalidations int64 // explicit Invalidate/Purge removals
	Negatives     int64 // hits served from a negative (known-absent) entry
	Size          int   // live entries right now
	Capacity      int   // configured entry capacity
}

// Cache is a sharded read-through cache. The zero value is not usable;
// build one with New. All methods are safe for concurrent use.
type Cache[K comparable, V any] struct {
	shards []shard[K, V]
	mask   uint64
	hash   func(K) uint64
	cap    int
}

type entry[K comparable, V any] struct {
	key  K
	val  V
	ok   bool // false: negative entry — the key is known absent
	ref  bool // CLOCK second-chance bit
	live bool
}

// flight is one in-flight load; later callers for the same key wait on
// wg instead of issuing their own load.
type flight[V any] struct {
	wg  sync.WaitGroup
	val V
	ok  bool
	err error
}

type shard[K comparable, V any] struct {
	mu    sync.Mutex
	idx   map[K]int // key -> slot
	slots []entry[K, V]
	size  int
	hand  int
	gen   uint64 // bumped by every invalidation; guards in-flight loads
	fl    map[K]*flight[V]

	hits, misses, collapsed, evictions, invalidations, negatives int64
}

// New builds a cache holding up to capacity entries across a power-of-two
// number of lock-striped shards (shards <= 0 picks a default scaled to
// the capacity). hash maps a key onto shards; it should mix well.
func New[K comparable, V any](capacity, shards int, hash func(K) uint64) *Cache[K, V] {
	if capacity < 1 {
		capacity = 1
	}
	if shards <= 0 {
		shards = 64
		for shards > 1 && capacity/shards < 64 {
			shards >>= 1
		}
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	per := (capacity + n - 1) / n
	if per < 1 {
		per = 1
	}
	c := &Cache[K, V]{shards: make([]shard[K, V], n), mask: uint64(n - 1), hash: hash, cap: per * n}
	for i := range c.shards {
		c.shards[i].idx = make(map[K]int, per)
		c.shards[i].slots = make([]entry[K, V], per)
		c.shards[i].fl = make(map[K]*flight[V])
	}
	return c
}

func (c *Cache[K, V]) shardOf(k K) *shard[K, V] {
	return &c.shards[c.hash(k)&c.mask]
}

// GetOrLoad returns the cached value for k, loading it at most once per
// concurrent wave of callers: the first miss runs load, later callers
// block on the same flight and share its result (the singleflight
// collapse). load's ok result is cached too — false produces a negative
// entry, so repeated reads of an absent key stop costing loads. A load
// error is returned to every collapsed caller and nothing is cached.
func (c *Cache[K, V]) GetOrLoad(k K, load func() (V, bool, error)) (V, bool, error) {
	s := c.shardOf(k)
	s.mu.Lock()
	if i, present := s.idx[k]; present {
		e := &s.slots[i]
		e.ref = true
		s.hits++
		if !e.ok {
			s.negatives++
		}
		v, ok := e.val, e.ok
		s.mu.Unlock()
		return v, ok, nil
	}
	if f, inflight := s.fl[k]; inflight {
		s.collapsed++
		s.mu.Unlock()
		f.wg.Wait()
		return f.val, f.ok, f.err
	}
	s.misses++
	f := &flight[V]{}
	f.wg.Add(1)
	s.fl[k] = f
	gen := s.gen
	s.mu.Unlock()

	v, ok, err := load()

	s.mu.Lock()
	delete(s.fl, k)
	// Only insert if no invalidation hit this shard while the load was in
	// flight: the load may have read the store before the write that
	// triggered the invalidation landed.
	if err == nil && s.gen == gen {
		s.insert(k, v, ok)
	}
	s.mu.Unlock()
	f.val, f.ok, f.err = v, ok, err
	f.wg.Done()
	return v, ok, err
}

// Peek returns the cached value without loading: present reports whether
// an entry (positive or negative) exists, ok whether it is positive.
// Misses are counted; batch loaders that intend to fill the misses use
// PeekGen instead, which also captures the guard generation.
func (c *Cache[K, V]) Peek(k K) (v V, ok, present bool) {
	v, ok, present, _ = c.PeekGen(k)
	return v, ok, present
}

// PeekGen is Peek plus the shard generation observed in the same lock
// round. It is the batch-load protocol's first step: peek every key,
// read the backing store for the misses, then Add each loaded value with
// the generation captured here — one locked operation per key instead of
// separate Peek and Gen rounds.
func (c *Cache[K, V]) PeekGen(k K) (v V, ok, present bool, gen uint64) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, p := s.idx[k]; p {
		e := &s.slots[i]
		e.ref = true
		s.hits++
		if !e.ok {
			s.negatives++
		}
		return e.val, e.ok, true, s.gen
	}
	s.misses++
	return v, false, false, s.gen
}

// Add inserts a loaded value (ok=false for a negative entry) if the
// shard's generation still equals gen — the generation PeekGen returned
// before the caller read the backing store, so an invalidation that
// landed in between drops the insert instead of caching stale data.
// Used by batch loaders that bypass GetOrLoad's per-key singleflight.
func (c *Cache[K, V]) Add(k K, gen uint64, v V, ok bool) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.gen != gen {
		return
	}
	s.insert(k, v, ok)
}

// insert stores (k, v, ok), evicting by CLOCK when the shard is full.
// Caller holds the shard lock.
func (s *shard[K, V]) insert(k K, v V, ok bool) {
	if i, present := s.idx[k]; present {
		e := &s.slots[i]
		e.val, e.ok, e.ref = v, ok, true
		return
	}
	var slot int
	if s.size < len(s.slots) {
		for s.slots[s.hand].live {
			s.hand = (s.hand + 1) % len(s.slots)
		}
		slot = s.hand
		s.size++
	} else {
		for {
			e := &s.slots[s.hand]
			if e.ref {
				e.ref = false
				s.hand = (s.hand + 1) % len(s.slots)
				continue
			}
			slot = s.hand
			delete(s.idx, e.key)
			s.evictions++
			break
		}
	}
	s.hand = (s.hand + 1) % len(s.slots)
	s.slots[slot] = entry[K, V]{key: k, val: v, ok: ok, ref: true, live: true}
	s.idx[k] = slot
}

// Invalidate removes k's entry (if any) and bumps the shard generation so
// any load in flight for this shard caches nothing.
func (c *Cache[K, V]) Invalidate(k K) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.gen++
	s.invalidations++
	if i, present := s.idx[k]; present {
		var zero entry[K, V]
		s.slots[i] = zero
		delete(s.idx, k)
		s.size--
	}
}

// InvalidateNegative removes k's entry only if it is a negative
// (known-absent) one. Positive entries stay: callers use this for events
// that cannot stale stored data but do signal a cold-start key may be
// about to appear — e.g. live traffic naming a user the store has never
// seen — so the absence marker stops pinning the key as unknown.
func (c *Cache[K, V]) InvalidateNegative(k K) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if i, present := s.idx[k]; present && !s.slots[i].ok {
		s.gen++
		s.invalidations++
		var zero entry[K, V]
		s.slots[i] = zero
		delete(s.idx, k)
		s.size--
	}
}

// NegativeKeys collects the keys of every live negative (known-absent)
// entry. The negative set is the one cache fragment worth persisting
// across a restart: positive entries reload from the store on demand, but
// each lost negative entry costs a cold-start store miss to relearn. Used
// by the event log's snapshot writer.
func (c *Cache[K, V]) NegativeKeys() []K {
	var keys []K
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for j := range s.slots {
			e := &s.slots[j]
			if e.live && !e.ok {
				keys = append(keys, e.key)
			}
		}
		s.mu.Unlock()
	}
	return keys
}

// InsertNegative seeds a negative entry for k under the shard's current
// generation — the snapshot-restore counterpart of NegativeKeys, called
// before the cache is shared, so there is no racing load to guard
// against.
func (c *Cache[K, V]) InsertNegative(k K) {
	s := c.shardOf(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	var zero V
	s.insert(k, zero, false)
}

// Purge drops every entry and bumps every shard generation; use on events
// that may supersede arbitrarily many keys at once (model hot-swap after
// an upload wave).
func (c *Cache[K, V]) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.gen++
		s.invalidations++
		clear(s.idx)
		clear(s.slots)
		s.size = 0
		s.hand = 0
		s.mu.Unlock()
	}
}

// Len returns the live entry count.
func (c *Cache[K, V]) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.size
		s.mu.Unlock()
	}
	return n
}

// Stats aggregates every shard's counters.
func (c *Cache[K, V]) Stats() Stats {
	var st Stats
	st.Capacity = c.cap
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Collapsed += s.collapsed
		st.Evictions += s.evictions
		st.Invalidations += s.invalidations
		st.Negatives += s.negatives
		st.Size += s.size
		s.mu.Unlock()
	}
	return st
}
