package ms

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"titant/internal/feature"
	"titant/internal/feature/stream"
	"titant/internal/model/lr"
	"titant/internal/rng"
	"titant/internal/txn"
)

// TestIngestDisabled: an engine built without WithStreamAggregates has no
// live window, so ingest fails with the typed sentinel at both the
// library and HTTP layers.
func TestIngestDisabled(t *testing.T) {
	srv, ts := v1Server(t)
	tx := txn.Transaction{ID: 1, From: 1, To: 2, Amount: 5}
	if err := srv.Ingest(&tx); !errors.Is(err, ErrStreamDisabled) {
		t.Fatalf("Ingest err = %v, want ErrStreamDisabled", err)
	}
	if err := srv.IngestBatch([]txn.Transaction{tx}); !errors.Is(err, ErrStreamDisabled) {
		t.Fatalf("IngestBatch err = %v, want ErrStreamDisabled", err)
	}
	if srv.StreamEnabled() || srv.Ingested() != 0 {
		t.Fatal("stream reported enabled on a T+1 engine")
	}
	for _, path := range []string{"/v1/ingest", "/v1/ingest/batch"} {
		body, _ := json.Marshal(IngestRequest{TxnRequest: TxnRequest{ID: 1, From: 1, To: 2}})
		if path == "/v1/ingest/batch" {
			body, _ = json.Marshal(IngestBatchRequest{Transactions: []IngestRequest{{}}})
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("POST %s = %d, want 409", path, resp.StatusCode)
		}
		if e := decodeEnvelope(t, resp); e.Code != "stream_disabled" {
			t.Fatalf("envelope = %+v", e)
		}
	}
}

// TestIngestEndpoints drives the wire ingest path: singles carry the
// delayed fraud label, batches respect the engine's batch limit, and the
// stats endpoint reports the window's accepted count.
func TestIngestEndpoints(t *testing.T) {
	tab := table(t)
	st := stream.New(stream.WithCities(4), stream.WithWindow(8, 86400))
	srv, err := New(tab, trainToy(t, 0), WithStreamAggregates(st), WithMaxBatch(3))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	web := hs.URL

	// Single ingest with a fraud label.
	body, _ := json.Marshal(IngestRequest{
		TxnRequest: TxnRequest{ID: 1, Day: 1, From: 1, To: 2, Amount: 100, TransCity: 2},
		Fraud:      true,
	})
	resp, err := http.Post(web+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ir IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Ingested != 1 {
		t.Fatalf("single ingest: status=%d resp=%+v", resp.StatusCode, ir)
	}

	// Batch ingest.
	batch := IngestBatchRequest{Transactions: []IngestRequest{
		{TxnRequest: TxnRequest{ID: 2, Day: 1, From: 2, To: 3, Amount: 10, TransCity: 1}},
		{TxnRequest: TxnRequest{ID: 3, Day: 1, From: 3, To: 1, Amount: 20, TransCity: 1}},
	}}
	body, _ = json.Marshal(batch)
	resp, err = http.Post(web+"/v1/ingest/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ir.Ingested != 2 {
		t.Fatalf("batch ingest: status=%d resp=%+v", resp.StatusCode, ir)
	}
	if srv.Ingested() != 3 {
		t.Fatalf("ingested = %d, want 3", srv.Ingested())
	}

	// The window absorbed the label: city 2 has 1 fraud in 1 txn.
	f, _, n := st.LookupCity(2)
	if n != 1 || f != (1+feature.CitySmoothing*feature.CityFraudPrior)/(1+feature.CitySmoothing) {
		t.Fatalf("city 2 after labelled ingest: fraud=%v n=%v", f, n)
	}

	// Over-limit batches are rejected with the typed envelope.
	big := IngestBatchRequest{Transactions: make([]IngestRequest, 4)}
	body, _ = json.Marshal(big)
	resp, err = http.Post(web+"/v1/ingest/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize batch = %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != "batch_too_large" {
		t.Fatalf("envelope = %+v", e)
	}

	// GET is not allowed.
	resp, err = http.Get(web + "/v1/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/ingest = %d", resp.StatusCode)
	}

	// /v1/stats reports the window's count on streaming engines.
	resp, err = http.Get(web + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["ingested"].(float64) != 3 {
		t.Fatalf("stats = %v", stats)
	}
}

// TestIngestTokenGuard: with WithIngestToken set, wire ingest requires
// the bearer token — otherwise any client reaching the scoring port
// could poison the live city statistics.
func TestIngestTokenGuard(t *testing.T) {
	tab := table(t)
	st := stream.New(stream.WithCities(2))
	srv, err := New(tab, trainToy(t, 0), WithStreamAggregates(st), WithIngestToken("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	body, _ := json.Marshal(IngestRequest{TxnRequest: TxnRequest{ID: 1, From: 1, To: 2, Amount: 5}})

	resp, err := http.Post(hs.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != "unauthorized" {
		t.Fatalf("envelope = %+v", e)
	}
	if st.Ingested() != 0 {
		t.Fatal("unauthorized ingest reached the window")
	}

	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/ingest", bytes.NewReader(body))
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || st.Ingested() != 1 {
		t.Fatalf("authorized ingest: %d, ingested=%d", resp.StatusCode, st.Ingested())
	}
	// The batch route enforces the same guard.
	bb, _ := json.Marshal(IngestBatchRequest{Transactions: []IngestRequest{{}}})
	resp, err = http.Post(hs.URL+"/v1/ingest/batch", "application/json", bytes.NewReader(bb))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("batch no token: %d", resp.StatusCode)
	}
}

// TestColdStreamMatchesFrozen: with an empty live window, the fallback
// city view makes a streaming engine score bitwise-identically to the
// pure T+1 engine — a fresh daemon is not degraded by its cold start.
func TestColdStreamMatchesFrozen(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i, Age: 30, HomeCity: 1}
		if err := up.PutUser(&u, feature.UserStats{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	frozen, err := New(tab, trainToy(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	streaming, err := New(tab, trainToy(t, 0), WithStreamAggregates(stream.New(stream.WithCities(2))))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 20; i++ {
		tx := txn.Transaction{ID: txn.TxnID(i), From: 1, To: 2,
			Amount: float32(100 * i), TransCity: uint16(i % 2)}
		want, err := frozen.Score(ctx, &tx)
		if err != nil {
			t.Fatal(err)
		}
		got, err := streaming.Score(ctx, &tx)
		if err != nil {
			t.Fatal(err)
		}
		if got.Score != want.Score {
			t.Fatalf("txn %d: cold streaming score %v != frozen %v", i, got.Score, want.Score)
		}
	}
}

// TestStreamWarmupGate: below the warm-up threshold the engine keeps
// scoring from the frozen table even though the window holds a little
// traffic — a single in-window transaction must not flip a city's
// traffic share to 1.0.
func TestStreamWarmupGate(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i, Age: 30, HomeCity: 1}
		if err := up.PutUser(&u, feature.UserStats{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	frozen, err := New(tab, trainToy(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	st := stream.New(stream.WithCities(2))
	streaming, err := New(tab, trainToy(t, 0), WithStreamAggregates(st), WithStreamWarmup(100))
	if err != nil {
		t.Fatal(err)
	}
	// A thin trickle: far below the warm-up threshold.
	for i := 0; i < 5; i++ {
		tx := txn.Transaction{ID: txn.TxnID(i), Day: 1, Sec: int32(i), From: 1, To: 2, Amount: 10, TransCity: 1}
		if err := streaming.Ingest(&tx); err != nil {
			t.Fatal(err)
		}
	}
	ctx := context.Background()
	tx := txn.Transaction{ID: 99, From: 1, To: 2, Amount: 700, TransCity: 1}
	want, err := frozen.Score(ctx, &tx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := streaming.Score(ctx, &tx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Score != want.Score {
		t.Fatalf("thin window escaped the warm-up gate: %v != %v", got.Score, want.Score)
	}
}

// trainCityToy returns a bundle whose classifier keys on the
// city_fraud_rate feature (column 13 of the basic layout), so scores move
// when the live window's city statistics move.
func trainCityToy(t testing.TB) *Bundle {
	t.Helper()
	r := rng.New(5)
	n := 2000
	m := feature.NewMatrix(n, feature.NumBasic)
	labels := make([]bool, n)
	for i := 0; i < n; i++ {
		rate := r.Float64()
		m.Set(i, 13, rate) // city_fraud_rate
		labels[i] = rate > 0.3 && r.Bool(0.95)
	}
	clf := lr.Train(m, labels, lr.Config{Bins: 32, L1: 0.01, L2: 0.5, Alpha: 0.1, Beta: 1, Iterations: 10, Seed: 1})
	city := feature.CityTable{Fraud: []float64{0.01, 0.01}, Share: []float64{0.5, 0.5}}
	b, err := NewBundle("city-toy", clf, 0.5, city, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestLiveCityStatsReachScoring is the end-to-end point of the streaming
// store: ingesting labelled fraud into a city raises that city's live
// fraud rate, and the very next Score of a transaction in that city sees
// it — no bundle rebuild, no re-deploy.
func TestLiveCityStatsReachScoring(t *testing.T) {
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 2; i++ {
		u := txn.User{ID: i}
		if err := up.PutUser(&u, feature.UserStats{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	st := stream.New(stream.WithCities(2), stream.WithWindow(8, 86400))
	srv, err := New(tab, trainCityToy(t), WithStreamAggregates(st), WithStreamWarmup(10))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	tx := txn.Transaction{ID: 1, Day: 1, From: 1, To: 2, Amount: 100, TransCity: 0}

	before, err := srv.Score(ctx, &tx)
	if err != nil {
		t.Fatal(err)
	}
	if before.Fraud {
		t.Fatalf("city 0 at the frozen 0.01 rate already alerts: %+v", before)
	}

	// A burst of confirmed fraud in city 0 arrives through Ingest.
	for i := 0; i < 50; i++ {
		ft := txn.Transaction{ID: txn.TxnID(100 + i), Day: 1, Sec: int32(i),
			From: 1, To: 2, Amount: 100, TransCity: 0, Fraud: true}
		if err := srv.Ingest(&ft); err != nil {
			t.Fatal(err)
		}
	}
	after, err := srv.Score(ctx, &tx)
	if err != nil {
		t.Fatal(err)
	}
	if after.Score <= before.Score {
		t.Fatalf("score did not rise with the live fraud rate: before=%v after=%v",
			before.Score, after.Score)
	}
	if !after.Fraud {
		t.Fatalf("burst of labelled fraud in the city did not trip the alert: %+v", after)
	}
}
