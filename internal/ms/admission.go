package ms

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Admission control: the engine's overload armor. Two independent gates
// guard every request path (score, decide, ingest — single and batch):
//
//   - Per-caller token-bucket quotas (WithCallerQuota): each caller may
//     sustain `rate` transactions per second with bursts up to `burst`;
//     beyond that the request is refused with ErrRateLimited. One noisy
//     caller cannot starve the rest.
//
//   - Queue-depth load-shedding (WithMaxInflight): a hard bound on the
//     transactions concurrently inside the engine. At the bound new work
//     is refused with ErrOverloaded instead of queueing, so overload
//     degrades to fast typed 429s rather than collapsing the hot path
//     under unbounded goroutines and memory.
//
// Both errors map to HTTP 429 (codes "rate_limited" / "overloaded") with
// a Retry-After header. The contract is shed-before-accept: a request is
// either refused up front or fully served — admission never aborts work
// it has admitted.

// maxQuotaCallers bounds the per-caller bucket registry. Callers beyond
// the bound share one overflow bucket: an attacker inventing caller names
// cannot grow engine memory, and well-known callers keep exact quotas.
const maxQuotaCallers = 4096

// callerKey carries the caller identity in a request context.
type callerKey struct{}

// WithCallerContext tags ctx with the caller identity admission quotas
// are keyed by. The HTTP layer derives it from the X-Caller header;
// library callers tag their own contexts. An untagged context is the
// caller "default".
func WithCallerContext(ctx context.Context, caller string) context.Context {
	return context.WithValue(ctx, callerKey{}, caller)
}

// CallerFromContext returns the caller identity tagged by
// WithCallerContext ("default" when untagged).
func CallerFromContext(ctx context.Context) string {
	if c, ok := ctx.Value(callerKey{}).(string); ok && c != "" {
		return c
	}
	return "default"
}

// tokenBucket is one caller's quota: tokens refill continuously at rate
// per second up to burst; each admitted transaction consumes one.
// Correctness invariant (asserted under -race in admission_test.go): over
// any interval T the bucket admits at most burst + rate*T transactions.
type tokenBucket struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
	rate   float64
	burst  float64
}

func newTokenBucket(rate, burst float64, now time.Time) *tokenBucket {
	return &tokenBucket{tokens: burst, last: now, rate: rate, burst: burst}
}

// take consumes n tokens if available, refilling by elapsed time first.
func (b *tokenBucket) take(n float64, now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// admission is the engine's admission gate. Zero-config fields disable
// the corresponding check, so an engine built with only WithMaxInflight
// pays nothing for quotas and vice versa.
type admission struct {
	rate        float64 // per-caller sustained transactions/sec (0: no quota)
	burst       float64 // per-caller burst allowance
	maxInflight int64   // concurrent transactions bound (0: no shed)

	inflight atomic.Int64

	mu       sync.Mutex
	buckets  map[string]*tokenBucket
	overflow *tokenBucket

	admitted     atomic.Int64 // transactions admitted
	shedQuota    atomic.Int64 // transactions refused by a caller quota
	shedInflight atomic.Int64 // transactions refused by the inflight bound

	// Per-caller counters back the /metrics caller label. Registered
	// under the same maxQuotaCallers bound as quota buckets — callers
	// beyond it share the "_overflow" row — so unbounded caller names
	// cannot grow the exposition.
	callers        map[string]*callerStat
	callerOverflow *callerStat
}

// callerStat is one caller's admission outcome counters.
type callerStat struct {
	admitted     atomic.Int64
	shedQuota    atomic.Int64
	shedInflight atomic.Int64
}

// callerStat resolves caller's counter row, creating it on first use.
func (a *admission) callerStat(caller string) *callerStat {
	a.mu.Lock()
	defer a.mu.Unlock()
	if cs, ok := a.callers[caller]; ok {
		return cs
	}
	if len(a.callers) >= maxQuotaCallers {
		if a.callerOverflow == nil {
			a.callerOverflow = &callerStat{}
		}
		return a.callerOverflow
	}
	if a.callers == nil {
		a.callers = make(map[string]*callerStat)
	}
	cs := &callerStat{}
	a.callers[caller] = cs
	return cs
}

// callerAdmission is one caller's row in the metrics exposition.
type callerAdmission struct {
	name                              string
	admitted, shedQuota, shedInflight int64
}

// callerSnapshot lists every caller's counters (sorted by name, with the
// shared overflow row last as "_overflow").
func (a *admission) callerSnapshot() []callerAdmission {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	out := make([]callerAdmission, 0, len(a.callers)+1)
	for name, cs := range a.callers {
		out = append(out, callerAdmission{
			name:         name,
			admitted:     cs.admitted.Load(),
			shedQuota:    cs.shedQuota.Load(),
			shedInflight: cs.shedInflight.Load(),
		})
	}
	overflow := a.callerOverflow
	a.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	if overflow != nil {
		out = append(out, callerAdmission{
			name:         "_overflow",
			admitted:     overflow.admitted.Load(),
			shedQuota:    overflow.shedQuota.Load(),
			shedInflight: overflow.shedInflight.Load(),
		})
	}
	return out
}

// bucket returns caller's quota bucket, creating it on first use. Once
// the registry is full, unknown callers share the overflow bucket.
func (a *admission) bucket(caller string, now time.Time) *tokenBucket {
	a.mu.Lock()
	defer a.mu.Unlock()
	if b, ok := a.buckets[caller]; ok {
		return b
	}
	if len(a.buckets) >= maxQuotaCallers {
		if a.overflow == nil {
			a.overflow = newTokenBucket(a.rate, a.burst, now)
		}
		return a.overflow
	}
	if a.buckets == nil {
		a.buckets = make(map[string]*tokenBucket)
	}
	b := newTokenBucket(a.rate, a.burst, now)
	a.buckets[caller] = b
	return b
}

// admissionConfig returns the engine's admission gate, creating it on
// the first admission option.
func (s *Server) admissionConfig() *admission {
	if s.adm == nil {
		s.adm = &admission{}
	}
	return s.adm
}

// releaseFunc undoes an admission's inflight reservation.
type releaseFunc func()

func noRelease() {}

// admit runs both gates for n transactions from caller. On success the
// returned release must be called when the work completes (it frees the
// inflight reservation); on refusal the typed error reports which gate
// shed. The inflight slot is reserved before the quota check and
// released if the quota refuses, so a shed request leaves no residue.
func (a *admission) admit(caller string, n int) (releaseFunc, error) {
	cs := a.callerStat(caller)
	release := noRelease
	if a.maxInflight > 0 {
		if cur := a.inflight.Add(int64(n)); cur > a.maxInflight {
			a.inflight.Add(int64(-n))
			a.shedInflight.Add(int64(n))
			cs.shedInflight.Add(int64(n))
			return nil, fmt.Errorf("%w: %d transactions in flight, limit %d", ErrOverloaded, cur-int64(n), a.maxInflight)
		}
		release = func() { a.inflight.Add(int64(-n)) }
	}
	if a.rate > 0 {
		now := time.Now()
		if !a.bucket(caller, now).take(float64(n), now) {
			release()
			a.shedQuota.Add(int64(n))
			cs.shedQuota.Add(int64(n))
			return nil, fmt.Errorf("%w: caller %q over %g tx/s (burst %g)", ErrRateLimited, caller, a.rate, a.burst)
		}
	}
	a.admitted.Add(int64(n))
	cs.admitted.Add(int64(n))
	return release, nil
}

// Admit runs the engine's admission gates for n transactions on behalf
// of the caller tagged in ctx (see WithCallerContext). It returns a
// release function that MUST be called when the admitted work finishes.
// On an engine without admission control it is a cheap no-op. The HTTP
// layer admits every scoring, decision and ingest request through this;
// in-process load drivers call it around direct engine calls so library
// traffic honors the same quotas.
func (s *Server) Admit(ctx context.Context, n int) (func(), error) {
	if s.adm == nil {
		return noRelease, nil
	}
	rel, err := s.adm.admit(CallerFromContext(ctx), n)
	if err != nil {
		return nil, err
	}
	return rel, nil
}

// AdmissionEnabled reports whether the engine was built with any
// admission gate (WithCallerQuota or WithMaxInflight).
func (s *Server) AdmissionEnabled() bool { return s.adm != nil }

// AdmissionStats is the admission section of GET /v1/stats.
type AdmissionStats struct {
	Admitted     int64   `json:"admitted"`      // transactions admitted
	ShedQuota    int64   `json:"shed_quota"`    // refused by caller quotas
	ShedInflight int64   `json:"shed_inflight"` // refused by the inflight bound
	Inflight     int64   `json:"inflight"`      // current in-engine transactions
	MaxInflight  int64   `json:"max_inflight"`  // 0: unbounded
	Rate         float64 `json:"rate"`          // per-caller tx/s (0: no quota)
	Burst        float64 `json:"burst"`
	Callers      int     `json:"callers"` // distinct callers with exact buckets
}

// AdmissionStats snapshots the admission counters (zero value when
// admission control is disabled).
func (s *Server) AdmissionStats() AdmissionStats {
	return s.adm.stats()
}

// stats snapshots the gate's counters; a nil gate reads as all zeros.
func (a *admission) stats() AdmissionStats {
	if a == nil {
		return AdmissionStats{}
	}
	a.mu.Lock()
	callers := len(a.buckets)
	a.mu.Unlock()
	return AdmissionStats{
		Admitted:     a.admitted.Load(),
		ShedQuota:    a.shedQuota.Load(),
		ShedInflight: a.shedInflight.Load(),
		Inflight:     a.inflight.Load(),
		MaxInflight:  a.maxInflight,
		Rate:         a.rate,
		Burst:        a.burst,
		Callers:      callers,
	}
}
