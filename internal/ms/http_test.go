package ms

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"titant/internal/feature"
	"titant/internal/txn"
)

// v1Server uploads a couple of users and returns a strict-mode engine
// behind an httptest server, so unknown users surface as 404s.
func v1Server(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	tab := table(t)
	up := &Uploader{Table: tab}
	for i := txn.UserID(1); i <= 4; i++ {
		u := txn.User{ID: i, Age: uint8(20 + i)}
		if err := up.PutUser(&u, feature.UserStats{}, nil); err != nil {
			t.Fatal(err)
		}
	}
	srv, err := New(tab, trainToy(t, 0), WithStrictUsers())
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func decodeEnvelope(t *testing.T, resp *http.Response) APIError {
	t.Helper()
	defer resp.Body.Close()
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error envelope: %v", err)
	}
	return env.Error
}

func TestV1ScoreHappyPath(t *testing.T) {
	_, ts := v1Server(t)
	body, _ := json.Marshal(TxnRequest{ID: 7, From: 1, To: 2, Amount: 1800})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var v Verdict
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.TxnID != 7 || !v.Fraud || v.Version != "2017-04-10" {
		t.Fatalf("verdict = %+v", v)
	}
}

func TestV1ScoreMalformedJSON(t *testing.T) {
	_, ts := v1Server(t)
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != "bad_request" {
		t.Fatalf("envelope = %+v", e)
	}
}

func TestV1ScoreUnknownUser(t *testing.T) {
	_, ts := v1Server(t)
	body, _ := json.Marshal(TxnRequest{ID: 1, From: 1, To: 404, Amount: 10})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != "user_not_found" {
		t.Fatalf("envelope = %+v", e)
	}
}

func TestV1MethodMisuse(t *testing.T) {
	_, ts := v1Server(t)
	for _, path := range []string{"/v1/score", "/v1/score/batch"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		if e := decodeEnvelope(t, resp); e.Code != "method_not_allowed" {
			t.Fatalf("envelope = %+v", e)
		}
	}
	resp, err := http.Post(ts.URL+"/v1/stats", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /v1/stats = %d", resp.StatusCode)
	}
}

func TestV1ScoreBatchOrdering(t *testing.T) {
	_, ts := v1Server(t)
	var req BatchRequest
	for i := 0; i < 40; i++ {
		req.Transactions = append(req.Transactions, TxnRequest{
			ID: int64(100 + i), From: int32(1 + i%4), To: int32(1 + (i+1)%4),
			Amount: float32(10 * i),
		})
	}
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/score/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Verdicts) != len(req.Transactions) {
		t.Fatalf("got %d verdicts, want %d", len(br.Verdicts), len(req.Transactions))
	}
	for i, v := range br.Verdicts {
		if v.TxnID != txn.TxnID(100+i) {
			t.Fatalf("verdict %d has txn %d: batch order not preserved", i, v.TxnID)
		}
	}
}

func TestV1ModelsHotSwap(t *testing.T) {
	srv, ts := v1Server(t)

	// GET reports the active bundle.
	resp, err := http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if info.Version != "2017-04-10" {
		t.Fatalf("info = %+v", info)
	}

	// POST hot-swaps an encoded bundle over the wire.
	nb := trainToy(t, 0)
	nb.Version = "2017-04-11"
	raw, err := nb.Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/v1/models", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || info.Version != "2017-04-11" {
		t.Fatalf("status = %d info = %+v", resp.StatusCode, info)
	}
	if srv.BundleVersion() != "2017-04-11" {
		t.Fatal("hot swap did not reach the engine")
	}

	// Garbage bundles are rejected with the typed envelope.
	resp, err = http.Post(ts.URL+"/v1/models", "application/octet-stream", strings.NewReader("junk"))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage bundle status = %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != "bundle_invalid" {
		t.Fatalf("envelope = %+v", e)
	}
}

func TestV1ModelsTokenGuard(t *testing.T) {
	tab := table(t)
	srv, err := New(tab, trainToy(t, 0), WithModelToken("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	nb := trainToy(t, 0)
	nb.Version = "guarded"
	raw, err := nb.Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Missing and wrong tokens are rejected; GET stays open.
	resp, err := http.Post(ts.URL+"/v1/models", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no token: %d", resp.StatusCode)
	}
	if e := decodeEnvelope(t, resp); e.Code != "unauthorized" {
		t.Fatalf("envelope = %+v", e)
	}
	if srv.BundleVersion() == "guarded" {
		t.Fatal("unauthorized swap went through")
	}
	if resp, err = http.Get(ts.URL + "/v1/models"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET with token set: %v %d", err, resp.StatusCode)
	}
	resp.Body.Close()
	// The right token swaps.
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/models", bytes.NewReader(raw))
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || srv.BundleVersion() != "guarded" {
		t.Fatalf("authorized swap: %d version=%s", resp.StatusCode, srv.BundleVersion())
	}
}

func TestV1StatsAndHealth(t *testing.T) {
	_, ts := v1Server(t)
	body, _ := json.Marshal(TxnRequest{ID: 1, From: 1, To: 2, Amount: 5})
	if resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body)); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats["scored"].(float64) < 1 || stats["version"].(string) == "" {
		t.Fatalf("stats = %v", stats)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	// Deprecated pre-v1 aliases still answer.
	resp, err = http.Post(ts.URL+"/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /score = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("legacy /stats = %d", resp.StatusCode)
	}
}

// An ensemble bundle's per-member scores and model metadata travel the
// wire: POST /v1/score carries a members array, GET /v1/models the
// combiner and member descriptors.
func TestV1EnsembleOnTheWire(t *testing.T) {
	srv := ensembleEngine(t, CombineMean)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	body, _ := json.Marshal(TxnRequest{ID: 3, From: 1, To: 2, Amount: 50})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	var members []MemberScore
	if err := json.Unmarshal(raw["members"], &members); err != nil {
		t.Fatalf("members field: %v (body keys %v)", err, raw)
	}
	if len(members) != 2 || members[0].Name != "lo" || members[1].Score != 0.8 {
		t.Fatalf("wire members = %+v", members)
	}

	resp, err = http.Get(ts.URL + "/v1/models")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Combiner != "mean" || len(info.Members) != 2 || info.Members[1].Name != "hi" {
		t.Fatalf("wire model info = %+v", info)
	}
}

// A v1 engine's score response must not grow a members field.
func TestV1ScoreResponseShapeUnchanged(t *testing.T) {
	_, ts := v1Server(t)
	body, _ := json.Marshal(TxnRequest{ID: 7, From: 1, To: 2, Amount: 10})
	resp, err := http.Post(ts.URL+"/v1/score", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["members"]; ok {
		t.Fatalf("v1 response grew a members field: %v", raw)
	}
}
