package txn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary codec for transaction logs. The format is a fixed 40-byte
// little-endian record per transaction preceded by a magic header; it is the
// storage format used by the pangu-backed MaxCompute tables and by the
// examples that persist generated workloads.

const (
	codecMagic   = 0x54495441 // "TITA"
	codecVersion = 1
	recordSize   = 40
)

// RecordSize is the fixed encoded size of one transaction record. Exposed
// for callers that embed codec records in their own framing (the ingest
// event log wraps each record in a durability envelope).
const RecordSize = recordSize

// EncodeRecord writes t's fixed-size record into dst, which must be at
// least RecordSize bytes. Allocation-free.
func EncodeRecord(dst []byte, t *Transaction) {
	encodeRecord((*[recordSize]byte)(dst[:recordSize]), t)
}

// DecodeRecord decodes one fixed-size record from src, applying the same
// strict flags-byte validation as ReadLog: only bit 0 (fraud) is defined,
// so any other set bit marks bytes this codec version did not write.
func DecodeRecord(src []byte) (Transaction, error) {
	if len(src) < recordSize {
		return Transaction{}, fmt.Errorf("txn: record too short: %d bytes, want %d", len(src), recordSize)
	}
	if src[31]&^1 != 0 {
		return Transaction{}, fmt.Errorf("txn: record has unknown flag bits %#x", src[31])
	}
	return decodeRecord((*[recordSize]byte)(src[:recordSize])), nil
}

// WriteLog writes transactions to w in the binary log format.
func WriteLog(w io.Writer, ts []Transaction) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], codecMagic)
	binary.LittleEndian.PutUint32(hdr[4:], codecVersion)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(ts)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("txn: write header: %w", err)
	}
	var rec [recordSize]byte
	for i := range ts {
		encodeRecord(&rec, &ts[i])
		if _, err := bw.Write(rec[:]); err != nil {
			return fmt.Errorf("txn: write record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

func encodeRecord(rec *[recordSize]byte, t *Transaction) {
	le := binary.LittleEndian
	le.PutUint64(rec[0:], uint64(t.ID))
	le.PutUint32(rec[8:], uint32(t.Day))
	le.PutUint32(rec[12:], uint32(t.Sec))
	le.PutUint32(rec[16:], uint32(t.From))
	le.PutUint32(rec[20:], uint32(t.To))
	le.PutUint32(rec[24:], math.Float32bits(t.Amount))
	le.PutUint16(rec[28:], t.TransCity)
	rec[30] = byte(t.Channel)
	flags := byte(0)
	if t.Fraud {
		flags = 1
	}
	rec[31] = flags
	le.PutUint32(rec[32:], math.Float32bits(t.DeviceRisk))
	le.PutUint32(rec[36:], math.Float32bits(t.IPRisk))
}

func decodeRecord(rec *[recordSize]byte) Transaction {
	le := binary.LittleEndian
	return Transaction{
		ID:         TxnID(le.Uint64(rec[0:])),
		Day:        Day(int32(le.Uint32(rec[8:]))),
		Sec:        int32(le.Uint32(rec[12:])),
		From:       UserID(le.Uint32(rec[16:])),
		To:         UserID(le.Uint32(rec[20:])),
		Amount:     math.Float32frombits(le.Uint32(rec[24:])),
		TransCity:  le.Uint16(rec[28:]),
		Channel:    Channel(rec[30]),
		Fraud:      rec[31]&1 != 0,
		DeviceRisk: math.Float32frombits(le.Uint32(rec[32:])),
		IPRisk:     math.Float32frombits(le.Uint32(rec[36:])),
	}
}

// readLogHeader validates the log header and returns the record count.
func readLogHeader(br *bufio.Reader) (int, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("txn: read header: %w", err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != codecMagic {
		return 0, fmt.Errorf("txn: bad magic %#x", le.Uint32(hdr[0:]))
	}
	if v := le.Uint32(hdr[4:]); v != codecVersion {
		return 0, fmt.Errorf("txn: unsupported version %d", v)
	}
	return int(le.Uint32(hdr[8:])), nil
}

// ReadLog reads a binary transaction log written by WriteLog.
func ReadLog(r io.Reader) ([]Transaction, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	n, err := readLogHeader(br)
	if err != nil {
		return nil, err
	}
	// The header's record count is untrusted input: cap the preallocation
	// so a crafted 12-byte header cannot demand gigabytes up front. A
	// count beyond the cap grows normally — or fails at the first missing
	// record.
	pre := n
	if pre > 1<<16 {
		pre = 1 << 16
	}
	ts := make([]Transaction, 0, pre)
	var rec [recordSize]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("txn: read record %d/%d: %w", i, n, err)
		}
		// Only bit 0 (fraud) of the flags byte is defined; any other set
		// bit marks a log this codec version did not write.
		if rec[31]&^1 != 0 {
			return nil, fmt.Errorf("txn: record %d/%d has unknown flag bits %#x", i, n, rec[31])
		}
		ts = append(ts, decodeRecord(&rec))
	}
	return ts, nil
}

// ReadLogFunc streams a binary transaction log to fn, one record at a
// time, without materialising the whole slice: replaying a multi-gigabyte
// log costs one record of working memory. The record passed to fn is
// reused between calls — copy it to keep it. Validation is identical to
// ReadLog (magic, version, strict flags byte, exact record count); fn
// returning an error aborts the read and is returned as-is.
func ReadLogFunc(r io.Reader, fn func(*Transaction) error) error {
	br := bufio.NewReaderSize(r, 1<<16)
	n, err := readLogHeader(br)
	if err != nil {
		return err
	}
	var rec [recordSize]byte
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return fmt.Errorf("txn: read record %d/%d: %w", i, n, err)
		}
		if rec[31]&^1 != 0 {
			return fmt.Errorf("txn: record %d/%d has unknown flag bits %#x", i, n, rec[31])
		}
		t := decodeRecord(&rec)
		if err := fn(&t); err != nil {
			return err
		}
	}
	return nil
}
