package txn

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

func randomTxns(rng *rand.Rand, n int) []Transaction {
	ts := make([]Transaction, n)
	for i := range ts {
		ts[i] = Transaction{
			ID:         TxnID(rng.Int63()),
			Day:        Day(rng.Intn(TimelineDays)),
			Sec:        int32(rng.Intn(86400)),
			From:       UserID(rng.Intn(10000)),
			To:         UserID(rng.Intn(10000)),
			Amount:     rng.Float32() * 5000,
			TransCity:  uint16(rng.Intn(400)),
			DeviceRisk: rng.Float32(),
			IPRisk:     rng.Float32(),
			Channel:    Channel(rng.Intn(NumChannels)),
			Fraud:      rng.Intn(50) == 0,
		}
	}
	return ts
}

// TestReadLogFuncMatchesReadLog is the property test: on random logs —
// intact and truncated at every interesting point — the streaming decoder
// must deliver exactly the records ReadLog returns, and fail exactly when
// ReadLog fails.
func TestReadLogFuncMatchesReadLog(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		ts := randomTxns(rng, rng.Intn(200))
		var buf bytes.Buffer
		if err := WriteLog(&buf, ts); err != nil {
			t.Fatalf("trial %d: WriteLog: %v", trial, err)
		}
		full := buf.Bytes()

		// Cut points: intact, empty, mid-header, every record boundary,
		// and random mid-record positions.
		cuts := []int{len(full), 0, 5, 11, 12}
		for i := 0; i <= len(ts); i++ {
			cuts = append(cuts, 12+i*RecordSize)
		}
		for i := 0; i < 10; i++ {
			cuts = append(cuts, rng.Intn(len(full)+1))
		}

		for _, cut := range cuts {
			if cut > len(full) {
				continue
			}
			data := full[:cut]

			want, wantErr := ReadLog(bytes.NewReader(data))
			var got []Transaction
			gotErr := ReadLogFunc(bytes.NewReader(data), func(tx *Transaction) error {
				got = append(got, *tx)
				return nil
			})

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("trial %d cut %d: error mismatch: ReadLog=%v ReadLogFunc=%v",
					trial, cut, wantErr, gotErr)
			}
			if wantErr != nil {
				// Both fail; the streaming decoder must have delivered only
				// a prefix of the good records before failing.
				if len(got) > len(ts) {
					t.Fatalf("trial %d cut %d: streamed %d records from log of %d", trial, cut, len(got), len(ts))
				}
				for i := range got {
					if got[i] != ts[i] {
						t.Fatalf("trial %d cut %d: streamed record %d mismatch", trial, cut, i)
					}
				}
				continue
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d cut %d: %d records streamed, want %d", trial, cut, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("trial %d cut %d: record %d mismatch:\n got %+v\nwant %+v", trial, cut, i, got[i], want[i])
				}
			}
		}
	}
}

func TestReadLogFuncCallbackError(t *testing.T) {
	ts := randomTxns(rand.New(rand.NewSource(7)), 10)
	var buf bytes.Buffer
	if err := WriteLog(&buf, ts); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	n := 0
	err := ReadLogFunc(bytes.NewReader(buf.Bytes()), func(*Transaction) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("callback error not propagated: %v", err)
	}
	if n != 3 {
		t.Fatalf("callback ran %d times after error, want 3", n)
	}
}

func TestEncodeDecodeRecordRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	buf := make([]byte, RecordSize)
	for _, tx := range randomTxns(rng, 100) {
		EncodeRecord(buf, &tx)
		got, err := DecodeRecord(buf)
		if err != nil {
			t.Fatalf("DecodeRecord: %v", err)
		}
		if got != tx {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tx)
		}
	}
}

func TestDecodeRecordStrictFlags(t *testing.T) {
	tx := Transaction{ID: 1, Fraud: true}
	buf := make([]byte, RecordSize)
	EncodeRecord(buf, &tx)
	buf[31] |= 0x80
	if _, err := DecodeRecord(buf); err == nil {
		t.Fatal("unknown flag bits accepted")
	}
	if _, err := DecodeRecord(buf[:RecordSize-1]); err == nil {
		t.Fatal("short record accepted")
	}
}
