package txn

import (
	"bytes"
	"math"
	"testing"
)

// fuzzTxn reconstructs a transaction from fuzzed primitive fields,
// covering the full value range of every record column (including NaN and
// infinity float bit patterns, which must survive as bits).
func fuzzTxn(id uint64, day int32, sec int32, from, to uint32, amountBits uint32, city uint16, channel uint8, fraud bool, devBits, ipBits uint32) Transaction {
	return Transaction{
		ID:         TxnID(id),
		Day:        Day(day),
		Sec:        sec,
		From:       UserID(int32(from)),
		To:         UserID(int32(to)),
		Amount:     math.Float32frombits(amountBits),
		TransCity:  city,
		Channel:    Channel(channel),
		Fraud:      fraud,
		DeviceRisk: math.Float32frombits(devBits),
		IPRisk:     math.Float32frombits(ipBits),
	}
}

// FuzzLogRoundTrip is the property test of the binary log codec: for any
// transaction, encode → decode → encode is byte-identical, and decode
// reproduces the record's bits exactly. `go test` runs the seed corpus;
// `go test -fuzz=FuzzLogRoundTrip ./internal/txn/` explores further.
func FuzzLogRoundTrip(f *testing.F) {
	f.Add(uint64(1), int32(90), int32(3600), uint32(7), uint32(9), math.Float32bits(123.45), uint16(3), uint8(1), true, math.Float32bits(0.5), math.Float32bits(0.25))
	f.Add(uint64(0), int32(0), int32(0), uint32(0), uint32(0), uint32(0), uint16(0), uint8(0), false, uint32(0), uint32(0))
	f.Add(^uint64(0), int32(-1), int32(86399), ^uint32(0), uint32(1<<31), math.Float32bits(float32(math.Inf(1))), ^uint16(0), ^uint8(0), true, math.Float32bits(float32(math.NaN())), uint32(0x7fc00001))
	f.Fuzz(func(t *testing.T, id uint64, day, sec int32, from, to, amountBits uint32, city uint16, channel uint8, fraud bool, devBits, ipBits uint32) {
		in := fuzzTxn(id, day, sec, from, to, amountBits, city, channel, fraud, devBits, ipBits)
		var buf1 bytes.Buffer
		if err := WriteLog(&buf1, []Transaction{in}); err != nil {
			t.Fatal(err)
		}
		out, err := ReadLog(bytes.NewReader(buf1.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 {
			t.Fatalf("decoded %d records, want 1", len(out))
		}
		got := out[0]
		// Field-by-field at the bit level: NaN payloads must survive, so
		// floats compare as bits, not values.
		if got.ID != in.ID || got.Day != in.Day || got.Sec != in.Sec ||
			got.From != in.From || got.To != in.To ||
			math.Float32bits(got.Amount) != math.Float32bits(in.Amount) ||
			got.TransCity != in.TransCity || got.Channel != in.Channel || got.Fraud != in.Fraud ||
			math.Float32bits(got.DeviceRisk) != math.Float32bits(in.DeviceRisk) ||
			math.Float32bits(got.IPRisk) != math.Float32bits(in.IPRisk) {
			t.Fatalf("decode changed the record:\n in  %+v\n got %+v", in, got)
		}
		// The round trip is byte-stable: re-encoding the decoded record
		// reproduces the original log exactly.
		var buf2 bytes.Buffer
		if err := WriteLog(&buf2, out); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
			t.Fatalf("encode→decode→encode not byte-identical:\n %x\n %x", buf1.Bytes(), buf2.Bytes())
		}
	})
}

// FuzzReadLog hammers the decoder with arbitrary bytes: it must reject or
// decode, never panic, and anything it accepts must re-encode to the same
// bytes (the codec has no don't-care bits on the accepted path).
func FuzzReadLog(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteLog(&seed, []Transaction{{ID: 3, Day: 10, Amount: 7, Fraud: true}})
	f.Add(seed.Bytes())
	f.Add([]byte{})
	f.Add([]byte("TITA junk"))
	f.Fuzz(func(t *testing.T, raw []byte) {
		ts, err := ReadLog(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteLog(&buf, ts); err != nil {
			t.Fatal(err)
		}
		// Accepted input must be canonical up to its record contents: the
		// header + records region re-encodes identically. (ReadLog stops
		// after the declared record count, so trailing garbage is the one
		// permitted difference.)
		if !bytes.Equal(buf.Bytes(), raw[:buf.Len()]) {
			t.Fatalf("accepted log not canonical:\n in  %x\n out %x", raw[:buf.Len()], buf.Bytes())
		}
	})
}
