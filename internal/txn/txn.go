// Package txn defines the core data model of the TitAnt reproduction:
// users, transactions, fraud labels, and the day-windowed datasets used by
// the paper's "T+1" training mode (90 days to build the transaction network,
// 14 days of labeled records for training, 1 day for testing).
package txn

import (
	"fmt"
	"time"
)

// UserID identifies a user node in the transaction network.
type UserID int32

// TxnID identifies a single transfer.
type TxnID int64

// Day is a day index on the synthetic timeline (day 0 is the first day of
// the earliest network window). The paper's datasets are anchored to
// calendar dates (April 10-16, 2017); Date converts between the two.
type Day int

// Epoch is day 0 of the synthetic timeline. The paper's Dataset 1 tests on
// April 10, 2017 with 14 training days and 90 network days before it, so day
// 0 (the first network day) corresponds to 2016-12-27 and April 10 is day
// 104.
var Epoch = time.Date(2016, time.December, 27, 0, 0, 0, 0, time.UTC)

// Date returns the calendar date of d.
func (d Day) Date() time.Time { return Epoch.AddDate(0, 0, int(d)) }

// String renders the day as its calendar date.
func (d Day) String() string { return d.Date().Format("2006-01-02") }

// Gender of a user profile.
type Gender uint8

// Gender values.
const (
	GenderUnknown Gender = iota
	GenderFemale
	GenderMale
)

// User is a user profile. Profile fields feed the "basic features" of
// Figure 1(a); Risk fields are latent generator state (never exposed to
// models) that determines ground-truth fraud behaviour.
type User struct {
	ID            UserID
	Age           uint8
	Gender        Gender
	HomeCity      uint16         // residence city code
	AccountAge    AccountAgeDays // account age at timeline day 0
	DeviceCount   uint8          // number of devices seen on the account
	KYCLevel      uint8          // 0..3 identity verification depth
	AvgDailyTxns  float32        // historical activity level
	AvgAmount     float32        // historical mean transfer amount (yuan)
	MerchantFlag  bool           // receives payments as a merchant
	IsFraudster   bool           // latent: ground-truth fraudster
	RingID        int32          // latent: fraud ring membership, -1 if none
	ActivityScore float32        // latent: propensity to transact
}

// AccountAgeDays is the account age in days at timeline day 0.
type AccountAgeDays uint16

// Transaction is a single transfer event (one directed edge occurrence in
// the transaction network).
type Transaction struct {
	ID         TxnID
	Day        Day
	Sec        int32 // seconds past midnight
	From       UserID
	To         UserID
	Amount     float32 // yuan
	TransCity  uint16  // city inferred from transfer IP (paper footnote 4)
	DeviceRisk float32 // risk score of the initiating device, [0,1]
	IPRisk     float32 // risk score of the initiating IP, [0,1]
	Channel    Channel
	Fraud      bool // ground-truth label (delayed in production; see Labels)
}

// Channel is the payment channel of a transfer.
type Channel uint8

// Channel values.
const (
	ChannelBalance Channel = iota
	ChannelBankCard
	ChannelCredit
	nChannels
)

// NumChannels is the number of payment channels.
const NumChannels = int(nChannels)

// Label carries the delayed fraud label for a transaction. In production
// labels come from user fraud reports days later; the generator stamps
// ReportedDay accordingly so pipelines can honour label latency.
type Label struct {
	Txn         TxnID
	Fraud       bool
	ReportedDay Day
}

// Dataset is one experiment unit in the paper's "T+1" protocol: a 90-day
// window of transactions to build the transaction network, 14 days of
// labeled transactions for classifier training, and one test day.
type Dataset struct {
	Index      int // 1-based dataset number (paper: 1..7)
	Network    []Transaction
	Train      []Transaction
	Test       []Transaction
	NetworkEnd Day // first day after the network window
	TrainEnd   Day // first day after the training window
	TestDay    Day
}

// Window describes the paper's slicing constants.
const (
	NetworkDays = 90
	TrainDays   = 14
	TestDays    = 1
	// TimelineDays is the number of days the generator must produce to
	// support the paper's seven consecutive test days (April 10-16):
	// 90 + 14 + 7 = 111.
	TimelineDays = NetworkDays + TrainDays + 7*TestDays
)

// Slice carves a dataset out of a day-ordered transaction log. testDay is an
// absolute day index on the timeline; the network window covers
// [testDay-104, testDay-15] and the training window [testDay-14, testDay-1],
// matching Figure 8.
func Slice(log []Transaction, index int, testDay Day) (*Dataset, error) {
	netStart := testDay - TrainDays - NetworkDays
	if netStart < 0 {
		return nil, fmt.Errorf("txn: test day %d needs %d prior days, have %d", testDay, TrainDays+NetworkDays, testDay)
	}
	trainStart := testDay - TrainDays
	d := &Dataset{
		Index:      index,
		NetworkEnd: trainStart,
		TrainEnd:   testDay,
		TestDay:    testDay,
	}
	for _, t := range log {
		switch {
		case t.Day >= netStart && t.Day < trainStart:
			d.Network = append(d.Network, t)
		case t.Day >= trainStart && t.Day < testDay:
			d.Train = append(d.Train, t)
		case t.Day == testDay:
			d.Test = append(d.Test, t)
		}
	}
	if len(d.Network) == 0 || len(d.Train) == 0 || len(d.Test) == 0 {
		return nil, fmt.Errorf("txn: dataset %d has empty window (network=%d train=%d test=%d)",
			index, len(d.Network), len(d.Train), len(d.Test))
	}
	return d, nil
}

// FraudRate returns the fraction of transactions labeled fraudulent.
func FraudRate(ts []Transaction) float64 {
	if len(ts) == 0 {
		return 0
	}
	n := 0
	for _, t := range ts {
		if t.Fraud {
			n++
		}
	}
	return float64(n) / float64(len(ts))
}

// Labels extracts delayed labels from a transaction slice. Fraud reports
// arrive lagDays after the transaction (uniform lag is sufficient for the
// pipeline's purposes; the paper only requires that labels are not
// real-time).
func Labels(ts []Transaction, lagDays int) []Label {
	ls := make([]Label, len(ts))
	for i, t := range ts {
		ls[i] = Label{Txn: t.ID, Fraud: t.Fraud, ReportedDay: t.Day + Day(lagDays)}
	}
	return ls
}

// Stats summarises a transaction slice.
type Stats struct {
	Count     int
	Frauds    int
	Users     int
	Days      int
	MinAmount float32
	MaxAmount float32
	SumAmount float64
}

// Summarize computes Stats over ts.
func Summarize(ts []Transaction) Stats {
	s := Stats{Count: len(ts)}
	if len(ts) == 0 {
		return s
	}
	users := make(map[UserID]struct{}, len(ts)/4)
	days := make(map[Day]struct{})
	s.MinAmount = ts[0].Amount
	for _, t := range ts {
		if t.Fraud {
			s.Frauds++
		}
		users[t.From] = struct{}{}
		users[t.To] = struct{}{}
		days[t.Day] = struct{}{}
		if t.Amount < s.MinAmount {
			s.MinAmount = t.Amount
		}
		if t.Amount > s.MaxAmount {
			s.MaxAmount = t.Amount
		}
		s.SumAmount += float64(t.Amount)
	}
	s.Users = len(users)
	s.Days = len(days)
	return s
}

// String renders the stats in a single human-readable line.
func (s Stats) String() string {
	return fmt.Sprintf("txns=%d frauds=%d (%.3f%%) users=%d days=%d amount=[%.2f,%.2f] total=%.0f",
		s.Count, s.Frauds, 100*float64(s.Frauds)/max1(s.Count), s.Users, s.Days, s.MinAmount, s.MaxAmount, s.SumAmount)
}

func max1(n int) float64 {
	if n == 0 {
		return 1
	}
	return float64(n)
}
