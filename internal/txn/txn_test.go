package txn

import (
	"bytes"
	"testing"
	"testing/quick"
)

func mkLog() []Transaction {
	var ts []Transaction
	id := TxnID(0)
	for day := Day(0); day < 120; day++ {
		for i := 0; i < 3; i++ {
			ts = append(ts, Transaction{
				ID: id, Day: day, Sec: int32(i * 1000),
				From: UserID(i), To: UserID(i + 1),
				Amount: float32(10*i + 1), TransCity: uint16(i),
				Fraud: i == 2 && day%7 == 0,
			})
			id++
		}
	}
	return ts
}

func TestSliceWindows(t *testing.T) {
	log := mkLog()
	d, err := Slice(log, 1, 104)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Network) != 90*3 {
		t.Errorf("network window: got %d txns, want %d", len(d.Network), 90*3)
	}
	if len(d.Train) != 14*3 {
		t.Errorf("train window: got %d txns, want %d", len(d.Train), 14*3)
	}
	if len(d.Test) != 3 {
		t.Errorf("test window: got %d txns, want 3", len(d.Test))
	}
	for _, tx := range d.Network {
		if tx.Day < 0 || tx.Day >= 90 {
			t.Fatalf("network txn on day %d outside [0,90)", tx.Day)
		}
	}
	for _, tx := range d.Train {
		if tx.Day < 90 || tx.Day >= 104 {
			t.Fatalf("train txn on day %d outside [90,104)", tx.Day)
		}
	}
	for _, tx := range d.Test {
		if tx.Day != 104 {
			t.Fatalf("test txn on day %d, want 104", tx.Day)
		}
	}
}

func TestSliceWindowsDisjointAndComplete(t *testing.T) {
	log := mkLog()
	d, err := Slice(log, 1, 104)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[TxnID]int)
	for _, tx := range d.Network {
		seen[tx.ID]++
	}
	for _, tx := range d.Train {
		seen[tx.ID]++
	}
	for _, tx := range d.Test {
		seen[tx.ID]++
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("txn %d appears in %d windows", id, n)
		}
	}
	if want := (90 + 14 + 1) * 3; len(seen) != want {
		t.Errorf("windows cover %d txns, want %d", len(seen), want)
	}
}

func TestSliceTooEarly(t *testing.T) {
	if _, err := Slice(mkLog(), 1, 50); err == nil {
		t.Fatal("Slice with insufficient history did not error")
	}
}

func TestSliceEmptyWindow(t *testing.T) {
	// A log with no transactions on the test day must error.
	log := mkLog()
	var filtered []Transaction
	for _, tx := range log {
		if tx.Day != 104 {
			filtered = append(filtered, tx)
		}
	}
	if _, err := Slice(filtered, 1, 104); err == nil {
		t.Fatal("Slice with empty test day did not error")
	}
}

func TestFraudRate(t *testing.T) {
	ts := []Transaction{{Fraud: true}, {}, {}, {Fraud: true}}
	if got := FraudRate(ts); got != 0.5 {
		t.Errorf("FraudRate = %v, want 0.5", got)
	}
	if got := FraudRate(nil); got != 0 {
		t.Errorf("FraudRate(nil) = %v, want 0", got)
	}
}

func TestLabelsLag(t *testing.T) {
	ts := []Transaction{{ID: 7, Day: 10, Fraud: true}}
	ls := Labels(ts, 3)
	if len(ls) != 1 || ls[0].Txn != 7 || !ls[0].Fraud || ls[0].ReportedDay != 13 {
		t.Fatalf("Labels = %+v", ls)
	}
}

func TestSummarize(t *testing.T) {
	ts := []Transaction{
		{From: 1, To: 2, Day: 0, Amount: 5, Fraud: true},
		{From: 2, To: 3, Day: 1, Amount: 15},
	}
	s := Summarize(ts)
	if s.Count != 2 || s.Frauds != 1 || s.Users != 3 || s.Days != 2 {
		t.Errorf("Summarize = %+v", s)
	}
	if s.MinAmount != 5 || s.MaxAmount != 15 || s.SumAmount != 20 {
		t.Errorf("amounts = %+v", s)
	}
	if Summarize(nil).Count != 0 {
		t.Error("Summarize(nil) non-zero")
	}
	if s.String() == "" {
		t.Error("Stats.String empty")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	ts := mkLog()
	var buf bytes.Buffer
	if err := WriteLog(&buf, ts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(ts) {
		t.Fatalf("round trip length %d != %d", len(got), len(ts))
	}
	for i := range ts {
		if got[i] != ts[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], ts[i])
		}
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(id int64, day int16, sec int32, from, to int32, amount float32, city uint16, ch uint8, fraud bool, dr, ir float32) bool {
		if day < 0 {
			day = -day
		}
		in := Transaction{
			ID: TxnID(id), Day: Day(day), Sec: sec % 86400,
			From: UserID(from), To: UserID(to), Amount: amount,
			TransCity: city, Channel: Channel(ch % 3), Fraud: fraud,
			DeviceRisk: dr, IPRisk: ir,
		}
		var buf bytes.Buffer
		if err := WriteLog(&buf, []Transaction{in}); err != nil {
			return false
		}
		out, err := ReadLog(&buf)
		if err != nil || len(out) != 1 {
			return false
		}
		// NaN != NaN, so compare bit patterns via struct equality only when
		// floats are not NaN.
		if amount != amount || dr != dr || ir != ir {
			return true
		}
		return out[0] == in
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCodecRejectsGarbage(t *testing.T) {
	if _, err := ReadLog(bytes.NewReader([]byte("not a log at all"))); err == nil {
		t.Fatal("ReadLog accepted garbage")
	}
	if _, err := ReadLog(bytes.NewReader(nil)); err == nil {
		t.Fatal("ReadLog accepted empty input")
	}
}

func TestCodecTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLog(&buf, mkLog()[:10]); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadLog(bytes.NewReader(b[:len(b)-5])); err == nil {
		t.Fatal("ReadLog accepted truncated input")
	}
}

func TestDayString(t *testing.T) {
	if got := Day(0).String(); got != "2016-12-27" {
		t.Errorf("Day(0) = %s, want 2016-12-27", got)
	}
}

func TestEpochAlignment(t *testing.T) {
	// The first test day used by the paper (April 10, 2017) must sit exactly
	// at day NetworkDays+TrainDays so it has a full history on our timeline.
	apr10 := Day(NetworkDays + TrainDays)
	if got := apr10.String(); got != "2017-04-10" {
		t.Errorf("Day(%d) = %s, want 2017-04-10", int(apr10), got)
	}
	// And the last paper test day, April 16, must fit within TimelineDays.
	apr16 := apr10 + 6
	if int(apr16) != TimelineDays-1 {
		t.Errorf("April 16 at day %d, want %d", int(apr16), TimelineDays-1)
	}
}
