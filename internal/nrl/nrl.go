// Package nrl holds the shared types of the network-representation-learning
// methods (Section 3.2): a container mapping users to learned node
// embeddings, with lookup, similarity and serialisation helpers. Concrete
// learners live in nrl/deepwalk (unsupervised) and nrl/struc2vec
// (supervised).
package nrl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"

	"titant/internal/txn"
)

// Embeddings maps users to d-dimensional vectors. Users absent from the
// training window have no entry (cold start); Lookup returns nil for them.
type Embeddings struct {
	dim  int
	vecs map[txn.UserID][]float32
}

// NewEmbeddings creates an empty container of the given dimension.
func NewEmbeddings(dim int) *Embeddings {
	if dim < 1 {
		panic(fmt.Sprintf("nrl: bad dimension %d", dim))
	}
	return &Embeddings{dim: dim, vecs: make(map[txn.UserID][]float32)}
}

// Dim returns the embedding dimension.
func (e *Embeddings) Dim() int { return e.dim }

// Len returns the number of embedded users.
func (e *Embeddings) Len() int { return len(e.vecs) }

// Set stores (a copy of) vec for user u.
func (e *Embeddings) Set(u txn.UserID, vec []float32) {
	if len(vec) != e.dim {
		panic(fmt.Sprintf("nrl: vector has %d dims, container wants %d", len(vec), e.dim))
	}
	c := make([]float32, e.dim)
	copy(c, vec)
	e.vecs[u] = c
}

// Lookup returns the vector of u, or nil when u was never embedded.
func (e *Embeddings) Lookup(u txn.UserID) []float32 { return e.vecs[u] }

// Users returns all embedded users in ascending order.
func (e *Embeddings) Users() []txn.UserID {
	us := make([]txn.UserID, 0, len(e.vecs))
	for u := range e.vecs {
		us = append(us, u)
	}
	sort.Slice(us, func(i, j int) bool { return us[i] < us[j] })
	return us
}

// Cosine returns the cosine similarity of two users' embeddings; it returns
// 0 when either is missing or zero.
func (e *Embeddings) Cosine(a, b txn.UserID) float64 {
	va, vb := e.vecs[a], e.vecs[b]
	return CosineVec(va, vb)
}

// CosineVec returns cosine similarity of two vectors (0 on nil/zero).
func CosineVec(va, vb []float32) float64 {
	if va == nil || vb == nil || len(va) != len(vb) {
		return 0
	}
	var dot, na, nb float64
	for i := range va {
		dot += float64(va[i]) * float64(vb[i])
		na += float64(va[i]) * float64(va[i])
		nb += float64(vb[i]) * float64(vb[i])
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Neighbor is one nearest-neighbour result.
type Neighbor struct {
	User txn.UserID
	Sim  float64
}

// Nearest returns the k most cosine-similar users to u (excluding u).
func (e *Embeddings) Nearest(u txn.UserID, k int) []Neighbor {
	target := e.vecs[u]
	if target == nil || k < 1 {
		return nil
	}
	ns := make([]Neighbor, 0, len(e.vecs))
	for v, vec := range e.vecs {
		if v == u {
			continue
		}
		ns = append(ns, Neighbor{User: v, Sim: CosineVec(target, vec)})
	}
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Sim != ns[j].Sim {
			return ns[i].Sim > ns[j].Sim
		}
		return ns[i].User < ns[j].User
	})
	if len(ns) > k {
		ns = ns[:k]
	}
	return ns
}

// binary serialisation: this is the payload uploaded to Ali-HBase (one row
// per user, column family "emb") and shipped to the Model Server.

const embMagic = 0x54454D42 // "TEMB"

// Write serialises the embeddings.
func (e *Embeddings) Write(w io.Writer) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [12]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], embMagic)
	le.PutUint32(hdr[4:], uint32(e.dim))
	le.PutUint32(hdr[8:], uint32(len(e.vecs)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("nrl: write header: %w", err)
	}
	buf := make([]byte, 4+4*e.dim)
	for _, u := range e.Users() {
		le.PutUint32(buf[0:], uint32(u))
		for i, v := range e.vecs[u] {
			le.PutUint32(buf[4+4*i:], math.Float32bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return fmt.Errorf("nrl: write vector: %w", err)
		}
	}
	return bw.Flush()
}

// ReadEmbeddings deserialises embeddings written by Write.
func ReadEmbeddings(r io.Reader) (*Embeddings, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("nrl: read header: %w", err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:]) != embMagic {
		return nil, fmt.Errorf("nrl: bad magic %#x", le.Uint32(hdr[0:]))
	}
	dim := int(le.Uint32(hdr[4:]))
	n := int(le.Uint32(hdr[8:]))
	if dim < 1 || dim > 1<<16 {
		return nil, fmt.Errorf("nrl: implausible dimension %d", dim)
	}
	e := NewEmbeddings(dim)
	buf := make([]byte, 4+4*dim)
	vec := make([]float32, dim)
	for i := 0; i < n; i++ {
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("nrl: read vector %d/%d: %w", i, n, err)
		}
		u := txn.UserID(le.Uint32(buf[0:]))
		for j := 0; j < dim; j++ {
			vec[j] = math.Float32frombits(le.Uint32(buf[4+4*j:]))
		}
		e.Set(u, vec)
	}
	return e, nil
}
