// Package deepwalk implements DeepWalk (Perozzi et al., KDD 2014), the
// unsupervised network-representation-learning method TitAnt selects "for
// its efficiency, effectiveness and simplicity" (Section 3.2).
//
// Random walks over the (undirected view of the) transaction network turn
// topology into linear node sequences; Skip-gram with negative sampling
// (word2vec, Mikolov et al. 2013) then embeds nodes so that walk
// co-occurrence implies vector similarity. The paper's production settings
// are walk length 50, 100 walks per node ("number of sampling"), and
// dimension 32.
package deepwalk

import (
	"fmt"
	"math"

	"titant/internal/graph"
	"titant/internal/nrl"
	"titant/internal/rng"
)

// Config holds DeepWalk hyperparameters.
type Config struct {
	Dim          int     // embedding dimension (paper: 32)
	WalkLength   int     // nodes per walk (paper: 50)
	WalksPerNode int     // walks started at each node (paper: 100)
	Window       int     // skip-gram context window
	Negatives    int     // negative samples per positive pair
	LearningRate float64 // initial SGD step, decays linearly
	MinLR        float64 // learning-rate floor
	Seed         uint64
}

// DefaultConfig returns the paper's NRL settings with standard word2vec
// training constants.
func DefaultConfig() Config {
	return Config{
		Dim: 32, WalkLength: 50, WalksPerNode: 100,
		Window: 5, Negatives: 5,
		LearningRate: 0.025, MinLR: 0.0001, Seed: 1,
	}
}

// BenchConfig returns laptop-scale settings: the hyperparameters that shape
// embedding quality (dim, window, negatives) match the paper; the sampling
// effort is reduced. Table 2 sweeps WalksPerNode explicitly.
func BenchConfig() Config {
	c := DefaultConfig()
	c.WalkLength = 20
	c.WalksPerNode = 10
	c.Window = 3
	c.Negatives = 4
	return c
}

// Walks streams random walks over the undirected view of g: each node
// starts cfg.WalksPerNode walks of cfg.WalkLength steps; each step moves to
// a uniformly random in- or out-neighbour (degree-proportional transition,
// as in the original DeepWalk). fn receives each walk; the slice is reused
// across calls.
func Walks(g *graph.Graph, walkLength, walksPerNode int, seed uint64, fn func(walk []graph.NodeID)) {
	if walkLength < 1 || walksPerNode < 1 {
		panic(fmt.Sprintf("deepwalk: bad walk parameters length=%d per-node=%d", walkLength, walksPerNode))
	}
	r := rng.New(seed)
	walk := make([]graph.NodeID, 0, walkLength)
	n := g.NumNodes()
	for rep := 0; rep < walksPerNode; rep++ {
		// A fresh permutation per repetition, as in the original paper.
		order := r.Perm(n)
		for _, start := range order {
			walk = walk[:0]
			cur := graph.NodeID(start)
			walk = append(walk, cur)
			for len(walk) < walkLength {
				out := g.OutNeighbors(cur)
				in := g.InNeighbors(cur)
				deg := len(out) + len(in)
				if deg == 0 {
					break
				}
				k := r.Intn(deg)
				if k < len(out) {
					cur = out[k]
				} else {
					cur = in[k-len(out)]
				}
				walk = append(walk, cur)
			}
			fn(walk)
		}
	}
}

// SGNS is the skip-gram-with-negative-sampling trainer state. It is
// exported so the parameter-server reimplementation (internal/ps) can run
// the identical math with distributed parameter storage.
type SGNS struct {
	Dim  int
	Syn0 [][]float32 // input (node) vectors - these become the embeddings
	Syn1 [][]float32 // output (context) vectors
}

// NewSGNS allocates trainer state for n nodes, with small random init on
// the input vectors (as in word2vec).
func NewSGNS(n, dim int, r *rng.RNG) *SGNS {
	s := &SGNS{Dim: dim, Syn0: make([][]float32, n), Syn1: make([][]float32, n)}
	for i := 0; i < n; i++ {
		v0 := make([]float32, dim)
		for j := range v0 {
			v0[j] = (float32(r.Float64()) - 0.5) / float32(dim)
		}
		s.Syn0[i] = v0
		s.Syn1[i] = make([]float32, dim)
	}
	return s
}

// Update applies one positive pair (center, context) plus the given
// negative samples, with learning rate lr. It returns the summed absolute
// update magnitude (useful for convergence diagnostics).
func (s *SGNS) Update(center, context graph.NodeID, negatives []graph.NodeID, lr float32) float32 {
	in := s.Syn0[center]
	work := make([]float32, s.Dim)
	var total float32
	apply := func(target graph.NodeID, label float32) {
		out := s.Syn1[target]
		var dot float64
		for i := range in {
			dot += float64(in[i]) * float64(out[i])
		}
		pred := float32(sigmoid(dot))
		g := (label - pred) * lr
		for i := range in {
			work[i] += g * out[i]
			out[i] += g * in[i]
		}
		if g < 0 {
			total -= g
		} else {
			total += g
		}
	}
	apply(context, 1)
	for _, neg := range negatives {
		if neg == context {
			continue
		}
		apply(neg, 0)
	}
	for i := range in {
		in[i] += work[i]
	}
	return total
}

func sigmoid(z float64) float64 {
	if z > 8 {
		return 1
	}
	if z < -8 {
		return 0
	}
	return 1 / (1 + math.Exp(-z))
}

// NegativeTable is the unigram^0.75 sampling table of word2vec.
type NegativeTable struct {
	table []graph.NodeID
}

// NewNegativeTable builds the table from node frequencies (walk visit
// counts or degrees). size bounds the table length.
func NewNegativeTable(freq []float64, size int) *NegativeTable {
	if size < 1 {
		size = 1 << 16
	}
	var total float64
	pow := make([]float64, len(freq))
	for i, f := range freq {
		p := math.Pow(f+1, 0.75)
		pow[i] = p
		total += p
	}
	t := &NegativeTable{table: make([]graph.NodeID, 0, size)}
	for i, p := range pow {
		n := int(p / total * float64(size))
		if n < 1 {
			n = 1
		}
		for k := 0; k < n; k++ {
			t.table = append(t.table, graph.NodeID(i))
		}
	}
	return t
}

// Sample draws one negative node.
func (t *NegativeTable) Sample(r *rng.RNG) graph.NodeID {
	return t.table[r.Intn(len(t.table))]
}

// Train runs DeepWalk on g and returns the learned user embeddings.
func Train(g *graph.Graph, cfg Config) *nrl.Embeddings {
	if cfg.Dim < 1 || cfg.Window < 1 || cfg.Negatives < 0 {
		panic(fmt.Sprintf("deepwalk: bad config %+v", cfg))
	}
	n := g.NumNodes()
	out := nrl.NewEmbeddings(cfg.Dim)
	if n == 0 {
		return out
	}
	r := rng.New(cfg.Seed)
	s := NewSGNS(n, cfg.Dim, r.Split(1))

	// Degree-based negative table (degree approximates walk visit counts).
	freq := make([]float64, n)
	for v := graph.NodeID(0); int(v) < n; v++ {
		freq[v] = float64(g.Degree(v))
	}
	neg := NewNegativeTable(freq, 1<<17)

	totalWalks := n * cfg.WalksPerNode
	walkIdx := 0
	trainRNG := r.Split(2)
	negBuf := make([]graph.NodeID, cfg.Negatives)
	Walks(g, cfg.WalkLength, cfg.WalksPerNode, cfg.Seed+7, func(walk []graph.NodeID) {
		// Linear learning-rate decay over all walks.
		progress := float64(walkIdx) / float64(totalWalks)
		lr := cfg.LearningRate * (1 - progress)
		if lr < cfg.MinLR {
			lr = cfg.MinLR
		}
		walkIdx++
		for i, center := range walk {
			// Dynamic window, as in word2vec: uniform in [1, Window].
			w := 1 + trainRNG.Intn(cfg.Window)
			lo, hi := i-w, i+w
			if lo < 0 {
				lo = 0
			}
			if hi >= len(walk) {
				hi = len(walk) - 1
			}
			for j := lo; j <= hi; j++ {
				if j == i || walk[j] == center {
					continue
				}
				for k := range negBuf {
					negBuf[k] = neg.Sample(trainRNG)
				}
				s.Update(center, walk[j], negBuf, float32(lr))
			}
		}
	})

	for v := graph.NodeID(0); int(v) < n; v++ {
		out.Set(g.User(v), s.Syn0[v])
	}
	return out
}
