package deepwalk

import (
	"testing"

	"titant/internal/graph"
	"titant/internal/rng"
	"titant/internal/txn"
)

// twoCliques builds two dense communities joined by a single bridge edge.
func twoCliques(size int) *graph.Graph {
	b := graph.NewBuilder()
	for i := 0; i < size; i++ {
		for j := 0; j < size; j++ {
			if i != j {
				b.AddTransfer(txn.UserID(i), txn.UserID(j), false)
				b.AddTransfer(txn.UserID(size+i), txn.UserID(size+j), false)
			}
		}
	}
	b.AddTransfer(0, txn.UserID(size), false)
	return b.Build()
}

func TestWalksAreValidPaths(t *testing.T) {
	g := twoCliques(6)
	count := 0
	Walks(g, 10, 3, 42, func(walk []graph.NodeID) {
		count++
		if len(walk) == 0 || len(walk) > 10 {
			t.Fatalf("walk length %d", len(walk))
		}
		for i := 1; i < len(walk); i++ {
			a, b := walk[i-1], walk[i]
			if !g.HasEdge(a, b) && !g.HasEdge(b, a) {
				t.Fatalf("walk step %d: no edge between %d and %d", i, a, b)
			}
		}
	})
	if want := g.NumNodes() * 3; count != want {
		t.Fatalf("got %d walks, want %d", count, want)
	}
}

func TestWalksCoverAllStarts(t *testing.T) {
	g := twoCliques(4)
	starts := make(map[graph.NodeID]int)
	Walks(g, 5, 2, 1, func(walk []graph.NodeID) {
		starts[walk[0]]++
	})
	for v := graph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if starts[v] != 2 {
			t.Fatalf("node %d started %d walks, want 2", v, starts[v])
		}
	}
}

func TestWalkIsolatedNode(t *testing.T) {
	b := graph.NewBuilder()
	b.AddTransfer(1, 2, false)
	b.AddTransfer(3, 4, false)
	g := b.Build()
	// No panic and single-node walks are allowed for degree-0 continuation.
	Walks(g, 5, 1, 1, func(walk []graph.NodeID) {})
}

func TestCommunityStructureCaptured(t *testing.T) {
	// DeepWalk must embed same-community nodes closer than cross-community
	// nodes - the property that makes fraud-ring clusters detectable.
	g := twoCliques(8)
	cfg := BenchConfig()
	cfg.Dim = 16
	cfg.WalksPerNode = 20
	emb := Train(g, cfg)
	if emb.Len() != g.NumNodes() {
		t.Fatalf("embedded %d of %d nodes", emb.Len(), g.NumNodes())
	}
	var within, across float64
	nw, na := 0, 0
	for i := 2; i < 8; i++ {
		within += emb.Cosine(txn.UserID(1), txn.UserID(i))
		nw++
	}
	for i := 8; i < 16; i++ {
		across += emb.Cosine(txn.UserID(1), txn.UserID(i))
		na++
	}
	within /= float64(nw)
	across /= float64(na)
	if within <= across {
		t.Errorf("within-community cosine %.3f <= across %.3f", within, across)
	}
}

func TestDeterminism(t *testing.T) {
	g := twoCliques(5)
	cfg := BenchConfig()
	cfg.WalksPerNode = 5
	a := Train(g, cfg)
	b := Train(g, cfg)
	for _, u := range a.Users() {
		va, vb := a.Lookup(u), b.Lookup(u)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("user %d dim %d differs", u, i)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder().Build()
	emb := Train(g, BenchConfig())
	if emb.Len() != 0 {
		t.Fatal("empty graph produced embeddings")
	}
}

func TestNegativeTable(t *testing.T) {
	freq := []float64{100, 1, 1, 1}
	nt := NewNegativeTable(freq, 1000)
	r := rng.New(3)
	counts := make([]int, 4)
	for i := 0; i < 10000; i++ {
		counts[nt.Sample(r)]++
	}
	// Node 0 dominates but sublinearly (unigram^0.75).
	if counts[0] <= counts[1] {
		t.Errorf("high-frequency node not preferred: %v", counts)
	}
	for i, c := range counts {
		if c == 0 {
			t.Errorf("node %d never sampled", i)
		}
	}
}

func TestSGNSUpdateMovesVectorsTogether(t *testing.T) {
	r := rng.New(5)
	s := NewSGNS(4, 8, r)
	// Repeated positive updates must raise sigma(in . out) for the pair.
	dot := func() float64 {
		var d float64
		for i := 0; i < 8; i++ {
			d += float64(s.Syn0[0][i]) * float64(s.Syn1[1][i])
		}
		return d
	}
	before := dot()
	for i := 0; i < 200; i++ {
		s.Update(0, 1, []graph.NodeID{2, 3}, 0.1)
	}
	if after := dot(); after <= before {
		t.Errorf("positive-pair dot did not increase: %v -> %v", before, after)
	}
}

func TestSGNSSkipsSelfNegative(t *testing.T) {
	r := rng.New(6)
	s := NewSGNS(2, 4, r)
	// Negative equal to the context must be skipped - update must still
	// behave like a pure positive update (direction of dot increases).
	var before float64
	for i := 0; i < 4; i++ {
		before += float64(s.Syn0[0][i]) * float64(s.Syn1[1][i])
	}
	s.Update(0, 1, []graph.NodeID{1, 1}, 0.5)
	var after float64
	for i := 0; i < 4; i++ {
		after += float64(s.Syn0[0][i]) * float64(s.Syn1[1][i])
	}
	if after < before {
		t.Errorf("dot decreased despite only-positive update: %v -> %v", before, after)
	}
}

func TestBadConfigPanics(t *testing.T) {
	g := twoCliques(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Train(g, Config{Dim: 0})
}

func TestBadWalkParamsPanics(t *testing.T) {
	g := twoCliques(3)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Walks(g, 0, 1, 1, func([]graph.NodeID) {})
}

func BenchmarkTrainSmall(b *testing.B) {
	g := twoCliques(20)
	cfg := BenchConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(g, cfg)
	}
}
