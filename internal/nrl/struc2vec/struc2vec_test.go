package struc2vec

import (
	"math"
	"testing"

	"titant/internal/graph"
	"titant/internal/nrl"
	"titant/internal/txn"
)

// hubGraph builds fraud hubs (high in-degree receivers of fraud edges) and
// normal chains.
func hubGraph() *graph.Graph {
	b := graph.NewBuilder()
	// Fraud hub: users 0,1 receive fraud from many victims.
	id := 100
	for hub := 0; hub < 2; hub++ {
		for v := 0; v < 12; v++ {
			b.AddTransfer(txn.UserID(id), txn.UserID(hub), true)
			id++
		}
	}
	// Normal pairs.
	for i := 200; i < 260; i += 2 {
		b.AddTransfer(txn.UserID(i), txn.UserID(i+1), false)
		b.AddTransfer(txn.UserID(i+1), txn.UserID(i), false)
	}
	return b.Build()
}

func TestEmbeddingShapes(t *testing.T) {
	g := hubGraph()
	cfg := DefaultConfig()
	cfg.Dim = 8
	emb := Train(g, cfg)
	if emb.Len() != g.NumNodes() {
		t.Fatalf("embedded %d of %d nodes", emb.Len(), g.NumNodes())
	}
	if emb.Dim() != 8 {
		t.Fatalf("dim = %d", emb.Dim())
	}
	for _, u := range emb.Users() {
		for _, v := range emb.Lookup(u) {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatal("NaN/Inf in embedding")
			}
			if v < -1.0001 || v > 1.0001 {
				t.Fatalf("tanh latent out of range: %v", v)
			}
		}
	}
}

func TestSupervisedSeparatesHubs(t *testing.T) {
	// Fraud-hub nodes must be more similar to each other than to normal
	// nodes: the supervision pushes their latents into a common region.
	g := hubGraph()
	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.Epochs = 20
	emb := Train(g, cfg)
	hubSim := emb.Cosine(0, 1)
	var crossSim float64
	n := 0
	for i := 200; i < 210; i++ {
		crossSim += emb.Cosine(0, txn.UserID(i))
		n++
	}
	crossSim /= float64(n)
	if hubSim <= crossSim {
		t.Errorf("hub-hub cosine %.3f <= hub-normal %.3f", hubSim, crossSim)
	}
}

func TestDeterminism(t *testing.T) {
	g := hubGraph()
	cfg := DefaultConfig()
	cfg.Dim = 8
	cfg.Epochs = 3
	a := Train(g, cfg)
	b := Train(g, cfg)
	for _, u := range a.Users() {
		va, vb := a.Lookup(u), b.Lookup(u)
		for i := range va {
			if va[i] != vb[i] {
				t.Fatalf("user %d differs across runs", u)
			}
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	g := graph.NewBuilder().Build()
	emb := Train(g, DefaultConfig())
	if emb.Len() != 0 {
		t.Fatal("empty graph produced embeddings")
	}
}

func TestEdgelessNodes(t *testing.T) {
	// A graph whose only edges got dropped (self-loops) yields zero
	// embeddings but no panic.
	b := graph.NewBuilder()
	b.AddTransfer(1, 1, false)
	g := b.Build()
	emb := Train(g, DefaultConfig())
	if emb.Len() != g.NumNodes() {
		t.Fatalf("embedded %d of %d", emb.Len(), g.NumNodes())
	}
}

func TestBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Train(hubGraph(), Config{Dim: 0})
}

func TestNodeFeaturesStructural(t *testing.T) {
	g := hubGraph()
	hub, _ := g.Node(0)
	leaf, _ := g.Node(100)
	fh := nodeFeatures(g, hub)
	fl := nodeFeatures(g, leaf)
	// The hub has high in-degree; the victim leaf has out-degree only.
	if fh[1] <= fl[1] {
		t.Errorf("hub in-degree feature %v <= leaf %v", fh[1], fl[1])
	}
	if fh[5] != 1 || fl[5] != 1 {
		t.Error("bias input missing")
	}
}

func TestPosWeightChangesResult(t *testing.T) {
	g := hubGraph()
	a := Train(g, Config{Dim: 8, Rounds: 2, Epochs: 4, LearningRate: 0.05, PosWeight: 1, Seed: 1})
	b := Train(g, Config{Dim: 8, Rounds: 2, Epochs: 4, LearningRate: 0.05, PosWeight: 10, Seed: 1})
	diff := 0.0
	for _, u := range a.Users() {
		diff += 1 - nrl.CosineVec(a.Lookup(u), b.Lookup(u))
	}
	if diff == 0 {
		t.Error("PosWeight had no effect on embeddings")
	}
}

func BenchmarkTrain(b *testing.B) {
	g := hubGraph()
	cfg := DefaultConfig()
	cfg.Dim = 16
	cfg.Epochs = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Train(g, cfg)
	}
}
