// Package struc2vec implements a Structure2Vec-style supervised node
// embedding (Dai, Dai, Song, ICML 2016), the alternative NRL method the
// paper reimplements on KunPeng (Section 3.2).
//
// Node latents are computed by T rounds of mean-field message passing,
//
//	mu_v(t) = tanh(W1 x_v + W2 * mean_{u in N(v)} mu_u(t-1)),
//
// where x_v are structural node features, and the model is trained
// discriminatively: a logistic head on [mu_from; mu_to] predicts each
// edge's fraud label (the paper feeds "the fraud ground truth as the edge
// labels"). Gradients are truncated at the last message-passing round, a
// standard simplification for industrial-scale S2V training.
//
// Because the edge labels are heavily unbalanced, the supervision signal is
// dominated by honest edges; the paper observes (Table 1) that this makes
// S2V embeddings slightly weaker than unsupervised DeepWalk - a property
// this implementation reproduces mechanically rather than by hard-coding.
package struc2vec

import (
	"fmt"
	"math"

	"titant/internal/graph"
	"titant/internal/nrl"
	"titant/internal/rng"
)

// numNodeFeatures is the width of the structural feature vector x_v.
const numNodeFeatures = 6

// Config holds Structure2Vec hyperparameters.
type Config struct {
	Dim          int     // embedding dimension (paper: 32)
	Rounds       int     // mean-field iterations T
	Epochs       int     // supervised training epochs over the edges
	LearningRate float64 // SGD step
	PosWeight    float64 // weight multiplier for fraud edges (1 = none)
	Seed         uint64
}

// DefaultConfig returns the settings used by the reproduction: T=2
// mean-field rounds and plain unweighted logistic loss, which exposes the
// label-imbalance weakness the paper reports.
func DefaultConfig() Config {
	return Config{Dim: 32, Rounds: 2, Epochs: 8, LearningRate: 0.05, PosWeight: 1, Seed: 1}
}

// model holds the trainable parameters.
type model struct {
	dim int
	w1  []float64 // dim x numNodeFeatures
	w2  []float64 // dim x dim
	u   []float64 // 2*dim logistic head
	b   float64
}

func newModel(dim int, r *rng.RNG) *model {
	m := &model{
		dim: dim,
		w1:  make([]float64, dim*numNodeFeatures),
		w2:  make([]float64, dim*dim),
		u:   make([]float64, 2*dim),
	}
	scale1 := 1 / math.Sqrt(numNodeFeatures)
	for i := range m.w1 {
		m.w1[i] = (r.Float64() - 0.5) * 2 * scale1
	}
	scale2 := 1 / math.Sqrt(float64(dim))
	for i := range m.w2 {
		m.w2[i] = (r.Float64() - 0.5) * 2 * scale2
	}
	for i := range m.u {
		m.u[i] = (r.Float64() - 0.5) * 0.2
	}
	return m
}

// nodeFeatures builds x_v: log-scaled degree and weight structure.
func nodeFeatures(g *graph.Graph, v graph.NodeID) [numNodeFeatures]float64 {
	var outW, inW float64
	for _, w := range g.OutWeights(v) {
		outW += float64(w)
	}
	for _, w := range g.InWeights(v) {
		inW += float64(w)
	}
	od, id := float64(g.OutDegree(v)), float64(g.InDegree(v))
	ratio := (id + 1) / (od + 1)
	return [numNodeFeatures]float64{
		math.Log1p(od),
		math.Log1p(id),
		math.Log1p(outW),
		math.Log1p(inW),
		math.Log1p(ratio),
		1, // bias input
	}
}

// forward computes all node latents with T mean-field rounds. mu has one
// row of length dim per node; prev is scratch of the same shape.
func (m *model) forward(g *graph.Graph, feats [][numNodeFeatures]float64, rounds int) (mu [][]float64, agg [][]float64) {
	n := g.NumNodes()
	mu = alloc(n, m.dim)
	prev := alloc(n, m.dim)
	agg = alloc(n, m.dim) // last-round neighbour means, kept for backprop
	for t := 0; t < rounds; t++ {
		mu, prev = prev, mu
		for v := 0; v < n; v++ {
			a := agg[v]
			for k := range a {
				a[k] = 0
			}
			out := g.OutNeighbors(graph.NodeID(v))
			in := g.InNeighbors(graph.NodeID(v))
			deg := len(out) + len(in)
			if deg > 0 && t > 0 {
				for _, w := range out {
					for k := 0; k < m.dim; k++ {
						a[k] += prev[w][k]
					}
				}
				for _, w := range in {
					for k := 0; k < m.dim; k++ {
						a[k] += prev[w][k]
					}
				}
				inv := 1 / float64(deg)
				for k := range a {
					a[k] *= inv
				}
			}
			x := feats[v]
			row := mu[v]
			for k := 0; k < m.dim; k++ {
				z := 0.0
				for f := 0; f < numNodeFeatures; f++ {
					z += m.w1[k*numNodeFeatures+f] * x[f]
				}
				for j := 0; j < m.dim; j++ {
					z += m.w2[k*m.dim+j] * a[j]
				}
				row[k] = math.Tanh(z)
			}
		}
	}
	return mu, agg
}

func alloc(n, dim int) [][]float64 {
	flat := make([]float64, n*dim)
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*dim : (i+1)*dim]
	}
	return rows
}

// Train fits supervised embeddings on g's edges and fraud marks.
func Train(g *graph.Graph, cfg Config) *nrl.Embeddings {
	if cfg.Dim < 1 || cfg.Rounds < 1 || cfg.Epochs < 1 {
		panic(fmt.Sprintf("struc2vec: bad config %+v", cfg))
	}
	n := g.NumNodes()
	out := nrl.NewEmbeddings(cfg.Dim)
	if n == 0 {
		return out
	}
	r := rng.New(cfg.Seed)
	m := newModel(cfg.Dim, r.Split(1))

	feats := make([][numNodeFeatures]float64, n)
	for v := 0; v < n; v++ {
		feats[v] = nodeFeatures(g, graph.NodeID(v))
	}
	edges := g.Edges()
	if len(edges) == 0 {
		for v := 0; v < n; v++ {
			out.Set(g.User(graph.NodeID(v)), make([]float32, cfg.Dim))
		}
		return out
	}

	order := make([]int, len(edges))
	for i := range order {
		order[i] = i
	}
	trainRNG := r.Split(2)
	dim := cfg.Dim
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		mu, agg := m.forward(g, feats, cfg.Rounds)
		trainRNG.ShuffleInts(order)
		lr := cfg.LearningRate / (1 + 0.3*float64(epoch))
		for _, ei := range order {
			e := edges[ei]
			from, to := int(e.From), int(e.To)
			// Logistic head.
			z := m.b
			for k := 0; k < dim; k++ {
				z += m.u[k]*mu[from][k] + m.u[dim+k]*mu[to][k]
			}
			p := 1 / (1 + math.Exp(-clamp(z)))
			y := 0.0
			weight := 1.0
			if e.Fraud {
				y = 1
				weight = cfg.PosWeight
			}
			gOut := (p - y) * weight * lr
			// Gradient into the head.
			for k := 0; k < dim; k++ {
				gu := gOut * mu[from][k]
				gu2 := gOut * mu[to][k]
				// Backprop into the last tanh of both endpoint latents.
				dFrom := gOut * m.u[k] * (1 - mu[from][k]*mu[from][k])
				dTo := gOut * m.u[dim+k] * (1 - mu[to][k]*mu[to][k])
				m.u[k] -= gu
				m.u[dim+k] -= gu2
				// W1 update via the endpoints' input features.
				for f := 0; f < numNodeFeatures; f++ {
					m.w1[k*numNodeFeatures+f] -= dFrom*feats[from][f] + dTo*feats[to][f]
				}
				// W2 update via the endpoints' last-round aggregates.
				for j := 0; j < dim; j++ {
					m.w2[k*dim+j] -= dFrom*agg[from][j] + dTo*agg[to][j]
				}
			}
			m.b -= gOut
		}
	}

	// Final latents are the embeddings.
	mu, _ := m.forward(g, feats, cfg.Rounds)
	vec := make([]float32, dim)
	for v := 0; v < n; v++ {
		for k := 0; k < dim; k++ {
			vec[k] = float32(mu[v][k])
		}
		out.Set(g.User(graph.NodeID(v)), vec)
	}
	return out
}

func clamp(z float64) float64 {
	if z > 30 {
		return 30
	}
	if z < -30 {
		return -30
	}
	return z
}
