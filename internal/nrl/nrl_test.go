package nrl

import (
	"bytes"
	"math"
	"testing"

	"titant/internal/txn"
)

func TestSetLookup(t *testing.T) {
	e := NewEmbeddings(3)
	e.Set(7, []float32{1, 2, 3})
	v := e.Lookup(7)
	if v == nil || v[1] != 2 {
		t.Fatalf("Lookup = %v", v)
	}
	if e.Lookup(8) != nil {
		t.Fatal("missing user returned a vector")
	}
	if e.Len() != 1 || e.Dim() != 3 {
		t.Fatal("Len/Dim wrong")
	}
}

func TestSetCopies(t *testing.T) {
	e := NewEmbeddings(2)
	src := []float32{1, 1}
	e.Set(1, src)
	src[0] = 99
	if e.Lookup(1)[0] != 1 {
		t.Fatal("Set did not copy the vector")
	}
}

func TestSetPanicsOnDim(t *testing.T) {
	e := NewEmbeddings(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	e.Set(1, []float32{1})
}

func TestNewPanicsOnDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewEmbeddings(0)
}

func TestCosine(t *testing.T) {
	e := NewEmbeddings(2)
	e.Set(1, []float32{1, 0})
	e.Set(2, []float32{1, 0})
	e.Set(3, []float32{0, 1})
	e.Set(4, []float32{-1, 0})
	e.Set(5, []float32{0, 0})
	if c := e.Cosine(1, 2); math.Abs(c-1) > 1e-6 {
		t.Errorf("parallel cosine = %v", c)
	}
	if c := e.Cosine(1, 3); math.Abs(c) > 1e-6 {
		t.Errorf("orthogonal cosine = %v", c)
	}
	if c := e.Cosine(1, 4); math.Abs(c+1) > 1e-6 {
		t.Errorf("antiparallel cosine = %v", c)
	}
	if c := e.Cosine(1, 5); c != 0 {
		t.Errorf("zero-vector cosine = %v", c)
	}
	if c := e.Cosine(1, 99); c != 0 {
		t.Errorf("missing-user cosine = %v", c)
	}
}

func TestNearest(t *testing.T) {
	e := NewEmbeddings(2)
	e.Set(1, []float32{1, 0})
	e.Set(2, []float32{0.9, 0.1})
	e.Set(3, []float32{0, 1})
	e.Set(4, []float32{-1, -1})
	ns := e.Nearest(1, 2)
	if len(ns) != 2 {
		t.Fatalf("got %d neighbours", len(ns))
	}
	if ns[0].User != 2 {
		t.Errorf("nearest = %v, want user 2", ns[0])
	}
	if ns[0].Sim < ns[1].Sim {
		t.Error("neighbours not sorted by similarity")
	}
	if e.Nearest(99, 3) != nil {
		t.Error("Nearest for missing user != nil")
	}
}

func TestUsersSorted(t *testing.T) {
	e := NewEmbeddings(1)
	for _, u := range []txn.UserID{5, 1, 9, 3} {
		e.Set(u, []float32{1})
	}
	us := e.Users()
	for i := 1; i < len(us); i++ {
		if us[i-1] >= us[i] {
			t.Fatalf("Users not sorted: %v", us)
		}
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	e := NewEmbeddings(4)
	e.Set(1, []float32{0.5, -1, 2, 0})
	e.Set(100, []float32{9, 8, 7, 6})
	var buf bytes.Buffer
	if err := e.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEmbeddings(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dim() != 4 || got.Len() != 2 {
		t.Fatalf("decoded dim=%d len=%d", got.Dim(), got.Len())
	}
	for _, u := range []txn.UserID{1, 100} {
		a, b := e.Lookup(u), got.Lookup(u)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("user %d dim %d: %v != %v", u, i, a[i], b[i])
			}
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := ReadEmbeddings(bytes.NewReader([]byte("nope"))); err == nil {
		t.Fatal("accepted garbage")
	}
	var buf bytes.Buffer
	e := NewEmbeddings(2)
	e.Set(1, []float32{1, 2})
	_ = e.Write(&buf)
	b := buf.Bytes()
	if _, err := ReadEmbeddings(bytes.NewReader(b[:len(b)-3])); err == nil {
		t.Fatal("accepted truncated input")
	}
}

func TestCosineVecMismatched(t *testing.T) {
	if CosineVec([]float32{1}, []float32{1, 2}) != 0 {
		t.Fatal("mismatched lengths must give 0")
	}
	if CosineVec(nil, nil) != 0 {
		t.Fatal("nil vectors must give 0")
	}
}
