package pangu

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGet(t *testing.T) {
	s := open(t)
	data := []byte("hello pangu")
	if err := s.Put("a/b/c", data); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestGetMissing(t *testing.T) {
	s := open(t)
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
}

func TestPutTwiceFails(t *testing.T) {
	s := open(t)
	if err := s.Put("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("x", []byte("2")); !errors.Is(err, ErrExists) {
		t.Fatalf("err = %v, want ErrExists", err)
	}
}

func TestDeleteIdempotent(t *testing.T) {
	s := open(t)
	if err := s.Put("x", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("x"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("x"); err != nil {
		t.Fatal("second delete errored:", err)
	}
	if s.Exists("x") {
		t.Fatal("object still exists")
	}
}

func TestCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("x", []byte("important bytes")); err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte on disk.
	p := filepath.Join(dir, "x.pangu")
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xFF
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("x"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestTruncationDetected(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := s.Put("x", []byte("important bytes")); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(dir, "x.pangu")
	raw, _ := os.ReadFile(p)
	if err := os.WriteFile(p, raw[:len(raw)-4], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("x"); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestList(t *testing.T) {
	s := open(t)
	for _, n := range []string{"t/1", "t/2", "u/1"} {
		if err := s.Put(n, []byte(n)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := s.List("t/")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "t/1" || got[1] != "t/2" {
		t.Fatalf("List = %v", got)
	}
	all, _ := s.List("")
	if len(all) != 3 {
		t.Fatalf("List(\"\") = %v", all)
	}
}

func TestSize(t *testing.T) {
	s := open(t)
	if err := s.Put("x", make([]byte, 1234)); err != nil {
		t.Fatal(err)
	}
	n, err := s.Size("x")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1234 {
		t.Fatalf("Size = %d", n)
	}
	if _, err := s.Size("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatal("missing Size did not ErrNotFound")
	}
}

func TestInvalidNames(t *testing.T) {
	s := open(t)
	for _, n := range []string{"", "../escape", "/abs"} {
		if err := s.Put(n, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted", n)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	s := open(t)
	i := 0
	f := func(data []byte) bool {
		i++
		name := string(rune('a'+i%26)) + "/" + string(rune('0'+i%10)) + "-" + itoa(i)
		if err := s.Put(name, data); err != nil {
			return false
		}
		got, err := s.Get(name)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestConcurrentPuts(t *testing.T) {
	s := open(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				name := "g" + itoa(g) + "/" + itoa(i)
				if err := s.Put(name, []byte(name)); err != nil {
					errs <- err
					return
				}
				got, err := s.Get(name)
				if err != nil || string(got) != name {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	all, _ := s.List("")
	if len(all) != 160 {
		t.Fatalf("have %d objects, want 160", len(all))
	}
}
