// Package pangu implements the disk storage module of MaxCompute's
// storage & compute layer (Section 4.2, Figure 4: the paper describes
// Pangu as the module where job results are persisted). When an executor
// finishes the subtasks of a TitAnt offline job — extracted feature
// tables, collected labels, transaction-network edge lists — the results
// land here, and the T+1 publishing step reads them back out for upload
// to Ali-HBase (internal/hbase) and the Model Server bundle.
//
// It is an append-only object store: immutable blobs keyed by name, each
// persisted with a CRC32C checksum and written atomically (temp file +
// rename) so a crash can never leave a half-written visible object — the
// property a nightly pipeline needs to be safely re-runnable. Names may
// contain '/' to form directories.
package pangu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

var (
	// ErrNotFound is returned when an object does not exist.
	ErrNotFound = errors.New("pangu: object not found")
	// ErrCorrupt is returned when an object fails its checksum.
	ErrCorrupt = errors.New("pangu: object corrupt")
	// ErrExists is returned when writing over an existing object.
	ErrExists = errors.New("pangu: object already exists")
)

const (
	magic      = 0x50414E47 // "PANG"
	headerSize = 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store is a directory-backed object store. It is safe for concurrent use.
type Store struct {
	mu  sync.RWMutex
	dir string
}

// Open opens (creating if needed) a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("pangu: open %s: %w", dir, err)
	}
	return &Store{dir: dir}, nil
}

// path maps an object name to its file path, rejecting escapes.
func (s *Store) path(name string) (string, error) {
	if name == "" || strings.Contains(name, "..") || strings.HasPrefix(name, "/") {
		return "", fmt.Errorf("pangu: invalid object name %q", name)
	}
	return filepath.Join(s.dir, name+".pangu"), nil
}

// Put writes an immutable object. It fails with ErrExists if name is taken.
func (s *Store) Put(name string, data []byte) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(p); err == nil {
		return fmt.Errorf("%w: %s", ErrExists, name)
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return fmt.Errorf("pangu: mkdir for %s: %w", name, err)
	}
	buf := make([]byte, headerSize+len(data))
	binary.LittleEndian.PutUint32(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(len(data)))
	binary.LittleEndian.PutUint32(buf[8:], crc32.Checksum(data, castagnoli))
	copy(buf[headerSize:], data)
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("pangu: write %s: %w", name, err)
	}
	if err := os.Rename(tmp, p); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("pangu: commit %s: %w", name, err)
	}
	return nil
}

// Get reads an object and verifies its checksum.
func (s *Store) Get(name string) ([]byte, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	buf, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return nil, fmt.Errorf("pangu: read %s: %w", name, err)
	}
	if len(buf) < headerSize || binary.LittleEndian.Uint32(buf[0:]) != magic {
		return nil, fmt.Errorf("%w: %s (bad header)", ErrCorrupt, name)
	}
	n := binary.LittleEndian.Uint32(buf[4:])
	want := binary.LittleEndian.Uint32(buf[8:])
	data := buf[headerSize:]
	if uint32(len(data)) != n {
		return nil, fmt.Errorf("%w: %s (length %d != %d)", ErrCorrupt, name, len(data), n)
	}
	if crc32.Checksum(data, castagnoli) != want {
		return nil, fmt.Errorf("%w: %s (checksum)", ErrCorrupt, name)
	}
	return data, nil
}

// Delete removes an object (idempotent).
func (s *Store) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("pangu: delete %s: %w", name, err)
	}
	return nil
}

// Exists reports whether an object is present.
func (s *Store) Exists(name string) bool {
	p, err := s.path(name)
	if err != nil {
		return false
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, err = os.Stat(p)
	return err == nil
}

// List returns object names with the given prefix, sorted.
func (s *Store) List(prefix string) ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var names []string
	err := filepath.WalkDir(s.dir, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(p, ".pangu") {
			return nil
		}
		rel, err := filepath.Rel(s.dir, p)
		if err != nil {
			return err
		}
		name := strings.TrimSuffix(filepath.ToSlash(rel), ".pangu")
		if strings.HasPrefix(name, prefix) {
			names = append(names, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("pangu: list: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// Size returns the payload size of an object.
func (s *Store) Size(name string) (int64, error) {
	p, err := s.path(name)
	if err != nil {
		return 0, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	fi, err := os.Stat(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, fmt.Errorf("%w: %s", ErrNotFound, name)
		}
		return 0, err
	}
	return fi.Size() - headerSize, nil
}
