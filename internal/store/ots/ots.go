// Package ots implements the Open Table Service of the paper's MaxCompute
// platform (Section 4.2, Figure 4): the table that "maintains the status
// of all the instances". In the job lifecycle reproduced by
// internal/maxcompute, the scheduler registers each job instance here
// with status "running" before splitting it into subtasks, and the
// executor flips it to "terminated" once every subtask has finished —
// TitAnt's nightly feature-extraction, label-collection and
// network-construction jobs all pass through this table.
//
// It is an in-memory concurrent status table with condition-variable
// waits (clients block until an instance reaches a terminal state),
// which is exactly the role OTS plays in the paper's job lifecycle; job
// *results* are persisted separately in internal/store/pangu.
package ots

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Status is a job instance lifecycle state.
type Status int

// Instance lifecycle states, in order.
const (
	StatusPending Status = iota
	StatusRunning
	StatusTerminated
	StatusFailed
)

func (s Status) String() string {
	switch s {
	case StatusPending:
		return "pending"
	case StatusRunning:
		return "running"
	case StatusTerminated:
		return "terminated"
	case StatusFailed:
		return "failed"
	}
	return fmt.Sprintf("Status(%d)", int(s))
}

// ErrNotFound is returned for unknown instance IDs.
var ErrNotFound = errors.New("ots: instance not found")

// Instance is one registered job instance.
type Instance struct {
	ID       string
	Owner    string
	Status   Status
	Detail   string // error message or progress note
	Created  time.Time
	Updated  time.Time
	Attempts int
}

// Table is the instance-status table. The zero value is not usable; call
// NewTable.
type Table struct {
	mu   sync.Mutex
	cond *sync.Cond
	rows map[string]*Instance
	seq  int
}

// NewTable returns an empty status table.
func NewTable() *Table {
	t := &Table{rows: make(map[string]*Instance)}
	t.cond = sync.NewCond(&t.mu)
	return t
}

// Register creates a pending instance and returns its generated ID.
func (t *Table) Register(owner string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	id := fmt.Sprintf("inst-%06d", t.seq)
	now := time.Now()
	t.rows[id] = &Instance{ID: id, Owner: owner, Status: StatusPending, Created: now, Updated: now}
	t.cond.Broadcast()
	return id
}

// SetStatus transitions an instance to the given status.
func (t *Table) SetStatus(id string, s Status, detail string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.rows[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	row.Status = s
	row.Detail = detail
	row.Updated = time.Now()
	if s == StatusRunning {
		row.Attempts++
	}
	t.cond.Broadcast()
	return nil
}

// Get returns a copy of an instance row.
func (t *Table) Get(id string) (Instance, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	row, ok := t.rows[id]
	if !ok {
		return Instance{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return *row, nil
}

// List returns copies of all rows, ordered by ID, optionally filtered by
// status (pass -1 for all).
func (t *Table) List(filter Status) []Instance {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Instance, 0, len(t.rows))
	for _, row := range t.rows {
		if filter < 0 || row.Status == filter {
			out = append(out, *row)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// WaitFor blocks until the instance reaches status s (or a later terminal
// state) or the timeout expires. It returns the final observed row.
func (t *Table) WaitFor(id string, s Status, timeout time.Duration) (Instance, error) {
	deadline := time.Now().Add(timeout)
	timer := time.AfterFunc(timeout, func() {
		t.mu.Lock()
		t.cond.Broadcast()
		t.mu.Unlock()
	})
	defer timer.Stop()
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		row, ok := t.rows[id]
		if !ok {
			return Instance{}, fmt.Errorf("%w: %s", ErrNotFound, id)
		}
		if row.Status >= s {
			return *row, nil
		}
		if time.Now().After(deadline) {
			return *row, fmt.Errorf("ots: timeout waiting for %s to reach %v (now %v)", id, s, row.Status)
		}
		t.cond.Wait()
	}
}
