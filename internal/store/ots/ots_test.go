package ots

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestRegisterAndGet(t *testing.T) {
	tab := NewTable()
	id := tab.Register("sql")
	inst, err := tab.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Status != StatusPending || inst.Owner != "sql" {
		t.Fatalf("instance = %+v", inst)
	}
}

func TestUniqueIDs(t *testing.T) {
	tab := NewTable()
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := tab.Register("x")
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestLifecycle(t *testing.T) {
	tab := NewTable()
	id := tab.Register("mr")
	if err := tab.SetStatus(id, StatusRunning, ""); err != nil {
		t.Fatal(err)
	}
	if err := tab.SetStatus(id, StatusTerminated, "ok"); err != nil {
		t.Fatal(err)
	}
	inst, _ := tab.Get(id)
	if inst.Status != StatusTerminated || inst.Detail != "ok" || inst.Attempts != 1 {
		t.Fatalf("instance = %+v", inst)
	}
}

func TestUnknownInstance(t *testing.T) {
	tab := NewTable()
	if err := tab.SetStatus("nope", StatusRunning, ""); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tab.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if _, err := tab.WaitFor("nope", StatusRunning, time.Millisecond); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestListFilter(t *testing.T) {
	tab := NewTable()
	a := tab.Register("x")
	tab.Register("y")
	_ = tab.SetStatus(a, StatusRunning, "")
	if got := tab.List(StatusRunning); len(got) != 1 || got[0].ID != a {
		t.Fatalf("List(running) = %v", got)
	}
	if got := tab.List(-1); len(got) != 2 {
		t.Fatalf("List(all) = %v", got)
	}
	// Sorted by ID.
	all := tab.List(-1)
	if all[0].ID > all[1].ID {
		t.Fatal("List not sorted")
	}
}

func TestWaitForImmediate(t *testing.T) {
	tab := NewTable()
	id := tab.Register("x")
	_ = tab.SetStatus(id, StatusTerminated, "")
	inst, err := tab.WaitFor(id, StatusRunning, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Terminal state satisfies a wait for an earlier state.
	if inst.Status != StatusTerminated {
		t.Fatalf("status = %v", inst.Status)
	}
}

func TestWaitForBlocksUntilTransition(t *testing.T) {
	tab := NewTable()
	id := tab.Register("x")
	done := make(chan Instance, 1)
	go func() {
		inst, err := tab.WaitFor(id, StatusTerminated, 5*time.Second)
		if err != nil {
			t.Error(err)
		}
		done <- inst
	}()
	time.Sleep(10 * time.Millisecond)
	_ = tab.SetStatus(id, StatusRunning, "")
	time.Sleep(10 * time.Millisecond)
	_ = tab.SetStatus(id, StatusTerminated, "done")
	select {
	case inst := <-done:
		if inst.Status != StatusTerminated {
			t.Fatalf("status = %v", inst.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitFor never returned")
	}
}

func TestWaitForTimeout(t *testing.T) {
	tab := NewTable()
	id := tab.Register("x")
	start := time.Now()
	_, err := tab.WaitFor(id, StatusTerminated, 50*time.Millisecond)
	if err == nil {
		t.Fatal("no timeout error")
	}
	if time.Since(start) > 3*time.Second {
		t.Fatal("timeout wildly overshot")
	}
}

func TestConcurrentTransitions(t *testing.T) {
	tab := NewTable()
	var wg sync.WaitGroup
	ids := make([]string, 50)
	for i := range ids {
		ids[i] = tab.Register("bulk")
	}
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			_ = tab.SetStatus(id, StatusRunning, "")
			_ = tab.SetStatus(id, StatusTerminated, "")
		}(id)
	}
	wg.Wait()
	if got := tab.List(StatusTerminated); len(got) != 50 {
		t.Fatalf("%d terminated, want 50", len(got))
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusPending: "pending", StatusRunning: "running",
		StatusTerminated: "terminated", StatusFailed: "failed",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %s", s, s.String())
		}
	}
	if Status(42).String() == "" {
		t.Error("unknown status empty")
	}
}
