package hbase

// bloom is a per-segment membership filter over row keys: a point read
// probes it before binary-searching the segment's row index, so rows a
// segment has never seen cost two hash-and-mask operations instead of a
// search. Filters are rebuilt in memory whenever a segment is written or
// opened — they are derived state, never persisted — so the hash function
// only has to be stable within a process.
type bloom struct {
	bits []uint64
	mask uint64 // bit-count minus one; bit count is a power of two
	k    int    // probes per key
}

// bloomBitsPerKey sizes the filter at ~10 bits/key, which with 4 probes
// keeps the false-positive rate around 1-2%: cheap enough that a cold-row
// miss almost always skips the segment outright.
const (
	bloomBitsPerKey = 10
	bloomProbes     = 4
)

// newBloom builds a filter sized for n keys.
func newBloom(n int) *bloom {
	if n < 1 {
		n = 1
	}
	bits := uint64(64)
	for bits < uint64(n)*bloomBitsPerKey {
		bits <<= 1
	}
	return &bloom{bits: make([]uint64, bits/64), mask: bits - 1, k: bloomProbes}
}

// fnv64a is the FNV-1a hash of s; deterministic and allocation-free.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// probe derives the filter's k bit positions from one 64-bit hash by
// double hashing: h1 + i*h2, with h2 forced odd so successive probes
// cover the (power-of-two sized) bit space.
func (b *bloom) probe(s string, set bool) bool {
	h1 := fnv64a(s)
	h2 := (h1 >> 33) | 1
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) & b.mask
		word, bit := pos/64, uint64(1)<<(pos%64)
		if set {
			b.bits[word] |= bit
		} else if b.bits[word]&bit == 0 {
			return false
		}
	}
	return true
}

func (b *bloom) add(s string)      { b.probe(s, true) }
func (b *bloom) has(s string) bool { return b.probe(s, false) }
