package hbase

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"

	"titant/internal/rng"
)

func openT(t *testing.T, dir string) *Table {
	t.Helper()
	tab, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestPutGet(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	if _, err := tab.Put("zoe", "bf", "age", []byte("28"), 0); err != nil {
		t.Fatal(err)
	}
	v, ts, err := tab.Get("zoe", "bf", "age")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "28" || ts <= 0 {
		t.Fatalf("v=%q ts=%d", v, ts)
	}
}

func TestGetMissing(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	if _, _, err := tab.Get("sam", "bf", "age"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestNewestVersionWins(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	_, _ = tab.Put("zoe", "bf", "age", []byte("27"), 100)
	_, _ = tab.Put("zoe", "bf", "age", []byte("28"), 200)
	_, _ = tab.Put("zoe", "bf", "age", []byte("26"), 50)
	v, ts, err := tab.Get("zoe", "bf", "age")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "28" || ts != 200 {
		t.Fatalf("v=%q ts=%d", v, ts)
	}
	vs, err := tab.Versions("zoe", "bf", "age", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 3 || vs[0].Timestamp != 200 || vs[2].Timestamp != 50 {
		t.Fatalf("versions = %+v", vs)
	}
}

func TestDeleteMasksOlder(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	_, _ = tab.Put("zoe", "bf", "age", []byte("28"), 100)
	_, _ = tab.Delete("zoe", "bf", "age", 150)
	if _, _, err := tab.Get("zoe", "bf", "age"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted cell still live: %v", err)
	}
	// A write newer than the tombstone revives the cell.
	_, _ = tab.Put("zoe", "bf", "age", []byte("29"), 200)
	v, _, err := tab.Get("zoe", "bf", "age")
	if err != nil || string(v) != "29" {
		t.Fatalf("v=%q err=%v", v, err)
	}
}

func TestGetRow(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	_, _ = tab.Put("zoe", "bf", "age", []byte("28"), 0)
	_, _ = tab.Put("zoe", "bf", "gender", []byte("f"), 0)
	_, _ = tab.Put("zoe", "emb", "d0", []byte("0.5"), 0)
	_, _ = tab.Put("sam", "bf", "age", []byte("40"), 0)
	row, err := tab.GetRow("zoe")
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 2 || string(row["bf"]["age"]) != "28" || string(row["emb"]["d0"]) != "0.5" {
		t.Fatalf("row = %v", row)
	}
	if _, err := tab.GetRow("nobody"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestScanRange(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	for _, r := range []string{"a", "b", "c", "d"} {
		_, _ = tab.Put(r, "bf", "x", []byte(r), 0)
	}
	var got []string
	err := tab.Scan("b", "d", func(c Cell) bool {
		got = append(got, c.Row)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("scan = %v", got)
	}
	// Early stop.
	count := 0
	_ = tab.Scan("", "", func(c Cell) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop scanned %d", count)
	}
}

func TestWALRecovery(t *testing.T) {
	dir := t.TempDir()
	tab := openT(t, dir)
	_, _ = tab.Put("zoe", "bf", "age", []byte("28"), 123)
	// Simulate crash: do NOT flush or close cleanly; just sync WAL (write
	// already synced by Put) and drop the handle.
	_ = tab.log.f.Close()

	tab2 := openT(t, dir)
	defer tab2.Close()
	v, ts, err := tab2.Get("zoe", "bf", "age")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "28" || ts != 123 {
		t.Fatalf("recovered v=%q ts=%d", v, ts)
	}
}

func TestWALTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	tab := openT(t, dir)
	_, _ = tab.Put("a", "f", "q", []byte("1"), 10)
	_, _ = tab.Put("b", "f", "q", []byte("2"), 20)
	_ = tab.log.f.Close()
	// Truncate the WAL mid-record.
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	tab2 := openT(t, dir)
	defer tab2.Close()
	// First record survives; second (torn) is dropped.
	if v, _, err := tab2.Get("a", "f", "q"); err != nil || string(v) != "1" {
		t.Fatalf("first record lost: %v", err)
	}
	if _, _, err := tab2.Get("b", "f", "q"); !errors.Is(err, ErrNotFound) {
		t.Fatal("torn record resurrected")
	}
}

func TestFlushAndReopen(t *testing.T) {
	dir := t.TempDir()
	tab := openT(t, dir)
	for i := 0; i < 100; i++ {
		_, _ = tab.Put(fmt.Sprintf("row-%03d", i), "bf", "v", []byte{byte(i)}, 0)
	}
	if err := tab.Flush(); err != nil {
		t.Fatal(err)
	}
	st := tab.Stats()
	if st.MemCells != 0 || st.Segments != 1 || st.SegCells != 100 || st.WALBytes != 0 {
		t.Fatalf("stats after flush: %+v", st)
	}
	if err := tab.Close(); err != nil {
		t.Fatal(err)
	}
	tab2 := openT(t, dir)
	defer tab2.Close()
	for i := 0; i < 100; i++ {
		v, _, err := tab2.Get(fmt.Sprintf("row-%03d", i), "bf", "v")
		if err != nil || v[0] != byte(i) {
			t.Fatalf("row %d: %v", i, err)
		}
	}
}

func TestCompactionEnforcesMaxVersions(t *testing.T) {
	dir := t.TempDir()
	tab, err := Open(Config{Dir: dir, MaxVersions: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	for ts := int64(1); ts <= 5; ts++ {
		_, _ = tab.Put("zoe", "bf", "age", []byte{byte(ts)}, ts)
		_ = tab.Flush() // one segment per version
	}
	if err := tab.Compact(); err != nil {
		t.Fatal(err)
	}
	st := tab.Stats()
	if st.Segments != 1 {
		t.Fatalf("segments after compact: %d", st.Segments)
	}
	vs, err := tab.Versions("zoe", "bf", "age", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0].Timestamp != 5 || vs[1].Timestamp != 4 {
		t.Fatalf("versions after compact: %+v", vs)
	}
}

func TestCompactionDropsTombstones(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	_, _ = tab.Put("zoe", "bf", "age", []byte("1"), 10)
	_ = tab.Flush()
	_, _ = tab.Delete("zoe", "bf", "age", 20)
	_ = tab.Flush()
	if err := tab.Compact(); err != nil {
		t.Fatal(err)
	}
	st := tab.Stats()
	if st.SegCells != 0 {
		t.Fatalf("tombstoned cells survived compaction: %+v", st)
	}
}

func TestAutoFlushAndCompact(t *testing.T) {
	tab, err := Open(Config{Dir: t.TempDir(), FlushThreshold: 10, CompactThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()
	for i := 0; i < 100; i++ {
		_, _ = tab.Put(fmt.Sprintf("r%02d", i), "f", "q", []byte{1}, 0)
	}
	st := tab.Stats()
	if st.Segments >= 4 {
		t.Fatalf("auto compaction never ran: %+v", st)
	}
	// All rows still readable.
	for i := 0; i < 100; i++ {
		if _, _, err := tab.Get(fmt.Sprintf("r%02d", i), "f", "q"); err != nil {
			t.Fatalf("row %d lost: %v", i, err)
		}
	}
}

func TestValidation(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	if _, err := tab.Put("", "f", "q", nil, 0); err == nil {
		t.Error("empty row accepted")
	}
	if _, err := tab.Put("r", "f\x00x", "q", nil, 0); err == nil {
		t.Error("NUL family accepted")
	}
	if _, err := tab.Put("r", "f", "", nil, 0); err == nil {
		t.Error("empty qualifier accepted")
	}
}

func TestMonotonicTimestamps(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	var last int64
	for i := 0; i < 100; i++ {
		ts, err := tab.Put("r", "f", "q", []byte{1}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if ts <= last {
			t.Fatalf("timestamp %d not monotone after %d", ts, last)
		}
		last = ts
	}
}

func TestGetAfterPutProperty(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	r := rng.New(1)
	f := func(val []byte, rowN, famN, qualN uint8) bool {
		row := fmt.Sprintf("row-%d", rowN%32)
		fam := fmt.Sprintf("f%d", famN%4)
		qual := fmt.Sprintf("q%d", qualN%8)
		ts, err := tab.Put(row, fam, qual, val, 0)
		if err != nil {
			return false
		}
		got, gotTS, err := tab.Get(row, fam, qual)
		if err != nil || gotTS != ts {
			return false
		}
		// Random interleaved flushes must not change reads.
		if r.Bool(0.2) {
			if err := tab.Flush(); err != nil {
				return false
			}
			got, _, err = tab.Get(row, fam, qual)
			if err != nil {
				return false
			}
		}
		return bytes.Equal(got, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentReadWrite(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				row := fmt.Sprintf("g%d-r%d", g, i)
				if _, err := tab.Put(row, "f", "q", []byte{byte(i)}, 0); err != nil {
					errCh <- err
					return
				}
				if v, _, err := tab.Get(row, "f", "q"); err != nil || v[0] != byte(i) {
					errCh <- fmt.Errorf("read own write failed: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

func TestSegmentCorruptionDetected(t *testing.T) {
	dir := t.TempDir()
	tab := openT(t, dir)
	_, _ = tab.Put("zoe", "bf", "age", []byte("28"), 0)
	_ = tab.Flush()
	_ = tab.Close()
	// Corrupt the segment payload.
	entries, _ := os.ReadDir(dir)
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".hfile" {
			p := filepath.Join(dir, e.Name())
			raw, _ := os.ReadFile(p)
			raw[len(raw)-1] ^= 0xFF
			_ = os.WriteFile(p, raw, 0o644)
		}
	}
	if _, err := Open(Config{Dir: dir}); err == nil {
		t.Fatal("corrupt segment accepted")
	}
}

func BenchmarkPut(b *testing.B) {
	tab, err := Open(Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer tab.Close()
	val := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = tab.Put(fmt.Sprintf("r%d", i%10000), "f", "q", val, 0)
	}
}

func BenchmarkGet(b *testing.B) {
	tab, err := Open(Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer tab.Close()
	val := make([]byte, 128)
	for i := 0; i < 10000; i++ {
		_, _ = tab.Put(fmt.Sprintf("r%d", i), "f", "q", val, 0)
	}
	_ = tab.Flush()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, _ = tab.Get(fmt.Sprintf("r%d", i%10000), "f", "q")
	}
}
