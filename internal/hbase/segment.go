package hbase

import (
	"encoding/binary"
	"fmt"
	"os"
	"sort"

	"titant/internal/logio"
)

// segment is one immutable sorted file of cells (the HFile analogue).
// Entries are ordered by (key asc, timestamp desc) so that the newest
// version of a cell is encountered first. Alongside the cells, every
// segment carries two derived point-read structures, rebuilt in memory
// at write and open time:
//
//   - rows: a sparse row index — one span per distinct row — so a point
//     read binary-searches rows, not cells, and lands directly on the
//     row's cell range;
//   - filter: a bloom filter over row keys, so reads for rows the
//     segment has never seen skip it without searching at all.
type segment struct {
	id     uint64
	path   string
	cells  []Cell    // sorted (key asc, ts desc)
	rows   []rowSpan // one entry per distinct row, ascending
	filter *bloom
}

// rowSpan is one distinct row's contiguous cell range within a segment.
type rowSpan struct {
	row        string
	start, end int32 // cells[start:end]
}

const segMagic = 0x48464C45 // "HFLE"

// sortCells orders cells by (key asc, ts desc).
func sortCells(cells []Cell) {
	sort.SliceStable(cells, func(i, j int) bool {
		ki, kj := cells[i].Key(), cells[j].Key()
		if ki != kj {
			return ki < kj
		}
		return cells[i].Timestamp > cells[j].Timestamp
	})
}

// newSegment wraps sorted cells with their row index and bloom filter.
func newSegment(id uint64, path string, cells []Cell) *segment {
	s := &segment{id: id, path: path, cells: cells}
	for i := 0; i < len(cells); {
		j := i + 1
		for j < len(cells) && cells[j].Row == cells[i].Row {
			j++
		}
		s.rows = append(s.rows, rowSpan{row: cells[i].Row, start: int32(i), end: int32(j)})
		i = j
	}
	s.filter = newBloom(len(s.rows))
	for i := range s.rows {
		s.filter.add(s.rows[i].row)
	}
	return s
}

// writeSegment persists sorted cells as a new segment file.
func writeSegment(path string, id uint64, cells []Cell) (*segment, error) {
	body := make([]byte, 0, 64*len(cells))
	for i := range cells {
		body = encodeCell(body, &cells[i])
	}
	buf := make([]byte, 16, 16+len(body))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], segMagic)
	le.PutUint32(buf[4:], uint32(len(cells)))
	le.PutUint32(buf[8:], logio.Checksum(body))
	buf = append(buf, body...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return nil, fmt.Errorf("hbase: write segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("hbase: commit segment: %w", err)
	}
	return newSegment(id, path, cells), nil
}

// openSegment loads and verifies a segment file.
func openSegment(path string, id uint64) (*segment, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hbase: read segment: %w", err)
	}
	if len(buf) < 16 || binary.LittleEndian.Uint32(buf[0:]) != segMagic {
		return nil, fmt.Errorf("hbase: segment %s: bad header", path)
	}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	wantCRC := binary.LittleEndian.Uint32(buf[8:])
	body := buf[16:]
	if logio.Checksum(body) != wantCRC {
		return nil, fmt.Errorf("hbase: segment %s: checksum mismatch", path)
	}
	cells := make([]Cell, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		c, used, err := decodeCell(body[off:])
		if err != nil {
			return nil, fmt.Errorf("hbase: segment %s cell %d: %w", path, i, err)
		}
		cells = append(cells, c)
		off += used
	}
	return newSegment(id, path, cells), nil
}

// rowRange returns the half-open cell range of a row, going through the
// bloom filter first so absent rows usually cost two hashes, and rows
// that do exist cost one binary search over distinct rows (not cells).
func (s *segment) rowRange(row string) (lo, hi int, ok bool) {
	if !s.filter.has(row) {
		return 0, 0, false
	}
	i := sort.Search(len(s.rows), func(k int) bool { return s.rows[k].row >= row })
	if i < len(s.rows) && s.rows[i].row == row {
		return int(s.rows[i].start), int(s.rows[i].end), true
	}
	return 0, 0, false
}

// versions appends (to dst) all versions of one cell in this segment,
// newest first.
func (s *segment) versions(row, family, qualifier string, dst []Cell) []Cell {
	lo, hi, ok := s.rowRange(row)
	if !ok {
		return dst
	}
	return appendColRun(s.cells, lo, hi, family, qualifier, dst)
}

// scanRows appends every cell whose row is in [startRow, endRow) to dst
// (endRow "" means unbounded), walking the row index.
func (s *segment) scanRows(startRow, endRow string, dst []Cell) []Cell {
	i := sort.Search(len(s.rows), func(k int) bool { return s.rows[k].row >= startRow })
	for ; i < len(s.rows); i++ {
		sp := &s.rows[i]
		if endRow != "" && sp.row >= endRow {
			break
		}
		dst = append(dst, s.cells[sp.start:sp.end]...)
	}
	return dst
}
