package hbase

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"sort"
)

// segment is one immutable sorted file of cells (the HFile analogue).
// Entries are ordered by (key asc, timestamp desc) so that the newest
// version of a cell is encountered first.
type segment struct {
	id    uint64
	path  string
	cells []Cell // sorted
}

const segMagic = 0x48464C45 // "HFLE"

// sortCells orders cells by (key asc, ts desc).
func sortCells(cells []Cell) {
	sort.SliceStable(cells, func(i, j int) bool {
		ki, kj := cells[i].Key(), cells[j].Key()
		if ki != kj {
			return ki < kj
		}
		return cells[i].Timestamp > cells[j].Timestamp
	})
}

// writeSegment persists sorted cells as a new segment file.
func writeSegment(path string, id uint64, cells []Cell) (*segment, error) {
	body := make([]byte, 0, 64*len(cells))
	for i := range cells {
		body = encodeCell(body, &cells[i])
	}
	buf := make([]byte, 16, 16+len(body))
	le := binary.LittleEndian
	le.PutUint32(buf[0:], segMagic)
	le.PutUint32(buf[4:], uint32(len(cells)))
	le.PutUint32(buf[8:], crc32.Checksum(body, walTable))
	buf = append(buf, body...)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return nil, fmt.Errorf("hbase: write segment: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return nil, fmt.Errorf("hbase: commit segment: %w", err)
	}
	return &segment{id: id, path: path, cells: cells}, nil
}

// openSegment loads and verifies a segment file.
func openSegment(path string, id uint64) (*segment, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("hbase: read segment: %w", err)
	}
	if len(buf) < 16 || binary.LittleEndian.Uint32(buf[0:]) != segMagic {
		return nil, fmt.Errorf("hbase: segment %s: bad header", path)
	}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	wantCRC := binary.LittleEndian.Uint32(buf[8:])
	body := buf[16:]
	if crc32.Checksum(body, walTable) != wantCRC {
		return nil, fmt.Errorf("hbase: segment %s: checksum mismatch", path)
	}
	cells := make([]Cell, 0, n)
	off := 0
	for i := 0; i < n; i++ {
		c, used, err := decodeCell(body[off:])
		if err != nil {
			return nil, fmt.Errorf("hbase: segment %s cell %d: %w", path, i, err)
		}
		cells = append(cells, c)
		off += used
	}
	return &segment{id: id, path: path, cells: cells}, nil
}

// firstIndex returns the index of the first cell with the given key, or
// where it would be inserted.
func (s *segment) firstIndex(key string) int {
	return sort.Search(len(s.cells), func(i int) bool {
		return s.cells[i].Key() >= key
	})
}

// versions appends (to dst) all versions of key in this segment, newest
// first.
func (s *segment) versions(key string, dst []Cell) []Cell {
	for i := s.firstIndex(key); i < len(s.cells) && s.cells[i].Key() == key; i++ {
		dst = append(dst, s.cells[i])
	}
	return dst
}

// scanRange appends cells with key in [startKey, endKey) to dst.
func (s *segment) scanRange(startKey, endKey string, dst []Cell) []Cell {
	for i := s.firstIndex(startKey); i < len(s.cells); i++ {
		if endKey != "" && s.cells[i].Key() >= endKey {
			break
		}
		dst = append(dst, s.cells[i])
	}
	return dst
}
