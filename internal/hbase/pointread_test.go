package hbase

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"titant/internal/rng"
)

// modelStore is a naive reference implementation of version resolution:
// every cell version is kept, and reads replay resolveVersions semantics
// from first principles.
type modelStore struct {
	cells map[string][]Cell // key -> all versions, unordered
}

func newModel() *modelStore { return &modelStore{cells: make(map[string][]Cell)} }

func (m *modelStore) apply(c Cell) {
	k := c.Key()
	m.cells[k] = append(m.cells[k], c)
}

// newestLive returns the newest unmasked value of a cell, if any.
func (m *modelStore) newestLive(row, fam, qual string) (Cell, bool) {
	var tombTS int64 = -1 << 62
	for _, c := range m.cells[cellKey(row, fam, qual)] {
		if c.Tombstone && c.Timestamp > tombTS {
			tombTS = c.Timestamp
		}
	}
	var best Cell
	found := false
	for _, c := range m.cells[cellKey(row, fam, qual)] {
		if c.Tombstone || c.Timestamp <= tombTS {
			continue
		}
		if !found || c.Timestamp > best.Timestamp {
			best = c
			found = true
		}
	}
	return best, found
}

// liveRow returns fam -> qual -> newest live value for a row.
func (m *modelStore) liveRow(row string) map[string]map[string][]byte {
	out := make(map[string]map[string][]byte)
	seen := make(map[string]bool)
	for k := range m.cells {
		r, f, q, err := splitKey(k)
		if err != nil || r != row || seen[k] {
			continue
		}
		seen[k] = true
		if c, ok := m.newestLive(r, f, q); ok {
			if out[f] == nil {
				out[f] = make(map[string][]byte)
			}
			out[f][q] = c.Value
		}
	}
	return out
}

// TestPointReadOracle drives a randomized workload of puts, deletes,
// flushes and compactions, checking Get, GetRow, VisitRow and GetRows
// against the reference model after every mutation batch. This pins the
// new point-read structures (row-indexed MemStore, bloom-gated segment
// row index, k-way column merge) to the old scan semantics.
func TestPointReadOracle(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	model := newModel()
	r := rng.New(42)
	rows := []string{"u:1", "u:2", "u:77", "u:400", "zzz"}
	fams := []string{"bf", "emb"}
	quals := []string{"profile", "stats", "vec"}
	ts := int64(0)

	check := func(step int) {
		t.Helper()
		for _, row := range rows {
			want := model.liveRow(row)
			got, err := tab.GetRow(row)
			if len(want) == 0 {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("step %d row %s: want ErrNotFound, got %v / %v", step, row, got, err)
				}
			} else {
				if err != nil {
					t.Fatalf("step %d row %s: %v", step, row, err)
				}
				if len(got) != len(want) {
					t.Fatalf("step %d row %s: got %v want %v", step, row, got, want)
				}
				for f, qs := range want {
					for q, v := range qs {
						if string(got[f][q]) != string(v) {
							t.Fatalf("step %d %s/%s/%s: got %q want %q", step, row, f, q, got[f][q], v)
						}
						// Point Get must agree cell by cell.
						gv, _, err := tab.Get(row, f, q)
						if err != nil || string(gv) != string(v) {
							t.Fatalf("step %d Get %s/%s/%s: got %q/%v want %q", step, row, f, q, gv, err, v)
						}
					}
				}
				// The visitor must deliver exactly the live cells.
				n := 0
				found, err := tab.VisitRow(row, func(c *Cell) bool {
					if string(want[c.Family][c.Qualifier]) != string(c.Value) {
						t.Fatalf("step %d visit %s/%s/%s: got %q want %q",
							step, row, c.Family, c.Qualifier, c.Value, want[c.Family][c.Qualifier])
					}
					n++
					return true
				})
				if err != nil || !found {
					t.Fatalf("step %d VisitRow %s: found=%v err=%v", step, row, found, err)
				}
				total := 0
				for _, qs := range want {
					total += len(qs)
				}
				if n != total {
					t.Fatalf("step %d VisitRow %s: visited %d cells, want %d", step, row, n, total)
				}
			}
		}
		// Batched variant agrees with the per-row one.
		batch, err := tab.GetRows(rows)
		if err != nil {
			t.Fatal(err)
		}
		for i, row := range rows {
			want := model.liveRow(row)
			if len(want) == 0 {
				if batch[i] != nil {
					t.Fatalf("step %d GetRows[%s]: want nil, got %v", step, row, batch[i])
				}
				continue
			}
			for f, qs := range want {
				for q, v := range qs {
					if string(batch[i][f][q]) != string(v) {
						t.Fatalf("step %d GetRows[%s] %s/%s: got %q want %q", step, row, f, q, batch[i][f][q], v)
					}
				}
			}
		}
	}

	for step := 0; step < 400; step++ {
		row := rows[r.Intn(len(rows))]
		fam := fams[r.Intn(len(fams))]
		qual := quals[r.Intn(len(quals))]
		ts++
		if r.Bool(0.15) {
			if _, err := tab.Delete(row, fam, qual, ts); err != nil {
				t.Fatal(err)
			}
			model.apply(Cell{Row: row, Family: fam, Qualifier: qual, Timestamp: ts, Tombstone: true})
		} else {
			val := []byte(fmt.Sprintf("%s/%s/%s@%d", row, fam, qual, ts))
			if _, err := tab.Put(row, fam, qual, val, ts); err != nil {
				t.Fatal(err)
			}
			model.apply(Cell{Row: row, Family: fam, Qualifier: qual, Value: val, Timestamp: ts})
		}
		if r.Bool(0.1) {
			if err := tab.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if r.Bool(0.03) {
			if err := tab.Compact(); err != nil {
				t.Fatal(err)
			}
			// Compaction drops masked versions; mirror that in the model so
			// MaxVersions bookkeeping cannot diverge (live values within the
			// version limit are unaffected, which is what reads observe).
		}
		if step%17 == 0 {
			check(step)
		}
	}
	check(400)
}

// TestPointReadsUnderFlushCompact hammers the point-read surface from
// reader goroutines while the main goroutine flushes and compacts,
// swapping MemStore and segment structures underneath. Run under -race
// (the CI race job covers this package) it proves the new read
// structures stay consistent across segment swaps: every reader must see
// each key's latest accepted value at all times.
func TestPointReadsUnderFlushCompact(t *testing.T) {
	tab, err := Open(Config{Dir: t.TempDir(), FlushThreshold: 64, CompactThreshold: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer tab.Close()

	const keys = 32
	rowOf := func(i int) string { return fmt.Sprintf("u:%03d", i) }
	for i := 0; i < keys; i++ {
		if _, err := tab.Put(rowOf(i), "bf", "v", []byte{byte(i), 0}, int64(1+i)); err != nil {
			t.Fatal(err)
		}
	}

	var stop atomic.Bool
	var fail atomic.Value // first error string
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g + 1))
			rows := make([]string, 4)
			for !stop.Load() {
				i := r.Intn(keys)
				switch r.Intn(3) {
				case 0:
					v, _, err := tab.Get(rowOf(i), "bf", "v")
					if err != nil || v[0] != byte(i) {
						fail.Store(fmt.Sprintf("Get %d: v=%v err=%v", i, v, err))
						return
					}
				case 1:
					found, err := tab.VisitRow(rowOf(i), func(c *Cell) bool {
						if c.Qualifier == "v" && c.Value[0] != byte(i) {
							fail.Store(fmt.Sprintf("VisitRow %d: v=%v", i, c.Value))
							return false
						}
						return true
					})
					if err != nil || !found {
						fail.Store(fmt.Sprintf("VisitRow %d: found=%v err=%v", i, found, err))
						return
					}
				default:
					for k := range rows {
						rows[k] = rowOf((i + k) % keys)
					}
					maps, err := tab.GetRows(rows)
					if err != nil {
						fail.Store(fmt.Sprintf("GetRows: %v", err))
						return
					}
					for k := range rows {
						want := byte((i + k) % keys)
						if m := maps[k]; m == nil || m["bf"]["v"][0] != want {
							fail.Store(fmt.Sprintf("GetRows[%s]: %v", rows[k], m))
							return
						}
					}
				}
			}
		}(g)
	}

	// Writer + structure churn: overwrite keys (same first byte, changing
	// second byte) and force flushes and compactions throughout.
	for round := 0; round < 60 && fail.Load() == nil; round++ {
		for i := 0; i < keys; i++ {
			if _, err := tab.Put(rowOf(i), "bf", "v", []byte{byte(i), byte(round)}, 0); err != nil {
				t.Fatal(err)
			}
		}
		if round%2 == 0 {
			if err := tab.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		if round%5 == 0 {
			if err := tab.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	stop.Store(true)
	wg.Wait()
	if msg := fail.Load(); msg != nil {
		t.Fatal(msg)
	}
}

// TestTombstoneTimestampTie pins the masking rule on the degenerate
// case of a value and a tombstone sharing one timestamp (possible with
// caller-assigned versions, e.g. an Uploader wave): the tombstone wins,
// deterministically, on the point path AND the scan path — including
// when the pair straddles a segment boundary in either order.
func TestTombstoneTimestampTie(t *testing.T) {
	for _, order := range []string{"put-first", "delete-first", "same-source-put-first", "same-source-delete-first"} {
		t.Run(order, func(t *testing.T) {
			tab := openT(t, t.TempDir())
			defer tab.Close()
			switch order {
			case "put-first": // pair straddles a segment boundary
				_, _ = tab.Put("u1", "f", "q", []byte("v"), 5)
				_ = tab.Flush()
				_, _ = tab.Delete("u1", "f", "q", 5)
			case "delete-first":
				_, _ = tab.Delete("u1", "f", "q", 5)
				_ = tab.Flush()
				_, _ = tab.Put("u1", "f", "q", []byte("v"), 5)
			case "same-source-put-first": // pair inside one source: the
				// tombstone can sort behind the value in the run
				_, _ = tab.Put("u1", "f", "q", []byte("v"), 5)
				_, _ = tab.Delete("u1", "f", "q", 5)
			case "same-source-delete-first":
				_, _ = tab.Delete("u1", "f", "q", 5)
				_, _ = tab.Put("u1", "f", "q", []byte("v"), 5)
				_ = tab.Flush() // and as one flushed segment run
			}
			if _, _, err := tab.Get("u1", "f", "q"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Get: tombstone lost the tie: %v", err)
			}
			if _, err := tab.GetRow("u1"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("GetRow: tombstone lost the tie: %v", err)
			}
			seen := 0
			_ = tab.Scan("u1", "u2", func(c Cell) bool { seen++; return true })
			if seen != 0 {
				t.Fatalf("Scan emitted %d cells for a masked key", seen)
			}
			if _, err := tab.Versions("u1", "f", "q", 0); !errors.Is(err, ErrNotFound) {
				t.Fatalf("Versions: tombstone lost the tie: %v", err)
			}
		})
	}
}

// TestMultiGetMissingRows pins GetRows' contract: absent rows come back
// nil, present rows populated, in input order.
func TestMultiGetMissingRows(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	_, _ = tab.Put("a", "f", "q", []byte("1"), 0)
	_, _ = tab.Put("c", "f", "q", []byte("3"), 0)
	_ = tab.Flush()
	out, err := tab.GetRows([]string{"a", "b", "c", "a"})
	if err != nil {
		t.Fatal(err)
	}
	if string(out[0]["f"]["q"]) != "1" || out[1] != nil || string(out[2]["f"]["q"]) != "3" || string(out[3]["f"]["q"]) != "1" {
		t.Fatalf("GetRows = %v", out)
	}
}

// TestMissPathAllocationFree pins the cold-start satellite: a Get or
// VisitRow for a row the store has never seen must not allocate — no
// error strings, no maps, nothing.
func TestMissPathAllocationFree(t *testing.T) {
	tab := openT(t, t.TempDir())
	defer tab.Close()
	for i := 0; i < 1000; i++ {
		_, _ = tab.Put(fmt.Sprintf("u:%d", i), "bf", "v", []byte{1}, 0)
	}
	_ = tab.Flush()
	if n := testing.AllocsPerRun(100, func() {
		if _, _, err := tab.Get("u:999999", "bf", "v"); err != ErrNotFound {
			t.Fatal("expected bare sentinel")
		}
	}); n != 0 {
		t.Fatalf("Get miss allocates %.1f/op", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		found, err := tab.VisitRow("u:999999", func(c *Cell) bool { return true })
		if found || err != nil {
			t.Fatal("unexpected visit")
		}
	}); n != 0 {
		t.Fatalf("VisitRow miss allocates %.1f/op", n)
	}
}

// TestBloomFilter checks the filter contract: no false negatives ever,
// and a usefully low false-positive rate at the designed load.
func TestBloomFilter(t *testing.T) {
	const n = 10000
	b := newBloom(n)
	for i := 0; i < n; i++ {
		b.add(fmt.Sprintf("u:%d", i))
	}
	for i := 0; i < n; i++ {
		if !b.has(fmt.Sprintf("u:%d", i)) {
			t.Fatalf("false negative for u:%d", i)
		}
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.has(fmt.Sprintf("absent:%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false-positive rate %.3f too high", rate)
	}
}

// BenchmarkMultiGet measures the amortised per-row cost of the batched
// point read against per-row GetRow calls.
func BenchmarkMultiGet(b *testing.B) {
	tab, err := Open(Config{Dir: b.TempDir()})
	if err != nil {
		b.Fatal(err)
	}
	defer tab.Close()
	val := make([]byte, 64)
	for i := 0; i < 10000; i++ {
		_, _ = tab.Put(fmt.Sprintf("u:%d", i), "bf", "v", val, 0)
	}
	_ = tab.Flush()
	rows := make([]string, 256)
	for i := range rows {
		rows[i] = fmt.Sprintf("u:%d", i*37%10000)
	}
	b.Run("VisitRows", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			if err := tab.VisitRows(rows, func(_ int, c *Cell) bool { n++; return true }); err != nil || n != len(rows) {
				b.Fatal(err, n)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(rows)), "ns/row")
	})
	b.Run("GetRowLoop", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, r := range rows {
				if _, err := tab.GetRow(r); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*len(rows)), "ns/row")
	})
}
