// Package hbase implements the Ali-HBase analogue of Section 4.4: the
// column-family store serving online feature reads for the Model Server.
//
// Data is organised exactly as in the paper's Figure 7 - row keys index
// users, column families group "basic features" and "user node embeddings",
// qualifiers name individual values, and every write is versioned by
// timestamp ("the data is uploaded to Ali-HBase by the version of date
// time"). The engine is a log-structured merge tree in the Bigtable
// tradition: a write-ahead log for durability, an in-memory MemStore,
// immutable sorted HFile segments flushed from it, and major compaction
// that merges segments while enforcing the per-cell version limit.
//
// The read path is point-read first: the MemStore is indexed by row, every
// segment carries a bloom filter plus a sparse row index over its rows,
// and Get / VisitRow / VisitRows resolve a row by merging the (few)
// per-source runs that actually contain it — O(1) in the size of the
// store, allocation-free on the visitor variants. Scan remains the
// general range iterator for offline jobs.
package hbase

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrNotFound is returned when a cell (or row) has no live value. It is
// returned as-is — not wrapped with per-call detail — so a miss costs the
// caller nothing: cold-start reads of unknown users are on the serving
// hot path, and building a fmt.Errorf string for every one of them would
// allocate just to be discarded.
var ErrNotFound = errors.New("hbase: not found")

// Config controls a table's engine.
type Config struct {
	Dir              string // data directory
	MaxVersions      int    // versions retained per cell at compaction (default 3)
	FlushThreshold   int    // MemStore cells that trigger an automatic flush (default 65536)
	CompactThreshold int    // segment count that triggers automatic compaction (default 6)
}

func (c *Config) fillDefaults() {
	if c.MaxVersions == 0 {
		c.MaxVersions = 3
	}
	if c.FlushThreshold == 0 {
		c.FlushThreshold = 1 << 16
	}
	if c.CompactThreshold == 0 {
		c.CompactThreshold = 6
	}
}

// Table is a column-family table. Safe for concurrent use.
type Table struct {
	mu       sync.RWMutex
	cfg      Config
	mem      *memTable
	segments []*segment // oldest first
	log      *wal
	nextSeg  uint64
	lastTS   int64
}

// Open opens (creating if necessary) a table rooted at cfg.Dir, replaying
// the WAL and loading existing segments.
func Open(cfg Config) (*Table, error) {
	cfg.fillDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("hbase: empty data directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("hbase: mkdir: %w", err)
	}
	t := &Table{cfg: cfg, mem: newMemTable()}

	// Load segments in id order.
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("hbase: readdir: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".hfile") {
			id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".hfile"), 10, 64)
			if err != nil {
				continue
			}
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		seg, err := openSegment(t.segPath(id), id)
		if err != nil {
			return nil, err
		}
		t.segments = append(t.segments, seg)
		if id >= t.nextSeg {
			t.nextSeg = id + 1
		}
		for i := range seg.cells {
			if seg.cells[i].Timestamp > t.lastTS {
				t.lastTS = seg.cells[i].Timestamp
			}
		}
	}

	// Replay WAL into the MemStore.
	log, cells, err := openWAL(filepath.Join(cfg.Dir, "wal.log"))
	if err != nil {
		return nil, err
	}
	t.log = log
	for i := range cells {
		t.mem.apply(&cells[i])
		if cells[i].Timestamp > t.lastTS {
			t.lastTS = cells[i].Timestamp
		}
	}
	return t, nil
}

func (t *Table) segPath(id uint64) string {
	return filepath.Join(t.cfg.Dir, fmt.Sprintf("seg-%08d.hfile", id))
}

// nextTimestamp returns a strictly monotone logical timestamp seeded by the
// wall clock.
func (t *Table) nextTimestamp() int64 {
	ts := time.Now().UnixNano()
	if ts <= t.lastTS {
		ts = t.lastTS + 1
	}
	t.lastTS = ts
	return ts
}

// Put writes a value. ts <= 0 assigns the next logical timestamp. The
// assigned version is returned.
func (t *Table) Put(row, family, qualifier string, value []byte, ts int64) (int64, error) {
	return t.write(Cell{Row: row, Family: family, Qualifier: qualifier, Value: value, Timestamp: ts})
}

// Delete writes a tombstone that masks all versions at or below its
// timestamp.
func (t *Table) Delete(row, family, qualifier string, ts int64) (int64, error) {
	return t.write(Cell{Row: row, Family: family, Qualifier: qualifier, Timestamp: ts, Tombstone: true})
}

func (t *Table) write(c Cell) (int64, error) {
	if err := validateName("row", c.Row); err != nil {
		return 0, err
	}
	if err := validateName("family", c.Family); err != nil {
		return 0, err
	}
	if err := validateName("qualifier", c.Qualifier); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c.Timestamp <= 0 {
		c.Timestamp = t.nextTimestamp()
	} else if c.Timestamp > t.lastTS {
		t.lastTS = c.Timestamp
	}
	if err := t.log.append(&c); err != nil {
		return 0, err
	}
	if err := t.log.sync(); err != nil {
		return 0, err
	}
	t.mem.apply(&c)
	if t.mem.count >= t.cfg.FlushThreshold {
		if err := t.flushLocked(); err != nil {
			return 0, err
		}
	}
	return c.Timestamp, nil
}

// Get returns the newest live value of a cell. A miss returns ErrNotFound
// itself (check with == or errors.Is); the miss path allocates nothing.
func (t *Table) Get(row, family, qualifier string) ([]byte, int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c := t.pointGet(row, family, qualifier)
	if c == nil || c.Tombstone {
		return nil, 0, ErrNotFound
	}
	return c.Value, c.Timestamp, nil
}

// pointGet returns the newest version (live or tombstone) of one cell
// without touching any unrelated key: a row-map lookup in the MemStore
// plus a bloom-gated row-index search per segment. On equal timestamps a
// tombstone wins, matching resolveVersions' masking rule.
func (t *Table) pointGet(row, family, qualifier string) *Cell {
	var best *Cell
	consider := func(c *Cell) {
		if best == nil || c.Timestamp > best.Timestamp ||
			(c.Timestamp == best.Timestamp && c.Tombstone && !best.Tombstone) {
			best = c
		}
	}
	if mr := t.mem.rows[row]; mr != nil {
		if i, ok := findCol(mr.cells, 0, len(mr.cells), family, qualifier); ok {
			consider(newestInRun(mr.cells, i, len(mr.cells)))
		}
	}
	for _, seg := range t.segments {
		lo, hi, ok := seg.rowRange(row)
		if !ok {
			continue
		}
		if i, ok := findCol(seg.cells, lo, hi, family, qualifier); ok {
			consider(newestInRun(seg.cells, i, hi))
		}
	}
	return best
}

// Versions returns up to max versions of a cell, newest first, excluding
// values masked by tombstones.
func (t *Table) Versions(row, family, qualifier string, max int) ([]Cell, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var all []Cell
	if mr := t.mem.rows[row]; mr != nil {
		all = appendColRun(mr.cells, 0, len(mr.cells), family, qualifier, all)
	}
	for _, seg := range t.segments {
		all = seg.versions(row, family, qualifier, all)
	}
	live := resolveVersions(all)
	if max > 0 && len(live) > max {
		live = live[:max]
	}
	if len(live) == 0 {
		return nil, ErrNotFound
	}
	return live, nil
}

// resolveVersions sorts versions newest-first and drops tombstones plus
// anything at or below the newest tombstone. The tombstone bound is
// computed over the whole set first, so a value tying a tombstone's
// timestamp is masked regardless of input order — the same deterministic
// rule pointGet and the row visitor apply, keeping the scan and point
// read paths in exact agreement.
func resolveVersions(all []Cell) []Cell {
	sortCells(all)
	var tombTS int64 = -1 << 62
	for _, c := range all {
		if c.Tombstone && c.Timestamp > tombTS {
			tombTS = c.Timestamp
		}
	}
	var live []Cell
	for _, c := range all {
		if !c.Tombstone && c.Timestamp > tombTS {
			live = append(live, c)
		}
	}
	return live
}

// maxRowSources bounds the usual number of per-row cursor sources (the
// MemStore plus every segment) so a point read's cursor array lives on
// the stack: the default CompactThreshold caps live segments well below
// this before compaction folds them into one.
const maxRowSources = 8

// rowCursor walks one source's cells for a single row, in within-row
// order (column asc, timestamp desc).
type rowCursor struct {
	cells []Cell
	i     int
}

// VisitRow streams the newest live version of every cell in a row, in
// column order, to fn; fn returns false to stop early. The returned bool
// reports whether the row has any live cell. This is the zero-copy hot
// path under the Model Server's fetch: no nested maps are built and no
// cells are copied — the *Cell (and its Value) alias the store's internal
// state and must not be retained or mutated after fn returns.
func (t *Table) VisitRow(row string, fn func(c *Cell) bool) (bool, error) {
	if err := validateName("row", row); err != nil {
		return false, err
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.visitRowLocked(row, fn), nil
}

// visitRowLocked merges the row's per-source runs column by column. Each
// source contributes its cells for this row as one sorted run; for every
// column, the globally newest version decides (tombstone wins timestamp
// ties, masking the column).
func (t *Table) visitRowLocked(row string, fn func(c *Cell) bool) bool {
	var stack [maxRowSources]rowCursor
	curs := stack[:0]
	if mr := t.mem.rows[row]; mr != nil && len(mr.cells) > 0 {
		curs = append(curs, rowCursor{cells: mr.cells})
	}
	for _, seg := range t.segments {
		if lo, hi, ok := seg.rowRange(row); ok {
			curs = append(curs, rowCursor{cells: seg.cells[lo:hi]})
		}
	}
	found := false
	for {
		// Find the smallest not-yet-consumed column across sources.
		var minF, minQ string
		first := true
		for ci := range curs {
			cu := &curs[ci]
			if cu.i >= len(cu.cells) {
				continue
			}
			c := &cu.cells[cu.i]
			if first || compareCol(c.Family, c.Qualifier, minF, minQ) < 0 {
				minF, minQ = c.Family, c.Qualifier
				first = false
			}
		}
		if first {
			return found
		}
		// Pick the newest version of that column and advance every source
		// past it.
		var best *Cell
		for ci := range curs {
			cu := &curs[ci]
			if cu.i >= len(cu.cells) {
				continue
			}
			if c := &cu.cells[cu.i]; compareCol(c.Family, c.Qualifier, minF, minQ) != 0 {
				continue
			}
			c := newestInRun(cu.cells, cu.i, len(cu.cells))
			if best == nil || c.Timestamp > best.Timestamp ||
				(c.Timestamp == best.Timestamp && c.Tombstone && !best.Tombstone) {
				best = c
			}
			for cu.i < len(cu.cells) {
				n := &cu.cells[cu.i]
				if compareCol(n.Family, n.Qualifier, minF, minQ) != 0 {
					break
				}
				cu.i++
			}
		}
		if !best.Tombstone {
			found = true
			if !fn(best) {
				return true
			}
		}
	}
}

// VisitRows is the batched point read ("multi-get"): it resolves every
// row under a single lock round, calling fn with the row's index for each
// newest live cell, in row order then column order. fn returning false
// aborts the whole batch. Like VisitRow, cells alias internal state and
// must not be retained. Rows with no live cells simply produce no calls;
// callers that care track which indices they saw.
func (t *Table) VisitRows(rows []string, fn func(i int, c *Cell) bool) error {
	for _, row := range rows {
		if err := validateName("row", row); err != nil {
			return err
		}
	}
	t.mu.RLock()
	defer t.mu.RUnlock()
	stop := false
	for i, row := range rows {
		t.visitRowLocked(row, func(c *Cell) bool {
			if !fn(i, c) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return nil
		}
	}
	return nil
}

// GetRow returns the newest live value of every cell in a row, as
// family -> qualifier -> value. A missing (or fully masked) row returns
// ErrNotFound itself; no error string is built for the miss. Values alias
// the store's internal buffers, as before. Hot paths that do not need the
// nested maps should use VisitRow.
func (t *Table) GetRow(row string) (map[string]map[string][]byte, error) {
	out := make(map[string]map[string][]byte)
	found, err := t.VisitRow(row, func(c *Cell) bool {
		fam, ok := out[c.Family]
		if !ok {
			fam = make(map[string][]byte)
			out[c.Family] = fam
		}
		fam[c.Qualifier] = c.Value
		return true
	})
	if err != nil {
		return nil, err
	}
	if !found {
		return nil, ErrNotFound
	}
	return out, nil
}

// GetRows is the nested-map variant of VisitRows: one lock round for the
// whole row set, with absent rows returned as nil entries rather than
// errors (a batch's cold-start users are expected, not exceptional).
func (t *Table) GetRows(rows []string) ([]map[string]map[string][]byte, error) {
	out := make([]map[string]map[string][]byte, len(rows))
	err := t.VisitRows(rows, func(i int, c *Cell) bool {
		m := out[i]
		if m == nil {
			m = make(map[string]map[string][]byte)
			out[i] = m
		}
		fam, ok := m[c.Family]
		if !ok {
			fam = make(map[string][]byte)
			m[c.Family] = fam
		}
		fam[c.Qualifier] = c.Value
		return true
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Scan streams the newest live version of every cell whose row is in
// [startRow, endRow) (endRow "" means unbounded) in key order. fn returns
// false to stop early. This is the offline/range path; point lookups
// should use Get or VisitRow.
func (t *Table) Scan(startRow, endRow string, fn func(c Cell) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	inRange := func(row string) bool {
		return row >= startRow && (endRow == "" || row < endRow)
	}
	var all []Cell
	for row, mr := range t.mem.rows {
		if inRange(row) {
			all = append(all, mr.cells...)
		}
	}
	for _, seg := range t.segments {
		all = seg.scanRows(startRow, endRow, all)
	}
	sortCells(all)
	// Emit the newest live version per key.
	i := 0
	for i < len(all) {
		j := i
		key := all[i].Key()
		for j < len(all) && all[j].Key() == key {
			j++
		}
		if live := resolveVersions(all[i:j]); len(live) > 0 {
			if !fn(live[0]) {
				return nil
			}
		}
		i = j
	}
	return nil
}

// Flush persists the MemStore as a new segment and truncates the WAL.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Table) flushLocked() error {
	if t.mem.count == 0 {
		return nil
	}
	cells := make([]Cell, 0, t.mem.count)
	for _, mr := range t.mem.rows {
		cells = append(cells, mr.cells...)
	}
	sortCells(cells)
	id := t.nextSeg
	seg, err := writeSegment(t.segPath(id), id, cells)
	if err != nil {
		return err
	}
	t.nextSeg++
	t.segments = append(t.segments, seg)
	t.mem = newMemTable()
	if err := t.log.reset(); err != nil {
		return err
	}
	if len(t.segments) >= t.cfg.CompactThreshold {
		return t.compactLocked()
	}
	return nil
}

// Compact merges all segments into one, enforcing MaxVersions and dropping
// tombstones and the versions they mask (major compaction).
func (t *Table) Compact() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.flushLocked(); err != nil {
		return err
	}
	return t.compactLocked()
}

func (t *Table) compactLocked() error {
	if len(t.segments) <= 1 && t.mem.count == 0 {
		return nil
	}
	var all []Cell
	for _, seg := range t.segments {
		all = append(all, seg.cells...)
	}
	for _, mr := range t.mem.rows {
		all = append(all, mr.cells...)
	}
	sortCells(all)
	var merged []Cell
	i := 0
	for i < len(all) {
		j := i
		key := all[i].Key()
		for j < len(all) && all[j].Key() == key {
			j++
		}
		live := resolveVersions(all[i:j])
		if len(live) > t.cfg.MaxVersions {
			live = live[:t.cfg.MaxVersions]
		}
		merged = append(merged, live...)
		i = j
	}
	id := t.nextSeg
	seg, err := writeSegment(t.segPath(id), id, merged)
	if err != nil {
		return err
	}
	t.nextSeg++
	old := t.segments
	t.segments = []*segment{seg}
	t.mem = newMemTable()
	if err := t.log.reset(); err != nil {
		return err
	}
	for _, s := range old {
		_ = os.Remove(s.path)
	}
	return nil
}

// Stats reports engine state.
type Stats struct {
	MemCells int
	Segments int
	SegCells int
	WALBytes int64
}

// Stats returns current engine statistics.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{MemCells: t.mem.count, Segments: len(t.segments), WALBytes: t.log.len}
	for _, seg := range t.segments {
		s.SegCells += len(seg.cells)
	}
	return s
}

// Close flushes and releases the table.
func (t *Table) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.flushLocked(); err != nil {
		t.log.close()
		return err
	}
	return t.log.close()
}
