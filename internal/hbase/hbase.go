// Package hbase implements the Ali-HBase analogue of Section 4.4: the
// column-family store serving online feature reads for the Model Server.
//
// Data is organised exactly as in the paper's Figure 7 - row keys index
// users, column families group "basic features" and "user node embeddings",
// qualifiers name individual values, and every write is versioned by
// timestamp ("the data is uploaded to Ali-HBase by the version of date
// time"). The engine is a log-structured merge tree in the Bigtable
// tradition: a write-ahead log for durability, an in-memory MemStore,
// immutable sorted HFile segments flushed from it, and major compaction
// that merges segments while enforcing the per-cell version limit.
package hbase

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrNotFound is returned when a cell has no live value.
var ErrNotFound = errors.New("hbase: not found")

// Config controls a table's engine.
type Config struct {
	Dir              string // data directory
	MaxVersions      int    // versions retained per cell at compaction (default 3)
	FlushThreshold   int    // MemStore cells that trigger an automatic flush (default 65536)
	CompactThreshold int    // segment count that triggers automatic compaction (default 6)
}

func (c *Config) fillDefaults() {
	if c.MaxVersions == 0 {
		c.MaxVersions = 3
	}
	if c.FlushThreshold == 0 {
		c.FlushThreshold = 1 << 16
	}
	if c.CompactThreshold == 0 {
		c.CompactThreshold = 6
	}
}

// Table is a column-family table. Safe for concurrent use.
type Table struct {
	mu       sync.RWMutex
	cfg      Config
	mem      map[string][]Cell // key -> versions, newest first
	memCount int
	segments []*segment // oldest first
	log      *wal
	nextSeg  uint64
	lastTS   int64
}

// Open opens (creating if necessary) a table rooted at cfg.Dir, replaying
// the WAL and loading existing segments.
func Open(cfg Config) (*Table, error) {
	cfg.fillDefaults()
	if cfg.Dir == "" {
		return nil, fmt.Errorf("hbase: empty data directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("hbase: mkdir: %w", err)
	}
	t := &Table{cfg: cfg, mem: make(map[string][]Cell)}

	// Load segments in id order.
	entries, err := os.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("hbase: readdir: %w", err)
	}
	var ids []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && strings.HasSuffix(name, ".hfile") {
			id, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".hfile"), 10, 64)
			if err != nil {
				continue
			}
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		seg, err := openSegment(t.segPath(id), id)
		if err != nil {
			return nil, err
		}
		t.segments = append(t.segments, seg)
		if id >= t.nextSeg {
			t.nextSeg = id + 1
		}
		for i := range seg.cells {
			if seg.cells[i].Timestamp > t.lastTS {
				t.lastTS = seg.cells[i].Timestamp
			}
		}
	}

	// Replay WAL into the MemStore.
	log, cells, err := openWAL(filepath.Join(cfg.Dir, "wal.log"))
	if err != nil {
		return nil, err
	}
	t.log = log
	for i := range cells {
		t.applyMem(&cells[i])
		if cells[i].Timestamp > t.lastTS {
			t.lastTS = cells[i].Timestamp
		}
	}
	return t, nil
}

func (t *Table) segPath(id uint64) string {
	return filepath.Join(t.cfg.Dir, fmt.Sprintf("seg-%08d.hfile", id))
}

// nextTimestamp returns a strictly monotone logical timestamp seeded by the
// wall clock.
func (t *Table) nextTimestamp() int64 {
	ts := time.Now().UnixNano()
	if ts <= t.lastTS {
		ts = t.lastTS + 1
	}
	t.lastTS = ts
	return ts
}

func (t *Table) applyMem(c *Cell) {
	key := c.Key()
	vs := t.mem[key]
	// Insert keeping newest-first order (appends are usually newest).
	pos := sort.Search(len(vs), func(i int) bool { return vs[i].Timestamp <= c.Timestamp })
	vs = append(vs, Cell{})
	copy(vs[pos+1:], vs[pos:])
	vs[pos] = *c
	t.mem[key] = vs
	t.memCount++
}

// Put writes a value. ts <= 0 assigns the next logical timestamp. The
// assigned version is returned.
func (t *Table) Put(row, family, qualifier string, value []byte, ts int64) (int64, error) {
	return t.write(Cell{Row: row, Family: family, Qualifier: qualifier, Value: value, Timestamp: ts})
}

// Delete writes a tombstone that masks all versions at or below its
// timestamp.
func (t *Table) Delete(row, family, qualifier string, ts int64) (int64, error) {
	return t.write(Cell{Row: row, Family: family, Qualifier: qualifier, Timestamp: ts, Tombstone: true})
}

func (t *Table) write(c Cell) (int64, error) {
	if err := validateName("row", c.Row); err != nil {
		return 0, err
	}
	if err := validateName("family", c.Family); err != nil {
		return 0, err
	}
	if err := validateName("qualifier", c.Qualifier); err != nil {
		return 0, err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if c.Timestamp <= 0 {
		c.Timestamp = t.nextTimestamp()
	} else if c.Timestamp > t.lastTS {
		t.lastTS = c.Timestamp
	}
	if err := t.log.append(&c); err != nil {
		return 0, err
	}
	if err := t.log.sync(); err != nil {
		return 0, err
	}
	t.applyMem(&c)
	if t.memCount >= t.cfg.FlushThreshold {
		if err := t.flushLocked(); err != nil {
			return 0, err
		}
	}
	return c.Timestamp, nil
}

// Get returns the newest live value of a cell.
func (t *Table) Get(row, family, qualifier string) ([]byte, int64, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	c, ok := t.newest(cellKey(row, family, qualifier))
	if !ok || c.Tombstone {
		return nil, 0, fmt.Errorf("%w: %s/%s/%s", ErrNotFound, row, family, qualifier)
	}
	return c.Value, c.Timestamp, nil
}

// newest returns the highest-timestamp version of key across MemStore and
// segments.
func (t *Table) newest(key string) (Cell, bool) {
	var best Cell
	found := false
	if vs := t.mem[key]; len(vs) > 0 {
		best = vs[0]
		found = true
	}
	for _, seg := range t.segments {
		i := seg.firstIndex(key)
		if i < len(seg.cells) && seg.cells[i].Key() == key {
			if !found || seg.cells[i].Timestamp > best.Timestamp {
				best = seg.cells[i]
				found = true
			}
		}
	}
	return best, found
}

// Versions returns up to max versions of a cell, newest first, excluding
// values masked by tombstones.
func (t *Table) Versions(row, family, qualifier string, max int) ([]Cell, error) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	key := cellKey(row, family, qualifier)
	var all []Cell
	all = append(all, t.mem[key]...)
	for _, seg := range t.segments {
		all = seg.versions(key, all)
	}
	live := resolveVersions(all)
	if max > 0 && len(live) > max {
		live = live[:max]
	}
	if len(live) == 0 {
		return nil, fmt.Errorf("%w: %s/%s/%s", ErrNotFound, row, family, qualifier)
	}
	return live, nil
}

// resolveVersions sorts versions newest-first and drops tombstones plus
// anything at or below the newest tombstone.
func resolveVersions(all []Cell) []Cell {
	sortCells(all)
	var live []Cell
	var tombTS int64 = -1 << 62
	for _, c := range all {
		if c.Tombstone {
			if c.Timestamp > tombTS {
				tombTS = c.Timestamp
			}
			continue
		}
		if c.Timestamp > tombTS {
			live = append(live, c)
		}
	}
	return live
}

// GetRow returns the newest live value of every cell in a row, as
// family -> qualifier -> value.
func (t *Table) GetRow(row string) (map[string]map[string][]byte, error) {
	if err := validateName("row", row); err != nil {
		return nil, err
	}
	out := make(map[string]map[string][]byte)
	err := t.Scan(row, row+"\x01", func(c Cell) bool {
		fam, ok := out[c.Family]
		if !ok {
			fam = make(map[string][]byte)
			out[c.Family] = fam
		}
		fam[c.Qualifier] = c.Value
		return true
	})
	if err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%w: row %s", ErrNotFound, row)
	}
	return out, nil
}

// Scan streams the newest live version of every cell whose row is in
// [startRow, endRow) (endRow "" means unbounded) in key order. fn returns
// false to stop early.
func (t *Table) Scan(startRow, endRow string, fn func(c Cell) bool) error {
	t.mu.RLock()
	defer t.mu.RUnlock()
	startKey := startRow // row prefix compares correctly against full keys
	endKey := endRow
	var all []Cell
	for key, vs := range t.mem {
		if key >= startKey && (endKey == "" || key < endKey) {
			all = append(all, vs...)
		}
	}
	for _, seg := range t.segments {
		all = seg.scanRange(startKey, endKey, all)
	}
	sortCells(all)
	// Emit the newest live version per key.
	i := 0
	for i < len(all) {
		j := i
		key := all[i].Key()
		for j < len(all) && all[j].Key() == key {
			j++
		}
		if live := resolveVersions(all[i:j]); len(live) > 0 {
			if !fn(live[0]) {
				return nil
			}
		}
		i = j
	}
	return nil
}

// Flush persists the MemStore as a new segment and truncates the WAL.
func (t *Table) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Table) flushLocked() error {
	if t.memCount == 0 {
		return nil
	}
	cells := make([]Cell, 0, t.memCount)
	for _, vs := range t.mem {
		cells = append(cells, vs...)
	}
	sortCells(cells)
	id := t.nextSeg
	seg, err := writeSegment(t.segPath(id), id, cells)
	if err != nil {
		return err
	}
	t.nextSeg++
	t.segments = append(t.segments, seg)
	t.mem = make(map[string][]Cell)
	t.memCount = 0
	if err := t.log.reset(); err != nil {
		return err
	}
	if len(t.segments) >= t.cfg.CompactThreshold {
		return t.compactLocked()
	}
	return nil
}

// Compact merges all segments into one, enforcing MaxVersions and dropping
// tombstones and the versions they mask (major compaction).
func (t *Table) Compact() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.flushLocked(); err != nil {
		return err
	}
	return t.compactLocked()
}

func (t *Table) compactLocked() error {
	if len(t.segments) <= 1 && t.memCount == 0 {
		return nil
	}
	var all []Cell
	for _, seg := range t.segments {
		all = append(all, seg.cells...)
	}
	for _, vs := range t.mem {
		all = append(all, vs...)
	}
	sortCells(all)
	var merged []Cell
	i := 0
	for i < len(all) {
		j := i
		key := all[i].Key()
		for j < len(all) && all[j].Key() == key {
			j++
		}
		live := resolveVersions(all[i:j])
		if len(live) > t.cfg.MaxVersions {
			live = live[:t.cfg.MaxVersions]
		}
		merged = append(merged, live...)
		i = j
	}
	id := t.nextSeg
	seg, err := writeSegment(t.segPath(id), id, merged)
	if err != nil {
		return err
	}
	t.nextSeg++
	old := t.segments
	t.segments = []*segment{seg}
	t.mem = make(map[string][]Cell)
	t.memCount = 0
	if err := t.log.reset(); err != nil {
		return err
	}
	for _, s := range old {
		_ = os.Remove(s.path)
	}
	return nil
}

// Stats reports engine state.
type Stats struct {
	MemCells int
	Segments int
	SegCells int
	WALBytes int64
}

// Stats returns current engine statistics.
func (t *Table) Stats() Stats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	s := Stats{MemCells: t.memCount, Segments: len(t.segments), WALBytes: t.log.len}
	for _, seg := range t.segments {
		s.SegCells += len(seg.cells)
	}
	return s
}

// Close flushes and releases the table.
func (t *Table) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.flushLocked(); err != nil {
		t.log.close()
		return err
	}
	return t.log.close()
}
