package hbase

import "sort"

// memTable is the row-scoped MemStore index. Cells are grouped by row —
// rows maps a row key to that row's cells — so a point read touches
// exactly one map entry instead of walking every key in the store, and a
// row visit iterates only the row's own cells.
type memTable struct {
	rows  map[string]*memRow
	count int
}

func newMemTable() *memTable {
	return &memTable{rows: make(map[string]*memRow)}
}

// memRow holds one row's MemStore cells sorted by (family asc, qualifier
// asc, timestamp desc) — the same within-row order segment files use
// (the \x00 separator sorts below any legal name byte, so tuple order
// and encoded-key order agree), which lets point reads merge MemStore
// and segment runs with one cursor each.
type memRow struct {
	cells []Cell
}

// compareCol orders column coordinates by (family, qualifier).
func compareCol(f1, q1, f2, q2 string) int {
	if f1 != f2 {
		if f1 < f2 {
			return -1
		}
		return 1
	}
	if q1 != q2 {
		if q1 < q2 {
			return -1
		}
		return 1
	}
	return 0
}

// apply inserts a cell, keeping the row's within-row order.
func (m *memTable) apply(c *Cell) {
	mr := m.rows[c.Row]
	if mr == nil {
		mr = &memRow{}
		m.rows[c.Row] = mr
	}
	mr.insert(c)
	m.count++
}

func (mr *memRow) insert(c *Cell) {
	pos := sort.Search(len(mr.cells), func(i int) bool {
		o := &mr.cells[i]
		if d := compareCol(o.Family, o.Qualifier, c.Family, c.Qualifier); d != 0 {
			return d > 0
		}
		return o.Timestamp <= c.Timestamp
	})
	mr.cells = append(mr.cells, Cell{})
	copy(mr.cells[pos+1:], mr.cells[pos:])
	mr.cells[pos] = *c
}

// newestInRun returns the effective newest cell of the column starting
// at cells[i] (within bound hi): among the leading cells that share the
// newest timestamp, a tombstone wins — the deterministic masking rule —
// so an equal-timestamp delete cannot hide behind a value that happens
// to sort first in the same source.
func newestInRun(cells []Cell, i, hi int) *Cell {
	c := &cells[i]
	for j := i + 1; j < hi; j++ {
		n := &cells[j]
		if n.Timestamp != c.Timestamp || compareCol(n.Family, n.Qualifier, c.Family, c.Qualifier) != 0 {
			break
		}
		if n.Tombstone {
			c = n
		}
	}
	return c
}

// appendColRun appends every version of one column in cells[lo:hi)
// (newest first, by within-row order) to dst.
func appendColRun(cells []Cell, lo, hi int, family, qualifier string, dst []Cell) []Cell {
	i, ok := findCol(cells, lo, hi, family, qualifier)
	if !ok {
		return dst
	}
	for ; i < hi; i++ {
		c := &cells[i]
		if compareCol(c.Family, c.Qualifier, family, qualifier) != 0 {
			break
		}
		dst = append(dst, *c)
	}
	return dst
}

// findCol returns the index of the first cell matching (family,
// qualifier) in cells[lo:hi) — the newest version, since within-row
// order is timestamp-descending — and whether one exists.
func findCol(cells []Cell, lo, hi int, family, qualifier string) (int, bool) {
	i := lo + sort.Search(hi-lo, func(k int) bool {
		c := &cells[lo+k]
		return compareCol(c.Family, c.Qualifier, family, qualifier) >= 0
	})
	if i < hi {
		c := &cells[i]
		if compareCol(c.Family, c.Qualifier, family, qualifier) == 0 {
			return i, true
		}
	}
	return i, false
}
