package hbase

import (
	"encoding/binary"
	"fmt"
	"strings"
)

// Cell identifies one versioned value in the store: row key, column family,
// qualifier (the paper's Figure 7 shows e.g. row "Zoe", family "basic
// features", qualifier "age").
type Cell struct {
	Row       string
	Family    string
	Qualifier string
	Value     []byte
	Timestamp int64 // version; larger is newer
	Tombstone bool
}

// Key returns the sort key of the cell's coordinate (excludes version).
// The separator \x00 may not appear in row/family/qualifier.
func (c *Cell) Key() string {
	return cellKey(c.Row, c.Family, c.Qualifier)
}

func cellKey(row, family, qualifier string) string {
	return row + "\x00" + family + "\x00" + qualifier
}

func splitKey(key string) (row, family, qualifier string, err error) {
	parts := strings.SplitN(key, "\x00", 3)
	if len(parts) != 3 {
		return "", "", "", fmt.Errorf("hbase: malformed key %q", key)
	}
	return parts[0], parts[1], parts[2], nil
}

func validateName(kind, s string) error {
	if s == "" {
		return fmt.Errorf("hbase: empty %s", kind)
	}
	if strings.ContainsRune(s, '\x00') {
		return fmt.Errorf("hbase: %s %q contains NUL", kind, s)
	}
	return nil
}

// cellHeaderSize is the fixed prefix of an encoded cell: three u16 name
// lengths, a u32 value length, an i64 timestamp and a u8 flag byte.
const cellHeaderSize = 19

// encodeCell appends the binary encoding of a cell to buf and returns it.
func encodeCell(buf []byte, c *Cell) []byte {
	var hdr [cellHeaderSize]byte
	le := binary.LittleEndian
	le.PutUint16(hdr[0:], uint16(len(c.Row)))
	le.PutUint16(hdr[2:], uint16(len(c.Family)))
	le.PutUint16(hdr[4:], uint16(len(c.Qualifier)))
	le.PutUint32(hdr[6:], uint32(len(c.Value)))
	le.PutUint64(hdr[10:], uint64(c.Timestamp))
	if c.Tombstone {
		hdr[18] = 1
	}
	buf = append(buf, hdr[:]...)
	buf = append(buf, c.Row...)
	buf = append(buf, c.Family...)
	buf = append(buf, c.Qualifier...)
	buf = append(buf, c.Value...)
	return buf
}

// decodeCell reads one cell from data, returning the cell and bytes consumed.
func decodeCell(data []byte) (Cell, int, error) {
	if len(data) < cellHeaderSize {
		return Cell{}, 0, fmt.Errorf("hbase: truncated cell header (%d bytes)", len(data))
	}
	le := binary.LittleEndian
	rl := int(le.Uint16(data[0:]))
	fl := int(le.Uint16(data[2:]))
	ql := int(le.Uint16(data[4:]))
	vl := int(le.Uint32(data[6:]))
	ts := int64(le.Uint64(data[10:]))
	tomb := data[18] == 1
	total := cellHeaderSize + rl + fl + ql + vl
	if len(data) < total {
		return Cell{}, 0, fmt.Errorf("hbase: truncated cell body (want %d, have %d)", total, len(data))
	}
	p := cellHeaderSize
	c := Cell{
		Row:       string(data[p : p+rl]),
		Family:    string(data[p+rl : p+rl+fl]),
		Qualifier: string(data[p+rl+fl : p+rl+fl+ql]),
		Timestamp: ts,
		Tombstone: tomb,
	}
	if vl > 0 {
		c.Value = append([]byte(nil), data[p+rl+fl+ql:total]...)
	}
	return c, total, nil
}
