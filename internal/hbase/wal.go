package hbase

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"os"
)

// wal is the write-ahead log: every mutation is appended (with a CRC) and
// fsync-ordered before it touches the MemStore, so an unflushed MemStore is
// recoverable after a crash. The log is truncated after each successful
// flush to an HFile.
type wal struct {
	f   *os.File
	w   *bufio.Writer
	len int64
}

var walTable = crc32.MakeTable(crc32.Castagnoli)

func openWAL(path string) (*wal, []Cell, error) {
	// Replay any existing log first.
	cells, err := replayWAL(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("hbase: open wal: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("hbase: stat wal: %w", err)
	}
	return &wal{f: f, w: bufio.NewWriterSize(f, 1<<16), len: fi.Size()}, cells, nil
}

// replayWAL reads every intact record; a torn tail (partial last record,
// e.g. after a crash) is tolerated and ignored.
func replayWAL(path string) ([]Cell, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("hbase: read wal: %w", err)
	}
	var cells []Cell
	off := 0
	for off+8 <= len(data) {
		le := binary.LittleEndian
		n := int(le.Uint32(data[off:]))
		crc := le.Uint32(data[off+4:])
		if off+8+n > len(data) {
			break // torn tail
		}
		payload := data[off+8 : off+8+n]
		if crc32.Checksum(payload, walTable) != crc {
			break // corrupt tail; stop replay here
		}
		c, used, err := decodeCell(payload)
		if err != nil || used != n {
			break
		}
		cells = append(cells, c)
		off += 8 + n
	}
	return cells, nil
}

// append logs one cell.
func (l *wal) append(c *Cell) error {
	payload := encodeCell(nil, c)
	var hdr [8]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:], uint32(len(payload)))
	le.PutUint32(hdr[4:], crc32.Checksum(payload, walTable))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return fmt.Errorf("hbase: wal append: %w", err)
	}
	if _, err := l.w.Write(payload); err != nil {
		return fmt.Errorf("hbase: wal append: %w", err)
	}
	l.len += int64(8 + len(payload))
	return nil
}

// sync flushes buffered records to the OS.
func (l *wal) sync() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("hbase: wal sync: %w", err)
	}
	return nil
}

// reset truncates the log (called after a successful MemStore flush).
func (l *wal) reset() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("hbase: wal truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("hbase: wal seek: %w", err)
	}
	l.len = 0
	l.w.Reset(l.f)
	return nil
}

func (l *wal) close() error {
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
