package hbase

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"

	"titant/internal/logio"
)

// wal is the write-ahead log: every mutation is appended (with a CRC) and
// fsync-ordered before it touches the MemStore, so an unflushed MemStore is
// recoverable after a crash. The log is truncated after each successful
// flush to an HFile. Framing is the shared logio format, the same one the
// ingest event log uses.
type wal struct {
	f   *os.File
	w   *bufio.Writer
	fw  *logio.Writer
	len int64
}

func openWAL(path string) (*wal, []Cell, error) {
	// Replay any existing log first.
	cells, clean, err := replayWAL(path)
	if err != nil {
		return nil, nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("hbase: open wal: %w", err)
	}
	// Drop any torn tail before appending: O_APPEND after a crash would
	// otherwise leave the garbage wedged mid-file, permanently ending every
	// future replay at that point even though valid records follow it.
	if err := f.Truncate(clean); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("hbase: truncate wal tail: %w", err)
	}
	if _, err := f.Seek(clean, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("hbase: seek wal: %w", err)
	}
	w := &wal{f: f, w: bufio.NewWriterSize(f, 1<<16), len: clean}
	w.fw = logio.NewWriter(w.w)
	return w, cells, nil
}

// replayWAL streams every intact record from the log without materialising
// the file; a torn tail (partial or corrupt last record, e.g. after a
// crash) is tolerated and ignored. Returns the recovered cells and the
// clean byte length the writer should resume at.
func replayWAL(path string) ([]Cell, int64, error) {
	f, err := os.Open(path)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, 0, nil
		}
		return nil, 0, fmt.Errorf("hbase: open wal for replay: %w", err)
	}
	defer f.Close()
	var cells []Cell
	res, err := logio.Scan(f, func(payload []byte) error {
		c, used, err := decodeCell(payload)
		if err != nil || used != len(payload) {
			// The frame is CRC-intact but not a cell this version wrote:
			// treat it like a torn tail, as the byte-slice replay did.
			return logio.ErrStop
		}
		cells = append(cells, c)
		return nil
	})
	if err != nil {
		return nil, 0, fmt.Errorf("hbase: replay wal: %w", err)
	}
	return cells, res.Clean, nil
}

// append logs one cell.
func (l *wal) append(c *Cell) error {
	payload := encodeCell(nil, c)
	n, err := l.fw.Append(payload)
	if err != nil {
		return fmt.Errorf("hbase: wal append: %w", err)
	}
	l.len += int64(n)
	return nil
}

// sync flushes buffered records to the OS.
func (l *wal) sync() error {
	if err := l.w.Flush(); err != nil {
		return fmt.Errorf("hbase: wal sync: %w", err)
	}
	return nil
}

// reset truncates the log (called after a successful MemStore flush).
func (l *wal) reset() error {
	if err := l.w.Flush(); err != nil {
		return err
	}
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("hbase: wal truncate: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("hbase: wal seek: %w", err)
	}
	l.len = 0
	l.w.Reset(l.f)
	return nil
}

func (l *wal) close() error {
	if err := l.w.Flush(); err != nil {
		l.f.Close()
		return err
	}
	return l.f.Close()
}
