package graph

import (
	"testing"
	"testing/quick"

	"titant/internal/rng"
	"titant/internal/txn"
)

// star builds the paper's Figure 2 scenario: one fraudster receiving
// transfers from several victims.
func star(victims int) *Graph {
	b := NewBuilder()
	for i := 1; i <= victims; i++ {
		b.AddTransfer(txn.UserID(i), txn.UserID(0), true)
	}
	return b.Build()
}

func TestStarTopology(t *testing.T) {
	g := star(4)
	if g.NumNodes() != 5 || g.NumEdges() != 4 {
		t.Fatalf("star(4): nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	fraudster, ok := g.Node(0)
	if !ok {
		t.Fatal("fraudster node missing")
	}
	if g.InDegree(fraudster) != 4 || g.OutDegree(fraudster) != 0 {
		t.Errorf("fraudster degrees: in=%d out=%d", g.InDegree(fraudster), g.OutDegree(fraudster))
	}
	// Paper's Figure 2 claim: victims of the same fraudster are 2-hop
	// neighbours of each other.
	v1, _ := g.Node(1)
	v2, _ := g.Node(2)
	two := g.TwoHopNeighbors(v1)
	if _, ok := two[v2]; !ok {
		t.Error("victims are not 2-hop neighbours")
	}
	if _, ok := two[fraudster]; ok {
		t.Error("direct neighbour leaked into 2-hop set")
	}
	if _, ok := two[v1]; ok {
		t.Error("self leaked into 2-hop set")
	}
}

func TestAggregation(t *testing.T) {
	b := NewBuilder()
	b.AddTransfer(1, 2, false)
	b.AddTransfer(1, 2, false)
	b.AddTransfer(1, 2, true)
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("parallel edges not aggregated: %d", g.NumEdges())
	}
	n1, _ := g.Node(1)
	if w := g.OutWeights(n1); len(w) != 1 || w[0] != 3 {
		t.Errorf("weight = %v, want [3]", w)
	}
	if f := g.OutFraud(n1); len(f) != 1 || !f[0] {
		t.Errorf("fraud mark = %v, want [true]", f)
	}
}

func TestSelfLoopDropped(t *testing.T) {
	b := NewBuilder()
	b.AddTransfer(5, 5, false)
	g := b.Build()
	if g.NumEdges() != 0 {
		t.Fatalf("self-loop not dropped: edges=%d", g.NumEdges())
	}
}

func TestHasEdge(t *testing.T) {
	b := NewBuilder()
	b.AddTransfer(1, 2, false)
	b.AddTransfer(1, 4, false)
	b.AddTransfer(1, 3, false)
	b.AddTransfer(2, 3, false)
	g := b.Build()
	n1, _ := g.Node(1)
	n2, _ := g.Node(2)
	n3, _ := g.Node(3)
	n4, _ := g.Node(4)
	for _, to := range []NodeID{n2, n3, n4} {
		if !g.HasEdge(n1, to) {
			t.Errorf("missing edge 1->%d", to)
		}
	}
	if g.HasEdge(n2, n1) {
		t.Error("phantom reverse edge")
	}
	if !g.HasEdge(n2, n3) {
		t.Error("missing edge 2->3")
	}
}

func TestNodeUnknown(t *testing.T) {
	g := star(2)
	if _, ok := g.Node(99); ok {
		t.Error("unknown user resolved to a node")
	}
}

func TestFromTransactions(t *testing.T) {
	ts := []txn.Transaction{
		{From: 1, To: 2, Fraud: false},
		{From: 2, To: 3, Fraud: true},
		{From: 1, To: 2, Fraud: false},
	}
	g := FromTransactions(ts)
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("nodes=%d edges=%d", g.NumNodes(), g.NumEdges())
	}
	s := g.Summarize()
	if s.FraudEdges != 1 {
		t.Errorf("fraud edges = %d, want 1", s.FraudEdges)
	}
	if s.WeaklyConnected != 1 || s.LargestComponent != 3 {
		t.Errorf("components: %+v", s)
	}
	if s.String() == "" {
		t.Error("empty stats string")
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder()
	b.AddTransfer(1, 2, false)
	b.AddTransfer(3, 4, false)
	b.AddTransfer(4, 5, false)
	g := b.Build()
	s := g.Summarize()
	if s.WeaklyConnected != 2 {
		t.Errorf("wcc = %d, want 2", s.WeaklyConnected)
	}
	if s.LargestComponent != 3 {
		t.Errorf("largest = %d, want 3", s.LargestComponent)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	mk := func() *Graph {
		b := NewBuilder()
		r := rng.New(4)
		for i := 0; i < 500; i++ {
			b.AddTransfer(txn.UserID(r.Intn(50)), txn.UserID(r.Intn(50)), r.Bool(0.1))
		}
		return b.Build()
	}
	e1 := mk().Edges()
	e2 := mk().Edges()
	if len(e1) != len(e2) {
		t.Fatalf("edge counts differ: %d vs %d", len(e1), len(e2))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, e1[i], e2[i])
		}
	}
}

// Property: the CSR representation agrees with a reference adjacency map,
// in both directions, for random graphs.
func TestCSRMatchesReferenceProperty(t *testing.T) {
	base := rng.New(123)
	f := func(seed uint32) bool {
		r := base.Split(uint64(seed))
		n := 2 + r.Intn(30)
		edges := make(map[[2]int]int)
		b := NewBuilder()
		for i := 0; i < 5*n; i++ {
			from, to := r.Intn(n), r.Intn(n)
			b.AddTransfer(txn.UserID(from), txn.UserID(to), false)
			if from != to {
				edges[[2]int{from, to}]++
			}
		}
		g := b.Build()
		if g.NumEdges() != len(edges) {
			return false
		}
		total := 0
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			u := int(g.User(v))
			ws := g.OutWeights(v)
			for i, w := range g.OutNeighbors(v) {
				cnt, ok := edges[[2]int{u, int(g.User(w))}]
				if !ok || float32(cnt) != ws[i] {
					return false
				}
				total++
			}
		}
		if total != len(edges) {
			return false
		}
		// In-edges mirror out-edges.
		inTotal := 0
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			for _, w := range g.InNeighbors(v) {
				if !g.HasEdge(w, v) {
					return false
				}
				inTotal++
			}
		}
		return inTotal == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: sum of out-degrees == sum of in-degrees == edge count.
func TestDegreeSumProperty(t *testing.T) {
	base := rng.New(321)
	f := func(seed uint32) bool {
		r := base.Split(uint64(seed))
		n := 2 + r.Intn(40)
		b := NewBuilder()
		for i := 0; i < 3*n; i++ {
			b.AddTransfer(txn.UserID(r.Intn(n)), txn.UserID(r.Intn(n)), false)
		}
		g := b.Build()
		outSum, inSum := 0, 0
		for v := NodeID(0); int(v) < g.NumNodes(); v++ {
			outSum += g.OutDegree(v)
			inSum += g.InDegree(v)
		}
		return outSum == g.NumEdges() && inSum == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(1)
	ts := make([]txn.Transaction, 100000)
	for i := range ts {
		ts[i] = txn.Transaction{From: txn.UserID(r.Intn(10000)), To: txn.UserID(r.Intn(10000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromTransactions(ts)
	}
}
