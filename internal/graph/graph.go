// Package graph implements the transaction network of the paper's
// Definition 2: a directed graph G = (V, E) whose nodes are users and whose
// edges are transfer relationships from transferor to transferee.
//
// The network is stored in compressed sparse row (CSR) form for both
// directions so random walks (DeepWalk) and neighbourhood aggregation
// (Structure2Vec) touch contiguous memory. Node identifiers are dense
// indices assigned at build time; Users maps them back to txn.UserID.
package graph

import (
	"fmt"
	"sort"

	"titant/internal/txn"
)

// NodeID is a dense node index in [0, NumNodes).
type NodeID int32

// Edge is one directed edge with a weight (number of transfers aggregated)
// and a fraud mark (true if any aggregated transfer was fraudulent). Edge
// fraud marks are the supervision signal for Structure2Vec.
type Edge struct {
	From, To NodeID
	Weight   float32
	Fraud    bool
}

// Graph is an immutable directed transaction network in CSR form.
type Graph struct {
	users   []txn.UserID          // dense index -> user
	index   map[txn.UserID]NodeID // user -> dense index
	outOff  []int32               // CSR offsets, len = n+1
	outDst  []NodeID
	outWt   []float32
	outFr   []bool
	inOff   []int32
	inSrc   []NodeID
	inWt    []float32
	inFr    []bool
	numEdge int
}

// Builder accumulates transfers and produces a Graph. Parallel transfers
// between the same ordered pair are aggregated into a single weighted edge.
type Builder struct {
	index map[txn.UserID]NodeID
	users []txn.UserID
	edges map[pairKey]*edgeAgg
}

type pairKey struct{ from, to NodeID }

type edgeAgg struct {
	weight float32
	fraud  bool
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		index: make(map[txn.UserID]NodeID),
		edges: make(map[pairKey]*edgeAgg),
	}
}

func (b *Builder) node(u txn.UserID) NodeID {
	if id, ok := b.index[u]; ok {
		return id
	}
	id := NodeID(len(b.users))
	b.index[u] = id
	b.users = append(b.users, u)
	return id
}

// AddTransfer records one transfer from -> to. Self-transfers are dropped
// (they carry no relational information and would bias random walks).
func (b *Builder) AddTransfer(from, to txn.UserID, fraud bool) {
	if from == to {
		return
	}
	k := pairKey{b.node(from), b.node(to)}
	if e, ok := b.edges[k]; ok {
		e.weight++
		e.fraud = e.fraud || fraud
		return
	}
	b.edges[k] = &edgeAgg{weight: 1, fraud: fraud}
}

// AddTransactions records a batch of transactions.
func (b *Builder) AddTransactions(ts []txn.Transaction) {
	for i := range ts {
		b.AddTransfer(ts[i].From, ts[i].To, ts[i].Fraud)
	}
}

// Build freezes the builder into an immutable Graph.
func (b *Builder) Build() *Graph {
	n := len(b.users)
	g := &Graph{
		users:   b.users,
		index:   b.index,
		numEdge: len(b.edges),
	}
	// Sort edges for deterministic CSR layout regardless of map order.
	keys := make([]pairKey, 0, len(b.edges))
	for k := range b.edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].from != keys[j].from {
			return keys[i].from < keys[j].from
		}
		return keys[i].to < keys[j].to
	})

	g.outOff = make([]int32, n+1)
	g.inOff = make([]int32, n+1)
	for _, k := range keys {
		g.outOff[k.from+1]++
		g.inOff[k.to+1]++
	}
	for i := 0; i < n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	m := len(keys)
	g.outDst = make([]NodeID, m)
	g.outWt = make([]float32, m)
	g.outFr = make([]bool, m)
	g.inSrc = make([]NodeID, m)
	g.inWt = make([]float32, m)
	g.inFr = make([]bool, m)
	outPos := make([]int32, n)
	copy(outPos, g.outOff[:n])
	inPos := make([]int32, n)
	copy(inPos, g.inOff[:n])
	for _, k := range keys {
		e := b.edges[k]
		p := outPos[k.from]
		g.outDst[p] = k.to
		g.outWt[p] = e.weight
		g.outFr[p] = e.fraud
		outPos[k.from]++
		q := inPos[k.to]
		g.inSrc[q] = k.from
		g.inWt[q] = e.weight
		g.inFr[q] = e.fraud
		inPos[k.to]++
	}
	return g
}

// FromTransactions is shorthand for building a graph from a transaction log.
func FromTransactions(ts []txn.Transaction) *Graph {
	b := NewBuilder()
	b.AddTransactions(ts)
	return b.Build()
}

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.users) }

// NumEdges returns the distinct directed edge count.
func (g *Graph) NumEdges() int { return g.numEdge }

// User returns the txn.UserID behind dense node id.
func (g *Graph) User(id NodeID) txn.UserID { return g.users[id] }

// Node returns the dense node for user u, or (-1, false) if u never
// transacted in the window.
func (g *Graph) Node(u txn.UserID) (NodeID, bool) {
	id, ok := g.index[u]
	if !ok {
		return -1, false
	}
	return id, true
}

// OutNeighbors returns the out-neighbour IDs of v (shared slice; callers
// must not mutate).
func (g *Graph) OutNeighbors(v NodeID) []NodeID {
	return g.outDst[g.outOff[v]:g.outOff[v+1]]
}

// OutWeights returns edge weights parallel to OutNeighbors.
func (g *Graph) OutWeights(v NodeID) []float32 {
	return g.outWt[g.outOff[v]:g.outOff[v+1]]
}

// OutFraud returns per-out-edge fraud marks parallel to OutNeighbors.
func (g *Graph) OutFraud(v NodeID) []bool {
	return g.outFr[g.outOff[v]:g.outOff[v+1]]
}

// InNeighbors returns the in-neighbour IDs of v.
func (g *Graph) InNeighbors(v NodeID) []NodeID {
	return g.inSrc[g.inOff[v]:g.inOff[v+1]]
}

// InWeights returns edge weights parallel to InNeighbors.
func (g *Graph) InWeights(v NodeID) []float32 {
	return g.inWt[g.inOff[v]:g.inOff[v+1]]
}

// InFraud returns per-in-edge fraud marks parallel to InNeighbors.
func (g *Graph) InFraud(v NodeID) []bool {
	return g.inFr[g.inOff[v]:g.inOff[v+1]]
}

// OutDegree returns the out-degree of v.
func (g *Graph) OutDegree(v NodeID) int { return int(g.outOff[v+1] - g.outOff[v]) }

// InDegree returns the in-degree of v.
func (g *Graph) InDegree(v NodeID) int { return int(g.inOff[v+1] - g.inOff[v]) }

// Degree returns in+out degree of v.
func (g *Graph) Degree(v NodeID) int { return g.OutDegree(v) + g.InDegree(v) }

// HasEdge reports whether the directed edge from->to exists.
func (g *Graph) HasEdge(from, to NodeID) bool {
	ns := g.OutNeighbors(from)
	// CSR rows are sorted by destination; binary search.
	lo, hi := 0, len(ns)
	for lo < hi {
		mid := (lo + hi) / 2
		if ns[mid] < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(ns) && ns[lo] == to
}

// Edges returns all edges in deterministic order.
func (g *Graph) Edges() []Edge {
	es := make([]Edge, 0, g.numEdge)
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		off := g.outOff[v]
		for i, w := range g.OutNeighbors(v) {
			es = append(es, Edge{From: v, To: w, Weight: g.outWt[off+int32(i)], Fraud: g.outFr[off+int32(i)]})
		}
	}
	return es
}

// TwoHopNeighbors returns the set of nodes reachable from v in exactly two
// undirected hops, excluding v itself and direct neighbours. The paper's
// motivating observation (Figure 2) is that victims of the same fraudster
// are 2-hop neighbours of each other.
func (g *Graph) TwoHopNeighbors(v NodeID) map[NodeID]struct{} {
	direct := make(map[NodeID]struct{})
	for _, w := range g.OutNeighbors(v) {
		direct[w] = struct{}{}
	}
	for _, w := range g.InNeighbors(v) {
		direct[w] = struct{}{}
	}
	two := make(map[NodeID]struct{})
	for w := range direct {
		for _, x := range g.OutNeighbors(w) {
			two[x] = struct{}{}
		}
		for _, x := range g.InNeighbors(w) {
			two[x] = struct{}{}
		}
	}
	delete(two, v)
	for w := range direct {
		delete(two, w)
	}
	return two
}

// Stats summarises the network.
type Stats struct {
	Nodes, Edges     int
	MaxOutDeg        int
	MaxInDeg         int
	FraudEdges       int
	WeaklyConnected  int // number of weakly connected components
	LargestComponent int
}

// Summarize computes Stats (including a union-find pass over components).
func (g *Graph) Summarize() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		if d := g.OutDegree(v); d > s.MaxOutDeg {
			s.MaxOutDeg = d
		}
		if d := g.InDegree(v); d > s.MaxInDeg {
			s.MaxInDeg = d
		}
	}
	for _, f := range g.outFr {
		if f {
			s.FraudEdges++
		}
	}
	// Weakly connected components via union-find.
	parent := make([]int32, g.NumNodes())
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for v := NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, w := range g.OutNeighbors(v) {
			union(int32(v), int32(w))
		}
	}
	sizes := make(map[int32]int)
	for i := range parent {
		sizes[find(int32(i))]++
	}
	s.WeaklyConnected = len(sizes)
	for _, sz := range sizes {
		if sz > s.LargestComponent {
			s.LargestComponent = sz
		}
	}
	return s
}

// String renders the stats.
func (s Stats) String() string {
	return fmt.Sprintf("nodes=%d edges=%d maxOut=%d maxIn=%d fraudEdges=%d wcc=%d largest=%d",
		s.Nodes, s.Edges, s.MaxOutDeg, s.MaxInDeg, s.FraudEdges, s.WeaklyConnected, s.LargestComponent)
}
