package sqlmini

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is an AST expression node.
type Expr interface{ exprNode() }

// ColRef references a column.
type ColRef struct{ Name string }

// Lit is a literal value.
type Lit struct{ Val Value }

// BinOp is a binary operation: arithmetic, comparison or boolean.
type BinOp struct {
	Op          string // + - * / = != < <= > >= AND OR
	Left, Right Expr
}

// Not negates a boolean expression.
type Not struct{ X Expr }

// Agg is an aggregate call. Col == nil means COUNT(*).
type Agg struct {
	Fn  string // COUNT SUM AVG MIN MAX
	Col Expr
}

func (*ColRef) exprNode() {}
func (*Lit) exprNode()    {}
func (*BinOp) exprNode()  {}
func (*Not) exprNode()    {}
func (*Agg) exprNode()    {}

// SelectItem is one projection with an optional alias.
type SelectItem struct {
	Expr  Expr
	Alias string
	Star  bool // SELECT *
}

// Query is a parsed SELECT statement.
type Query struct {
	Items     []SelectItem
	From      string
	Where     Expr
	GroupBy   []string
	OrderBy   Expr
	OrderDesc bool
	Limit     int // -1 when absent
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses one SELECT statement.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atKeyword("") && p.cur().kind != tokEOF {
		return nil, fmt.Errorf("sqlmini: trailing input at %d: %q", p.cur().pos, p.cur().text)
	}
	return q, nil
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) advance()   { p.pos++ }
func (p *parser) atKeyword(k string) bool {
	return p.cur().kind == tokKeyword && (k == "" || p.cur().text == k)
}

func (p *parser) expectKeyword(k string) error {
	if !p.atKeyword(k) {
		return fmt.Errorf("sqlmini: expected %s at %d, got %q", k, p.cur().pos, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) expectOp(op string) error {
	if p.cur().kind != tokOp || p.cur().text != op {
		return fmt.Errorf("sqlmini: expected %q at %d, got %q", op, p.cur().pos, p.cur().text)
	}
	p.advance()
	return nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{Limit: -1}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if p.cur().kind == tokOp && p.cur().text == "," {
			p.advance()
			continue
		}
		break
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	if p.cur().kind != tokIdent {
		return nil, fmt.Errorf("sqlmini: expected table name at %d", p.cur().pos)
	}
	q.From = p.cur().text
	p.advance()

	if p.atKeyword("WHERE") {
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if p.atKeyword("GROUP") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			if p.cur().kind != tokIdent {
				return nil, fmt.Errorf("sqlmini: expected column in GROUP BY at %d", p.cur().pos)
			}
			q.GroupBy = append(q.GroupBy, p.cur().text)
			p.advance()
			if p.cur().kind == tokOp && p.cur().text == "," {
				p.advance()
				continue
			}
			break
		}
	}
	if p.atKeyword("ORDER") {
		p.advance()
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		e, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		q.OrderBy = e
		if p.atKeyword("DESC") {
			q.OrderDesc = true
			p.advance()
		} else if p.atKeyword("ASC") {
			p.advance()
		}
	}
	if p.atKeyword("LIMIT") {
		p.advance()
		if p.cur().kind != tokNumber {
			return nil, fmt.Errorf("sqlmini: expected number after LIMIT at %d", p.cur().pos)
		}
		n, err := strconv.Atoi(p.cur().text)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sqlmini: bad LIMIT %q", p.cur().text)
		}
		q.Limit = n
		p.advance()
	}
	return q, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.cur().kind == tokStar {
		p.advance()
		return SelectItem{Star: true}, nil
	}
	e, err := p.parseOr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.atKeyword("AS") {
		p.advance()
		if p.cur().kind != tokIdent {
			return SelectItem{}, fmt.Errorf("sqlmini: expected alias at %d", p.cur().pos)
		}
		item.Alias = p.cur().text
		p.advance()
	}
	return item, nil
}

// Precedence climbing: OR < AND < NOT < comparison < additive < multiplicative < unary.

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.advance()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.advance()
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.atKeyword("NOT") {
		p.advance()
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{X: x}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokOp {
		switch p.cur().text {
		case "=", "!=", "<", "<=", ">", ">=":
			op := p.cur().text
			p.advance()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &BinOp{Op: op, Left: left, Right: right}, nil
		}
	}
	return left, nil
}

func (p *parser) parseAdd() (Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOp && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.cur().text
		p.advance()
		right, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseMul() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for (p.cur().kind == tokOp && p.cur().text == "/") || p.cur().kind == tokStar {
		op := "*"
		if p.cur().kind == tokOp {
			op = "/"
		}
		p.advance()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = &BinOp{Op: op, Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokOp && t.text == "-":
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &BinOp{Op: "-", Left: &Lit{Val: I(0)}, Right: x}, nil
	case t.kind == tokOp && t.text == "(":
		p.advance()
		e, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("sqlmini: bad number %q", t.text)
			}
			return &Lit{Val: F(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("sqlmini: bad number %q", t.text)
		}
		return &Lit{Val: I(n)}, nil
	case t.kind == tokString:
		p.advance()
		return &Lit{Val: S(t.text)}, nil
	case t.kind == tokKeyword && (t.text == "TRUE" || t.text == "FALSE"):
		p.advance()
		return &Lit{Val: B(t.text == "TRUE")}, nil
	case t.kind == tokKeyword && isAggFn(t.text):
		fn := t.text
		p.advance()
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		if p.cur().kind == tokStar {
			if fn != "COUNT" {
				return nil, fmt.Errorf("sqlmini: %s(*) is not valid", fn)
			}
			p.advance()
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &Agg{Fn: fn}, nil
		}
		arg, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &Agg{Fn: fn, Col: arg}, nil
	case t.kind == tokIdent:
		p.advance()
		return &ColRef{Name: t.text}, nil
	}
	return nil, fmt.Errorf("sqlmini: unexpected token %q at %d", t.text, t.pos)
}

func isAggFn(s string) bool {
	switch s {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}
