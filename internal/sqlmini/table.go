// Package sqlmini implements the SQL execution engine of the MaxCompute
// analogue (the paper's Section 4.2: "MaxCompute supports SQL and MapReduce
// for extracting basic features/labels and constructing transaction
// network").
//
// It supports a practical subset over columnar in-memory tables:
//
//	SELECT expr [AS name], ... FROM table
//	  [WHERE predicate]
//	  [GROUP BY col, ...]
//	  [ORDER BY expr [DESC]]
//	  [LIMIT n]
//
// with arithmetic, comparisons, AND/OR/NOT, and the aggregates COUNT(*),
// COUNT(x), SUM, AVG, MIN, MAX. The package is organised as a classic
// three-stage pipeline: lexer -> recursive-descent parser -> executor.
package sqlmini

import (
	"fmt"
	"math"
)

// Kind is a column type.
type Kind int

// Column kinds.
const (
	KindInt Kind = iota
	KindFloat
	KindString
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a dynamically typed SQL value.
type Value struct {
	Kind  Kind
	Int   int64
	Float float64
	Str   string
	Bool  bool
}

// I, F, S, B build values.
func I(v int64) Value   { return Value{Kind: KindInt, Int: v} }
func F(v float64) Value { return Value{Kind: KindFloat, Float: v} }
func S(v string) Value  { return Value{Kind: KindString, Str: v} }
func B(v bool) Value    { return Value{Kind: KindBool, Bool: v} }

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, error) {
	switch v.Kind {
	case KindInt:
		return float64(v.Int), nil
	case KindFloat:
		return v.Float, nil
	}
	return 0, fmt.Errorf("sqlmini: %v is not numeric", v.Kind)
}

// Equal compares two values with numeric coercion.
func (v Value) Equal(o Value) bool {
	if v.Kind == o.Kind {
		switch v.Kind {
		case KindInt:
			return v.Int == o.Int
		case KindFloat:
			return v.Float == o.Float
		case KindString:
			return v.Str == o.Str
		case KindBool:
			return v.Bool == o.Bool
		}
	}
	a, errA := v.AsFloat()
	b, errB := o.AsFloat()
	return errA == nil && errB == nil && a == b
}

// Less orders two values (numeric coercion; strings lexicographic; bools
// false<true). Returns an error on incomparable kinds.
func (v Value) Less(o Value) (bool, error) {
	if v.Kind == KindString && o.Kind == KindString {
		return v.Str < o.Str, nil
	}
	if v.Kind == KindBool && o.Kind == KindBool {
		return !v.Bool && o.Bool, nil
	}
	a, errA := v.AsFloat()
	b, errB := o.AsFloat()
	if errA != nil || errB != nil {
		return false, fmt.Errorf("sqlmini: cannot compare %v and %v", v.Kind, o.Kind)
	}
	return a < b, nil
}

// String renders the value.
func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindFloat:
		if v.Float == math.Trunc(v.Float) && math.Abs(v.Float) < 1e15 {
			return fmt.Sprintf("%.1f", v.Float)
		}
		return fmt.Sprintf("%g", v.Float)
	case KindString:
		return v.Str
	case KindBool:
		return fmt.Sprintf("%t", v.Bool)
	}
	return "?"
}

// Column is one typed column.
type Column struct {
	Name   string
	Kind   Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
}

// Len returns the column length.
func (c *Column) Len() int {
	switch c.Kind {
	case KindInt:
		return len(c.Ints)
	case KindFloat:
		return len(c.Floats)
	case KindString:
		return len(c.Strs)
	case KindBool:
		return len(c.Bools)
	}
	return 0
}

// Value returns element i.
func (c *Column) Value(i int) Value {
	switch c.Kind {
	case KindInt:
		return I(c.Ints[i])
	case KindFloat:
		return F(c.Floats[i])
	case KindString:
		return S(c.Strs[i])
	case KindBool:
		return B(c.Bools[i])
	}
	return Value{}
}

// Append adds a value (must match the column kind).
func (c *Column) Append(v Value) error {
	if v.Kind != c.Kind {
		// Allow int -> float widening.
		if c.Kind == KindFloat && v.Kind == KindInt {
			c.Floats = append(c.Floats, float64(v.Int))
			return nil
		}
		return fmt.Errorf("sqlmini: appending %v to %v column %q", v.Kind, c.Kind, c.Name)
	}
	switch c.Kind {
	case KindInt:
		c.Ints = append(c.Ints, v.Int)
	case KindFloat:
		c.Floats = append(c.Floats, v.Float)
	case KindString:
		c.Strs = append(c.Strs, v.Str)
	case KindBool:
		c.Bools = append(c.Bools, v.Bool)
	}
	return nil
}

// Table is a named columnar table.
type Table struct {
	Name    string
	Columns []*Column
	byName  map[string]int
}

// NewTable creates a table with the given typed columns.
func NewTable(name string, cols ...*Column) (*Table, error) {
	t := &Table{Name: name, byName: make(map[string]int)}
	n := -1
	for i, c := range cols {
		if _, dup := t.byName[c.Name]; dup {
			return nil, fmt.Errorf("sqlmini: duplicate column %q", c.Name)
		}
		if n == -1 {
			n = c.Len()
		} else if c.Len() != n {
			return nil, fmt.Errorf("sqlmini: column %q has %d rows, want %d", c.Name, c.Len(), n)
		}
		t.byName[c.Name] = i
		t.Columns = append(t.Columns, c)
	}
	return t, nil
}

// NumRows returns the row count.
func (t *Table) NumRows() int {
	if len(t.Columns) == 0 {
		return 0
	}
	return t.Columns[0].Len()
}

// Column returns a column by name.
func (t *Table) Column(name string) (*Column, bool) {
	i, ok := t.byName[name]
	if !ok {
		return nil, false
	}
	return t.Columns[i], true
}

// Result is a materialised query result.
type Result struct {
	Names []string
	Rows  [][]Value
}
