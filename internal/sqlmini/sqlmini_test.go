package sqlmini

import (
	"math"
	"strings"
	"testing"
)

// txns builds the test catalog: a transactions table reminiscent of the
// MaxCompute feature-extraction jobs.
func txns(t *testing.T) Catalog {
	t.Helper()
	tab, err := NewTable("txns",
		&Column{Name: "id", Kind: KindInt, Ints: []int64{1, 2, 3, 4, 5, 6}},
		&Column{Name: "user_id", Kind: KindInt, Ints: []int64{10, 10, 20, 20, 20, 30}},
		&Column{Name: "amount", Kind: KindFloat, Floats: []float64{100, 250, 80, 1200, 40, 900}},
		&Column{Name: "city", Kind: KindString, Strs: []string{"hz", "hz", "bj", "bj", "sh", "hz"}},
		&Column{Name: "fraud", Kind: KindBool, Bools: []bool{false, true, false, true, false, false}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return MapCatalog{"txns": tab}
}

func mustRun(t *testing.T, cat Catalog, q string) *Result {
	t.Helper()
	res, err := Run(q, cat)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func TestSelectStar(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT * FROM txns")
	if len(res.Rows) != 6 || len(res.Names) != 5 {
		t.Fatalf("rows=%d cols=%d", len(res.Rows), len(res.Names))
	}
	if res.Names[0] != "id" || res.Names[4] != "fraud" {
		t.Fatalf("names = %v", res.Names)
	}
}

func TestWhereFilter(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT id FROM txns WHERE amount > 100 AND fraud = TRUE")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int != 2 || res.Rows[1][0].Int != 4 {
		t.Fatalf("ids = %v", res.Rows)
	}
}

func TestWhereStringAndOr(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT id FROM txns WHERE city = 'hz' OR city = 'sh'")
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustRun(t, txns(t), "SELECT id FROM txns WHERE NOT (city = 'hz')")
	if len(res.Rows) != 3 {
		t.Fatalf("NOT rows = %v", res.Rows)
	}
}

func TestArithmeticProjection(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT amount * 2 AS double_amt, amount + 1 FROM txns WHERE id = 1")
	if res.Names[0] != "double_amt" {
		t.Fatalf("names = %v", res.Names)
	}
	if res.Rows[0][0].Float != 200 || res.Rows[0][1].Float != 101 {
		t.Fatalf("row = %v", res.Rows[0])
	}
}

func TestGroupByAggregates(t *testing.T) {
	res := mustRun(t, txns(t),
		"SELECT user_id, COUNT(*) AS n, SUM(amount) AS total, AVG(amount) AS mean, MIN(amount), MAX(amount) "+
			"FROM txns GROUP BY user_id ORDER BY user_id")
	if len(res.Rows) != 3 {
		t.Fatalf("groups = %v", res.Rows)
	}
	// user 20: amounts 80, 1200, 40.
	row := res.Rows[1]
	if row[0].Int != 20 || row[1].Int != 3 || row[2].Float != 1320 {
		t.Fatalf("user 20 = %v", row)
	}
	if math.Abs(row[3].Float-440) > 1e-9 || row[4].Float != 40 || row[5].Float != 1200 {
		t.Fatalf("user 20 stats = %v", row)
	}
}

func TestGlobalAggregate(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT COUNT(*), SUM(amount) FROM txns WHERE fraud = TRUE")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Int != 2 || res.Rows[0][1].Float != 1450 {
		t.Fatalf("aggregates = %v", res.Rows[0])
	}
}

func TestGlobalAggregateEmptyInput(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT COUNT(*) FROM txns WHERE amount > 1e9")
	_ = res
}

func TestFraudRatePerCity(t *testing.T) {
	// The actual query shape used by the feature-extraction job.
	res := mustRun(t, txns(t),
		"SELECT city, COUNT(*) AS n FROM txns GROUP BY city ORDER BY n DESC LIMIT 2")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].Str != "hz" || res.Rows[0][1].Int != 3 {
		t.Fatalf("top city = %v", res.Rows[0])
	}
}

func TestOrderByDesc(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT id, amount FROM txns ORDER BY amount DESC LIMIT 3")
	if res.Rows[0][1].Float != 1200 || res.Rows[1][1].Float != 900 || res.Rows[2][1].Float != 250 {
		t.Fatalf("order = %v", res.Rows)
	}
}

func TestLimitZero(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT id FROM txns LIMIT 0")
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestStringEscapes(t *testing.T) {
	tab, _ := NewTable("t", &Column{Name: "s", Kind: KindString, Strs: []string{"it's"}})
	res := mustRun(t, MapCatalog{"t": tab}, "SELECT s FROM t WHERE s = 'it''s'")
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	cat := txns(t)
	for _, q := range []string{
		"",
		"SELEC id FROM txns",
		"SELECT id txns",
		"SELECT id FROM txns WHERE",
		"SELECT id FROM txns LIMIT -1",
		"SELECT id FROM txns GROUP BY",
		"SELECT SUM(*) FROM txns",
		"SELECT id FROM txns WHERE city = 'unterminated",
		"SELECT id FROM txns trailing garbage",
	} {
		if _, err := Run(q, cat); err == nil {
			t.Errorf("query %q did not error", q)
		}
	}
}

func TestExecErrors(t *testing.T) {
	cat := txns(t)
	for _, q := range []string{
		"SELECT id FROM missing",
		"SELECT nosuch FROM txns",
		"SELECT id FROM txns WHERE amount",          // non-bool WHERE
		"SELECT id, COUNT(*) FROM txns",             // bare col with aggregate
		"SELECT SUM(city) FROM txns",                // non-numeric SUM
		"SELECT id FROM txns WHERE id / 0 > 1",      // div by zero
		"SELECT COUNT(*) FROM txns WHERE id AND id", // AND over ints
		"SELECT * , COUNT(*) FROM txns GROUP BY id", // star with aggregate
		"SELECT id FROM txns WHERE city > 5",        // incomparable
	} {
		if _, err := Run(q, cat); err == nil {
			t.Errorf("query %q did not error", q)
		}
	}
}

func TestCountColumn(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT COUNT(amount) FROM txns")
	if res.Rows[0][0].Int != 6 {
		t.Fatalf("COUNT(amount) = %v", res.Rows[0][0])
	}
}

func TestIntArithmeticStaysInt(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT id + 1 FROM txns WHERE id = 1")
	if res.Rows[0][0].Kind != KindInt || res.Rows[0][0].Int != 2 {
		t.Fatalf("id+1 = %+v", res.Rows[0][0])
	}
	// Division always yields float.
	res = mustRun(t, txns(t), "SELECT id / 2 FROM txns WHERE id = 1")
	if res.Rows[0][0].Kind != KindFloat {
		t.Fatalf("id/2 kind = %v", res.Rows[0][0].Kind)
	}
}

func TestUnaryMinus(t *testing.T) {
	res := mustRun(t, txns(t), "SELECT id FROM txns WHERE -amount < -1000")
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := NewTable("x",
		&Column{Name: "a", Kind: KindInt, Ints: []int64{1}},
		&Column{Name: "a", Kind: KindInt, Ints: []int64{2}},
	); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := NewTable("x",
		&Column{Name: "a", Kind: KindInt, Ints: []int64{1}},
		&Column{Name: "b", Kind: KindInt, Ints: []int64{1, 2}},
	); err == nil {
		t.Error("ragged columns accepted")
	}
}

func TestColumnAppendWidening(t *testing.T) {
	c := &Column{Name: "f", Kind: KindFloat}
	if err := c.Append(I(3)); err != nil {
		t.Fatal(err)
	}
	if c.Floats[0] != 3 {
		t.Fatal("int not widened")
	}
	if err := c.Append(S("no")); err == nil {
		t.Fatal("string into float accepted")
	}
}

func TestValueString(t *testing.T) {
	for v, want := range map[*Value]string{
		{Kind: KindInt, Int: 5}:       "5",
		{Kind: KindString, Str: "x"}:  "x",
		{Kind: KindBool, Bool: true}:  "true",
		{Kind: KindFloat, Float: 2.0}: "2.0",
	} {
		if got := v.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestKindString(t *testing.T) {
	if KindInt.String() != "int" || Kind(9).String() == "" {
		t.Error("Kind.String broken")
	}
}

func TestWhitespaceAndCase(t *testing.T) {
	res := mustRun(t, txns(t), strings.ToLower("select id from txns where fraud = true"))
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func BenchmarkGroupBy(b *testing.B) {
	n := 50000
	ids := make([]int64, n)
	amounts := make([]float64, n)
	for i := range ids {
		ids[i] = int64(i % 1000)
		amounts[i] = float64(i)
	}
	tab, _ := NewTable("t",
		&Column{Name: "user_id", Kind: KindInt, Ints: ids},
		&Column{Name: "amount", Kind: KindFloat, Floats: amounts},
	)
	cat := MapCatalog{"t": tab}
	q, err := Parse("SELECT user_id, SUM(amount) FROM t GROUP BY user_id")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(q, cat); err != nil {
			b.Fatal(err)
		}
	}
}
