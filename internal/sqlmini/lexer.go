package sqlmini

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexer token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokKeyword
	tokOp   // symbols: = != < <= > >= + - * / ( ) , .
	tokStar // * (disambiguated from multiply by the parser)
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "LIMIT": true, "AS": true, "AND": true, "OR": true,
	"NOT": true, "DESC": true, "ASC": true, "TRUE": true, "FALSE": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
}

// lex tokenises a query.
func lex(input string) ([]token, error) {
	var toks []token
	i := 0
	n := len(input)
	for i < n {
		ch := input[i]
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			i++
		case ch == '\'':
			j := i + 1
			var sb strings.Builder
			closed := false
			for j < n {
				if input[j] == '\'' {
					if j+1 < n && input[j+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						j += 2
						continue
					}
					closed = true
					break
				}
				sb.WriteByte(input[j])
				j++
			}
			if !closed {
				return nil, fmt.Errorf("sqlmini: unterminated string at %d", i)
			}
			toks = append(toks, token{tokString, sb.String(), i})
			i = j + 1
		case ch >= '0' && ch <= '9' || (ch == '.' && i+1 < n && input[i+1] >= '0' && input[i+1] <= '9'):
			j := i
			seenDot := false
			for j < n && (input[j] >= '0' && input[j] <= '9' || (input[j] == '.' && !seenDot)) {
				if input[j] == '.' {
					seenDot = true
				}
				j++
			}
			// Scientific notation: e/E with optional sign and digits.
			if j < n && (input[j] == 'e' || input[j] == 'E') {
				k := j + 1
				if k < n && (input[k] == '+' || input[k] == '-') {
					k++
				}
				if k < n && input[k] >= '0' && input[k] <= '9' {
					for k < n && input[k] >= '0' && input[k] <= '9' {
						k++
					}
					seenDot = true // exponent implies float
					j = k
				}
			}
			toks = append(toks, token{tokNumber, input[i:j], i})
			i = j
		case isIdentStart(rune(ch)):
			j := i
			for j < n && isIdentPart(rune(input[j])) {
				j++
			}
			word := input[i:j]
			up := strings.ToUpper(word)
			if keywords[up] {
				toks = append(toks, token{tokKeyword, up, i})
			} else {
				toks = append(toks, token{tokIdent, word, i})
			}
			i = j
		case ch == '*':
			toks = append(toks, token{tokStar, "*", i})
			i++
		case ch == '!' || ch == '<' || ch == '>':
			if i+1 < n && input[i+1] == '=' {
				toks = append(toks, token{tokOp, input[i : i+2], i})
				i += 2
			} else if ch == '!' {
				return nil, fmt.Errorf("sqlmini: lone '!' at %d", i)
			} else {
				toks = append(toks, token{tokOp, string(ch), i})
				i++
			}
		case strings.ContainsRune("=+-/(),", rune(ch)):
			toks = append(toks, token{tokOp, string(ch), i})
			i++
		default:
			return nil, fmt.Errorf("sqlmini: unexpected character %q at %d", ch, i)
		}
	}
	toks = append(toks, token{tokEOF, "", n})
	return toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
