package sqlmini

import (
	"fmt"
	"sort"
	"strings"
)

// Catalog resolves table names for execution.
type Catalog interface {
	Lookup(name string) (*Table, bool)
}

// MapCatalog is a Catalog backed by a map.
type MapCatalog map[string]*Table

// Lookup implements Catalog.
func (m MapCatalog) Lookup(name string) (*Table, bool) {
	t, ok := m[name]
	return t, ok
}

// Run parses and executes a query against the catalog.
func Run(query string, cat Catalog) (*Result, error) {
	q, err := Parse(query)
	if err != nil {
		return nil, err
	}
	return Exec(q, cat)
}

// Exec executes a parsed query.
func Exec(q *Query, cat Catalog) (*Result, error) {
	tab, ok := cat.Lookup(q.From)
	if !ok {
		return nil, fmt.Errorf("sqlmini: unknown table %q", q.From)
	}
	// 1. Filter.
	var rows []int
	for i := 0; i < tab.NumRows(); i++ {
		if q.Where == nil {
			rows = append(rows, i)
			continue
		}
		v, err := evalRow(q.Where, tab, i)
		if err != nil {
			return nil, err
		}
		if v.Kind != KindBool {
			return nil, fmt.Errorf("sqlmini: WHERE is %v, not bool", v.Kind)
		}
		if v.Bool {
			rows = append(rows, i)
		}
	}

	hasAgg := false
	for _, it := range q.Items {
		if !it.Star && containsAgg(it.Expr) {
			hasAgg = true
		}
	}

	var res *Result
	var orderKeys []Value
	switch {
	case len(q.GroupBy) > 0 || hasAgg:
		var err error
		res, orderKeys, err = execGrouped(q, tab, rows)
		if err != nil {
			return nil, err
		}
	default:
		var err error
		res, orderKeys, err = execPlain(q, tab, rows)
		if err != nil {
			return nil, err
		}
	}

	// ORDER BY over materialised keys. An ORDER BY naming a projected
	// column or alias sorts by that output column.
	if j := orderByOutputIndex(q, res.Names); j >= 0 {
		orderKeys = orderKeys[:0]
		for _, row := range res.Rows {
			orderKeys = append(orderKeys, row[j])
		}
	}
	if q.OrderBy != nil {
		idx := make([]int, len(res.Rows))
		for i := range idx {
			idx[i] = i
		}
		var sortErr error
		sort.SliceStable(idx, func(a, b int) bool {
			less, err := orderKeys[idx[a]].Less(orderKeys[idx[b]])
			if err != nil && sortErr == nil {
				sortErr = err
			}
			if q.OrderDesc {
				return !less && !orderKeys[idx[a]].Equal(orderKeys[idx[b]])
			}
			return less
		})
		if sortErr != nil {
			return nil, sortErr
		}
		sorted := make([][]Value, len(idx))
		for i, j := range idx {
			sorted[i] = res.Rows[j]
		}
		res.Rows = sorted
	}
	if q.Limit >= 0 && len(res.Rows) > q.Limit {
		res.Rows = res.Rows[:q.Limit]
	}
	return res, nil
}

// execPlain projects each filtered row.
func execPlain(q *Query, tab *Table, rows []int) (*Result, []Value, error) {
	res := &Result{}
	// Expand projections and names.
	type proj struct {
		expr Expr
		name string
	}
	var projs []proj
	for _, it := range q.Items {
		if it.Star {
			for _, c := range tab.Columns {
				c := c
				projs = append(projs, proj{expr: &ColRef{Name: c.Name}, name: c.Name})
			}
			continue
		}
		projs = append(projs, proj{expr: it.Expr, name: itemName(it)})
	}
	for _, p := range projs {
		res.Names = append(res.Names, p.name)
	}
	evalOrder := q.OrderBy != nil && orderByOutputIndex(q, res.Names) < 0
	var orderKeys []Value
	for _, i := range rows {
		row := make([]Value, len(projs))
		for j, p := range projs {
			v, err := evalRow(p.expr, tab, i)
			if err != nil {
				return nil, nil, err
			}
			row[j] = v
		}
		res.Rows = append(res.Rows, row)
		if evalOrder {
			k, err := evalRow(q.OrderBy, tab, i)
			if err != nil {
				return nil, nil, err
			}
			orderKeys = append(orderKeys, k)
		}
	}
	return res, orderKeys, nil
}

// execGrouped evaluates GROUP BY + aggregates (or a global aggregate when
// GroupBy is empty).
func execGrouped(q *Query, tab *Table, rows []int) (*Result, []Value, error) {
	for _, it := range q.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("sqlmini: SELECT * cannot be combined with aggregates")
		}
		if !containsAgg(it.Expr) {
			if cr, ok := it.Expr.(*ColRef); !ok || !inGroupBy(cr.Name, q.GroupBy) {
				return nil, nil, fmt.Errorf("sqlmini: non-aggregate projection %q must appear in GROUP BY", itemName(it))
			}
		}
	}
	groupCols := make([]*Column, len(q.GroupBy))
	for i, g := range q.GroupBy {
		c, ok := tab.Column(g)
		if !ok {
			return nil, nil, fmt.Errorf("sqlmini: unknown GROUP BY column %q", g)
		}
		groupCols[i] = c
	}
	groups := make(map[string][]int)
	var order []string
	for _, i := range rows {
		var sb strings.Builder
		for _, c := range groupCols {
			sb.WriteString(c.Value(i).String())
			sb.WriteByte('\x00')
		}
		k := sb.String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	if len(q.GroupBy) == 0 {
		// Global aggregate: one group, even over zero rows.
		if len(order) == 0 {
			order = append(order, "")
			groups[""] = nil
		}
	}
	res := &Result{}
	for _, it := range q.Items {
		res.Names = append(res.Names, itemName(it))
	}
	evalOrder := q.OrderBy != nil && orderByOutputIndex(q, res.Names) < 0
	var orderKeys []Value
	for _, k := range order {
		members := groups[k]
		row := make([]Value, len(q.Items))
		for j, it := range q.Items {
			v, err := evalGroup(it.Expr, tab, members)
			if err != nil {
				return nil, nil, err
			}
			row[j] = v
		}
		res.Rows = append(res.Rows, row)
		if evalOrder {
			kv, err := evalGroup(q.OrderBy, tab, members)
			if err != nil {
				return nil, nil, err
			}
			orderKeys = append(orderKeys, kv)
		}
	}
	return res, orderKeys, nil
}

// orderByOutputIndex returns the projected-column index that ORDER BY
// refers to (by alias or output name), or -1 when ORDER BY is absent or a
// general expression.
func orderByOutputIndex(q *Query, names []string) int {
	cr, ok := q.OrderBy.(*ColRef)
	if !ok {
		return -1
	}
	for j, name := range names {
		if name == cr.Name {
			return j
		}
	}
	return -1
}

func inGroupBy(name string, gb []string) bool {
	for _, g := range gb {
		if g == name {
			return true
		}
	}
	return false
}

func itemName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	switch e := it.Expr.(type) {
	case *ColRef:
		return e.Name
	case *Agg:
		if e.Col == nil {
			return strings.ToLower(e.Fn) + "_all"
		}
		if cr, ok := e.Col.(*ColRef); ok {
			return strings.ToLower(e.Fn) + "_" + cr.Name
		}
	}
	return "expr"
}

func containsAgg(e Expr) bool {
	switch x := e.(type) {
	case *Agg:
		return true
	case *BinOp:
		return containsAgg(x.Left) || containsAgg(x.Right)
	case *Not:
		return containsAgg(x.X)
	}
	return false
}

// evalRow evaluates an expression over a single row.
func evalRow(e Expr, tab *Table, i int) (Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Val, nil
	case *ColRef:
		c, ok := tab.Column(x.Name)
		if !ok {
			return Value{}, fmt.Errorf("sqlmini: unknown column %q", x.Name)
		}
		return c.Value(i), nil
	case *Not:
		v, err := evalRow(x.X, tab, i)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindBool {
			return Value{}, fmt.Errorf("sqlmini: NOT of %v", v.Kind)
		}
		return B(!v.Bool), nil
	case *BinOp:
		return evalBinOp(x, func(sub Expr) (Value, error) { return evalRow(sub, tab, i) })
	case *Agg:
		return Value{}, fmt.Errorf("sqlmini: aggregate %s outside GROUP BY context", x.Fn)
	}
	return Value{}, fmt.Errorf("sqlmini: unknown expression %T", e)
}

// evalGroup evaluates an expression over a group of rows (aggregates
// consume the group; bare columns take the group's first row, valid only
// for GROUP BY columns which are constant within a group).
func evalGroup(e Expr, tab *Table, members []int) (Value, error) {
	switch x := e.(type) {
	case *Lit:
		return x.Val, nil
	case *ColRef:
		if len(members) == 0 {
			return Value{}, fmt.Errorf("sqlmini: column %q over empty group", x.Name)
		}
		return evalRow(x, tab, members[0])
	case *Not:
		v, err := evalGroup(x.X, tab, members)
		if err != nil {
			return Value{}, err
		}
		if v.Kind != KindBool {
			return Value{}, fmt.Errorf("sqlmini: NOT of %v", v.Kind)
		}
		return B(!v.Bool), nil
	case *BinOp:
		return evalBinOp(x, func(sub Expr) (Value, error) { return evalGroup(sub, tab, members) })
	case *Agg:
		return evalAgg(x, tab, members)
	}
	return Value{}, fmt.Errorf("sqlmini: unknown expression %T", e)
}

func evalAgg(a *Agg, tab *Table, members []int) (Value, error) {
	if a.Fn == "COUNT" && a.Col == nil {
		return I(int64(len(members))), nil
	}
	if a.Col == nil {
		return Value{}, fmt.Errorf("sqlmini: %s requires an argument", a.Fn)
	}
	if a.Fn == "COUNT" {
		return I(int64(len(members))), nil
	}
	var sum float64
	var minV, maxV float64
	first := true
	for _, i := range members {
		v, err := evalRow(a.Col, tab, i)
		if err != nil {
			return Value{}, err
		}
		f, err := v.AsFloat()
		if err != nil {
			return Value{}, fmt.Errorf("sqlmini: %s over non-numeric column", a.Fn)
		}
		sum += f
		if first || f < minV {
			minV = f
		}
		if first || f > maxV {
			maxV = f
		}
		first = false
	}
	n := float64(len(members))
	switch a.Fn {
	case "SUM":
		return F(sum), nil
	case "AVG":
		if n == 0 {
			return F(0), nil
		}
		return F(sum / n), nil
	case "MIN":
		if first {
			return F(0), nil
		}
		return F(minV), nil
	case "MAX":
		if first {
			return F(0), nil
		}
		return F(maxV), nil
	}
	return Value{}, fmt.Errorf("sqlmini: unknown aggregate %s", a.Fn)
}

func evalBinOp(x *BinOp, eval func(Expr) (Value, error)) (Value, error) {
	l, err := eval(x.Left)
	if err != nil {
		return Value{}, err
	}
	// Short-circuit booleans.
	if x.Op == "AND" || x.Op == "OR" {
		if l.Kind != KindBool {
			return Value{}, fmt.Errorf("sqlmini: %s of %v", x.Op, l.Kind)
		}
		if x.Op == "AND" && !l.Bool {
			return B(false), nil
		}
		if x.Op == "OR" && l.Bool {
			return B(true), nil
		}
		r, err := eval(x.Right)
		if err != nil {
			return Value{}, err
		}
		if r.Kind != KindBool {
			return Value{}, fmt.Errorf("sqlmini: %s of %v", x.Op, r.Kind)
		}
		return B(r.Bool), nil
	}
	r, err := eval(x.Right)
	if err != nil {
		return Value{}, err
	}
	switch x.Op {
	case "=":
		return B(l.Equal(r)), nil
	case "!=":
		return B(!l.Equal(r)), nil
	case "<", "<=", ">", ">=":
		less, err := l.Less(r)
		if err != nil {
			return Value{}, err
		}
		greater, err := r.Less(l)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "<":
			return B(less), nil
		case "<=":
			return B(!greater), nil
		case ">":
			return B(greater), nil
		default:
			return B(!less), nil
		}
	case "+", "-", "*", "/":
		fl, err := l.AsFloat()
		if err != nil {
			return Value{}, err
		}
		fr, err := r.AsFloat()
		if err != nil {
			return Value{}, err
		}
		var out float64
		switch x.Op {
		case "+":
			out = fl + fr
		case "-":
			out = fl - fr
		case "*":
			out = fl * fr
		case "/":
			if fr == 0 {
				return Value{}, fmt.Errorf("sqlmini: division by zero")
			}
			out = fl / fr
		}
		// Preserve int arithmetic when both sides are ints and op is exact.
		if l.Kind == KindInt && r.Kind == KindInt && x.Op != "/" {
			return I(int64(out)), nil
		}
		return F(out), nil
	}
	return Value{}, fmt.Errorf("sqlmini: unknown operator %q", x.Op)
}
