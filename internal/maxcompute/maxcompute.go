// Package maxcompute implements the offline storage-and-compute platform of
// the paper's Section 4.2 (Figure 4), the substrate where TitAnt's feature
// extraction, label collection and transaction-network construction jobs
// run.
//
// The job lifecycle mirrors the paper's description: a client submits a job
// with cloud-account credentials (the HTTP-server verification step); a
// worker accepts it and hands the instance to the scheduler; the scheduler
// registers the instance in OTS with status "running", splits it into
// subtasks and queues them in priority order; executors pull subtasks,
// request compute resources from Fuxi, and run them; when all subtasks of
// an instance finish, the executor sets the OTS status to "terminated" and
// the results are persisted in Pangu.
//
// Two job types are supported, matching "heterogeneous jobs, such as
// mapreduce, SQL and etc.": SQL (executed by the sqlmini engine) and
// MapReduce (map over row shards, shuffle by key, reduce per key).
package maxcompute

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"titant/internal/sqlmini"
	"titant/internal/store/ots"
	"titant/internal/store/pangu"
)

// Errors.
var (
	ErrAuth        = errors.New("maxcompute: authentication failed")
	ErrUnknownJob  = errors.New("maxcompute: unknown job")
	ErrJobFailed   = errors.New("maxcompute: job failed")
	ErrClosed      = errors.New("maxcompute: platform closed")
	ErrNoSuchTable = errors.New("maxcompute: unknown table")
)

// Config sizes the platform.
type Config struct {
	Dir          string // pangu directory for job results
	ComputeSlots int    // Fuxi compute slots (default 4)
	Executors    int    // executor goroutines (default 4)
	MapShards    int    // shards per MapReduce job (default 8)
}

func (c *Config) fillDefaults() {
	if c.ComputeSlots == 0 {
		c.ComputeSlots = 4
	}
	if c.Executors == 0 {
		c.Executors = 4
	}
	if c.MapShards == 0 {
		c.MapShards = 8
	}
}

// Credentials authenticate a submission.
type Credentials struct {
	Account string
	Secret  string
}

// KV is an intermediate MapReduce pair.
type KV struct {
	Key   string
	Value float64
}

// MapReduceSpec describes a MapReduce job over a registered table.
type MapReduceSpec struct {
	Table  string
	Map    func(row []sqlmini.Value) []KV
	Reduce func(key string, values []float64) float64
}

// jobKind enumerates job types.
type jobKind int

const (
	jobSQL jobKind = iota
	jobMapReduce
)

type job struct {
	id    string
	kind  jobKind
	query string
	mr    MapReduceSpec
	prio  int
}

type subtask struct {
	job   *job
	shard int
	prio  int
	seq   int
	run   func() error
}

// Platform is the MaxCompute analogue. Create with New, release with Close.
type Platform struct {
	cfg      Config
	store    *pangu.Store
	ots      *ots.Table
	fuxi     *Fuxi
	mu       sync.Mutex
	accounts map[string]string
	tables   sqlmini.MapCatalog
	pending  map[string]*jobState // job id -> state
	taskCh   chan struct{}        // wake executors
	queue    []*subtask
	seq      int
	closed   bool
	wg       sync.WaitGroup
}

type jobState struct {
	job       *job
	remaining int
	failed    error
	// MapReduce intermediate state.
	mrMu      sync.Mutex
	mrPartial [][]KV
}

// New builds and starts the platform.
func New(cfg Config) (*Platform, error) {
	cfg.fillDefaults()
	store, err := pangu.Open(cfg.Dir)
	if err != nil {
		return nil, err
	}
	p := &Platform{
		cfg:      cfg,
		store:    store,
		ots:      ots.NewTable(),
		fuxi:     NewFuxi(cfg.ComputeSlots),
		accounts: make(map[string]string),
		tables:   make(sqlmini.MapCatalog),
		pending:  make(map[string]*jobState),
		taskCh:   make(chan struct{}, 1<<16),
	}
	for i := 0; i < cfg.Executors; i++ {
		p.wg.Add(1)
		go p.executor()
	}
	return p, nil
}

// CreateAccount registers a cloud account.
func (p *Platform) CreateAccount(account, secret string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.accounts[account] = secret
}

// RegisterTable makes a table visible to jobs.
func (p *Platform) RegisterTable(t *sqlmini.Table) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.tables[t.Name]; dup {
		return fmt.Errorf("maxcompute: table %q already registered", t.Name)
	}
	p.tables[t.Name] = t
	return nil
}

// authenticate performs the client-layer credential check.
func (p *Platform) authenticate(c Credentials) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	secret, ok := p.accounts[c.Account]
	if !ok || secret != c.Secret {
		return ErrAuth
	}
	return nil
}

// SubmitSQL submits a SQL job and returns its instance ID.
func (p *Platform) SubmitSQL(c Credentials, query string) (string, error) {
	if err := p.authenticate(c); err != nil {
		return "", err
	}
	// Parse up front so syntactically invalid jobs are rejected at the
	// worker, as a production front-end would.
	if _, err := sqlmini.Parse(query); err != nil {
		return "", err
	}
	return p.schedule(&job{kind: jobSQL, query: query})
}

// SubmitMapReduce submits a MapReduce job and returns its instance ID.
func (p *Platform) SubmitMapReduce(c Credentials, spec MapReduceSpec) (string, error) {
	if err := p.authenticate(c); err != nil {
		return "", err
	}
	if spec.Map == nil || spec.Reduce == nil {
		return "", fmt.Errorf("maxcompute: MapReduce spec needs Map and Reduce")
	}
	p.mu.Lock()
	_, ok := p.tables[spec.Table]
	p.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNoSuchTable, spec.Table)
	}
	return p.schedule(&job{kind: jobMapReduce, mr: spec})
}

// schedule is the worker + scheduler path: register the instance in OTS,
// split into subtasks, queue them.
func (p *Platform) schedule(j *job) (string, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return "", ErrClosed
	}
	id := p.ots.Register(kindName(j.kind))
	j.id = id
	_ = p.ots.SetStatus(id, ots.StatusRunning, "")
	st := &jobState{job: j}
	var tasks []*subtask
	switch j.kind {
	case jobSQL:
		tasks = append(tasks, &subtask{job: j, run: func() error { return p.runSQL(j) }})
	case jobMapReduce:
		tab := p.tables[j.mr.Table]
		shards := p.cfg.MapShards
		n := tab.NumRows()
		if shards > n && n > 0 {
			shards = n
		}
		if shards == 0 {
			shards = 1
		}
		st.mrPartial = make([][]KV, shards)
		for s := 0; s < shards; s++ {
			s := s
			lo := s * n / shards
			hi := (s + 1) * n / shards
			tasks = append(tasks, &subtask{job: j, shard: s, run: func() error {
				return p.runMapShard(st, tab, s, lo, hi)
			}})
		}
	}
	st.remaining = len(tasks)
	p.pending[id] = st
	for _, t := range tasks {
		t.seq = p.seq
		p.seq++
		p.queue = append(p.queue, t)
	}
	// Priority order: by (prio desc, seq asc). FIFO within priority.
	sort.SliceStable(p.queue, func(a, b int) bool {
		if p.queue[a].prio != p.queue[b].prio {
			return p.queue[a].prio > p.queue[b].prio
		}
		return p.queue[a].seq < p.queue[b].seq
	})
	for range tasks {
		select {
		case p.taskCh <- struct{}{}:
		default:
		}
	}
	return id, nil
}

func kindName(k jobKind) string {
	if k == jobSQL {
		return "sql"
	}
	return "mapreduce"
}

// executor pulls subtasks, acquires Fuxi resources and runs them.
func (p *Platform) executor() {
	defer p.wg.Done()
	for range p.taskCh {
		p.mu.Lock()
		if len(p.queue) == 0 {
			p.mu.Unlock()
			continue
		}
		t := p.queue[0]
		p.queue = p.queue[1:]
		p.mu.Unlock()

		p.fuxi.Acquire()
		err := t.run()
		p.fuxi.Release()

		p.finishSubtask(t, err)
	}
}

func (p *Platform) finishSubtask(t *subtask, err error) {
	p.mu.Lock()
	st := p.pending[t.job.id]
	if st == nil {
		p.mu.Unlock()
		return
	}
	if err != nil && st.failed == nil {
		st.failed = err
	}
	st.remaining--
	done := st.remaining == 0
	p.mu.Unlock()
	if !done {
		return
	}
	// Final phase: MapReduce reduce step runs after all map shards.
	if st.failed == nil && t.job.kind == jobMapReduce {
		if err := p.runReduce(st); err != nil {
			st.failed = err
		}
	}
	p.mu.Lock()
	delete(p.pending, t.job.id)
	p.mu.Unlock()
	if st.failed != nil {
		_ = p.ots.SetStatus(t.job.id, ots.StatusFailed, st.failed.Error())
		return
	}
	_ = p.ots.SetStatus(t.job.id, ots.StatusTerminated, "")
}

func (p *Platform) runSQL(j *job) error {
	p.mu.Lock()
	cat := make(sqlmini.MapCatalog, len(p.tables))
	for k, v := range p.tables {
		cat[k] = v
	}
	p.mu.Unlock()
	res, err := sqlmini.Run(j.query, cat)
	if err != nil {
		return err
	}
	return p.persist(j.id, res)
}

func (p *Platform) runMapShard(st *jobState, tab *sqlmini.Table, shard, lo, hi int) error {
	var out []KV
	row := make([]sqlmini.Value, len(tab.Columns))
	for i := lo; i < hi; i++ {
		for c, col := range tab.Columns {
			row[c] = col.Value(i)
		}
		out = append(out, st.job.mr.Map(row)...)
	}
	st.mrMu.Lock()
	st.mrPartial[shard] = out
	st.mrMu.Unlock()
	return nil
}

func (p *Platform) runReduce(st *jobState) error {
	// Shuffle: group by key across shards.
	grouped := make(map[string][]float64)
	st.mrMu.Lock()
	for _, part := range st.mrPartial {
		for _, kv := range part {
			grouped[kv.Key] = append(grouped[kv.Key], kv.Value)
		}
	}
	st.mrMu.Unlock()
	out := make(map[string]float64, len(grouped))
	for k, vs := range grouped {
		out[k] = st.job.mr.Reduce(k, vs)
	}
	return p.persist(st.job.id, out)
}

// persist gob-encodes a job result into Pangu.
func (p *Platform) persist(jobID string, result interface{}) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(result); err != nil {
		return fmt.Errorf("maxcompute: encode result: %w", err)
	}
	return p.store.Put("jobs/"+jobID+"/result", buf.Bytes())
}

// Wait blocks until the job reaches a terminal state.
func (p *Platform) Wait(jobID string, timeout time.Duration) (ots.Instance, error) {
	inst, err := p.ots.WaitFor(jobID, ots.StatusTerminated, timeout)
	if err != nil {
		return inst, err
	}
	if inst.Status == ots.StatusFailed {
		return inst, fmt.Errorf("%w: %s", ErrJobFailed, inst.Detail)
	}
	return inst, nil
}

// SQLResult fetches the persisted result of a finished SQL job.
func (p *Platform) SQLResult(jobID string) (*sqlmini.Result, error) {
	data, err := p.store.Get("jobs/" + jobID + "/result")
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, jobID)
	}
	var res sqlmini.Result
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&res); err != nil {
		return nil, fmt.Errorf("maxcompute: decode result: %w", err)
	}
	return &res, nil
}

// MRResult fetches the persisted result of a finished MapReduce job.
func (p *Platform) MRResult(jobID string) (map[string]float64, error) {
	data, err := p.store.Get("jobs/" + jobID + "/result")
	if err != nil {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, jobID)
	}
	var res map[string]float64
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&res); err != nil {
		return nil, fmt.Errorf("maxcompute: decode result: %w", err)
	}
	return res, nil
}

// Status returns the OTS row of a job.
func (p *Platform) Status(jobID string) (ots.Instance, error) { return p.ots.Get(jobID) }

// FuxiStats exposes the resource manager's accounting.
func (p *Platform) FuxiStats() (total, inUse, peak int, grants uint64) { return p.fuxi.Stats() }

// Close drains executors and shuts the platform down.
func (p *Platform) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	close(p.taskCh)
	p.wg.Wait()
}
