package maxcompute

import (
	"fmt"
	"sync"
)

// Fuxi is the resource scheduling module of the storage & compute layer
// (Zhang et al., VLDB 2014): executors request compute resources from it
// before running subtasks. This implementation is a counting resource pool
// with usage accounting.
type Fuxi struct {
	mu    sync.Mutex
	cond  *sync.Cond
	total int
	inUse int
	peak  int
	grant uint64
}

// NewFuxi creates a resource manager with the given compute slots.
func NewFuxi(slots int) *Fuxi {
	if slots < 1 {
		panic(fmt.Sprintf("maxcompute: fuxi needs at least 1 slot, got %d", slots))
	}
	f := &Fuxi{total: slots}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// Acquire blocks until a compute slot is available.
func (f *Fuxi) Acquire() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for f.inUse >= f.total {
		f.cond.Wait()
	}
	f.inUse++
	f.grant++
	if f.inUse > f.peak {
		f.peak = f.inUse
	}
}

// Release returns a slot.
func (f *Fuxi) Release() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.inUse == 0 {
		panic("maxcompute: fuxi release without acquire")
	}
	f.inUse--
	f.cond.Broadcast()
}

// Stats returns (total, in-use, peak concurrent, total grants).
func (f *Fuxi) Stats() (total, inUse, peak int, grants uint64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.total, f.inUse, f.peak, f.grant
}
