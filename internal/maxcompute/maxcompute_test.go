package maxcompute

import (
	"errors"
	"sync"
	"testing"
	"time"

	"titant/internal/sqlmini"
	"titant/internal/store/ots"
)

var creds = Credentials{Account: "ant", Secret: "s3cret"}

func platform(t *testing.T) *Platform {
	t.Helper()
	p, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.CreateAccount(creds.Account, creds.Secret)
	tab, err := sqlmini.NewTable("txns",
		&sqlmini.Column{Name: "user_id", Kind: sqlmini.KindInt, Ints: []int64{1, 1, 2, 2, 3}},
		&sqlmini.Column{Name: "amount", Kind: sqlmini.KindFloat, Floats: []float64{10, 20, 30, 40, 50}},
		&sqlmini.Column{Name: "fraud", Kind: sqlmini.KindBool, Bools: []bool{false, true, false, false, true}},
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.RegisterTable(tab); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSQLJobLifecycle(t *testing.T) {
	p := platform(t)
	id, err := p.SubmitSQL(creds, "SELECT user_id, SUM(amount) AS total FROM txns GROUP BY user_id ORDER BY user_id")
	if err != nil {
		t.Fatal(err)
	}
	inst, err := p.Wait(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if inst.Status != ots.StatusTerminated {
		t.Fatalf("status = %v", inst.Status)
	}
	res, err := p.SQLResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][1].Float != 30 || res.Rows[2][1].Float != 50 {
		t.Fatalf("result = %+v", res.Rows)
	}
}

func TestAuthRequired(t *testing.T) {
	p := platform(t)
	if _, err := p.SubmitSQL(Credentials{"ant", "wrong"}, "SELECT * FROM txns"); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.SubmitSQL(Credentials{"ghost", ""}, "SELECT * FROM txns"); !errors.Is(err, ErrAuth) {
		t.Fatalf("err = %v", err)
	}
}

func TestBadSQLRejectedAtSubmit(t *testing.T) {
	p := platform(t)
	if _, err := p.SubmitSQL(creds, "SELEKT nothing"); err == nil {
		t.Fatal("bad SQL accepted")
	}
}

func TestSQLRuntimeFailureMarksFailed(t *testing.T) {
	p := platform(t)
	id, err := p.SubmitSQL(creds, "SELECT missing_col FROM txns")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(id, 5*time.Second); !errors.Is(err, ErrJobFailed) {
		t.Fatalf("err = %v", err)
	}
	inst, _ := p.Status(id)
	if inst.Status != ots.StatusFailed || inst.Detail == "" {
		t.Fatalf("instance = %+v", inst)
	}
}

func TestMapReduce(t *testing.T) {
	p := platform(t)
	id, err := p.SubmitMapReduce(creds, MapReduceSpec{
		Table: "txns",
		Map: func(row []sqlmini.Value) []KV {
			// Per-user transfer count: user_id is column 0.
			return []KV{{Key: row[0].String(), Value: 1}}
		},
		Reduce: func(key string, values []float64) float64 {
			var s float64
			for _, v := range values {
				s += v
			}
			return s
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(id, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := p.MRResult(id)
	if err != nil {
		t.Fatal(err)
	}
	if res["1"] != 2 || res["2"] != 2 || res["3"] != 1 {
		t.Fatalf("MR result = %v", res)
	}
}

func TestMapReduceValidation(t *testing.T) {
	p := platform(t)
	if _, err := p.SubmitMapReduce(creds, MapReduceSpec{Table: "txns"}); err == nil {
		t.Error("nil Map/Reduce accepted")
	}
	spec := MapReduceSpec{
		Table:  "missing",
		Map:    func(row []sqlmini.Value) []KV { return nil },
		Reduce: func(k string, v []float64) float64 { return 0 },
	}
	if _, err := p.SubmitMapReduce(creds, spec); !errors.Is(err, ErrNoSuchTable) {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentJobs(t *testing.T) {
	p := platform(t)
	var wg sync.WaitGroup
	errs := make(chan error, 20)
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			id, err := p.SubmitSQL(creds, "SELECT COUNT(*) FROM txns WHERE fraud = TRUE")
			if err != nil {
				errs <- err
				return
			}
			if _, err := p.Wait(id, 10*time.Second); err != nil {
				errs <- err
				return
			}
			res, err := p.SQLResult(id)
			if err != nil {
				errs <- err
				return
			}
			if res.Rows[0][0].Int != 2 {
				errs <- errors.New("wrong count")
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestFuxiLimitsConcurrency(t *testing.T) {
	p, err := New(Config{Dir: t.TempDir(), ComputeSlots: 2, Executors: 8, MapShards: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	p.CreateAccount(creds.Account, creds.Secret)
	n := 2000
	ids := make([]int64, n)
	for i := range ids {
		ids[i] = int64(i % 7)
	}
	tab, _ := sqlmini.NewTable("big", &sqlmini.Column{Name: "k", Kind: sqlmini.KindInt, Ints: ids})
	_ = p.RegisterTable(tab)
	id, err := p.SubmitMapReduce(creds, MapReduceSpec{
		Table: "big",
		Map: func(row []sqlmini.Value) []KV {
			time.Sleep(time.Millisecond)
			return []KV{{Key: row[0].String(), Value: 1}}
		},
		Reduce: func(k string, vs []float64) float64 { return float64(len(vs)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Wait(id, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	_, _, peak, grants := p.FuxiStats()
	if peak > 2 {
		t.Errorf("fuxi peak concurrency %d exceeds 2 slots", peak)
	}
	if grants < 16 {
		t.Errorf("grants = %d, want >= shards", grants)
	}
}

func TestRegisterTableTwice(t *testing.T) {
	p := platform(t)
	tab, _ := sqlmini.NewTable("txns", &sqlmini.Column{Name: "x", Kind: sqlmini.KindInt})
	if err := p.RegisterTable(tab); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	p, err := New(Config{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	p.CreateAccount(creds.Account, creds.Secret)
	tab, _ := sqlmini.NewTable("txns", &sqlmini.Column{Name: "x", Kind: sqlmini.KindInt})
	_ = p.RegisterTable(tab)
	p.Close()
	if _, err := p.SubmitSQL(creds, "SELECT x FROM txns"); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
	p.Close() // double close is safe
}

func TestUnknownJobResult(t *testing.T) {
	p := platform(t)
	if _, err := p.SQLResult("inst-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v", err)
	}
	if _, err := p.MRResult("inst-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("err = %v", err)
	}
}

func TestFuxiPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on 0 slots")
		}
	}()
	NewFuxi(0)
}

func TestFuxiReleaseWithoutAcquire(t *testing.T) {
	f := NewFuxi(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on release without acquire")
		}
	}()
	f.Release()
}
