// Package logio implements the CRC-framed record format shared by the
// durable logs in this repository: the hbase write-ahead log and the
// ingest event log (internal/eventlog). A frame is
//
//	u32 length | u32 crc32c(payload) | payload
//
// little-endian, Castagnoli polynomial. The framing makes two guarantees
// the log layers build on: a reader can always tell an intact record from
// a torn or corrupt one (the CRC covers the whole payload), and a scan of
// a crashed writer's file recovers exactly the fsynced prefix — the torn
// tail is reported, never silently decoded into phantom records.
package logio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// FrameOverhead is the per-record framing cost in bytes.
const FrameOverhead = 8

// MaxPayload caps a single frame's payload. The length prefix is untrusted
// input on the read side: without a cap, four corrupt bytes could demand a
// multi-gigabyte allocation before the CRC ever gets a chance to reject
// the frame.
const MaxPayload = 1 << 26 // 64 MiB

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of payload, for callers that frame records
// by hand (tests, inspection tools).
func Checksum(payload []byte) uint32 { return crc32.Checksum(payload, crcTable) }

// ErrStop is returned by a Scan callback to end the scan early. The frame
// that triggered it — and everything after — is counted as tail, exactly
// as if the record had failed its CRC: the caller's decoder judged the
// payload malformed, so the bytes are not trusted.
var ErrStop = errors.New("logio: stop scan")

// ErrTooLarge marks a frame whose declared length exceeds MaxPayload.
var ErrTooLarge = errors.New("logio: frame exceeds MaxPayload")

// Writer frames payloads onto an underlying writer (typically a
// *bufio.Writer whose flush/fsync schedule the caller owns). Not safe for
// concurrent use; the owning log serialises appends.
type Writer struct {
	w   io.Writer
	hdr [FrameOverhead]byte
}

// NewWriter returns a frame writer over w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Reset points the writer at a new underlying stream (e.g. after segment
// rotation), keeping the scratch header.
func (fw *Writer) Reset(w io.Writer) { fw.w = w }

// Append writes one framed payload and returns the bytes written
// (framing included). Allocation-free.
func (fw *Writer) Append(payload []byte) (int, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	}
	le := binary.LittleEndian
	le.PutUint32(fw.hdr[0:], uint32(len(payload)))
	le.PutUint32(fw.hdr[4:], crc32.Checksum(payload, crcTable))
	if _, err := fw.w.Write(fw.hdr[:]); err != nil {
		return 0, err
	}
	if _, err := fw.w.Write(payload); err != nil {
		return 0, err
	}
	return FrameOverhead + len(payload), nil
}

// ScanResult reports how a Scan ended.
type ScanResult struct {
	// Records is the number of intact frames delivered to the callback.
	Records int
	// Clean is the byte length of the intact prefix: every frame inside
	// it passed its CRC and was accepted by the callback. A writer
	// recovering the file should truncate to Clean before appending, or
	// the garbage tail would wedge between old and new records.
	Clean int64
	// Tail is the number of bytes past the clean prefix: zero for a
	// cleanly-ended log, positive when the scan stopped at a torn or
	// corrupt frame. Whether a tail is tolerable is the caller's policy
	// (a crashed writer's final file: yes; a sealed mid-log segment: no).
	Tail int64
}

// Scan streams intact frames from r to fn, stopping at the first torn or
// corrupt frame. The payload slice passed to fn is reused between calls —
// callers must copy anything they keep. fn returning ErrStop ends the
// scan with the current frame counted as tail; any other error aborts the
// scan and is returned as-is (the caller's own failure, distinct from
// framing damage).
//
// The reader never panics on hostile input and never delivers a frame
// whose CRC does not match: corruption is only ever reported as tail,
// not decoded.
func Scan(r io.Reader, fn func(payload []byte) error) (ScanResult, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var res ScanResult
	var hdr [FrameOverhead]byte
	var buf []byte
	le := binary.LittleEndian
	for {
		n, err := io.ReadFull(br, hdr[:])
		if err != nil {
			// EOF at a frame boundary is a clean end; anything shorter is
			// a torn header.
			res.Tail += int64(n)
			return res, nil
		}
		length := int(le.Uint32(hdr[0:]))
		want := le.Uint32(hdr[4:])
		if length > MaxPayload {
			res.Tail += int64(FrameOverhead) + remaining(br)
			return res, nil
		}
		if cap(buf) < length {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		m, err := io.ReadFull(br, buf)
		if err != nil {
			res.Tail += int64(FrameOverhead + m)
			return res, nil
		}
		if crc32.Checksum(buf, crcTable) != want {
			res.Tail += int64(FrameOverhead+length) + remaining(br)
			return res, nil
		}
		if err := fn(buf); err != nil {
			if errors.Is(err, ErrStop) {
				res.Tail += int64(FrameOverhead+length) + remaining(br)
				return res, nil
			}
			return res, err
		}
		res.Records++
		res.Clean += int64(FrameOverhead + length)
	}
}

// remaining drains and counts the reader's leftover bytes, so Tail
// reflects the full extent of the untrusted region.
func remaining(br *bufio.Reader) int64 {
	n, _ := io.Copy(io.Discard, br)
	return n
}
