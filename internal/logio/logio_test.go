package logio

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"
)

func frameAll(t *testing.T, payloads [][]byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := NewWriter(&buf)
	for _, p := range payloads {
		n, err := w.Append(p)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if n != FrameOverhead+len(p) {
			t.Fatalf("Append reported %d bytes, want %d", n, FrameOverhead+len(p))
		}
	}
	return buf.Bytes()
}

func TestScanRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	payloads := make([][]byte, 100)
	for i := range payloads {
		p := make([]byte, rng.Intn(200))
		rng.Read(p)
		payloads[i] = p
	}
	data := frameAll(t, payloads)

	var got [][]byte
	res, err := Scan(bytes.NewReader(data), func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if res.Records != len(payloads) || res.Tail != 0 || res.Clean != int64(len(data)) {
		t.Fatalf("Scan result %+v, want records=%d clean=%d tail=0", res, len(payloads), len(data))
	}
	for i := range payloads {
		if !bytes.Equal(got[i], payloads[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestScanTornTail(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	data := frameAll(t, payloads)

	// Truncate at every possible byte length: the scan must recover
	// exactly the records whose frames are fully intact, never more.
	for cut := 0; cut <= len(data); cut++ {
		var n int
		res, err := Scan(bytes.NewReader(data[:cut]), func(p []byte) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("cut=%d: Scan: %v", cut, err)
		}
		want := 0
		off := 0
		for _, p := range payloads {
			off += FrameOverhead + len(p)
			if cut >= off {
				want++
			}
		}
		if n != want || res.Records != want {
			t.Fatalf("cut=%d: recovered %d records, want %d", cut, n, want)
		}
		if res.Clean+res.Tail != int64(cut) {
			t.Fatalf("cut=%d: clean=%d tail=%d, sum != %d", cut, res.Clean, res.Tail, cut)
		}
	}
}

func TestScanCorruptByte(t *testing.T) {
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	data := frameAll(t, payloads)

	// Flip a byte inside the second record's payload: scan keeps record
	// one, rejects the rest as tail.
	pos := FrameOverhead + len(payloads[0]) + FrameOverhead + 1
	mut := append([]byte(nil), data...)
	mut[pos] ^= 0xff

	var n int
	res, err := Scan(bytes.NewReader(mut), func(p []byte) error {
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 1 || res.Records != 1 {
		t.Fatalf("recovered %d records after corruption, want 1", n)
	}
	wantClean := int64(FrameOverhead + len(payloads[0]))
	if res.Clean != wantClean || res.Clean+res.Tail != int64(len(mut)) {
		t.Fatalf("clean=%d tail=%d, want clean=%d and full coverage of %d bytes",
			res.Clean, res.Tail, wantClean, len(mut))
	}
}

func TestScanHugeLength(t *testing.T) {
	var buf [FrameOverhead]byte
	binary.LittleEndian.PutUint32(buf[0:], uint32(MaxPayload+1))
	res, err := Scan(bytes.NewReader(buf[:]), func(p []byte) error {
		t.Fatal("callback fired on oversize frame")
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if res.Records != 0 || res.Clean != 0 || res.Tail != FrameOverhead {
		t.Fatalf("oversize frame not rejected as tail: %+v", res)
	}
}

func TestScanErrStop(t *testing.T) {
	payloads := [][]byte{[]byte("keep"), []byte("stop-here"), []byte("never-seen")}
	data := frameAll(t, payloads)

	var n int
	res, err := Scan(bytes.NewReader(data), func(p []byte) error {
		if string(p) == "stop-here" {
			return ErrStop
		}
		n++
		return nil
	})
	if err != nil {
		t.Fatalf("Scan: %v", err)
	}
	if n != 1 || res.Records != 1 {
		t.Fatalf("ErrStop did not end scan after 1 record: n=%d res=%+v", n, res)
	}
	if res.Clean+res.Tail != int64(len(data)) {
		t.Fatalf("clean+tail=%d, want %d", res.Clean+res.Tail, len(data))
	}
}

func TestScanCallbackError(t *testing.T) {
	data := frameAll(t, [][]byte{[]byte("x")})
	boom := errors.New("boom")
	_, err := Scan(bytes.NewReader(data), func(p []byte) error { return boom })
	if !errors.Is(err, boom) {
		t.Fatalf("callback error not propagated: %v", err)
	}
}

func TestAppendTooLarge(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if _, err := w.Append(make([]byte, MaxPayload+1)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append not rejected: %v", err)
	}
}
