package exp

import (
	"strings"
	"testing"
)

// The shape assertions here run on the Quick configuration (small world,
// two days) so the whole package tests in about a minute; the full-scale
// shapes are recorded by the bench harness into EXPERIMENTS.md.

func TestTable1QuickShapes(t *testing.T) {
	cfg := Quick()
	res, err := RunTable1(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.F1) != 11 || len(res.Days) != cfg.Days {
		t.Fatalf("result shape %dx%d", len(res.F1), len(res.Days))
	}
	// The Quick world (3k users, 2 days) is statistically noisy; the full
	// Table 1 orderings are asserted on the default-scale bench run and
	// recorded in EXPERIMENTS.md. Here we check plumbing plus the one
	// shape robust at any scale: unsupervised IF loses to supervised
	// methods.
	ifm, gbdt := res.Mean(0), res.Mean(4)
	best := 0.0
	for i := 1; i <= 4; i++ {
		if m := res.Mean(i); m > best {
			best = m
		}
	}
	if ifm >= best {
		t.Errorf("IF %.3f >= best supervised %.3f", ifm, best)
	}
	for i := range res.Configs {
		if m := res.Mean(i); m < 0 || m > 1 {
			t.Errorf("config %d mean F1 out of range: %v", i, m)
		}
	}
	// Embeddings must not catastrophically hurt the classifiers.
	if dw := res.Mean(8); dw < gbdt-0.15 {
		t.Errorf("Basic+DW+GBDT %.3f far below Basic+GBDT %.3f", dw, gbdt)
	}
	if r := res.Render(); !strings.Contains(r, "Table 1") {
		t.Error("render missing title")
	}
}

func TestFigure9Quick(t *testing.T) {
	res, err := RunFigure9(Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.RecTop1) != 5 {
		t.Fatalf("detectors = %d", len(res.RecTop1))
	}
	// IF must be the weakest at rec@top1%, GBDT at least as good as ID3.
	ifRec, id3Rec, gbdtRec := res.RecTop1[0], res.RecTop1[1], res.RecTop1[4]
	if ifRec > id3Rec {
		t.Errorf("IF rec %.3f > ID3 %.3f", ifRec, id3Rec)
	}
	// Tolerance is wide: the Quick world has only ~10-20 test frauds, so a
	// single transaction moves rec@1% by several points.
	if gbdtRec < id3Rec-0.2 {
		t.Errorf("GBDT rec %.3f far below ID3 %.3f", gbdtRec, id3Rec)
	}
	if r := res.Render(); !strings.Contains(r, "Figure 9") {
		t.Error("render missing title")
	}
}

func TestFigure10Shapes(t *testing.T) {
	cfg := Quick()
	res, err := RunFigure10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.DWMinutes) != 4 || len(res.GBDTSeconds) != 4 {
		t.Fatalf("result shape %d/%d", len(res.DWMinutes), len(res.GBDTSeconds))
	}
	// DW keeps improving with machines.
	for i := 1; i < 4; i++ {
		if res.DWMinutes[i] >= res.DWMinutes[i-1] {
			t.Errorf("DW time rose at %d machines: %v", res.Machines[i], res.DWMinutes)
		}
	}
	// GBDT improves substantially 4 -> 20 machines but NOT by 2x 20 -> 40.
	if res.GBDTSeconds[2] >= res.GBDTSeconds[0]/2 {
		t.Errorf("GBDT did not scale 4->20: %v", res.GBDTSeconds)
	}
	if res.GBDTSeconds[3] < res.GBDTSeconds[2]*0.6 {
		t.Errorf("GBDT scaled too well 20->40: %v", res.GBDTSeconds)
	}
	if r := res.Render(); !strings.Contains(r, "Figure 10") {
		t.Error("render missing title")
	}
}

func TestTable2Quick(t *testing.T) {
	cfg := Quick()
	res, err := RunTable2(cfg, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series["F1"]) != 2 {
		t.Fatalf("series = %v", res.Series)
	}
	for _, v := range res.Series["F1"] {
		if v < 0 || v > 1 {
			t.Fatalf("F1 out of range: %v", v)
		}
	}
	if r := res.Render(); !strings.Contains(r, "Table 2") {
		t.Error("render missing title")
	}
}

func TestFigure11Quick(t *testing.T) {
	cfg := Quick()
	res, err := RunFigure11(cfg, []int{8, 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 3 {
		t.Fatalf("series = %d", len(res.Series))
	}
	for name, vs := range res.Series {
		if len(vs) != 2 {
			t.Fatalf("%s has %d points", name, len(vs))
		}
	}
}

func TestFigure12Quick(t *testing.T) {
	cfg := Quick()
	res, err := RunFigure12(cfg, []int{50, 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d", len(res.Series))
	}
	if r := res.Render(); !strings.Contains(r, "Figure 12") {
		t.Error("render missing title")
	}
}
