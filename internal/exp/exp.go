// Package exp regenerates every table and figure of the paper's Section 5
// (see DESIGN.md §3 for the experiment index). Each entry point returns
// structured rows plus a paper-style text rendering; the bench harness and
// the titant-exp binary are thin wrappers around it.
package exp

import (
	"fmt"
	"strings"
	"time"

	"titant/internal/core"
	"titant/internal/graph"
	"titant/internal/ps"
	"titant/internal/synth"
)

// Config scales an experiment run.
type Config struct {
	World synth.Config
	Opts  core.Options
	Days  int // test days to evaluate (paper: 7)
}

// Default returns the laptop-scale default experiment configuration.
func Default() Config {
	return Config{World: synth.DefaultConfig(), Opts: core.DefaultOptions(), Days: 7}
}

// Quick returns a reduced configuration for tests: a smaller world, fewer
// days, lighter models. Shapes still hold on average but with more noise.
func Quick() Config {
	c := Default()
	c.World.Users = 3000
	c.Days = 2
	c.Opts.GBDT.Trees = 150
	c.Opts.LR.Iterations = 10
	c.Opts.DW.WalksPerNode = 6
	c.Opts.S2V.Epochs = 4
	return c
}

// Table1Config enumerates the paper's eleven configurations in table order.
type Table1Config struct {
	Number   int
	Label    string
	Features core.FeatureSet
	Detector core.Detector
}

// Table1Configs returns the eleven rows of Table 1.
func Table1Configs() []Table1Config {
	return []Table1Config{
		{1, "Basic Features/Attributes+IF", core.FeatBasic, core.DetIF},
		{2, "Basic Features/Rules+ID3", core.FeatBasic, core.DetID3},
		{3, "Basic Features/Rules+C5.0", core.FeatBasic, core.DetC50},
		{4, "Basic Features+LR", core.FeatBasic, core.DetLR},
		{5, "Basic Features+GBDT", core.FeatBasic, core.DetGBDT},
		{6, "Basic Features+S2V+LR", core.FeatBasicS2V, core.DetLR},
		{7, "Basic Features+S2V+GBDT", core.FeatBasicS2V, core.DetGBDT},
		{8, "Basic Features+DW+LR", core.FeatBasicDW, core.DetLR},
		{9, "Basic Features+DW+GBDT", core.FeatBasicDW, core.DetGBDT},
		{10, "Basic Features+DW+S2V+LR", core.FeatBasicDWS2V, core.DetLR},
		{11, "Basic Features+DW+S2V+GBDT", core.FeatBasicDWS2V, core.DetGBDT},
	}
}

// Table1Result holds F1 per configuration per day plus the day-1 detector
// results reused by Figure 9.
type Table1Result struct {
	Configs []Table1Config
	Days    []string    // test-day dates
	F1      [][]float64 // [config][day]
	RecTop1 [][]float64 // [config][day] (day 1 column feeds Figure 9)
	Elapsed time.Duration
}

// RunTable1 regenerates Table 1: eleven configurations over consecutive
// test days.
func RunTable1(cfg Config) (*Table1Result, error) {
	start := time.Now()
	w := synth.Generate(cfg.World)
	configs := Table1Configs()
	res := &Table1Result{
		Configs: configs,
		F1:      make([][]float64, len(configs)),
		RecTop1: make([][]float64, len(configs)),
	}
	for i := range configs {
		res.F1[i] = make([]float64, cfg.Days)
		res.RecTop1[i] = make([]float64, cfg.Days)
	}
	for d := 0; d < cfg.Days; d++ {
		ds, err := w.Dataset(d + 1)
		if err != nil {
			return nil, err
		}
		res.Days = append(res.Days, ds.TestDay.String())
		emb := core.LearnEmbeddings(ds, cfg.Opts)
		for i, c := range configs {
			r := core.TrainEval(w.Users, ds, c.Features, c.Detector, emb, cfg.Opts)
			res.F1[i][d] = r.F1
			res.RecTop1[i][d] = r.RecTop1
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Mean returns a config's across-day mean F1.
func (t *Table1Result) Mean(config int) float64 {
	var s float64
	for _, v := range t.F1[config] {
		s += v
	}
	return s / float64(len(t.F1[config]))
}

// Render prints the table in the paper's layout.
func (t *Table1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: F1 under the eleven configurations\n")
	fmt.Fprintf(&b, "%-3s %-30s", "No", "Configuration")
	for _, d := range t.Days {
		fmt.Fprintf(&b, " %10s", d[5:])
	}
	fmt.Fprintf(&b, " %10s\n", "mean")
	for i, c := range t.Configs {
		fmt.Fprintf(&b, "%-3d %-30s", c.Number, c.Label)
		for d := range t.Days {
			fmt.Fprintf(&b, " %9.2f%%", 100*t.F1[i][d])
		}
		fmt.Fprintf(&b, " %9.2f%%\n", 100*t.Mean(i))
	}
	return b.String()
}

// Figure9Result holds rec@top1% for the five detectors (basic features).
type Figure9Result struct {
	Detectors []core.Detector
	RecTop1   []float64
	Elapsed   time.Duration
}

// RunFigure9 regenerates Figure 9: recall of the top 1% most-suspicious
// transactions per detection method, on Dataset 1.
func RunFigure9(cfg Config) (*Figure9Result, error) {
	start := time.Now()
	w := synth.Generate(cfg.World)
	ds, err := w.Dataset(1)
	if err != nil {
		return nil, err
	}
	dets := []core.Detector{core.DetIF, core.DetID3, core.DetC50, core.DetLR, core.DetGBDT}
	res := &Figure9Result{Detectors: dets}
	for _, det := range dets {
		r := core.TrainEval(w.Users, ds, core.FeatBasic, det, nil, cfg.Opts)
		res.RecTop1 = append(res.RecTop1, r.RecTop1)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Render prints the figure as a bar list.
func (f *Figure9Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 9: rec@top1%% per detection method (Dataset 1)\n")
	for i, det := range f.Detectors {
		fmt.Fprintf(&b, "%-5s %6.2f%% %s\n", det, 100*f.RecTop1[i], bar(f.RecTop1[i], 1))
	}
	return b.String()
}

func bar(v, max float64) string {
	n := int(v / max * 40)
	if n < 0 {
		n = 0
	}
	return strings.Repeat("#", n)
}

// Figure10Result holds simulated training time versus machine count.
type Figure10Result struct {
	Machines    []int
	DWMinutes   []float64
	GBDTSeconds []float64
	Elapsed     time.Duration
}

// RunFigure10 regenerates Figure 10: DeepWalk and GBDT time cost over the
// number of machines, on the KunPeng simulation (see internal/ps for the
// cost model; the distributed algorithms run for real, time is simulated).
func RunFigure10(cfg Config) (*Figure10Result, error) {
	start := time.Now()
	w := synth.Generate(cfg.World)
	ds, err := w.Dataset(1)
	if err != nil {
		return nil, err
	}
	g := graph.FromTransactions(ds.Network)
	// Feature matrix for distributed GBDT.
	emb := core.LearnDW(ds, cfg.Opts)
	trainM, labels := core.TrainMatrix(w.Users, ds, core.FeatBasicDW, emb, cfg.Opts)

	res := &Figure10Result{Machines: []int{4, 10, 20, 40}, Elapsed: 0}
	dwCfg := ps.DefaultDWConfig()
	dwCfg.DW = cfg.Opts.DW
	dwCfg.DW.Dim = cfg.Opts.Dim

	gbCfg := ps.DefaultGBDTConfig()
	gbCfg.GBDT = cfg.Opts.GBDT
	// Calibrate WorkScale so the 4-machine point represents the paper's
	// production workload (~8M records): compute-bound at ~1250s for GBDT.
	// Communication terms (histogram bytes, per-worker messages, barrier
	// stragglers) do NOT scale with data size, which is exactly why GBDT
	// stops scaling between 20 and 40 machines.
	cost := ps.DefaultCostModel()
	rounds := float64(gbCfg.GBDT.Trees * gbCfg.GBDT.Depth)
	nCols := float64(int(gbCfg.GBDT.ColSample * float64(trainM.Cols)))
	opsPerRoundAt2Workers := float64(trainM.Rows) / 2 * nCols * gbCfg.GBDT.Subsample
	gbCfg.WorkScale = 1250 * cost.ComputeRate / (rounds * opsPerRoundAt2Workers)

	for _, m := range res.Machines {
		c := ps.NewCluster(m, cost)
		ps.TrainDeepWalk(c, g, dwCfg)
		res.DWMinutes = append(res.DWMinutes, c.SimElapsed().Minutes())

		c2 := ps.NewCluster(m, cost)
		ps.TrainGBDT(c2, trainM, labels, gbCfg)
		res.GBDTSeconds = append(res.GBDTSeconds, c2.SimElapsed().Seconds())
	}
	// DeepWalk's simulated time is linear in its WorkScale; normalise the
	// curve so 4 machines sit at the paper's ~550 minutes.
	if res.DWMinutes[0] > 0 {
		f := 550 / res.DWMinutes[0]
		for i := range res.DWMinutes {
			res.DWMinutes[i] *= f
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// Render prints both curves.
func (f *Figure10Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10: time cost over the numbers of machines (simulated cluster)\n")
	fmt.Fprintf(&b, "%-9s %-18s %-18s\n", "machines", "DW (minutes)", "GBDT (seconds)")
	for i, m := range f.Machines {
		fmt.Fprintf(&b, "%-9d %-18.1f %-18.1f\n", m, f.DWMinutes[i], f.GBDTSeconds[i])
	}
	return b.String()
}

// SweepResult is a generic (x, series) result for Table 2 and Figures
// 11-12.
type SweepResult struct {
	Name    string
	XLabel  string
	Xs      []int
	Series  map[string][]float64
	Order   []string
	Elapsed time.Duration
}

// Render prints the sweep as a table.
func (s *SweepResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-28s", s.Name, s.XLabel)
	for _, x := range s.Xs {
		fmt.Fprintf(&b, " %8d", x)
	}
	fmt.Fprintln(&b)
	for _, name := range s.Order {
		fmt.Fprintf(&b, "%-28s", name)
		for _, v := range s.Series[name] {
			fmt.Fprintf(&b, " %7.2f%%", 100*v)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// RunTable2 regenerates Table 2: F1 versus the DeepWalk sampling count
// (walks per node), Dataset 1, Basic+DW+GBDT.
func RunTable2(cfg Config, samplings []int) (*SweepResult, error) {
	start := time.Now()
	if len(samplings) == 0 {
		samplings = []int{25, 50, 100, 200}
	}
	w := synth.Generate(cfg.World)
	ds, err := w.Dataset(1)
	if err != nil {
		return nil, err
	}
	res := &SweepResult{
		Name:   "Table 2: F1 vs number of node sampling (Basic+DW+GBDT, Dataset 1)",
		XLabel: "No. of Sampling",
		Xs:     samplings,
		Series: map[string][]float64{"F1": nil},
		Order:  []string{"F1"},
	}
	for _, s := range samplings {
		opts := cfg.Opts
		opts.DW.WalksPerNode = s
		emb := core.LearnDW(ds, opts)
		r := core.TrainEval(w.Users, ds, core.FeatBasicDW, core.DetGBDT, emb, opts)
		res.Series["F1"] = append(res.Series["F1"], r.F1)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunFigure11 regenerates Figure 11: F1 versus embedding dimension for the
// three embedding-augmented GBDT configurations, Dataset 1.
func RunFigure11(cfg Config, dims []int) (*SweepResult, error) {
	start := time.Now()
	if len(dims) == 0 {
		dims = []int{8, 16, 32, 64}
	}
	w := synth.Generate(cfg.World)
	ds, err := w.Dataset(1)
	if err != nil {
		return nil, err
	}
	order := []string{"Basic+S2V+GBDT", "Basic+DW+GBDT", "Basic+DW+S2V+GBDT"}
	fsOf := map[string]core.FeatureSet{
		"Basic+S2V+GBDT":    core.FeatBasicS2V,
		"Basic+DW+GBDT":     core.FeatBasicDW,
		"Basic+DW+S2V+GBDT": core.FeatBasicDWS2V,
	}
	res := &SweepResult{
		Name:   "Figure 11: F1 vs embedding dimension (Dataset 1)",
		XLabel: "Dimensions",
		Xs:     dims,
		Series: map[string][]float64{},
		Order:  order,
	}
	for _, dim := range dims {
		opts := cfg.Opts
		opts.Dim = dim
		emb := core.LearnEmbeddings(ds, opts)
		for _, name := range order {
			r := core.TrainEval(w.Users, ds, fsOf[name], core.DetGBDT, emb, opts)
			res.Series[name] = append(res.Series[name], r.F1)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// RunFigure12 regenerates Figure 12: F1 versus the number of GBDT trees
// for the four feature sets, Dataset 1.
func RunFigure12(cfg Config, trees []int) (*SweepResult, error) {
	start := time.Now()
	if len(trees) == 0 {
		trees = []int{100, 200, 400, 800}
	}
	w := synth.Generate(cfg.World)
	ds, err := w.Dataset(1)
	if err != nil {
		return nil, err
	}
	emb := core.LearnEmbeddings(ds, cfg.Opts)
	order := []string{"Basic+GBDT", "Basic+S2V+GBDT", "Basic+DW+GBDT", "Basic+DW+S2V+GBDT"}
	fsOf := map[string]core.FeatureSet{
		"Basic+GBDT":        core.FeatBasic,
		"Basic+S2V+GBDT":    core.FeatBasicS2V,
		"Basic+DW+GBDT":     core.FeatBasicDW,
		"Basic+DW+S2V+GBDT": core.FeatBasicDWS2V,
	}
	res := &SweepResult{
		Name:   "Figure 12: F1 vs numbers of GBDT decision trees (Dataset 1)",
		XLabel: "Numbers of Trees",
		Xs:     trees,
		Series: map[string][]float64{},
		Order:  order,
	}
	for _, n := range trees {
		opts := cfg.Opts
		opts.GBDT.Trees = n
		for _, name := range order {
			r := core.TrainEval(w.Users, ds, fsOf[name], core.DetGBDT, emb, opts)
			res.Series[name] = append(res.Series[name], r.F1)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
