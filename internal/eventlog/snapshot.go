package eventlog

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"titant/internal/logio"
)

// Snapshots fast-forward recovery: a snapshot captures the derived state
// (stream window, drift histograms, shadow counters, negative-cache keys)
// as of an end offset, so a restart loads the snapshot and replays only
// the records at or past it instead of the whole log. Snapshot files are
// written atomically and individually CRC-guarded per section; loading
// falls back to the previous snapshot if the newest is damaged, and to
// full-log replay if none survives — a bad snapshot can cost time, never
// correctness.

const (
	snapMagic   = 0x54534e50 // "TSNP"
	snapVersion = 1
	snapPrefix  = "snapshot-"
	snapSuffix  = ".snap"
	// snapKeep is how many snapshot generations WriteSnapshot retains:
	// the new one plus one fallback.
	snapKeep = 2
	// maxSectionBytes caps a section read; the length field is untrusted.
	maxSectionBytes = 1 << 30
)

func offsetCRC(b []byte) uint32 { return logio.Checksum(b) }

// Section is one named state blob inside a snapshot.
type Section struct {
	Name string
	Data []byte
}

func snapPath(dir string, end uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, end, snapSuffix))
}

// WriteSnapshot persists sections as the state of everything below end,
// then prunes older snapshot generations beyond the fallback and
// compacts segments the snapshot has made replayable-for-free.
func (l *Log) WriteSnapshot(end uint64, sections []Section) error {
	var buf []byte
	var hdr [16]byte
	le.PutUint32(hdr[0:], snapMagic)
	le.PutUint32(hdr[4:], snapVersion)
	le.PutUint64(hdr[8:], end)
	buf = append(buf, hdr[:]...)
	var n4 [4]byte
	le.PutUint32(n4[:], uint32(len(sections)))
	buf = append(buf, n4[:]...)
	for _, s := range sections {
		if len(s.Name) > 255 {
			return fmt.Errorf("eventlog: snapshot section name %q too long", s.Name)
		}
		le.PutUint32(n4[:], uint32(len(s.Name)))
		buf = append(buf, n4[:]...)
		buf = append(buf, s.Name...)
		le.PutUint32(n4[:], uint32(len(s.Data)))
		buf = append(buf, n4[:]...)
		le.PutUint32(n4[:], logio.Checksum(s.Data))
		buf = append(buf, n4[:]...)
		buf = append(buf, s.Data...)
	}

	// Whole-file CRC trailer: the per-section CRCs guard data blobs, this
	// guards the structure around them (names, lengths, counts).
	var crc [4]byte
	le.PutUint32(crc[:], logio.Checksum(buf))
	buf = append(buf, crc[:]...)

	path := snapPath(l.dir, end)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, defaultPerm); err != nil {
		return fmt.Errorf("eventlog: write snapshot: %w", err)
	}
	f, err := os.Open(tmp)
	if err == nil {
		// The rename only orders against the data once the data is on
		// disk; fsync before commit, as for any atomic-replace write.
		_ = f.Sync()
		f.Close()
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("eventlog: commit snapshot: %w", err)
	}

	l.mu.Lock()
	l.snapEnd = end
	l.mu.Unlock()

	pruneSnapshots(l.dir, snapKeep)
	return l.Compact()
}

// listSnapshots returns snapshot end offsets present in dir, ascending.
func listSnapshots(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("eventlog: read dir: %w", err)
	}
	var ends []uint64
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		hexs := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
		end, err := strconv.ParseUint(hexs, 16, 64)
		if err != nil {
			continue
		}
		ends = append(ends, end)
	}
	sort.Slice(ends, func(a, b int) bool { return ends[a] < ends[b] })
	return ends, nil
}

func pruneSnapshots(dir string, keep int) {
	ends, err := listSnapshots(dir)
	if err != nil || len(ends) <= keep {
		return
	}
	for _, end := range ends[:len(ends)-keep] {
		_ = os.Remove(snapPath(dir, end))
	}
}

// LoadSnapshot returns the newest intact snapshot's end offset and
// sections. Damaged snapshots are skipped in favour of older ones;
// (0, nil, nil) means no usable snapshot exists and the caller replays
// the full log.
func LoadSnapshot(dir string) (uint64, map[string][]byte, error) {
	ends, err := listSnapshots(dir)
	if err != nil {
		return 0, nil, err
	}
	for i := len(ends) - 1; i >= 0; i-- {
		end, sections, err := readSnapshot(snapPath(dir, ends[i]))
		if err != nil || end != ends[i] {
			continue // damaged or mislabeled; fall back to the previous one
		}
		return end, sections, nil
	}
	return 0, nil, nil
}

// latestSnapshot reports the newest intact snapshot's end offset.
func latestSnapshot(dir string) (uint64, map[string][]byte, error) {
	return LoadSnapshot(dir)
}

func readSnapshot(path string) (uint64, map[string][]byte, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, err
	}
	if len(buf) < 24 {
		return 0, nil, fmt.Errorf("eventlog: snapshot %s: too short", path)
	}
	body, trailer := buf[:len(buf)-4], buf[len(buf)-4:]
	if logio.Checksum(body) != le.Uint32(trailer) {
		return 0, nil, fmt.Errorf("eventlog: snapshot %s: file checksum mismatch", path)
	}
	buf = body
	if le.Uint32(buf[0:]) != snapMagic {
		return 0, nil, fmt.Errorf("eventlog: snapshot %s: bad header", path)
	}
	if v := le.Uint32(buf[4:]); v != snapVersion {
		return 0, nil, fmt.Errorf("eventlog: snapshot %s: unsupported version %d", path, v)
	}
	end := le.Uint64(buf[8:])
	n := int(le.Uint32(buf[16:]))
	sections := make(map[string][]byte, n)
	p := 20
	for i := 0; i < n; i++ {
		if p+4 > len(buf) {
			return 0, nil, fmt.Errorf("eventlog: snapshot %s: truncated at section %d", path, i)
		}
		nameLen := int(le.Uint32(buf[p:]))
		p += 4
		if nameLen > 255 || p+nameLen+8 > len(buf) {
			return 0, nil, fmt.Errorf("eventlog: snapshot %s: truncated at section %d", path, i)
		}
		name := string(buf[p : p+nameLen])
		p += nameLen
		dataLen := int(le.Uint32(buf[p:]))
		crc := le.Uint32(buf[p+4:])
		p += 8
		if dataLen > maxSectionBytes || p+dataLen > len(buf) {
			return 0, nil, fmt.Errorf("eventlog: snapshot %s: truncated at section %d", path, i)
		}
		data := buf[p : p+dataLen]
		p += dataLen
		if logio.Checksum(data) != crc {
			return 0, nil, fmt.Errorf("eventlog: snapshot %s: section %q checksum mismatch", path, name)
		}
		sections[name] = data
	}
	return end, sections, nil
}

// Compact removes sealed segments every possible reader is past: a
// segment is removable only when the newest snapshot AND every committed
// consumer offset lie at or beyond its end (i.e. its successor's base),
// and at least RetainSegments segments always remain. Age retention
// (RetainAge) additionally protects recent segments from removal.
func (l *Log) Compact() error {
	l.mu.Lock()
	floor := l.snapEnd
	for _, off := range l.consumers {
		if off < floor {
			floor = off
		}
	}
	type cand struct {
		path string
		end  uint64
	}
	var cands []cand
	// The active segment (last) is never compactable; walk sealed ones.
	for i := 0; i+1 < len(l.segs); i++ {
		cands = append(cands, cand{path: l.segs[i].path, end: l.segs[i+1].base})
	}
	keep := l.opts.RetainSegments
	retainAge := l.opts.RetainAge
	total := len(l.segs)
	var removed int
	var removedPaths []string
	for _, c := range cands {
		if total-removed <= keep {
			break
		}
		if c.end > floor {
			break // this and everything after is still needed
		}
		if retainAge > 0 {
			if fi, err := os.Stat(c.path); err == nil && time.Since(fi.ModTime()) < retainAge {
				break
			}
		}
		removedPaths = append(removedPaths, c.path)
		removed++
	}
	if removed > 0 {
		l.segs = append([]segmentRef(nil), l.segs[removed:]...)
	}
	l.mu.Unlock()

	for _, p := range removedPaths {
		if err := os.Remove(p); err != nil {
			return fmt.Errorf("eventlog: compact: %w", err)
		}
	}
	return nil
}

// CompactDir runs offline compaction on a closed log directory (the
// logctl path): same floor rule as Compact, using on-disk snapshots and
// consumer offsets. Returns the removed segment paths.
func CompactDir(dir string, retain int) ([]string, error) {
	if retain <= 0 {
		retain = 2
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	floor, _, err := LoadSnapshot(dir)
	if err != nil {
		return nil, err
	}
	consumers, err := readConsumerDir(dir)
	if err != nil {
		return nil, err
	}
	for _, off := range consumers {
		if off < floor {
			floor = off
		}
	}
	var removed []string
	total := len(segs)
	for i := 0; i+1 < len(segs); i++ {
		if total-len(removed) <= retain {
			break
		}
		if segs[i+1].base > floor {
			break
		}
		removed = append(removed, segs[i].path)
	}
	for _, p := range removed {
		if err := os.Remove(p); err != nil {
			return removed, fmt.Errorf("eventlog: compact: %w", err)
		}
	}
	return removed, nil
}
