package eventlog

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"titant/internal/logio"
)

// FuzzReplaySegment feeds arbitrary bytes to the segment scanner. The
// contract under attack: never panic, never deliver a record whose frame
// CRC or offset chain does not check out (no phantom records), and fail
// closed past the first damage — every delivered record must be an exact
// prefix-chain from the segment base.
func FuzzReplaySegment(f *testing.F) {
	// Seed with a well-formed segment, then variants the mutator can
	// splice: torn tail, flipped byte, truncated header.
	dir := f.TempDir()
	l, err := Open(dir)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := l.Append(KindTxn, FlagFraud, int64(i), bytes.Repeat([]byte{byte(i)}, i)); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		f.Fatalf("seed segment missing: %v", err)
	}
	seed, err := os.ReadFile(segs[0].path)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:segHdrSize])
	f.Add([]byte{})
	mut := append([]byte(nil), seed...)
	mut[segHdrSize+9] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "0000000000000000.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		var recs []Record
		sc, err := scanSegment(path, 0, func(r Record) error {
			recs = append(recs, Record{Offset: r.Offset, Kind: r.Kind, Flags: r.Flags,
				Payload: append([]byte(nil), r.Payload...)})
			return nil
		})
		if err != nil {
			// Structural rejection (bad header etc.) is fine; no records
			// may have been produced alongside it.
			return
		}
		if sc.Records != len(recs) {
			t.Fatalf("scan reports %d records, delivered %d", sc.Records, len(recs))
		}
		// Offsets must chain contiguously from the base: no phantoms, no
		// gaps, no reordering.
		for i, r := range recs {
			if r.Offset != uint64(i) {
				t.Fatalf("record %d has offset %d", i, r.Offset)
			}
		}
		if sc.End != uint64(len(recs)) {
			t.Fatalf("End=%d with %d records", sc.End, len(recs))
		}
		if sc.CleanBytes < segHdrSize || sc.CleanBytes+sc.TailBytes != int64(len(data)) {
			t.Fatalf("clean=%d tail=%d do not cover %d bytes", sc.CleanBytes, sc.TailBytes, len(data))
		}
		// Every delivered record must be byte-for-byte re-verifiable from
		// the clean prefix: re-scan it and demand identity.
		var again []Record
		sc2, err := scanSegment(path, 0, nil)
		if err != nil || sc2.Records != sc.Records {
			t.Fatalf("re-scan diverged: %v (%d vs %d records)", err, sc2.Records, sc.Records)
		}
		_ = again
	})
}

// FuzzScanFrames drives the shared frame scanner directly with raw bytes:
// the layer below the segment format must uphold the same never-panic,
// no-phantom contract.
func FuzzScanFrames(f *testing.F) {
	var buf bytes.Buffer
	w := logio.NewWriter(&buf)
	for i := 0; i < 8; i++ {
		if _, err := w.Append(bytes.Repeat([]byte{byte(i)}, i*3)); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(buf.Bytes())
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		var n int
		res, err := logio.Scan(bytes.NewReader(data), func(p []byte) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("Scan returned error on hostile input: %v", err)
		}
		if res.Records != n {
			t.Fatalf("reported %d records, delivered %d", res.Records, n)
		}
		if res.Clean+res.Tail != int64(len(data)) {
			t.Fatalf("clean=%d tail=%d do not cover %d bytes", res.Clean, res.Tail, len(data))
		}
	})
}
