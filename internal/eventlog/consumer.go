package eventlog

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Consumer offsets. A consumer is any reader that wants resumable
// progress through the log — the engine's own apply position, an export
// pipeline, a retraining job. Offsets persist as tiny CRC-guarded files
// committed atomically (write-temp + rename), so a torn commit leaves the
// previous offset intact rather than a half-written one.

const (
	offMagic   = 0x544f4646 // "TOFF"
	offVersion = 1
	offSize    = 20 // magic u32 | version u32 | offset u64 | crc32c u32
)

func validConsumerName(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

func offPath(dir, name string) string {
	return filepath.Join(dir, name+offSuffix)
}

// CommitOffset durably records that consumer name has processed every
// record below off.
func (l *Log) CommitOffset(name string, off uint64) error {
	if !validConsumerName(name) {
		return fmt.Errorf("eventlog: invalid consumer name %q", name)
	}
	if err := writeOffsetFile(offPath(l.dir, name), off); err != nil {
		return err
	}
	l.mu.Lock()
	l.consumers[name] = off
	l.mu.Unlock()
	return nil
}

// ConsumerOffset returns name's committed offset; ok is false if the
// consumer has never committed.
func (l *Log) ConsumerOffset(name string) (off uint64, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	off, ok = l.consumers[name]
	return off, ok
}

func writeOffsetFile(path string, off uint64) error {
	var buf [offSize]byte
	le.PutUint32(buf[0:], offMagic)
	le.PutUint32(buf[4:], offVersion)
	le.PutUint64(buf[8:], off)
	le.PutUint32(buf[16:], offsetCRC(buf[:16]))
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf[:], defaultPerm); err != nil {
		return fmt.Errorf("eventlog: write offset: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return fmt.Errorf("eventlog: commit offset: %w", err)
	}
	return nil
}

func readOffsetFile(path string) (uint64, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(buf) != offSize {
		return 0, fmt.Errorf("eventlog: offset file %s has %d bytes, want %d", path, len(buf), offSize)
	}
	if le.Uint32(buf[0:]) != offMagic {
		return 0, fmt.Errorf("eventlog: offset file %s: bad magic", path)
	}
	if v := le.Uint32(buf[4:]); v != offVersion {
		return 0, fmt.Errorf("eventlog: offset file %s: unsupported version %d", path, v)
	}
	if offsetCRC(buf[:16]) != le.Uint32(buf[16:]) {
		return 0, fmt.Errorf("eventlog: offset file %s: checksum mismatch", path)
	}
	return le.Uint64(buf[8:]), nil
}

// loadConsumers populates the in-memory offset map at Open.
func (l *Log) loadConsumers() error {
	m, err := readConsumerDir(l.dir)
	if err != nil {
		return err
	}
	l.consumers = m
	return nil
}

func readConsumerDir(dir string) (map[string]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return map[string]uint64{}, nil
		}
		return nil, fmt.Errorf("eventlog: read dir: %w", err)
	}
	m := map[string]uint64{}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, offSuffix) {
			continue
		}
		cname := strings.TrimSuffix(name, offSuffix)
		if !validConsumerName(cname) {
			continue
		}
		off, err := readOffsetFile(filepath.Join(dir, name))
		if err != nil {
			// A corrupt offset file means that consumer restarts from the
			// log head; it must not poison everyone else's recovery.
			continue
		}
		m[cname] = off
	}
	return m, nil
}
