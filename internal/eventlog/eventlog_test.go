package eventlog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// collect replays [from, end) into a slice, copying payloads.
func collect(t *testing.T, l *Log, from uint64) []Record {
	t.Helper()
	var recs []Record
	_, err := l.ReadFrom(from, func(r Record) error {
		r.Payload = append([]byte(nil), r.Payload...)
		recs = append(recs, r)
		return nil
	})
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	return recs
}

func appendN(t *testing.T, l *Log, start, n int) {
	t.Helper()
	for i := start; i < start+n; i++ {
		payload := []byte(fmt.Sprintf("event-%04d", i))
		off, err := l.Append(KindTxn, 0, int64(i), payload)
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		if off != uint64(i) {
			t.Fatalf("Append %d assigned offset %d", i, off)
		}
	}
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	recs := collect(t, l, 0)
	if len(recs) != 100 {
		t.Fatalf("replayed %d records, want 100", len(recs))
	}
	for i, r := range recs {
		if r.Offset != uint64(i) || r.Kind != KindTxn || r.Time != int64(i) {
			t.Fatalf("record %d: %+v", i, r)
		}
		if want := fmt.Sprintf("event-%04d", i); string(r.Payload) != want {
			t.Fatalf("record %d payload %q, want %q", i, r.Payload, want)
		}
	}
	// Offset-addressed read.
	if got := collect(t, l, 42); len(got) != 58 || got[0].Offset != 42 {
		t.Fatalf("ReadFrom(42) returned %d records starting at %d", len(got), got[0].Offset)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen resumes at the right offset.
	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextOffset() != 100 {
		t.Fatalf("reopened NextOffset=%d, want 100", l2.NextOffset())
	}
	appendN(t, l2, 100, 10)
	if got := collect(t, l2, 0); len(got) != 110 {
		t.Fatalf("after reopen+append: %d records, want 110", len(got))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 200)
	st := l.Stats()
	if st.Segments < 4 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	recs := collect(t, l, 0)
	if len(recs) != 200 {
		t.Fatalf("replayed %d records across segments, want 200", len(recs))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reopen across many segments.
	l2, err := Open(dir, WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if l2.NextOffset() != 200 {
		t.Fatalf("NextOffset=%d after reopen, want 200", l2.NextOffset())
	}
}

func TestKillDropsUnsyncedOnly(t *testing.T) {
	dir := t.TempDir()
	// Huge thresholds: nothing fsyncs unless forced.
	l, err := Open(dir, WithFsyncInterval(time.Hour), WithFsyncBytes(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 50)
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 50, 30) // buffered, never synced
	l.Kill()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got := collect(t, l2, 0)
	// Everything synced must survive; the unsynced suffix may be partly
	// present (the buffer can spill to the OS before Kill) but whatever
	// is there must be an intact prefix, never garbage.
	if len(got) < 50 {
		t.Fatalf("lost synced records: replayed %d, want >= 50", len(got))
	}
	for i, r := range got {
		if r.Offset != uint64(i) {
			t.Fatalf("record %d has offset %d after crash recovery", i, r.Offset)
		}
	}
	if l2.NextOffset() != uint64(len(got)) {
		t.Fatalf("NextOffset=%d, want %d", l2.NextOffset(), len(got))
	}
}

func TestTornTailTruncatedOnReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a torn append by hand: half a frame at the tail.
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(segs[0].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x20, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if l2.NextOffset() != 10 {
		t.Fatalf("NextOffset=%d with torn tail, want 10", l2.NextOffset())
	}
	appendN(t, l2, 10, 5)
	if got := collect(t, l2, 0); len(got) != 15 {
		t.Fatalf("replayed %d records after torn-tail recovery, want 15", len(got))
	}
	l2.Close()
}

func TestSealedSegmentCorruptionFailsClosed(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 100)
	if l.Stats().Segments < 3 {
		t.Fatalf("need several segments, got %d", l.Stats().Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a record in the FIRST (sealed) segment.
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[segHdrSize+12] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, WithSegmentBytes(256))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	_, err = l2.ReadFrom(0, func(Record) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-chain corruption not failed closed: %v", err)
	}
}

func TestConsumerOffsets(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 20)
	if err := l.CommitOffset("engine", 12); err != nil {
		t.Fatal(err)
	}
	if err := l.CommitOffset("export", 5); err != nil {
		t.Fatal(err)
	}
	if err := l.CommitOffset("../evil", 1); err == nil {
		t.Fatal("path-traversal consumer name accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if off, ok := l2.ConsumerOffset("engine"); !ok || off != 12 {
		t.Fatalf("engine offset = %d,%v want 12,true", off, ok)
	}
	if off, ok := l2.ConsumerOffset("export"); !ok || off != 5 {
		t.Fatalf("export offset = %d,%v want 5,true", off, ok)
	}
	if _, ok := l2.ConsumerOffset("nope"); ok {
		t.Fatal("unknown consumer reported as committed")
	}
	st := l2.Stats()
	if st.MaxLag != 15 {
		t.Fatalf("MaxLag=%d, want 15 (next=20, slowest=5)", st.MaxLag)
	}

	// A corrupt offset file degrades to "never committed", not an error.
	if err := os.WriteFile(filepath.Join(dir, "engine"+offSuffix), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if _, ok := l3.ConsumerOffset("engine"); ok {
		t.Fatal("corrupt offset file yielded a committed offset")
	}
}

func TestSnapshotWriteLoad(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 30)
	sections := []Section{
		{Name: "stream", Data: bytes.Repeat([]byte{1, 2, 3}, 100)},
		{Name: "drift", Data: []byte("histograms")},
		{Name: "empty", Data: nil},
	}
	if err := l.WriteSnapshot(30, sections); err != nil {
		t.Fatal(err)
	}
	end, got, err := LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	if end != 30 || len(got) != 3 {
		t.Fatalf("LoadSnapshot: end=%d sections=%d", end, len(got))
	}
	if !bytes.Equal(got["stream"], sections[0].Data) || string(got["drift"]) != "histograms" {
		t.Fatal("section data mismatch")
	}

	// Newer snapshot wins...
	appendN(t, l, 30, 10)
	if err := l.WriteSnapshot(40, []Section{{Name: "stream", Data: []byte("newer")}}); err != nil {
		t.Fatal(err)
	}
	end, got, err = LoadSnapshot(dir)
	if err != nil || end != 40 || string(got["stream"]) != "newer" {
		t.Fatalf("newest snapshot not preferred: end=%d err=%v", end, err)
	}

	// ...unless damaged, in which case the previous one serves.
	if err := corruptFile(snapPath(dir, 40), 25); err != nil {
		t.Fatal(err)
	}
	end, got, err = LoadSnapshot(dir)
	if err != nil || end != 30 {
		t.Fatalf("damaged snapshot did not fall back: end=%d err=%v", end, err)
	}
	if len(got) != 3 {
		t.Fatalf("fallback snapshot has %d sections, want 3", len(got))
	}
}

func corruptFile(path string, at int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if at >= len(data) {
		at = len(data) - 1
	}
	data[at] ^= 0xff
	return os.WriteFile(path, data, 0o644)
}

func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSegmentBytes(256), WithRetainSegments(1))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 200)
	before := l.Stats().Segments
	if before < 4 {
		t.Fatalf("need several segments, got %d", before)
	}

	// No snapshot, no consumers: nothing may be compacted.
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got != before {
		t.Fatalf("compaction without a floor removed segments: %d -> %d", before, got)
	}

	// Snapshot at the head allows compaction, but a consumer still at the
	// log head holds the floor at zero.
	if err := l.CommitOffset("slow", 0); err != nil {
		t.Fatal(err)
	}
	if err := l.WriteSnapshot(200, nil); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got != before {
		t.Fatalf("slow consumer did not hold compaction floor: %d -> %d", before, got)
	}

	// Consumer catches up: everything below the snapshot compacts.
	if err := l.CommitOffset("slow", 200); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	if got := l.Stats().Segments; got >= before {
		t.Fatalf("compaction removed nothing: %d -> %d", before, got)
	}
	// Replay still works from the retained chain.
	var n int
	next, err := l.ReadFrom(0, func(r Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if next != 200 || n == 0 {
		t.Fatalf("post-compaction replay: %d records, next=%d", n, next)
	}
}

func TestInspect(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithSegmentBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 60)
	if _, err := l.Append(KindScore, 0, 0, []byte("scores")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindReset, 0, 0, nil); err != nil {
		t.Fatal(err)
	}
	if err := l.CommitOffset("engine", 30); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if res.Records != 62 || res.NextOffset != 62 {
		t.Fatalf("Inspect: records=%d next=%d, want 62/62", res.Records, res.NextOffset)
	}
	if res.Kinds["txn"] != 60 || res.Kinds["score"] != 1 || res.Kinds["reset"] != 1 {
		t.Fatalf("Inspect kinds: %v", res.Kinds)
	}
	if res.Consumers["engine"] != 30 {
		t.Fatalf("Inspect consumers: %v", res.Consumers)
	}
	if len(res.Segments) < 2 {
		t.Fatalf("Inspect found %d segments", len(res.Segments))
	}
}

func TestStatsShape(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, WithFsyncBytes(1))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 5)
	st := l.Stats()
	if st.Appended != 5 || st.Fsyncs == 0 || st.Bytes == 0 || st.NextOffset != 5 {
		t.Fatalf("Stats: %+v", st)
	}
	if st.LastFsyncAge < 0 || st.LastFsyncAge > 60 {
		t.Fatalf("implausible LastFsyncAge %v", st.LastFsyncAge)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(KindTxn, 0, 0, nil); err == nil {
		t.Fatal("append after close succeeded")
	}
	l.Kill() // must be a no-op, not a panic
}
